// Section 5.6 reproduction: time to restart the simulation after a
// failure — 6.75M elements, 100 processes, killed at step 20 — for the
// three octree implementations, in both recovery scenarios.
//
// Expected shape (paper, Kamiak cluster):
//   same nodes:  in-core 42.9 s | PM-octree 2.1 s | out-of-core ~instant
//   new node:    in-core 42.9 s | PM-octree 3.48 s (2.1 + 1.38 replica
//                move) | out-of-core cannot recover
#include "bench_report.hpp"

#include "cluster/comm_model.hpp"
#include "pmoctree/replica.hpp"

using namespace pmo;
using namespace pmo::bench;
namespace tr = pmo::telemetry::trace;

int main(int argc, char** argv) {
  BenchReport report("sec56_recovery",
                     "Section 5.6: failure recovery time", argc, argv);
  report.print_header();
  const double global = 6.75e6 * bench_scale();
  const int procs = 100;
  const int crash_step = 5;  // paper kills at step 20; shape-equivalent

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;

  cluster::CommConfig net;
  const auto real_leaves = probe_leaves(params);
  const double scale = global / static_cast<double>(real_leaves);
  std::printf("real mesh: %zu leaves; %s global elements on %d procs; "
              "crash at step %d\n\n",
              real_leaves, elems(global).c_str(), procs, crash_step);

  report.begin_table({"octree", "scenario", "restart time (s, scaled)",
                      "notes"});

  // ---- in-core: full snapshot read + rebuild ------------------------------
  {
    // Each recovery scenario gets its own trace track (pid), so the four
    // timelines render side by side in Perfetto.
    tr::TrackGuard track(1, 1);
    tr::name_process(1, "scenario: in-core");
    auto bundle = make_incore(std::size_t{256} << 20, /*interval=*/2);
    amr::DropletWorkload wl(params);
    wl.initialize(*bundle.mesh);
    for (int s = 0; s < crash_step; ++s) wl.step(*bundle.mesh, s);
    tr::audit("bench.crash", {{"step", static_cast<double>(crash_step)},
                              {"scenario", 1}});
    const auto before = bundle.mesh->modeled_ns();
    PMO_CHECK(bundle.mesh->recover());
    // Per-rank recovery reads/rebuilds its share of the scaled mesh.
    const double t = static_cast<double>(bundle.mesh->modeled_ns() -
                                         before) *
                     1e-9 * scale / procs;
    report.row({"in-core-octree", "same nodes", TablePrinter::num(t, 2),
               "reads whole snapshot, rebuilds tree"});
    report.row({"in-core-octree", "new node", TablePrinter::num(t, 2),
               "snapshot on shared PFS: same cost"});
  }

  // ---- PM-octree: same node ------------------------------------------------
  double pm_same_node_s = 0.0;
  {
    tr::TrackGuard track(2, 1);
    tr::name_process(2, "scenario: PM same-node");
    pmoctree::PmConfig pm;
    pm.dram_budget_bytes = 4 << 20;
    auto bundle = make_pm(std::size_t{256} << 20, pm);
    amr::DropletWorkload wl(params);
    register_droplet_feature(bundle, wl);
    wl.initialize(*bundle.mesh);
    for (int s = 0; s < crash_step; ++s) wl.step(*bundle.mesh, s);
    tr::audit("bench.crash", {{"step", static_cast<double>(crash_step)},
                              {"scenario", 2}});
    const auto before = bundle.mesh->modeled_ns();
    PMO_CHECK(bundle.mesh->recover());
    // pm_restore is O(1): no scaling with mesh size (tombstoning and GC
    // run asynchronously afterwards).
    pm_same_node_s = static_cast<double>(bundle.mesh->modeled_ns() -
                                         before) *
                     1e-9;
    report.row({"PM-octree", "same nodes",
               TablePrinter::num(pm_same_node_s, 4),
               "returns ADDR(V_{i-1}); O(1)"});
  }

  // ---- PM-octree: new node via replica --------------------------------------
  {
    tr::TrackGuard track(3, 1);
    tr::name_process(3, "scenario: PM new-node replica");
    pmoctree::PmConfig pm;
    pm.dram_budget_bytes = 4 << 20;
    pm.enable_replica = true;
    auto bundle = make_pm(std::size_t{256} << 20, pm);
    amr::DropletWorkload wl(params);
    register_droplet_feature(bundle, wl);
    wl.initialize(*bundle.mesh);
    for (int s = 0; s < crash_step; ++s) wl.step(*bundle.mesh, s);
    tr::audit("bench.crash", {{"step", static_cast<double>(crash_step)},
                              {"scenario", 3}});

    nvbm::Device fresh(std::size_t{256} << 20, device_config());
    nvbm::Heap fresh_heap(fresh);
    const auto moved = bundle.pm->replica().restore_into(fresh_heap);
    // Replica move: per-rank share of the scaled version over the IB link
    // plus the local NVBM writes of the rebuild.
    const double bytes = static_cast<double>(moved) *
                         sizeof(pmoctree::PNode) * scale / procs;
    const double wire_s = net.replica_alpha_s + bytes / net.replica_bw_Bps;
    const double write_s = static_cast<double>(
                               fresh.counters().modeled_write_ns) *
                           1e-9 * scale / procs;
    report.row({"PM-octree", "new node",
               TablePrinter::num(pm_same_node_s + wire_s + write_s, 2),
               "restore + replica move"});
  }

  // ---- out-of-core --------------------------------------------------------
  {
    tr::TrackGuard track(4, 1);
    tr::name_process(4, "scenario: out-of-core");
    auto bundle = make_etree(std::size_t{256} << 20);
    amr::DropletWorkload wl(params);
    wl.initialize(*bundle.mesh);
    for (int s = 0; s < crash_step; ++s) wl.step(*bundle.mesh, s);
    tr::audit("bench.crash", {{"step", static_cast<double>(crash_step)},
                              {"scenario", 4}});
    const auto before = bundle.mesh->modeled_ns();
    PMO_CHECK(bundle.mesh->recover());
    const double t = static_cast<double>(bundle.mesh->modeled_ns() -
                                         before) *
                     1e-9;
    report.row({"out-of-core-octree", "same nodes", TablePrinter::num(t, 4),
               "octant database already consistent"});
    report.row({"out-of-core-octree", "new node", "-",
               "cannot recover: octants not replicated"});
  }

  report.print_table(std::cout);
  std::printf("\nexpected shape (paper): in-core ~42.9s; PM-octree ~2.1s "
              "same-node and ~3.48s new-node; out-of-core instant "
              "same-node, impossible new-node.\n");
  report.write();
  return 0;
}
