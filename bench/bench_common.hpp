// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints (a) the Table 2 device parameters it models, (b) the
// workload scale, and (c) a paper-style results table. Scales default to
// laptop-size meshes; set PMOCTREE_BENCH_SCALE=<float> to enlarge the
// *real* workload (the cluster simulator's `scale` handles the rest).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "common/simd.hpp"
#include "baseline/etree_backend.hpp"
#include "baseline/incore_backend.hpp"
#include "cluster/cluster_sim.hpp"
#include "common/stats.hpp"
#include "exec/pool.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace pmo::bench {

inline double bench_scale() {
  const char* env = std::getenv("PMOCTREE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// Set by BenchReport when the binary was invoked with `--threads N`
/// (flag beats environment).
inline int& bench_threads_override() {
  static int v = 0;
  return v;
}

/// Measurement-phase thread count: `--threads N` flag >
/// PMOCTREE_BENCH_THREADS env > hardware_concurrency. Only wall-clock
/// depends on it — modeled results are bit-identical across values
/// (ClusterSim's determinism contract), which is what makes the fig06
/// threads=1 vs threads=N JSON comparison meaningful.
inline int bench_threads() {
  if (bench_threads_override() > 0) return bench_threads_override();
  if (const char* env = std::getenv("PMOCTREE_BENCH_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return exec::hardware_threads();
}

/// Set by BenchReport when the binary was invoked with `--node-cache
/// <bytes|off>` (flag beats environment). -1 = not given.
inline long long& bench_node_cache_override() {
  static long long v = -1;
  return v;
}

/// Resolved node-cache override: `--node-cache` flag >
/// PMOCTREE_BENCH_NODE_CACHE env ("off" or a byte count). -1 when neither
/// is present (PmConfig's default budget then applies).
inline long long bench_node_cache_env() {
  if (bench_node_cache_override() >= 0) return bench_node_cache_override();
  if (const char* env = std::getenv("PMOCTREE_BENCH_NODE_CACHE")) {
    if (std::string(env) == "off") return 0;
    const long long v = std::atoll(env);
    if (v > 0) return v;
  }
  return -1;
}

/// Effective hot-node-cache budget (bytes; 0 = cache and cursors off) the
/// PM bundles of this bench run with. Recorded in the JSON config block.
inline std::size_t bench_node_cache() {
  const long long v = bench_node_cache_env();
  return v >= 0 ? static_cast<std::size_t>(v)
                : pmoctree::PmConfig{}.node_cache_bytes;
}

/// Set by BenchReport (and micro_ops' flag strip) when the binary was
/// invoked with `--simd <on|off>` (flag beats environment). -1 = unset.
inline int& bench_simd_override() {
  static int v = -1;
  return v;
}

/// Applies the SIMD kernel toggle for this bench run and returns the
/// effective state: `--simd on|off` flag > PMOCTREE_BENCH_SIMD env >
/// compiled-in default (AVX2 when the simd TU was built with it). The
/// solve kernels are bit-identical either way (common/simd.hpp's
/// determinism contract), so this knob moves wall-clock only — which is
/// exactly why config.simd must be recorded: an on/off JSON pair is the
/// bit-identity check. "on" on a binary without compiled AVX2 degrades
/// to the portable loops (enabled() stays false).
inline bool bench_simd() {
  int want = bench_simd_override();
  if (want < 0) {
    if (const char* env = std::getenv("PMOCTREE_BENCH_SIMD")) {
      const std::string s(env);
      want = (s == "off" || s == "0") ? 0 : 1;
    }
  }
  if (want >= 0) simd::set_enabled(want != 0);
  return simd::enabled();
}

/// Persist-path pruning knob the PM bundles run with:
/// PMOCTREE_BENCH_PERSIST_PRUNING=off|0 disables dirty-subtree pruning
/// for A/B runs. The persisted image is bit-identical either way (the
/// determinism contract); only the persist.visits counters move.
/// Recorded in the JSON config block.
inline bool bench_persist_pruning() {
  if (const char* env = std::getenv("PMOCTREE_BENCH_PERSIST_PRUNING")) {
    const std::string s(env);
    return s != "off" && s != "0";
  }
  return pmoctree::PmConfig{}.persist_pruning;
}

/// Persist-time merge concurrency cap the PM bundles run with
/// (PmConfig::persist_threads; 0 = the attached pool's full size).
/// Wall-clock-only — modeled results are thread-count independent.
/// Recorded in the JSON config block.
inline int bench_persist_threads() {
  if (const char* env = std::getenv("PMOCTREE_BENCH_PERSIST_THREADS")) {
    return std::atoi(env);
  }
  return pmoctree::PmConfig{}.persist_threads;
}

inline nvbm::Config device_config() {
  nvbm::Config c;  // Table 2 defaults, modeled latency
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

inline void print_table2_header(const char* title) {
  const nvbm::Config c = device_config();
  std::printf("=== %s ===\n", title);
  std::printf("device model (Table 2): DRAM %lu/%lu ns, NVBM %lu/%lu ns "
              "(read/write per %zu B line)\n",
              static_cast<unsigned long>(c.dram_read_ns),
              static_cast<unsigned long>(c.dram_write_ns),
              static_cast<unsigned long>(c.read_ns),
              static_cast<unsigned long>(c.write_ns), c.cache_line);
}

enum class Backend { kPm, kInCore, kEtree };

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kPm: return "PM-octree";
    case Backend::kInCore: return "in-core-octree";
    case Backend::kEtree: return "out-of-core-octree";
  }
  return "?";
}

/// A backend bundle owning its devices (order matters for destruction).
/// `source` keeps the device registered as a pull-mode telemetry source:
/// every registry snapshot republishes its access/wear counters under
/// "nvbm.*". On bundle destruction the handle unregisters the device AND
/// drops the published "nvbm." gauges, so back-to-back bundles in one
/// process never double-report a dead device's last values.
/// `wear_section` keeps the device's wear heatmap in trace files / bench
/// reports; it freezes the final heatmap when the bundle dies, so even a
/// scoped bundle (sec56's scenarios) shows up in the end-of-run export.
struct Bundle {
  std::unique_ptr<nvbm::Device> device;
  std::unique_ptr<amr::MeshBackend> mesh;
  amr::PmOctreeBackend* pm = nullptr;  // set when the mesh is PM-octree
  telemetry::Registry::Source source;
  telemetry::trace::Section wear_section;
};

/// Per-backend knobs for make_bundle. Only the field matching the chosen
/// backend is consulted.
struct BundleOpts {
  pmoctree::PmConfig pm;        ///< Backend::kPm
  int snapshot_interval = 10;   ///< Backend::kInCore
  int cache_pages = 16;         ///< Backend::kEtree: small buffer pool —
                                ///< oversizing would hide the page I/O the
                                ///< paper measures
};

/// The one place benches create device+backend pairs: allocates the
/// emulated NVBM device (Table 2 config), attaches the requested mesh
/// backend, and registers the device with the global telemetry registry.
inline Bundle make_bundle(Backend kind, std::size_t capacity,
                          const BundleOpts& opts = {}) {
  Bundle b;
  b.device = std::make_unique<nvbm::Device>(capacity, device_config());
  switch (kind) {
    case Backend::kPm: {
      pmoctree::PmConfig pm = opts.pm;
      if (const long long nc = bench_node_cache_env(); nc >= 0)
        pm.node_cache_bytes = static_cast<std::size_t>(nc);
      pm.persist_pruning = bench_persist_pruning();
      pm.persist_threads = bench_persist_threads();
      auto mesh = std::make_unique<amr::PmOctreeBackend>(*b.device, pm);
      b.pm = mesh.get();
      b.mesh = std::move(mesh);
      break;
    }
    case Backend::kInCore: {
      baseline::InCoreConfig cfg;
      cfg.snapshot_interval = opts.snapshot_interval;
      b.mesh = std::make_unique<baseline::InCoreBackend>(*b.device, cfg);
      break;
    }
    case Backend::kEtree: {
      baseline::EtreeConfig cfg;
      cfg.cache_pages = opts.cache_pages;
      b.mesh = std::make_unique<baseline::EtreeBackend>(*b.device, cfg);
      break;
    }
  }
  nvbm::Device* dev = b.device.get();
  b.source = telemetry::Registry::global().register_source(
      [dev](telemetry::Registry& reg) { dev->publish(reg, "nvbm"); },
      [] { telemetry::Registry::global().drop_gauges("nvbm."); });
  static std::atomic<int> bundle_seq{0};
  b.wear_section = telemetry::trace::register_section(
      "nvbm" + std::to_string(bundle_seq.fetch_add(1)),
      [dev] { return dev->wear_heatmap_json(); });
  return b;
}

inline Bundle make_pm(std::size_t nvbm_capacity, pmoctree::PmConfig pm) {
  BundleOpts opts;
  opts.pm = pm;
  return make_bundle(Backend::kPm, nvbm_capacity, opts);
}

inline Bundle make_incore(std::size_t snapshot_capacity,
                          int snapshot_interval = 10) {
  BundleOpts opts;
  opts.snapshot_interval = snapshot_interval;
  return make_bundle(Backend::kInCore, snapshot_capacity, opts);
}

inline Bundle make_etree(std::size_t capacity) {
  return make_bundle(Backend::kEtree, capacity);
}

/// Registers the droplet workload's hot-spot predicate as the PM-octree
/// feature function (§3.3 integration: the application hands its
/// refinement/solver predicates to the library).
inline void register_droplet_feature(Bundle& b, amr::DropletWorkload& wl) {
  if (b.pm == nullptr) return;
  b.pm->register_feature([&wl](const LocCode& code, const CellData& d) {
    return wl.hot_feature(code, d);
  });
}

/// Formats a count like the paper's element labels (1.2M, 1077M, ...).
inline std::string elems(double n) { return TablePrinter::human_count(n); }

/// Estimates the real-mesh leaf count a workload produces (one cheap
/// DRAM-only probe run: initialize + 1 step).
inline std::size_t probe_leaves(const amr::DropletParams& params) {
  auto bundle = make_incore(std::size_t{256} << 20, /*interval=*/1000);
  amr::DropletWorkload wl(params);
  wl.initialize(*bundle.mesh);
  wl.step(*bundle.mesh, 0, /*persist=*/false);
  return bundle.mesh->leaf_count();
}

/// Real-run DRAM budget that models a node whose C0 tree can hold
/// `c0_octants_per_node` octants while each rank owns `per_rank_elements`
/// target octants: the real run (which holds the whole global mesh) gets
/// the same C0-fit *fraction*.
inline std::size_t budget_for(double c0_octants_per_node,
                              double per_rank_elements,
                              std::size_t real_leaves) {
  const double fraction =
      std::min(1.0, c0_octants_per_node / per_rank_elements);
  const double nodes = static_cast<double>(real_leaves) * 8.0 / 7.0;
  const double bytes = fraction * nodes * sizeof(pmoctree::PNode) * 1.3;
  return std::max<std::size_t>(64 * sizeof(pmoctree::PNode),
                               static_cast<std::size_t>(bytes));
}

struct PointOpts {
  double c0_octants_per_node = 1.5e5;
  bool enable_transform = true;
  /// Measurement lanes per point (ClusterConfig::measure_ranks). 1 keeps
  /// the original single-measurement cost; the scaling figures raise it
  /// so lane-level parallelism has real work to spread across threads.
  int measure_ranks = 1;
};

struct PointResult {
  cluster::ClusterResult cluster;
  std::uint64_t nvbm_writes = 0;   ///< real-run NVBM write ops
  std::uint64_t nvbm_lines_read = 0;   ///< real-run NVBM medium line reads
  std::uint64_t nvbm_lines_written = 0;  ///< real-run NVBM medium line writes
  std::uint64_t nvbm_cached_reads = 0;  ///< node-cache hits (DRAM latency)
  std::size_t eviction_merges = 0;  ///< real-run C0->C1 pressure merges
  std::size_t dram_budget_bytes = 0;
};

/// Runs one cluster-simulation point: `procs` ranks, `target_global`
/// elements in total, on the given backend. Measurement runs
/// opts.measure_ranks lanes (one bundle each) on bench_threads() worker
/// threads; reported device-side numbers (nvbm_writes, eviction_merges)
/// come from the canonical lane 0.
inline PointResult run_point(Backend kind, int procs, double target_global,
                             int steps, const amr::DropletParams& params,
                             const PointOpts& opts,
                             std::size_t real_leaves) {
  const double scale =
      target_global / static_cast<double>(std::max<std::size_t>(
                          1, real_leaves));
  PointResult out;
  BundleOpts bopts;
  if (kind == Backend::kPm) {
    bopts.pm.dram_budget_bytes = budget_for(
        opts.c0_octants_per_node, target_global / procs, real_leaves);
    bopts.pm.enable_transform = opts.enable_transform;
    out.dram_budget_bytes = bopts.pm.dram_budget_bytes;
  }
  // Declared before `bundles` so workloads outlive the PM feature hooks
  // (register_droplet_feature captures the workload by reference).
  std::vector<std::shared_ptr<amr::DropletWorkload>> workloads;
  std::vector<std::shared_ptr<Bundle>> bundles;
  cluster::ClusterConfig cfg;
  cfg.procs = procs;
  cfg.steps = steps;
  cfg.scale = scale;
  cfg.threads = bench_threads();
  cfg.measure_ranks = opts.measure_ranks;
  cluster::ClusterSim sim(cfg);
  const auto factory = [&](int /*rank*/, const amr::DropletParams& p)
      -> cluster::RankInstance {
    auto bundle = std::make_shared<Bundle>(
        make_bundle(kind, std::size_t{256} << 20, bopts));
    auto wl = std::make_shared<amr::DropletWorkload>(p);
    register_droplet_feature(*bundle, *wl);
    workloads.push_back(wl);
    bundles.push_back(bundle);
    return {cluster::RankBackend(bundle, bundle->mesh.get()), wl};
  };
  out.cluster = sim.run(factory, params);
  out.nvbm_writes = bundles.front()->mesh->nvbm_writes();
  out.nvbm_lines_read = bundles.front()->device->counters().lines_read;
  out.nvbm_lines_written = bundles.front()->device->counters().lines_written;
  out.nvbm_cached_reads = bundles.front()->device->counters().cached_reads;
  if (bundles.front()->pm != nullptr) {
    out.eviction_merges = bundles.front()->pm->tree().eviction_merges();
  }
  return out;
}

}  // namespace pmo::bench
