// Micro-benchmarks (google-benchmark) for the substrate operations:
// Morton codes, device latency model, heap allocation, PM-octree ops and
// the baseline index. These are sanity/regression benches, not paper
// figures.
//
// Unlike the figure benches this one has a custom main: a reporter
// subclass mirrors every run into the BenchReport JSON table while the
// stock console output stays untouched, and `--json <path>` is stripped
// from argv before google-benchmark parses its own flags.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "amr/mesh_backend.hpp"
#include "amr/neighbor_index.hpp"
#include "baseline/bptree.hpp"
#include "bench_report.hpp"
#include "common/simd.hpp"
#include "pmoctree/linear_tier.hpp"
#include "serve/reader.hpp"

using namespace pmo;

namespace {

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(1);
  std::uint32_t x = 123456, y = 654321, z = 111111;
  for (auto _ : state) {
    benchmark::DoNotOptimize(morton_encode3(x, y, z));
    x += 7;
    y += 13;
    z += 29;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_MortonDecode(benchmark::State& state) {
  std::uint64_t code = 0x123456789abcull;
  for (auto _ : state) {
    benchmark::DoNotOptimize(morton_decode3(code));
    code += 1234567;
  }
}
BENCHMARK(BM_MortonDecode);

void BM_LocCodeNeighbor(benchmark::State& state) {
  const auto code = LocCode::from_grid(8, 100, 150, 200);
  LocCode out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.neighbor(1, -1, 0, out));
  }
}
BENCHMARK(BM_LocCodeNeighbor);

void BM_DeviceWriteModeled(benchmark::State& state) {
  nvbm::Device dev(16 << 20, bench::device_config());
  std::uint64_t v = 42;
  std::uint64_t off = 0;
  for (auto _ : state) {
    dev.write(off, &v, sizeof(v));
    off = (off + 64) & ((16 << 20) - 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DeviceWriteModeled);

void BM_DeviceWriteInjected(benchmark::State& state) {
  nvbm::Config cfg = bench::device_config();
  cfg.latency_mode = nvbm::LatencyMode::kInjected;  // real 150ns spins
  nvbm::Device dev(16 << 20, cfg);
  std::uint64_t v = 42;
  std::uint64_t off = 0;
  for (auto _ : state) {
    dev.write(off, &v, sizeof(v));
    off = (off + 64) & ((16 << 20) - 64);
  }
}
BENCHMARK(BM_DeviceWriteInjected);

void BM_DeviceWriteCrashSim(benchmark::State& state) {
  // The store-heavy write path with crash simulation on: every write is a
  // line-granular dirty-bitmap test-and-set, periodically drained by
  // flush_all (the persist-point writeback). This is the path the bitmap
  // replaced an unordered_set on.
  nvbm::Config cfg = bench::device_config();
  cfg.crash_sim = true;
  nvbm::Device dev(16 << 20, cfg);
  std::uint64_t v = 42;
  std::uint64_t off = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    dev.write(off, &v, sizeof(v));
    off = (off + 64) & ((16 << 20) - 64);
    if ((++n & 0xffff) == 0) dev.flush_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DeviceWriteCrashSim);

void BM_HeapAllocFree(benchmark::State& state) {
  nvbm::Device dev(64 << 20, bench::device_config());
  nvbm::Heap heap(dev);
  for (auto _ : state) {
    const auto off = heap.alloc(sizeof(pmoctree::PNode));
    heap.free(off);
  }
}
BENCHMARK(BM_HeapAllocFree);

void BM_PmInsert(benchmark::State& state) {
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = static_cast<std::size_t>(state.range(0));
  auto tree = pmoctree::PmOctree::create(heap, pm);
  Rng rng(7);
  CellData d;
  for (auto _ : state) {
    const int level = 4;
    const std::uint32_t side = 1u << level;
    const auto code = LocCode::from_grid(
        level, static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)));
    tree.insert(code, d);
  }
}
BENCHMARK(BM_PmInsert)->Arg(0)->Arg(64 << 20)
    ->ArgNames({"dram_budget"});

void BM_PmUpdateShared(benchmark::State& state) {
  // Copy-on-write update cost right after a persist (worst case).
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 0;
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 3; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  CellData d;
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    tree.persist();  // make everything shared again
    state.ResumeTiming();
    const auto code = LocCode::from_grid(
        3, static_cast<std::uint32_t>(rng.below(8)),
        static_cast<std::uint32_t>(rng.below(8)),
        static_cast<std::uint32_t>(rng.below(8)));
    tree.update(code, d);
  }
}
BENCHMARK(BM_PmUpdateShared)->Iterations(200);

void BM_PmPersist(benchmark::State& state) {
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 16 << 20;
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 3; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  CellData d;
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    // Dirty ~10% of leaves between persists.
    for (int i = 0; i < 50; ++i) {
      const auto code = LocCode::from_grid(
          3, static_cast<std::uint32_t>(rng.below(8)),
          static_cast<std::uint32_t>(rng.below(8)),
          static_cast<std::uint32_t>(rng.below(8)));
      d.vof = rng.uniform();
      tree.update(code, d);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree.persist());
  }
}
BENCHMARK(BM_PmPersist)->Iterations(50);

void BM_PersistIncremental(benchmark::State& state) {
  // The dirty-subtree pruning fast path: after a full persist, touch ONE
  // leaf and persist again, with pruning toggled by the arg. The merge
  // visits the dirty root-to-leaf path when pruning is on versus the
  // whole tree when it is off — the per-iteration time difference is the
  // tentpole's payoff in its purest form.
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 64 << 20;  // whole working tree stays in C0
  pm.persist_pruning = state.range(0) != 0;
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();
  CellData d;
  double v = 0.0;
  std::uint64_t visits = 0, persists = 0;
  for (auto _ : state) {
    state.PauseTiming();
    d.vof = (v += 0.001);
    tree.update(LocCode::from_grid(4, 5, 9, 12), d);
    state.ResumeTiming();
    const auto stats = tree.persist();
    visits += stats.visits;
    ++persists;
  }
  state.counters["visits_per_persist"] = benchmark::Counter(
      persists == 0 ? 0.0
                    : static_cast<double>(visits) /
                          static_cast<double>(persists));
}
BENCHMARK(BM_PersistIncremental)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"pruning"})
    ->Iterations(50);

void BM_DeviceFlushCoalesced(benchmark::State& state) {
  // Flush-queue coalescing: `stride` controls dirty-line adjacency. With
  // stride=64 the per-iteration writes form one contiguous extent that
  // flush_all retires as a single span; stride=4096 leaves 64 scattered
  // extents. flush_spans telemetry (JSON counters) shows the ratio;
  // modeled write cost is identical — coalescing is flush-path-only.
  nvbm::Config cfg = bench::device_config();
  cfg.crash_sim = true;  // track dirty lines + the span queue
  nvbm::Device dev(16 << 20, cfg);
  const std::uint64_t stride = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t v = 42;
  std::uint64_t spans = 0, flushes = 0;
  for (auto _ : state) {
    std::uint64_t off = 0;
    for (int i = 0; i < 64; ++i) {
      dev.write(off, &v, sizeof(v));
      off = (off + stride) & ((16 << 20) - 64);
    }
    const auto before = dev.counters().flush_spans;
    dev.flush_all();
    spans += dev.counters().flush_spans - before;
    ++flushes;
  }
  state.counters["spans_per_flush"] = benchmark::Counter(
      flushes == 0 ? 0.0
                   : static_cast<double>(spans) /
                         static_cast<double>(flushes));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 64));
}
BENCHMARK(BM_DeviceFlushCoalesced)
    ->Arg(64)
    ->Arg(4096)
    ->ArgNames({"stride"});

void BM_PmTraverseLeaves(benchmark::State& state) {
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  nvbm::Heap heap(dev);
  auto tree = pmoctree::PmOctree::create(heap, pmoctree::PmConfig{});
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  for (auto _ : state) {
    std::size_t n = 0;
    tree.for_each_leaf([&](const LocCode&, const CellData&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 4096));
}
BENCHMARK(BM_PmTraverseLeaves);

void BM_SnapshotPinUnpin(benchmark::State& state) {
  nvbm::Device dev(std::size_t{256} << 20, bench::device_config());
  nvbm::Heap heap(dev);
  auto tree = pmoctree::PmOctree::create(heap, pmoctree::PmConfig{});
  for (int l = 0; l < 3; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();  // a durable epoch to pin
  for (auto _ : state) {
    auto snap = tree.pin_snapshot();
    benchmark::DoNotOptimize(snap.epoch());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotPinUnpin);

void BM_ServePointLookup(benchmark::State& state) {
  nvbm::Device dev(std::size_t{256} << 20, bench::device_config());
  nvbm::Heap heap(dev);
  auto tree = pmoctree::PmOctree::create(heap, pmoctree::PmConfig{});
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();
  serve::Reader reader(tree.pin_snapshot());
  Rng rng(17);
  const std::uint32_t side = 1u << 4;
  for (auto _ : state) {
    const auto code = LocCode::from_grid(
        4, static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)));
    benchmark::DoNotOptimize(reader.locate(code));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServePointLookup);

// ---- linear-tier descent ---------------------------------------------------

/// Serve-path point lookups over the all-NVBM tree with the cold bulk in
/// its original pointer representation. The baseline half of the
/// pointer-vs-linear descent pair below.
void BM_PointerDescent(benchmark::State& state) {
  nvbm::Device dev(std::size_t{256} << 20, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 0;
  pm.linear_compaction = false;
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();
  serve::Reader reader(tree.pin_snapshot());
  Rng rng(23);
  const std::uint32_t side = 1u << 4;
  for (auto _ : state) {
    const auto code = LocCode::from_grid(
        4, static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)));
    benchmark::DoNotOptimize(reader.locate(code));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PointerDescent);

/// Same lookups after persist-time compaction has rewritten the cold
/// bulk as Morton-sorted packed chains: the descent is rank-select over
/// SoA pages instead of a pointer chase. Compare against
/// BM_PointerDescent — same tree, same queries, different layout.
void BM_LinearDescent(benchmark::State& state) {
  nvbm::Device dev(std::size_t{256} << 20, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 0;
  pm.compact_min_records = 8;
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();
  // Quiescent pinpoint persist: freshens one path, compacts the rest.
  CellData d;
  d.vof = 0.5;
  tree.update(LocCode::from_grid(4, 0, 0, 0), d);
  tree.persist();
  serve::Reader reader(tree.pin_snapshot());
  Rng rng(23);
  const std::uint32_t side = 1u << 4;
  for (auto _ : state) {
    const auto code = LocCode::from_grid(
        4, static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)));
    benchmark::DoNotOptimize(reader.locate(code));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LinearDescent);

void emit_uniform_subtree(pmoctree::linear::Builder& b, const LocCode& code,
                          int levels_left) {
  CellData d;
  d.vof = static_cast<double>(code.key() & 0xff) / 255.0;
  const std::uint8_t mask = levels_left > 0 ? 0xff : 0;
  const std::size_t idx = b.add(code, mask, d);
  if (levels_left > 0)
    for (int i = 0; i < kChildrenPerNode; ++i)
      emit_uniform_subtree(b, code.child(i), levels_left - 1);
  b.close(idx);
}

/// The raw batched kernel: 8-lane multi-point locate against one chain,
/// all lanes stepped one level per round (ChainView::batch_locate), with
/// no charge model in the loop. This is the SIMD-friendly inner loop the
/// Jacobi gather feeds.
void BM_BatchLocate8(benchmark::State& state) {
  nvbm::Device dev(std::size_t{64} << 20, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::linear::Builder b;
  emit_uniform_subtree(b, LocCode::root(), 3);  // 585 records, 10 pages
  const std::uint64_t chain = heap.alloc(b.bytes());
  b.write(dev, chain, /*epoch=*/1);
  pmoctree::linear::ChainView view(dev, chain);

  Rng rng(29);
  std::vector<LocCode> targets;
  for (int i = 0; i < 1024; ++i)
    targets.push_back(LocCode::from_grid(
        3, static_cast<std::uint32_t>(rng.below(8)),
        static_cast<std::uint32_t>(rng.below(8)),
        static_cast<std::uint32_t>(rng.below(8))));
  std::uint32_t out[8];
  std::size_t at = 0;
  for (auto _ : state) {
    pmoctree::linear::batch_locate(view, targets.data() + at, out, 8);
    benchmark::DoNotOptimize(out[0]);
    at = (at + 8) & 1023;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 8));
}
BENCHMARK(BM_BatchLocate8);

// ---- solve kernels ---------------------------------------------------------

/// Morton-sorted uniform leaf set (one level) with pseudorandom fields,
/// in both the AoS (LeafChunk) and SoA (gather kernel) shapes.
struct SolveFixture {
  std::vector<LocCode> codes;
  std::vector<CellData> cells;
  std::vector<std::uint64_t> keys;
  std::vector<std::uint8_t> levels;
  std::vector<double> vof;
  std::vector<double> tracer;
};

SolveFixture make_uniform_leafset(int level) {
  SolveFixture f;
  const std::uint32_t side = 1u << level;
  for (std::uint32_t z = 0; z < side; ++z)
    for (std::uint32_t y = 0; y < side; ++y)
      for (std::uint32_t x = 0; x < side; ++x)
        f.codes.push_back(LocCode::from_grid(level, x, y, z));
  std::sort(f.codes.begin(), f.codes.end(),
            [](const LocCode& a, const LocCode& b) {
              return a.key() < b.key();
            });
  Rng rng(41);
  for (const auto& c : f.codes) {
    CellData d;
    d.vof = static_cast<double>(rng.below(1000)) / 999.0;
    d.tracer = static_cast<double>(rng.below(1000)) / 999.0;
    f.cells.push_back(d);
    f.keys.push_back(c.key());
    f.levels.push_back(static_cast<std::uint8_t>(c.level()));
    f.vof.push_back(d.vof);
    f.tracer.push_back(d.tracer);
  }
  return f;
}

/// One Jacobi gather pass over 4096 leaves through a prebuilt
/// face-neighbor slot table. Scalar vs AVX2 is the only difference
/// between the two variants; outputs are bit-identical (test_simd).
void gather_bench_impl(benchmark::State& state, bool simd_on) {
  const SolveFixture f = make_uniform_leafset(4);
  amr::FaceNeighborIndex index;
  index.build(f.keys.data(), f.levels.data(), f.keys.size());
  std::vector<double> relaxed(f.keys.size(), 0.0);
  std::vector<std::uint8_t> touched(f.keys.size(), 0);
  const bool saved = simd::enabled();
  simd::set_enabled(simd_on);
  for (auto _ : state) {
    simd::gather_relax(f.vof.data(), f.tracer.data(), index.slots(), 0,
                       f.keys.size(), relaxed.data(), touched.data());
    benchmark::DoNotOptimize(relaxed.data());
    benchmark::ClobberMemory();
  }
  simd::set_enabled(saved);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * f.keys.size()));
}

void BM_GatherScalar(benchmark::State& state) {
  gather_bench_impl(state, false);
}
BENCHMARK(BM_GatherScalar);

void BM_GatherSimd(benchmark::State& state) {
  gather_bench_impl(state, true);
}
BENCHMARK(BM_GatherSimd);

/// Full face-neighbor-index build (batched Morton decode/encode + moving
/// hint resolution) — the amortized per-sweep cost the index trades for
/// the per-face binary searches below.
void BM_NeighborIndexBuild(benchmark::State& state) {
  const SolveFixture f = make_uniform_leafset(4);
  amr::FaceNeighborIndex index;
  for (auto _ : state) {
    index.invalidate();
    index.build(f.keys.data(), f.levels.data(), f.keys.size());
    benchmark::DoNotOptimize(index.slots());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * f.keys.size()));
}
BENCHMARK(BM_NeighborIndexBuild);

/// LeafChunk::find with probes arriving in Morton order: the verified
/// hint short-circuits the binary search almost every time.
void BM_LeafFindHintHit(benchmark::State& state) {
  const SolveFixture f = make_uniform_leafset(4);
  amr::LeafChunk ch;
  ch.begin = 0;
  ch.end = f.codes.size();
  ch.codes = f.codes.data();
  ch.cells = f.cells.data();
  ch.leaves = f.codes.size();
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.find(f.codes[at]));
    at = (at + 1) & (f.codes.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LeafFindHintHit);

/// Same chunk, probes striding far from the previous answer: the hint
/// never matches, every find pays the full bisection.
void BM_LeafFindHintMiss(benchmark::State& state) {
  const SolveFixture f = make_uniform_leafset(4);
  amr::LeafChunk ch;
  ch.begin = 0;
  ch.end = f.codes.size();
  ch.codes = f.codes.data();
  ch.cells = f.cells.data();
  ch.leaves = f.codes.size();
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.find(f.codes[at]));
    at = (at + 2731) & (f.codes.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LeafFindHintMiss);

void BM_BptreeInsert(benchmark::State& state) {
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  nvfs::FileStore fs(dev);
  baseline::Bptree tree(fs, "bench");
  Rng rng(13);
  baseline::OctantRecord rec{};
  rec.level = 5;
  for (auto _ : state) {
    rec.key = rng();
    tree.insert(rec);
  }
}
BENCHMARK(BM_BptreeInsert);

void BM_BptreeFind(benchmark::State& state) {
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  nvfs::FileStore fs(dev);
  baseline::Bptree tree(fs, "bench");
  Rng rng(13);
  baseline::OctantRecord rec{};
  for (int i = 0; i < 50000; ++i) {
    rec.key = static_cast<std::uint64_t>(i) * 97;
    tree.insert(rec);
  }
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find((probe % 50000) * 97));
    probe += 7919;
  }
}
BENCHMARK(BM_BptreeFind);

void BM_EtreeCoverProbe(benchmark::State& state) {
  // The per-access index-probing cost the paper blames for out-of-core
  // slowness on NVBM.
  nvbm::Device dev(std::size_t{1} << 30, bench::device_config());
  baseline::EtreeBackend mesh(dev);
  for (int l = 0; l < 4; ++l) {
    mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                      nullptr);
  }
  Rng rng(17);
  for (auto _ : state) {
    const auto probe = LocCode::from_grid(
        6, static_cast<std::uint32_t>(rng.below(64)),
        static_cast<std::uint32_t>(rng.below(64)),
        static_cast<std::uint32_t>(rng.below(64)));
    benchmark::DoNotOptimize(mesh.cover(probe));
  }
}
BENCHMARK(BM_EtreeCoverProbe);

void BM_SamplerTick(benchmark::State& state) {
  // Full tick() over a representative series set — the guard number for
  // the PR 7 overhead budget. Build with -DPMO_TELEMETRY=OFF and rerun:
  // tick() returns immediately, so the ON/OFF delta IS the sampler cost.
  auto& reg = telemetry::Registry::global();
  reg.counter("micro.sampler.c").add(123);
  reg.gauge("micro.sampler.g").set(4.5);
  auto& h = reg.histogram("micro.sampler.h");
  for (std::uint64_t i = 1; i <= 4096; ++i) h.record(i);
  telemetry::timeseries::MetricSampler sampler(
      reg, {/*capacity=*/64, /*refresh_sources=*/false});
  using telemetry::timeseries::Kind;
  sampler.add({"c", Kind::kCounter, "micro.sampler.c", "", 0.0, true});
  sampler.add({"g", Kind::kGauge, "micro.sampler.g", "", 0.0, true});
  sampler.add(
      {"p99", Kind::kPercentile, "micro.sampler.h", "", 0.99, false});
  sampler.add({"rate", Kind::kRate, "micro.sampler.h", "", 0.0, false});
  for (auto _ : state) {
    sampler.tick();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerTick);

void BM_SamplerTickPointUninstalled(benchmark::State& state) {
  // The library sampling point with no sampler installed: the tax every
  // droplet step / persist pays unconditionally. One relaxed atomic load
  // when telemetry is on; fully compiled out under PMO_TELEMETRY=OFF.
  for (auto _ : state) {
    telemetry::timeseries::tick_point();
  }
}
BENCHMARK(BM_SamplerTickPointUninstalled);

class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(bench::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      report_.row({run.benchmark_name(),
                   TablePrinter::num(run.GetAdjustedRealTime(), 1),
                   TablePrinter::num(run.GetAdjustedCPUTime(), 1),
                   benchmark::GetTimeUnitString(run.time_unit),
                   std::to_string(run.iterations)});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report(
      "micro_ops", "Micro-benchmarks: substrate operations", argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg(argv[i]);
    if ((arg == "--json" || arg == "--trace" || arg == "--threads" ||
         arg == "--node-cache" || arg == "--timeseries" ||
         arg == "--simd") &&
        i + 1 < argc) {
      ++i;  // skip the flag and its value
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  report.begin_table(
      {"benchmark", "real_time", "cpu_time", "unit", "iterations"});
  JsonMirrorReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
