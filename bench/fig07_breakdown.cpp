// Figure 7 reproduction: execution-time percentage breakdown across the
// major simulation routines for the weak-scaling study (PM-octree).
//
// The breakdown is derived from the telemetry registry, not bench-local
// timers: ClusterSim publishes each routine's modeled worst-rank
// nanoseconds into the cluster.routine.* counters, and this bench deltas
// the registry around each run and rebuilds the table from that snapshot
// (cluster::breakdown_from_telemetry). The JSON mirror carries the raw
// per-routine nanoseconds alongside the display table.
//
// Expected shape (paper): Partition is 0% on 1 processor, ~19% at small
// scale, and grows to dominate (~56%) at 1000 processors; Refine&Coarsen
// and Balance shares shrink correspondingly.
#include "bench_report.hpp"

using namespace pmo;
using namespace pmo::bench;

int main(int argc, char** argv) {
  BenchReport report("fig07_breakdown",
                     "Figure 7: routine breakdown, weak scaling", argc,
                     argv);
  report.print_header();
  const double per_rank = 1.0e6 * bench_scale();
  PointOpts opts;
  opts.c0_octants_per_node = 1.5e5 * bench_scale();
  const int steps = 6;

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  const auto real_leaves = probe_leaves(params);

  static const char* kRoutines[] = {"Construct", "Refine&Coarsen",
                                    "Balance",   "Partition",
                                    "Solve",     "Advect",
                                    "Persist"};
  report.begin_table({"procs", "Construct%", "Refine&Coarsen%", "Balance%",
                      "Partition%", "Solve%", "Advect%", "Persist%",
                      "total(s)"});
  namespace json = telemetry::json;
  json::Value routine_ns = json::Value::object();
  auto& reg = telemetry::Registry::global();
  for (const int procs : {1, 6, 24, 100, 250, 500, 1000}) {
    const double target = per_rank * procs;
    const auto before = reg.snapshot();
    const auto res = run_point(Backend::kPm, procs, target, steps, params,
                               opts, real_leaves);
    const auto delta = reg.snapshot().delta(before);
    const auto breakdown = cluster::breakdown_from_telemetry(delta);
    std::vector<std::string> row{std::to_string(procs)};
    for (const char* routine : kRoutines) {
      row.push_back(TablePrinter::num(breakdown.percent(routine), 1));
    }
    row.push_back(TablePrinter::num(res.cluster.total_s, 1));
    report.row(std::move(row));

    json::Value point = json::Value::object();
    for (const auto& rm : cluster::kRoutineMetrics) {
      point[rm.metric] = delta.counter(rm.metric);
    }
    // Lane-0 device read traffic: `lines_read` is what actually reached
    // the NVBM medium, `cached_reads` the node-cache hits served at DRAM
    // latency — the pair that shows the read-path acceleration in the
    // JSON (compare a default run against `--node-cache off`).
    point["nvbm_lines_read"] = static_cast<double>(res.nvbm_lines_read);
    point["nvbm_lines_written"] =
        static_cast<double>(res.nvbm_lines_written);
    point["nvbm_cached_reads"] = static_cast<double>(res.nvbm_cached_reads);
    routine_ns[std::to_string(procs)] = std::move(point);
  }
  report.print_table(std::cout);
  std::printf("\nexpected shape: Partition%% = 0 at 1 proc, rising to "
              "dominate at 1000 procs (paper: 19%% at 6, 56%% at 1000).\n");
  report.set("routine_ns", std::move(routine_ns));
  report.write();
  return 0;
}
