// Figure 7 reproduction: execution-time percentage breakdown across the
// major simulation routines for the weak-scaling study (PM-octree).
//
// Expected shape (paper): Partition is 0% on 1 processor, ~19% at small
// scale, and grows to dominate (~56%) at 1000 processors; Refine&Coarsen
// and Balance shares shrink correspondingly.
#include "bench_common.hpp"

using namespace pmo;
using namespace pmo::bench;

int main() {
  print_table2_header("Figure 7: routine breakdown, weak scaling");
  const double per_rank = 1.0e6 * bench_scale();
  PointOpts opts;
  opts.c0_octants_per_node = 1.5e5 * bench_scale();
  const int steps = 6;

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  const auto real_leaves = probe_leaves(params);

  static const char* kRoutines[] = {"Construct", "Refine&Coarsen",
                                    "Balance",   "Partition",
                                    "Solve",     "Advect",
                                    "Persist"};
  TablePrinter table({"procs", "Construct%", "Refine&Coarsen%", "Balance%",
                      "Partition%", "Solve%", "Advect%", "Persist%",
                      "total(s)"});
  for (const int procs : {1, 6, 24, 100, 250, 500, 1000}) {
    const double target = per_rank * procs;
    const auto res = run_point(Backend::kPm, procs, target, steps, params,
                               opts, real_leaves);
    std::vector<std::string> row{std::to_string(procs)};
    for (const char* routine : kRoutines) {
      row.push_back(TablePrinter::num(res.cluster.breakdown.percent(routine), 1));
    }
    row.push_back(TablePrinter::num(res.cluster.total_s, 1));
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nexpected shape: Partition%% = 0 at 1 proc, rising to "
              "dominate at 1000 procs (paper: 19%% at 6, 56%% at 1000).\n");
  return 0;
}
