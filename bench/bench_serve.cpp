// Snapshot serving bench: N reader threads running point/box/neighbor/
// interface queries at a target QPS against the latest durable epoch
// while the droplet workload keeps mutating and persisting the same
// tree. Reports queries/sec, p50/p95/p99 query latency, snapshot
// staleness (epochs behind the durable head at pin time) and the
// epoch-based-reclamation high-water mark.
//
// Two phases, two contracts:
//  * LIVE phase — mutator + readers race on the exec pool. Everything
//    reported from it (qps, latency percentiles, staleness) is
//    wall-clock and may vary run to run; that is the point.
//  * VERIFY sweep — after the mutator stops, every lane replays a fixed
//    query stream against the final durable epoch. Result hash and
//    modeled serve charges from this sweep are pure functions of the
//    persisted image, bit-identical for --threads 1 and --threads 8
//    (the determinism contract; fig06-style JSON comparison applies).
//
// Observability (PR 7): the report's MetricSampler is ticked explicitly
// by the mutator once per step (library tick points are suppressed
// inside pool tasks), recording QPS, interpolated p99, reclamation HWM,
// staleness and pin-count trajectories. A SloTracker watches every
// query against a latency objective (`--slo <ns>`, default 200us p99),
// publishes burn-rate/budget gauges, and tail-samples slow queries as
// retroactive trace slices on the owning reader lane's track.
#include "bench_report.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <thread>

#include "serve/reader.hpp"
#include "serve/slo.hpp"
#include "telemetry/trace.hpp"

using namespace pmo;
using namespace pmo::bench;

namespace {

/// Trace tracks: the mutator and every reader lane get distinct pids so
/// the exported trace shows serving concurrency as separate rows. The
/// values live in trace.hpp so the SLO tracker's tail-sampled slices
/// land on the same lane tracks (layout contract checked by trace_test).
constexpr std::uint32_t kMutatorPid = telemetry::trace::kServeMutatorPid;
constexpr std::uint32_t kReaderPidBase =
    telemetry::trace::kServeReaderPidBase;

/// issue_query's seq % 4 rotation, for SLO slow-query labeling.
constexpr const char* kQueryKind[4] = {"point", "box", "neighbors",
                                       "interface"};

/// splitmix64: the lane-local deterministic query stream generator.
std::uint64_t next_u64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// FNV-1a over the LOGICAL content of query results (codes + cell
/// payloads), never over NVBM offsets: heap layout may differ between
/// runs (GC timing vs pins), logical content may not.
struct ResultHash {
  std::uint64_t h = 1469598103934665603ull;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void leaf(const serve::Leaf& l) {
    u64(l.code.key());
    u64(static_cast<std::uint64_t>(l.code.level()));
    u64(std::bit_cast<std::uint64_t>(l.data.vof));
    u64(std::bit_cast<std::uint64_t>(l.data.tracer));
    u64(std::bit_cast<std::uint64_t>(l.data.u));
    u64(std::bit_cast<std::uint64_t>(l.data.v));
    u64(std::bit_cast<std::uint64_t>(l.data.w));
    u64(std::bit_cast<std::uint64_t>(l.data.pressure));
  }
};

/// One query from the lane's deterministic stream: rotates point lookup,
/// box query, face-neighbor find and interface extraction over
/// rng-derived targets. Folds results into `hash` when non-null (the
/// verify sweep); the live phase passes nullptr and discards results.
void issue_query(serve::Reader& r, std::uint64_t& rng, std::uint64_t seq,
                 ResultHash* hash) {
  const std::uint32_t mask = (std::uint32_t{1} << kMaxLevel) - 1;
  const std::uint64_t a = next_u64(rng);
  const std::uint64_t b = next_u64(rng);
  const std::uint32_t x = static_cast<std::uint32_t>(a) & mask;
  const std::uint32_t y = static_cast<std::uint32_t>(a >> 32) & mask;
  const std::uint32_t z = static_cast<std::uint32_t>(b) & mask;
  const auto fold = [&](const serve::Leaf& l) {
    if (hash != nullptr) hash->leaf(l);
  };
  switch (seq % 4) {
    case 0: {  // point lookup at the finest level
      const serve::Leaf l =
          r.locate(LocCode::from_grid(kMaxLevel, x, y, z));
      fold(l);
      break;
    }
    case 1: {  // small region query (2^14-wide box on the finest grid)
      const std::uint32_t w = std::uint32_t{1} << 14;
      serve::Box box;
      box.lo[0] = x & ~(w - 1);
      box.lo[1] = y & ~(w - 1);
      box.lo[2] = z & ~(w - 1);
      for (int i = 0; i < 3; ++i) box.hi[i] = box.lo[i] + w - 1;
      r.query_box(box, fold);
      break;
    }
    case 2: {  // neighbors of the leaf covering a random point
      const serve::Leaf l =
          r.locate(LocCode::from_grid(kMaxLevel, x, y, z));
      fold(l);
      r.face_neighbors(l.code, fold);
      break;
    }
    default: {  // coarse/fine interface inside a 2^15-wide box
      const std::uint32_t w = std::uint32_t{1} << 15;
      serve::Box box;
      box.lo[0] = x & ~(w - 1);
      box.lo[1] = y & ~(w - 1);
      box.lo[2] = z & ~(w - 1);
      for (int i = 0; i < 3; ++i) box.hi[i] = box.lo[i] + w - 1;
      r.interface_facets(box, [&](const serve::InterfaceFacet& f) {
        if (hash != nullptr) {
          hash->leaf(f.fine);
          hash->leaf(f.coarse);
          hash->u64(static_cast<std::uint64_t>(f.face));
        }
      });
      break;
    }
  }
}

struct LaneStats {
  std::uint64_t queries = 0;
  std::uint64_t pins = 0;
  std::uint64_t stale_max = 0;
  std::uint64_t stale_sum = 0;
  telemetry::Histogram latency;  ///< wall-clock ns, lane-local
};

}  // namespace

int main(int argc, char** argv) {
  BenchReport report(
      "serve",
      "Snapshot serving: concurrent readers vs droplet mutator",
      argc, argv);
  int readers = 4;
  double target_qps = 2000.0;
  std::uint64_t slo_ns = 200'000;  // p99 objective: 200 us
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--readers") readers = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--qps") target_qps = std::atof(argv[i + 1]);
    if (std::string(argv[i]) == "--slo") {
      slo_ns = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    }
  }
  readers = std::max(1, readers);
  target_qps = std::max(1.0, target_qps);
  slo_ns = std::max<std::uint64_t>(1, slo_ns);
  report.print_header();
  telemetry::trace::name_current_thread("bench");
  // Live-phase numbers (latency, staleness, reclamation) are wall-clock
  // racy by design — tell benchdiff not to exact-match modeled counters.
  report.set_modeled_exact(false);

  const double scale = bench_scale();
  const int steps = std::max(3, static_cast<int>(40 * std::min(1.0, scale)));
  const int batch = std::max(8, static_cast<int>(64 * std::min(1.0, scale)));
  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = scale >= 4 ? 5 : 4;
  params.dt = 3.0 / steps;

  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 1 << 20;
  auto bundle = make_pm(std::size_t{256} << 20, pm);
  amr::DropletWorkload wl(params);
  register_droplet_feature(bundle, wl);
  wl.initialize(*bundle.mesh);
  // Seed the first durable epoch so readers have something to pin from
  // the very first batch.
  wl.step(*bundle.mesh, 0, /*persist=*/true);
  std::printf("mesh: %zu leaves, %d mutator steps, %d readers @ %.0f QPS "
              "target\n\n",
              bundle.mesh->leaf_count(), steps, readers, target_qps);

  exec::ThreadPool pool(bench_threads());
  amr::PmOctreeBackend& backend = *bundle.pm;

  // Serving-side observability: pins and the reclamation high-water mark
  // as pull-mode gauges (refreshed by every sampler tick / snapshot),
  // staleness as a push gauge written by readers at pin time.
  auto& reg = telemetry::Registry::global();
  telemetry::Gauge& stale_gauge = reg.gauge("serve.staleness");
  telemetry::Registry::Source serve_src = reg.register_source(
      [&backend](telemetry::Registry& r) {
        r.gauge("serve.pins").set(
            static_cast<double>(backend.tree().snapshot_pins()));
        r.gauge("serve.reclaim_hwm").set(static_cast<double>(
            backend.tree().deferred_reclaim_high_water()));
      },
      [&reg] {
        reg.drop_gauges("serve.pins");
        reg.drop_gauges("serve.reclaim_hwm");
        reg.drop_gauges("serve.staleness");
      });

  // Serving time-series, sampled once per mutator step (explicit ticks:
  // library tick points are suppressed inside pool tasks). All
  // wall-clock-coupled, hence modeled=false.
  using telemetry::timeseries::Kind;
  auto& sampler = report.sampler();
  sampler.add({"serve.qps", Kind::kRate, "serve.query_ns", "", 0.0, false});
  sampler.add(
      {"serve.p99_ns", Kind::kPercentile, "serve.query_ns", "", 0.99, false});
  sampler.add(
      {"serve.reclaim_hwm", Kind::kGauge, "serve.reclaim_hwm", "", 0.0, false});
  sampler.add(
      {"serve.staleness", Kind::kGauge, "serve.staleness", "", 0.0, false});
  sampler.add({"serve.pins", Kind::kGauge, "serve.pins", "", 0.0, false});

  serve::SloConfig slo_cfg;
  slo_cfg.latency_objective_ns = slo_ns;
  serve::SloTracker slo(reg, slo_cfg);
  sampler.add({"serve.slo.budget_remaining", Kind::kGauge,
               "serve.slo.budget_remaining", "", 0.0, false});

  // ---- LIVE phase: task 0 mutates+persists, tasks 1..R serve ---------------
  std::atomic<bool> done{false};
  std::vector<LaneStats> lanes(static_cast<std::size_t>(readers));
  telemetry::Histogram& global_lat =
      telemetry::Registry::global().histogram("serve.query_ns");
  // Per-lane query pacing keeps the *aggregate* arrival rate at the
  // target: lane interval = readers / qps.
  const auto interval = std::chrono::nanoseconds(static_cast<std::uint64_t>(
      1e9 * readers / target_qps));

  std::vector<exec::ThreadPool::Task> tasks;
  tasks.push_back([&] {
    telemetry::trace::TrackGuard track(kMutatorPid, 0);
    telemetry::trace::name_process(kMutatorPid, "serve mutator");
    for (int s = 1; s <= steps; ++s) {
      telemetry::trace::begin("serve.mutate_step");
      wl.step(*bundle.mesh, s, /*persist=*/true);
      telemetry::trace::end("serve.mutate_step");
      // One SLO window + one time-series sample per mutator step. Ticks
      // run only here (single-driver contract); Device counters are
      // mutator-written, so sampling them from this thread is race-free.
      slo.tick();
      report.sampler().tick();
    }
    done.store(true, std::memory_order_release);
  });
  for (int lane = 0; lane < readers; ++lane) {
    tasks.push_back([&, lane] {
      const std::uint32_t pid =
          kReaderPidBase + static_cast<std::uint32_t>(lane);
      telemetry::trace::TrackGuard track(pid, 0);
      telemetry::trace::name_process(
          pid, "serve reader " + std::to_string(lane));
      LaneStats& st = lanes[static_cast<std::size_t>(lane)];
      std::uint64_t rng = 0x5eedull + static_cast<std::uint64_t>(lane);
      serve::Reader reader(backend.pin_snapshot());
      auto next = std::chrono::steady_clock::now();
      bool first = true;
      // Re-pin the latest durable epoch per batch; run at least one
      // batch even if the mutator already finished (--threads 1 runs
      // the tasks sequentially).
      while (first || !done.load(std::memory_order_acquire)) {
        first = false;
        pmoctree::SnapshotHandle snap = backend.pin_snapshot();
        const std::uint64_t stale =
            backend.durable_epoch() - snap.epoch();
        st.stale_max = std::max(st.stale_max, stale);
        st.stale_sum += stale;
        ++st.pins;
        stale_gauge.set(static_cast<double>(stale));
        reader.rebind(std::move(snap));
        telemetry::trace::begin("serve.batch");
        for (int q = 0; q < batch; ++q) {
          const auto now = std::chrono::steady_clock::now();
          if (next > now) std::this_thread::sleep_until(next);
          next = std::max(next + interval,
                          std::chrono::steady_clock::now());
          const serve::ReadCharges before = reader.charges();
          const std::uint64_t ts0 = telemetry::trace::now_ns();
          const auto t0 = std::chrono::steady_clock::now();
          issue_query(reader, rng, st.queries, nullptr);
          const std::uint64_t ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
          st.latency.record(ns);
          global_lat.record(ns);
          const serve::ReadCharges after = reader.charges();
          serve::ReadCharges d;
          d.node_loads = after.node_loads - before.node_loads;
          d.cached_loads = after.cached_loads - before.cached_loads;
          d.lines_read = after.lines_read - before.lines_read;
          d.modeled_ns = after.modeled_ns - before.modeled_ns;
          slo.observe(static_cast<std::uint32_t>(lane),
                      kQueryKind[st.queries % 4], ts0, ns, d, stale);
          ++st.queries;
        }
        telemetry::trace::end("serve.batch");
      }
    });
  }
  const auto live0 = std::chrono::steady_clock::now();
  pool.run_tasks(tasks);
  const double live_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    live0)
          .count();

  // ---- per-lane table ------------------------------------------------------
  report.begin_table({"lane", "queries", "qps", "p50 us", "p95 us",
                      "p99 us", "pins", "stale max", "stale mean"});
  std::uint64_t total_q = 0, stale_max = 0, stale_sum = 0, pins = 0;
  for (int lane = 0; lane < readers; ++lane) {
    const LaneStats& st = lanes[static_cast<std::size_t>(lane)];
    total_q += st.queries;
    stale_max = std::max(stale_max, st.stale_max);
    stale_sum += st.stale_sum;
    pins += st.pins;
    const double mean_stale =
        st.pins != 0 ? static_cast<double>(st.stale_sum) /
                           static_cast<double>(st.pins)
                     : 0.0;
    report.row({std::to_string(lane), std::to_string(st.queries),
                TablePrinter::num(st.queries / live_s, 0),
                TablePrinter::num(st.latency.percentile(0.50) / 1e3, 1),
                TablePrinter::num(st.latency.percentile(0.95) / 1e3, 1),
                TablePrinter::num(st.latency.percentile(0.99) / 1e3, 1),
                std::to_string(st.pins), std::to_string(st.stale_max),
                TablePrinter::num(mean_stale, 2)});
  }
  report.print_table(std::cout);
  const double qps = total_q / live_s;
  const double stale_mean =
      pins != 0 ? static_cast<double>(stale_sum) / static_cast<double>(pins)
                : 0.0;
  std::printf("\nlive: %.2f s, %llu queries, %.0f QPS aggregate (target "
              "%.0f); latency p50/p95/p99 = %.1f/%.1f/%.1f us; staleness "
              "max %llu mean %.2f epochs; deferred-reclaim HWM %zu nodes\n",
              live_s, static_cast<unsigned long long>(total_q), qps,
              target_qps, global_lat.percentile(0.50) / 1e3,
              global_lat.percentile(0.95) / 1e3,
              global_lat.percentile(0.99) / 1e3,
              static_cast<unsigned long long>(stale_max), stale_mean,
              backend.tree().deferred_reclaim_high_water());

  // ---- VERIFY sweep: deterministic fixed-lane replay -----------------------
  // Same lane count regardless of --threads; per-lane streams are fixed
  // and results are combined in lane order, so hash and charges are
  // bit-identical across thread counts.
  const int verify_q = 4 * batch;
  std::vector<ResultHash> hashes(static_cast<std::size_t>(readers));
  std::vector<serve::ReadCharges> charges(static_cast<std::size_t>(readers));
  pool.parallel_for(static_cast<std::size_t>(readers), [&](std::size_t lane) {
    serve::Reader reader(backend.pin_snapshot());
    std::uint64_t rng = 0xfeedull + lane;
    for (int q = 0; q < verify_q; ++q) {
      issue_query(reader, rng, static_cast<std::uint64_t>(q),
                  &hashes[lane]);
    }
    charges[lane] = reader.charges();
  });
  ResultHash combined;
  serve::ReadCharges total_charges;
  for (int lane = 0; lane < readers; ++lane) {
    combined.u64(hashes[static_cast<std::size_t>(lane)].h);
    total_charges.merge(charges[static_cast<std::size_t>(lane)]);
  }
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof hash_hex, "0x%016llx",
                static_cast<unsigned long long>(combined.h));
  std::printf("verify: %d lanes x %d queries on epoch %u, result hash %s, "
              "modeled read %.3f ms (%llu NVBM loads, %llu cached)\n",
              readers, verify_q, backend.durable_epoch(), hash_hex,
              total_charges.modeled_ns / 1e6,
              static_cast<unsigned long long>(total_charges.node_loads),
              static_cast<unsigned long long>(total_charges.cached_loads));

  namespace json = telemetry::json;
  json::Value serve = json::Value::object();
  serve["readers"] = readers;
  serve["target_qps"] = target_qps;
  serve["mutator_steps"] = steps;
  serve["live_seconds"] = live_s;
  serve["queries"] = total_q;
  serve["qps"] = qps;
  json::Value latency = json::Value::object();
  latency["p50_ns"] = global_lat.percentile(0.50);
  latency["p95_ns"] = global_lat.percentile(0.95);
  latency["p99_ns"] = global_lat.percentile(0.99);
  latency["mean_ns"] = global_lat.mean();
  latency["max_ns"] = global_lat.max();
  serve["latency"] = std::move(latency);
  json::Value staleness = json::Value::object();
  staleness["max"] = stale_max;
  staleness["mean"] = stale_mean;
  serve["staleness"] = std::move(staleness);
  serve["deferred_reclaim_hwm"] =
      backend.tree().deferred_reclaim_high_water();
  serve["pins"] = backend.tree().snapshot_pins();
  serve["unpins"] = backend.tree().snapshot_unpins();
  serve["result_hash"] = std::string(hash_hex);
  json::Value vcharges = json::Value::object();
  vcharges["node_loads"] = total_charges.node_loads;
  vcharges["cached_loads"] = total_charges.cached_loads;
  vcharges["lines_read"] = total_charges.lines_read;
  vcharges["modeled_ns"] = total_charges.modeled_ns;
  serve["verify_charges"] = std::move(vcharges);
  report.set("serve", std::move(serve));
  std::printf("slo: p%.0f objective %llu ns, %llu/%llu violations, budget "
              "remaining %.3f, %llu tail-sampled slow queries (>= %llu ns)\n",
              100.0 * slo_cfg.objective_quantile,
              static_cast<unsigned long long>(slo_ns),
              static_cast<unsigned long long>(slo.violations()),
              static_cast<unsigned long long>(slo.total()),
              slo.budget_remaining(),
              static_cast<unsigned long long>(slo.tail_sampled()),
              static_cast<unsigned long long>(slo.slow_threshold_ns()));
  report.set("slo", slo.to_json());
  report.write();
  return 0;
}
