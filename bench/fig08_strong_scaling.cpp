// Figure 8 reproduction: strong scaling of the simulation with PM-octree
// — fixed 150M-element problem, 240 to 1000 processors — plus the
// per-routine breakdown (Fig. 8b).
//
// Expected shape (paper): speedup close to ideal over this range; the
// breakdown stays stable across processor counts (no scalability cliff).
#include "bench_report.hpp"

using namespace pmo;
using namespace pmo::bench;

int main(int argc, char** argv) {
  BenchReport report("fig08_strong_scaling",
                     "Figure 8: strong scaling, 150M elements, PM-octree",
                     argc, argv);
  report.print_header();
  const double global = 150.0e6 * bench_scale();
  PointOpts opts;
  opts.c0_octants_per_node = 1.5e5 * bench_scale();
  opts.measure_ranks = 8;  // lane-level parallelism (see fig06)
  const int steps = 6;

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  const auto real_leaves = probe_leaves(params);
  std::printf("real mesh: %zu leaves; global target %s elements\n\n",
              real_leaves, elems(global).c_str());

  const int procs_list[] = {240, 360, 500, 640, 800, 1000};
  double base_time = 0.0;
  report.begin_table({"procs", "time(s)", "speedup", "ideal", "Refine%",
                      "Balance%", "Partition%", "Solve%", "Persist%"});
  for (const int procs : procs_list) {
    const auto res = run_point(Backend::kPm, procs, global, steps, params,
                               opts, real_leaves);
    if (base_time == 0.0) base_time = res.cluster.total_s;
    const double speedup = base_time / res.cluster.total_s;
    const double ideal =
        static_cast<double>(procs) / static_cast<double>(procs_list[0]);
    report.row({std::to_string(procs), TablePrinter::num(res.cluster.total_s, 1),
               TablePrinter::num(speedup, 2), TablePrinter::num(ideal, 2),
               TablePrinter::num(res.cluster.breakdown.percent("Refine&Coarsen"), 1),
               TablePrinter::num(res.cluster.breakdown.percent("Balance"), 1),
               TablePrinter::num(res.cluster.breakdown.percent("Partition"), 1),
               TablePrinter::num(res.cluster.breakdown.percent("Solve"), 1),
               TablePrinter::num(res.cluster.breakdown.percent("Persist"), 1)});
  }
  report.print_table(std::cout);
  std::printf("\nexpected shape: speedup tracks ideal (within the "
              "Partition overhead); breakdown shares stay roughly stable "
              "across processor counts.\n");
  report.write();
  return 0;
}
