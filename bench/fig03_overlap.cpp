// Figure 3 reproduction: octant overlap ratio between V_{i-1} and V_i and
// memory usage per 1000 octants over the droplet-ejection simulation.
// Also reports the §1 statistic: the fraction of memory accesses that are
// writes during meshing (paper: 41% average, 72% max).
#include "bench_report.hpp"

#include <set>

using namespace pmo;
using namespace pmo::bench;

int main(int argc, char** argv) {
  BenchReport report(
      "fig03_overlap",
      "Figure 3: overlap ratio & memory per 1000 octants (150 steps)",
      argc, argv);
  report.print_header();
  // Compute slices (amr.step) stay on this thread's row; the PM backend
  // reroutes persist work to its own "persist" row of the same process.
  telemetry::trace::name_current_thread("compute");

  const double scale = bench_scale();
  const int steps = static_cast<int>(150 * std::min(1.0, scale));
  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = scale >= 4 ? 5 : 4;
  params.dt = 3.0 / steps;  // full jet evolution over the run

  pmoctree::PmConfig pm;
  // Small C0: most octants live in NVBM, so version sharing (not DRAM
  // residence) is what bounds the memory footprint.
  pm.dram_budget_bytes = 48 << 10;
  auto bundle = make_pm(std::size_t{256} << 20, pm);
  amr::DropletWorkload wl(params);
  register_droplet_feature(bundle, wl);
  wl.initialize(*bundle.mesh);
  std::printf("mesh: %zu initial leaves, %d steps\n\n",
              bundle.mesh->leaf_count(), steps);

  report.begin_table({"step", "octants", "overlap%", "struct overlap%",
                      "KiB/1000 octants", "mem factor vs 1 copy",
                      "write frac%"});
  OnlineStats overlap_stats, struct_overlap, write_frac, mem_factor;
  const int print_every = std::max(1, steps / 15);
  std::set<std::uint64_t> prev_leaves;
  for (int s = 0; s < steps; ++s) {
    const auto reads0 = bundle.pm->tree().dram_counters().reads +
                        bundle.device->counters().reads;
    const auto writes0 = bundle.pm->tree().dram_counters().writes +
                         bundle.device->counters().writes;
    wl.step(*bundle.mesh, s);
    const auto& persist = bundle.pm->last_persist();
    const auto stats = bundle.pm->tree().stats();

    // Structural overlap: leaf octants (by locational code) present in
    // both adjacent steps — the paper's spatial-domain overlap notion.
    std::set<std::uint64_t> cur_leaves;
    bundle.mesh->visit_leaves([&](const LocCode& c, const CellData&) {
      cur_leaves.insert(c.key() |
                        (static_cast<std::uint64_t>(c.level()) << 60));
    });
    std::size_t common = 0;
    for (const auto k : cur_leaves) common += prev_leaves.count(k);
    const double s_overlap =
        prev_leaves.empty()
            ? 0.0
            : static_cast<double>(common) /
                  static_cast<double>(cur_leaves.size());
    prev_leaves = std::move(cur_leaves);

    const auto reads1 = bundle.pm->tree().dram_counters().reads +
                        bundle.device->counters().reads;
    const auto writes1 = bundle.pm->tree().dram_counters().writes +
                         bundle.device->counters().writes;
    const double wf = static_cast<double>(writes1 - writes0) /
                      std::max<double>(1.0, static_cast<double>(
                                                (reads1 - reads0) +
                                                (writes1 - writes0)));

    const double bytes = static_cast<double>(stats.dram_bytes +
                                             stats.nvbm_live_bytes);
    const double per_1000 =
        bytes / std::max<std::size_t>(1, stats.nodes) * 1000.0 / 1024.0;
    const double factor =
        static_cast<double>(stats.unique_physical_nodes) /
        std::max<std::size_t>(1, stats.nodes);
    overlap_stats.add(persist.overlap_ratio);
    if (s > 0) struct_overlap.add(s_overlap);
    write_frac.add(wf);
    mem_factor.add(factor);
    if (s % print_every == 0 || s == steps - 1) {
      report.row({std::to_string(s), std::to_string(stats.nodes),
                 TablePrinter::num(100.0 * persist.overlap_ratio, 1),
                 TablePrinter::num(100.0 * s_overlap, 1),
                 TablePrinter::num(per_1000, 1),
                 TablePrinter::num(factor, 3),
                 TablePrinter::num(100.0 * wf, 1)});
    }
  }
  report.print_table(std::cout);

  std::printf("\noverlap ratio (data-identical octants): min %.0f%%, max "
              "%.0f%%, mean %.0f%%; structural (spatial) overlap: min "
              "%.0f%%, max %.0f%% (paper: 39%%-99%%)\n",
              100.0 * overlap_stats.min(), 100.0 * overlap_stats.max(),
              100.0 * overlap_stats.mean(), 100.0 * struct_overlap.min(),
              100.0 * struct_overlap.max());
  std::printf("memory factor vs single copy: max %.2fx, final %.2fx "
              "(paper: sharing saves up to 1.98x; 1.01x at 99.5%% "
              "overlap)\n",
              mem_factor.max(), mem_factor.mean());
  std::printf("write fraction of memory accesses: mean %.0f%%, max %.0f%% "
              "(paper: 41%% avg, 72%% max)\n",
              100.0 * write_frac.mean(), 100.0 * write_frac.max());

  namespace json = telemetry::json;
  json::Value summary = json::Value::object();
  summary["overlap_mean"] = overlap_stats.mean();
  summary["overlap_max"] = overlap_stats.max();
  summary["struct_overlap_min"] = struct_overlap.min();
  summary["struct_overlap_max"] = struct_overlap.max();
  summary["mem_factor_max"] = mem_factor.max();
  summary["write_frac_mean"] = write_frac.mean();
  summary["write_frac_max"] = write_frac.max();
  report.set("summary", std::move(summary));
  report.write();
  return 0;
}
