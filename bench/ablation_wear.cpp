// Ablation: NVBM endurance/wear (§5.5's "extend the lifetime of NVBM"
// claim, Table 2's endurance row).
//
// Runs the droplet workload with per-cache-line wear tracking enabled and
// compares maximum and mean line wear with and without the dynamic layout
// transformation, plus an estimate of device lifetime at Table 2's
// endurance bounds. The transformation moves write-hot subtrees to DRAM,
// so the hottest NVBM lines should wear more slowly.
#include "bench_report.hpp"

using namespace pmo;
using namespace pmo::bench;

namespace {

struct WearResult {
  std::uint64_t max_wear;
  double mean_wear;
  std::uint64_t writes;
  double steps;
};

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("ablation_wear", "Ablation: NVBM wear / endurance",
                     argc, argv);
  report.print_header();
  const int steps = static_cast<int>(10 * bench_scale());

  auto run_direct = [&](bool transform) {
    nvbm::Config cfg = device_config();
    cfg.track_wear = true;
    auto dev = std::make_unique<nvbm::Device>(std::size_t{256} << 20, cfg);
    pmoctree::PmConfig pm;
    pm.dram_budget_bytes = 64 << 10;
    pm.enable_transform = transform;
    auto mesh = std::make_unique<amr::PmOctreeBackend>(*dev, pm);
    amr::DropletParams params;
    params.min_level = 3;
    params.max_level = 5;
    params.dt = 0.12;
    amr::DropletWorkload wl(params);
    mesh->register_feature([&wl](const LocCode& c, const CellData& d) {
      return wl.hot_feature(c, d);
    });
    wl.initialize(*mesh);
    for (int s = 0; s < steps; ++s) wl.step(*mesh, s);
    return WearResult{dev->max_wear(), dev->mean_wear(),
                      dev->counters().writes,
                      static_cast<double>(steps)};
  };

  report.begin_table({"config", "max line wear", "mean line wear",
                      "NVBM writes", "lifetime @1e6 writes/line",
                      "lifetime @1e8"});
  for (const bool transform : {false, true}) {
    const auto r = run_direct(transform);
    // Lifetime: steps until the hottest line reaches the endurance bound,
    // expressed in multiples of this run.
    const double runs_1e6 = 1e6 / std::max<double>(1.0, r.max_wear);
    const double runs_1e8 = 1e8 / std::max<double>(1.0, r.max_wear);
    report.row({transform ? "with transformation" : "without",
               std::to_string(r.max_wear), TablePrinter::num(r.mean_wear, 1),
               std::to_string(r.writes),
               TablePrinter::num(runs_1e6 * r.steps, 0) + " steps",
               TablePrinter::num(runs_1e8 * r.steps, 0) + " steps"});
  }
  report.print_table(std::cout);
  std::printf("\nfinding: max line wear is dominated by allocator metadata "
              "(the heap's high-water line is written on every NVBM "
              "allocation), not by octant payloads — so the layout "
              "transformation leaves max wear unchanged and a production "
              "deployment would need metadata wear-leveling first. Octant "
              "wear (mean) is comparable across configs. Endurance bounds "
              "from Table 2 (1e6-1e8 writes/bit).\n");
  report.write();
  return 0;
}
