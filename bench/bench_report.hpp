// Machine-readable bench output (--json flag).
//
// Every bench binary mirrors its console table into a JSON document so the
// figure reproductions leave a parseable perf trajectory behind
// (BENCH_*.json in EXPERIMENTS.md). Schema, stable at schema_version 2:
//
//   {
//     "schema_version": 2,
//     "bench":  "fig07_breakdown",          // binary name
//     "title":  "Figure 7: ...",            // console header line
//     "scale":  1.0,                        // PMOCTREE_BENCH_SCALE
//     "telemetry_enabled": 1,               // 0 under PMO_TELEMETRY=OFF
//     "determinism": { "modeled_exact": 1 },// benchdiff exact-match rules
//     "device": { "dram_read_ns": 60, ... } // Table 2 model parameters
//     "config": { "threads": 8 },           // wall-clock-only knobs
//     "table":  { "headers": [...], "rows": [[".."], ...] },  // the
//                 // console table, cell-for-cell (display strings)
//     "metrics": { "counters": {...}, "gauges": {...},
//                  "histograms": {...} },   // final telemetry snapshot
//     "timeseries": { "ticks": N, "series": {...} },  // MetricSampler
//     ...                                   // bench-specific extras (set())
//   }
//
// schema 2 adds the MetricSampler: every report owns one, armed on the
// constructing (driver) thread with a default series set (NVBM line
// traffic, node-cache hit rate, persists); benches add their own with
// sampler().add(). Library sampling points (droplet step end, persist)
// tick it via timeseries::tick_point(); write() always takes one final
// tick so even fan-out benches get an end-state point. `--timeseries
// <path>` additionally exports the block as a standalone JSON file.
//
// "determinism.modeled_exact" is the bench's own promise to
// tools/benchdiff: 1 means modeled counters / nvbm gauges / modeled
// series are bit-identical run-to-run (every fig bench), 0 means only
// explicitly deterministic extras are (bench_serve, whose pin timing
// legitimately moves reclamation counters).
//
// Path defaults to bench_<name>.json in the working directory; `--json
// <path>` overrides. validate_bench_json (the bench_smoke ctest target)
// checks every bench's output against the required keys above.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"

namespace pmo::bench {

class BenchReport {
 public:
  /// `name` is the binary name (bench_<name>.json default path); argv is
  /// scanned for `--json <path>`, `--trace <path>`, `--threads <N>`,
  /// `--node-cache <bytes|off>` and `--simd <on|off>`; other arguments
  /// are left alone
  /// (micro_ops forwards its argv to google-benchmark afterwards).
  /// `--trace` starts a TraceSession covering the whole bench run;
  /// write() exports it as Chrome trace-event JSON. `--threads` sets the
  /// measurement-phase concurrency (see bench_threads(); flag beats
  /// PMOCTREE_BENCH_THREADS). `--node-cache` sets the PM-octree hot-node
  /// cache budget for every PM bundle (flag beats
  /// PMOCTREE_BENCH_NODE_CACHE; "off" = 0 = re-descend baseline).
  BenchReport(std::string name, std::string title, int argc = 0,
              char** argv = nullptr)
      : name_(std::move(name)),
        title_(std::move(title)),
        path_("bench_" + name_ + ".json") {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
      if (std::string(argv[i]) == "--trace") trace_path_ = argv[i + 1];
      if (std::string(argv[i]) == "--timeseries") {
        timeseries_path_ = argv[i + 1];
      }
      if (std::string(argv[i]) == "--threads") {
        const int v = std::atoi(argv[i + 1]);
        if (v > 0) bench_threads_override() = v;
      }
      if (std::string(argv[i]) == "--node-cache") {
        const std::string v = argv[i + 1];
        bench_node_cache_override() =
            v == "off" ? 0 : std::atoll(v.c_str());
      }
      if (std::string(argv[i]) == "--simd") {
        const std::string v = argv[i + 1];
        bench_simd_override() = (v == "off" || v == "0") ? 0 : 1;
      }
    }
    // Resolve + apply the SIMD toggle before any workload runs.
    bench_simd();
    if (!trace_path_.empty()) {
      trace_ = std::make_unique<telemetry::trace::TraceSession>();
      telemetry::trace::name_process(0, "bench " + name_);
    }
    // Default series every bench records: the paper's headline NVBM
    // traffic trajectory, the node-cache warm-up curve, and the persist
    // cadence. All modeled — sampled only at deterministic tick points.
    sampler_.add({"nvbm.lines_read", telemetry::timeseries::Kind::kGauge,
                  "nvbm.lines_read", "", 0.0, /*modeled=*/true});
    sampler_.add({"nvbm.lines_written", telemetry::timeseries::Kind::kGauge,
                  "nvbm.lines_written", "", 0.0, /*modeled=*/true});
    sampler_.add({"pmoctree.cache.hit_rate",
                  telemetry::timeseries::Kind::kRatio,
                  "pmoctree.cache.hits", "pmoctree.cache.misses", 0.0,
                  /*modeled=*/true});
    sampler_.add({"pmoctree.persists", telemetry::timeseries::Kind::kCounter,
                  "pmoctree.persists", "", 0.0, /*modeled=*/true});
    // The constructing thread is the driver for library tick points.
    sampler_.install_on_current_thread();
  }

  const std::string& json_path() const noexcept { return path_; }
  const std::string& trace_path() const noexcept { return trace_path_; }
  bool tracing() const noexcept { return trace_ != nullptr; }

  /// The report's metric sampler: benches add series and (for paced
  /// loops) tick it explicitly; library tick points drive it otherwise.
  telemetry::timeseries::MetricSampler& sampler() noexcept {
    return sampler_;
  }

  /// Benches whose modeled counters legitimately vary run-to-run
  /// (bench_serve: reclamation depends on reader pin timing) opt out of
  /// benchdiff's exact-match rules here.
  void set_modeled_exact(bool v) noexcept { modeled_exact_ = v; }

  /// Prints the Table 2 banner (same as print_table2_header) so benches
  /// declare their title exactly once.
  void print_header() const { print_table2_header(title_.c_str()); }

  /// Starts the results table; add rows with row() so the console table
  /// and its JSON mirror stay cell-for-cell in sync.
  void begin_table(std::vector<std::string> headers) {
    headers_ = std::move(headers);
    printer_ = std::make_unique<TablePrinter>(headers_);
  }

  void row(std::vector<std::string> cells) {
    rows_.push_back(cells);
    printer_->row(std::move(cells));
  }

  void print_table(std::ostream& os) const { printer_->print(os); }

  /// Bench-specific top-level extras ("expected", derived stats, ...).
  void set(const std::string& key, telemetry::json::Value v) {
    extras_.emplace_back(key, std::move(v));
  }

  telemetry::json::Value to_json() const {
    namespace json = telemetry::json;
    json::Value root = json::Value::object();
    root["schema_version"] = 2;
    root["bench"] = name_;
    root["title"] = title_;
    root["scale"] = bench_scale();
    root["telemetry_enabled"] = telemetry::enabled() ? 1 : 0;
    json::Value det = json::Value::object();
    det["modeled_exact"] = modeled_exact_ ? 1 : 0;
    root["determinism"] = std::move(det);
    const nvbm::Config c = device_config();
    json::Value dev = json::Value::object();
    dev["dram_read_ns"] = c.dram_read_ns;
    dev["dram_write_ns"] = c.dram_write_ns;
    dev["nvbm_read_ns"] = c.read_ns;
    dev["nvbm_write_ns"] = c.write_ns;
    dev["cache_line"] = c.cache_line;
    dev["latency_mode"] =
        c.latency_mode == nvbm::LatencyMode::kModeled ? "modeled"
                                                      : "injected";
    root["device"] = std::move(dev);
    // Run configuration: knobs that affect wall-clock but (by the
    // determinism contract) not modeled results. Comparing two bench
    // JSONs modulo `config` + wall-clock histograms checks bit-identity.
    json::Value config = json::Value::object();
    config["threads"] = bench_threads();
    // Unlike threads, the node-cache budget DOES change modeled counters
    // (that is its purpose) — recording it keeps cache-on/off JSON pairs
    // honestly labeled.
    config["node_cache"] = bench_node_cache();
    // Effective SIMD kernel state (1 = AVX2 gather/mark kernels, 0 =
    // portable loops). Wall-clock-only by the simd determinism contract:
    // two JSONs differing only here (and in wall-clock histograms) must
    // otherwise be bit-identical.
    config["simd"] = bench_simd() ? 1 : 0;
    // Persist-path knobs: pruning changes visit counters (never the
    // image); merge threads are wall-clock-only. Both are schema-required
    // so A/B JSON pairs stay honestly labeled.
    json::Value persist = json::Value::object();
    persist["pruning"] = bench_persist_pruning() ? 1 : 0;
    persist["threads"] = bench_persist_threads();
    config["persist"] = std::move(persist);
    root["config"] = std::move(config);
    json::Value table = json::Value::object();
    json::Value headers = json::Value::array();
    for (const auto& h : headers_) headers.push_back(h);
    json::Value rows = json::Value::array();
    for (const auto& r : rows_) {
      json::Value row = json::Value::array();
      for (const auto& cell : r) row.push_back(cell);
      rows.push_back(std::move(row));
    }
    table["headers"] = std::move(headers);
    table["rows"] = std::move(rows);
    root["table"] = std::move(table);
    root["metrics"] =
        telemetry::to_json(telemetry::Registry::global().snapshot());
    root["timeseries"] = sampler_.to_json();
    // Wear heatmaps of every device the bench created (live or already
    // destroyed — Sections freeze their last value). Always present so
    // the schema validator can rely on the key.
    root["wear_heatmaps"] = telemetry::trace::collect_sections();
    for (const auto& [k, v] : extras_) root[k] = v;
    return root;
  }

  /// Serializes to json_path() (and, with --trace, stops the trace
  /// session and writes the Chrome trace JSON). Returns false (with a
  /// message on stderr) when a file cannot be written.
  bool write() {
    // Final sample: every bench gets at least its end-state point even
    // when no library tick point fired (pool fan-out benches).
    if (telemetry::enabled()) sampler_.tick();
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      return false;
    }
    out << to_json().dump() << "\n";
    std::printf("\njson: %s\n", path_.c_str());
    if (!timeseries_path_.empty()) {
      if (!sampler_.write_file(timeseries_path_)) return false;
      std::printf("timeseries: %s (%llu ticks, %zu series)\n",
                  timeseries_path_.c_str(),
                  static_cast<unsigned long long>(sampler_.ticks()),
                  sampler_.series_count());
    }
    if (trace_ != nullptr) {
      if (!trace_->write_file(trace_path_)) return false;
      std::printf("trace: %s (%zu events, %llu dropped)\n",
                  trace_path_.c_str(), trace_->event_count(),
                  static_cast<unsigned long long>(
                      trace_->dropped_events()));
    }
    return true;
  }

 private:
  std::string name_;
  std::string title_;
  std::string path_;
  std::string trace_path_;
  std::string timeseries_path_;
  bool modeled_exact_ = true;
  telemetry::timeseries::MetricSampler sampler_{
      telemetry::Registry::global(), {}};
  std::unique_ptr<telemetry::trace::TraceSession> trace_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::unique_ptr<TablePrinter> printer_;
  std::vector<std::pair<std::string, telemetry::json::Value>> extras_;
};

}  // namespace pmo::bench
