// Figure 6 reproduction: weak scaling of the droplet simulation — ~1M
// elements per processor, 1 to 1000 processors — comparing PM-octree to
// the in-core (Gerris) and out-of-core (Etree) octrees.
//
// Expected shape (paper): none of the implementations is perfectly flat
// (partitioning/communication overhead grows); PM-octree tracks the
// in-core octree closely; out-of-core is far slower throughout.
#include "bench_report.hpp"

using namespace pmo;
using namespace pmo::bench;

int main(int argc, char** argv) {
  BenchReport report("fig06_weak_scaling",
                     "Figure 6: weak scaling, ~1M elements/processor",
                     argc, argv);
  report.print_header();
  const double per_rank = 1.0e6 * bench_scale();
  PointOpts opts;
  opts.c0_octants_per_node = 1.5e5 * bench_scale();
  // Eight measurement lanes per point: gives the exec pool lane-level
  // parallelism (wall-clock scales with --threads) while modeled results
  // stay bit-identical across thread counts.
  opts.measure_ranks = 8;
  const int steps = 6;

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  const auto real_leaves = probe_leaves(params);
  std::printf("real mesh: %zu leaves; per-rank target %s elements; "
              "%d steps; %d threads\n\n",
              real_leaves, elems(per_rank).c_str(), steps,
              bench_threads());

  const int procs_list[] = {1, 6, 24, 100, 250, 500, 1000};
  report.begin_table({"procs", "elements", "PM-octree(s)", "in-core(s)",
                      "out-of-core(s)", "PM/in-core", "ooc/PM"});
  for (const int procs : procs_list) {
    const double target = per_rank * procs;
    const auto pm = run_point(Backend::kPm, procs, target, steps, params,
                              opts, real_leaves);
    const auto incore = run_point(Backend::kInCore, procs, target, steps,
                                  params, opts, real_leaves);
    const auto ooc = run_point(Backend::kEtree, procs, target, steps,
                               params, opts, real_leaves);
    report.row({std::to_string(procs), elems(target),
               TablePrinter::num(pm.cluster.total_s, 1),
               TablePrinter::num(incore.cluster.total_s, 1),
               TablePrinter::num(ooc.cluster.total_s, 1),
               TablePrinter::num(pm.cluster.total_s / incore.cluster.total_s, 2),
               TablePrinter::num(ooc.cluster.total_s / pm.cluster.total_s, 2)});
  }
  report.print_table(std::cout);
  std::printf("\nexpected shape: PM-octree within ~1-2x of in-core at all "
              "scales; out-of-core several times slower; all curves rise "
              "with procs (communication + partitioning overhead).\n");
  report.write();
  return 0;
}
