// Figure 11 reproduction: effectiveness of the dynamic layout
// transformation — execution time with and without it over growing mesh
// sizes (paper: 1.19M, 3.75M, 6.75M, 22.5M, 224M elements on 100 procs).
//
// Expected shape (paper): no benefit while the mesh fits in DRAM; at
// 224M elements (C0 holds only ~7% of octants) the transformation cuts
// execution time by ~25% and NVBM writes by ~31%. Also reports the §3.3
// micro-result: the locality-oblivious layout serves up to 89% more NVBM
// writes on a refinement pass.
#include "bench_report.hpp"

using namespace pmo;
using namespace pmo::bench;

int main(int argc, char** argv) {
  BenchReport report("fig11_transform",
                     "Figure 11: dynamic layout transformation", argc,
                     argv);
  report.print_header();
  const int procs = 100;
  const int steps = 8;
  // Fixed per-node C0 capacity; the mesh grows past it (at the largest
  // size C0 holds only a small fraction, like the paper's 7%).
  const double c0_per_node = 0.07 * (224.0e6 / procs) * bench_scale();

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  const auto real_leaves = probe_leaves(params);
  std::printf("real mesh: %zu leaves; C0 capacity %s octants/node\n\n",
              real_leaves, elems(c0_per_node).c_str());

  report.begin_table({"elements", "C0 share", "time w/o (s)",
                      "time w/ (s)", "time saved", "NVBM writes saved"});
  for (const double mesh_elems :
       {1.19e6, 3.75e6, 6.75e6, 22.5e6, 224.0e6}) {
    const double target = mesh_elems * bench_scale();
    PointOpts with_opts;
    with_opts.c0_octants_per_node = c0_per_node;
    with_opts.enable_transform = true;
    PointOpts without_opts = with_opts;
    without_opts.enable_transform = false;

    const auto with_t = run_point(Backend::kPm, procs, target, steps,
                                  params, with_opts, real_leaves);
    const auto without_t = run_point(Backend::kPm, procs, target, steps,
                                     params, without_opts, real_leaves);
    const double t_saved = 100.0 * (without_t.cluster.total_s -
                                    with_t.cluster.total_s) /
                           without_t.cluster.total_s;
    const double w_saved =
        100.0 *
        (static_cast<double>(without_t.nvbm_writes) -
         static_cast<double>(with_t.nvbm_writes)) /
        static_cast<double>(without_t.nvbm_writes);
    const double share =
        std::min(1.0, c0_per_node / (target / procs)) * 100.0;
    report.row({elems(target), TablePrinter::num(share, 0) + "%",
               TablePrinter::num(without_t.cluster.total_s, 1),
               TablePrinter::num(with_t.cluster.total_s, 1),
               TablePrinter::num(t_saved, 1) + "%",
               TablePrinter::num(w_saved, 1) + "%"});
  }
  report.print_table(std::cout);
  std::printf("\nexpected shape: savings ~0 while C0 covers the mesh; "
              "large meshes save ~25%% time / ~31%% NVBM writes with the "
              "transformation (paper, 224M elements).\n");

  // §3.3 micro-result: writes served by NVBM during a refinement pass,
  // locality-aware vs locality-oblivious layout.
  auto refine_writes = [&](bool transform) {
    pmoctree::PmConfig pm;
    pm.dram_budget_bytes = budget_for(c0_per_node, 224.0e6 / procs,
                                      real_leaves);
    pm.enable_transform = transform;
    auto bundle = make_pm(std::size_t{256} << 20, pm);
    amr::DropletWorkload wl(params);
    register_droplet_feature(bundle, wl);
    wl.initialize(*bundle.mesh);
    wl.step(*bundle.mesh, 0);  // persist (+ transform when enabled)
    bundle.device->reset_counters();
    // Solver writes concentrated on the hot window (§3.3's pass).
    for (int pass = 0; pass < 3; ++pass) {
      bundle.mesh->sweep_leaves([&](const LocCode& c, CellData& d) {
        if (!wl.hot_feature(c, d)) return false;
        d.tracer += 0.5;
        return true;
      });
    }
    return bundle.device->counters().writes;
  };
  const auto aware = refine_writes(true);
  const auto oblivious = refine_writes(false);
  std::printf("\nSec 3.3 micro-result: oblivious layout serves %.0f%% "
              "more NVBM writes than the transformed layout on hot-band "
              "passes (paper: up to 89%% more).\n",
              100.0 * (static_cast<double>(oblivious) /
                           std::max<std::uint64_t>(1, aware) -
                       1.0));

  namespace json = telemetry::json;
  json::Value micro = json::Value::object();
  micro["nvbm_writes_locality_aware"] = aware;
  micro["nvbm_writes_locality_oblivious"] = oblivious;
  report.set("sec33_micro", std::move(micro));
  report.write();
  return 0;
}
