// Figure 10 reproduction: impact of the DRAM size configured for the C0
// tree — 6.75M elements on 100 processors, DRAM 1/2/4/8 GB — against the
// out-of-core octree and the in-core octree (which needs the full 20 GB).
//
// Expected shape (paper): 233.5s at 1 GB down to 89.1s at 8 GB; 491
// pressure merges at 1 GB vs merge-only-at-step-end at 8 GB; even at 1 GB
// PM-octree beats out-of-core by a wide margin; at 8 GB it approaches the
// in-core octree.
#include "bench_report.hpp"

using namespace pmo;
using namespace pmo::bench;

int main(int argc, char** argv) {
  BenchReport report("fig10_dram_size",
                     "Figure 10: DRAM size for the C0 tree", argc, argv);
  report.print_header();
  const double global = 6.75e6 * bench_scale();
  const int procs = 100;
  const int steps = 8;
  // The paper's in-core run needs 20 GB of DRAM for 6.75M elements; a
  // "1 GB" C0 budget therefore holds 1/20 of the octants, and so on.
  const double octants_per_rank = global / procs;

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  const auto real_leaves = probe_leaves(params);
  std::printf("real mesh: %zu leaves; %s global elements on %d procs\n\n",
              real_leaves, elems(global).c_str(), procs);

  report.begin_table({"config", "C0 capacity", "time(s)", "C0->C1 merges",
                      "NVBM writes"});
  namespace json = telemetry::json;
  json::Value read_traffic = json::Value::object();
  for (const double gb : {1.0, 2.0, 4.0, 8.0}) {
    PointOpts opts;
    opts.c0_octants_per_node = (gb / 20.0) * octants_per_rank;
    const auto res = run_point(Backend::kPm, procs, global, steps, params,
                               opts, real_leaves);
    report.row({"PM-octree " + TablePrinter::num(gb, 0) + "GB",
               elems(opts.c0_octants_per_node) + " octants",
               TablePrinter::num(res.cluster.total_s, 1),
               std::to_string(res.eviction_merges),
               std::to_string(res.nvbm_writes)});
    // Smaller C0 -> more NVBM descents -> more for the node cache to
    // absorb; rerun with --node-cache off to see the uncached traffic.
    json::Value point = json::Value::object();
    point["nvbm_lines_read"] = static_cast<double>(res.nvbm_lines_read);
    point["nvbm_cached_reads"] = static_cast<double>(res.nvbm_cached_reads);
    read_traffic[TablePrinter::num(gb, 0) + "GB"] = std::move(point);
  }
  report.set("read_traffic", std::move(read_traffic));
  {
    PointOpts opts;
    const auto ooc = run_point(Backend::kEtree, procs, global, steps,
                               params, opts, real_leaves);
    report.row({"out-of-core-octree", "-",
               TablePrinter::num(ooc.cluster.total_s, 1), "-",
               std::to_string(ooc.nvbm_writes)});
    const auto incore = run_point(Backend::kInCore, procs, global, steps,
                                  params, opts, real_leaves);
    report.row({"in-core-octree 20GB", "all octants",
               TablePrinter::num(incore.cluster.total_s, 1), "-",
               std::to_string(incore.nvbm_writes)});
  }
  report.print_table(std::cout);
  std::printf("\nexpected shape: time falls monotonically as the C0 DRAM "
              "grows (paper: 233.5s -> 89.1s); merges frequent at 1GB "
              "(paper: 491), rare at 8GB; PM at 1GB still far faster than "
              "out-of-core; PM at 8GB close to in-core.\n");
  report.write();
  return 0;
}
