// Figure 9 reproduction: strong scaling comparison of the three octree
// implementations — fixed 150M elements, 240 to 1000 processors.
//
// Expected shape (paper): all three decrease roughly linearly with
// processor count; the in-core octree's advantage over PM-octree SHRINKS
// as processors grow (48% at 240 procs -> 36% at 1000), because with
// fewer octants per rank a larger fraction of V_i fits in the C0 tree.
#include "bench_report.hpp"

using namespace pmo;
using namespace pmo::bench;

int main(int argc, char** argv) {
  BenchReport report("fig09_strong_compare",
                     "Figure 9: strong scaling comparison, 150M elements",
                     argc, argv);
  report.print_header();
  const double global = 150.0e6 * bench_scale();
  PointOpts opts;
  opts.c0_octants_per_node = 1.5e5 * bench_scale();
  const int steps = 6;

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  const auto real_leaves = probe_leaves(params);

  report.begin_table({"procs", "PM-octree(s)", "in-core(s)",
                      "out-of-core(s)", "in-core speedup vs PM",
                      "ooc/PM"});
  for (const int procs : {240, 360, 500, 640, 800, 1000}) {
    const auto pm = run_point(Backend::kPm, procs, global, steps, params,
                              opts, real_leaves);
    const auto incore = run_point(Backend::kInCore, procs, global, steps,
                                  params, opts, real_leaves);
    const auto ooc = run_point(Backend::kEtree, procs, global, steps,
                               params, opts, real_leaves);
    const double gap = (pm.cluster.total_s - incore.cluster.total_s) / incore.cluster.total_s;
    report.row({std::to_string(procs), TablePrinter::num(pm.cluster.total_s, 1),
               TablePrinter::num(incore.cluster.total_s, 1),
               TablePrinter::num(ooc.cluster.total_s, 1),
               TablePrinter::num(100.0 * gap, 1) + "%",
               TablePrinter::num(ooc.cluster.total_s / pm.cluster.total_s, 2)});
  }
  report.print_table(std::cout);
  std::printf("\nexpected shape: all times fall as procs grow; the "
              "in-core advantage over PM-octree shrinks with procs "
              "(paper: 48%% -> 36%%) because more of each rank's octants "
              "fit in DRAM (C0).\n");
  report.write();
  return 0;
}
