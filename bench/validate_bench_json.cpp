// bench_smoke harness: runs one bench binary with --json and validates
// the emitted document against the BenchReport schema (schema_version 2).
//
//   validate_bench_json <bench-binary> <json-path> [extra bench args...]
//
// The bench runs through std::system with the caller's environment (the
// ctest targets set PMOCTREE_BENCH_SCALE=0.05 so each bench finishes in
// seconds); the validator then parses <json-path> and checks the keys
// every bench must emit: schema_version, bench, title, scale, device
// (with the Table 2 latency fields), config (with the measurement thread
// count and the persist-path knobs), table.headers / table.rows (row
// width matching the header count) and metrics. Exits non-zero with a
// message on the first violation.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/json.hpp"

namespace {

using pmo::telemetry::json::Value;

int fail(const std::string& msg) {
  std::fprintf(stderr, "validate_bench_json: %s\n", msg.c_str());
  return 1;
}

const Value* require(const Value& obj, const std::string& key,
                     Value::Type type, std::string* err) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    *err = "missing key \"" + key + "\"";
    return nullptr;
  }
  if (v->type() != type) {
    *err = "key \"" + key + "\" has wrong type";
    return nullptr;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return fail("usage: validate_bench_json <bench> <json-path> [args...]");
  }
  const std::string bench = argv[1];
  const std::string path = argv[2];

  std::string cmd = "\"" + bench + "\" --json \"" + path + "\"";
  for (int i = 3; i < argc; ++i) cmd += " \"" + std::string(argv[i]) + "\"";
  std::printf("running: %s\n", cmd.c_str());
  std::fflush(stdout);
  const int rc = std::system(cmd.c_str());
  if (rc != 0) return fail("bench exited with status " + std::to_string(rc));

  std::ifstream in(path);
  if (!in) return fail("bench did not write " + path);
  std::stringstream buf;
  buf << in.rdbuf();

  std::string err;
  const auto doc = Value::parse(buf.str(), &err);
  if (!doc) return fail("JSON parse error in " + path + ": " + err);
  if (!doc->is_object()) return fail("document is not an object");

  const Value* v = require(*doc, "schema_version", Value::Type::kNumber,
                           &err);
  if (v == nullptr) return fail(err);
  if (v->as_double() != 2.0) return fail("unsupported schema_version");
  if (require(*doc, "bench", Value::Type::kString, &err) == nullptr ||
      require(*doc, "title", Value::Type::kString, &err) == nullptr ||
      require(*doc, "scale", Value::Type::kNumber, &err) == nullptr ||
      require(*doc, "telemetry_enabled", Value::Type::kNumber, &err) ==
          nullptr) {
    return fail(err);
  }
  const bool telemetry_on =
      doc->find("telemetry_enabled")->as_double() != 0.0;

  // schema 2: the bench's determinism promise, read by tools/benchdiff to
  // pick exact-match vs noise-thresholded comparison rules.
  const Value* det =
      require(*doc, "determinism", Value::Type::kObject, &err);
  if (det == nullptr) return fail(err);
  if (require(*det, "modeled_exact", Value::Type::kNumber, &err) ==
      nullptr) {
    return fail("determinism: " + err);
  }

  const Value* dev = require(*doc, "device", Value::Type::kObject, &err);
  if (dev == nullptr) return fail(err);
  for (const char* key : {"dram_read_ns", "dram_write_ns", "nvbm_read_ns",
                          "nvbm_write_ns", "cache_line"}) {
    if (require(*dev, key, Value::Type::kNumber, &err) == nullptr) {
      return fail("device: " + err);
    }
  }

  // Run configuration (wall-clock-only knobs): every bench records its
  // measurement-phase thread count.
  const Value* config = require(*doc, "config", Value::Type::kObject, &err);
  if (config == nullptr) return fail(err);
  if (require(*config, "threads", Value::Type::kNumber, &err) == nullptr ||
      require(*config, "node_cache", Value::Type::kNumber, &err) ==
          nullptr ||
      require(*config, "simd", Value::Type::kNumber, &err) == nullptr) {
    return fail("config: " + err);
  }
  // Persist-path knobs (dirty-subtree pruning on/off, merge thread cap):
  // required so A/B comparisons between bench JSONs are always labeled.
  const Value* persist =
      require(*config, "persist", Value::Type::kObject, &err);
  if (persist == nullptr) return fail("config: " + err);
  if (require(*persist, "pruning", Value::Type::kNumber, &err) == nullptr ||
      require(*persist, "threads", Value::Type::kNumber, &err) == nullptr) {
    return fail("config.persist: " + err);
  }

  const Value* table = require(*doc, "table", Value::Type::kObject, &err);
  if (table == nullptr) return fail(err);
  const Value* headers =
      require(*table, "headers", Value::Type::kArray, &err);
  const Value* rows =
      headers ? require(*table, "rows", Value::Type::kArray, &err) : nullptr;
  if (rows == nullptr) return fail("table: " + err);
  if (headers->size() == 0) return fail("table.headers is empty");
  if (rows->size() == 0) return fail("table.rows is empty");
  for (std::size_t i = 0; i < rows->size(); ++i) {
    const Value& row = rows->at(i);
    if (!row.is_array() || row.size() != headers->size()) {
      return fail("table.rows[" + std::to_string(i) +
                  "] does not match the header count");
    }
  }

  const Value* metrics = require(*doc, "metrics", Value::Type::kObject,
                                 &err);
  if (metrics == nullptr) return fail(err);
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (require(*metrics, key, Value::Type::kObject, &err) == nullptr) {
      return fail("metrics: " + err);
    }
  }

  // schema 2: the MetricSampler block. Always present; under
  // PMO_TELEMETRY=OFF recording is compiled out, so series arrays are
  // only required to be non-empty when telemetry is on (BenchReport
  // takes a final tick in write(), so every series has >= 1 point).
  const Value* ts = require(*doc, "timeseries", Value::Type::kObject, &err);
  if (ts == nullptr) return fail(err);
  if (require(*ts, "ticks", Value::Type::kNumber, &err) == nullptr ||
      require(*ts, "capacity", Value::Type::kNumber, &err) == nullptr) {
    return fail("timeseries: " + err);
  }
  const Value* series =
      require(*ts, "series", Value::Type::kObject, &err);
  if (series == nullptr) return fail("timeseries: " + err);
  for (const auto& [name, s] : series->members()) {
    if (!s.is_object()) return fail("timeseries.series." + name);
    for (const char* key : {"kind", "metric"}) {
      if (s.find(key) == nullptr || !s.find(key)->is_string()) {
        return fail("timeseries.series." + name + " missing \"" + key +
                    "\"");
      }
    }
    for (const char* key : {"modeled", "stride"}) {
      if (s.find(key) == nullptr || !s.find(key)->is_number()) {
        return fail("timeseries.series." + name + " missing \"" + key +
                    "\"");
      }
    }
    const Value* t = s.find("t");
    const Value* val = s.find("v");
    if (t == nullptr || !t->is_array() || val == nullptr ||
        !val->is_array() || t->size() != val->size()) {
      return fail("timeseries.series." + name + ": t/v arrays mismatch");
    }
    if (telemetry_on && t->size() == 0) {
      return fail("timeseries.series." + name +
                  " is empty with telemetry enabled");
    }
  }
  if (telemetry_on && ts->find("ticks")->as_double() < 1.0) {
    return fail("timeseries.ticks is 0 with telemetry enabled");
  }

  // Benches that exercised a PM-octree (any pmoctree.* counter present)
  // must report the hot-node-cache counters so cache-on/off comparisons
  // never chase a silently-missing metric. Benches with no PM-octree
  // (e.g. a filtered micro_ops run) are exempt.
  const Value& counters = *metrics->find("counters");
  bool has_pmoctree = false;
  for (const auto& [name, val] : counters.members()) {
    if (name.rfind("pmoctree.", 0) == 0) {
      has_pmoctree = true;
      break;
    }
  }
  if (has_pmoctree) {
    for (const char* key :
         {"pmoctree.cache.hits", "pmoctree.cache.misses",
          "pmoctree.cache.evictions", "pmoctree.cache.invalidations"}) {
      if (counters.find(key) == nullptr) {
        return fail("metrics.counters missing \"" + std::string(key) +
                    "\" despite pmoctree activity");
      }
    }
  }

  // bench_serve extension: the serving bench must report its aggregate
  // throughput, latency percentiles, snapshot staleness, the epoch-based
  // reclamation high-water mark and the deterministic verification hash
  // (the --threads A/B bit-identity surface), plus the global query
  // latency histogram.
  if (doc->find("bench")->as_string() == "serve") {
    const Value* serve = require(*doc, "serve", Value::Type::kObject, &err);
    if (serve == nullptr) return fail(err);
    for (const char* key : {"readers", "target_qps", "queries", "qps",
                            "deferred_reclaim_hwm", "pins", "unpins"}) {
      if (require(*serve, key, Value::Type::kNumber, &err) == nullptr) {
        return fail("serve: " + err);
      }
    }
    const Value* latency =
        require(*serve, "latency", Value::Type::kObject, &err);
    if (latency == nullptr) return fail("serve: " + err);
    for (const char* key : {"p50_ns", "p95_ns", "p99_ns"}) {
      if (require(*latency, key, Value::Type::kNumber, &err) == nullptr) {
        return fail("serve.latency: " + err);
      }
    }
    const Value* staleness =
        require(*serve, "staleness", Value::Type::kObject, &err);
    if (staleness == nullptr) return fail("serve: " + err);
    if (require(*staleness, "max", Value::Type::kNumber, &err) == nullptr ||
        require(*staleness, "mean", Value::Type::kNumber, &err) == nullptr) {
      return fail("serve.staleness: " + err);
    }
    if (require(*serve, "result_hash", Value::Type::kString, &err) ==
            nullptr ||
        require(*serve, "verify_charges", Value::Type::kObject, &err) ==
            nullptr) {
      return fail("serve: " + err);
    }
    if (metrics->find("histograms")->find("serve.query_ns") == nullptr) {
      return fail("metrics.histograms missing \"serve.query_ns\"");
    }
    // schema 2: the serving bench must record the QPS / interpolated-p99
    // / reclamation-HWM trajectories (the headline time-series) ...
    for (const char* key :
         {"serve.qps", "serve.p99_ns", "serve.reclaim_hwm"}) {
      const Value* s = series->find(key);
      if (s == nullptr) {
        return fail("timeseries.series missing \"" + std::string(key) +
                    "\"");
      }
      if (telemetry_on && s->find("t")->size() == 0) {
        return fail("timeseries.series." + std::string(key) + " is empty");
      }
    }
    // ... and the SLO roll-up: objective, error-budget accounting and the
    // tail-sampled slow-query log.
    const Value* slo = require(*doc, "slo", Value::Type::kObject, &err);
    if (slo == nullptr) return fail(err);
    for (const char* key : {"total", "violations", "violation_fraction",
                            "budget_remaining", "burn_rate", "p_ns",
                            "tail_sampled"}) {
      if (require(*slo, key, Value::Type::kNumber, &err) == nullptr) {
        return fail("slo: " + err);
      }
    }
    const Value* obj =
        require(*slo, "objective", Value::Type::kObject, &err);
    if (obj == nullptr) return fail("slo: " + err);
    for (const char* key :
         {"quantile", "latency_ns", "error_budget", "slow_query_ns"}) {
      if (require(*obj, key, Value::Type::kNumber, &err) == nullptr) {
        return fail("slo.objective: " + err);
      }
    }
    if (require(*slo, "slow_queries", Value::Type::kArray, &err) ==
        nullptr) {
      return fail("slo: " + err);
    }
  }

  // Wear heatmaps: always present (possibly empty); each entry carries
  // the per-address-range bucket array.
  const Value* wear =
      require(*doc, "wear_heatmaps", Value::Type::kObject, &err);
  if (wear == nullptr) return fail(err);
  for (const auto& [name, hm] : wear->members()) {
    if (!hm.is_object() || hm.find("buckets") == nullptr ||
        !hm.find("buckets")->is_array()) {
      return fail("wear_heatmaps." + name + " missing buckets array");
    }
  }

  std::printf("ok: %s (%zu rows, %zu metric counters)\n", path.c_str(),
              rows->size(),
              metrics->find("counters")->members().size());
  return 0;
}
