// Quickstart: the PM-octree public API in five minutes.
//
//   1. create an emulated NVBM device and a persistent heap on it;
//   2. build a PM-octree, refine it, write cell data;
//   3. make the state durable with pm_persistent();
//   4. crash the machine (adversarially dropping unflushed cache lines);
//   5. restore with pm_restore() and verify the persisted state is back.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "pmoctree/api.hpp"

using namespace pmo;

int main() {
  // --- 1. An emulated NVBM DIMM: Table 2 latencies, crash simulation on.
  nvbm::Config dev_cfg;
  dev_cfg.crash_sim = true;  // keep a durable shadow so we can pull power
  nvbm::Device device(64 << 20, dev_cfg);
  nvbm::Heap heap(device);

  // --- 2. A PM-octree with a small DRAM budget for its hot C0 subtrees.
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 1 << 20;
  auto tree = pmoctree::pm_create(heap, nullptr, pm);

  // Refine the root and give each child a distinct pressure value.
  tree->refine(LocCode::root(), [](const LocCode& code, CellData& d) {
    d.pressure = 100.0 + code.child_index();
  });
  // Refine one child further — typical adaptive meshing.
  tree->refine(LocCode::root().child(3));
  std::printf("built a tree with %zu octants (%zu leaves)\n",
              tree->node_count(), tree->leaf_count());

  // --- 3. Persist: merge C0 into NVBM, atomically swing the root.
  const auto stats = pmoctree::pm_persistent(*tree);
  std::printf("persisted %zu octants (overlap with previous version: "
              "%.0f%%)\n",
              stats.nodes_total, 100.0 * stats.overlap_ratio);

  // Post-persist mutations that will be LOST by the crash:
  tree->update(LocCode::root().child(0), CellData{.pressure = -1.0});
  tree->refine(LocCode::root().child(5));
  std::printf("mutated V_i: now %zu octants (not persisted)\n",
              tree->node_count());

  // --- 4. Power failure: every unflushed cache line independently either
  // reached the medium or didn't.
  Rng rng(42);
  const auto lost = device.simulate_crash(rng, /*survive_p=*/0.5);
  std::printf("CRASH! %zu dirty cache lines lost\n", lost);

  // --- 5. Reboot: re-attach the heap, restore the last durable version.
  nvbm::Heap heap_after(device);
  auto restored = pmoctree::pm_restore(heap_after, pm);
  std::printf("restored: %zu octants (leaves: %zu)\n",
              restored->node_count(), restored->leaf_count());
  const auto p3 = restored->find(LocCode::root().child(3).child(0));
  const auto p0 = restored->find(LocCode::root().child(0));
  std::printf("child(3) refinement survived: %s\n",
              p3.has_value() ? "yes" : "NO (bug!)");
  std::printf("child(0) pressure: %.1f (the post-persist -1.0 correctly "
              "rolled back)\n",
              p0->pressure);
  std::printf("unpersisted refinement of child(5) gone: %s\n",
              restored->contains(LocCode::root().child(5).child(0))
                  ? "NO (bug!)"
                  : "yes");

  // Recovery GC reclaims the orphaned octants of the lost working version.
  const auto freed = restored->gc();
  std::printf("recovery GC reclaimed %zu orphaned octants\n", freed);
  return 0;
}
