// Droplet ejection on PM-octree — the paper's driving scientific problem.
//
// Runs the inkjet jet/pinch-off workload (Fig. 1c) on an adaptive mesh
// backed by PM-octree, persisting every step, printing per-step mesh
// statistics and an ASCII slice of the jet, and finally extracting the
// mesh to a VTK file (droplet.vtk) for visualization.
//
// Usage: droplet_ejection [steps] [max_level]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "amr/droplet.hpp"
#include "amr/extract.hpp"
#include "amr/pm_backend.hpp"

using namespace pmo;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  const int max_level = argc > 2 ? std::atoi(argv[2]) : 5;

  nvbm::Device device(1u << 30, nvbm::Config{});
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 8 << 20;
  amr::PmOctreeBackend mesh(device, pm);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = max_level;
  params.dt = 0.12;
  amr::DropletWorkload wl(params);

  // Register the refinement predicate as a feature function so the
  // dynamic layout transformation can chase the interface (§3.3).
  mesh.register_feature([&](const LocCode& code, const CellData& d) {
    return wl.refine_feature(code, d);
  });

  std::printf("initializing mesh (levels %d..%d)...\n", params.min_level,
              params.max_level);
  wl.initialize(mesh);
  std::printf("initial mesh: %zu leaves\n\n", mesh.leaf_count());
  std::printf("%4s %9s %9s %9s %9s %9s %8s\n", "step", "leaves", "refined",
              "coarsened", "overlap%", "NVBMwr", "time(ms)");

  for (int s = 0; s < steps; ++s) {
    const auto before_writes = mesh.nvbm_writes();
    const auto st = wl.step(mesh, s);
    const auto& persist = mesh.last_persist();
    std::printf("%4d %9zu %9zu %9zu %8.1f%% %9zu %8.1f\n", s, st.leaves,
                st.refined, st.coarsened, 100.0 * persist.overlap_ratio,
                static_cast<std::size_t>(mesh.nvbm_writes() - before_writes),
                static_cast<double>(st.total_ns()) / 1e6);
  }

  const auto summary = amr::summarize(mesh);
  std::printf("\nfinal mesh: %zu leaves, %zu interface cells, levels "
              "%d..%d, liquid volume %.4f\n",
              summary.leaves, summary.interface_cells, summary.min_level,
              summary.max_level, summary.liquid_volume);

  std::printf("\njet cross-section (x = 0.5):\n");
  amr::print_slice(mesh, std::cout, 0.5, 72, 30);

  const auto cells = amr::write_vtk(mesh, "droplet.vtk");
  std::printf("\nextracted %zu cells to droplet.vtk\n", cells);
  return 0;
}
