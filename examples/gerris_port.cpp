// Porting a Gerris-style solver to PM-octree (§4).
//
// This example is written entirely against the ftt_cell_* / gfs_* shim —
// the integration surface the paper adds to Gerris — never touching the
// PmOctree class directly. It mimics a miniature Gerris run: adaptive
// refinement driven by a solution gradient, a relaxation solve via
// ftt_cell_neighbor stencils, and gfs_simulation_write() in place of the
// old snapshot output.
#include <cmath>
#include <cstdio>
#include <vector>

#include "gfs/gfs.hpp"

using namespace pmo;
using namespace pmo::gfs;

namespace {

// A Gerris-style initial condition: a Gaussian pressure bump.
double bump(double x, double y, double z) {
  const double dx = x - 0.35, dy = y - 0.65, dz = z - 0.5;
  return std::exp(-80.0 * (dx * dx + dy * dy + dz * dz));
}

}  // namespace

int main() {
  GfsSimulation sim(256 << 20);

  // --- Build: refine where the bump is steep (classic Gerris adapt).
  auto root = sim.root();
  for (int level = 0; level < 4; ++level) {
    std::vector<FttCell> to_refine;
    ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                      [&](FttCell& cell, CellData& d) {
                        double x, y, z;
                        ftt_cell_pos(cell, &x, &y, &z);
                        d.pressure = bump(x, y, z);
                        if (ftt_cell_level(cell) < 4 && d.pressure > 0.05) {
                          to_refine.push_back(cell);
                        }
                      });
    for (auto& cell : to_refine) {
      if (ftt_cell_is_leaf(cell)) {
        ftt_cell_refine(cell, [](FttCell& child, CellData& d) {
          double x, y, z;
          ftt_cell_pos(child, &x, &y, &z);
          d.pressure = bump(x, y, z);
        });
      }
    }
  }

  int leaves = 0;
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [&](FttCell&, CellData&) { ++leaves; });
  std::printf("adapted mesh: %d leaf cells\n", leaves);

  // --- Solve: Jacobi-style relaxation through face neighbors.
  for (int iter = 0; iter < 20; ++iter) {
    ftt_cell_traverse(
        root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
        [&](FttCell& cell, CellData& d) {
          double acc = 0.0;
          int n = 0;
          for (int dir = 0; dir < FTT_NEIGHBORS; ++dir) {
            const auto nb =
                ftt_cell_neighbor(cell, static_cast<FttDirection>(dir));
            if (!nb.valid()) continue;
            acc += ftt_cell_data(nb).pressure;
            ++n;
          }
          if (n > 0) d.pressure = 0.5 * d.pressure + 0.5 * acc / n;
        });
  }

  double total = 0.0, peak = 0.0;
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [&](FttCell& cell, CellData& d) {
                      const double h = ftt_cell_size(cell);
                      total += d.pressure * h * h * h;
                      peak = std::max(peak, d.pressure);
                    });
  std::printf("after 20 relaxation sweeps: integral=%.5f peak=%.5f\n",
              total, peak);

  // --- Persist: this line used to be gfs_output_write(...).
  const auto stats = sim.gfs_simulation_write();
  std::printf("gfs_simulation_write: %zu octants persisted, overlap "
              "%.0f%%\n",
              stats.nodes_total, 100.0 * stats.overlap_ratio);

  // --- Restart path: this line used to be gfs_simulation_read(...).
  sim.gfs_simulation_read();
  auto fresh = sim.root();
  int restored = 0;
  ftt_cell_traverse(fresh, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [&](FttCell&, CellData&) { ++restored; });
  std::printf("gfs_simulation_read: %d leaf cells restored\n", restored);
  return restored == leaves ? 0 : 1;
}
