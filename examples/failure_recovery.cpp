// Failure recovery walkthrough (§5.6): kill the simulation mid-run, then
// restart it three ways and compare what each costs.
//
//   a) in-core octree  — re-read the full snapshot file and rebuild;
//   b) PM-octree       — pm_restore: flip to ADDR(V_{i-1}), O(1);
//   c) PM-octree onto a NEW node — rebuild from the remote replica.
#include <cstdio>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "baseline/incore_backend.hpp"
#include "cluster/comm_model.hpp"
#include "pmoctree/replica.hpp"

using namespace pmo;

namespace {

amr::DropletParams small_params() {
  amr::DropletParams p;
  p.min_level = 2;
  p.max_level = 4;
  p.dt = 0.1;
  return p;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

int main() {
  const int kCrashStep = 5;
  cluster::CommConfig net;

  // ---------------- a) in-core octree with snapshot files ----------------
  {
    nvbm::Device snap_dev(1u << 30, nvbm::Config{});
    baseline::InCoreConfig cfg;
    cfg.snapshot_interval = 2;
    baseline::InCoreBackend mesh(snap_dev, cfg);
    amr::DropletWorkload wl(small_params());
    wl.initialize(mesh);
    for (int s = 0; s < kCrashStep; ++s) wl.step(mesh, s);
    std::printf("in-core: simulated to step %d (%zu leaves), crashing...\n",
                kCrashStep, mesh.leaf_count());

    const auto before = mesh.modeled_ns();
    const bool ok = mesh.recover();
    std::printf("in-core: recovery %s, modeled time %.2f ms "
                "(re-reads the whole snapshot, rebuilds every octant)\n\n",
                ok ? "succeeded" : "FAILED", ms(mesh.modeled_ns() - before));
  }

  // ---------------- b) PM-octree on the same node ------------------------
  {
    nvbm::Device device(1u << 30, nvbm::Config{});
    pmoctree::PmConfig pm;
    pm.dram_budget_bytes = 8 << 20;
    amr::PmOctreeBackend mesh(device, pm);
    amr::DropletWorkload wl(small_params());
    wl.initialize(mesh);
    for (int s = 0; s < kCrashStep; ++s) wl.step(mesh, s);
    std::printf("PM-octree: simulated to step %d (%zu leaves), "
                "crashing...\n",
                kCrashStep, mesh.leaf_count());

    const auto before = mesh.modeled_ns();
    const bool ok = mesh.recover();
    std::printf("PM-octree: recovery %s, modeled time %.4f ms "
                "(returns ADDR(V_{i-1}); octants are already in NVBM)\n\n",
                ok ? "succeeded" : "FAILED", ms(mesh.modeled_ns() - before));
  }

  // ---------------- c) PM-octree onto a replacement node -----------------
  {
    nvbm::Device device(1u << 30, nvbm::Config{});
    pmoctree::PmConfig pm;
    pm.dram_budget_bytes = 8 << 20;
    pm.enable_replica = true;
    amr::PmOctreeBackend mesh(device, pm);
    amr::DropletWorkload wl(small_params());
    wl.initialize(mesh);
    for (int s = 0; s < kCrashStep; ++s) wl.step(mesh, s);
    std::printf("PM-octree+replica: %zu octants mirrored, %.2f MiB "
                "shipped over %d steps\n",
                mesh.replica().node_count(),
                static_cast<double>(mesh.replica_bytes()) / (1 << 20),
                kCrashStep);

    // The crashed node is gone. Rebuild on a brand-new node from V^P.
    nvbm::Device new_node(1u << 30, nvbm::Config{});
    nvbm::Heap new_heap(new_node);
    const auto moved = mesh.replica().restore_into(new_heap);
    const double wire_s = net.replica_alpha_s +
                          static_cast<double>(moved * sizeof(pmoctree::PNode)) /
                              net.replica_bw_Bps;
    auto restored = pmoctree::PmOctree::restore(new_heap, pm);
    std::printf("PM-octree+replica: rebuilt %zu octants on the new node "
                "(%zu leaves); modeled transfer %.2f ms + local NVBM "
                "writes %.2f ms\n",
                moved, restored.leaf_count(), wire_s * 1e3,
                ms(new_node.counters().modeled_ns()));
  }
  return 0;
}
