file(REMOVE_RECURSE
  "CMakeFiles/gerris_port.dir/gerris_port.cpp.o"
  "CMakeFiles/gerris_port.dir/gerris_port.cpp.o.d"
  "gerris_port"
  "gerris_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerris_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
