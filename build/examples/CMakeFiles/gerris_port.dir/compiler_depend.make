# Empty compiler generated dependencies file for gerris_port.
# This may be replaced when dependencies are built.
