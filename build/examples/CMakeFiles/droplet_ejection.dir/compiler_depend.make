# Empty compiler generated dependencies file for droplet_ejection.
# This may be replaced when dependencies are built.
