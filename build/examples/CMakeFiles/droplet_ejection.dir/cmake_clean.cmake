file(REMOVE_RECURSE
  "CMakeFiles/droplet_ejection.dir/droplet_ejection.cpp.o"
  "CMakeFiles/droplet_ejection.dir/droplet_ejection.cpp.o.d"
  "droplet_ejection"
  "droplet_ejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplet_ejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
