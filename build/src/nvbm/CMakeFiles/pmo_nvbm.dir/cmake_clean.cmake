file(REMOVE_RECURSE
  "CMakeFiles/pmo_nvbm.dir/device.cpp.o"
  "CMakeFiles/pmo_nvbm.dir/device.cpp.o.d"
  "CMakeFiles/pmo_nvbm.dir/heap.cpp.o"
  "CMakeFiles/pmo_nvbm.dir/heap.cpp.o.d"
  "libpmo_nvbm.a"
  "libpmo_nvbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_nvbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
