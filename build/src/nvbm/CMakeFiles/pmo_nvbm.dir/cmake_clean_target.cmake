file(REMOVE_RECURSE
  "libpmo_nvbm.a"
)
