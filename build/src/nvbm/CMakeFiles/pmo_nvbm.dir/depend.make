# Empty dependencies file for pmo_nvbm.
# This may be replaced when dependencies are built.
