file(REMOVE_RECURSE
  "CMakeFiles/pmo_octree.dir/octree.cpp.o"
  "CMakeFiles/pmo_octree.dir/octree.cpp.o.d"
  "libpmo_octree.a"
  "libpmo_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
