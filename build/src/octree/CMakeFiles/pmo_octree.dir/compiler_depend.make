# Empty compiler generated dependencies file for pmo_octree.
# This may be replaced when dependencies are built.
