file(REMOVE_RECURSE
  "libpmo_octree.a"
)
