file(REMOVE_RECURSE
  "CMakeFiles/pmo_nvfs.dir/file_store.cpp.o"
  "CMakeFiles/pmo_nvfs.dir/file_store.cpp.o.d"
  "libpmo_nvfs.a"
  "libpmo_nvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_nvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
