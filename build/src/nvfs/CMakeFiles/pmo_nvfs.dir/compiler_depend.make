# Empty compiler generated dependencies file for pmo_nvfs.
# This may be replaced when dependencies are built.
