
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvfs/file_store.cpp" "src/nvfs/CMakeFiles/pmo_nvfs.dir/file_store.cpp.o" "gcc" "src/nvfs/CMakeFiles/pmo_nvfs.dir/file_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvbm/CMakeFiles/pmo_nvbm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
