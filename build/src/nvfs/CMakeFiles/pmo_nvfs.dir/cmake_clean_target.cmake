file(REMOVE_RECURSE
  "libpmo_nvfs.a"
)
