# Empty compiler generated dependencies file for pmo_gfs.
# This may be replaced when dependencies are built.
