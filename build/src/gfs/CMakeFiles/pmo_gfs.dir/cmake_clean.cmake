file(REMOVE_RECURSE
  "CMakeFiles/pmo_gfs.dir/gfs.cpp.o"
  "CMakeFiles/pmo_gfs.dir/gfs.cpp.o.d"
  "libpmo_gfs.a"
  "libpmo_gfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_gfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
