file(REMOVE_RECURSE
  "libpmo_gfs.a"
)
