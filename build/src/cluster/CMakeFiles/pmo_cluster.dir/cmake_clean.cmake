file(REMOVE_RECURSE
  "CMakeFiles/pmo_cluster.dir/cluster_sim.cpp.o"
  "CMakeFiles/pmo_cluster.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/pmo_cluster.dir/partition.cpp.o"
  "CMakeFiles/pmo_cluster.dir/partition.cpp.o.d"
  "libpmo_cluster.a"
  "libpmo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
