file(REMOVE_RECURSE
  "libpmo_cluster.a"
)
