# Empty compiler generated dependencies file for pmo_cluster.
# This may be replaced when dependencies are built.
