# Empty compiler generated dependencies file for pmo_amr.
# This may be replaced when dependencies are built.
