file(REMOVE_RECURSE
  "libpmo_amr.a"
)
