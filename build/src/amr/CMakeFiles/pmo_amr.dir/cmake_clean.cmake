file(REMOVE_RECURSE
  "CMakeFiles/pmo_amr.dir/droplet.cpp.o"
  "CMakeFiles/pmo_amr.dir/droplet.cpp.o.d"
  "CMakeFiles/pmo_amr.dir/extract.cpp.o"
  "CMakeFiles/pmo_amr.dir/extract.cpp.o.d"
  "CMakeFiles/pmo_amr.dir/pm_backend.cpp.o"
  "CMakeFiles/pmo_amr.dir/pm_backend.cpp.o.d"
  "libpmo_amr.a"
  "libpmo_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
