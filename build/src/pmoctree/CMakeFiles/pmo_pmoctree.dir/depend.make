# Empty dependencies file for pmo_pmoctree.
# This may be replaced when dependencies are built.
