
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmoctree/api.cpp" "src/pmoctree/CMakeFiles/pmo_pmoctree.dir/api.cpp.o" "gcc" "src/pmoctree/CMakeFiles/pmo_pmoctree.dir/api.cpp.o.d"
  "/root/repo/src/pmoctree/pm_octree.cpp" "src/pmoctree/CMakeFiles/pmo_pmoctree.dir/pm_octree.cpp.o" "gcc" "src/pmoctree/CMakeFiles/pmo_pmoctree.dir/pm_octree.cpp.o.d"
  "/root/repo/src/pmoctree/replica.cpp" "src/pmoctree/CMakeFiles/pmo_pmoctree.dir/replica.cpp.o" "gcc" "src/pmoctree/CMakeFiles/pmo_pmoctree.dir/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvbm/CMakeFiles/pmo_nvbm.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/pmo_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
