file(REMOVE_RECURSE
  "CMakeFiles/pmo_pmoctree.dir/api.cpp.o"
  "CMakeFiles/pmo_pmoctree.dir/api.cpp.o.d"
  "CMakeFiles/pmo_pmoctree.dir/pm_octree.cpp.o"
  "CMakeFiles/pmo_pmoctree.dir/pm_octree.cpp.o.d"
  "CMakeFiles/pmo_pmoctree.dir/replica.cpp.o"
  "CMakeFiles/pmo_pmoctree.dir/replica.cpp.o.d"
  "libpmo_pmoctree.a"
  "libpmo_pmoctree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_pmoctree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
