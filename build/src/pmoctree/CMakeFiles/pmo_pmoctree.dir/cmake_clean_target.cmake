file(REMOVE_RECURSE
  "libpmo_pmoctree.a"
)
