file(REMOVE_RECURSE
  "libpmo_baseline.a"
)
