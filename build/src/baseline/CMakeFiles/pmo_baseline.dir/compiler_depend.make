# Empty compiler generated dependencies file for pmo_baseline.
# This may be replaced when dependencies are built.
