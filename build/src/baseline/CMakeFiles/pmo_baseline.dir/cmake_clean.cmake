file(REMOVE_RECURSE
  "CMakeFiles/pmo_baseline.dir/bptree.cpp.o"
  "CMakeFiles/pmo_baseline.dir/bptree.cpp.o.d"
  "CMakeFiles/pmo_baseline.dir/etree_backend.cpp.o"
  "CMakeFiles/pmo_baseline.dir/etree_backend.cpp.o.d"
  "CMakeFiles/pmo_baseline.dir/incore_backend.cpp.o"
  "CMakeFiles/pmo_baseline.dir/incore_backend.cpp.o.d"
  "libpmo_baseline.a"
  "libpmo_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
