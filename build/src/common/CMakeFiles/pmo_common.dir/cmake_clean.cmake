file(REMOVE_RECURSE
  "CMakeFiles/pmo_common.dir/morton.cpp.o"
  "CMakeFiles/pmo_common.dir/morton.cpp.o.d"
  "CMakeFiles/pmo_common.dir/stats.cpp.o"
  "CMakeFiles/pmo_common.dir/stats.cpp.o.d"
  "CMakeFiles/pmo_common.dir/timing.cpp.o"
  "CMakeFiles/pmo_common.dir/timing.cpp.o.d"
  "libpmo_common.a"
  "libpmo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
