# Empty compiler generated dependencies file for pmo_common.
# This may be replaced when dependencies are built.
