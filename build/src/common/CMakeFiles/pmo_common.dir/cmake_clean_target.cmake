file(REMOVE_RECURSE
  "libpmo_common.a"
)
