# Empty dependencies file for pmo_common.
# This may be replaced when dependencies are built.
