file(REMOVE_RECURSE
  "CMakeFiles/fig11_transform.dir/fig11_transform.cpp.o"
  "CMakeFiles/fig11_transform.dir/fig11_transform.cpp.o.d"
  "fig11_transform"
  "fig11_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
