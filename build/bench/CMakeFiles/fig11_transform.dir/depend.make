# Empty dependencies file for fig11_transform.
# This may be replaced when dependencies are built.
