# Empty dependencies file for fig08_strong_scaling.
# This may be replaced when dependencies are built.
