# Empty dependencies file for fig06_weak_scaling.
# This may be replaced when dependencies are built.
