file(REMOVE_RECURSE
  "CMakeFiles/sec56_recovery.dir/sec56_recovery.cpp.o"
  "CMakeFiles/sec56_recovery.dir/sec56_recovery.cpp.o.d"
  "sec56_recovery"
  "sec56_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
