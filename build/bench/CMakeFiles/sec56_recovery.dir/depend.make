# Empty dependencies file for sec56_recovery.
# This may be replaced when dependencies are built.
