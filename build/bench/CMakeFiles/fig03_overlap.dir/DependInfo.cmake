
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_overlap.cpp" "bench/CMakeFiles/fig03_overlap.dir/fig03_overlap.cpp.o" "gcc" "bench/CMakeFiles/fig03_overlap.dir/fig03_overlap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/pmo_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pmo_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pmo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/pmoctree/CMakeFiles/pmo_pmoctree.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/pmo_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/nvfs/CMakeFiles/pmo_nvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/nvbm/CMakeFiles/pmo_nvbm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
