file(REMOVE_RECURSE
  "CMakeFiles/fig03_overlap.dir/fig03_overlap.cpp.o"
  "CMakeFiles/fig03_overlap.dir/fig03_overlap.cpp.o.d"
  "fig03_overlap"
  "fig03_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
