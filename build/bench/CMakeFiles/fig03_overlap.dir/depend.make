# Empty dependencies file for fig03_overlap.
# This may be replaced when dependencies are built.
