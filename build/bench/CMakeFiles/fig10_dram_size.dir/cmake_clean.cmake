file(REMOVE_RECURSE
  "CMakeFiles/fig10_dram_size.dir/fig10_dram_size.cpp.o"
  "CMakeFiles/fig10_dram_size.dir/fig10_dram_size.cpp.o.d"
  "fig10_dram_size"
  "fig10_dram_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dram_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
