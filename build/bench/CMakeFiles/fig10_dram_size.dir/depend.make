# Empty dependencies file for fig10_dram_size.
# This may be replaced when dependencies are built.
