file(REMOVE_RECURSE
  "CMakeFiles/fig09_strong_compare.dir/fig09_strong_compare.cpp.o"
  "CMakeFiles/fig09_strong_compare.dir/fig09_strong_compare.cpp.o.d"
  "fig09_strong_compare"
  "fig09_strong_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_strong_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
