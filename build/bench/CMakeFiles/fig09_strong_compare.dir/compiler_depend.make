# Empty compiler generated dependencies file for fig09_strong_compare.
# This may be replaced when dependencies are built.
