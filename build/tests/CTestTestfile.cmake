# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_morton[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_nvbm_device[1]_include.cmake")
include("/root/repo/build/tests/test_nvbm_heap[1]_include.cmake")
include("/root/repo/build/tests/test_nvfs[1]_include.cmake")
include("/root/repo/build/tests/test_octree[1]_include.cmake")
include("/root/repo/build/tests/test_pmoctree[1]_include.cmake")
include("/root/repo/build/tests/test_pmoctree_persist[1]_include.cmake")
include("/root/repo/build/tests/test_pmoctree_crash[1]_include.cmake")
include("/root/repo/build/tests/test_pmoctree_transform[1]_include.cmake")
include("/root/repo/build/tests/test_replica[1]_include.cmake")
include("/root/repo/build/tests/test_bptree[1]_include.cmake")
include("/root/repo/build/tests/test_backends[1]_include.cmake")
include("/root/repo/build/tests/test_droplet[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_gfs[1]_include.cmake")
include("/root/repo/build/tests/test_extras[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_auto_budget[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
