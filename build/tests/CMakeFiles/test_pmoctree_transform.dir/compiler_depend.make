# Empty compiler generated dependencies file for test_pmoctree_transform.
# This may be replaced when dependencies are built.
