file(REMOVE_RECURSE
  "CMakeFiles/test_pmoctree_transform.dir/pmoctree_transform_test.cpp.o"
  "CMakeFiles/test_pmoctree_transform.dir/pmoctree_transform_test.cpp.o.d"
  "test_pmoctree_transform"
  "test_pmoctree_transform.pdb"
  "test_pmoctree_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmoctree_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
