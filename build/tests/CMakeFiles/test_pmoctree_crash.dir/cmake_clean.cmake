file(REMOVE_RECURSE
  "CMakeFiles/test_pmoctree_crash.dir/pmoctree_crash_test.cpp.o"
  "CMakeFiles/test_pmoctree_crash.dir/pmoctree_crash_test.cpp.o.d"
  "test_pmoctree_crash"
  "test_pmoctree_crash.pdb"
  "test_pmoctree_crash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmoctree_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
