# Empty compiler generated dependencies file for test_pmoctree_crash.
# This may be replaced when dependencies are built.
