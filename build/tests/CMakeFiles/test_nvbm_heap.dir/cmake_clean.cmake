file(REMOVE_RECURSE
  "CMakeFiles/test_nvbm_heap.dir/nvbm_heap_test.cpp.o"
  "CMakeFiles/test_nvbm_heap.dir/nvbm_heap_test.cpp.o.d"
  "test_nvbm_heap"
  "test_nvbm_heap.pdb"
  "test_nvbm_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvbm_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
