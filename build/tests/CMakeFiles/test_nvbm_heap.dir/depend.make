# Empty dependencies file for test_nvbm_heap.
# This may be replaced when dependencies are built.
