# Empty dependencies file for test_bptree.
# This may be replaced when dependencies are built.
