file(REMOVE_RECURSE
  "CMakeFiles/test_bptree.dir/bptree_test.cpp.o"
  "CMakeFiles/test_bptree.dir/bptree_test.cpp.o.d"
  "test_bptree"
  "test_bptree.pdb"
  "test_bptree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bptree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
