file(REMOVE_RECURSE
  "CMakeFiles/test_gfs.dir/gfs_test.cpp.o"
  "CMakeFiles/test_gfs.dir/gfs_test.cpp.o.d"
  "test_gfs"
  "test_gfs.pdb"
  "test_gfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
