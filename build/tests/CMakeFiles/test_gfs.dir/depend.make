# Empty dependencies file for test_gfs.
# This may be replaced when dependencies are built.
