# Empty compiler generated dependencies file for test_nvbm_device.
# This may be replaced when dependencies are built.
