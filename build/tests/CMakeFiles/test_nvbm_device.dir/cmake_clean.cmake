file(REMOVE_RECURSE
  "CMakeFiles/test_nvbm_device.dir/nvbm_device_test.cpp.o"
  "CMakeFiles/test_nvbm_device.dir/nvbm_device_test.cpp.o.d"
  "test_nvbm_device"
  "test_nvbm_device.pdb"
  "test_nvbm_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvbm_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
