# Empty dependencies file for test_nvfs.
# This may be replaced when dependencies are built.
