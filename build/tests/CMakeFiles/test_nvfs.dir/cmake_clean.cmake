file(REMOVE_RECURSE
  "CMakeFiles/test_nvfs.dir/nvfs_test.cpp.o"
  "CMakeFiles/test_nvfs.dir/nvfs_test.cpp.o.d"
  "test_nvfs"
  "test_nvfs.pdb"
  "test_nvfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
