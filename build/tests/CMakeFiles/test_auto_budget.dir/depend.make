# Empty dependencies file for test_auto_budget.
# This may be replaced when dependencies are built.
