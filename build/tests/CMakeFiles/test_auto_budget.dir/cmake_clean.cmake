file(REMOVE_RECURSE
  "CMakeFiles/test_auto_budget.dir/auto_budget_test.cpp.o"
  "CMakeFiles/test_auto_budget.dir/auto_budget_test.cpp.o.d"
  "test_auto_budget"
  "test_auto_budget.pdb"
  "test_auto_budget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
