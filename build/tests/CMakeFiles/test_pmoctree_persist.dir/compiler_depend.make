# Empty compiler generated dependencies file for test_pmoctree_persist.
# This may be replaced when dependencies are built.
