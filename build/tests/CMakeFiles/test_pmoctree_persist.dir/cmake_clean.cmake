file(REMOVE_RECURSE
  "CMakeFiles/test_pmoctree_persist.dir/pmoctree_persist_test.cpp.o"
  "CMakeFiles/test_pmoctree_persist.dir/pmoctree_persist_test.cpp.o.d"
  "test_pmoctree_persist"
  "test_pmoctree_persist.pdb"
  "test_pmoctree_persist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmoctree_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
