file(REMOVE_RECURSE
  "CMakeFiles/test_pmoctree.dir/pmoctree_test.cpp.o"
  "CMakeFiles/test_pmoctree.dir/pmoctree_test.cpp.o.d"
  "test_pmoctree"
  "test_pmoctree.pdb"
  "test_pmoctree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmoctree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
