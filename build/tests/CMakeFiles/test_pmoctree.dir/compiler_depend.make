# Empty compiler generated dependencies file for test_pmoctree.
# This may be replaced when dependencies are built.
