file(REMOVE_RECURSE
  "CMakeFiles/test_droplet.dir/droplet_test.cpp.o"
  "CMakeFiles/test_droplet.dir/droplet_test.cpp.o.d"
  "test_droplet"
  "test_droplet.pdb"
  "test_droplet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_droplet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
