# Empty compiler generated dependencies file for test_droplet.
# This may be replaced when dependencies are built.
