// Snapshot serving & epoch-based reclamation tests.
//
// The serving contract under test: a SnapshotHandle pins a persisted
// epoch so (1) every query result from src/serve is correct against the
// pinned image, (2) no node reachable from a pinned epoch is freed,
// tombstoned or overwritten by the concurrent mutator — persist()
// defers tombstone marking and gc() keeps pinned-reachable nodes live —
// and (3) reader results and modeled charges are bit-identical across
// thread counts (the determinism contract). The concurrent stress test
// here is part of the tsan_smoke gate.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "exec/pool.hpp"
#include "pmoctree/pm_octree.hpp"
#include "serve/reader.hpp"

namespace pmo::serve {
namespace {

using pmoctree::PmConfig;
using pmoctree::PmOctree;
using pmoctree::PNode;

nvbm::Config quiet_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kNone;
  return c;
}

nvbm::Config crash_cfg() {
  nvbm::Config c = quiet_cfg();
  c.crash_sim = true;
  return c;
}

CellData cell(double vof) {
  CellData d;
  d.vof = vof;
  return d;
}

/// (key | level<<60) -> vof: the logical-content map every comparison
/// here uses (never NVBM offsets).
using LeafMap = std::map<std::uint64_t, double>;

std::uint64_t leaf_key(const LocCode& c) {
  return c.key() | (static_cast<std::uint64_t>(c.level()) << 60);
}

LeafMap leaves_of(PmOctree& tree) {
  LeafMap out;
  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    out[leaf_key(c)] = d.vof;
  });
  return out;
}

/// Whole-domain box.
Box domain() {
  Box b;
  for (int i = 0; i < 3; ++i) {
    b.lo[i] = 0;
    b.hi[i] = (std::uint32_t{1} << kMaxLevel) - 1;
  }
  return b;
}

LeafMap query_all(Reader& r) {
  LeafMap out;
  r.query_box(domain(), [&](const Leaf& l) { out[leaf_key(l.code)] = l.data.vof; });
  return out;
}

/// Applies `steps` random structural+data mutations.
void mutate_randomly(PmOctree& tree, Rng& rng, int steps) {
  for (int s = 0; s < steps; ++s) {
    std::vector<LocCode> leaves;
    tree.for_each_leaf(
        [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
    const auto& victim =
        leaves[static_cast<std::size_t>(rng.below(leaves.size()))];
    const auto action = rng.below(3);
    if (action == 0 && victim.level() < 5) {
      tree.refine(victim);
    } else if (action == 1 && victim.level() > 1) {
      bool all_leaves = true;
      for (int i = 0; i < kChildrenPerNode && all_leaves; ++i) {
        const auto sib = victim.parent().child(i);
        all_leaves = tree.contains(sib) &&
                     tree.leaf_containing(sib.child(0)) == sib;
      }
      if (all_leaves) tree.coarsen(victim.parent());
    } else {
      tree.update(victim, cell(rng.uniform()));
    }
  }
}

/// A small mixed-level tree: level-1 everywhere, one octant refined to 3.
void build_mixed(PmOctree& tree) {
  tree.refine(LocCode::root());
  tree.refine(LocCode::root().child(0));
  tree.refine(LocCode::root().child(0).child(7));
  tree.refine(LocCode::root().child(5));
  int i = 0;
  tree.for_each_leaf_mut([&](const LocCode&, CellData& d) {
    d.vof = 0.01 * ++i;
    return true;
  });
}

TEST(ServeReader, PointAndBoxQueriesMatchOwnerTraversal) {
  nvbm::Device dev(64 << 20, quiet_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  build_mixed(tree);
  tree.persist();
  const LeafMap expect = leaves_of(tree);

  Reader reader(tree.pin_snapshot());
  EXPECT_EQ(query_all(reader), expect);

  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    const auto found = reader.find(c);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->vof, d.vof);
    // locate() of any descendant point resolves to the covering leaf.
    if (c.level() < kMaxLevel) {
      const Leaf l = reader.locate(c.child(3));
      EXPECT_EQ(l.code, c);
      EXPECT_EQ(l.data.vof, d.vof);
    }
    // The octant's children do not exist in the snapshot.
    if (c.level() < kMaxLevel) {
      EXPECT_FALSE(reader.find(c.child(0)).has_value());
    }
  });
  EXPECT_GT(reader.charges().node_loads, 0u);
  EXPECT_GT(reader.queries(), 0u);
}

/// Brute-force face adjacency: a and b share a face iff they are
/// plane-adjacent on one axis and their ranges overlap on the other two.
bool face_adjacent(const LocCode& a, const LocCode& b) {
  const Anchor aa = a.anchor(), ba = b.anchor();
  const std::uint32_t alo[3] = {aa.x, aa.y, aa.z};
  const std::uint32_t blo[3] = {ba.x, ba.y, ba.z};
  const std::uint32_t ae = a.extent(), be = b.extent();
  for (int n = 0; n < 3; ++n) {
    if (blo[n] != alo[n] + ae && alo[n] != blo[n] + be) continue;
    bool overlap = true;
    for (int t = 0; t < 3 && overlap; ++t) {
      if (t == n) continue;
      overlap = blo[t] <= alo[t] + ae - 1 && alo[t] <= blo[t] + be - 1;
    }
    if (overlap) return true;
  }
  return false;
}

TEST(ServeReader, FaceNeighborsAndInterfaceMatchBruteForce) {
  nvbm::Device dev(64 << 20, quiet_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  build_mixed(tree);
  tree.persist();
  std::vector<LocCode> all;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { all.push_back(c); });

  Reader reader(tree.pin_snapshot());
  std::size_t expect_facets = 0;
  for (const LocCode& a : all) {
    std::set<std::uint64_t> expect_nb;
    for (const LocCode& b : all) {
      if (!(a == b) && face_adjacent(a, b)) expect_nb.insert(leaf_key(b));
    }
    std::set<std::uint64_t> got;
    reader.face_neighbors(a, [&](const Leaf& l) { got.insert(leaf_key(l.code)); });
    EXPECT_EQ(got, expect_nb) << "leaf level " << a.level();
    for (const LocCode& b : all) {
      if (face_adjacent(a, b) && b.level() < a.level()) ++expect_facets;
    }
  }
  std::size_t got_facets = 0;
  reader.interface_facets(domain(), [&](const InterfaceFacet& f) {
    EXPECT_LT(f.coarse.code.level(), f.fine.code.level());
    EXPECT_TRUE(face_adjacent(f.fine.code, f.coarse.code));
    ++got_facets;
  });
  EXPECT_EQ(got_facets, expect_facets);
}

TEST(ServeSnapshot, ForEachLeafPrevUnifiedWithSnapshotTraversal) {
  nvbm::Device dev(64 << 20, quiet_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  build_mixed(tree);
  tree.persist();

  LeafMap via_prev;
  tree.for_each_leaf_prev([&](const LocCode& c, const CellData& d) {
    via_prev[leaf_key(c)] = d.vof;
  });
  auto snap = tree.pin_snapshot();
  LeafMap via_snap;
  tree.for_each_leaf_snapshot(snap, [&](const LocCode& c, const CellData& d) {
    via_snap[leaf_key(c)] = d.vof;
  });
  EXPECT_EQ(via_prev, via_snap);
  EXPECT_EQ(via_prev, leaves_of(tree));

  // The pinned epoch stays traversable (and identical) after the head
  // moves on — for_each_leaf_prev alone can no longer see it.
  tree.refine_where([](const LocCode& c, const CellData&) {
    return c.level() < 2;
  });
  tree.persist();
  LeafMap after;
  tree.for_each_leaf_snapshot(snap, [&](const LocCode& c, const CellData& d) {
    after[leaf_key(c)] = d.vof;
  });
  EXPECT_EQ(after, via_snap);
}

TEST(ServeSnapshot, PinKeepsNodesAcrossGcAndReclaimsAfterRelease) {
  nvbm::Device dev(64 << 20, quiet_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.gc_on_persist = true;
  pm.dram_budget_bytes = 16 * sizeof(PNode);  // heavy NVBM traffic
  auto tree = PmOctree::create(heap, pm);
  tree.refine_where([](const LocCode& c, const CellData&) {
    return c.level() < 3;
  });
  int i = 0;
  tree.for_each_leaf_mut([&](const LocCode&, CellData& d) {
    d.vof = 0.001 * ++i;
    return true;
  });
  tree.persist();

  auto snap = tree.pin_snapshot();
  ReaderConfig uncached;
  uncached.cache_bytes = 0;  // every load re-reads device bytes
  LeafMap before;
  {
    Reader r(snap, uncached);
    before = query_all(r);
  }

  // Coarsen the world away and keep persisting: without the pin, gc
  // would free the level-3 subtrees the snapshot still references.
  tree.coarsen_where(
      [](const LocCode& c, const CellData&) { return c.level() >= 1; });
  tree.persist();
  tree.update(tree.leaf_containing(LocCode::root().child(0).child(0)),
              cell(0.5));
  tree.persist();
  EXPECT_GT(tree.deferred_reclaim_high_water(), 0u)
      << "gc never had to retain pin-only nodes";
  EXPECT_GT(tree.deferred_reclaim_nodes(), 0u);

  LeafMap after;
  {
    Reader r(snap, uncached);
    after = query_all(r);
  }
  EXPECT_EQ(after, before) << "pinned snapshot changed under gc";

  // Release the pin: the next persist's gc reclaims the backlog.
  snap.release();
  EXPECT_EQ(tree.pinned_epochs(), 0u);
  tree.update(tree.leaf_containing(LocCode::root().child(0).child(0)),
              cell(0.25));
  tree.persist();
  EXPECT_EQ(tree.deferred_reclaim_nodes(), 0u);
}

TEST(ServeSnapshot, TombstoningDeferredWhilePinned) {
  nvbm::Device dev(64 << 20, quiet_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.gc_on_persist = false;  // deferred collection: marking pass active
  auto tree = PmOctree::create(heap, pm);
  tree.refine_where([](const LocCode& c, const CellData&) {
    return c.level() < 2;
  });
  tree.persist();

  auto snap = tree.pin_snapshot();
  LeafMap pinned_view;
  tree.for_each_leaf_snapshot(snap, [&](const LocCode& c, const CellData& d) {
    pinned_view[leaf_key(c)] = d.vof;
  });

  // Drop shared subtrees while the pin is live: the marking pass must
  // not touch a single pinned byte.
  tree.coarsen_where(
      [](const LocCode& c, const CellData&) { return c.level() >= 1; });
  const auto while_pinned = tree.persist();
  EXPECT_EQ(while_pinned.tombstoned, 0u)
      << "tombstone marking ran while an epoch was pinned";
  LeafMap still;
  tree.for_each_leaf_snapshot(snap, [&](const LocCode& c, const CellData& d) {
    still[leaf_key(c)] = d.vof;
  });
  EXPECT_EQ(still, pinned_view);

  // Release; the backlog drains at the next pin-free persist.
  snap.release();
  tree.update(tree.leaf_containing(LocCode::root().child(0).child(0)),
              cell(0.125));
  const auto after_release = tree.persist();
  EXPECT_GT(after_release.tombstoned, 0u);
}

TEST(ServeConcurrency, ReadersRaceMutatorWithByteStableResults) {
  nvbm::Device dev(std::size_t{128} << 20, quiet_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.gc_on_persist = true;
  pm.dram_budget_bytes = 32 * sizeof(PNode);
  auto tree = PmOctree::create(heap, pm);
  tree.refine_where([](const LocCode& c, const CellData&) {
    return c.level() < 2;
  });
  tree.persist();

  constexpr int kLanes = 3;
  constexpr int kMutatorIters = 12;
  exec::ThreadPool pool(1 + kLanes);
  std::atomic<bool> done{false};
  std::vector<exec::ThreadPool::Task> tasks;
  tasks.push_back([&] {
    Rng rng(42);
    for (int it = 0; it < kMutatorIters; ++it) {
      mutate_randomly(tree, rng, 6);
      tree.persist();  // publish + gc, with readers pinned
    }
    done.store(true, std::memory_order_release);
  });
  for (int lane = 0; lane < kLanes; ++lane) {
    tasks.push_back([&, lane] {
      bool first = true;
      int batches = 0;
      while (first || !done.load(std::memory_order_acquire)) {
        first = false;
        auto snap = tree.pin_snapshot();
        ReaderConfig cfg;
        cfg.cache_bytes = lane == 0 ? 0 : std::size_t{64} << 10;
        Reader a(snap, cfg);
        Reader b(snap, cfg);
        // Two independent passes over the same pinned epoch must agree
        // bit-for-bit no matter what the mutator does meanwhile.
        const LeafMap pass1 = query_all(a);
        const LeafMap pass2 = query_all(b);
        ASSERT_EQ(pass1, pass2) << "lane " << lane;
        ASSERT_FALSE(pass1.empty());
        ++batches;
      }
      EXPECT_GE(batches, 1);
    });
  }
  pool.run_tasks(tasks);
  EXPECT_EQ(tree.pinned_epochs(), 0u);
  // With every pin released, the backlog drains.
  tree.update(tree.leaf_containing(LocCode::root().child(0).child(0)),
              cell(0.75));
  tree.persist();
  EXPECT_EQ(tree.deferred_reclaim_nodes(), 0u);
}

TEST(ServeConcurrency, VerifySweepBitIdenticalAcrossThreadCounts) {
  nvbm::Device dev(64 << 20, quiet_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  build_mixed(tree);
  tree.persist();

  constexpr std::size_t kLanes = 4;
  const auto sweep = [&](int threads) {
    exec::ThreadPool pool(threads);
    std::vector<LeafMap> results(kLanes);
    std::vector<ReadCharges> charges(kLanes);
    pool.parallel_for(kLanes, [&](std::size_t lane) {
      Reader r(tree.pin_snapshot());
      // A fixed per-lane stream: the box shrinks with the lane index.
      Box b = domain();
      for (std::size_t i = 0; i <= lane; ++i) {
        b.hi[0] >>= 1;
        r.query_box(b, [&](const Leaf& l) {
          results[lane][leaf_key(l.code)] = l.data.vof;
        });
        r.face_neighbors(LocCode::root().child(0).child(1),
                         [&](const Leaf&) {});
      }
      charges[lane] = r.charges();
    });
    return std::make_pair(results, charges);
  };
  const auto seq = sweep(1);
  const auto par = sweep(4);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(seq.first[lane], par.first[lane]) << "lane " << lane;
    EXPECT_EQ(seq.second[lane].node_loads, par.second[lane].node_loads);
    EXPECT_EQ(seq.second[lane].cached_loads, par.second[lane].cached_loads);
    EXPECT_EQ(seq.second[lane].lines_read, par.second[lane].lines_read);
    EXPECT_EQ(seq.second[lane].modeled_ns, par.second[lane].modeled_ns);
  }
}

TEST(ServeCrash, CrashMidPersistWithPinnedReadersRestoresCleanly) {
  Rng rng(2026);
  nvbm::Device dev(64 << 20, crash_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.gc_on_persist = true;
  pm.dram_budget_bytes = 16 * sizeof(PNode);
  LeafMap persisted;
  {
    auto tree = PmOctree::create(heap, pm);
    tree.refine(LocCode::root());
    mutate_randomly(tree, rng, 15);
    tree.persist();
    persisted = leaves_of(tree);

    auto snap = tree.pin_snapshot();
    ReaderConfig uncached;
    uncached.cache_bytes = 0;
    {
      Reader r(snap, uncached);
      EXPECT_EQ(query_all(r), persisted);
    }

    // Mutate toward the next persist, then die before its root swap —
    // with the pin live the whole way, so none of the dying writes may
    // have landed in pinned bytes.
    mutate_randomly(tree, rng, 12);
    dev.simulate_crash(rng, rng.uniform());

    // The pinned epoch is durable (persist flushed it): byte-stable
    // straight through the crash.
    {
      Reader r(snap, uncached);
      EXPECT_EQ(query_all(r), persisted);
    }
  }

  nvbm::Heap heap2(dev);
  ASSERT_TRUE(PmOctree::can_restore(heap2));
  auto back = PmOctree::restore(heap2, pm);
  EXPECT_EQ(leaves_of(back), persisted);
  // Restore republishes the durable epoch: it is pinnable immediately.
  auto snap = back.pin_snapshot();
  Reader r(snap);
  EXPECT_EQ(query_all(r), persisted);
}

}  // namespace
}  // namespace pmo::serve
