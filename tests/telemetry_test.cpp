// Tests for the telemetry subsystem: metric kinds, registry, span
// nesting, snapshot deltas and the JSON exporters (including a
// golden-file check of the stable export schema).
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace pmo::telemetry {
namespace {

// Everything that asserts on recorded values only holds when recording
// is compiled in; under PMO_TELEMETRY=OFF every increment is a no-op by
// design (see CompileGate below).
#if PMO_TELEMETRY_ENABLED

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrements) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(Gauge, KeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-3.25);
  EXPECT_EQ(g.value(), -3.25);
}

TEST(Histogram, BucketsByLog2) {
  Histogram h;
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1: [1, 2)
  h.record(2);    // bucket 2: [2, 4)
  h.record(3);    // bucket 2
  h.record(4);    // bucket 3: [4, 8)
  h.record(100);  // bucket 7: [64, 128)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(7), 1u);
  EXPECT_NEAR(h.mean(), 110.0 / 6.0, 1e-12);
}

TEST(Histogram, PercentileBounds) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(1 << 20);
  // p50 falls in bucket 1 (inclusive bound 1); the 2^20 value lands in
  // bucket 21, whose inclusive bound is 2^21 - 1.
  EXPECT_EQ(h.percentile_bound(0.5), 1u);
  EXPECT_EQ(h.percentile_bound(1.0), (std::uint64_t{1} << 21) - 1);
}

TEST(Histogram, InterpolatedPercentileExactOnUniformFill) {
  // Consecutive integers fill every log2 bucket uniformly, which is the
  // case the within-bucket interpolation is exact for: rank r must come
  // back as the value r itself, not the bucket's upper bound.
  Histogram h;
  for (std::uint64_t v = 1; v <= 65536; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.50), 32768u);
  EXPECT_EQ(h.percentile(0.95), 62259u);  // rank 62259 of 1..65536
  EXPECT_EQ(h.percentile(0.99), 64880u);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(1.0), 65536u);
}

TEST(Histogram, InterpolatedPercentileSmallSet) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  // rank = floor(p * (n-1)) + 1: p50 of 10 samples is rank 5 -> value 5.
  EXPECT_EQ(h.percentile(0.5), 5u);
  EXPECT_EQ(h.percentile(0.0), h.min());
  // The within-bucket estimate for the top bucket {8, 9, 10} overshoots;
  // the clamp pins the tail to the observed max.
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, InterpolatedPercentileClampsToObservedRange) {
  // A single repeated value sits mid-bucket; every percentile must
  // return that value, not an interpolated neighbor.
  Histogram h;
  for (int i = 0; i < 5; ++i) h.record(1000);
  for (double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(p), 1000u) << p;
  }
}

TEST(Histogram, InterpolatedPercentileExtremes) {
  Histogram e;
  EXPECT_EQ(e.percentile(0.9), 0u);  // empty histogram
  Histogram z;
  z.record(0);
  EXPECT_EQ(z.percentile(0.5), 0u);  // bucket 0 is the literal value 0
  // A lone 2^63: the estimate starts at the top bucket's floor (2^62),
  // the [min, max] clamp lifts it to the observed value, and the
  // double->u64 saturation guard returns max() instead of overflowing.
  Histogram m;
  m.record(std::uint64_t{1} << 63);
  EXPECT_EQ(m.percentile(1.0), std::uint64_t{1} << 63);
  // With min pinned at 0 the clamp stays out of the way and the top
  // bucket's floor (2^62 — bucket 63 holds everything >= 2^62) is the
  // honest evenly-spaced estimate. No overflow, no crash.
  Histogram h;
  h.record(0);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.percentile(1.0), std::uint64_t{1} << 62);
}

TEST(Histogram, InterpolatedPercentileStaysInObservedRange) {
  // The interpolated estimate may round past percentile_bound()'s
  // inclusive bucket bound (1 + 89/99 rounds to 2), but it can never
  // leave the observed [min, max] envelope.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(1 << 20);
  for (double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_GE(h.percentile(p), h.min()) << p;
    EXPECT_LE(h.percentile(p), h.max()) << p;
  }
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(1.0), std::uint64_t{1} << 20);
}

TEST(Registry, FindOrCreateIsStable) {
  Registry reg;
  Counter& a = reg.counter("x.y");
  a.add(7);
  EXPECT_EQ(&reg.counter("x.y"), &a);
  EXPECT_EQ(reg.counter("x.y").value(), 7u);
}

TEST(Registry, SnapshotAndDelta) {
  Registry reg;
  reg.counter("c").add(10);
  reg.gauge("g").set(2.0);
  reg.histogram("h").record(5);
  const auto before = reg.snapshot();
  reg.counter("c").add(5);
  reg.gauge("g").set(9.0);
  reg.histogram("h").record(7);
  const auto after = reg.snapshot();
  const auto delta = after.delta(before);
  EXPECT_EQ(delta.counter("c"), 5u);
  EXPECT_EQ(delta.gauge("g"), 9.0);  // gauges keep the newer value
  ASSERT_NE(delta.histogram("h"), nullptr);
  EXPECT_EQ(delta.histogram("h")->count, 1u);
  EXPECT_EQ(delta.histogram("h")->sum, 7u);
}

TEST(Registry, SourceRefreshesOnSnapshotAndUnregisters) {
  Registry reg;
  int calls = 0;
  {
    auto src = reg.register_source([&calls](Registry& r) {
      ++calls;
      r.gauge("pull.value").set(static_cast<double>(calls));
    });
    const auto snap = reg.snapshot();
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(snap.gauge("pull.value"), 1.0);
  }
  reg.snapshot();  // handle dead: callback must not run again
  EXPECT_EQ(calls, 1);
}

TEST(Registry, SourceCleanupRunsOnceWhenHandleDies) {
  Registry reg;
  int cleanups = 0;
  {
    auto src = reg.register_source([](Registry& r) { r.gauge("dev.w"); },
                                   [&cleanups] { ++cleanups; });
    reg.snapshot();
    EXPECT_EQ(cleanups, 0);
    src.reset();
    EXPECT_EQ(cleanups, 1);
    src.reset();  // idempotent
    EXPECT_EQ(cleanups, 1);
  }
  EXPECT_EQ(cleanups, 1);
}

TEST(Registry, SourceCleanupSurvivesRegistryClear) {
  // The cleanup lives in the *handle*, not the registry, so clear()
  // (which drops the source entry) must not orphan it.
  Registry reg;
  int cleanups = 0;
  auto src = reg.register_source([](Registry&) {}, [&cleanups] { ++cleanups; });
  reg.clear();
  EXPECT_EQ(cleanups, 0);
  src.reset();
  EXPECT_EQ(cleanups, 1);
}

TEST(Registry, DropGaugesErasesByPrefixOnly) {
  // Back-to-back bench bundles: a dead device's source must be able to
  // drop its gauges so later snapshots don't report ghost values.
  Registry reg;
  reg.gauge("nvbm.writes").set(7.0);
  reg.gauge("nvbm.max_wear").set(3.0);
  reg.gauge("mesh.leaves").set(100.0);
  reg.counter("nvbm.cow").add(2);
  reg.drop_gauges("nvbm.");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.count("nvbm.writes"), 0u);
  EXPECT_EQ(snap.gauges.count("nvbm.max_wear"), 0u);
  EXPECT_EQ(snap.gauge("mesh.leaves"), 100.0);
  EXPECT_EQ(snap.counter("nvbm.cow"), 2u);  // counters untouched
}

TEST(Registry, CachedGaugeReferenceSurvivesDropGauges) {
  // drop_gauges retires the object to a graveyard instead of freeing it:
  // a call site that cached the reference (the documented hot-path idiom)
  // may keep writing through it — the writes just become unobservable.
  Registry reg;
  Gauge& g = reg.gauge("nvbm.writes");
  g.set(1.0);
  reg.drop_gauges("nvbm.");
  g.set(2.0);  // must not be a use-after-free
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(reg.snapshot().gauges.count("nvbm.writes"), 0u);
  // A fresh lookup creates a NEW gauge under the old name.
  Gauge& g2 = reg.gauge("nvbm.writes");
  EXPECT_NE(&g2, &g);
  EXPECT_EQ(g2.value(), 0.0);
}

TEST(Registry, ConcurrentSnapshotSourceChurnAndDropGauges) {
  // The §exec refactor's thread-safety contract: snapshot(),
  // register_source()/Source::reset(), drop_gauges() and metric lookup
  // may all race. Run them hard from four threads; TSan (the tsan_smoke
  // label builds this test with PMO_SANITIZE=thread) checks the locking,
  // the assertions check nothing is lost or double-run.
  Registry reg;
  std::atomic<bool> go{false};
  std::atomic<int> fills{0};
  constexpr int kIters = 200;

  std::thread snapshotter([&] {
    while (!go.load()) {}
    for (int i = 0; i < kIters; ++i) {
      const auto snap = reg.snapshot();
      (void)snap;
    }
  });
  std::thread churner([&] {
    while (!go.load()) {}
    for (int i = 0; i < kIters; ++i) {
      auto src = reg.register_source(
          [&fills](Registry& r) {
            fills.fetch_add(1);
            r.gauge("churn.value").set(1.0);
          },
          [&reg] { reg.drop_gauges("churn."); });
      reg.refresh_sources();
      src.reset();  // runs the cleanup -> drop_gauges vs snapshot race
    }
  });
  std::thread dropper([&] {
    while (!go.load()) {}
    for (int i = 0; i < kIters; ++i) {
      reg.gauge("drop.me").set(static_cast<double>(i));
      reg.drop_gauges("drop.");
    }
  });
  std::thread writer([&] {
    while (!go.load()) {}
    Counter& c = reg.counter("work.items");
    for (int i = 0; i < kIters; ++i) c.add();
  });
  go.store(true);
  snapshotter.join();
  churner.join();
  dropper.join();
  writer.join();

  EXPECT_GE(fills.load(), kIters);  // every explicit refresh ran the fill
  EXPECT_EQ(reg.snapshot().counter("work.items"),
            static_cast<std::uint64_t>(kIters));
}

TEST(Span, RecordsDurationHistogram) {
  Registry reg;
  { Span s(reg, "op"); }
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.histogram("op"), nullptr);
  EXPECT_EQ(snap.histogram("op")->count, 1u);
}

TEST(Span, NestsByDotPath) {
  Registry reg;
  EXPECT_EQ(Span::current_path(), "");
  {
    Span outer(reg, "persist");
    EXPECT_EQ(Span::current_path(), "persist");
    {
      Span inner(reg, "merge");
      EXPECT_EQ(Span::current_path(), "persist.merge");
      { Span leaf(reg, "copy"); }
    }
    EXPECT_EQ(Span::current_path(), "persist");
  }
  EXPECT_EQ(Span::current_path(), "");
  const auto snap = reg.snapshot();
  EXPECT_NE(snap.histogram("persist"), nullptr);
  EXPECT_NE(snap.histogram("persist.merge"), nullptr);
  EXPECT_NE(snap.histogram("persist.merge.copy"), nullptr);
}

#endif  // PMO_TELEMETRY_ENABLED

TEST(JsonValue, RoundTripsThroughDumpAndParse) {
  namespace json = pmo::telemetry::json;
  json::Value root = json::Value::object();
  root["int"] = 42;
  root["neg"] = -7;
  root["float"] = 2.5;
  root["flag"] = true;
  root["name"] = "pm\"octree\"\n";
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back("two");
  root["arr"] = std::move(arr);
  const std::string text = root.dump();
  std::string err;
  const auto back = json::Value::parse(text, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->dump(), text);  // dump is a fixed point
  EXPECT_EQ(back->find("int")->as_double(), 42.0);
  EXPECT_EQ(back->find("name")->as_string(), "pm\"octree\"\n");
  EXPECT_EQ(back->find("arr")->size(), 2u);
}

TEST(JsonValue, RejectsMalformedInput) {
  namespace json = pmo::telemetry::json;
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2"}) {
    std::string err;
    EXPECT_FALSE(json::Value::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

#if PMO_TELEMETRY_ENABLED
// The export schema is stable: a snapshot with one metric of each kind
// must serialize byte-for-byte like the checked-in golden file. If this
// fails because the schema deliberately changed, regenerate the golden
// by dumping write_json() of exactly the registry below into
// tests/data/telemetry_golden.json — and audit every BENCH_*.json
// consumer first.
TEST(Export, MatchesGoldenFile) {
  Registry reg;
  reg.counter("nvbm.writes").add(12345);
  reg.gauge("nvbm.mean_wear").set(1.5);
  auto& h = reg.histogram("pmoctree.persist");
  h.record(100);
  h.record(100000);
  const auto snap = reg.snapshot();
  std::ostringstream out;
  write_json(snap, out);

  const std::string golden_path =
      std::string(PMO_TEST_DATA_DIR) + "/telemetry_golden.json";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing " << golden_path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(out.str(), want.str());
}
#endif  // PMO_TELEMETRY_ENABLED

TEST(Export, TableListsEveryMetric) {
  Registry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(0.5);
  reg.histogram("c.hist").record(9);
  std::ostringstream out;
  write_table(reg.snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("b.gauge"), std::string::npos);
  EXPECT_NE(text.find("c.hist"), std::string::npos);
}

#if PMO_TELEMETRY_ENABLED
TEST(CompileGate, EnabledReportsTrue) { EXPECT_TRUE(enabled()); }
#else
TEST(CompileGate, DisabledDropsIncrements) {
  EXPECT_FALSE(enabled());
  Counter c;
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
}
#endif

}  // namespace
}  // namespace pmo::telemetry
