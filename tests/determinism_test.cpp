// Determinism contract (DESIGN.md §7): modeled cluster-simulation results
// are bit-identical for every `threads` value — the execution layer may
// only change wall-clock. Runs the same multi-lane ClusterSim point with
// threads=1 and threads=8 and compares every modeled output: the
// ClusterResult fields, the telemetry counter/gauge deltas (histograms
// are wall-clock span durations, excluded by contract) and the lane-0
// device's wear heatmap.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace pmo {
namespace {

struct RunOutput {
  cluster::ClusterResult result;
  std::map<std::string, std::uint64_t> counter_delta;
  std::map<std::string, double> gauges;  ///< post-run values (nvbm.* etc.)
  std::string wear0;                     ///< lane-0 wear heatmap JSON
};

RunOutput run_once(int threads) {
  using bench::Backend;
  using bench::Bundle;
  auto& reg = telemetry::Registry::global();
  const auto before = reg.snapshot();

  // Workloads must outlive the bundles' feature hooks (same ordering rule
  // as bench_common::run_point).
  std::vector<std::shared_ptr<amr::DropletWorkload>> workloads;
  std::vector<std::shared_ptr<Bundle>> bundles;

  cluster::ClusterConfig cfg;
  cfg.procs = 6;
  cfg.steps = 3;
  cfg.scale = 24.0;
  cfg.threads = threads;
  cfg.measure_ranks = 3;
  cluster::ClusterSim sim(cfg);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.1;

  const auto factory = [&](int /*rank*/, const amr::DropletParams& p)
      -> cluster::RankInstance {
    // Default PmConfig: hot-node cache ON (4 MiB) — this test is also the
    // contract check that cache hits and cursor reuse stay deterministic
    // across thread counts.
    auto bundle = std::make_shared<Bundle>(
        bench::make_bundle(Backend::kPm, std::size_t{64} << 20));
    auto wl = std::make_shared<amr::DropletWorkload>(p);
    bench::register_droplet_feature(*bundle, *wl);
    workloads.push_back(wl);
    bundles.push_back(bundle);
    return {cluster::RankBackend(bundle, bundle->mesh.get()), wl};
  };

  RunOutput out;
  out.result = sim.run(factory, params);
  out.wear0 = bundles.front()->device->wear_heatmap_json().dump();
  // Snapshot while the bundles are alive so the nvbm.* source fills still
  // run; the delta vs `before` isolates this run's metrics.
  const auto after = reg.snapshot();
  const auto delta = after.delta(before);
  out.counter_delta = delta.counters;
  out.gauges = delta.gauges;
  return out;
}

void expect_same_modeled_outputs(const RunOutput& a, const RunOutput& b) {
  // ClusterResult: every modeled field, bit-exact (EXPECT_EQ on double is
  // exact equality — that is the contract under test).
  EXPECT_EQ(a.result.total_s, b.result.total_s);
  EXPECT_EQ(a.result.real_leaves, b.result.real_leaves);
  EXPECT_EQ(a.result.global_elements, b.result.global_elements);
  EXPECT_EQ(a.result.max_imbalance, b.result.max_imbalance);
  EXPECT_EQ(a.result.total_migrated, b.result.total_migrated);
  EXPECT_EQ(a.result.measured_lanes, b.result.measured_lanes);
  ASSERT_EQ(a.result.step_seconds.size(), b.result.step_seconds.size());
  for (std::size_t i = 0; i < a.result.step_seconds.size(); ++i) {
    EXPECT_EQ(a.result.step_seconds[i], b.result.step_seconds[i])
        << "step " << i;
  }
  auto buckets_a = a.result.breakdown.buckets();
  auto buckets_b = b.result.breakdown.buckets();
  std::sort(buckets_a.begin(), buckets_a.end());
  std::sort(buckets_b.begin(), buckets_b.end());
  ASSERT_EQ(buckets_a, buckets_b);
  for (const auto& name : buckets_a) {
    EXPECT_EQ(a.result.breakdown.seconds(name),
              b.result.breakdown.seconds(name))
        << "breakdown bucket " << name;
  }

  // Telemetry counters: modeled event counts, deterministic by contract.
  // Exception: pmoctree.cursor.* is execution-layer telemetry — how much
  // traversal-cursor prefix reuse happened depends on which worker ran
  // which op, exactly like the wall-clock histograms excluded below.
  // Cursor reuse is modeled-charge transparent, so every OTHER counter
  // (including pmoctree.cache.*) must still be bit-identical; comparing
  // them here is what enforces that transparency.
  auto drop_cursor = [](std::map<std::string, std::uint64_t> m) {
    for (auto it = m.begin(); it != m.end();) {
      it = it->first.rfind("pmoctree.cursor.", 0) == 0 ? m.erase(it)
                                                       : std::next(it);
    }
    return m;
  };
  const auto counters_a = drop_cursor(a.counter_delta);
  const auto counters_b = drop_cursor(b.counter_delta);
  ASSERT_EQ(counters_a.size(), counters_b.size());
  for (const auto& [name, value] : counters_a) {
    const auto it = counters_b.find(name);
    ASSERT_NE(it, counters_b.end()) << "counter " << name;
    EXPECT_EQ(value, it->second) << "counter " << name;
  }
  // Gauges (nvbm.* device state, cluster gauges): source fills run in
  // registration order, so the last-registered lane is the last writer in
  // both runs; its modeled device state is deterministic, so identical.
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (const auto& [name, value] : a.gauges) {
    const auto it = b.gauges.find(name);
    ASSERT_NE(it, b.gauges.end()) << "gauge " << name;
    EXPECT_EQ(value, it->second) << "gauge " << name;
  }

  // Device wear: per-line modeled write counts of the canonical lane.
  EXPECT_EQ(a.wear0, b.wear0);
}

TEST(Determinism, ModeledResultsBitIdenticalAcrossThreadCounts) {
  const RunOutput t1 = run_once(1);
  const RunOutput t8 = run_once(8);
  expect_same_modeled_outputs(t1, t8);
}

// ---------------------------------------------------------------------------
// Solve-kernel determinism (DESIGN.md §12): the Jacobi gather's results
// are bit-identical across the chunk-dispatch thread count AND the SIMD
// dispatch switch — the AVX2 kernels, the portable loops, and any pool
// size must produce the same field bits.
// ---------------------------------------------------------------------------

/// Leaf fields after a short droplet run, as raw bit patterns keyed by
/// (key, level) — bit_cast so -0.0 vs +0.0 or NaN payload drift fails.
std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
run_gather_droplet(int threads, bool simd_on) {
  const bool saved = simd::enabled();
  simd::set_enabled(simd_on);
  nvbm::Device dev(std::size_t{128} << 20, {});
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = std::size_t{8} << 20;
  amr::PmOctreeBackend mesh(dev, pm);
  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.05;
  amr::DropletWorkload wl(params);
  exec::ThreadPool pool(threads);
  wl.set_exec(&pool);
  mesh.set_exec(&pool);
  wl.initialize(mesh);
  for (int s = 0; s < 3; ++s) wl.step(mesh, s);

  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> out;
  mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
    out[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] = {
        std::bit_cast<std::uint64_t>(d.vof),
        std::bit_cast<std::uint64_t>(d.tracer)};
  });
  simd::set_enabled(saved);
  return out;
}

TEST(Determinism, GatherBitIdenticalAcrossThreadsAndSimd) {
  const auto base = run_gather_droplet(1, false);
  ASSERT_GT(base.size(), 100u);
  EXPECT_EQ(base, run_gather_droplet(4, false)) << "threads moved bits";
  EXPECT_EQ(base, run_gather_droplet(1, true)) << "simd moved bits";
  EXPECT_EQ(base, run_gather_droplet(4, true))
      << "threads x simd moved bits";
}

// ---------------------------------------------------------------------------
// Persist-path determinism (DESIGN.md §9): the persisted NVBM image is a
// pure function of the logical tree — bit-identical across the merge
// thread count AND across the dirty-subtree pruning knob. Thread count
// additionally may not move any modeled counter; pruning legitimately
// moves the persist visit/read counters (that is its purpose), so only
// the image is compared across that knob.
// ---------------------------------------------------------------------------

struct TreeRunOutput {
  std::vector<std::byte> image;          ///< full NVBM byte image
  std::uint64_t dram_reads = 0, dram_writes = 0, dram_ns = 0;
  std::uint64_t dev_reads = 0, dev_writes = 0;
  std::uint64_t dev_lines_read = 0, dev_lines_written = 0;
  std::uint64_t dev_flush_spans = 0, dev_modeled_ns = 0;
  std::vector<pmoctree::PersistStats> persists;
};

TreeRunOutput run_tree(bool pruning, int threads, bool all_nvbm = false) {
  nvbm::Device dev(std::size_t{64} << 20, bench::device_config());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.persist_pruning = pruning;
  // all_nvbm evicts the whole working set to NVBM — the cold regime where
  // persist-time compaction rewrites clean subtrees as linear chains, so
  // the image compare covers packed pages and relinked parents too.
  pm.dram_budget_bytes = all_nvbm ? 0 : std::size_t{32} << 20;
  if (all_nvbm) pm.compact_min_records = 8;
  exec::ThreadPool pool(threads);
  auto tree = pmoctree::PmOctree::create(heap, pm);
  tree.set_exec(&pool);

  TreeRunOutput out;
  // Uniform level 3: 64 level-2 subtrees, so the parallel merge has a
  // full task fan-out to schedule differently at threads=8.
  for (int l = 0; l < 3; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  out.persists.push_back(tree.persist());
  for (int phase = 0; phase < 3; ++phase) {
    CellData d;
    // Scattered small-fraction updates (x < 6 keeps them clear of the
    // structural sites below).
    for (int i = 0; i < 16; ++i) {
      d.vof = 0.01 * i + phase;
      tree.update(LocCode::from_grid(3, static_cast<std::uint32_t>(i % 6),
                                     static_cast<std::uint32_t>((i * 5) % 8),
                                     static_cast<std::uint32_t>((i * 7) % 8)),
                  d);
    }
    if (phase == 1) {
      tree.refine(LocCode::from_grid(3, 6, 6, 1));
      tree.refine(LocCode::from_grid(3, 7, 2, 5));
    }
    if (phase == 2) {
      tree.coarsen(LocCode::from_grid(3, 6, 6, 1));
      tree.refine(LocCode::from_grid(3, 6, 0, 0));
    }
    out.persists.push_back(tree.persist());
  }
  if (all_nvbm) {
    // Quiesce with pinpoint updates: each persist freshens one root-leaf
    // path, exposing its old clean siblings to the compactor. Spread the
    // touches so the bulk of the tree ends up in chains.
    for (int r = 0; r < 4; ++r) {
      CellData d;
      d.vof = 0.75 + 0.01 * r;
      tree.update(LocCode::from_grid(3, static_cast<std::uint32_t>(r * 2),
                                     static_cast<std::uint32_t>(r * 2), 3),
                  d);
      out.persists.push_back(tree.persist());
    }
  }

  const std::byte* bytes = dev.raw(0, dev.capacity());
  out.image.assign(bytes, bytes + dev.capacity());
  const auto& dc = tree.dram_counters();
  out.dram_reads = dc.reads;
  out.dram_writes = dc.writes;
  out.dram_ns = dc.modeled_ns();
  const auto& c = dev.counters();
  out.dev_reads = c.reads;
  out.dev_writes = c.writes;
  out.dev_lines_read = c.lines_read;
  out.dev_lines_written = c.lines_written;
  out.dev_flush_spans = c.flush_spans;
  out.dev_modeled_ns = c.modeled_ns();
  return out;
}

void expect_same_stats(const TreeRunOutput& a, const TreeRunOutput& b) {
  ASSERT_EQ(a.persists.size(), b.persists.size());
  for (std::size_t i = 0; i < a.persists.size(); ++i) {
    EXPECT_EQ(a.persists[i].visits, b.persists[i].visits) << "persist " << i;
    EXPECT_EQ(a.persists[i].pruned_subtrees, b.persists[i].pruned_subtrees)
        << "persist " << i;
    EXPECT_EQ(a.persists[i].merged_from_dram, b.persists[i].merged_from_dram)
        << "persist " << i;
    EXPECT_EQ(a.persists[i].nodes_total, b.persists[i].nodes_total)
        << "persist " << i;
    EXPECT_EQ(a.persists[i].compacted_subtrees, b.persists[i].compacted_subtrees)
        << "persist " << i;
    EXPECT_EQ(a.persists[i].compacted_records, b.persists[i].compacted_records)
        << "persist " << i;
  }
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.dram_ns, b.dram_ns);
  EXPECT_EQ(a.dev_reads, b.dev_reads);
  EXPECT_EQ(a.dev_writes, b.dev_writes);
  EXPECT_EQ(a.dev_lines_read, b.dev_lines_read);
  EXPECT_EQ(a.dev_lines_written, b.dev_lines_written);
  EXPECT_EQ(a.dev_flush_spans, b.dev_flush_spans);
  EXPECT_EQ(a.dev_modeled_ns, b.dev_modeled_ns);
}

TEST(Determinism, PersistedImageBitIdenticalAcrossMergeThreads) {
  const auto t1 = run_tree(/*pruning=*/true, /*threads=*/1);
  const auto t8 = run_tree(/*pruning=*/true, /*threads=*/8);
  // Full contract across thread count: image AND every modeled counter.
  expect_same_stats(t1, t8);
  EXPECT_TRUE(t1.image == t8.image) << "NVBM image diverged across threads";
}

TEST(Determinism, CompactedImageBitIdenticalAcrossMergeThreads) {
  // Same contract as above, in the all-NVBM regime where persist-time
  // compaction engages: the packed chain pages, the relinked parents and
  // every modeled counter must not depend on the merge's thread count.
  const auto t1 = run_tree(/*pruning=*/true, /*threads=*/1, /*all_nvbm=*/true);
  const auto t8 = run_tree(/*pruning=*/true, /*threads=*/8, /*all_nvbm=*/true);
  // Compaction must actually have run, or this test proves nothing.
  std::size_t compacted = 0;
  for (const auto& s : t1.persists) compacted += s.compacted_subtrees;
  EXPECT_GT(compacted, 0u);
  expect_same_stats(t1, t8);
  EXPECT_TRUE(t1.image == t8.image)
      << "compacted NVBM image diverged across threads";
}

TEST(Determinism, PersistedImageBitIdenticalAcrossPruning) {
  const auto on = run_tree(/*pruning=*/true, /*threads=*/8);
  const auto off = run_tree(/*pruning=*/false, /*threads=*/8);
  // Pruning must have engaged (otherwise this test proves nothing) ...
  std::size_t pruned_on = 0, pruned_off = 0;
  for (const auto& s : on.persists) pruned_on += s.pruned_subtrees;
  for (const auto& s : off.persists) pruned_off += s.pruned_subtrees;
  EXPECT_GT(pruned_on, 0u);
  EXPECT_EQ(pruned_off, 0u);
  // ... and visit savings are the point, so visits must differ ...
  std::size_t visits_on = 0, visits_off = 0;
  for (const auto& s : on.persists) visits_on += s.visits;
  for (const auto& s : off.persists) visits_off += s.visits;
  EXPECT_LT(visits_on, visits_off);
  // ... while the durable image stays bit-identical.
  EXPECT_TRUE(on.image == off.image) << "NVBM image diverged across pruning";
}

TEST(Determinism, SingleLaneLegacyOverloadMatchesFactoryPath) {
  // measure_ranks=1 through the factory must reproduce the legacy
  // single-backend overload exactly (same lane-0 measurement path).
  using bench::Backend;
  auto run = [](bool legacy) {
    auto bundle = bench::make_bundle(Backend::kPm, std::size_t{64} << 20);
    amr::DropletWorkload wl{amr::DropletParams{}};
    bench::register_droplet_feature(bundle, wl);
    cluster::ClusterConfig cfg;
    cfg.procs = 4;
    cfg.steps = 2;
    cfg.scale = 10.0;
    cfg.threads = 2;
    cfg.measure_ranks = 1;
    cluster::ClusterSim sim(cfg);
    if (legacy) return sim.run(*bundle.mesh, wl);
    // Factory path reusing the same pre-built lane.
    amr::DropletParams params;  // defaults, same as wl above
    auto wl2 = std::make_shared<amr::DropletWorkload>(params);
    auto bundle2 = std::make_shared<bench::Bundle>(
        bench::make_bundle(Backend::kPm, std::size_t{64} << 20));
    bench::register_droplet_feature(*bundle2, *wl2);
    return sim.run(
        [&](int, const amr::DropletParams&) -> cluster::RankInstance {
          return {cluster::RankBackend(bundle2, bundle2->mesh.get()), wl2};
        },
        params);
  };
  const auto legacy = run(true);
  const auto factory = run(false);
  EXPECT_EQ(legacy.total_s, factory.total_s);
  EXPECT_EQ(legacy.real_leaves, factory.real_leaves);
  ASSERT_EQ(legacy.step_seconds.size(), factory.step_seconds.size());
  for (std::size_t i = 0; i < legacy.step_seconds.size(); ++i) {
    EXPECT_EQ(legacy.step_seconds[i], factory.step_seconds[i]);
  }
}

}  // namespace
}  // namespace pmo
