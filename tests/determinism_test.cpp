// Determinism contract (DESIGN.md §7): modeled cluster-simulation results
// are bit-identical for every `threads` value — the execution layer may
// only change wall-clock. Runs the same multi-lane ClusterSim point with
// threads=1 and threads=8 and compares every modeled output: the
// ClusterResult fields, the telemetry counter/gauge deltas (histograms
// are wall-clock span durations, excluded by contract) and the lane-0
// device's wear heatmap.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace pmo {
namespace {

struct RunOutput {
  cluster::ClusterResult result;
  std::map<std::string, std::uint64_t> counter_delta;
  std::map<std::string, double> gauges;  ///< post-run values (nvbm.* etc.)
  std::string wear0;                     ///< lane-0 wear heatmap JSON
};

RunOutput run_once(int threads) {
  using bench::Backend;
  using bench::Bundle;
  auto& reg = telemetry::Registry::global();
  const auto before = reg.snapshot();

  // Workloads must outlive the bundles' feature hooks (same ordering rule
  // as bench_common::run_point).
  std::vector<std::shared_ptr<amr::DropletWorkload>> workloads;
  std::vector<std::shared_ptr<Bundle>> bundles;

  cluster::ClusterConfig cfg;
  cfg.procs = 6;
  cfg.steps = 3;
  cfg.scale = 24.0;
  cfg.threads = threads;
  cfg.measure_ranks = 3;
  cluster::ClusterSim sim(cfg);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.1;

  const auto factory = [&](int /*rank*/, const amr::DropletParams& p)
      -> cluster::RankInstance {
    // Default PmConfig: hot-node cache ON (4 MiB) — this test is also the
    // contract check that cache hits and cursor reuse stay deterministic
    // across thread counts.
    auto bundle = std::make_shared<Bundle>(
        bench::make_bundle(Backend::kPm, std::size_t{64} << 20));
    auto wl = std::make_shared<amr::DropletWorkload>(p);
    bench::register_droplet_feature(*bundle, *wl);
    workloads.push_back(wl);
    bundles.push_back(bundle);
    return {cluster::RankBackend(bundle, bundle->mesh.get()), wl};
  };

  RunOutput out;
  out.result = sim.run(factory, params);
  out.wear0 = bundles.front()->device->wear_heatmap_json().dump();
  // Snapshot while the bundles are alive so the nvbm.* source fills still
  // run; the delta vs `before` isolates this run's metrics.
  const auto after = reg.snapshot();
  const auto delta = after.delta(before);
  out.counter_delta = delta.counters;
  out.gauges = delta.gauges;
  return out;
}

void expect_same_modeled_outputs(const RunOutput& a, const RunOutput& b) {
  // ClusterResult: every modeled field, bit-exact (EXPECT_EQ on double is
  // exact equality — that is the contract under test).
  EXPECT_EQ(a.result.total_s, b.result.total_s);
  EXPECT_EQ(a.result.real_leaves, b.result.real_leaves);
  EXPECT_EQ(a.result.global_elements, b.result.global_elements);
  EXPECT_EQ(a.result.max_imbalance, b.result.max_imbalance);
  EXPECT_EQ(a.result.total_migrated, b.result.total_migrated);
  EXPECT_EQ(a.result.measured_lanes, b.result.measured_lanes);
  ASSERT_EQ(a.result.step_seconds.size(), b.result.step_seconds.size());
  for (std::size_t i = 0; i < a.result.step_seconds.size(); ++i) {
    EXPECT_EQ(a.result.step_seconds[i], b.result.step_seconds[i])
        << "step " << i;
  }
  auto buckets_a = a.result.breakdown.buckets();
  auto buckets_b = b.result.breakdown.buckets();
  std::sort(buckets_a.begin(), buckets_a.end());
  std::sort(buckets_b.begin(), buckets_b.end());
  ASSERT_EQ(buckets_a, buckets_b);
  for (const auto& name : buckets_a) {
    EXPECT_EQ(a.result.breakdown.seconds(name),
              b.result.breakdown.seconds(name))
        << "breakdown bucket " << name;
  }

  // Telemetry counters: modeled event counts, deterministic by contract.
  // Exception: pmoctree.cursor.* is execution-layer telemetry — how much
  // traversal-cursor prefix reuse happened depends on which worker ran
  // which op, exactly like the wall-clock histograms excluded below.
  // Cursor reuse is modeled-charge transparent, so every OTHER counter
  // (including pmoctree.cache.*) must still be bit-identical; comparing
  // them here is what enforces that transparency.
  auto drop_cursor = [](std::map<std::string, std::uint64_t> m) {
    for (auto it = m.begin(); it != m.end();) {
      it = it->first.rfind("pmoctree.cursor.", 0) == 0 ? m.erase(it)
                                                       : std::next(it);
    }
    return m;
  };
  const auto counters_a = drop_cursor(a.counter_delta);
  const auto counters_b = drop_cursor(b.counter_delta);
  ASSERT_EQ(counters_a.size(), counters_b.size());
  for (const auto& [name, value] : counters_a) {
    const auto it = counters_b.find(name);
    ASSERT_NE(it, counters_b.end()) << "counter " << name;
    EXPECT_EQ(value, it->second) << "counter " << name;
  }
  // Gauges (nvbm.* device state, cluster gauges): source fills run in
  // registration order, so the last-registered lane is the last writer in
  // both runs; its modeled device state is deterministic, so identical.
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (const auto& [name, value] : a.gauges) {
    const auto it = b.gauges.find(name);
    ASSERT_NE(it, b.gauges.end()) << "gauge " << name;
    EXPECT_EQ(value, it->second) << "gauge " << name;
  }

  // Device wear: per-line modeled write counts of the canonical lane.
  EXPECT_EQ(a.wear0, b.wear0);
}

TEST(Determinism, ModeledResultsBitIdenticalAcrossThreadCounts) {
  const RunOutput t1 = run_once(1);
  const RunOutput t8 = run_once(8);
  expect_same_modeled_outputs(t1, t8);
}

TEST(Determinism, SingleLaneLegacyOverloadMatchesFactoryPath) {
  // measure_ranks=1 through the factory must reproduce the legacy
  // single-backend overload exactly (same lane-0 measurement path).
  using bench::Backend;
  auto run = [](bool legacy) {
    auto bundle = bench::make_bundle(Backend::kPm, std::size_t{64} << 20);
    amr::DropletWorkload wl{amr::DropletParams{}};
    bench::register_droplet_feature(bundle, wl);
    cluster::ClusterConfig cfg;
    cfg.procs = 4;
    cfg.steps = 2;
    cfg.scale = 10.0;
    cfg.threads = 2;
    cfg.measure_ranks = 1;
    cluster::ClusterSim sim(cfg);
    if (legacy) return sim.run(*bundle.mesh, wl);
    // Factory path reusing the same pre-built lane.
    amr::DropletParams params;  // defaults, same as wl above
    auto wl2 = std::make_shared<amr::DropletWorkload>(params);
    auto bundle2 = std::make_shared<bench::Bundle>(
        bench::make_bundle(Backend::kPm, std::size_t{64} << 20));
    bench::register_droplet_feature(*bundle2, *wl2);
    return sim.run(
        [&](int, const amr::DropletParams&) -> cluster::RankInstance {
          return {cluster::RankBackend(bundle2, bundle2->mesh.get()), wl2};
        },
        params);
  };
  const auto legacy = run(true);
  const auto factory = run(false);
  EXPECT_EQ(legacy.total_s, factory.total_s);
  EXPECT_EQ(legacy.real_leaves, factory.real_leaves);
  ASSERT_EQ(legacy.step_seconds.size(), factory.step_seconds.size());
  for (std::size_t i = 0; i < legacy.step_seconds.size(); ++i) {
    EXPECT_EQ(legacy.step_seconds[i], factory.step_seconds[i]);
  }
}

}  // namespace
}  // namespace pmo
