// Hot-node cache + traversal cursor coherence tests.
//
// The epoch-validated DRAM node cache (pmoctree/node_cache.hpp) and the
// per-worker traversal cursors are pure read-path accelerations: with the
// cache on, every modeled output that is not an explicit cache/cursor
// metric must be BIT-IDENTICAL to the cache-off run — tree structure,
// payloads, PersistStats, DRAM counters, NVBM write traffic and wear.
// These tests drive randomized interleavings of refine / coarsen /
// update / persist / transform / restore against a cache-on and a
// cache-off tree fed by the same RNG stream and compare everything.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "pmoctree/node_cache.hpp"
#include "pmoctree/pm_octree.hpp"

namespace pmo::pmoctree {
namespace {

CellData cell(double vof) {
  CellData d;
  d.vof = vof;
  return d;
}

// ---------------------------------------------------------------------------
// NodeCache unit behaviour
// ---------------------------------------------------------------------------

PNode node_with(double vof) {
  PNode n{};
  n.data.vof = vof;
  return n;
}

TEST(NodeCacheUnit, LookupHitsOnlyCurrentEpoch) {
  NodeCache cache(8 * sizeof(PNode) * 4);  // comfortably > 1 slot
  cache.insert(100, node_with(1.0), /*epoch=*/1);
  ASSERT_NE(cache.lookup(100, 1), nullptr);
  EXPECT_DOUBLE_EQ(cache.lookup(100, 1)->data.vof, 1.0);
  // Epoch bump = O(1) bulk invalidation: same entry, stale stamp.
  EXPECT_EQ(cache.lookup(100, 2), nullptr);
  EXPECT_GE(cache.stats().misses, 1u);
  // Re-inserting under the new epoch revives the offset.
  cache.insert(100, node_with(2.0), 2);
  ASSERT_NE(cache.lookup(100, 2), nullptr);
  EXPECT_DOUBLE_EQ(cache.lookup(100, 2)->data.vof, 2.0);
}

TEST(NodeCacheUnit, UpdateIsWriteThroughNotAdmit) {
  NodeCache cache(64 * sizeof(PNode));
  cache.update(42, node_with(3.0), 1);  // absent: must NOT admit
  EXPECT_EQ(cache.size(), 0u);
  cache.insert(42, node_with(1.0), 1);
  cache.update(42, node_with(3.0), 1);
  ASSERT_NE(cache.lookup(42, 1), nullptr);
  EXPECT_DOUBLE_EQ(cache.lookup(42, 1)->data.vof, 3.0);
}

TEST(NodeCacheUnit, InvalidateDropsAndCounts) {
  NodeCache cache(64 * sizeof(PNode));
  cache.insert(7, node_with(1.0), 1);
  EXPECT_FALSE(cache.invalidate(999));  // absent offset: no-op
  EXPECT_TRUE(cache.invalidate(7));
  EXPECT_EQ(cache.lookup(7, 1), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(NodeCacheUnit, ClockEvictionWithinBudget) {
  // Budget for exactly 4 entries; inserting more must evict, never grow.
  NodeCache cache(4 * (sizeof(PNode) + 32));
  const std::size_t cap = cache.capacity();
  ASSERT_GE(cap, 2u);
  for (std::uint64_t off = 0; off < 3 * cap; ++off) {
    cache.insert(off * 64 + 64, node_with(1.0), 1);
    EXPECT_LE(cache.size(), cap);
  }
  EXPECT_EQ(cache.stats().evictions, 2 * cap);
}

TEST(NodeCacheUnit, ZeroBudgetNeverStoresAnything) {
  NodeCache cache(0);
  EXPECT_EQ(cache.capacity(), 0u);
  EXPECT_FALSE(cache.insert(64, node_with(1.0), 1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NodeCacheUnit, ClearDropsEverythingAndReports) {
  NodeCache cache(64 * sizeof(PNode));
  cache.insert(64, node_with(1.0), 1);
  cache.insert(128, node_with(2.0), 1);
  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(64, 1), nullptr);
}

// ---------------------------------------------------------------------------
// Whole-tree coherence: cache on == cache off, bit for bit
// ---------------------------------------------------------------------------

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

using LeafMap = std::map<std::uint64_t, double>;

LeafMap leaves_of(PmOctree& tree) {
  LeafMap out;
  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    out[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] = d.vof;
  });
  return out;
}

/// Everything a run produces that must not depend on the cache knob.
struct Outcome {
  std::vector<LeafMap> checkpoints;
  std::vector<PersistStats> persists;
  PmStats final_stats;
  DramCounters dram;
  std::uint64_t nvbm_writes = 0;
  std::uint64_t nvbm_lines_written = 0;
  std::uint64_t nvbm_lines_read = 0;  ///< allowed to differ: cache shrinks it
  std::string wear;
  NodeCache::Stats cache;
  std::uint64_t cursor_reuse = 0;
};

Outcome run_interleaving(int seed, std::size_t cache_bytes) {
  Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 3);
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  // Tight C0 budget: even the small random trees spill onto NVBM, so the
  // descent path exercises the cache on every seed (48 nodes lets some
  // seeds fit entirely in DRAM and never read the medium between
  // persists).
  pm.dram_budget_bytes = 8 * sizeof(PNode);
  pm.node_cache_bytes = cache_bytes;
  Outcome out;

  auto mutate = [&](PmOctree& tree, int steps) {
    for (int s = 0; s < steps; ++s) {
      std::vector<LocCode> leaves;
      tree.for_each_leaf(
          [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
      const auto& victim =
          leaves[static_cast<std::size_t>(rng.below(leaves.size()))];
      const auto action = rng.below(4);
      if (action == 0 && victim.level() < 5) {
        tree.refine(victim);
      } else if (action == 1 && victim.level() > 0) {
        bool all_leaves = true;
        for (int i = 0; i < kChildrenPerNode && all_leaves; ++i) {
          const auto sib = victim.parent().child(i);
          all_leaves = tree.contains(sib) &&
                       tree.leaf_containing(sib.child(0)) == sib;
        }
        if (all_leaves) tree.coarsen(victim.parent());
      } else if (action == 2) {
        tree.update(victim, cell(rng.uniform()));
      } else {
        // Pure reads: the cursor/cache fast path.
        for (int q = 0; q < 8; ++q) {
          const auto& probe = leaves[static_cast<std::size_t>(
              rng.below(leaves.size()))];
          tree.sample(probe);
          tree.is_leaf(probe);
        }
      }
    }
  };

  {
    auto tree = PmOctree::create(heap, pm);
    tree.register_feature([](const LocCode&, const CellData& d) {
      return d.vof > 0.5;
    });
    tree.refine(LocCode::root());
    for (int round = 0; round < 4; ++round) {
      mutate(tree, 12);
      out.persists.push_back(tree.persist());  // also runs GC + transform
      out.checkpoints.push_back(leaves_of(tree));
      if (round == 2) tree.maybe_transform();
    }
    out.cache = tree.node_cache_stats();
    out.cursor_reuse = tree.cursor_reuse();
    out.dram = tree.dram_counters();
  }

  // Reboot and keep going on the restored version: restore starts a fresh
  // tree object, so its cache must start cold and stay coherent.
  nvbm::Heap heap2(dev);
  auto back = PmOctree::restore(heap2, pm);
  out.checkpoints.push_back(leaves_of(back));
  mutate(back, 10);
  out.persists.push_back(back.persist());
  out.checkpoints.push_back(leaves_of(back));
  out.final_stats = back.stats();
  // Cache/cursor activity of the whole history = both tree generations.
  const auto bc = back.node_cache_stats();
  out.cache.hits += bc.hits;
  out.cache.misses += bc.misses;
  out.cache.evictions += bc.evictions;
  out.cache.invalidations += bc.invalidations;
  out.cursor_reuse += back.cursor_reuse();

  out.nvbm_writes = dev.counters().writes;
  out.nvbm_lines_written = dev.counters().lines_written;
  out.nvbm_lines_read = dev.counters().lines_read;
  out.wear = dev.wear_heatmap_json().dump();
  return out;
}

void expect_persist_eq(const PersistStats& a, const PersistStats& b) {
  EXPECT_EQ(a.nodes_total, b.nodes_total);
  EXPECT_EQ(a.nodes_shared, b.nodes_shared);
  EXPECT_EQ(a.merged_from_dram, b.merged_from_dram);
  EXPECT_EQ(a.tombstoned, b.tombstoned);
  EXPECT_EQ(a.gc_freed, b.gc_freed);
  EXPECT_EQ(a.delta_bytes, b.delta_bytes);
  EXPECT_EQ(a.overlap_ratio, b.overlap_ratio);
}

class CacheCoherence : public ::testing::TestWithParam<int> {};

TEST_P(CacheCoherence, RandomInterleavingMatchesCacheOffBitExactly) {
  const int seed = GetParam();
  const Outcome on = run_interleaving(seed, std::size_t{4} << 20);
  const Outcome off = run_interleaving(seed, 0);

  ASSERT_EQ(on.checkpoints.size(), off.checkpoints.size());
  for (std::size_t i = 0; i < on.checkpoints.size(); ++i) {
    EXPECT_EQ(on.checkpoints[i], off.checkpoints[i]) << "checkpoint " << i;
  }
  ASSERT_EQ(on.persists.size(), off.persists.size());
  for (std::size_t i = 0; i < on.persists.size(); ++i) {
    SCOPED_TRACE("persist " + std::to_string(i));
    expect_persist_eq(on.persists[i], off.persists[i]);
  }
  EXPECT_EQ(on.final_stats.nodes, off.final_stats.nodes);
  EXPECT_EQ(on.final_stats.leaves, off.final_stats.leaves);
  EXPECT_EQ(on.final_stats.dram_nodes, off.final_stats.dram_nodes);
  EXPECT_EQ(on.final_stats.nvbm_nodes_vi, off.final_stats.nvbm_nodes_vi);
  EXPECT_EQ(on.final_stats.unique_physical_nodes,
            off.final_stats.unique_physical_nodes);
  EXPECT_EQ(on.final_stats.depth, off.final_stats.depth);

  // DRAM-side counters and NVBM *write* traffic are cache-independent;
  // wear is a pure function of writes.
  EXPECT_EQ(on.dram.reads, off.dram.reads);
  EXPECT_EQ(on.dram.writes, off.dram.writes);
  EXPECT_EQ(on.dram.lines_read, off.dram.lines_read);
  EXPECT_EQ(on.dram.lines_written, off.dram.lines_written);
  EXPECT_EQ(on.nvbm_writes, off.nvbm_writes);
  EXPECT_EQ(on.nvbm_lines_written, off.nvbm_lines_written);
  EXPECT_EQ(on.wear, off.wear);

  // What the cache is FOR: strictly less medium read traffic.
  EXPECT_LT(on.nvbm_lines_read, off.nvbm_lines_read);
  EXPECT_GT(on.cache.hits, 0u);

  // Off = truly off: no cache activity, no cursor reuse.
  EXPECT_EQ(off.cache.hits, 0u);
  EXPECT_EQ(off.cache.misses, 0u);
  EXPECT_EQ(off.cache.evictions, 0u);
  EXPECT_EQ(off.cache.invalidations, 0u);
  EXPECT_EQ(off.cursor_reuse, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheCoherence, ::testing::Range(0, 8));

TEST(CacheCoherence, TinyBudgetStillCoherent) {
  // A 2-slot cache thrashes constantly — eviction correctness under
  // pressure, same bit-identity bar.
  const Outcome tiny = run_interleaving(99, 2 * (sizeof(PNode) + 64));
  const Outcome off = run_interleaving(99, 0);
  ASSERT_EQ(tiny.checkpoints.size(), off.checkpoints.size());
  for (std::size_t i = 0; i < tiny.checkpoints.size(); ++i) {
    EXPECT_EQ(tiny.checkpoints[i], off.checkpoints[i]) << "checkpoint " << i;
  }
  EXPECT_EQ(tiny.nvbm_writes, off.nvbm_writes);
  EXPECT_EQ(tiny.wear, off.wear);
  EXPECT_GT(tiny.cache.evictions, 0u);
}

TEST(CacheCoherence, RepeatDescentsAreServedFromDram) {
  // All-NVBM tree: the second pass over the same probes must hit.
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 0;
  auto tree = PmOctree::create(heap, pm);
  for (int l = 0; l < 3; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });

  // Building the tree had to touch the medium at least once per node.
  EXPECT_GT(dev.counters().lines_read, 0u);

  // This traversal warms the cache (the whole tree fits the 4 MiB
  // default budget) ...
  std::vector<LocCode> probes;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { probes.push_back(c); });

  // ... so from here on, descents must never reach the medium again.
  const auto hits_before = tree.node_cache_stats().hits;
  const auto lines_before_hot = dev.counters().lines_read;
  for (const auto& p : probes) tree.sample(p);
  const auto hot_lines = dev.counters().lines_read - lines_before_hot;

  EXPECT_GT(tree.node_cache_stats().hits, hits_before);
  EXPECT_EQ(hot_lines, 0u) << "fully cached re-descent still hit the medium";
  // The modeled time of the hot pass is charged at DRAM latency.
  EXPECT_GT(dev.counters().cached_reads, 0u);
  EXPECT_GT(dev.counters().modeled_cached_ns, 0u);
}

TEST(CacheCoherence, PersistEpochBumpKeepsCacheWarm) {
  // Hit-rate regression guard for the epoch-bump re-stamp: the cache is
  // write-through and frees invalidate their offsets eagerly, so every
  // entry is still byte-correct when persist seals the epoch. persist()
  // re-stamps the population to the new epoch in one pass instead of
  // letting the validation stamp expire it wholesale — a steady-state
  // workload must not re-miss its entire working set after every persist.
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 0;
  pm.gc_on_persist = false;  // keep the cache populated across persist
  auto tree = PmOctree::create(heap, pm);
  for (int l = 0; l < 2; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.leaf_count();  // warm the cache
  const auto inv_before = tree.node_cache_stats().invalidations;
  tree.persist();
  // persist does not walk the cache entry-by-entry: the re-stamp is a
  // bulk carry-over, not per-entry invalidation.
  EXPECT_EQ(tree.node_cache_stats().invalidations, inv_before);
  const auto hits_before = tree.node_cache_stats().hits;
  const auto misses_before = tree.node_cache_stats().misses;
  const auto lines_before = dev.counters().lines_read;
  tree.leaf_count();
  // The first traversal of the new epoch runs entirely out of the carried
  // cache: all hits, zero new misses, zero medium reads.
  EXPECT_EQ(tree.node_cache_stats().misses, misses_before);
  EXPECT_GT(tree.node_cache_stats().hits, hits_before);
  EXPECT_EQ(dev.counters().lines_read, lines_before)
      << "post-persist re-descent fell through to the medium";
}

}  // namespace
}  // namespace pmo::pmoctree
