// End-to-end integration: the paper's §5.6 scenario as a test — run the
// droplet simulation, crash the machine mid-step, restore, and CONTINUE
// the simulation to completion. The restarted run must pick up from the
// last persisted step and remain structurally sound.
#include <gtest/gtest.h>

#include <map>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "pmoctree/api.hpp"

namespace pmo {
namespace {

nvbm::Config crash_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kNone;
  c.crash_sim = true;
  return c;
}

amr::DropletParams params() {
  amr::DropletParams p;
  p.min_level = 1;
  p.max_level = 3;
  p.dt = 0.15;
  return p;
}

using LeafMap = std::map<std::uint64_t, double>;

LeafMap leaves_of(pmoctree::PmOctree& t) {
  LeafMap out;
  t.for_each_leaf([&](const LocCode& c, const CellData& d) {
    out[c.key() | (std::uint64_t(c.level()) << 60)] = d.vof;
  });
  return out;
}

TEST(Integration, CrashMidSimulationRestartContinue) {
  const int kTotalSteps = 8;
  const int kCrashAfter = 4;

  // Reference run: no crash.
  LeafMap reference;
  {
    nvbm::Device dev(256 << 20, crash_cfg());
    nvbm::Heap heap(dev);
    pmoctree::PmConfig pm;
    pm.dram_budget_bytes = 2 << 20;
    amr::PmOctreeBackend mesh(dev, pm);
    amr::DropletWorkload wl(params());
    wl.initialize(mesh);
    for (int s = 0; s < kTotalSteps; ++s) wl.step(mesh, s);
    reference = leaves_of(mesh.tree());
  }

  // Crashed run: same simulation, power failure inside step kCrashAfter,
  // then restart from the persisted state and continue.
  nvbm::Device dev(256 << 20, crash_cfg());
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 2 << 20;
  {
    nvbm::Heap heap(dev);
    auto tree = pmoctree::pm_create(heap, nullptr, pm);
    amr::DropletWorkload wl(params());
    // Drive the tree directly through a thin local backend so the crash
    // can interrupt mid-step.
    amr::PmOctreeBackend mesh_like(dev, pm);  // unused; direct drive below
    (void)mesh_like;
  }
  // Fresh device for the real crashed run (the block above validated
  // construction paths only).
  nvbm::Device dev2(256 << 20, crash_cfg());
  {
    nvbm::Heap heap(dev2);
    amr::PmOctreeBackend mesh(dev2, pm);
    amr::DropletWorkload wl(params());
    wl.initialize(mesh);
    for (int s = 0; s < kCrashAfter; ++s) wl.step(mesh, s);
    // Begin step kCrashAfter but "die" before its persist.
    wl.step(mesh, kCrashAfter, /*persist=*/false);
  }
  Rng rng(7);
  dev2.simulate_crash(rng, 0.4);

  // Reboot: restore and continue the remaining steps. The workload object
  // is reconstructed (its only state is time = step * dt).
  {
    nvbm::Heap heap(dev2);
    ASSERT_TRUE(pmoctree::PmOctree::can_restore(heap));
    auto tree = pmoctree::pm_restore(heap, pm);
    tree->gc();  // recovery GC reclaims the lost working version
    // Wrap the restored tree in a backend-compatible driver: re-run the
    // interrupted step and the rest.
    struct RestoredBackend final : amr::MeshBackend {
      pmoctree::PmOctree& t;
      explicit RestoredBackend(pmoctree::PmOctree& tr) : t(tr) {}
      std::string name() const override { return "restored"; }
      void sweep_leaves(const amr::LeafMutFn& fn) override {
        t.for_each_leaf_mut(fn);
      }
      void sweep_leaves_pruned(
          const std::function<bool(const LocCode&)>& v,
          const amr::LeafMutFn& fn) override {
        t.for_each_leaf_mut_pruned(v, fn);
      }
      void visit_leaves(const amr::LeafFn& fn) override {
        t.for_each_leaf(fn);
      }
      std::size_t refine_where(const amr::LeafPred& p,
                               const amr::ChildInit& i) override {
        return t.refine_where(p, i);
      }
      std::size_t coarsen_where(const amr::LeafPred& p) override {
        return t.coarsen_where(p);
      }
      std::size_t balance() override { return t.balance(); }
      CellData sample(const LocCode& c) override { return t.sample(c); }
      std::size_t leaf_count() override { return t.leaf_count(); }
      void end_step(int) override { t.persist(); }
      bool recover() override { return true; }
      std::uint64_t modeled_ns() const override { return t.modeled_ns(); }
      std::uint64_t nvbm_writes() const override { return 0; }
      std::uint64_t memory_bytes() override { return 0; }
    } mesh(*tree);

    amr::DropletWorkload wl(params());
    for (int s = kCrashAfter; s < kTotalSteps; ++s) wl.step(mesh, s);
    EXPECT_TRUE(tree->is_balanced());
    EXPECT_EQ(leaves_of(*tree), reference)
        << "restarted simulation diverged from the uninterrupted run";
  }
}

TEST(Integration, RepeatedCrashesNeverCorrupt) {
  nvbm::Device dev(256 << 20, crash_cfg());
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 1 << 20;
  Rng rng(123);
  int completed = 0;
  for (int round = 0; round < 4; ++round) {
    nvbm::Heap heap(dev);
    auto tree = pmoctree::PmOctree::can_restore(heap)
                    ? pmoctree::pm_restore(heap, pm)
                    : pmoctree::pm_create(heap, nullptr, pm);
    amr::DropletWorkload wl(params());
    struct Shim final : amr::MeshBackend {
      pmoctree::PmOctree& t;
      explicit Shim(pmoctree::PmOctree& tr) : t(tr) {}
      std::string name() const override { return "shim"; }
      void sweep_leaves(const amr::LeafMutFn& fn) override {
        t.for_each_leaf_mut(fn);
      }
      void visit_leaves(const amr::LeafFn& fn) override {
        t.for_each_leaf(fn);
      }
      std::size_t refine_where(const amr::LeafPred& p,
                               const amr::ChildInit& i) override {
        return t.refine_where(p, i);
      }
      std::size_t coarsen_where(const amr::LeafPred& p) override {
        return t.coarsen_where(p);
      }
      std::size_t balance() override { return t.balance(); }
      CellData sample(const LocCode& c) override { return t.sample(c); }
      std::size_t leaf_count() override { return t.leaf_count(); }
      void end_step(int) override { t.persist(); }
      bool recover() override { return true; }
      std::uint64_t modeled_ns() const override { return t.modeled_ns(); }
      std::uint64_t nvbm_writes() const override { return 0; }
      std::uint64_t memory_bytes() override { return 0; }
    } mesh(*tree);
    if (completed == 0) wl.initialize(mesh);
    // Run 1-2 steps, then crash (sometimes mid-step).
    const int steps = 1 + static_cast<int>(rng.below(2));
    for (int s = 0; s < steps; ++s) {
      wl.step(mesh, completed + s, /*persist=*/rng.chance(0.7));
    }
    completed += steps;
    dev.simulate_crash(rng, rng.uniform());
  }
  // Whatever survived must be a structurally valid octree.
  nvbm::Heap heap(dev);
  if (pmoctree::PmOctree::can_restore(heap)) {
    auto tree = pmoctree::pm_restore(heap, pm);
    std::size_t internal_bad = 0;
    tree->for_each_node([&](const LocCode& code, const CellData&,
                            bool leaf) {
      if (leaf) return;
      int kids = 0;
      for (int i = 0; i < kChildrenPerNode; ++i)
        kids += tree->contains(code.child(i));
      if (kids != kChildrenPerNode) ++internal_bad;
    });
    EXPECT_EQ(internal_bad, 0u);
    EXPECT_GT(tree->leaf_count(), 0u);
    tree->gc();
  }
}

}  // namespace
}  // namespace pmo
