// Unit + property tests for Morton encoding and locational codes.
#include "common/morton.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace pmo {
namespace {

TEST(Morton, Split3RoundTrips) {
  for (std::uint32_t x : {0u, 1u, 2u, 0x155555u, 0x1fffffu, 12345u}) {
    EXPECT_EQ(morton_compact3(morton_split3(x)), x);
  }
}

TEST(Morton, EncodeDecodeRoundTrips) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.below(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.below(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.below(1u << 21));
    const auto d = morton_decode3(morton_encode3(x, y, z));
    EXPECT_EQ(d[0], x);
    EXPECT_EQ(d[1], y);
    EXPECT_EQ(d[2], z);
  }
}

TEST(Morton, EncodeInterleavesBits) {
  EXPECT_EQ(morton_encode3(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode3(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode3(0, 0, 1), 4u);
  EXPECT_EQ(morton_encode3(1, 1, 1), 7u);
  EXPECT_EQ(morton_encode3(2, 0, 0), 8u);
}

// Differential test holding the dispatching fast path (PDEP/PEXT on BMI2
// builds, the portable magic-bits fallback elsewhere) bit-identical to
// the constexpr reference on edge cases and a large random sample.
TEST(Morton, FastPathMatchesPortableEncodeDecode) {
  const std::uint32_t edge[] = {0u,       1u,          2u,      0x155555u,
                                0x0aaaaau, 0x1fffffu,  0x100000u, 12345u};
  for (const auto x : edge) {
    for (const auto y : edge) {
      for (const auto z : edge) {
        const auto k = morton_encode3(x, y, z);
        EXPECT_EQ(morton_encode3_fast(x, y, z), k);
        EXPECT_EQ(morton_decode3_fast(k), morton_decode3(k));
      }
    }
  }
  Rng rng(20260806);
  for (int i = 0; i < 20000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.below(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.below(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.below(1u << 21));
    const auto k = morton_encode3(x, y, z);
    ASSERT_EQ(morton_encode3_fast(x, y, z), k);
    const auto d = morton_decode3_fast(k);
    ASSERT_EQ(d[0], x);
    ASSERT_EQ(d[1], y);
    ASSERT_EQ(d[2], z);
  }
  // Decode must also agree on keys that are not canonical anchors (bits
  // above 3*kMaxLevel clear, arbitrary otherwise).
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(rng.below(0xffffffffu)) << 32 |
         rng.below(0xffffffffu)) &
        ((std::uint64_t{1} << 60) - 1);
    ASSERT_EQ(morton_decode3_fast(k), morton_decode3(k));
  }
}

// The batched kernels must be bit-identical to the scalar fast path (and
// therefore to the constexpr reference) for every batch size around the
// unroll seams, including n = 0 and odd tails, on both the BMI2 and
// portable builds.
TEST(Morton, BatchEncodeDecodeMatchesScalar) {
  Rng rng(20260808);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{63},
                              std::size_t{64}, std::size_t{257}}) {
    std::vector<std::uint32_t> x(n), y(n), z(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<std::uint32_t>(rng.below(1u << 21));
      y[i] = static_cast<std::uint32_t>(rng.below(1u << 21));
      z[i] = static_cast<std::uint32_t>(rng.below(1u << 21));
    }
    std::vector<std::uint64_t> codes(n);
    morton_encode3_batch(x.data(), y.data(), z.data(), codes.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(codes[i], morton_encode3(x[i], y[i], z[i])) << "n=" << n;
    std::vector<std::uint32_t> dx(n), dy(n), dz(n);
    morton_decode3_batch(codes.data(), dx.data(), dy.data(), dz.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dx[i], x[i]);
      ASSERT_EQ(dy[i], y[i]);
      ASSERT_EQ(dz[i], z[i]);
    }
  }
}

// Coordinate extremes at every level boundary: all-zeros, all-ones, and
// single-axis maxima stress the interleave carry patterns the random
// sample can miss.
TEST(Morton, BatchHandlesLevelBoundaryExtremes) {
  std::vector<std::uint32_t> x, y, z;
  for (int level = 0; level <= 21; ++level) {
    const std::uint32_t m =
        level == 0 ? 0u : ((std::uint32_t{1} << level) - 1);
    x.push_back(m), y.push_back(0), z.push_back(0);
    x.push_back(0), y.push_back(m), z.push_back(0);
    x.push_back(0), y.push_back(0), z.push_back(m);
    x.push_back(m), y.push_back(m), z.push_back(m);
  }
  const std::size_t n = x.size();
  std::vector<std::uint64_t> codes(n);
  morton_encode3_batch(x.data(), y.data(), z.data(), codes.data(), n);
  std::vector<std::uint32_t> dx(n), dy(n), dz(n);
  morton_decode3_batch(codes.data(), dx.data(), dy.data(), dz.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(codes[i], morton_encode3(x[i], y[i], z[i]));
    ASSERT_EQ(dx[i], x[i]);
    ASSERT_EQ(dy[i], y[i]);
    ASSERT_EQ(dz[i], z[i]);
  }
}

// The seam itself: whichever side morton_bmi2_enabled() reports, the
// batch output must equal the scalar *portable* reference — so a BMI2
// binary and a portable binary produce identical persisted keys.
TEST(Morton, BatchIsSeamIndependent) {
  (void)morton_bmi2_enabled();  // both branches share this contract
  Rng rng(7);
  constexpr std::size_t n = 4096;
  std::vector<std::uint32_t> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::uint32_t>(rng.below(1u << 21));
    y[i] = static_cast<std::uint32_t>(rng.below(1u << 21));
    z[i] = static_cast<std::uint32_t>(rng.below(1u << 21));
  }
  std::vector<std::uint64_t> codes(n);
  morton_encode3_batch(x.data(), y.data(), z.data(), codes.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(codes[i], morton_encode3(x[i], y[i], z[i]));
}

TEST(LocCode, RootProperties) {
  const auto root = LocCode::root();
  EXPECT_EQ(root.level(), 0);
  EXPECT_EQ(root.key(), 0u);
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.extent(), 1u << kMaxLevel);
  EXPECT_DOUBLE_EQ(root.size_unit(), 1.0);
}

TEST(LocCode, ChildParentRoundTrip) {
  const auto root = LocCode::root();
  for (int i = 0; i < kChildrenPerNode; ++i) {
    const auto c = root.child(i);
    EXPECT_EQ(c.level(), 1);
    EXPECT_EQ(c.child_index(), i);
    EXPECT_EQ(c.parent(), root);
  }
}

TEST(LocCode, DeepChildChainRoundTrips) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    LocCode code = LocCode::root();
    std::vector<int> indices;
    const int depth = static_cast<int>(rng.below(kMaxLevel)) + 1;
    for (int l = 0; l < depth; ++l) {
      const int idx = static_cast<int>(rng.below(kChildrenPerNode));
      indices.push_back(idx);
      code = code.child(idx);
    }
    EXPECT_EQ(code.level(), depth);
    // Walk back up, checking each child index.
    for (int l = depth - 1; l >= 0; --l) {
      EXPECT_EQ(code.child_index(), indices[static_cast<std::size_t>(l)]);
      code = code.parent();
    }
    EXPECT_EQ(code, LocCode::root());
  }
}

TEST(LocCode, FromGridMatchesChildConstruction) {
  // child 0 is (0,0,0), child 7 is (1,1,1) in each octant split.
  const auto a = LocCode::root().child(7).child(0);
  const auto b = LocCode::from_grid(2, 2, 2, 2);
  EXPECT_EQ(a, b);
}

TEST(LocCode, FromGridRejectsOutOfRange) {
  EXPECT_THROW(LocCode::from_grid(1, 2, 0, 0), ContractError);
  EXPECT_THROW(LocCode::from_grid(kMaxLevel + 1, 0, 0, 0), ContractError);
}

TEST(LocCode, AncestorAt) {
  const auto code = LocCode::from_grid(4, 5, 9, 14);
  EXPECT_EQ(code.ancestor_at(4), code);
  EXPECT_EQ(code.ancestor_at(0), LocCode::root());
  const auto a2 = code.ancestor_at(2);
  EXPECT_EQ(a2.level(), 2);
  EXPECT_TRUE(a2.contains(code));
}

TEST(LocCode, ContainmentProperties) {
  const auto outer = LocCode::from_grid(2, 1, 1, 1);
  const auto inner = LocCode::from_grid(4, 5, 6, 7);
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
  const auto sibling = LocCode::from_grid(2, 0, 1, 1);
  EXPECT_FALSE(sibling.contains(inner));
}

TEST(LocCode, NeighborBasic) {
  const auto code = LocCode::from_grid(3, 3, 3, 3);
  LocCode n;
  ASSERT_TRUE(code.neighbor(1, 0, 0, n));
  const auto g = n.grid_anchor();
  EXPECT_EQ(g.x, 4u);
  EXPECT_EQ(g.y, 3u);
  EXPECT_EQ(g.z, 3u);
}

TEST(LocCode, NeighborAtBoundaryFails) {
  const auto corner = LocCode::from_grid(3, 0, 0, 0);
  LocCode n;
  EXPECT_FALSE(corner.neighbor(-1, 0, 0, n));
  EXPECT_FALSE(corner.neighbor(0, -1, 0, n));
  EXPECT_FALSE(corner.neighbor(0, 0, -1, n));
  EXPECT_TRUE(corner.neighbor(1, 1, 1, n));
  const auto far = LocCode::from_grid(3, 7, 7, 7);
  EXPECT_FALSE(far.neighbor(1, 0, 0, n));
}

TEST(LocCode, NeighborIsSymmetric) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const int level = static_cast<int>(rng.below(kMaxLevel)) + 1;
    const std::uint32_t side = 1u << level;
    const auto code = LocCode::from_grid(
        level, static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)));
    for (const auto& d : LocCode::neighbor_directions()) {
      LocCode n;
      if (!code.neighbor(d[0], d[1], d[2], n)) continue;
      LocCode back;
      ASSERT_TRUE(n.neighbor(-d[0], -d[1], -d[2], back));
      EXPECT_EQ(back, code);
    }
  }
}

TEST(LocCode, NeighborDirectionsCover26) {
  const auto& dirs = LocCode::neighbor_directions();
  std::set<std::array<int, 3>> unique(dirs.begin(), dirs.end());
  EXPECT_EQ(unique.size(), 26u);
  EXPECT_EQ(unique.count({0, 0, 0}), 0u);
}

TEST(LocCode, OrderingIsMortonDepthFirst) {
  // Siblings order by child index; a parent precedes its descendants.
  const auto p = LocCode::root().child(3);
  EXPECT_LT(p, p.child(0));
  EXPECT_LT(p.child(0), p.child(1));
  EXPECT_LT(p.child(7), LocCode::root().child(4));
}

TEST(LocCode, SortedLeavesFollowSfc) {
  // All level-2 cells sorted by LocCode must equal Morton order of anchors.
  std::vector<LocCode> cells;
  for (std::uint32_t z = 0; z < 4; ++z)
    for (std::uint32_t y = 0; y < 4; ++y)
      for (std::uint32_t x = 0; x < 4; ++x)
        cells.push_back(LocCode::from_grid(2, x, y, z));
  std::sort(cells.begin(), cells.end());
  for (std::size_t i = 1; i < cells.size(); ++i) {
    const auto a = cells[i - 1].grid_anchor();
    const auto b = cells[i].grid_anchor();
    EXPECT_LT(morton_encode3(a.x, a.y, a.z), morton_encode3(b.x, b.y, b.z));
  }
}

TEST(LocCode, CenterUnitInsideOwnCell) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const int level = static_cast<int>(rng.below(10)) + 1;
    const std::uint32_t side = 1u << level;
    const auto g = std::array<std::uint32_t, 3>{
        static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side)),
        static_cast<std::uint32_t>(rng.below(side))};
    const auto code = LocCode::from_grid(level, g[0], g[1], g[2]);
    const auto c = code.center_unit();
    const double h = code.size_unit();
    EXPECT_NEAR(c[0], (g[0] + 0.5) * h, 1e-12);
    EXPECT_NEAR(c[1], (g[1] + 0.5) * h, 1e-12);
    EXPECT_NEAR(c[2], (g[2] + 0.5) * h, 1e-12);
  }
}

TEST(LocCode, HashHasNoTrivialCollisionsAcrossLevels) {
  LocCodeHash hash;
  std::set<std::size_t> seen;
  std::size_t count = 0;
  for (int level = 0; level <= 4; ++level) {
    const std::uint32_t side = 1u << level;
    for (std::uint32_t z = 0; z < side; ++z)
      for (std::uint32_t y = 0; y < side; ++y)
        for (std::uint32_t x = 0; x < side; ++x) {
          seen.insert(hash(LocCode::from_grid(level, x, y, z)));
          ++count;
        }
  }
  // Perfect hashing is not required, but collisions should be rare.
  EXPECT_GE(seen.size(), count - 2);
}

}  // namespace
}  // namespace pmo
