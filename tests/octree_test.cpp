// Tests for the core in-memory octree: construct, refine/coarsen, balance,
// neighbors, traversal order, serialization.
#include "octree/octree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"

namespace pmo::octree {
namespace {

// Refine leaves randomly to build an irregular tree (property fixture).
void grow_random(Octree& tree, Rng& rng, int rounds, double p,
                 int max_level = 6) {
  for (int r = 0; r < rounds; ++r) {
    tree.refine_where([&](const Node& n) {
      return n.code.level() < max_level && rng.chance(p);
    });
  }
}

TEST(Octree, ConstructHasSingleRootLeaf) {
  Octree tree;
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_TRUE(tree.root()->is_leaf());
  EXPECT_EQ(tree.depth(), 0);
}

TEST(Octree, RefineCreatesEightChildren) {
  Octree tree;
  tree.root()->data.vof = 0.5;
  tree.refine(tree.root());
  EXPECT_EQ(tree.node_count(), 9u);
  EXPECT_EQ(tree.leaf_count(), 8u);
  for (const auto* c : tree.root()->children) {
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->parent, tree.root());
    EXPECT_DOUBLE_EQ(c->data.vof, 0.5);  // inherited
  }
}

TEST(Octree, RefineWithInitOverridesData) {
  Octree tree;
  tree.refine(tree.root(), [](Node& n) { n.data.tracer = 9.0; });
  tree.for_each_leaf([](Node& n) { EXPECT_DOUBLE_EQ(n.data.tracer, 9.0); });
}

TEST(Octree, RefineNonLeafRejected) {
  Octree tree;
  tree.refine(tree.root());
  EXPECT_THROW(tree.refine(tree.root()), ContractError);
}

TEST(Octree, InsertCreatesPathWithFullSiblingGroups) {
  Octree tree;
  const auto code = LocCode::from_grid(3, 1, 2, 3);
  Node* n = tree.insert(code);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->code, code);
  // Each refinement on the path creates 8 children: 1 + 8 + 8 + 8 nodes.
  EXPECT_EQ(tree.node_count(), 25u);
  // Every internal node must have exactly 8 children (0-or-8 invariant).
  tree.for_each_node([](const Node& node) {
    int kids = 0;
    for (const auto* c : node.children) kids += (c != nullptr);
    EXPECT_TRUE(kids == 0 || kids == 8);
  });
}

TEST(Octree, FindExactAndMissing) {
  Octree tree;
  const auto code = LocCode::from_grid(2, 1, 1, 1);
  tree.insert(code);
  EXPECT_NE(tree.find(code), nullptr);
  EXPECT_EQ(tree.find(code)->code, code);
  // A deeper code that was never created:
  EXPECT_EQ(tree.find(code.child(0).child(0)), nullptr);
}

TEST(Octree, FindLeafContainingDescendsToLeaf) {
  Octree tree;
  tree.insert(LocCode::from_grid(2, 0, 0, 0));
  const auto deep = LocCode::from_grid(5, 1, 1, 1);  // inside (2;0,0,0)
  Node* leaf = tree.find_leaf_containing(deep);
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->code.contains(deep));
  EXPECT_TRUE(leaf->is_leaf());
}

TEST(Octree, CoarsenMergesChildrenAveragingData) {
  Octree tree;
  tree.refine(tree.root());
  double v = 0.0;
  tree.for_each_leaf([&](Node& n) { n.data.vof = (v += 1.0); });  // 1..8
  tree.coarsen_where([](const Node&) { return true; });
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.root()->data.vof, 4.5);
}

TEST(Octree, CoarsenWhereRequiresAllEightToAgree) {
  Octree tree;
  tree.refine(tree.root());
  int i = 0;
  tree.for_each_leaf([&](Node& n) { n.data.tracer = (i++ < 4) ? 1.0 : 0.0; });
  const auto merged =
      tree.coarsen_where([](const Node& n) { return n.data.tracer > 0.5; });
  EXPECT_EQ(merged, 0u);
  EXPECT_EQ(tree.leaf_count(), 8u);
}

TEST(Octree, LeafCountsPartitionDomain) {
  // Sum of leaf volumes must equal the root volume, for random trees.
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    Octree tree;
    grow_random(tree, rng, 3, 0.4);
    double volume = 0.0;
    tree.for_each_leaf([&](const Node& n) {
      const double h = n.code.size_unit();
      volume += h * h * h;
    });
    EXPECT_NEAR(volume, 1.0, 1e-9);
  }
}

TEST(Octree, MortonOrderTraversal) {
  Octree tree;
  tree.insert(LocCode::from_grid(2, 3, 0, 0));
  tree.insert(LocCode::from_grid(2, 0, 3, 0));
  auto leaves = tree.leaves_in_morton_order();
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_LT(leaves[i - 1]->code, leaves[i]->code);
  }
}

TEST(Octree, NeighborSameLevel) {
  Octree tree;
  tree.refine(tree.root());
  Node* c0 = tree.find(LocCode::root().child(0));
  Node* c1 = tree.find(LocCode::root().child(1));  // +x of child 0
  EXPECT_EQ(tree.neighbor(c0, 1, 0, 0), c1);
  EXPECT_EQ(tree.neighbor(c0, -1, 0, 0), nullptr);  // domain boundary
}

TEST(Octree, NeighborCoarser) {
  Octree tree;
  tree.refine(tree.root());
  Node* c0 = tree.find(LocCode::root().child(0));
  tree.refine(c0);
  Node* fine = tree.find(LocCode::root().child(0).child(1));
  Node* coarse = tree.neighbor(fine, 1, 0, 0);
  ASSERT_NE(coarse, nullptr);
  EXPECT_EQ(coarse->code, LocCode::root().child(1));
}

TEST(Octree, BalanceEnforcesTwoToOne) {
  Octree tree;
  // Chain refinement toward the domain center: the level-3 cells in
  // child(0).child(7) touch the level-1 leaves of root children 1..7,
  // a 2-level jump. (A corner-directed chain would stay graded.)
  tree.refine(tree.root());
  LocCode code = LocCode::root().child(0);
  for (int l = 1; l < 4; ++l) {
    tree.refine(tree.find(code));
    code = code.child(7);
  }
  EXPECT_FALSE(tree.is_balanced());
  const auto refined = tree.balance();
  EXPECT_GT(refined, 0u);
  EXPECT_TRUE(tree.is_balanced());
}

TEST(Octree, BalanceIsIdempotent) {
  Rng rng(7);
  Octree tree;
  grow_random(tree, rng, 4, 0.35);
  tree.balance();
  EXPECT_TRUE(tree.is_balanced());
  EXPECT_EQ(tree.balance(), 0u);
}

TEST(Octree, BalancedRandomTreesProperty) {
  Rng rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    Octree tree;
    grow_random(tree, rng, 5, 0.3);
    tree.balance();
    EXPECT_TRUE(tree.is_balanced()) << "trial " << trial;
  }
}

TEST(Octree, SerializeDeserializeRoundTrips) {
  Rng rng(404);
  Octree tree;
  grow_random(tree, rng, 4, 0.4);
  double stamp = 0.0;
  tree.for_each_node([&](Node& n) { n.data.tracer = (stamp += 1.0); });
  const auto blob = tree.serialize();
  Octree back = Octree::deserialize(blob.data(), blob.size());
  EXPECT_TRUE(tree_equal(tree, back));
}

TEST(Octree, DeserializeRejectsTruncated) {
  Octree tree;
  tree.refine(tree.root());
  const auto blob = tree.serialize();
  EXPECT_THROW(Octree::deserialize(blob.data(), blob.size() / 2),
               ContractError);
  EXPECT_THROW(Octree::deserialize(blob.data(), 4), ContractError);
}

TEST(Octree, TreeEqualDetectsDataDifference) {
  Octree a, b;
  a.refine(a.root());
  b.refine(b.root());
  EXPECT_TRUE(tree_equal(a, b));
  a.find(LocCode::root().child(3))->data.vof = 0.25;
  EXPECT_FALSE(tree_equal(a, b));
}

TEST(Octree, StatsReportDepthAndCounts) {
  Octree tree;
  tree.insert(LocCode::from_grid(3, 0, 0, 0));
  const auto s = tree.stats();
  EXPECT_EQ(s.depth, 3);
  EXPECT_EQ(s.nodes, tree.node_count());
  EXPECT_EQ(s.leaves, tree.leaf_count());
  EXPECT_GT(s.bytes, 0u);
}

TEST(Octree, MoveTransfersOwnership) {
  Octree a;
  a.refine(a.root());
  Octree b = std::move(a);
  EXPECT_EQ(b.node_count(), 9u);
}

TEST(Octree, RefineWhereRespectsMaxLevel) {
  Octree tree;
  // Pretend everything is always refinable; depth must cap at kMaxLevel.
  // (Only run a couple of rounds at tiny scale.)
  Node* n = tree.insert(LocCode::from_grid(3, 1, 1, 1));
  (void)n;
  const auto count = tree.refine_where([](const Node& node) {
    return node.code.level() >= kMaxLevel;  // nothing qualifies
  });
  EXPECT_EQ(count, 0u);
}

// Parameterized sweep: uniform refinement to level L yields 8^L leaves.
class UniformRefineTest : public ::testing::TestWithParam<int> {};

TEST_P(UniformRefineTest, LeafCountIsPowerOfEight) {
  const int levels = GetParam();
  Octree tree;
  for (int l = 0; l < levels; ++l) {
    tree.refine_where([](const Node&) { return true; });
  }
  std::size_t expect = 1;
  for (int l = 0; l < levels; ++l) expect *= 8;
  EXPECT_EQ(tree.leaf_count(), expect);
  EXPECT_EQ(tree.depth(), levels);
  EXPECT_TRUE(tree.is_balanced());
}

INSTANTIATE_TEST_SUITE_P(Depths, UniformRefineTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace pmo::octree
