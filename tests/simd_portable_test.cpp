// Forced-portable build surface check: this binary compiles its own copy
// of src/common/simd.cpp with PMO_SIMD_FORCE_PORTABLE=1 (it must NOT link
// pmo_common — that library carries the host-probed simd.cpp, and mixing
// the two would be an ODR violation). Verifies that the portable-only
// build reports no AVX2, that set_enabled(true) is clamped to a no-op,
// and that the kernels still implement the exact scalar recurrence — the
// configuration every non-AVX2 toolchain gets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/simd.hpp"

namespace pmo {
namespace {

/// Hand-built face-neighbor table of a 2x2x2 uniform mesh. Cell i sits at
/// (x, y, z) = (i & 1, (i >> 1) & 1, (i >> 2) & 1); the neighbor across an
/// in-domain face toggles one coordinate bit, out-of-domain faces are -1.
/// Face order is simd::kFaces: +x, -x, +y, -y, +z, -z.
std::vector<std::int32_t> cube_slots() {
  std::vector<std::int32_t> slots(8 * simd::kFaceCount, -1);
  for (int i = 0; i < 8; ++i) {
    const int x = i & 1, y = (i >> 1) & 1, z = (i >> 2) & 1;
    std::int32_t* s = slots.data() + simd::kFaceCount * i;
    s[0] = x == 0 ? i | 1 : -1;   // +x
    s[1] = x == 1 ? i & ~1 : -1;  // -x
    s[2] = y == 0 ? i | 2 : -1;   // +y
    s[3] = y == 1 ? i & ~2 : -1;  // -y
    s[4] = z == 0 ? i | 4 : -1;   // +z
    s[5] = z == 1 ? i & ~4 : -1;  // -z
  }
  return slots;
}

TEST(SimdPortable, Avx2IsCompiledOut) {
  EXPECT_FALSE(simd::avx2_compiled());
  EXPECT_FALSE(simd::enabled());
  simd::set_enabled(true);  // must clamp: no AVX2 body exists to dispatch to
  EXPECT_FALSE(simd::enabled());
  simd::set_enabled(false);
}

TEST(SimdPortable, GatherImplementsScalarRecurrence) {
  const auto slots = cube_slots();
  std::vector<double> vof, tracer;
  for (int i = 0; i < 8; ++i) {
    vof.push_back(0.1 * (i + 1));
    tracer.push_back(static_cast<double>(i) - 3.5);
  }
  std::vector<double> relaxed(8, 0.0);
  std::vector<std::uint8_t> touched(8, 0);
  simd::set_enabled(true);  // clamped; still exercises the dispatch path
  simd::gather_relax(vof.data(), tracer.data(), slots.data(), 0, 8,
                     relaxed.data(), touched.data());
  for (int i = 0; i < 8; ++i) {
    double acc = 0.0;
    int n = 0;
    for (int f = 0; f < simd::kFaceCount; ++f) {
      const std::int32_t s = slots[simd::kFaceCount * i + f];
      if (s >= 0) {
        acc += tracer[static_cast<std::size_t>(s)];
        ++n;
      }
    }
    ASSERT_EQ(n, 3);
    EXPECT_EQ(relaxed[i], 0.5 * tracer[i] + 0.5 * (acc / n) + 0.1 * vof[i]);
    EXPECT_EQ(touched[i], 1);
  }
}

TEST(SimdPortable, GatherSkipsGasCellsAndToleratesNaN) {
  const auto slots = cube_slots();
  std::vector<double> vof(8, 0.5), tracer(8, 1.0);
  vof[2] = 0.0;
  tracer[2] = 0.0;  // skip cell: outputs untouched
  tracer[5] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> relaxed(8, -1.0);
  std::vector<std::uint8_t> touched(8, 0xab);
  simd::gather_relax(vof.data(), tracer.data(), slots.data(), 0, 8,
                     relaxed.data(), touched.data());
  EXPECT_EQ(relaxed[2], -1.0);
  EXPECT_EQ(touched[2], 0xab);
  // NaN flows through the arithmetic: every neighbor of cell 5 sees it.
  for (int i = 0; i < 8; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(touched[i], 1);
    const bool sees_nan =
        i == 5 || slots[simd::kFaceCount * i + 0] == 5 ||
        slots[simd::kFaceCount * i + 1] == 5 ||
        slots[simd::kFaceCount * i + 2] == 5 ||
        slots[simd::kFaceCount * i + 3] == 5 ||
        slots[simd::kFaceCount * i + 4] == 5 ||
        slots[simd::kFaceCount * i + 5] == 5;
    EXPECT_EQ(std::isnan(relaxed[i]), sees_nan) << "cell " << i;
  }
}

TEST(SimdPortable, MarkInterfaceBandMatchesPredicate) {
  const double band = 1e-3;
  std::vector<double> vof = {0.0,
                             band,
                             std::nextafter(band, 1.0),
                             0.5,
                             1.0 - band,
                             std::nextafter(1.0 - band, 0.0),
                             1.0,
                             std::numeric_limits<double>::quiet_NaN()};
  std::vector<std::uint8_t> marks(vof.size(), 0xcd);
  simd::mark_interface_band(vof.data(), vof.size(), band, marks.data());
  const std::vector<std::uint8_t> expect = {0, 0, 1, 1, 0, 1, 0, 0};
  EXPECT_EQ(marks, expect);
}

}  // namespace
}  // namespace pmo
