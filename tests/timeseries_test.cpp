// Tests for the metric time-series sampler (ring budget, decimation,
// driver-thread gating, cross-thread bit-identity of modeled series) and
// the serving SLO tracker (error-budget accounting, burn-rate windows,
// keep-the-worst slow log, tail-based trace sampling on reader-lane
// pids).
#include "telemetry/timeseries.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "exec/pool.hpp"
#include "serve/slo.hpp"
#include "telemetry/trace.hpp"

namespace pmo::telemetry::timeseries {
namespace {

// Recording-dependent tests: under PMO_TELEMETRY=OFF tick() is a no-op
// and every series stays empty — that surface is covered by
// telemetry_off_test.cpp instead.
#if PMO_TELEMETRY_ENABLED

const json::Value* series_of(const json::Value& dump, const char* name) {
  const json::Value* s = dump.find("series");
  return s != nullptr ? s->find(name) : nullptr;
}

std::vector<double> arr(const json::Value& series, const char* key) {
  std::vector<double> out;
  const json::Value* a = series.find(key);
  if (a == nullptr) return out;
  for (std::size_t i = 0; i < a->size(); ++i) {
    out.push_back(a->at(i).as_double());
  }
  return out;
}

TEST(Timeseries, CounterAndGaugeSampling) {
  Registry reg;
  MetricSampler sampler(reg, {/*capacity=*/16, /*refresh_sources=*/false});
  sampler.add({"c", Kind::kCounter, "t.c", "", 0.0, true});
  sampler.add({"g", Kind::kGauge, "t.g", "", 0.0, true});
  for (int i = 0; i < 4; ++i) {
    reg.counter("t.c").add(10);
    reg.gauge("t.g").set(i);
    sampler.tick();
  }
  EXPECT_EQ(sampler.ticks(), 4u);
  EXPECT_EQ(sampler.series_count(), 2u);
  const auto dump = sampler.to_json();
  const auto* c = series_of(dump, "c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(arr(*c, "t"), (std::vector<double>{0, 1, 2, 3}));
  EXPECT_EQ(arr(*c, "v"), (std::vector<double>{10, 20, 30, 40}));
  const auto* g = series_of(dump, "g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(arr(*g, "v"), (std::vector<double>{0, 1, 2, 3}));
}

TEST(Timeseries, RatioSeries) {
  Registry reg;
  MetricSampler sampler(reg, {16, false});
  sampler.add({"hit", Kind::kRatio, "t.hits", "t.misses", 0.0, true});
  sampler.tick();  // 0/0 -> 0
  reg.counter("t.hits").add(3);
  reg.counter("t.misses").add(1);
  sampler.tick();
  const auto dump = sampler.to_json();
  const auto* s = series_of(dump, "hit");
  ASSERT_NE(s, nullptr);
  const auto v = arr(*s, "v");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  EXPECT_EQ(s->find("metric2")->as_string(), "t.misses");
}

TEST(Timeseries, PercentileSeriesMatchesHistogram) {
  Registry reg;
  auto& h = reg.histogram("t.lat");
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i);
  MetricSampler sampler(reg, {16, false});
  sampler.add({"p95", Kind::kPercentile, "t.lat", "", 0.95, false});
  sampler.tick();
  const auto dump = sampler.to_json();
  const auto* s = series_of(dump, "p95");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(arr(*s, "v")[0],
                   static_cast<double>(h.percentile(0.95)));
}

TEST(Timeseries, RateSeriesIsNeverModeled) {
  Registry reg;
  MetricSampler sampler(reg, {16, false});
  // modeled=true must be overridden: rates divide by wall-clock.
  sampler.add({"qps", Kind::kRate, "t.lat", "", 0.0, /*modeled=*/true});
  reg.histogram("t.lat").record(5);
  sampler.tick();
  const auto dump = sampler.to_json();
  const auto* s = series_of(dump, "qps");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->find("modeled")->as_double(), 0.0);
  // First tick has no dt: the rate must be 0, not inf/nan.
  EXPECT_DOUBLE_EQ(arr(*s, "v")[0], 0.0);
}

TEST(Timeseries, DecimationKeepsWholeRunCovered) {
  Registry reg;
  MetricSampler sampler(reg, {/*capacity=*/8, false});
  sampler.add({"g", Kind::kGauge, "t.g", "", 0.0, true});
  const int kTicks = 100;
  for (int i = 0; i < kTicks; ++i) {
    reg.gauge("t.g").set(i);
    sampler.tick();
  }
  const auto dump = sampler.to_json();
  const auto* s = series_of(dump, "g");
  ASSERT_NE(s, nullptr);
  const auto t = arr(*s, "t");
  const auto v = arr(*s, "v");
  const auto stride =
      static_cast<std::uint64_t>(s->find("stride")->as_double());
  ASSERT_EQ(t.size(), v.size());
  EXPECT_LE(t.size(), 8u);
  EXPECT_GE(t.size(), 3u);
  // Stride is a power of two and every retained point sits on it.
  EXPECT_EQ(stride & (stride - 1), 0u);
  EXPECT_GT(stride, 1u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint64_t>(t[i]) % stride, 0u);
    // Gauge was set to the tick index before each tick: v == t.
    EXPECT_DOUBLE_EQ(v[i], t[i]);
    if (i > 0) {
      EXPECT_GT(t[i], t[i - 1]);
    }
  }
  // The run's start AND tail stay represented (no truncation).
  EXPECT_DOUBLE_EQ(t.front(), 0.0);
  EXPECT_GE(t.back(), static_cast<double>(kTicks - 1) -
                          static_cast<double>(2 * stride));
}

TEST(Timeseries, WriteFileRoundTrips) {
  Registry reg;
  MetricSampler sampler(reg, {16, false});
  sampler.add({"c", Kind::kCounter, "t.c", "", 0.0, true});
  reg.counter("t.c").add(7);
  sampler.tick();
  const std::string path = ::testing::TempDir() + "timeseries_test.json";
  ASSERT_TRUE(sampler.write_file(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json::Value::parse(buf.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("ticks")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(arr(*series_of(*doc, "c"), "v")[0], 7.0);
  std::remove(path.c_str());
}

TEST(Timeseries, TickPointFiresOnlyOnDriverThreadOutsideTasks) {
  Registry reg;
  MetricSampler sampler(reg, {16, false});
  sampler.add({"c", Kind::kCounter, "t.c", "", 0.0, true});
  sampler.install_on_current_thread();
  ASSERT_EQ(MetricSampler::installed(), &sampler);

  tick_point();  // driver thread, not in a task: fires
  EXPECT_EQ(sampler.ticks(), 1u);

  std::thread other([] { tick_point(); });  // foreign thread: gated
  other.join();
  EXPECT_EQ(sampler.ticks(), 1u);

  // Inside a pool task the gate holds even for the caller's inline
  // share — which thread runs a task is scheduling, and scheduling must
  // not shape a modeled series.
  exec::ThreadPool pool(2);
  pool.parallel_for(8, [](std::size_t) { tick_point(); });
  EXPECT_EQ(sampler.ticks(), 1u);

  MetricSampler::uninstall();
  tick_point();
  EXPECT_EQ(sampler.ticks(), 1u);
  EXPECT_EQ(MetricSampler::installed(), nullptr);
}

TEST(Timeseries, DestructorUninstallsItself) {
  Registry reg;
  {
    MetricSampler sampler(reg, {16, false});
    sampler.install_on_current_thread();
    ASSERT_EQ(MetricSampler::installed(), &sampler);
  }
  EXPECT_EQ(MetricSampler::installed(), nullptr);
  // ... but a replaced sampler's destructor must not evict its
  // replacement.
  MetricSampler a(reg, {16, false});
  {
    MetricSampler b(reg, {16, false});
    b.install_on_current_thread();
    a.install_on_current_thread();  // replaces b
  }  // b dies; a stays installed
  EXPECT_EQ(MetricSampler::installed(), &a);
  MetricSampler::uninstall();
}

// The determinism contract, end to end: modeled counter series sampled
// at library tick points (droplet step end + persist) are bit-identical
// no matter how many exec workers the backend fans out to. Values are
// compared as deltas against the pre-run counter state because the
// global registry accumulates across in-process runs.
TEST(Timeseries, ModeledSeriesBitIdenticalAcrossThreads) {
  static const char* kMetrics[] = {"amr.steps", "amr.refined",
                                   "amr.coarsened"};
  struct RunOut {
    std::vector<double> t;
    std::vector<std::vector<double>> dv;
  };
  const auto run = [&](int threads) {
    auto& reg = Registry::global();
    std::vector<double> base;
    for (const char* m : kMetrics) {
      base.push_back(static_cast<double>(reg.counter(m).value()));
    }
    MetricSampler sampler(reg, {64, /*refresh_sources=*/false});
    for (const char* m : kMetrics) {
      sampler.add({m, Kind::kCounter, m, "", 0.0, true});
    }
    sampler.install_on_current_thread();

    nvbm::Config cfg;
    cfg.latency_mode = nvbm::LatencyMode::kModeled;
    nvbm::Device dev(512 << 20, cfg);
    amr::PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
    amr::DropletParams p;
    p.min_level = 1;
    p.max_level = 3;
    amr::DropletWorkload wl(p);
    wl.initialize(mesh);
    exec::ThreadPool pool(threads);
    wl.set_exec(&pool);
    for (int s = 0; s < 3; ++s) wl.step(mesh, s, /*persist=*/true);
    MetricSampler::uninstall();

    RunOut out;
    const auto dump = sampler.to_json();
    for (std::size_t m = 0; m < std::size(kMetrics); ++m) {
      const auto* s = series_of(dump, kMetrics[m]);
      EXPECT_NE(s, nullptr);
      if (s == nullptr) continue;
      if (m == 0) out.t = arr(*s, "t");
      auto v = arr(*s, "v");
      for (double& x : v) x -= base[m];
      out.dv.push_back(std::move(v));
    }
    return out;
  };

  const RunOut a = run(1);
  const RunOut b = run(4);
  EXPECT_GE(a.t.size(), 3u);  // one tick per step at minimum
  EXPECT_EQ(a.t, b.t);
  ASSERT_EQ(a.dv.size(), b.dv.size());
  for (std::size_t m = 0; m < a.dv.size(); ++m) {
    EXPECT_EQ(a.dv[m], b.dv[m]) << kMetrics[m];
  }
}

#endif  // PMO_TELEMETRY_ENABLED

}  // namespace
}  // namespace pmo::telemetry::timeseries

// ---- SLO tracker -----------------------------------------------------------

namespace pmo::serve {
namespace {

SloConfig cfg_1us() {
  SloConfig cfg;
  cfg.latency_objective_ns = 1000;
  cfg.objective_quantile = 0.99;  // budget derives to 0.01
  return cfg;
}

TEST(Slo, DerivesBudgetAndSlowThreshold) {
  telemetry::Registry reg;
  SloTracker slo(reg, cfg_1us());
  EXPECT_NEAR(slo.error_budget(), 0.01, 1e-12);
  EXPECT_EQ(slo.slow_threshold_ns(), 4000u);
  SloConfig cfg = cfg_1us();
  cfg.error_budget = 0.2;
  cfg.slow_query_ns = 9000;
  SloTracker slo2(reg, cfg);
  EXPECT_DOUBLE_EQ(slo2.error_budget(), 0.2);
  EXPECT_EQ(slo2.slow_threshold_ns(), 9000u);
}

TEST(Slo, ClassifiesViolationsAndBudget) {
  telemetry::Registry reg;
  SloConfig cfg = cfg_1us();
  cfg.error_budget = 0.5;
  SloTracker slo(reg, cfg);
  ReadCharges ch;
  slo.observe(0, "point", 0, 500, ch, 0);   // within objective
  slo.observe(0, "point", 0, 1500, ch, 0);  // violation
  slo.observe(0, "box", 0, 800, ch, 0);     // within
  slo.observe(0, "box", 0, 2000, ch, 0);    // violation
  EXPECT_EQ(slo.total(), 4u);
  EXPECT_EQ(slo.violations(), 2u);
  // frac 0.5 of a 0.5 budget: everything spent, exactly 0 remaining.
  EXPECT_DOUBLE_EQ(slo.budget_remaining(), 0.0);
#if PMO_TELEMETRY_ENABLED
  EXPECT_EQ(reg.counter("serve.slo.violations").value(), 2u);
#endif
}

TEST(Slo, BurnRateIsWindowed) {
  telemetry::Registry reg;
  SloTracker slo(reg, cfg_1us());  // budget 0.01
  ReadCharges ch;
  for (int i = 0; i < 99; ++i) slo.observe(0, "point", 0, 100, ch, 0);
  slo.observe(0, "point", 0, 2000, ch, 0);
  slo.tick();
  // 1 violation in 100: burning exactly at budget. (NEAR: the budget
  // derives from 1.0 - 0.99, which is not exactly 0.01 in binary.)
  EXPECT_NEAR(slo.burn_rate(), 1.0, 1e-9);
  for (int i = 0; i < 97; ++i) slo.observe(0, "point", 0, 100, ch, 0);
  for (int i = 0; i < 3; ++i) slo.observe(0, "point", 0, 2000, ch, 0);
  slo.tick();
  // This window burned 3x the budget; the gauge mirrors it.
  EXPECT_NEAR(slo.burn_rate(), 3.0, 1e-9);
#if PMO_TELEMETRY_ENABLED
  EXPECT_NEAR(reg.gauge("serve.slo.burn_rate").value(), 3.0, 1e-9);
#endif
  EXPECT_EQ(slo.ticks(), 2u);
}

TEST(Slo, TickPublishesInterpolatedPercentileGauge) {
  telemetry::Registry reg;
  auto& h = reg.histogram("serve.query_ns");
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i);
  SloTracker slo(reg, cfg_1us());
  slo.tick();
  EXPECT_DOUBLE_EQ(reg.gauge("serve.slo.p_ns").value(),
                   static_cast<double>(h.percentile(0.99)));
}

TEST(Slo, SlowLogKeepsTheWorst) {
  telemetry::Registry reg;
  SloConfig cfg = cfg_1us();
  cfg.slow_query_ns = 4000;
  cfg.slow_log_capacity = 2;
  SloTracker slo(reg, cfg);
  ReadCharges ch;
  ch.node_loads = 11;
  slo.observe(1, "box", 10, 5000, ch, 2);
  slo.observe(2, "point", 20, 7000, ch, 0);
  slo.observe(3, "neighbors", 30, 6000, ch, 1);
  slo.observe(4, "point", 40, 100, ch, 0);  // fast: never logged
  EXPECT_EQ(slo.tail_sampled(), 3u);
  const auto log = slo.slow_queries();
  ASSERT_EQ(log.size(), 2u);  // capacity bound, worst first
  EXPECT_EQ(log[0].dur_ns, 7000u);
  EXPECT_EQ(log[0].lane, 2u);
  EXPECT_EQ(log[1].dur_ns, 6000u);
  EXPECT_EQ(log[1].kind, "neighbors");
  EXPECT_EQ(log[1].charges.node_loads, 11u);
}

TEST(Slo, ToJsonShape) {
  telemetry::Registry reg;
  SloTracker slo(reg, cfg_1us());
  ReadCharges ch;
  slo.observe(0, "point", 0, 5000, ch, 0);
  slo.tick();
  const auto j = slo.to_json();
  EXPECT_EQ(j.find("total")->as_double(), 1.0);
  EXPECT_EQ(j.find("violations")->as_double(), 1.0);
  EXPECT_EQ(j.find("tail_sampled")->as_double(), 1.0);
  EXPECT_NE(j.find("budget_remaining"), nullptr);
  EXPECT_NE(j.find("burn_rate"), nullptr);
  EXPECT_NE(j.find("p_ns"), nullptr);
  const auto* obj = j.find("objective");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->find("latency_ns")->as_double(), 1000.0);
  EXPECT_EQ(obj->find("slow_query_ns")->as_double(), 4000.0);
  ASSERT_NE(j.find("slow_queries"), nullptr);
  EXPECT_EQ(j.find("slow_queries")->size(), 1u);
  EXPECT_EQ(j.find("slow_queries")->at(0).find("kind")->as_string(),
            "point");
}

#if PMO_TELEMETRY_ENABLED

// Tail-based sampling contract: the retroactive slice pair lands on the
// owning reader lane's trace track (kServeReaderPidBase + lane) with the
// charge breakdown as args, and the exported trace stays structurally
// valid (B/E pairing per track survives the retroactive timestamps).
TEST(Slo, TailSampleLandsOnReaderLanePid) {
  namespace trace = telemetry::trace;
  telemetry::Registry reg;
  SloConfig cfg = cfg_1us();
  cfg.slow_query_ns = 4000;
  SloTracker slo(reg, cfg);

  trace::TraceSession session;
  const std::uint64_t t0 = trace::now_ns();
  ReadCharges ch;
  ch.lines_read = 99;
  slo.observe(/*lane=*/5, "interface", t0, 5000, ch, 3);
  slo.observe(/*lane=*/5, "point", t0, 10, ch, 0);  // fast: no events
  session.stop();

  std::ostringstream out;
  session.write(out);
  std::string err;
  const auto doc = telemetry::json::Value::parse(out.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto check = trace::validate_chrome_trace(*doc);
  EXPECT_TRUE(check.ok) << check.error;

  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t slo_events = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto& ev = events->at(i);
    const auto* cat = ev.find("cat");
    if (cat == nullptr || !cat->is_string() ||
        cat->as_string() != "slo") {
      continue;
    }
    ++slo_events;
    EXPECT_EQ(ev.find("pid")->as_double(),
              static_cast<double>(trace::kServeReaderPidBase + 5));
    EXPECT_EQ(ev.find("name")->as_string(), "serve.slow.interface");
    if (ev.find("ph")->as_string() == "B") {
      const auto* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("lines_read")->as_double(), 99.0);
      EXPECT_EQ(args->find("staleness")->as_double(), 3.0);
    }
  }
  EXPECT_EQ(slo_events, 2u);  // exactly one B/E pair, fast query silent
}

#endif  // PMO_TELEMETRY_ENABLED

}  // namespace
}  // namespace pmo::serve
