// Remote replica (V^P) delta shipping and new-node recovery (§3.4/§5.6).
#include "pmoctree/replica.hpp"

#include <gtest/gtest.h>

#include <map>

namespace pmo::pmoctree {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

CellData cell(double vof) {
  CellData d;
  d.vof = vof;
  return d;
}

using LeafMap = std::map<std::uint64_t, double>;
LeafMap leaves_of(PmOctree& tree) {
  LeafMap out;
  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    out[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] = d.vof;
  });
  return out;
}

TEST(Replica, FirstShipSendsWholeVersion) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  tree.refine(LocCode::root());
  tree.persist();

  ReplicaManager mgr;
  ReplicaStore peer;
  const auto bytes = mgr.ship(tree, peer);
  EXPECT_EQ(peer.node_count(), 9u);
  EXPECT_GE(bytes, 9 * sizeof(PNode));
}

TEST(Replica, SecondShipSendsOnlyDelta) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  tree.refine(LocCode::root());
  tree.persist();
  ReplicaManager mgr;
  ReplicaStore peer;
  mgr.ship(tree, peer);

  tree.update(LocCode::root().child(2), cell(0.5));
  tree.persist();
  const auto delta = mgr.extract(tree);
  // CoW changed exactly child 2 and the root: 2 upserts, 2 removals.
  EXPECT_EQ(delta.upserts.size(), 2u);
  EXPECT_EQ(delta.removals.size(), 2u);
  peer.apply(delta);
  EXPECT_EQ(peer.node_count(), 9u);
}

TEST(Replica, HighOverlapMeansSmallDelta) {
  // The paper's argument for cheap replication: adjacent steps overlap
  // 39-99%, so deltas are a small fraction of the full tree.
  nvbm::Device dev(128 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  for (int l = 0; l < 3; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();
  ReplicaManager mgr;
  ReplicaStore peer;
  const auto full = mgr.ship(tree, peer);

  tree.update(LocCode::root().child(0).child(0).child(0), cell(0.9));
  tree.persist();
  const auto delta = mgr.ship(tree, peer);
  EXPECT_LT(delta, full / 10);
}

TEST(Replica, RestoreIntoFreshHeapReproducesTree) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  tree.refine(LocCode::root());
  tree.update(LocCode::root().child(5), cell(0.55));
  tree.refine(LocCode::root().child(1));
  tree.persist();
  const auto expect = leaves_of(tree);

  ReplicaManager mgr;
  ReplicaStore peer;
  mgr.ship(tree, peer);

  // "New compute node": fresh device + heap, rebuilt from the replica.
  nvbm::Device dev2(64 << 20, dev_cfg());
  nvbm::Heap heap2(dev2);
  const auto moved = peer.restore_into(heap2);
  EXPECT_EQ(moved, peer.node_count());
  ASSERT_TRUE(PmOctree::can_restore(heap2));
  auto back = PmOctree::restore(heap2, PmConfig{});
  EXPECT_EQ(leaves_of(back), expect);
}

TEST(Replica, TracksRemovalsAcrossCoarsening) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  auto tree = PmOctree::create(heap, pm);
  tree.refine(LocCode::root());
  tree.refine(LocCode::root().child(0));
  tree.persist();
  ReplicaManager mgr;
  ReplicaStore peer;
  mgr.ship(tree, peer);
  const auto before = peer.node_count();

  tree.coarsen(LocCode::root().child(0));  // drop 8 octants
  tree.persist();
  mgr.ship(tree, peer);
  EXPECT_EQ(peer.node_count(), before - 8);

  nvbm::Device dev2(64 << 20, dev_cfg());
  nvbm::Heap heap2(dev2);
  peer.restore_into(heap2);
  auto back = PmOctree::restore(heap2, pm);
  EXPECT_EQ(leaves_of(back), leaves_of(tree));
}

TEST(Replica, ShipWithoutPersistRejected) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  ReplicaManager mgr;
  ReplicaStore peer;
  EXPECT_THROW(mgr.extract(tree), ContractError);
  EXPECT_THROW(peer.restore_into(heap), ContractError);
}

TEST(Replica, RepeatedShipsConverge) {
  nvbm::Device dev(128 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = PmOctree::create(heap, PmConfig{});
  tree.refine(LocCode::root());
  ReplicaManager mgr;
  ReplicaStore peer;
  Rng rng(99);
  for (int step = 0; step < 6; ++step) {
    // random small mutation
    std::vector<LocCode> leaves;
    tree.for_each_leaf(
        [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
    const auto& victim =
        leaves[static_cast<std::size_t>(rng.below(leaves.size()))];
    if (victim.level() < 4 && rng.chance(0.5)) {
      tree.refine(victim);
    } else {
      tree.update(victim, cell(rng.uniform()));
    }
    tree.persist();
    mgr.ship(tree, peer);
    EXPECT_EQ(peer.node_count(), tree.node_count()) << "step " << step;
  }
}

}  // namespace
}  // namespace pmo::pmoctree
