// Tests for the paged B+-tree behind the Etree baseline.
#include "baseline/bptree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"

namespace pmo::baseline {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

OctantRecord rec(std::uint64_t key, double vof = 0.0, int level = 4) {
  OctantRecord r;
  r.key = key;
  r.level = static_cast<std::uint8_t>(level);
  r.data.vof = vof;
  return r;
}

TEST(Bptree, InsertFindSingle) {
  nvbm::Device dev(16 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  tree.insert(rec(42, 0.5));
  const auto found = tree.find(42);
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->data.vof, 0.5);
  EXPECT_FALSE(tree.find(43).has_value());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(Bptree, InsertReplacesExistingKey) {
  nvbm::Device dev(16 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  tree.insert(rec(7, 0.1));
  tree.insert(rec(7, 0.9));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree.find(7)->data.vof, 0.9);
}

TEST(Bptree, ManyKeysWithSplits) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  Rng rng(31);
  std::map<std::uint64_t, double> truth;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.below(1u << 30);
    const double v = rng.uniform();
    truth[key] = v;
    tree.insert(rec(key, v));
  }
  EXPECT_EQ(tree.size(), truth.size());
  EXPECT_GT(tree.stats().splits, 0u);
  EXPECT_GE(tree.stats().height, 2);
  // Spot check a sample.
  int i = 0;
  for (const auto& [key, v] : truth) {
    if (++i % 37 != 0) continue;
    const auto found = tree.find(key);
    ASSERT_TRUE(found.has_value()) << key;
    EXPECT_DOUBLE_EQ(found->data.vof, v);
  }
}

TEST(Bptree, ScanIsSortedAndComplete) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  Rng rng(77);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    const auto key = rng.below(1u << 29);
    keys.push_back(key);
    tree.insert(rec(key));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<std::uint64_t> scanned;
  tree.scan_all([&](const OctantRecord& r) {
    scanned.push_back(r.key);
    return true;
  });
  EXPECT_EQ(scanned, keys);
}

TEST(Bptree, ScanFromKeyAndEarlyStop) {
  nvbm::Device dev(16 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  for (std::uint64_t k = 0; k < 100; ++k) tree.insert(rec(k * 10));
  std::vector<std::uint64_t> seen;
  tree.scan(205, [&](const OctantRecord& r) {
    seen.push_back(r.key);
    return seen.size() < 5;
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{210, 220, 230, 240, 250}));
}

TEST(Bptree, LowerBound) {
  nvbm::Device dev(16 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  tree.insert(rec(100));
  tree.insert(rec(200));
  EXPECT_EQ(tree.lower_bound(50)->key, 100u);
  EXPECT_EQ(tree.lower_bound(100)->key, 100u);
  EXPECT_EQ(tree.lower_bound(101)->key, 200u);
  EXPECT_FALSE(tree.lower_bound(201).has_value());
}

TEST(Bptree, EraseRemovesAndReportsMissing) {
  nvbm::Device dev(16 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  for (std::uint64_t k = 0; k < 500; ++k) tree.insert(rec(k));
  EXPECT_TRUE(tree.erase(250));
  EXPECT_FALSE(tree.erase(250));
  EXPECT_FALSE(tree.find(250).has_value());
  EXPECT_EQ(tree.size(), 499u);
}

TEST(Bptree, RandomInsertEraseAgainstReference) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t", /*cache_pages=*/16);  // tiny cache: force evictions
  Rng rng(2025);
  std::map<std::uint64_t, double> truth;
  for (int op = 0; op < 20000; ++op) {
    const auto key = rng.below(3000);
    if (rng.chance(0.6)) {
      const double v = rng.uniform();
      truth[key] = v;
      tree.insert(rec(key, v));
    } else {
      const bool mine = tree.erase(key);
      const bool theirs = truth.erase(key) > 0;
      EXPECT_EQ(mine, theirs);
    }
  }
  EXPECT_EQ(tree.size(), truth.size());
  std::vector<std::pair<std::uint64_t, double>> scanned;
  tree.scan_all([&](const OctantRecord& r) {
    scanned.emplace_back(r.key, r.data.vof);
    return true;
  });
  std::vector<std::pair<std::uint64_t, double>> expect(truth.begin(),
                                                       truth.end());
  EXPECT_EQ(scanned, expect);
}

TEST(Bptree, UpdateInPlace) {
  nvbm::Device dev(16 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t");
  tree.insert(rec(5, 0.1));
  auto r = rec(5, 0.8);
  tree.update(r);
  EXPECT_DOUBLE_EQ(tree.find(5)->data.vof, 0.8);
  EXPECT_THROW(tree.update(rec(6)), ContractError);
}

TEST(Bptree, PersistsAcrossReopen) {
  nvbm::Device dev(32 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  {
    Bptree tree(fs, "db");
    for (std::uint64_t k = 0; k < 2000; ++k) tree.insert(rec(k, 0.25));
    tree.flush();
  }
  Bptree again(fs, "db");
  EXPECT_EQ(again.size(), 2000u);
  EXPECT_DOUBLE_EQ(again.find(1234)->data.vof, 0.25);
}

TEST(Bptree, TinyCacheStillCorrect) {
  nvbm::Device dev(32 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t", /*cache_pages=*/8);
  for (std::uint64_t k = 0; k < 3000; ++k) tree.insert(rec(k * 3));
  // Random-access probes across the whole key space defeat the tiny pool.
  for (std::uint64_t k = 0; k < 3000; k += 97) {
    EXPECT_TRUE(tree.find(k * 3).has_value());
  }
  const auto st = tree.stats();
  EXPECT_GT(st.page_reads, 0u);   // misses happened
  EXPECT_GT(st.page_writes, 0u);  // write-backs happened
}

TEST(Bptree, ChargesNvbmAndFsCosts) {
  nvbm::Device dev(32 << 20, dev_cfg());
  nvfs::FileStore fs(dev);
  Bptree tree(fs, "t", 8);
  for (std::uint64_t k = 0; k < 2000; ++k) tree.insert(rec(k));
  EXPECT_GT(dev.counters().modeled_ns(), 0u);
  EXPECT_GT(fs.counters().modeled_overhead_ns, 0u);
}

TEST(OctantRecordTest, CodeRoundTrip) {
  const auto code = LocCode::from_grid(5, 9, 17, 30);
  const auto r = OctantRecord::from(code, CellData{});
  EXPECT_EQ(r.code(), code);
}

}  // namespace
}  // namespace pmo::baseline
