// Gerris shim tests: the ftt_cell_* surface and simulation persistence.
#include "gfs/gfs.hpp"

#include <gtest/gtest.h>

namespace pmo::gfs {
namespace {

pmoctree::PmConfig pm_cfg() { return pmoctree::PmConfig{}; }

TEST(Gfs, RootCellGeometry) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  EXPECT_EQ(ftt_cell_level(root), 0);
  EXPECT_DOUBLE_EQ(ftt_cell_size(root), 1.0);
  double x = 0, y = 0, z = 0;
  ftt_cell_pos(root, &x, &y, &z);
  EXPECT_DOUBLE_EQ(x, 0.5);
  EXPECT_DOUBLE_EQ(y, 0.5);
  EXPECT_DOUBLE_EQ(z, 0.5);
  EXPECT_TRUE(ftt_cell_is_root(root));
  EXPECT_TRUE(ftt_cell_is_leaf(root));
}

TEST(Gfs, RefineAndChildAccess) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root, [](FttCell& cell, CellData& d) {
    d.tracer = static_cast<double>(ftt_cell_level(cell));
  });
  EXPECT_FALSE(ftt_cell_is_leaf(root));
  for (int i = 0; i < 8; ++i) {
    auto child = ftt_cell_child(root, i);
    EXPECT_EQ(ftt_cell_level(child), 1);
    EXPECT_DOUBLE_EQ(ftt_cell_data(child).tracer, 1.0);
    EXPECT_EQ(ftt_cell_parent(child).code, root.code);
  }
}

TEST(Gfs, NeighborDirections) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  auto c0 = ftt_cell_child(root, 0);
  auto right = ftt_cell_neighbor(c0, FTT_RIGHT);
  ASSERT_TRUE(right.valid());
  EXPECT_EQ(right.code, root.code.child(1));
  // Child 0 touches the -x boundary.
  EXPECT_FALSE(ftt_cell_neighbor(c0, FTT_LEFT).valid());
  auto top = ftt_cell_neighbor(c0, FTT_TOP);
  EXPECT_EQ(top.code, root.code.child(2));
  auto front = ftt_cell_neighbor(c0, FTT_FRONT);
  EXPECT_EQ(front.code, root.code.child(4));
}

TEST(Gfs, NeighborOfFinerCellIsCoarser) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  auto c0 = ftt_cell_child(root, 0);
  ftt_cell_refine(c0);
  auto fine = ftt_cell_child(c0, 1);  // +x side of child 0
  auto n = ftt_cell_neighbor(fine, FTT_RIGHT);
  ASSERT_TRUE(n.valid());
  EXPECT_EQ(n.code, root.code.child(1));  // coarser neighbor
}

TEST(Gfs, TraverseLeafsOnly) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  int visited = 0;
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [&](FttCell&, CellData&) { ++visited; });
  EXPECT_EQ(visited, 8);
  visited = 0;
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_NON_LEAFS, -1,
                    [&](FttCell&, CellData&) { ++visited; });
  EXPECT_EQ(visited, 1);  // just the root
}

TEST(Gfs, TraverseRespectsMaxDepth) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  auto c0 = ftt_cell_child(root, 0);
  ftt_cell_refine(c0);
  int visited = 0;
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_ALL, 1,
                    [&](FttCell&, CellData&) { ++visited; });
  EXPECT_EQ(visited, 9);  // root + 8 level-1
}

TEST(Gfs, TraverseWritesBackModifications) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [](FttCell&, CellData& d) { d.vof = 0.8; });
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(ftt_cell_data(ftt_cell_child(root, i)).vof, 0.8);
  }
}

TEST(Gfs, CoarsenMergesChildren) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  ftt_cell_coarsen(root);
  EXPECT_TRUE(ftt_cell_is_leaf(root));
}

TEST(Gfs, WriteAndReadReplaceSnapshots) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [](FttCell&, CellData& d) { d.pressure = 101.3; });
  EXPECT_FALSE(sim.has_saved_state());
  const auto stats = sim.gfs_simulation_write();
  EXPECT_GT(stats.nodes_total, 0u);
  EXPECT_TRUE(sim.has_saved_state());

  // Wreck state, then read back (the pm_restore path).
  ftt_cell_traverse(root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [](FttCell&, CellData& d) { d.pressure = -1.0; });
  sim.gfs_simulation_read();
  auto fresh_root = sim.root();
  ftt_cell_traverse(fresh_root, FTT_PRE_ORDER, FTT_TRAVERSE_LEAFS, -1,
                    [](FttCell&, CellData& d) {
                      EXPECT_DOUBLE_EQ(d.pressure, 101.3);
                    });
}

TEST(Gfs, HandlesStayValidAcrossCopyOnWrite) {
  // The whole point of code-based handles: a persist (which relocates
  // every octant into NVBM) must not invalidate cell handles.
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  auto c3 = ftt_cell_child(root, 3);
  sim.gfs_simulation_write();  // merge: all octants move to NVBM
  CellData d = ftt_cell_data(c3);  // handle still resolves
  d.tracer = 5.0;
  ftt_cell_set_data(c3, d);
  EXPECT_DOUBLE_EQ(ftt_cell_data(c3).tracer, 5.0);
}

TEST(Gfs, StaleHandleDetected) {
  GfsSimulation sim(32 << 20, pm_cfg());
  auto root = sim.root();
  ftt_cell_refine(root);
  auto c0 = ftt_cell_child(root, 0);
  ftt_cell_coarsen(root);  // c0 no longer exists
  EXPECT_THROW(ftt_cell_data(c0), ContractError);
}

}  // namespace
}  // namespace pmo::gfs
