// Tests for the event-timeline trace layer: ring-buffer wraparound,
// begin/end nesting, multi-thread drain determinism, the export schema
// (golden file), and the structural validator trace2summary relies on.
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace pmo::telemetry::trace {
namespace {

TraceCheck check_text(const std::string& text) {
  std::string err;
  const auto doc = json::Value::parse(text, &err);
  EXPECT_TRUE(doc.has_value()) << err;
  if (!doc) return TraceCheck{};
  return validate_chrome_trace(*doc);
}

TEST(EventBuffer, KeepsEverythingBelowCapacity) {
  EventBuffer buf(8);
  for (int i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.ts_ns = static_cast<std::uint64_t>(i);
    buf.push(std::move(ev));
  }
  EXPECT_EQ(buf.pushed(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto evs = buf.drain();
  ASSERT_EQ(evs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].ts_ns,
              static_cast<std::uint64_t>(i));
  }
}

TEST(EventBuffer, WraparoundDropsOldestFirst) {
  EventBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.ts_ns = static_cast<std::uint64_t>(i);
    buf.push(std::move(ev));
  }
  EXPECT_EQ(buf.pushed(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto evs = buf.drain();
  ASSERT_EQ(evs.size(), 4u);
  // The four newest survive, oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[i].ts_ns, 6u + i);
  }
}

// ---- track/pid layout contract --------------------------------------------

// The pid bases partition the exported timeline into non-overlapping
// process rows: recovery audit (900) < cluster rank base (1000) <=
// ranks < serve mutator (1900) < serve reader base (2000) <= lanes.
// Serving and cluster tracks never share a trace, but the bases must
// still keep every practically traced fleet collision-free — tools
// (trace2summary, Perfetto groupings) key on these constants.
TEST(TrackLayout, PidBasesNeverCollide) {
  EXPECT_LT(kRecoveryAuditPid, kTraceRankPidBase);
  EXPECT_LT(kTraceRankPidBase, kServeMutatorPid);
  EXPECT_LT(kServeMutatorPid, kServeReaderPidBase);
  // Up to 900 simulated ranks fit under the mutator row.
  const std::uint32_t kMaxRanks = kServeMutatorPid - kTraceRankPidBase;
  EXPECT_GE(kMaxRanks, 900u);
  EXPECT_LT(kTraceRankPidBase + kMaxRanks - 1, kServeMutatorPid);
  // The audit row never aliases a rank, the mutator, or a lane.
  EXPECT_LT(kRecoveryAuditPid, kTraceRankPidBase);
  // Reader lanes are open-ended upward: lane L's pid is above every
  // other base for all L >= 0.
  EXPECT_GT(kServeReaderPidBase + 0, kServeMutatorPid);
  EXPECT_GT(kServeReaderPidBase + 0, kTraceRankPidBase + kMaxRanks - 1);
}

// ---- sections (compiled in both modes) ------------------------------------

TEST(Sections, FreezeOnDestroyAndClear) {
  clear_sections();
  int value = 1;
  {
    Section s = register_section("dev0", [&value] {
      auto v = json::Value::object();
      v["writes"] = value;
      return v;
    });
    value = 7;
    const auto live = collect_sections();
    ASSERT_NE(live.find("dev0"), nullptr);
    EXPECT_EQ(live.find("dev0")->find("writes")->as_double(), 7.0);
    value = 42;
  }  // handle dies: the provider's final value (42) is frozen
  value = -1;
  const auto frozen = collect_sections();
  ASSERT_NE(frozen.find("dev0"), nullptr);
  EXPECT_EQ(frozen.find("dev0")->find("writes")->as_double(), 42.0);
  clear_sections();
  EXPECT_EQ(collect_sections().members().size(), 0u);
}

// ---- validator (compiled in both modes) -----------------------------------

TEST(Validator, AcceptsMinimalWellFormedTrace) {
  const auto check = check_text(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":1.0,"pid":0,"tid":1},
    {"name":"b","ph":"X","ts":2.0,"dur":1.0,"pid":0,"tid":1},
    {"name":"a","ph":"E","ts":4.0,"pid":0,"tid":1}
  ]})");
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 3u);
  EXPECT_EQ(check.slices, 2u);
  EXPECT_EQ(check.tracks, 1u);
}

TEST(Validator, RejectsEndWithoutBegin) {
  const auto check = check_text(
      R"({"traceEvents":[{"name":"a","ph":"E","ts":1.0,"pid":0,"tid":1}]})");
  EXPECT_FALSE(check.ok);
}

TEST(Validator, RejectsMisnestedEnd) {
  const auto check = check_text(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":1.0,"pid":0,"tid":1},
    {"name":"b","ph":"B","ts":2.0,"pid":0,"tid":1},
    {"name":"a","ph":"E","ts":3.0,"pid":0,"tid":1}
  ]})");
  EXPECT_FALSE(check.ok);
}

TEST(Validator, RejectsPartiallyOverlappingSlices) {
  const auto check = check_text(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":1.0,"dur":5.0,"pid":0,"tid":1},
    {"name":"b","ph":"X","ts":3.0,"dur":10.0,"pid":0,"tid":1}
  ]})");
  EXPECT_FALSE(check.ok);
}

TEST(Validator, RejectsUnmatchedFlow) {
  const auto fonly = check_text(
      R"({"traceEvents":[
        {"name":"f","ph":"f","ts":1.0,"pid":0,"tid":1,"id":9}]})");
  EXPECT_FALSE(fonly.ok);
  const auto sonly = check_text(
      R"({"traceEvents":[
        {"name":"f","ph":"s","ts":1.0,"pid":0,"tid":1,"id":9}]})");
  EXPECT_FALSE(sonly.ok);
}

TEST(Validator, ChecksAuditCausalOrder) {
  const auto good = check_text(R"({"traceEvents":[
    {"name":"crash","cat":"recovery","ph":"i","ts":1.0,"pid":900,"tid":1,
     "args":{"audit_seq":1}},
    {"name":"restore","cat":"recovery","ph":"i","ts":2.0,"pid":900,"tid":1,
     "args":{"audit_seq":2}}
  ]})");
  EXPECT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.audit_events, 2u);
  const auto bad = check_text(R"({"traceEvents":[
    {"name":"crash","cat":"recovery","ph":"i","ts":1.0,"pid":900,"tid":1,
     "args":{"audit_seq":2}},
    {"name":"restore","cat":"recovery","ph":"i","ts":2.0,"pid":900,"tid":1,
     "args":{"audit_seq":1}}
  ]})");
  EXPECT_FALSE(bad.ok);
}

TEST(Validator, RejectsTimestampRegressionOnTrack) {
  const auto check = check_text(R"({"traceEvents":[
    {"name":"a","ph":"i","ts":5.0,"pid":0,"tid":1},
    {"name":"b","ph":"i","ts":2.0,"pid":0,"tid":1}
  ]})");
  EXPECT_FALSE(check.ok);
}

// ---- recording (only when compiled in) ------------------------------------

#if PMO_TELEMETRY_ENABLED

std::string write_to_string(TraceSession& session) {
  std::ostringstream out;
  session.write(out);
  return out.str();
}

TEST(Session, InactiveEmittersAreNoOps) {
  EXPECT_FALSE(active());
  begin("ignored");
  end("ignored");
  instant("ignored");
  counter("ignored", 1.0);
  TraceSession session;
  EXPECT_TRUE(active());
  session.stop();
  EXPECT_FALSE(active());
  EXPECT_EQ(session.event_count(), 0u);
}

TEST(Session, CapturesSpanBeginEndPairs) {
  Registry reg;
  TraceSession session;
  {
    Span outer(reg, "persist");
    Span inner(reg, "merge");
  }
  instant("swap", "pmoctree", {{"epoch", 3.0}});
  const auto check = check_text(write_to_string(session));
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 5u);   // 2 B + 2 E + 1 i
  EXPECT_EQ(check.slices, 2u);   // persist, persist.merge
  EXPECT_EQ(check.dropped, 0u);
}

TEST(Session, SurfacesDroppedEventsInMetadata) {
  TraceSession::Options opts;
  opts.buffer_capacity = 16;
  TraceSession session(opts);
  for (int i = 0; i < 100; ++i) instant("spam");
  session.stop();
  EXPECT_EQ(session.event_count(), 16u);
  EXPECT_EQ(session.dropped_events(), 84u);
  const auto check = check_text(write_to_string(session));
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.dropped, 84u);
}

TEST(Session, AuditEventsStayInCausalOrder) {
  TraceSession session;
  audit("bench.crash", {{"step", 5.0}});
  audit("pmoctree.can_restore", {{"ok", 1.0}});
  audit("pmoctree.restore");
  const auto check = check_text(write_to_string(session));
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.audit_events, 3u);
}

TEST(Session, TrackGuardRoutesEvents) {
  TraceSession session;
  {
    TrackGuard guard(7, 2);
    EXPECT_EQ(current_track().pid, 7u);
    EXPECT_EQ(current_track().tid, 2u);
    instant("on-track-7");
  }
  instant("on-default-track");
  const auto check = check_text(write_to_string(session));
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.tracks, 2u);
}

/// The same deterministic multi-thread workload must export byte-for-byte
/// identically across sessions: drain order is (ts, seq)-sorted and the
/// workload pins every field including timestamps, so nothing about
/// thread scheduling may leak into the file.
std::string run_deterministic_workload() {
  TraceSession session;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        TraceEvent ev;
        ev.type = EventType::kInstant;
        ev.pid = 100 + static_cast<std::uint32_t>(t);
        ev.tid = 1;
        // Distinct timestamps everywhere: ties would fall back to emit
        // order, which *is* scheduling-dependent.
        ev.ts_ns = static_cast<std::uint64_t>(t * 1000 + i);
        ev.name = "t" + std::to_string(t) + "e" + std::to_string(i);
        ev.cat = "test";
        emit(std::move(ev));
      }
    });
  }
  for (auto& th : threads) th.join();
  return write_to_string(session);
}

TEST(Session, MultiThreadDrainIsDeterministic) {
  const std::string a = run_deterministic_workload();
  const std::string b = run_deterministic_workload();
  EXPECT_EQ(a, b);
  const auto check = check_text(a);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 200u);
  EXPECT_EQ(check.tracks, 4u);
}

// The trace export schema is stable: a fixed event set must serialize
// byte-for-byte like the checked-in golden file. If this fails because
// the schema deliberately changed, regenerate by dumping this session's
// write() output into tests/data/trace_golden.json — and audit
// trace2summary plus every trace consumer first.
TEST(Export, MatchesGoldenFile) {
  clear_sections();
  Section sec = register_section("nvbm0", [] {
    auto v = json::Value::object();
    v["capacity"] = 1024;
    auto buckets = json::Value::array();
    buckets.push_back(3);
    buckets.push_back(0);
    v["buckets"] = std::move(buckets);
    return v;
  });
  TraceSession session;
  name_process(0, "bench demo");
  name_process(1000, "rank 0");
  name_thread(0, 1, "compute");
  const auto ev = [](EventType type, std::uint32_t pid, std::uint32_t tid,
                     std::uint64_t ts) {
    TraceEvent e;
    e.type = type;
    e.pid = pid;
    e.tid = tid;
    e.ts_ns = ts;
    return e;
  };
  TraceEvent b = ev(EventType::kBegin, 0, 1, 1000);
  b.name = "amr.step";
  b.cat = "span";
  emit(std::move(b));
  TraceEvent x = ev(EventType::kComplete, 1000, 1, 1500);
  x.dur_ns = 2500;  // 1.5us..4us, exporter writes fixed 3-decimal us
  x.name = "Advect";
  x.cat = "cluster";
  emit(std::move(x));
  TraceEvent i = ev(EventType::kInstant, 0, 1, 2000);
  i.name = "pmoctree.version_swap";
  i.cat = "pmoctree";
  i.args.emplace_back("epoch", 3.0);
  emit(std::move(i));
  TraceEvent c = ev(EventType::kCounter, 1000, 1, 2500);
  c.name = "cluster.imbalance";
  c.cat = "counter";
  c.value = 1.25;
  emit(std::move(c));
  TraceEvent s = ev(EventType::kFlowBegin, 1000, 1, 3000);
  s.name = "step barrier";
  s.cat = "cluster";
  s.id = 1;
  emit(std::move(s));
  TraceEvent f = ev(EventType::kFlowEnd, 1000, 1, 3500);
  f.name = "step barrier";
  f.cat = "cluster";
  f.id = 1;
  emit(std::move(f));
  TraceEvent a = ev(EventType::kInstant, kRecoveryAuditPid, 1, 3800);
  a.name = "bench.crash";
  a.cat = "recovery";
  a.args.emplace_back("audit_seq", 1.0);
  emit(std::move(a));
  TraceEvent e2 = ev(EventType::kEnd, 0, 1, 4000);
  e2.name = "amr.step";
  e2.cat = "span";
  emit(std::move(e2));

  const std::string text = write_to_string(session);
  const auto check = check_text(text);
  EXPECT_TRUE(check.ok) << check.error;
  sec.reset();
  clear_sections();

  const std::string golden_path =
      std::string(PMO_TEST_DATA_DIR) + "/trace_golden.json";
  if (std::getenv("PMO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream regen(golden_path, std::ios::binary);
    regen << text;
    ASSERT_TRUE(regen.good()) << "failed to regenerate " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing " << golden_path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(text, want.str());
}

#endif  // PMO_TELEMETRY_ENABLED

}  // namespace
}  // namespace pmo::telemetry::trace
