// Differential property testing: PM-octree must behave exactly like the
// plain in-memory octree under any sequence of meshing operations — the
// persistence machinery (copy-on-write, tiers, twins, GC, transformation)
// is supposed to be invisible to the meshing semantics. Also covers the
// bottom-up (Sundar-style) construction path against top-down insertion.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "octree/octree.hpp"
#include "pmoctree/pm_octree.hpp"

namespace pmo {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kNone;
  return c;
}

using LeafMap = std::map<std::uint64_t, CellData>;

LeafMap leaves_of(octree::Octree& t) {
  LeafMap out;
  t.for_each_leaf([&](const octree::Node& n) {
    out[n.code.key() | (std::uint64_t(n.code.level()) << 60)] = n.data;
  });
  return out;
}

LeafMap leaves_of(pmoctree::PmOctree& t) {
  LeafMap out;
  t.for_each_leaf([&](const LocCode& c, const CellData& d) {
    out[c.key() | (std::uint64_t(c.level()) << 60)] = d;
  });
  return out;
}

bool equal_maps(const LeafMap& a, const LeafMap& b) {
  if (a.size() != b.size()) return false;
  for (auto ia = a.begin(), ib = b.begin(); ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first || !(ia->second == ib->second)) return false;
  }
  return true;
}

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, PmOctreeMatchesPlainOctreeUnderRandomOps) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);

  octree::Octree ref;
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  // Vary residence policy per seed: all-DRAM, all-NVBM, tiny mixed.
  pm.dram_budget_bytes =
      (seed % 3 == 0) ? 0
      : (seed % 3 == 1) ? (std::size_t{64} << 20)
                        : 24 * sizeof(pmoctree::PNode);
  auto sut = pmoctree::PmOctree::create(heap, pm);

  for (int op = 0; op < 60; ++op) {
    // Pick a random leaf of the reference tree.
    std::vector<LocCode> leaves;
    ref.for_each_leaf(
        [&](const octree::Node& n) { leaves.push_back(n.code); });
    const auto& victim =
        leaves[static_cast<std::size_t>(rng.below(leaves.size()))];
    const auto roll = rng.below(100);
    if (roll < 35 && victim.level() < 5) {
      ref.refine(ref.find(victim));
      sut.refine(victim);
    } else if (roll < 50 && victim.level() > 0) {
      // Coarsen the victim's parent when all children are leaves.
      auto* parent = ref.find(victim.parent());
      bool all_leaves = true;
      for (const auto* c : parent->children)
        all_leaves &= (c != nullptr && c->is_leaf());
      if (all_leaves) {
        ref.coarsen(parent, [](octree::Node&) {});
        // PmOctree::coarsen averages children into the parent; mirror
        // that by writing the averaged value into the reference parent.
        sut.coarsen(victim.parent());
        parent->data = *sut.find(victim.parent());
      }
    } else if (roll < 85) {
      CellData d;
      d.vof = rng.uniform();
      d.tracer = rng.uniform();
      ref.find(victim)->data = d;
      sut.update(victim, d);
    } else if (roll < 93) {
      const auto split = ref.balance();
      const auto split2 = sut.balance();
      EXPECT_EQ(split2, split) << "balance diverged at op " << op;
    } else {
      sut.persist();  // must be a meshing no-op
    }
    if (op % 10 == 9) {
      ASSERT_TRUE(equal_maps(leaves_of(ref), leaves_of(sut)))
          << "seed " << seed << " op " << op;
    }
  }
  EXPECT_TRUE(equal_maps(leaves_of(ref), leaves_of(sut)));
  // Epilogue: a final persist + restore must also match.
  sut.persist();
  auto back = pmoctree::PmOctree::restore(heap, pm);
  EXPECT_TRUE(equal_maps(leaves_of(ref), leaves_of(back)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(0, 9));

// ---------------------------------------------------------------------------
// Bottom-up construction (Sundar et al., §2)
// ---------------------------------------------------------------------------

TEST(BottomUp, MatchesTopDownForRandomTrees) {
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    octree::Octree ref;
    for (int r = 0; r < 3; ++r) {
      ref.refine_where([&](const octree::Node& n) {
        return n.code.level() < 5 && rng.chance(0.4);
      });
    }
    std::vector<LocCode> codes;
    for (auto* leaf : ref.leaves_in_morton_order())
      codes.push_back(leaf->code);
    auto built = octree::Octree::from_leaves(codes);
    EXPECT_EQ(built.node_count(), ref.node_count()) << "trial " << trial;
    EXPECT_EQ(built.leaf_count(), codes.size());
    // Same leaf set in the same order.
    std::vector<LocCode> got;
    for (auto* leaf : built.leaves_in_morton_order())
      got.push_back(leaf->code);
    EXPECT_EQ(got, codes);
  }
}

TEST(BottomUp, SingleRootLeaf) {
  auto t = octree::Octree::from_leaves({LocCode::root()});
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(BottomUp, RejectsNonCoveringLeafSets) {
  // 7 of 8 children: child 3 missing.
  std::vector<LocCode> codes;
  for (int i = 0; i < 8; ++i) {
    if (i != 3) codes.push_back(LocCode::root().child(i));
  }
  EXPECT_THROW(octree::Octree::from_leaves(codes), ContractError);
  EXPECT_THROW(octree::Octree::from_leaves({}), ContractError);
}

TEST(BottomUp, RejectsOverlappingLeaves) {
  // Root's children plus a grandchild that is already covered.
  std::vector<LocCode> codes;
  for (int i = 0; i < 8; ++i) codes.push_back(LocCode::root().child(i));
  codes.push_back(LocCode::root().child(7).child(0));
  std::sort(codes.begin(), codes.end());
  EXPECT_THROW(octree::Octree::from_leaves(codes), ContractError);
}

}  // namespace
}  // namespace pmo
