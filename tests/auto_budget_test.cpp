// Automated C0 sizing (the paper's §6 future work): the DRAM budget
// adapts to keep the NVBM tier's share of memory accesses in band.
#include <gtest/gtest.h>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"

namespace pmo::pmoctree {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

TEST(AutoBudget, GrowsUnderNvbmPressure) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 64 << 10;  // deliberately starved
  pm.auto_budget = true;
  pm.enable_transform = false;
  auto tree = PmOctree::create(heap, pm);
  for (int l = 0; l < 3; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  const auto before = tree.dram_budget();
  // NVBM-heavy steps: full-tree rewrites with persists.
  for (int s = 0; s < 5; ++s) {
    tree.for_each_leaf_mut([&](const LocCode&, CellData& d) {
      d.tracer += 1.0;
      return true;
    });
    tree.persist();
  }
  EXPECT_GT(tree.dram_budget(), before);
  EXPECT_LE(tree.dram_budget(), pm.auto_budget_max_bytes);
}

TEST(AutoBudget, ShrinksWhenDramOverProvisioned) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 8 << 20;  // far more than the tiny tree needs
  pm.auto_budget = true;
  pm.auto_budget_min_bytes = 16 << 10;
  // The persist/GC machinery puts a small NVBM access floor (~12% for a
  // tiny tree) under every workload; set the shrink mark above it.
  pm.auto_budget_low = 0.2;
  pm.enable_transform = false;
  auto tree = PmOctree::create(heap, pm);
  for (int l = 0; l < 2; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  const auto before = tree.dram_budget();
  // DRAM-dominated steps: many solver sweeps, barely any change to
  // persist — the NVBM share of accesses stays tiny.
  for (int s = 0; s < 5; ++s) {
    for (int sweep = 0; sweep < 20; ++sweep) {
      tree.for_each_leaf_mut([&](const LocCode& c, CellData& d) {
        if (c.child_index() != 0) return false;
        d.tracer += 1.0;
        return true;
      });
    }
    tree.persist();
  }
  EXPECT_LT(tree.dram_budget(), before);
  EXPECT_GE(tree.dram_budget(), pm.auto_budget_min_bytes);
}

TEST(AutoBudget, DisabledBudgetStaysFixed) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 1 << 20;
  pm.auto_budget = false;
  auto tree = PmOctree::create(heap, pm);
  tree.refine(LocCode::root());
  for (int s = 0; s < 3; ++s) tree.persist();
  EXPECT_EQ(tree.dram_budget(), std::size_t{1} << 20);
}

TEST(AutoBudget, ReducesModeledTimeOnStarvedWorkload) {
  // End-to-end: starting starved, the controller should land closer to
  // the fixed-large configuration's performance than the fixed-small one.
  auto run = [](bool adapt, std::size_t budget) {
    nvbm::Device dev(256 << 20, dev_cfg());
    nvbm::Heap heap(dev);
    PmConfig pm;
    pm.dram_budget_bytes = budget;
    pm.auto_budget = adapt;
    pm.enable_transform = false;
    auto tree = PmOctree::create(heap, pm);
    for (int l = 0; l < 3; ++l)
      tree.refine_where(
          [](const LocCode&, const CellData&) { return true; });
    for (int s = 0; s < 8; ++s) {
      tree.for_each_leaf_mut([&](const LocCode&, CellData& d) {
        d.tracer += 1.0;
        return true;
      });
      tree.persist();
    }
    return tree.modeled_ns();
  };
  const auto starved = run(false, 64 << 10);
  const auto adaptive = run(true, 64 << 10);
  EXPECT_LT(adaptive, starved);
}

}  // namespace
}  // namespace pmo::pmoctree
