// Unit tests for the execution layer (src/exec): parallel_for semantics,
// context ids, exception propagation and the nested-call rejection.
#include "exec/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace pmo::exec {
namespace {

TEST(ExecPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(ExecPool, SizeCountsCallerAndClampsToOne) {
  ThreadPool p1(1);
  EXPECT_EQ(p1.size(), 1);
  ThreadPool p4(4);
  EXPECT_EQ(p4.size(), 4);
  ThreadPool pneg(-3);  // <= 1 means inline
  EXPECT_EQ(pneg.size(), 1);
  ThreadPool pdefault(0);  // 0 means hardware_threads()
  EXPECT_EQ(pdefault.size(), hardware_threads());
}

TEST(ExecPool, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ExecPool, SingleItemRunsInlineOnCaller) {
  ThreadPool pool(4);
  int calls = 0;
  int ctx = -1;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ctx = context_id();
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ctx, 0);  // n == 1 runs on the calling thread
}

TEST(ExecPool, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kN = 1000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecPool, ContextIdsWithinPoolSize) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<int> seen;
  pool.parallel_for(256, [&](std::size_t) {
    const int id = context_id();
    EXPECT_GE(id, 0);
    EXPECT_LT(id, pool.size());
    std::lock_guard<std::mutex> lk(mu);
    seen.insert(id);
  });
  EXPECT_FALSE(seen.empty());
  // Outside any parallel_for the caller is context 0 again.
  EXPECT_EQ(context_id(), 0);
}

TEST(ExecPool, FirstExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must quiesce and accept the next job.
  std::atomic<int> calls{0};
  pool.parallel_for(50, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 50);
}

TEST(ExecPool, InlinePathPropagatesException) {
  ThreadPool pool(1);  // no workers: inline path
  EXPECT_THROW(pool.parallel_for(
                   5, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  int calls = 0;
  pool.parallel_for(3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ExecPool, NestedParallelForIsRejected) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> rejected{0};
  outer.parallel_for(8, [&](std::size_t) {
    try {
      inner.parallel_for(4, [](std::size_t) {});
    } catch (const std::logic_error&) {
      rejected.fetch_add(1);
    }
  });
  EXPECT_EQ(rejected.load(), 8);
  // Nesting is rejected even on the inline path (pool of 1 inside a task).
  ThreadPool one(1);
  outer.parallel_for(1, [&](std::size_t) {
    EXPECT_THROW(one.parallel_for(1, [](std::size_t) {}), std::logic_error);
  });
}

}  // namespace
}  // namespace pmo::exec
