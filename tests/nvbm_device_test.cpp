// Tests for the NVBM device emulator: accounting, latency model, store
// buffer and crash simulation.
#include "nvbm/device.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <vector>

namespace pmo::nvbm {
namespace {

Config fast_config() {
  Config c;
  c.latency_mode = LatencyMode::kModeled;
  return c;
}

TEST(Device, ReadWriteRoundTrips) {
  Device dev(1 << 16, fast_config());
  const std::uint64_t value = 0xdeadbeefcafef00dull;
  dev.store(128, value);
  EXPECT_EQ(dev.load<std::uint64_t>(128), value);
}

TEST(Device, RangeChecked) {
  Device dev(4096, fast_config());
  std::uint64_t v = 0;
  EXPECT_THROW(dev.write(4090, &v, 8), ContractError);
  EXPECT_THROW(dev.read(4096, &v, 1), ContractError);
  EXPECT_NO_THROW(dev.write(4088, &v, 8));
}

TEST(Device, CountsReadsAndWrites) {
  Device dev(1 << 16, fast_config());
  std::uint32_t v = 7;
  dev.write(0, &v, sizeof(v));
  dev.write(64, &v, sizeof(v));
  dev.read(0, &v, sizeof(v));
  const auto& c = dev.counters();
  EXPECT_EQ(c.writes, 2u);
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.bytes_written, 8u);
  EXPECT_EQ(c.bytes_read, 4u);
  EXPECT_NEAR(c.write_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(Device, ModeledLatencyUsesTable2Numbers) {
  Config cfg = fast_config();  // read 100ns, write 150ns per line
  Device dev(1 << 16, cfg);
  std::uint32_t v = 1;
  dev.write(0, &v, sizeof(v));  // 1 line
  dev.read(0, &v, sizeof(v));   // 1 line
  EXPECT_EQ(dev.counters().modeled_write_ns, 150u);
  EXPECT_EQ(dev.counters().modeled_read_ns, 100u);
}

TEST(Device, MultiLineAccessChargesPerLine) {
  Device dev(1 << 16, fast_config());
  std::vector<std::byte> buf(200);
  dev.write(32, buf.data(), buf.size());  // spans lines 0..3 => 4 lines
  EXPECT_EQ(dev.counters().lines_written, 4u);
  EXPECT_EQ(dev.counters().modeled_write_ns, 4u * 150u);
}

TEST(Device, LatencyModeNoneChargesNothing) {
  Config cfg;
  cfg.latency_mode = LatencyMode::kNone;
  Device dev(1 << 16, cfg);
  std::uint64_t v = 0;
  dev.write(0, &v, 8);
  EXPECT_EQ(dev.counters().modeled_ns(), 0u);
  EXPECT_EQ(dev.counters().writes, 1u);  // still counted
}

TEST(Device, InjectedLatencyActuallySpins) {
  Config cfg;
  cfg.latency_mode = LatencyMode::kInjected;
  cfg.write_ns = 30000;  // large enough to measure
  Device dev(1 << 16, cfg);
  std::uint64_t v = 1;
  {
    const auto t0 = std::chrono::steady_clock::now();
    dev.write(0, &v, 8);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_GE(ns, 20000);
  }
}

TEST(Device, WearTracking) {
  Config cfg = fast_config();
  cfg.track_wear = true;
  Device dev(1 << 16, cfg);
  std::uint64_t v = 0;
  for (int i = 0; i < 10; ++i) dev.write(0, &v, 8);
  dev.write(4096, &v, 8);
  EXPECT_EQ(dev.max_wear(), 10u);
  EXPECT_NEAR(dev.mean_wear(), (10.0 + 1.0) / 2.0, 1e-12);
}

TEST(Device, DirtyLinesTrackedAndFlushed) {
  Config cfg = fast_config();
  cfg.crash_sim = true;
  Device dev(1 << 16, cfg);
  std::uint64_t v = 42;
  dev.write(0, &v, 8);
  dev.write(128, &v, 8);
  EXPECT_EQ(dev.dirty_lines(), 2u);
  dev.flush(0, 8);
  EXPECT_EQ(dev.dirty_lines(), 1u);
  dev.flush_all();
  EXPECT_EQ(dev.dirty_lines(), 0u);
}

TEST(Device, FlushedDataSurvivesCrash) {
  Config cfg = fast_config();
  cfg.crash_sim = true;
  Device dev(1 << 16, cfg);
  const std::uint64_t value = 0x1234567890abcdefull;
  dev.store(256, value);
  dev.flush(256, 8);
  dev.persist_barrier();
  Rng rng(1);
  dev.simulate_crash(rng, /*survive_p=*/0.0);
  EXPECT_EQ(dev.load<std::uint64_t>(256), value);
}

TEST(Device, UnflushedDataLostWhenNothingSurvives) {
  Config cfg = fast_config();
  cfg.crash_sim = true;
  Device dev(1 << 16, cfg);
  const std::uint64_t value = 0x1111111111111111ull;
  dev.store(256, value);  // never flushed
  Rng rng(1);
  const auto lost = dev.simulate_crash(rng, /*survive_p=*/0.0);
  EXPECT_EQ(lost, 1u);
  EXPECT_EQ(dev.load<std::uint64_t>(256), 0u);
}

TEST(Device, UnflushedDataMaySurviveEviction) {
  Config cfg = fast_config();
  cfg.crash_sim = true;
  Device dev(1 << 16, cfg);
  const std::uint64_t value = 0x2222222222222222ull;
  dev.store(256, value);
  Rng rng(1);
  dev.simulate_crash(rng, /*survive_p=*/1.0);
  EXPECT_EQ(dev.load<std::uint64_t>(256), value);
}

TEST(Device, CrashIsAdversarialPerLine) {
  // With survive_p = 0.5 over many lines, some survive and some do not.
  Config cfg = fast_config();
  cfg.crash_sim = true;
  Device dev(1 << 20, cfg);
  const std::uint64_t value = ~0ull;
  for (int i = 0; i < 200; ++i)
    dev.store(static_cast<std::uint64_t>(i) * 64, value);
  Rng rng(33);
  const auto lost = dev.simulate_crash(rng, 0.5);
  EXPECT_GT(lost, 50u);
  EXPECT_LT(lost, 150u);
}

TEST(Device, CrashRequiresCrashSim) {
  Device dev(1 << 16, fast_config());
  Rng rng(1);
  EXPECT_THROW(dev.simulate_crash(rng), ContractError);
}

TEST(Device, ResetCountersClears) {
  Device dev(1 << 16, fast_config());
  std::uint64_t v = 0;
  dev.write(0, &v, 8);
  dev.reset_counters();
  EXPECT_EQ(dev.counters().writes, 0u);
  EXPECT_EQ(dev.counters().modeled_ns(), 0u);
}

TEST(Device, WearSurvivesResetCounters) {
  // reset_counters() deliberately keeps per-line wear: wear models device
  // endurance, which no software event can undo. Benches rely on this to
  // reset access accounting mid-run while endurance keeps accumulating.
  Config cfg = fast_config();
  cfg.track_wear = true;
  Device dev(1 << 16, cfg);
  std::uint64_t v = 0;
  for (int i = 0; i < 5; ++i) dev.write(0, &v, 8);
  dev.reset_counters();
  EXPECT_EQ(dev.counters().writes, 0u);
  EXPECT_EQ(dev.max_wear(), 5u);
}

TEST(Device, ResetAllClearsWearToo) {
  Config cfg = fast_config();
  cfg.track_wear = true;
  Device dev(1 << 16, cfg);
  std::uint64_t v = 0;
  for (int i = 0; i < 5; ++i) dev.write(0, &v, 8);
  dev.reset_all();
  EXPECT_EQ(dev.counters().writes, 0u);
  EXPECT_EQ(dev.max_wear(), 0u);
  EXPECT_EQ(dev.mean_wear(), 0.0);
}

TEST(Device, WearBucketsSurviveResetCountersNotResetAll) {
  // The bucketed wear map obeys the same contract as per-line wear:
  // reset_counters() keeps it (endurance models the medium, software
  // cannot undo it), reset_all() wipes it (fresh device).
  Device dev(1 << 16, fast_config());
  std::uint64_t v = 0;
  dev.write(0, &v, 8);               // first line -> bucket 0
  dev.write((1 << 16) - 8, &v, 8);   // last line -> bucket 63
  EXPECT_EQ(dev.wear_buckets().front(), 1u);
  EXPECT_EQ(dev.wear_buckets().back(), 1u);
  dev.reset_counters();
  EXPECT_EQ(dev.counters().writes, 0u);
  EXPECT_EQ(dev.wear_buckets().front(), 1u);
  EXPECT_EQ(dev.wear_buckets().back(), 1u);
  dev.reset_all();
  EXPECT_EQ(dev.wear_buckets().front(), 0u);
  EXPECT_EQ(dev.wear_buckets().back(), 0u);
}

TEST(Device, WearHeatmapJsonShape) {
  Device dev(1 << 16, fast_config());
  std::uint64_t v = 0;
  dev.write(0, &v, 8);
  dev.write(64, &v, 8);
  const auto heat = dev.wear_heatmap_json();
  EXPECT_EQ(heat.find("capacity")->as_double(), 65536.0);
  EXPECT_EQ(heat.find("total_line_writes")->as_double(), 2.0);
  EXPECT_EQ(heat.find("max_bucket")->as_double(), 2.0);
  ASSERT_NE(heat.find("buckets"), nullptr);
  EXPECT_EQ(heat.find("buckets")->size(), Device::kWearBuckets);
  EXPECT_EQ(heat.find("buckets")->at(0).as_double(), 2.0);
}

#if PMO_TELEMETRY_ENABLED
TEST(Device, PublishExportsGauges) {
  Config cfg = fast_config();
  cfg.track_wear = true;
  Device dev(1 << 16, cfg);
  std::uint64_t v = 0;
  dev.write(0, &v, 8);
  dev.read(0, &v, 8);

  telemetry::Registry reg;
  dev.publish(reg, "dev");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauge("dev.writes"), 1.0);
  EXPECT_EQ(snap.gauge("dev.reads"), 1.0);
  EXPECT_GT(snap.gauge("dev.modeled_write_ns"), 0.0);
  EXPECT_EQ(snap.gauge("dev.max_wear"), 1.0);
}
#endif  // PMO_TELEMETRY_ENABLED

}  // namespace
}  // namespace pmo::nvbm
