// Partitioner and cluster-simulator tests: SFC partitioning correctness
// and the scaling shapes the figure benches rely on.
#include <gtest/gtest.h>

#include <memory>

#include "amr/pm_backend.hpp"
#include "cluster/cluster_sim.hpp"

namespace pmo::cluster {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

std::vector<LocCode> uniform_leaves(int level) {
  std::vector<LocCode> out;
  const std::uint32_t side = 1u << level;
  for (std::uint32_t z = 0; z < side; ++z)
    for (std::uint32_t y = 0; y < side; ++y)
      for (std::uint32_t x = 0; x < side; ++x)
        out.push_back(LocCode::from_grid(level, x, y, z));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Partition, SplitsEvenly) {
  const auto p = partition_leaves(uniform_leaves(2), 4);  // 64 leaves
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.rank_size(r), 16u);
  EXPECT_EQ(p.range_begin.front(), 0u);
  EXPECT_EQ(p.range_begin.back(), 64u);
}

TEST(Partition, OwnerOfIndexMatchesRanges) {
  const auto p = partition_leaves(uniform_leaves(2), 3);
  for (std::size_t i = 0; i < p.leaves.size(); ++i) {
    const int owner = p.owner_of_index(i);
    EXPECT_GE(i, p.range_begin[static_cast<std::size_t>(owner)]);
    EXPECT_LT(i, p.range_begin[static_cast<std::size_t>(owner) + 1]);
  }
}

TEST(Partition, OwnerOfCodeFindsCoveringLeaf) {
  const auto p = partition_leaves(uniform_leaves(1), 2);
  // A deep probe inside leaf (1;1,1,1) (the last in Morton order) must
  // belong to the rank owning that leaf.
  const auto probe = LocCode::from_grid(1, 1, 1, 1).child(7);
  EXPECT_EQ(p.owner_of(probe), p.owner_of_index(7));
  EXPECT_EQ(p.owner_of(LocCode::from_grid(1, 0, 0, 0)), 0);
}

TEST(Partition, SinglRankOwnsEverything) {
  const auto p = partition_leaves(uniform_leaves(2), 1);
  const auto stats = analyze_partition(p, {});
  EXPECT_EQ(stats.counts[0], 64u);
  EXPECT_EQ(stats.boundary[0], 0u);  // no remote neighbors
  EXPECT_DOUBLE_EQ(stats.imbalance, 1.0);
}

TEST(Partition, BoundaryDetectedAcrossRanks) {
  const auto p = partition_leaves(uniform_leaves(2), 4);
  const auto stats = analyze_partition(p, {});
  std::size_t total_boundary = 0;
  for (const auto b : stats.boundary) total_boundary += b;
  EXPECT_GT(total_boundary, 0u);
  // Not every cell is a boundary cell.
  EXPECT_LT(total_boundary, p.leaves.size());
}

TEST(Partition, MigrationCountedAgainstPreviousOwners) {
  const auto leaves = uniform_leaves(2);
  const auto p1 = partition_leaves(leaves, 4);
  const auto prev = owner_map(p1);
  // Same leaves, different rank count: owners shift.
  const auto p2 = partition_leaves(leaves, 8);
  const auto stats = analyze_partition(p2, prev);
  EXPECT_GT(stats.migrated, 0u);
  // Identical partition: zero migration.
  const auto stats_same = analyze_partition(p1, prev);
  EXPECT_EQ(stats_same.migrated, 0u);
}

// ---------------------------------------------------------------------------
// ClusterSim scaling shapes
// ---------------------------------------------------------------------------

struct SimRun {
  double total_s;
  double partition_pct;
};

SimRun run_sim(int procs, double scale, int steps = 4) {
  nvbm::Device dev(512 << 20, dev_cfg());
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 8 << 20;
  amr::PmOctreeBackend mesh(dev, pm);
  amr::DropletParams p;
  p.min_level = 2;
  p.max_level = 3;
  amr::DropletWorkload wl(p);
  ClusterConfig cfg;
  cfg.procs = procs;
  cfg.steps = steps;
  cfg.scale = scale;
  ClusterSim sim(cfg);
  const auto res = sim.run(mesh, wl);
  return {res.total_s, res.breakdown.percent("Partition")};
}

TEST(ClusterSim, WeakScalingTimeGrowsWithProcs) {
  // Weak scaling: per-rank elements constant => scale = procs.
  const auto p1 = run_sim(1, 1.0);
  const auto p64 = run_sim(64, 64.0);
  const auto p512 = run_sim(512, 512.0);
  EXPECT_GT(p64.total_s, p1.total_s);
  EXPECT_GT(p512.total_s, p64.total_s);
}

TEST(ClusterSim, PartitionShareGrowsWithProcs) {
  // Fig. 7: Partition 0% at 1 proc, grows to dominate at 1000.
  const auto p1 = run_sim(1, 1.0);
  const auto p64 = run_sim(64, 64.0);
  const auto p1000 = run_sim(1000, 1000.0);
  EXPECT_DOUBLE_EQ(p1.partition_pct, 0.0);
  EXPECT_GT(p64.partition_pct, 0.0);
  EXPECT_GT(p1000.partition_pct, p64.partition_pct);
}

TEST(ClusterSim, StrongScalingTimeShrinksWithProcs) {
  // Fixed global size (scale constant), more ranks => faster.
  const auto p8 = run_sim(8, 64.0);
  const auto p64 = run_sim(64, 64.0);
  EXPECT_LT(p64.total_s, p8.total_s);
}

TEST(ClusterSim, ReportsGlobalElements) {
  nvbm::Device dev(256 << 20, dev_cfg());
  amr::PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  amr::DropletParams p;
  p.min_level = 1;
  p.max_level = 3;
  amr::DropletWorkload wl(p);
  ClusterConfig cfg;
  cfg.procs = 10;
  cfg.steps = 2;
  cfg.scale = 100.0;
  ClusterSim sim(cfg);
  const auto res = sim.run(mesh, wl);
  EXPECT_EQ(res.real_leaves, mesh.leaf_count());
  EXPECT_DOUBLE_EQ(res.global_elements, 100.0 * res.real_leaves);
  EXPECT_EQ(res.step_seconds.size(), 2u);
  EXPECT_GE(res.max_imbalance, 1.0);
}

TEST(CommModel, CollectiveGrowsLogarithmically) {
  CommConfig c;
  EXPECT_DOUBLE_EQ(collective_time(c, 1, 1000), 0.0);
  const auto t2 = collective_time(c, 2, 1000);
  const auto t1024 = collective_time(c, 1024, 1000);
  EXPECT_NEAR(t1024 / t2, 10.0, 1e-9);
}

TEST(CommModel, PartitionTimeMatchesPaperGrowth) {
  // Calibration check: with fixed per-rank migration, the 6 -> 1000 proc
  // cost ratio should be roughly the paper's 6.4x (2.2s -> 14s per step).
  CommConfig c;
  const double t6 = partition_time(c, 6, 1e6, 150000, 3e-6, 160);
  const double t1000 = partition_time(c, 1000, 1e6, 150000, 3e-6, 160);
  EXPECT_GT(t1000 / t6, 4.0);
  EXPECT_LT(t1000 / t6, 9.0);
}

TEST(CommModel, BalanceCommImprovesWithFewerBoundaries) {
  CommConfig c;
  EXPECT_LT(balance_comm_time(c, 64, 100, 160),
            balance_comm_time(c, 64, 10000, 160));
  EXPECT_DOUBLE_EQ(balance_comm_time(c, 1, 10000, 160), 0.0);
}

}  // namespace
}  // namespace pmo::cluster
