// Versioning and persistence semantics: copy-on-write isolation between
// V_{i-1} and V_i, overlap accounting, GC, restore.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "pmoctree/pm_octree.hpp"

namespace pmo::pmoctree {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

struct Fixture {
  explicit Fixture(PmConfig pm = PmConfig{}, std::size_t cap = 128 << 20)
      : device(cap, dev_cfg()), heap(device), config(pm) {}
  nvbm::Device device;
  nvbm::Heap heap;
  PmConfig config;
};

CellData cell(double vof, double tracer = 0.0) {
  CellData d;
  d.vof = vof;
  d.tracer = tracer;
  return d;
}

std::map<std::uint64_t, double> snapshot_prev(PmOctree& tree) {
  std::map<std::uint64_t, double> out;
  tree.for_each_leaf_prev([&](const LocCode& c, const CellData& d) {
    out[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] = d.vof;
  });
  return out;
}

std::map<std::uint64_t, double> snapshot_cur(PmOctree& tree) {
  std::map<std::uint64_t, double> out;
  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    out[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] = d.vof;
  });
  return out;
}

TEST(Persist, FirstPersistCreatesPreviousVersion) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(2, 1, 1, 1), cell(0.5));
  EXPECT_FALSE(tree.has_prev_version());
  const auto stats = tree.persist();
  EXPECT_TRUE(tree.has_prev_version());
  EXPECT_EQ(stats.nodes_shared, 0u);  // nothing could be shared yet
  EXPECT_GT(stats.nodes_total, 0u);
  // The persisted version lives entirely in NVBM; the working version may
  // keep its hot octants in DRAM (the C0 tree is sticky across persists).
  EXPECT_TRUE(tree.previous_root().in_nvbm());
  std::size_t prev_leaves = 0;
  tree.for_each_leaf_prev(
      [&](const LocCode&, const CellData&) { ++prev_leaves; });
  EXPECT_EQ(prev_leaves, tree.leaf_count());
}

TEST(Persist, MergeWritesDurableTwinsForDramNodes) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(3, 2, 4, 6), cell(0.9));
  const auto dram_before = tree.stats().dram_nodes;
  EXPECT_GT(dram_before, 0u);
  const auto stats = tree.persist();
  // Every DRAM octant got an NVBM twin...
  EXPECT_EQ(stats.merged_from_dram, dram_before);
  // ...while the working copies stayed resident in DRAM (sticky C0).
  const auto s = tree.stats();
  EXPECT_EQ(s.dram_nodes, dram_before);
  // The persisted version is fully NVBM: restoring sees every octant.
  auto back = PmOctree::restore(fx.heap, fx.config);
  EXPECT_EQ(back.node_count(), s.nodes);
}

TEST(Persist, PreviousVersionImmuneToNewMutations) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  const auto code = LocCode::from_grid(2, 1, 2, 3);
  tree.insert(code, cell(0.25));
  tree.persist();
  const auto before = snapshot_prev(tree);

  // Mutate V_i heavily: update, refine elsewhere, remove a subtree.
  tree.update(code, cell(0.99));
  tree.refine(LocCode::from_grid(1, 0, 0, 0));
  tree.coarsen(code.parent());

  EXPECT_EQ(snapshot_prev(tree), before);  // V_{i-1} is untouched
  EXPECT_NE(snapshot_cur(tree), before);
}

TEST(Persist, UpdateOfSharedOctantIsCopyOnWrite) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  const auto code = LocCode::from_grid(1, 1, 1, 1);
  tree.insert(code, cell(0.4));
  tree.persist();
  tree.update(code, cell(0.8));
  // Both versions observable with their own values.
  double prev_val = -1.0;
  tree.for_each_leaf_prev([&](const LocCode& c, const CellData& d) {
    if (c == code) prev_val = d.vof;
  });
  EXPECT_DOUBLE_EQ(prev_val, 0.4);
  EXPECT_DOUBLE_EQ(tree.find(code)->vof, 0.8);
}

TEST(Persist, InPlaceUpdateForPrivateNodes) {
  // A node created after the last persist is private: updating it twice
  // must not allocate more NVBM objects.
  PmConfig pm;
  pm.dram_budget_bytes = 0;  // all NVBM, the interesting tier
  pm.gc_on_persist = false;
  Fixture fx(pm);
  auto tree = PmOctree::create(fx.heap, pm);
  const auto code = LocCode::from_grid(2, 3, 2, 1);
  tree.insert(code, cell(0.1));
  const auto live_before = fx.heap.stats().live_objects;
  tree.update(code, cell(0.2));
  tree.update(code, cell(0.3));
  EXPECT_EQ(fx.heap.stats().live_objects, live_before);
  EXPECT_DOUBLE_EQ(tree.find(code)->vof, 0.3);
}

TEST(Persist, OverlapRatioReflectsSharing) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  for (int i = 0; i < 8; ++i)
    tree.insert(LocCode::root().child(i), cell(0.1 * i));
  tree.persist();
  // Touch exactly one leaf; everything else stays shared.
  tree.update(LocCode::root().child(0), cell(0.77));
  const auto stats = tree.persist();
  // 9 octants in V_i; the update copied child 0 and (by path copying) the
  // root, so 7 remain shared.
  EXPECT_EQ(stats.nodes_total, 9u);
  EXPECT_EQ(stats.nodes_shared, 7u);
  EXPECT_NEAR(stats.overlap_ratio, 7.0 / 9.0, 1e-12);
}

TEST(Persist, NoChangePersistIsNearlyFree) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(2, 2, 2, 2), cell(0.5));
  tree.persist();
  const auto stats = tree.persist();  // nothing changed in between
  EXPECT_DOUBLE_EQ(stats.overlap_ratio, 1.0);
  EXPECT_EQ(stats.merged_from_dram, 0u);
  EXPECT_EQ(stats.delta_bytes, 0u);
}

TEST(Persist, SharedOctantsStoredOnce) {
  // Fig. 3's memory claim: two versions overlapping at ratio r cost far
  // less than two full copies. Run NVBM-only so version sharing is the
  // only storage mechanism in play.
  PmConfig pm;
  pm.dram_budget_bytes = 0;
  Fixture fx(pm);
  auto tree = PmOctree::create(fx.heap, pm);
  for (int i = 0; i < 8; ++i)
    tree.insert(LocCode::root().child(i).child(i), cell(0.1));
  tree.persist();
  const auto nodes = tree.node_count();
  tree.update(LocCode::root().child(0).child(0), cell(0.5));
  const auto s = tree.stats();
  // Unique physical nodes = V_i nodes + only the CoW'd path of V_{i-1}
  // (here: old root, old child0, old grandchild).
  EXPECT_EQ(s.nodes, nodes);
  EXPECT_EQ(s.unique_physical_nodes, nodes + 3);
}

TEST(Persist, GcReclaimsSupersededVersion) {
  PmConfig pm;
  pm.gc_on_persist = false;
  Fixture fx(pm);
  auto tree = PmOctree::create(fx.heap, pm);
  tree.insert(LocCode::from_grid(2, 0, 1, 0), cell(0.5));
  tree.persist();
  tree.update(LocCode::from_grid(2, 0, 1, 0), cell(0.6));
  const auto before = fx.heap.stats().live_objects;
  const auto stats = tree.persist();  // supersedes the old version
  EXPECT_EQ(stats.gc_freed, 0u);      // gc disabled
  EXPECT_GT(stats.tombstoned, 0u);
  const auto freed = tree.gc();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(fx.heap.stats().live_objects, before + stats.merged_from_dram);
  // All remaining objects are exactly the reachable set.
  EXPECT_EQ(fx.heap.stats().live_objects, tree.node_count());
}

TEST(Persist, AutoGcOnPersistKeepsHeapTight) {
  Fixture fx;  // gc_on_persist defaults to true
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(2, 1, 1, 0), cell(0.2));
  for (int step = 0; step < 10; ++step) {
    tree.update(LocCode::from_grid(2, 1, 1, 0),
                cell(0.2 + 0.05 * step));
    tree.persist();
  }
  // Two-version bound: live objects can never exceed 2x the tree size.
  EXPECT_LE(fx.heap.stats().live_objects, 2 * tree.node_count());
}

TEST(Persist, RestoreReturnsLastPersistedState) {
  Fixture fx;
  {
    auto tree = PmOctree::create(fx.heap, fx.config);
    tree.insert(LocCode::from_grid(2, 3, 1, 2), cell(0.42, 7.0));
    tree.persist();
    // Post-persist mutations that are NOT persisted:
    tree.update(LocCode::from_grid(2, 3, 1, 2), cell(0.99));
    tree.refine(LocCode::from_grid(1, 0, 0, 0));
  }  // "process exits" without persisting

  auto back = PmOctree::restore(fx.heap, fx.config);
  const auto v = back.find(LocCode::from_grid(2, 3, 1, 2));
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->vof, 0.42);
  EXPECT_DOUBLE_EQ(v->tracer, 7.0);
  // The unpersisted refinement of (1;0,0,0) is gone after restore.
  EXPECT_FALSE(back.contains(LocCode::from_grid(2, 0, 0, 0)));
}

TEST(Persist, RestoreIsO1InNodeReads) {
  Fixture fx;
  {
    auto tree = PmOctree::create(fx.heap, fx.config);
    for (int l = 0; l < 3; ++l)
      tree.refine_where(
          [](const LocCode&, const CellData&) { return true; });
    tree.persist();
  }
  fx.device.reset_counters();
  auto back = PmOctree::restore(fx.heap, fx.config);
  // Restoring must not traverse the tree: near-instantaneous recovery.
  EXPECT_LT(fx.device.counters().reads, 10u);
  EXPECT_TRUE(back.has_prev_version());
}

TEST(Persist, RestoreThenMutateCopiesOnWrite) {
  Fixture fx;
  {
    auto tree = PmOctree::create(fx.heap, fx.config);
    tree.insert(LocCode::from_grid(1, 1, 0, 0), cell(0.3));
    tree.persist();
  }
  auto back = PmOctree::restore(fx.heap, fx.config);
  back.update(LocCode::from_grid(1, 1, 0, 0), cell(0.6));
  double prev = -1;
  back.for_each_leaf_prev([&](const LocCode& c, const CellData& d) {
    if (c == LocCode::from_grid(1, 1, 0, 0)) prev = d.vof;
  });
  EXPECT_DOUBLE_EQ(prev, 0.3);
  EXPECT_DOUBLE_EQ(back.find(LocCode::from_grid(1, 1, 0, 0))->vof, 0.6);
}

TEST(Persist, RepeatedPersistRestoreCycles) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(2, 2, 0, 2), cell(0.0));
  for (int step = 1; step <= 5; ++step) {
    tree.update(LocCode::from_grid(2, 2, 0, 2),
                cell(static_cast<double>(step)));
    tree.persist();
    auto probe = PmOctree::restore(fx.heap, fx.config);
    EXPECT_DOUBLE_EQ(probe.find(LocCode::from_grid(2, 2, 0, 2))->vof,
                     static_cast<double>(step));
  }
}

TEST(Persist, DeltaBytesTracksChangedNodes) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  for (int i = 0; i < 8; ++i)
    tree.insert(LocCode::root().child(i), cell(0.0));
  tree.persist();
  tree.update(LocCode::root().child(3), cell(0.5));
  const auto stats = tree.persist();
  // Changed: child 3 and root (path copy) => 2 nodes.
  EXPECT_EQ(stats.delta_bytes, 2 * sizeof(PNode));
}

TEST(Persist, EpochAdvancesEachPersist) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  const auto e0 = tree.epoch();
  tree.persist();
  tree.persist();
  EXPECT_EQ(tree.epoch(), e0 + 2);
}

}  // namespace
}  // namespace pmo::pmoctree
