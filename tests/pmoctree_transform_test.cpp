// Feature-directed sampling and dynamic layout transformation (§3.3).
#include <gtest/gtest.h>

#include <vector>

#include "pmoctree/pm_octree.hpp"

namespace pmo::pmoctree {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}


/// Builds a tree refined uniformly to `levels`, with the octant region
/// under root child `hot_child` marked hot (vof = 1).
PmOctree build_tree(nvbm::Heap& heap, PmConfig pm, int levels,
                    int hot_child) {
  auto tree = PmOctree::create(heap, pm);
  for (int l = 0; l < levels; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  const auto hot = LocCode::root().child(hot_child);
  tree.for_each_leaf_mut([&](const LocCode& c, CellData& d) {
    d.vof = hot.contains(c) ? 1.0 : 0.0;
    return true;
  });
  return tree;
}

TEST(SubtreeLevel, FollowsEquationOne) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 64 * sizeof(PNode);  // log8(64) = 2
  auto tree = build_tree(heap, pm, 3, 0);     // depth 3
  EXPECT_EQ(tree.subtree_level(), 1);         // 3 - 2
}

TEST(SubtreeLevel, ClampedToValidRange) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 1 << 30;  // huge: whole tree fits
  auto tree = build_tree(heap, pm, 2, 0);
  EXPECT_EQ(tree.subtree_level(), 0);
}

TEST(Transform, NoFeaturesMeansNoTransform) {
  nvbm::Device dev(64 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 100 * sizeof(PNode);
  auto tree = build_tree(heap, pm, 3, 0);
  const auto out = tree.maybe_transform();
  EXPECT_FALSE(out.transformed);
  EXPECT_EQ(out.subtrees_sampled, 0u);
}

TEST(Transform, MovesHotSubtreeIntoDram) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 90 * sizeof(PNode);  // roughly one subtree's worth
  pm.t_transform = 1.5;
  auto tree = build_tree(heap, pm, 3, /*hot_child=*/5);
  tree.persist();
  auto hot_in_dram = [&] {
    std::size_t n = 0;
    tree.for_each_node_ex(
        [&](const LocCode&, const CellData& d, bool, bool in_dram) {
          if (in_dram && d.vof > 0.5) ++n;
        });
    return n;
  };
  // First-touch filled DRAM in Morton order: the hot (child-5) region is
  // late in that order, so little of it is resident yet.
  const auto before = hot_in_dram();

  tree.register_feature([](const LocCode&, const CellData& d) {
    return d.vof > 0.5;  // the refinement predicate: hot region
  });
  const auto out = tree.maybe_transform();
  EXPECT_TRUE(out.transformed);
  EXPECT_GT(out.moved_to_dram, 0u);
  EXPECT_GT(out.best_ratio, pm.t_transform);
  EXPECT_GT(hot_in_dram(), before);
}

TEST(Transform, ColdUniformTreeDoesNotTransform) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 90 * sizeof(PNode);
  auto tree = build_tree(heap, pm, 3, 0);
  tree.for_each_leaf_mut([](const LocCode&, CellData& d) {
    d.vof = 0.0;  // nothing is interesting anywhere
    return true;
  });
  tree.persist();
  tree.register_feature(
      [](const LocCode&, const CellData& d) { return d.vof > 0.5; });
  const auto out = tree.maybe_transform();
  // Ratio is 1 (all frequencies zero): below any threshold > 1.
  EXPECT_FALSE(out.transformed);
}

TEST(Transform, DisabledByConfig) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 90 * sizeof(PNode);
  pm.enable_transform = false;
  auto tree = build_tree(heap, pm, 3, 5);
  tree.register_feature(
      [](const LocCode&, const CellData& d) { return d.vof > 0.5; });
  auto hot_in_dram = [&] {
    std::size_t n = 0;
    tree.for_each_node_ex(
        [&](const LocCode&, const CellData& d, bool, bool in_dram) {
          if (in_dram && d.vof > 0.5) ++n;
        });
    return n;
  };
  const auto before = hot_in_dram();
  tree.persist();  // would transform if enabled
  // Without the transformation nothing relocates the hot region to DRAM.
  EXPECT_LE(hot_in_dram(), before);
}

TEST(Transform, ReducesNvbmWritesOnHotWorkload) {
  // The §3.3 motivating experiment: serving a write-heavy workload on a
  // hot subdomain with the locality-aware layout (hot subtree in DRAM)
  // must issue far fewer NVBM writes than the locality-oblivious layout
  // (hot subtree left in NVBM after the merge). The paper reports up to
  // 89% more NVBM writes for the oblivious layout.
  const int hot = 2;
  auto run = [&](bool transform) {
    nvbm::Device dev(256 << 20, dev_cfg());
    nvbm::Heap heap(dev);
    PmConfig pm;
    pm.dram_budget_bytes = 90 * sizeof(PNode);
    pm.enable_transform = transform;
    auto tree = build_tree(heap, pm, 3, hot);
    tree.register_feature(
        [](const LocCode&, const CellData& d) { return d.vof > 0.5; });
    tree.persist();  // everything merges to NVBM; transform (if enabled)
                     // then pulls the hot subtree back into DRAM

    // History pass: the solver touches cold regions first (the shifted
    // access pattern of a previous phase). Under first-touch placement
    // this fills the oblivious layout's DRAM with cold octants — the
    // exact Fig. 5a situation.
    tree.for_each_leaf_mut([](const LocCode&, CellData& d) {
      if (d.vof > 0.5) return false;
      d.pressure += 1.0;
      return true;
    });

    dev.reset_counters();
    // Three solver sweeps writing only the hot (interface) cells — the
    // droplet workload's dominant access pattern between persists.
    for (int pass = 0; pass < 3; ++pass) {
      tree.for_each_leaf_mut([&](const LocCode&, CellData& d) {
        if (d.vof < 0.5) return false;
        d.tracer += 1.0;
        return true;
      });
    }
    return dev.counters().writes;
  };
  const auto with_transform = run(true);
  const auto without = run(false);
  EXPECT_LT(with_transform, without);
  // The effect must be structural (hot writes served from DRAM), not a
  // rounding error: expect at least a ~2x reduction.
  EXPECT_LT(static_cast<double>(with_transform),
            0.5 * static_cast<double>(without));
}

TEST(Transform, VersionContentUnchangedByRelayout) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 90 * sizeof(PNode);
  auto tree = build_tree(heap, pm, 3, 6);
  tree.persist();
  std::vector<std::pair<std::uint64_t, double>> before;
  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    before.emplace_back(c.key(), d.vof);
  });
  tree.register_feature(
      [](const LocCode&, const CellData& d) { return d.vof > 0.5; });
  const auto out = tree.maybe_transform();
  ASSERT_TRUE(out.transformed);
  std::vector<std::pair<std::uint64_t, double>> after;
  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    after.emplace_back(c.key(), d.vof);
  });
  EXPECT_EQ(before, after);
  // And the persisted version still restores identically.
  auto back = PmOctree::restore(heap, pm);
  std::vector<std::pair<std::uint64_t, double>> restored;
  back.for_each_leaf([&](const LocCode& c, const CellData& d) {
    restored.emplace_back(c.key(), d.vof);
  });
  EXPECT_EQ(before, restored);
}

TEST(Transform, SamplingTouchesAtMostNSamplePerSubtree) {
  nvbm::Device dev(256 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 90 * sizeof(PNode);
  pm.n_sample = 10;
  auto tree = build_tree(heap, pm, 3, 1);
  tree.persist();
  tree.register_feature(
      [](const LocCode&, const CellData& d) { return d.vof > 0.5; });
  const auto out = tree.maybe_transform();
  EXPECT_GT(out.subtrees_sampled, 0u);
  EXPECT_LE(out.octants_sampled, out.subtrees_sampled * pm.n_sample);
}

}  // namespace
}  // namespace pmo::pmoctree
