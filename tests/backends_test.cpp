// Backend tests: Etree linear octree, in-core snapshots, and the
// cross-backend equivalence property (all three implementations must
// produce the identical mesh for the same deterministic workload).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "baseline/etree_backend.hpp"
#include "baseline/incore_backend.hpp"

namespace pmo {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

using LeafMap = std::map<std::uint64_t, int>;

LeafMap leaves_of(amr::MeshBackend& mesh) {
  LeafMap out;
  mesh.visit_leaves([&](const LocCode& c, const CellData&) {
    out[c.key()] = c.level();
  });
  return out;
}

// ---------------------------------------------------------------------------
// Etree backend
// ---------------------------------------------------------------------------

TEST(Etree, StartsWithRootLeaf) {
  nvbm::Device dev(64 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  EXPECT_EQ(mesh.leaf_count(), 1u);
  LeafMap m = leaves_of(mesh);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.begin()->second, 0);
}

TEST(Etree, RefineWhereSplitsLeaves) {
  nvbm::Device dev(64 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  EXPECT_EQ(mesh.leaf_count(), 8u);
  mesh.refine_where(
      [](const LocCode& c, const CellData&) { return c.child_index() == 0; },
      nullptr);
  EXPECT_EQ(mesh.leaf_count(), 7u + 8u);
}

TEST(Etree, LeavesPartitionDomain) {
  nvbm::Device dev(64 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  Rng rng(5);
  for (int round = 0; round < 3; ++round) {
    mesh.refine_where(
        [&](const LocCode& c, const CellData&) {
          return c.level() < 5 && rng.chance(0.4);
        },
        nullptr);
  }
  double volume = 0.0;
  mesh.visit_leaves([&](const LocCode& c, const CellData&) {
    const double h = c.size_unit();
    volume += h * h * h;
  });
  EXPECT_NEAR(volume, 1.0, 1e-9);
}

TEST(Etree, SweepWritesBack) {
  nvbm::Device dev(64 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  mesh.sweep_leaves([](const LocCode&, CellData& d) {
    d.tracer = 3.5;
    return true;
  });
  mesh.visit_leaves([](const LocCode&, const CellData& d) {
    EXPECT_DOUBLE_EQ(d.tracer, 3.5);
  });
}

TEST(Etree, CoverFindsContainingLeaf) {
  nvbm::Device dev(64 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  mesh.refine_where(
      [](const LocCode& c, const CellData&) { return c.child_index() == 3; },
      nullptr);
  // Probe deep inside the refined child 3.
  const auto probe = LocCode::root().child(3).child(5).child(0);
  const auto cover = mesh.cover(probe);
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->code(), LocCode::root().child(3).child(5));
  // And inside an unrefined child.
  const auto probe2 = LocCode::root().child(6).child(1);
  EXPECT_EQ(mesh.cover(probe2)->code(), LocCode::root().child(6));
}

TEST(Etree, BalanceMatchesPointerImplementation) {
  nvbm::Device dev(128 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  // Same center-directed chain as the octree test: unbalanced by 2 levels.
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  auto in = [](const LocCode& target) {
    return [target](const LocCode& c, const CellData&) {
      return c == target;
    };
  };
  mesh.refine_where(in(LocCode::root().child(0)), nullptr);
  mesh.refine_where(in(LocCode::root().child(0).child(7)), nullptr);
  const auto refined = mesh.balance();
  EXPECT_GT(refined, 0u);
  EXPECT_EQ(mesh.balance(), 0u);  // idempotent
}

TEST(Etree, SurvivesReopenAfterFlush) {
  nvbm::Device dev(64 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  mesh.end_step(0);
  const auto before = leaves_of(mesh);
  EXPECT_TRUE(mesh.recover());  // reopen the database
  EXPECT_EQ(leaves_of(mesh), before);
}

// ---------------------------------------------------------------------------
// In-core backend
// ---------------------------------------------------------------------------

TEST(InCore, SnapshotAndRecoverRoundTrip) {
  nvbm::Device snap_dev(64 << 20, dev_cfg());
  baseline::InCoreBackend mesh(snap_dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  mesh.sweep_leaves([](const LocCode& c, CellData& d) {
    d.vof = static_cast<double>(c.child_index()) / 8.0;
    return true;
  });
  mesh.snapshot();
  const auto before = leaves_of(mesh);

  // Wreck the in-memory state, then recover from the snapshot.
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  EXPECT_NE(leaves_of(mesh), before);
  ASSERT_TRUE(mesh.recover());
  EXPECT_EQ(leaves_of(mesh), before);
  // Data came back too.
  mesh.visit_leaves([](const LocCode& c, const CellData& d) {
    EXPECT_DOUBLE_EQ(d.vof, static_cast<double>(c.child_index()) / 8.0);
  });
}

TEST(InCore, RecoverWithoutSnapshotFails) {
  nvbm::Device snap_dev(16 << 20, dev_cfg());
  baseline::InCoreBackend mesh(snap_dev);
  EXPECT_FALSE(mesh.has_snapshot());
  EXPECT_FALSE(mesh.recover());
}

TEST(InCore, SnapshotsAtConfiguredInterval) {
  nvbm::Device snap_dev(64 << 20, dev_cfg());
  baseline::InCoreConfig cfg;
  cfg.snapshot_interval = 10;
  baseline::InCoreBackend mesh(snap_dev, cfg);
  for (int step = 0; step < 9; ++step) mesh.end_step(step);
  EXPECT_FALSE(mesh.has_snapshot());
  mesh.end_step(9);  // 10th step
  EXPECT_TRUE(mesh.has_snapshot());
}

TEST(InCore, SnapshotCostScalesWithTreeSize) {
  nvbm::Device snap_dev(256 << 20, dev_cfg());
  baseline::InCoreBackend mesh(snap_dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  mesh.snapshot();
  const auto small_cost = snap_dev.counters().modeled_ns();
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  snap_dev.reset_counters();
  mesh.snapshot();
  const auto big_cost = snap_dev.counters().modeled_ns();
  EXPECT_GT(big_cost, 4 * small_cost);  // 8x leaves, full rewrite
}

TEST(InCore, OctantsNeverTouchSnapshotNvbmUntilSnapshot) {
  nvbm::Device snap_dev(64 << 20, dev_cfg());
  baseline::InCoreBackend mesh(snap_dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  EXPECT_EQ(snap_dev.counters().writes, 0u);
  mesh.snapshot();
  EXPECT_GT(snap_dev.counters().writes, 0u);
}

// ---------------------------------------------------------------------------
// Cross-backend equivalence under the droplet workload
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// LeafChunk::find hint regression: the hint is purely an acceleration —
// after a miss (probe outside the covered domain) or an arbitrary far
// jump, find must never serve a stale slot; every result is re-verified
// against the probe's octant.
// ---------------------------------------------------------------------------

TEST(LeafChunkFind, HintNeverServesStaleSlotAfterMiss) {
  // Snapshot covering only the lower-z half of the domain at level 3 —
  // Morton-sorted but with gaps, so probes into the upper half miss.
  std::vector<LocCode> codes;
  for (std::uint32_t z = 0; z < 4; ++z)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t x = 0; x < 8; ++x)
        codes.push_back(LocCode::from_grid(3, x, y, z));
  std::sort(codes.begin(), codes.end(),
            [](const LocCode& a, const LocCode& b) {
              return a.key() < b.key();
            });
  std::vector<CellData> cells(codes.size());
  for (std::size_t i = 0; i < cells.size(); ++i)
    cells[i].vof = static_cast<double>(i);  // slot marker

  amr::LeafChunk ch;
  ch.begin = 0;
  ch.end = codes.size();
  ch.codes = codes.data();
  ch.cells = cells.data();
  ch.leaves = codes.size();

  // Prime the hint mid-array, then miss into the uncovered half: find
  // must report "no covering leaf", never the hinted slot's cell.
  ASSERT_EQ(ch.find(codes[100]), &cells[100]);
  EXPECT_EQ(ch.find(LocCode::from_grid(3, 0, 0, 7)), nullptr);
  EXPECT_EQ(ch.find(LocCode::from_grid(3, 7, 7, 7)), nullptr);

  // The misses must not poison later hits: probe every leaf in orders
  // that defeat the hint (reverse, and a large coprime stride).
  for (std::size_t i = codes.size(); i-- > 0;)
    ASSERT_EQ(ch.find(codes[i]), &cells[i]) << "reverse probe " << i;
  for (std::size_t i = 0, at = 0; i < codes.size();
       ++i, at = (at + 149) % codes.size())
    ASSERT_EQ(ch.find(codes[at]), &cells[at]) << "strided probe " << at;

  // Finer probes resolve to the covering leaf through the same hint path.
  EXPECT_EQ(ch.find(codes[5].child(3).child(1)), &cells[5]);
  // Alternating hit / out-of-domain miss along the coverage boundary: the
  // chunk-edge pattern the legacy gather produces. Expected slots come
  // from a hint-free linear scan.
  for (std::uint32_t x = 0; x < 8; ++x) {
    const LocCode inside = LocCode::from_grid(3, x, 0, 3);
    const CellData* expect = nullptr;
    for (std::size_t i = 0; i < codes.size(); ++i) {
      if (codes[i].key() == inside.key()) expect = &cells[i];
    }
    ASSERT_NE(expect, nullptr);
    ASSERT_EQ(ch.find(inside), expect) << "boundary hit x=" << x;
    ASSERT_EQ(ch.find(LocCode::from_grid(3, x, 0, 4)), nullptr)
        << "boundary miss x=" << x;
  }

  // Probe accounting ran: every inspection above counted.
  EXPECT_GT(ch.probes, codes.size());
}

class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, AllBackendsProduceIdenticalMeshes) {
  const int steps = GetParam();
  amr::DropletParams params;
  params.min_level = 1;
  params.max_level = 3;

  nvbm::Device pm_dev(256 << 20, dev_cfg());
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 4 << 20;
  amr::PmOctreeBackend pm_mesh(pm_dev, pm);

  nvbm::Device snap_dev(256 << 20, dev_cfg());
  baseline::InCoreBackend incore(snap_dev);

  nvbm::Device etree_dev(256 << 20, dev_cfg());
  baseline::EtreeBackend etree(etree_dev);

  amr::MeshBackend* meshes[] = {&pm_mesh, &incore, &etree};
  LeafMap results[3];
  for (int m = 0; m < 3; ++m) {
    amr::DropletWorkload wl(params);
    wl.initialize(*meshes[m]);
    for (int s = 0; s < steps; ++s) wl.step(*meshes[m], s);
    results[m] = leaves_of(*meshes[m]);
  }
  EXPECT_EQ(results[0], results[1])
      << "PM-octree vs in-core mesh divergence";
  EXPECT_EQ(results[0], results[2])
      << "PM-octree vs out-of-core mesh divergence";
  EXPECT_GT(results[0].size(), 64u);  // the workload actually refined
}

INSTANTIATE_TEST_SUITE_P(Steps, BackendEquivalence,
                         ::testing::Values(1, 3));

}  // namespace
}  // namespace pmo
