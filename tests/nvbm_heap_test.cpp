// Tests for the persistent heap: allocation, free-list reuse, roots,
// attach-after-restart, sweep.
#include "nvbm/heap.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pmo::nvbm {
namespace {

Config cfg() {
  Config c;
  c.latency_mode = LatencyMode::kNone;
  return c;
}

TEST(Heap, FormatsFreshDevice) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  const auto s = heap.stats();
  EXPECT_EQ(s.live_objects, 0u);
  EXPECT_EQ(s.capacity, dev.capacity());
  EXPECT_GT(s.available_fraction(), 0.99);
}

TEST(Heap, AllocReturnsDistinctWritableRegions) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  const auto a = heap.alloc(64);
  const auto b = heap.alloc(64);
  EXPECT_NE(a, b);
  dev.store<std::uint64_t>(a, 1);
  dev.store<std::uint64_t>(b, 2);
  EXPECT_EQ(dev.load<std::uint64_t>(a), 1u);
  EXPECT_EQ(dev.load<std::uint64_t>(b), 2u);
}

TEST(Heap, PayloadSizeRecorded) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  const auto a = heap.alloc(100);
  EXPECT_EQ(heap.payload_size(a), 100u);
  EXPECT_TRUE(heap.is_allocated(a));
}

TEST(Heap, FreeThenReuseSameClass) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  const auto a = heap.alloc(144);
  heap.free(a);
  EXPECT_FALSE(heap.is_allocated(a));
  const auto b = heap.alloc(144);
  EXPECT_EQ(a, b);  // exact-size free list reuses the slot
}

TEST(Heap, DoubleFreeDetected) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  const auto a = heap.alloc(32);
  heap.free(a);
  EXPECT_THROW(heap.free(a), ContractError);
}

TEST(Heap, ExhaustionThrowsOutOfSpace) {
  Device dev(1 << 16, cfg());
  Heap heap(dev);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100000; ++i) heap.alloc(1024);
      },
      OutOfSpaceError);
}

TEST(Heap, FreeMakesSpaceReusableWithoutGrowingHighWater) {
  Device dev(1 << 18, cfg());
  Heap heap(dev);
  // Fill-free cycles must not exhaust the device (paper §3.2: freed NVBM
  // regions are reused before GC).
  std::vector<std::uint64_t> offs;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) offs.push_back(heap.alloc(144));
    for (const auto o : offs) heap.free(o);
    offs.clear();
  }
  const auto s = heap.stats();
  EXPECT_LT(s.high_water, dev.capacity() / 2);
}

TEST(Heap, RootsPersistAndReadBack) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  heap.set_root(0, 12345);
  heap.set_root(kMaxRoots - 1, 999);
  EXPECT_EQ(heap.root(0), 12345u);
  EXPECT_EQ(heap.root(kMaxRoots - 1), 999u);
  EXPECT_EQ(heap.root(5), 0u);
  EXPECT_THROW(heap.root(kMaxRoots), ContractError);
}

TEST(Heap, AttachRecoversObjectsAndFreeLists) {
  Device dev(1 << 20, cfg());
  std::uint64_t live_off = 0, freed_off = 0;
  {
    Heap heap(dev);
    live_off = heap.alloc(64);
    freed_off = heap.alloc(64);
    dev.store<std::uint64_t>(live_off, 0xabcddcba);
    heap.free(freed_off);
    heap.set_root(0, live_off);
  }
  // Re-attach to the same device (process restart).
  Heap heap2(dev);
  EXPECT_EQ(heap2.root(0), live_off);
  EXPECT_TRUE(heap2.is_allocated(live_off));
  EXPECT_FALSE(heap2.is_allocated(freed_off));
  EXPECT_EQ(dev.load<std::uint64_t>(live_off), 0xabcddcbaull);
  // The freed slot is reusable after restart.
  EXPECT_EQ(heap2.alloc(64), freed_off);
}

TEST(Heap, RootSurvivesCrashBecauseSetRootFlushes) {
  Config c = cfg();
  c.crash_sim = true;
  Device dev(1 << 20, c);
  Heap heap(dev);
  const auto off = heap.alloc(64);
  heap.set_root(0, off);
  Rng rng(3);
  dev.simulate_crash(rng, 0.0);  // drop every unflushed line
  Heap heap2(dev);
  EXPECT_EQ(heap2.root(0), off);
}

TEST(Heap, UnflushedPayloadLostButAllocatorConsistentAfterCrash) {
  Config c = cfg();
  c.crash_sim = true;
  Device dev(1 << 20, c);
  Heap heap(dev);
  const auto off = heap.alloc(64);
  dev.store<std::uint64_t>(off, 0x7777);  // payload not flushed
  Rng rng(4);
  dev.simulate_crash(rng, 0.0);
  Heap heap2(dev);
  // Allocation metadata was flushed by alloc(); payload content was not.
  EXPECT_TRUE(heap2.is_allocated(off));
  EXPECT_EQ(dev.load<std::uint64_t>(off), 0u);
}

TEST(Heap, ForEachObjectVisitsAll) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  std::set<std::uint64_t> expect;
  for (int i = 0; i < 10; ++i) expect.insert(heap.alloc(48));
  std::set<std::uint64_t> seen;
  std::size_t alloc_seen = 0;
  heap.for_each_object(
      [&](std::uint64_t off, std::uint32_t size, bool allocated) {
        seen.insert(off);
        EXPECT_EQ(size, 48u);
        alloc_seen += allocated;
      });
  EXPECT_EQ(seen, expect);
  EXPECT_EQ(alloc_seen, 10u);
}

TEST(Heap, SweepFreesOnlyDeadObjects) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  std::vector<std::uint64_t> offs;
  for (int i = 0; i < 20; ++i) offs.push_back(heap.alloc(96));
  std::set<std::uint64_t> live(offs.begin(), offs.begin() + 5);
  const auto freed =
      heap.sweep([&](std::uint64_t off) { return live.count(off) != 0; });
  EXPECT_EQ(freed, 15u);
  for (const auto off : offs) {
    EXPECT_EQ(heap.is_allocated(off), live.count(off) != 0);
  }
}

TEST(Heap, StatsTrackLiveAndFree) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  const auto a = heap.alloc(100);
  heap.alloc(100);
  heap.free(a);
  const auto s = heap.stats();
  EXPECT_EQ(s.live_objects, 1u);
  EXPECT_EQ(s.free_objects, 1u);
  EXPECT_EQ(s.live_bytes, 100u);
}

TEST(Pptr, NullAndRoundTrip) {
  Device dev(1 << 20, cfg());
  Heap heap(dev);
  pptr<std::uint64_t> null;
  EXPECT_TRUE(null.null());
  EXPECT_FALSE(null);
  pptr<std::uint64_t> p(heap.alloc(8));
  EXPECT_TRUE(static_cast<bool>(p));
  p.store(dev, 909);
  EXPECT_EQ(p.load(dev), 909u);
}

}  // namespace
}  // namespace pmo::nvbm
