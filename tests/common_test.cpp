// Tests for RNG, stats, timing helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"

namespace pmo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    EXPECT_LT(rng.below(1), 1u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(77);
  std::array<int, 8> counts{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalHasUnitMoments) {
  Rng rng(11);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 3);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(TablePrinter, FormatsAlignedTable) {
  TablePrinter t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "20000"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("20000"), std::string::npos);
  EXPECT_NE(out.find("|"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongWidthRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractError);
}

TEST(TablePrinter, HumanUnits) {
  EXPECT_EQ(TablePrinter::human_bytes(512), "512B");
  EXPECT_EQ(TablePrinter::human_bytes(2048), "2.00KiB");
  EXPECT_EQ(TablePrinter::human_count(1'500'000), "1.50M");
  EXPECT_EQ(TablePrinter::human_count(1'077'000'000), "1.08G");
}

TEST(TimeBreakdown, AccumulatesAndPercents) {
  TimeBreakdown tb;
  tb.add_seconds("Refine", 3.0);
  tb.add_seconds("Balance", 1.0);
  tb.add_seconds("Refine", 1.0);
  EXPECT_DOUBLE_EQ(tb.seconds("Refine"), 4.0);
  EXPECT_DOUBLE_EQ(tb.total_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(tb.percent("Refine"), 80.0);
  EXPECT_DOUBLE_EQ(tb.percent("Missing"), 0.0);
}

TEST(TimeBreakdown, MergeAddsBuckets) {
  TimeBreakdown a, b;
  a.add_seconds("x", 1.0);
  b.add_seconds("x", 2.0);
  b.add_seconds("y", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.seconds("y"), 3.0);
}

TEST(SpinCalibration, TicksPerNsIsPositiveAndStable) {
  const double a = SpinCalibration::ticks_per_ns();
  const double b = SpinCalibration::ticks_per_ns();
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);  // memoized
}

TEST(Spin, DelaysAtLeastRequested) {
  WallTimer t;
  spin_ns(200000);  // 200us
  // Allow generous slack: the VM clock is coarse, but it must not return
  // immediately.
  EXPECT_GE(t.nanos(), 150000u);
}

TEST(ScopedTimer, AccumulatesIntoBucket) {
  TimeBreakdown tb;
  {
    ScopedTimer t(tb, "scope");
    spin_ns(50000);
  }
  EXPECT_GT(tb.seconds("scope"), 0.0);
}

}  // namespace
}  // namespace pmo
