// Core PM-octree behaviour: creation, mutation, traversal, placement.
#include "pmoctree/pm_octree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "pmoctree/api.hpp"

namespace pmo::pmoctree {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

struct Fixture {
  explicit Fixture(std::size_t capacity = 64 << 20,
                   PmConfig pm = PmConfig{})
      : device(capacity, dev_cfg()), heap(device), config(pm) {}

  nvbm::Device device;
  nvbm::Heap heap;
  PmConfig config;
};

CellData cell(double vof, double tracer = 0.0) {
  CellData d;
  d.vof = vof;
  d.tracer = tracer;
  return d;
}

TEST(PmOctree, CreateHasRootOnly) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_FALSE(tree.has_prev_version());
  EXPECT_TRUE(tree.contains(LocCode::root()));
}

TEST(PmOctree, InsertFindRoundTrip) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  const auto code = LocCode::from_grid(3, 1, 2, 3);
  tree.insert(code, cell(0.7, 3.0));
  const auto found = tree.find(code);
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->vof, 0.7);
  EXPECT_DOUBLE_EQ(found->tracer, 3.0);
  EXPECT_FALSE(tree.find(code.child(0)).has_value());
}

TEST(PmOctree, InsertMaintainsZeroOrEightInvariant) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(4, 3, 7, 9), cell(1.0));
  tree.for_each_node([&](const LocCode& code, const CellData&, bool leaf) {
    if (leaf) return;
    int kids = 0;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      kids += tree.contains(code.child(i));
    }
    EXPECT_EQ(kids, 8) << code.to_string();
  });
}

TEST(PmOctree, UpdateChangesExistingOctant) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  const auto code = LocCode::from_grid(2, 1, 1, 1);
  tree.insert(code, cell(0.1));
  tree.update(code, cell(0.9));
  EXPECT_DOUBLE_EQ(tree.find(code)->vof, 0.9);
  EXPECT_THROW(tree.update(code.child(5), cell(1.0)), ContractError);
}

TEST(PmOctree, RefineCreatesChildrenInheritingData) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  const auto code = LocCode::from_grid(1, 0, 0, 0);
  tree.insert(code, cell(0.25));
  tree.refine(code);
  for (int i = 0; i < kChildrenPerNode; ++i) {
    const auto child = tree.find(code.child(i));
    ASSERT_TRUE(child.has_value());
    EXPECT_DOUBLE_EQ(child->vof, 0.25);
  }
}

TEST(PmOctree, RefineInitOverride) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.refine(LocCode::root(), [](const LocCode& c, CellData& d) {
    d.tracer = static_cast<double>(c.child_index());
  });
  for (int i = 0; i < kChildrenPerNode; ++i) {
    EXPECT_DOUBLE_EQ(tree.find(LocCode::root().child(i))->tracer, i);
  }
}

TEST(PmOctree, CoarsenAveragesChildren) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.refine(LocCode::root());
  for (int i = 0; i < kChildrenPerNode; ++i) {
    tree.update(LocCode::root().child(i), cell(static_cast<double>(i + 1)));
  }
  tree.coarsen(LocCode::root());
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.find(LocCode::root())->vof, 4.5);
}

TEST(PmOctree, RemoveDetachesSubtree) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  const auto code = LocCode::from_grid(2, 0, 0, 0);
  tree.insert(code, cell(1.0));
  const auto before = tree.node_count();
  tree.remove(LocCode::root().child(0));
  EXPECT_LT(tree.node_count(), before);
  EXPECT_FALSE(tree.contains(code));
  EXPECT_THROW(tree.remove(LocCode::root()), ContractError);
}

TEST(PmOctree, SampleReturnsContainingLeafData) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(1, 1, 0, 0), cell(0.5));
  // Deep probe inside child(0) region, which is a level-1 leaf.
  const auto probe = LocCode::from_grid(5, 1, 1, 1);
  EXPECT_EQ(tree.leaf_containing(probe).level(), 1);
  EXPECT_DOUBLE_EQ(tree.sample(probe).vof, 0.0);
}

TEST(PmOctree, TraversalVisitsLeavesInMortonOrder) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(2, 3, 3, 3), cell(1.0));
  std::vector<LocCode> visited;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { visited.push_back(c); });
  for (std::size_t i = 1; i < visited.size(); ++i) {
    EXPECT_LT(visited[i - 1], visited[i]);
  }
  EXPECT_EQ(visited.size(), tree.leaf_count());
}

TEST(PmOctree, MutableTraversalWritesBack) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(2, 1, 2, 3), cell(0.0));
  tree.for_each_leaf_mut([](const LocCode&, CellData& d) {
    d.tracer = 42.0;
    return true;
  });
  tree.for_each_leaf([](const LocCode&, const CellData& d) {
    EXPECT_DOUBLE_EQ(d.tracer, 42.0);
  });
}

TEST(PmOctree, MutableTraversalSkipsUnmodified) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.refine(LocCode::root());
  const auto writes_before = fx.device.counters().writes +
                             tree.dram_counters().writes;
  tree.for_each_leaf_mut([](const LocCode&, CellData&) { return false; });
  const auto writes_after =
      fx.device.counters().writes + tree.dram_counters().writes;
  EXPECT_EQ(writes_after, writes_before);
}

TEST(PmOctree, BalanceEnforcesTwoToOne) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  // Center-directed chain: creates a 2-level jump against the coarse
  // siblings (see octree_test.cpp for the geometry).
  LocCode code = LocCode::root();
  tree.refine(code);
  code = code.child(0);
  for (int l = 1; l < 4; ++l) {
    tree.refine(code);
    code = code.child(7);
  }
  EXPECT_FALSE(tree.is_balanced());
  EXPECT_GT(tree.balance(), 0u);
  EXPECT_TRUE(tree.is_balanced());
  EXPECT_EQ(tree.balance(), 0u);
}

TEST(PmOctree, SmallBudgetPlacesNodesInNvbm) {
  PmConfig pm;
  pm.dram_budget_bytes = 0;  // force everything to NVBM
  Fixture fx(64 << 20, pm);
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(3, 1, 1, 1), cell(1.0));
  const auto s = tree.stats();
  EXPECT_EQ(s.dram_nodes, 0u);
  EXPECT_EQ(s.nvbm_nodes_vi, s.nodes);
  EXPECT_GT(fx.device.counters().writes, 0u);
}

TEST(PmOctree, LargeBudgetKeepsEverythingInDram) {
  PmConfig pm;
  pm.dram_budget_bytes = 256 << 20;
  Fixture fx(64 << 20, pm);
  auto tree = PmOctree::create(fx.heap, pm);
  tree.insert(LocCode::from_grid(3, 5, 5, 5), cell(1.0));
  const auto s = tree.stats();
  EXPECT_EQ(s.nvbm_nodes_vi, 0u);
  EXPECT_EQ(s.dram_nodes, s.nodes);
}

TEST(PmOctree, BudgetPressureEvictsToNvbm) {
  PmConfig pm;
  pm.dram_budget_bytes = 64 * sizeof(PNode);  // room for ~64 nodes
  Fixture fx(256 << 20, pm);
  auto tree = PmOctree::create(fx.heap, pm);
  // Create far more nodes than the DRAM budget allows.
  for (int l = 0; l < 3; ++l) {
    tree.refine_where(
        [](const LocCode&, const CellData&) { return true; });
  }
  const auto s = tree.stats();  // 585 nodes total
  EXPECT_EQ(s.nodes, 585u);
  EXPECT_LE(s.dram_bytes, pm.dram_budget_bytes);
  EXPECT_GT(s.nvbm_nodes_vi, 0u);
}

TEST(PmOctree, StatsCountResidenceConsistently) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(2, 2, 2, 2), cell(0.3));
  const auto s = tree.stats();
  EXPECT_EQ(s.nodes, s.dram_nodes + s.nvbm_nodes_vi);
  EXPECT_EQ(s.nodes, tree.node_count());
  EXPECT_EQ(s.leaves, tree.leaf_count());
  EXPECT_EQ(s.unique_physical_nodes, s.nodes);  // no prev version yet
}

TEST(PmOctree, ModeledTimeGrowsWithNvbmTraffic) {
  PmConfig pm;
  pm.dram_budget_bytes = 0;
  Fixture fx(64 << 20, pm);
  auto tree = PmOctree::create(fx.heap, pm);
  const auto t0 = tree.modeled_ns();
  tree.insert(LocCode::from_grid(3, 1, 1, 1), cell(1.0));
  EXPECT_GT(tree.modeled_ns(), t0);
}

TEST(PmOctree, DestroyFreesEverything) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.insert(LocCode::from_grid(3, 0, 1, 2), cell(1.0));
  tree.persist();
  tree.destroy();
  EXPECT_EQ(fx.heap.stats().live_objects, 0u);
  EXPECT_FALSE(PmOctree::can_restore(fx.heap));
}

TEST(PmOctree, ChildMaskMatchesSlotScanUnderRandomOps) {
  // Differential check of the PNode::flags child-presence bitmask: after a
  // random op mix under memory pressure (DRAM twins, CoW'd NVBM nodes and
  // persist merges all exercised), every reachable node's cached mask must
  // equal a scan of its child slots. The mask feeds is_leaf(), traversal
  // and the linear-tier Builder, so a single stale bit here corrupts
  // downstream structures silently.
  Fixture fx;
  fx.config.dram_budget_bytes = 24 * sizeof(PNode);
  fx.config.compact_min_records = 8;
  auto tree = PmOctree::create(fx.heap, fx.config);
  Rng rng(20260808);
  for (int s = 0; s < 120; ++s) {
    std::vector<LocCode> leaves;
    tree.for_each_leaf(
        [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
    const auto& victim =
        leaves[static_cast<std::size_t>(rng.below(leaves.size()))];
    const auto action = rng.below(4);
    if (action == 0 && victim.level() < 6) {
      tree.refine(victim);
    } else if (action == 1 && victim.level() > 0) {
      bool all_leaves = true;
      for (int i = 0; i < kChildrenPerNode && all_leaves; ++i) {
        const auto sib = victim.parent().child(i);
        all_leaves = tree.contains(sib) &&
                     tree.leaf_containing(sib.child(0)) == sib;
      }
      if (all_leaves) tree.coarsen(victim.parent());
    } else {
      tree.update(victim, cell(rng.uniform()));
    }
    if (s % 40 == 39) tree.persist();
  }
  tree.persist();

  std::size_t checked = 0;
  std::vector<NodeRef> stack{tree.current_root(), tree.previous_root()};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    if (ref.null() || ref.in_linear()) continue;  // chains carry their own
                                                  // masks, checked at build
    const PNode node = ref.in_dram()
                           ? *ref.dram_ptr()
                           : fx.device.load<PNode>(ref.nvbm_offset());
    std::uint8_t scan = 0;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (c.null()) continue;
      scan |= static_cast<std::uint8_t>(1u << i);
      stack.push_back(c);
    }
    EXPECT_EQ(node.child_mask(), scan)
        << "stale child mask at level " << node.code.level();
    ++checked;
  }
  EXPECT_GT(checked, 16u);  // the walk really covered a non-trivial tree
}

TEST(PmOctreeApi, Table1RoundTrip) {
  Fixture fx;
  auto tree = pm_create(fx.heap);
  tree->insert(LocCode::from_grid(2, 1, 0, 1), cell(0.6));
  pm_persistent(*tree);
  tree.reset();

  auto back = pm_restore(fx.heap);
  EXPECT_DOUBLE_EQ(back->find(LocCode::from_grid(2, 1, 0, 1))->vof, 0.6);
  pm_delete(*back);
  EXPECT_FALSE(PmOctree::can_restore(fx.heap));
}

TEST(PmOctreeApi, CreateAdoptsExistingOctree) {
  Fixture fx;
  octree::Octree vol;
  vol.insert(LocCode::from_grid(2, 3, 3, 3));
  vol.find(LocCode::from_grid(2, 3, 3, 3))->data.tracer = 5.0;
  auto tree = pm_create(fx.heap, &vol);
  EXPECT_EQ(tree->node_count(), vol.node_count());
  EXPECT_DOUBLE_EQ(tree->find(LocCode::from_grid(2, 3, 3, 3))->tracer, 5.0);
}

TEST(PmOctree, RefineWhereAndCoarsenWhere) {
  Fixture fx;
  auto tree = PmOctree::create(fx.heap, fx.config);
  tree.refine(LocCode::root());
  // Mark half the leaves interesting, refine them.
  int i = 0;
  tree.for_each_leaf_mut([&](const LocCode&, CellData& d) {
    d.tracer = (i++ % 2 == 0) ? 1.0 : 0.0;
    return true;
  });
  const auto split = tree.refine_where(
      [](const LocCode&, const CellData& d) { return d.tracer > 0.5; });
  EXPECT_EQ(split, 4u);
  EXPECT_EQ(tree.leaf_count(), 4u + 4u * 8u);
  // Coarsen the ones we refined (children inherited tracer = 1).
  const auto merged = tree.coarsen_where(
      [](const LocCode&, const CellData& d) { return d.tracer > 0.5; });
  EXPECT_EQ(merged, 4u);
  EXPECT_EQ(tree.leaf_count(), 8u);
}

#if PMO_TELEMETRY_ENABLED
TEST(PmOctree, PersistCyclePublishesTelemetry) {
  // A refine -> persist -> mutate -> persist cycle must leave its trace
  // in the global registry: pmoctree.persists counts both persists, the
  // merge produces pmoctree.merge.* activity, and the post-persist
  // mutation of a shared path shows up as pmoctree.cow_copies.
  auto& reg = telemetry::Registry::global();
  const auto before = reg.snapshot();

  {
    // DRAM-resident tree: persist merges the C0 subtree into NVBM.
    Fixture fx;
    auto tree = PmOctree::create(fx.heap, fx.config);
    tree.refine(LocCode::root());
    tree.refine(LocCode::root().child(0));
    tree.persist();
  }
  {
    // Zero DRAM budget: octants live in NVBM, so mutating a path shared
    // with V_{i-1} right after a persist must copy-on-write it.
    PmConfig pm;
    pm.dram_budget_bytes = 0;
    Fixture fx(64 << 20, pm);
    auto tree = PmOctree::create(fx.heap, pm);
    tree.refine(LocCode::root());
    tree.refine(LocCode::root().child(0));
    tree.persist();
    tree.update(LocCode::root().child(0).child(1), cell(0.9));
    tree.persist();
  }

  const auto delta = reg.snapshot().delta(before);
  EXPECT_EQ(delta.counter("pmoctree.persists"), 3u);
  EXPECT_GE(delta.counter("pmoctree.cow_copies"), 1u);
  EXPECT_GT(delta.counter("pmoctree.merge.merged_from_dram"), 0u);
  // persist() runs under a span, with the merge nested inside it.
  ASSERT_NE(delta.histogram("pmoctree.persist"), nullptr);
  EXPECT_EQ(delta.histogram("pmoctree.persist")->count, 3u);
  ASSERT_NE(delta.histogram("pmoctree.persist.merge"), nullptr);
  EXPECT_EQ(delta.histogram("pmoctree.persist.merge")->count, 3u);
}
#endif

}  // namespace
}  // namespace pmo::pmoctree
