// Tests for cross-cutting features added by the reproduction: pruned
// sweeps, durable-twin reuse, residence reporting, mesh extraction.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "amr/droplet.hpp"
#include "amr/extract.hpp"
#include "amr/pm_backend.hpp"
#include "baseline/etree_backend.hpp"

namespace pmo {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

// ---------------------------------------------------------------------------
// NodeRef tagging
// ---------------------------------------------------------------------------

TEST(NodeRef, TaggingRoundTrips) {
  using pmoctree::NodeRef;
  using pmoctree::PNode;
  NodeRef null;
  EXPECT_TRUE(null.null());
  EXPECT_FALSE(null.in_dram());
  EXPECT_FALSE(null.in_nvbm());

  PNode node;
  const auto d = NodeRef::dram(&node);
  EXPECT_TRUE(d.in_dram());
  EXPECT_FALSE(d.in_nvbm());
  EXPECT_EQ(d.dram_ptr(), &node);

  const auto n = NodeRef::nvbm(0x1234560);
  EXPECT_TRUE(n.in_nvbm());
  EXPECT_FALSE(n.in_dram());
  EXPECT_EQ(n.nvbm_offset(), 0x1234560u);

  EXPECT_EQ(NodeRef::from_bits(d.bits()), d);
  EXPECT_EQ(NodeRef::from_bits(n.bits()), n);
}

// ---------------------------------------------------------------------------
// Pruned sweeps
// ---------------------------------------------------------------------------

TEST(PrunedSweep, VisitsOnlyMatchingSubtrees) {
  nvbm::Device dev(128 << 20, dev_cfg());
  amr::PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  for (int l = 0; l < 3; ++l) {
    mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                      nullptr);
  }
  // Restrict to the root's child-0 octant.
  const auto region = LocCode::root().child(0);
  std::set<std::uint64_t> visited;
  mesh.sweep_leaves_pruned(
      [&](const LocCode& c) { return region.contains(c) || c.contains(region); },
      [&](const LocCode& c, CellData&) {
        visited.insert(c.key());
        return false;
      });
  EXPECT_EQ(visited.size(), 64u);  // 8^2 leaves inside child 0
  for (const auto k : visited) {
    const auto a = morton_decode3(k);
    EXPECT_LT(a[0], (1u << kMaxLevel) / 2);
  }
}

TEST(PrunedSweep, PruningSkipsNvbmReads) {
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 0;  // everything NVBM: reads are countable
  pm.node_cache_bytes = 0;   // cache off: device reads must reflect the
                             // traversal, not the hit rate
  nvbm::Device dev(128 << 20, dev_cfg());
  amr::PmOctreeBackend mesh(dev, pm);
  for (int l = 0; l < 3; ++l) {
    mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                      nullptr);
  }
  const auto region = LocCode::root().child(5);
  dev.reset_counters();
  mesh.sweep_leaves_pruned(
      [&](const LocCode& c) { return region.contains(c) || c.contains(region); },
      [](const LocCode&, CellData&) { return false; });
  const auto pruned_reads = dev.counters().reads;
  dev.reset_counters();
  mesh.sweep_leaves([](const LocCode&, CellData&) { return false; });
  const auto full_reads = dev.counters().reads;
  EXPECT_LT(pruned_reads * 4, full_reads);  // ~1/8 of the tree visited
}

TEST(PrunedSweep, DefaultFallbackOnEtree) {
  nvbm::Device dev(128 << 20, dev_cfg());
  baseline::EtreeBackend mesh(dev);
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  const auto region = LocCode::root().child(2);
  int writes = 0;
  mesh.sweep_leaves_pruned(
      [&](const LocCode& c) { return region.contains(c); },
      [&](const LocCode&, CellData& d) {
        d.tracer = 1.0;
        ++writes;
        return true;
      });
  EXPECT_EQ(writes, 1);  // only the child-2 leaf matched
  EXPECT_DOUBLE_EQ(mesh.sample(region.child(0)).tracer, 1.0);
}

// ---------------------------------------------------------------------------
// Durable twins
// ---------------------------------------------------------------------------

TEST(Twins, UnchangedTreeReusesTwinsAcrossPersists) {
  nvbm::Device dev(128 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;  // default budget: everything in DRAM
  auto tree = pmoctree::PmOctree::create(heap, pm);
  tree.refine(LocCode::root());
  const auto s1 = tree.persist();
  EXPECT_EQ(s1.merged_from_dram, 9u);  // every octant got a twin
  const auto live_after_first = heap.stats().live_objects;
  const auto s2 = tree.persist();      // nothing changed
  EXPECT_EQ(s2.merged_from_dram, 0u);  // all twins reused
  EXPECT_DOUBLE_EQ(s2.overlap_ratio, 1.0);
  EXPECT_EQ(heap.stats().live_objects, live_after_first);
}

TEST(Twins, DirtyOctantGetsFreshTwinOthersShared) {
  nvbm::Device dev(128 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = pmoctree::PmOctree::create(heap, pmoctree::PmConfig{});
  tree.refine(LocCode::root());
  tree.persist();
  CellData d;
  d.vof = 0.5;
  tree.update(LocCode::root().child(4), d);
  const auto stats = tree.persist();
  // New twins: the dirty child and (child-changed) the root.
  EXPECT_EQ(stats.merged_from_dram, 2u);
  EXPECT_EQ(stats.nodes_shared, 7u);
}

TEST(Twins, RestoreSeesTwinContent) {
  nvbm::Device dev(128 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  {
    auto tree = pmoctree::PmOctree::create(heap, pmoctree::PmConfig{});
    tree.refine(LocCode::root(), [](const LocCode& c, CellData& d) {
      d.pressure = 10.0 + c.child_index();
    });
    tree.persist();
  }
  auto back = pmoctree::PmOctree::restore(heap, pmoctree::PmConfig{});
  for (int i = 0; i < kChildrenPerNode; ++i) {
    EXPECT_DOUBLE_EQ(back.find(LocCode::root().child(i))->pressure,
                     10.0 + i);
  }
}

// ---------------------------------------------------------------------------
// Residence reporting
// ---------------------------------------------------------------------------

TEST(Residence, ForEachNodeExMatchesStats) {
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 20 * sizeof(pmoctree::PNode);
  nvbm::Device dev(128 << 20, dev_cfg());
  nvbm::Heap heap(dev);
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 2; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  std::size_t dram = 0, nvbm_n = 0, leaves = 0;
  tree.for_each_node_ex(
      [&](const LocCode&, const CellData&, bool leaf, bool in_dram) {
        leaves += leaf;
        (in_dram ? dram : nvbm_n) += 1;
      });
  const auto s = tree.stats();
  EXPECT_EQ(dram, s.dram_nodes);
  EXPECT_EQ(nvbm_n, s.nvbm_nodes_vi);
  EXPECT_EQ(leaves, s.leaves);
}

// ---------------------------------------------------------------------------
// Extraction (the paper's Extract routine)
// ---------------------------------------------------------------------------

TEST(Extract, SummarizeCountsInterfaceAndVolume) {
  nvbm::Device dev(256 << 20, dev_cfg());
  amr::PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  amr::DropletParams p;
  p.min_level = 2;
  p.max_level = 3;
  amr::DropletWorkload wl(p);
  wl.initialize(mesh);
  const auto s = amr::summarize(mesh);
  EXPECT_EQ(s.leaves, mesh.leaf_count());
  EXPECT_GT(s.interface_cells, 0u);
  EXPECT_GT(s.liquid_volume, 0.0);
  EXPECT_LT(s.liquid_volume, 0.2);  // a jet, not a flooded domain
  EXPECT_EQ(s.max_level, p.max_level);
}

TEST(Extract, WriteVtkProducesValidHeaderAndCellCounts) {
  nvbm::Device dev(128 << 20, dev_cfg());
  amr::PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                    nullptr);
  const std::string path = "/tmp/pmo_extract_test.vtk";
  const auto cells = amr::write_vtk(mesh, path);
  EXPECT_EQ(cells, 8u);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("POINTS 64 double"), std::string::npos);
  EXPECT_NE(all.find("CELLS 8 72"), std::string::npos);
  EXPECT_NE(all.find("SCALARS vof double 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Extract, SliceRendersLiquidAndGas) {
  nvbm::Device dev(256 << 20, dev_cfg());
  amr::PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  amr::DropletParams p;
  p.min_level = 2;
  p.max_level = 3;
  amr::DropletWorkload wl(p);
  wl.initialize(mesh);
  std::ostringstream os;
  amr::print_slice(mesh, os, 0.5, 40, 20);
  const auto art = os.str();
  EXPECT_NE(art.find('#'), std::string::npos);  // liquid (reservoir)
  EXPECT_NE(art.find('.'), std::string::npos);  // gas
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 20);
}

// ---------------------------------------------------------------------------
// Hot-feature window
// ---------------------------------------------------------------------------

TEST(HotFeature, WindowTracksTip) {
  amr::DropletWorkload wl;
  const auto& p = wl.params();
  CellData interface_cell;
  interface_cell.vof = 0.5;
  // A cell at the initial tip is hot at t=0...
  const auto grid = [&](double v) {
    return static_cast<std::uint32_t>(v * (1 << 6));
  };
  const auto near_nozzle =
      LocCode::from_grid(6, grid(0.5), grid(0.5), grid(p.nozzle_z + 0.02));
  EXPECT_TRUE(wl.hot_feature_at(near_nozzle, interface_cell, 0.0));
  // ...but not once the tip has advanced far beyond it.
  EXPECT_FALSE(wl.hot_feature_at(near_nozzle, interface_cell, 2.0));
  // Gas cells are never hot.
  CellData gas;
  EXPECT_FALSE(wl.hot_feature_at(near_nozzle, gas, 0.0));
}

}  // namespace
}  // namespace pmo
