// Randomized crash-injection property tests.
//
// The paper's central durability claim (§1, §3): PM-octree needs no
// ordering fences on octant writes because at least one version of the
// octree is consistent at all times; only the 8-byte root swap is
// ordering-critical, and that one is flushed. These tests crash the
// emulated NVBM at adversarial points — dropping a random subset of
// unflushed cache lines — and verify that restore always yields exactly
// the last successfully persisted state.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "exec/pool.hpp"
#include "pmoctree/pm_octree.hpp"

namespace pmo::pmoctree {
namespace {

nvbm::Config crash_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kNone;
  c.crash_sim = true;
  return c;
}

CellData cell(double vof) {
  CellData d;
  d.vof = vof;
  return d;
}

using LeafMap = std::map<std::uint64_t, double>;

LeafMap leaves_of(PmOctree& tree) {
  LeafMap out;
  tree.for_each_leaf([&](const LocCode& c, const CellData& d) {
    out[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] = d.vof;
  });
  return out;
}

/// Applies `steps` random mutations to the tree.
void mutate_randomly(PmOctree& tree, Rng& rng, int steps) {
  for (int s = 0; s < steps; ++s) {
    std::vector<LocCode> leaves;
    tree.for_each_leaf(
        [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
    const auto& victim =
        leaves[static_cast<std::size_t>(rng.below(leaves.size()))];
    const auto action = rng.below(3);
    if (action == 0 && victim.level() < 6) {
      tree.refine(victim);
    } else if (action == 1 && victim.level() > 0) {
      // Coarsen the victim's parent when all its children are leaves.
      bool all_leaves = true;
      for (int i = 0; i < kChildrenPerNode && all_leaves; ++i) {
        const auto sib = victim.parent().child(i);
        all_leaves = tree.contains(sib) &&
                     tree.leaf_containing(sib.child(0)) == sib;
      }
      if (all_leaves) tree.coarsen(victim.parent());
    } else {
      tree.update(victim, cell(rng.uniform()));
    }
  }
}

class CrashInjection : public ::testing::TestWithParam<int> {};

TEST_P(CrashInjection, RestoreAlwaysYieldsLastPersistedVersion) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);

  nvbm::Device dev(64 << 20, crash_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 16 * sizeof(PNode);  // force heavy NVBM traffic
  pm.gc_on_persist = true;

  LeafMap persisted;
  {
    auto tree = PmOctree::create(heap, pm);
    tree.refine(LocCode::root());
    mutate_randomly(tree, rng, 20);
    tree.persist();
    persisted = leaves_of(tree);

    // Now mutate again — and crash mid-flight, with every unflushed cache
    // line surviving or dying independently at random.
    mutate_randomly(tree, rng, 15);
  }
  const auto survive_p = rng.uniform();
  dev.simulate_crash(rng, survive_p);

  // Reboot: re-attach the heap and restore.
  nvbm::Heap heap2(dev);
  ASSERT_TRUE(PmOctree::can_restore(heap2));
  auto back = PmOctree::restore(heap2, pm);
  EXPECT_EQ(leaves_of(back), persisted)
      << "seed " << seed << " survive_p " << survive_p;
}

TEST_P(CrashInjection, CrashDuringMergeKeepsOldVersion) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);

  nvbm::Device dev(64 << 20, crash_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.gc_on_persist = false;

  LeafMap persisted;
  {
    auto tree = PmOctree::create(heap, pm);
    tree.refine(LocCode::root());
    mutate_randomly(tree, rng, 10);
    tree.persist();
    persisted = leaves_of(tree);
    mutate_randomly(tree, rng, 10);
    // Simulate a crash *inside* the next persist: the merge writes NVBM
    // nodes but we "die" before the root swap. Emulate by doing the
    // mutations' writes and crashing now — from the device's perspective
    // that is indistinguishable from dying mid-merge, since the root swap
    // is the only fence-protected write.
  }
  dev.simulate_crash(rng, rng.uniform());

  nvbm::Heap heap2(dev);
  auto back = PmOctree::restore(heap2, pm);
  EXPECT_EQ(leaves_of(back), persisted);
}

TEST_P(CrashInjection, RecoveryGcReclaimsOrphans) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 31);

  nvbm::Device dev(64 << 20, crash_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 0;  // all octants on NVBM

  {
    auto tree = PmOctree::create(heap, pm);
    tree.refine(LocCode::root());
    tree.persist();
    mutate_randomly(tree, rng, 12);  // creates orphan NVBM objects
  }
  dev.simulate_crash(rng, 1.0);  // even if all lines survive...

  nvbm::Heap heap2(dev);
  auto back = PmOctree::restore(heap2, pm);
  const auto reachable = back.node_count();
  back.gc();  // ...recovery GC reclaims all non-reachable octants
  EXPECT_EQ(heap2.stats().live_objects, reachable);
  // And the tree still reads consistently afterwards.
  EXPECT_EQ(back.node_count(), reachable);
}

TEST_P(CrashInjection, HotNodeCacheNeverChangesWhatACrashLoses) {
  // The hot-node cache is read-path only: the device's dirty-line set —
  // and therefore exactly which data a crash can lose — must be identical
  // with the cache on and off. Run the same RNG-driven history twice and
  // compare both the persisted state and the restored state.
  const int seed = GetParam();
  auto run = [&](std::size_t cache_bytes) {
    Rng rng(static_cast<std::uint64_t>(seed) * 24593 + 17);
    nvbm::Device dev(64 << 20, crash_cfg());
    nvbm::Heap heap(dev);
    PmConfig pm;
    pm.dram_budget_bytes = 16 * sizeof(PNode);
    pm.node_cache_bytes = cache_bytes;
    LeafMap persisted;
    {
      auto tree = PmOctree::create(heap, pm);
      tree.refine(LocCode::root());
      mutate_randomly(tree, rng, 18);
      tree.persist();
      persisted = leaves_of(tree);
      mutate_randomly(tree, rng, 12);
    }
    // Same seed -> same writes -> same dirty lines -> the crash consumes
    // the RNG stream identically in both runs.
    dev.simulate_crash(rng, 0.4);
    nvbm::Heap heap2(dev);
    auto back = PmOctree::restore(heap2, pm);
    return std::make_pair(persisted, leaves_of(back));
  };
  const auto on = run(std::size_t{4} << 20);
  const auto off = run(0);
  EXPECT_EQ(on.first, off.first) << "seed " << seed;
  EXPECT_EQ(on.second, off.second) << "seed " << seed;
  EXPECT_EQ(on.second, on.first) << "seed " << seed;
}

TEST_P(CrashInjection, ParallelMergeKeepsCrashConsistency) {
  // The parallel merge hands each level-2 subtree to a worker, but all
  // device stores happen in the coordinator's deterministic replay — so
  // the dirty-line set a crash can consume must be exactly the same as
  // with a sequential merge, and recovery must still be nothing but the
  // root-address swap. Crash after a persist that actually ran the
  // thread-pool path and verify restore yields that persisted version.
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 50021 + 3);

  nvbm::Device dev(64 << 20, crash_cfg());
  nvbm::Heap heap(dev);
  PmConfig pm;
  pm.dram_budget_bytes = 64 * sizeof(PNode);
  pm.gc_on_persist = true;

  exec::ThreadPool pool(8);
  LeafMap persisted;
  {
    auto tree = PmOctree::create(heap, pm);
    tree.set_exec(&pool);
    // Deep uniform start so the merge has many level-2 subtree tasks to
    // fan out across the pool.
    for (int i = 0; i < 3; ++i) {
      tree.refine_where([](const LocCode&, const CellData&) { return true; });
    }
    mutate_randomly(tree, rng, 15);
    tree.persist();  // parallel merge
    mutate_randomly(tree, rng, 12);
    tree.persist();  // parallel incremental merge (pruning active)
    persisted = leaves_of(tree);
    mutate_randomly(tree, rng, 12);  // in-flight work the crash may eat
  }
  const auto survive_p = rng.uniform();
  dev.simulate_crash(rng, survive_p);

  nvbm::Heap heap2(dev);
  ASSERT_TRUE(PmOctree::can_restore(heap2));
  auto back = PmOctree::restore(heap2, pm);
  EXPECT_EQ(leaves_of(back), persisted)
      << "seed " << seed << " survive_p " << survive_p;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashInjection, ::testing::Range(0, 12));

TEST(CrashInjection, MultiStepCrashRecoverCrashAgain) {
  Rng rng(555);
  nvbm::Device dev(64 << 20, crash_cfg());
  PmConfig pm;
  pm.dram_budget_bytes = 32 * sizeof(PNode);

  LeafMap persisted;
  {
    nvbm::Heap heap(dev);
    auto tree = PmOctree::create(heap, pm);
    tree.refine(LocCode::root());
    tree.persist();
    persisted = leaves_of(tree);
    mutate_randomly(tree, rng, 8);
    dev.simulate_crash(rng, 0.3);
  }
  for (int round = 0; round < 4; ++round) {
    nvbm::Heap heap(dev);
    auto tree = PmOctree::restore(heap, pm);
    EXPECT_EQ(leaves_of(tree), persisted) << "round " << round;
    mutate_randomly(tree, rng, 8);
    if (round % 2 == 0) {
      tree.persist();
      persisted = leaves_of(tree);
      mutate_randomly(tree, rng, 4);
    }
    dev.simulate_crash(rng, rng.uniform());
  }
}

// ---------------------------------------------------------------------------
// Mid-compaction crashes (DESIGN.md §11): chain pages and parent relinks
// are ordinary pre-flush writes, so a crash between the compaction stage
// and the root swap must recover the previous sealed version byte-exact —
// and a crash after a compacting persist must recover the fully compacted
// image with every chain page intact (never torn).
// ---------------------------------------------------------------------------

/// Walks the restored persisted version and validates every reachable
/// chain page-by-page; returns the number of distinct chains seen.
std::size_t validate_reachable_chains(PmOctree& tree) {
  std::set<std::uint64_t> chains;
  std::vector<NodeRef> stack{tree.previous_root()};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    if (ref.null()) continue;
    if (ref.in_linear()) {
      const std::uint64_t chain = ref.linear_chain();
      if (chains.insert(chain).second) {
        linear::ChainView view(tree.device(), chain);
        EXPECT_TRUE(view.validate()) << "torn chain at " << chain;
      }
      continue;
    }
    const PNode node = tree.device().load<PNode>(ref.nvbm_offset());
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
  return chains.size();
}

class CompactionCrash : public ::testing::TestWithParam<int> {};

TEST_P(CompactionCrash, MidCompactionCrashRecoversPointerTierVersion) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 3);

  nvbm::Device dev(64 << 20, crash_cfg());
  PmConfig pm;
  pm.dram_budget_bytes = 0;  // all-NVBM: the compaction-heavy regime
  pm.compact_min_records = 8;  // small trees here; compact eagerly
  LeafMap persisted;
  {
    nvbm::Heap heap(dev);
    auto tree = PmOctree::create(heap, pm);
    tree.refine(LocCode::root());
    for (int i = 0; i < kChildrenPerNode; ++i)
      tree.refine(LocCode::root().child(i));
    mutate_randomly(tree, rng, 20);
    // P1 seals a fully fresh (pointer-tier) version: no old subtrees yet,
    // so nothing compacts and the durable root references no chains.
    const auto p1 = tree.persist();
    EXPECT_EQ(p1.compacted_subtrees, 0u);
    persisted = leaves_of(tree);
    // P2 would compact the now-clean bulk — but dies after the compaction
    // stage, before flush_all() and the root swap. Chain pages and parent
    // relinks are stranded in the write buffer.
    LocCode dirty = LocCode::root();
    tree.for_each_leaf([&](const LocCode& c, const CellData&) { dirty = c; });
    tree.update(dirty, cell(0.25));
    tree.set_crash_before_flush_for_test(true);
    tree.persist();
  }
  dev.simulate_crash(rng, rng.uniform());

  nvbm::Heap heap2(dev);
  auto back = PmOctree::restore(heap2, pm);
  EXPECT_EQ(leaves_of(back), persisted) << "seed " << seed;
  // Recovery landed on the pre-compaction version: fully pointer-tier.
  EXPECT_EQ(validate_reachable_chains(back), 0u);
}

TEST_P(CompactionCrash, PostSwapCrashRecoversFullyCompactedVersion) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 12289 + 11);

  nvbm::Device dev(64 << 20, crash_cfg());
  PmConfig pm;
  pm.dram_budget_bytes = 0;
  pm.compact_min_records = 8;  // small trees here; compact eagerly
  LeafMap persisted;
  {
    nvbm::Heap heap(dev);
    auto tree = PmOctree::create(heap, pm);
    tree.refine(LocCode::root());
    for (int i = 0; i < kChildrenPerNode; ++i)
      tree.refine(LocCode::root().child(i));
    mutate_randomly(tree, rng, 20);
    tree.persist();
    // P2 compacts the clean bulk and completes its root swap; the crash
    // hits afterwards, with the post-persist mutations still in flight.
    LocCode dirty = LocCode::root();
    tree.for_each_leaf([&](const LocCode& c, const CellData&) { dirty = c; });
    tree.update(dirty, cell(0.75));
    const auto p2 = tree.persist();
    ASSERT_GT(p2.compacted_subtrees, 0u) << "test must exercise chains";
    persisted = leaves_of(tree);
    mutate_randomly(tree, rng, 10);  // lost work the crash may eat
  }
  dev.simulate_crash(rng, rng.uniform());

  nvbm::Heap heap2(dev);
  auto back = PmOctree::restore(heap2, pm);
  EXPECT_EQ(leaves_of(back), persisted) << "seed " << seed;
  // Recovery landed on the compacted version: chains reachable and every
  // page intact — a torn page would fail validate() (or the magic check).
  EXPECT_GT(validate_reachable_chains(back), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionCrash, ::testing::Range(0, 8));

TEST(CrashInjection, NothingPersistedMeansNothingRestorable) {
  Rng rng(9);
  nvbm::Device dev(16 << 20, crash_cfg());
  {
    nvbm::Heap heap(dev);
    auto tree = PmOctree::create(heap, PmConfig{});
    tree.refine(LocCode::root());
    // no persist()
  }
  dev.simulate_crash(rng, 0.5);
  nvbm::Heap heap(dev);
  EXPECT_FALSE(PmOctree::can_restore(heap));
}

}  // namespace
}  // namespace pmo::pmoctree
