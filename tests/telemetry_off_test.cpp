// Compile-and-behavior test for PMO_TELEMETRY=OFF. This target builds its
// own copies of the telemetry sources with PMO_TELEMETRY_ENABLED=0 (see
// tests/CMakeLists.txt — linking the normally-built library would be an
// ODR violation, since Span's layout differs between modes) and checks
// that the no-op surface is complete and self-contained: every call site
// in the tree must compile and do nothing, with no reference to
// recording-only state.
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#if PMO_TELEMETRY_ENABLED
#error "this test must be compiled with PMO_TELEMETRY_ENABLED=0"
#endif

namespace pmo::telemetry {
namespace {

TEST(TelemetryOff, RegistryRecordsNothing) {
  EXPECT_FALSE(enabled());
  Registry reg;
  reg.counter("ops").add(5);
  reg.gauge("depth").set(3.0);
  reg.histogram("lat").record(1000);
  {
    Span s(reg, "persist");
    EXPECT_TRUE(Span::current_path().empty());
    Span inner(reg, "merge");
    EXPECT_TRUE(Span::current_path().empty());
  }
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("ops"), 0u);
  EXPECT_EQ(snap.gauges.at("depth"), 0.0);
}

TEST(TelemetryOff, DropGaugesStillPrunesRegistry) {
  Registry reg;
  reg.gauge("nvbm.wear");
  reg.gauge("mesh.leaves");
  reg.drop_gauges("nvbm.");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.count("nvbm.wear"), 0u);
  EXPECT_EQ(snap.gauges.count("mesh.leaves"), 1u);
}

TEST(TelemetryOff, TraceEmittersAreInertAndSessionExportsEmpty) {
  EXPECT_FALSE(trace::active());
  trace::begin("a");
  trace::instant("b");
  trace::counter("c", 1.0);
  trace::audit("bench.crash", {{"step", 1.0}});
  trace::end("a");
  {
    trace::TrackGuard guard(7, 2);
    trace::instant("d");
  }
  trace::TraceSession session;
  EXPECT_FALSE(trace::active());  // OFF build never arms the gate
  trace::instant("e");
  session.stop();
  EXPECT_EQ(session.event_count(), 0u);
  EXPECT_EQ(session.dropped_events(), 0u);

  std::ostringstream out;
  session.write(out);
  std::string err;
  const auto doc = json::Value::parse(out.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto check = trace::validate_chrome_trace(*doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 0u);
}

TEST(TelemetryOff, SamplerRecordsNothingButKeepsSchemaShape) {
  namespace ts = timeseries;
  Registry reg;
  ts::MetricSampler sampler(reg, {16, false});
  sampler.add({"c", ts::Kind::kCounter, "t.c", "", 0.0, true});
  sampler.add({"qps", ts::Kind::kRate, "t.lat", "", 0.0, false});
  reg.counter("t.c").add(5);
  sampler.tick();
  sampler.tick();
  EXPECT_EQ(sampler.ticks(), 0u);  // tick() compiles to a no-op

  // install/tick_point are inert: the hook never fires and the
  // installed-sampler slot stays empty.
  sampler.install_on_current_thread();
  ts::tick_point();
  EXPECT_EQ(sampler.ticks(), 0u);
  EXPECT_EQ(ts::MetricSampler::installed(), nullptr);
  ts::MetricSampler::uninstall();

  // to_json still emits every registered series (with empty point
  // arrays) so bench JSON stays schema-valid with recording off.
  const auto dump = sampler.to_json();
  EXPECT_EQ(dump.find("ticks")->as_double(), 0.0);
  const auto* series = dump.find("series");
  ASSERT_NE(series, nullptr);
  const auto* c = series->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->find("kind")->as_string(), "counter");
  EXPECT_EQ(c->find("t")->size(), 0u);
  EXPECT_EQ(c->find("v")->size(), 0u);
  const auto* q = series->find("qps");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->find("modeled")->as_double(), 0.0);
}

TEST(TelemetryOff, SectionsStillExport) {
  trace::clear_sections();
  trace::Section s = trace::register_section("nvbm0", [] {
    auto v = json::Value::object();
    v["capacity"] = 1024;
    return v;
  });
  const auto all = trace::collect_sections();
  ASSERT_NE(all.find("nvbm0"), nullptr);
  EXPECT_EQ(all.find("nvbm0")->find("capacity")->as_double(), 1024.0);
  trace::clear_sections();
}

}  // namespace
}  // namespace pmo::telemetry
