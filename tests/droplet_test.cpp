// Droplet-ejection workload physics/shape tests.
#include "amr/droplet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "amr/pm_backend.hpp"

namespace pmo::amr {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

TEST(Droplet, ReservoirIsLiquid) {
  DropletWorkload wl;
  EXPECT_GT(wl.phi(0.5, 0.5, 0.03, 0.0), 0.0);   // on axis, in reservoir
  EXPECT_LT(wl.phi(0.05, 0.05, 0.03, 0.0), 0.0);  // far corner is gas
}

TEST(Droplet, FarFieldIsGas) {
  DropletWorkload wl;
  for (double t : {0.0, 0.5, 1.0}) {
    EXPECT_LT(wl.phi(0.9, 0.9, 0.1, t), 0.0);
    EXPECT_LT(wl.phi(0.9, 0.9, 0.5, t), 0.0);
  }
}

TEST(Droplet, JetAdvancesOverTime) {
  DropletWorkload wl;
  const auto& p = wl.params();
  // A point on the axis beyond the nozzle becomes liquid once the tip
  // passes it.
  const double z = p.nozzle_z + 0.15;
  EXPECT_LT(wl.phi(p.axis_x, p.axis_y, z, 0.0), 0.0);
  const double t_arrival = 0.15 / p.jet_speed;
  // Probe mid-segment (phase-dependent): at least some times after
  // arrival the point is liquid.
  bool ever_liquid = false;
  for (double t = t_arrival; t < t_arrival + 0.5; t += 0.02) {
    ever_liquid |= wl.phi(p.axis_x, p.axis_y, z, t) > 0.0;
  }
  EXPECT_TRUE(ever_liquid);
}

TEST(Droplet, CapillaryWaveEventuallyPinches) {
  // With the amplitude growing, necks (r <= 0 on the axis radius profile)
  // must appear: the jet breaks into droplet segments.
  DropletWorkload wl;
  const auto& p = wl.params();
  const double t = 2.0;  // late: amplitude saturated, jet long
  int transitions = 0;
  bool was_liquid = false;
  for (double z = p.nozzle_z + 1e-4; z < 0.92; z += 1e-3) {
    const bool liquid = wl.phi(p.axis_x, p.axis_y, z, t) > 0.0;
    transitions += (liquid != was_liquid);
    was_liquid = liquid;
  }
  // Several segments => several liquid/gas transitions along the axis.
  EXPECT_GE(transitions, 4);
}

TEST(Droplet, VofCellSmearedBetweenZeroAndOne) {
  DropletWorkload wl;
  // Deep inside the reservoir (bottom of the domain, on the axis).
  const auto inside = LocCode::from_grid(4, 8, 8, 0);
  EXPECT_DOUBLE_EQ(wl.vof_cell(inside, 0.0), 1.0);
  // Far-field gas.
  const auto outside = LocCode::from_grid(4, 1, 1, 14);
  EXPECT_DOUBLE_EQ(wl.vof_cell(outside, 0.0), 0.0);
}

TEST(Droplet, InitializeRefinesInterfaceToMaxLevel) {
  nvbm::Device dev(512 << 20, dev_cfg());
  PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  DropletParams p;
  p.min_level = 1;
  p.max_level = 4;
  DropletWorkload wl(p);
  wl.initialize(mesh);

  int max_seen = 0;
  std::size_t interface_cells = 0;
  mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
    max_seen = std::max(max_seen, c.level());
    if (is_interface_cell(d)) {
      ++interface_cells;
      // Interface must be resolved at the maximum level.
      EXPECT_EQ(c.level(), p.max_level);
    }
  });
  EXPECT_EQ(max_seen, p.max_level);
  EXPECT_GT(interface_cells, 50u);
}

TEST(Droplet, StepKeepsMeshBalancedAndRefined) {
  nvbm::Device dev(512 << 20, dev_cfg());
  PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  DropletParams p;
  p.min_level = 1;
  p.max_level = 3;
  DropletWorkload wl(p);
  wl.initialize(mesh);
  for (int s = 0; s < 3; ++s) {
    const auto st = wl.step(mesh, s);
    EXPECT_GT(st.leaves, 0u);
    EXPECT_TRUE(mesh.tree().is_balanced()) << "step " << s;
    // Interface still at max level after the step.
    mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
      if (is_interface_cell(d)) {
        EXPECT_EQ(c.level(), p.max_level);
      }
    });
  }
}

TEST(Droplet, HotRegionMovesBetweenSteps) {
  // The overlap between consecutive interface sets must be partial: the
  // jet advances, so some cells enter/leave the hot band each step —
  // that is what makes the layout transformation worthwhile.
  nvbm::Device dev(512 << 20, dev_cfg());
  PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  DropletParams p;
  p.min_level = 1;
  p.max_level = 3;
  p.dt = 0.3;  // tip advances about one max-level cell per step
  DropletWorkload wl(p);
  wl.initialize(mesh);

  auto interface_set = [&] {
    std::set<std::uint64_t> out;
    mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
      if (is_interface_cell(d)) out.insert(c.key());
    });
    return out;
  };
  wl.step(mesh, 0);
  const auto a = interface_set();
  wl.step(mesh, 1);
  const auto b = interface_set();
  std::size_t common = 0;
  for (const auto k : b) common += a.count(k);
  EXPECT_GT(common, 0u);        // overlap exists (paper: 39-99%)
  EXPECT_LT(common, b.size());  // but the hot set moved
}

TEST(Droplet, PersistStatsShowHighOverlap) {
  // Fig. 3: adjacent time steps share most octants.
  nvbm::Device dev(512 << 20, dev_cfg());
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = 0;  // everything NVBM: sharing fully visible
  PmOctreeBackend mesh(dev, pm);
  DropletParams p;
  p.min_level = 2;
  p.max_level = 4;
  DropletWorkload wl(p);
  wl.initialize(mesh);
  wl.step(mesh, 0);
  const auto st1 = mesh.last_persist();
  wl.step(mesh, 1);
  const auto st2 = mesh.last_persist();
  (void)st1;
  EXPECT_GT(st2.overlap_ratio, 0.30);
  EXPECT_LT(st2.overlap_ratio, 1.00);
}

TEST(Droplet, StepStatsAccountModeledTime) {
  nvbm::Device dev(512 << 20, dev_cfg());
  PmOctreeBackend mesh(dev, pmoctree::PmConfig{});
  DropletParams p;
  p.min_level = 1;
  p.max_level = 3;
  DropletWorkload wl(p);
  wl.initialize(mesh);
  const auto before = mesh.modeled_ns();
  const auto st = wl.step(mesh, 0);
  const auto after = mesh.modeled_ns();
  EXPECT_EQ(st.total_ns(), after - before);
  EXPECT_GT(st.solve_ns, 0u);
  EXPECT_GT(st.persist_ns, 0u);
}

TEST(Droplet, RejectsBadLevels) {
  DropletParams p;
  p.min_level = 5;
  p.max_level = 3;
  EXPECT_THROW(DropletWorkload{p}, ContractError);
}

}  // namespace
}  // namespace pmo::amr
