// perf_smoke gate (ctest label `perf_smoke`): deterministic, counter-based
// performance regressions — no wall-clock measurement, so the gate is
// stable on loaded CI machines. The tentpole check: the traversal-cursor +
// hot-node-cache read path must cut NVBM line reads on a small-scale
// droplet workload to at most 60% of the cache-off baseline (the
// acceptance bar is a 40% drop at full bench scale; this 5%-scale replica
// runs in seconds). The cache is read-path only, so everything modeled
// except read traffic must stay bit-identical — that is asserted too, so a
// "speedup" obtained by changing semantics fails the gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "pmoctree/api.hpp"

namespace pmo {
namespace {

struct Outcome {
  std::map<std::uint64_t, double> leaves;
  std::uint64_t lines_read = 0;      ///< real NVBM medium traffic
  std::uint64_t lines_written = 0;
  std::uint64_t nvbm_writes = 0;
  std::uint64_t cached_reads = 0;    ///< DRAM-latency hits (cache channel)
};

Outcome run_droplet(std::size_t node_cache_bytes) {
  nvbm::Device dev(std::size_t{128} << 20, {});
  pmoctree::PmConfig pm;
  // Small C0 budget so most octants live on NVBM — the regime the cache
  // targets (fig07/fig10 run the same shape at ~20x the leaf count).
  pm.dram_budget_bytes = 96 * sizeof(pmoctree::PNode);
  pm.node_cache_bytes = node_cache_bytes;
  amr::PmOctreeBackend mesh(dev, pm);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.05;
  amr::DropletWorkload wl(params);
  mesh.register_feature([&wl](const LocCode& c, const CellData& d) {
    return wl.hot_feature(c, d);
  });

  wl.initialize(mesh);
  for (int s = 0; s < 4; ++s) wl.step(mesh, s);

  Outcome out;
  mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
    out.leaves[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] =
        d.vof;
  });
  const auto& ctr = dev.counters();
  out.lines_read = ctr.lines_read;
  out.lines_written = ctr.lines_written;
  out.nvbm_writes = ctr.writes;
  out.cached_reads = ctr.cached_reads;
  return out;
}

TEST(PerfSmoke, NodeCacheCutsNvbmLineReadsByAtLeast40Percent) {
  const Outcome cached = run_droplet(std::size_t{4} << 20);
  const Outcome uncached = run_droplet(0);

  // The gate: cached medium traffic <= 60% of the baseline.
  ASSERT_GT(uncached.lines_read, 0u);
  EXPECT_LE(cached.lines_read * 100, uncached.lines_read * 60)
      << "cached lines_read " << cached.lines_read << " vs uncached "
      << uncached.lines_read << " (ratio "
      << (100.0 * static_cast<double>(cached.lines_read) /
          static_cast<double>(uncached.lines_read))
      << "%)";
  // The hits really went through the DRAM-latency channel.
  EXPECT_GT(cached.cached_reads, 0u);
  EXPECT_EQ(uncached.cached_reads, 0u);

  // Read-path only: identical mesh, identical writes.
  EXPECT_EQ(cached.leaves, uncached.leaves);
  EXPECT_EQ(cached.lines_written, uncached.lines_written);
  EXPECT_EQ(cached.nvbm_writes, uncached.nvbm_writes);
}

struct CompactOutcome {
  std::map<std::uint64_t, double> leaves;
  std::uint64_t sweep_lines_read = 0;  ///< medium traffic of the cold sweeps
  std::size_t nodes = 0;
  std::size_t linear_chains = 0;
  std::size_t linear_records = 0;
};

CompactOutcome run_droplet_compaction(bool compaction_on) {
  nvbm::Device dev(std::size_t{128} << 20, {});
  pmoctree::PmConfig pm;
  // All-NVBM with a small node cache: the regime where the cold bulk is
  // re-read from the medium every sweep — what the linear tier is for.
  // Both arms get identical cache budgets; the off arm simply has no
  // pages to put in the page cache.
  pm.dram_budget_bytes = 0;
  pm.node_cache_bytes = std::size_t{16} << 10;
  pm.page_cache_bytes = std::size_t{256} << 10;
  pm.linear_compaction = compaction_on;
  // The 5%-scale droplet's clean subtrees are a level smaller than the
  // production default threshold assumes; compact one level earlier.
  pm.compact_min_records = 8;
  amr::PmOctreeBackend mesh(dev, pm);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.05;
  amr::DropletWorkload wl(params);
  wl.initialize(mesh);
  for (int s = 0; s < 2; ++s) wl.step(mesh, s);

  // Quiesce: pinpoint updates, one per persist, spread over the mesh.
  // Each persist freshens one root-to-leaf path, exposing the path's old
  // clean siblings to the compactor; a few rounds flip the cold bulk of
  // the tree into packed chains (in the on arm).
  auto& tree = mesh.tree();
  std::vector<LocCode> codes;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { codes.push_back(c); });
  for (int r = 0; r < 8; ++r) {
    CellData d{};
    d.vof = 0.5 + 0.01 * r;
    tree.update(codes[(r * codes.size()) / 8], d);
    tree.persist();
  }

  // Cold sweeps: the analytics phase fig07 charges. Only this phase is
  // gated — the build/quiesce phases are identical in both arms.
  const std::uint64_t before = dev.counters().lines_read;
  CompactOutcome out;
  for (int k = 0; k < 4; ++k) {
    out.leaves.clear();
    mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
      out.leaves[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] =
          d.vof;
    });
  }
  out.sweep_lines_read = dev.counters().lines_read - before;
  const auto s = tree.stats();
  out.nodes = s.nodes;
  out.linear_chains = s.linear_chains;
  out.linear_records = s.linear_records;
  return out;
}

TEST(PerfSmoke, LinearCompactionCutsNvbmLineReadsByAtLeast40Percent) {
  // The flat-tier gate (fig07's compaction claim at 5% scale): reading
  // persisted-and-clean subtrees as packed pages — a ~62-line stream per
  // 64 octants where the pointer tier pays ~3 lines per octant, with
  // repeats served from the page cache — must cut the cold-sweep NVBM
  // line reads to at most 60% of the pointer-tier baseline. (In practice
  // the cut is far deeper; 60% is the acceptance bar.)
  const CompactOutcome on = run_droplet_compaction(true);
  const CompactOutcome off = run_droplet_compaction(false);

  ASSERT_GT(off.sweep_lines_read, 0u);
  EXPECT_LE(on.sweep_lines_read * 100, off.sweep_lines_read * 60)
      << "compaction-on sweep lines_read " << on.sweep_lines_read
      << " vs off " << off.sweep_lines_read << " (ratio "
      << (100.0 * static_cast<double>(on.sweep_lines_read) /
          static_cast<double>(off.sweep_lines_read))
      << "%)";
  // The gate must measure a mostly-compacted tree, not a token chain…
  EXPECT_GT(on.linear_chains, 0u);
  EXPECT_GE(on.linear_records * 2, on.nodes);
  // …and the A/B toggle changes layout only, never the mesh.
  EXPECT_EQ(off.linear_chains, 0u);
  EXPECT_EQ(on.leaves, off.leaves);
}

TEST(PerfSmoke, IncrementalPersistVisitsAtMost10PercentOfNodes) {
  // The dirty-subtree pruning gate: after a full persist, mutating at most
  // 1% of the leaves must let the next merge skip all the clean subtrees —
  // persist.visits (octants the merge actually touches) stays at or below
  // 10% of nodes_total. Counter-based, so the gate is exact and stable.
  nvbm::Device dev(std::size_t{256} << 20, {});
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = std::size_t{64} << 20;  // all of C0 stays in DRAM
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();

  std::vector<LocCode> leaves;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
  ASSERT_GE(leaves.size(), 1000u);  // level 4 uniform: 4096 leaves
  const std::size_t touched = leaves.size() / 100;  // exactly 1%
  ASSERT_GT(touched, 0u);
  for (std::size_t i = 0; i < touched; ++i) {
    CellData d;
    d.vof = 0.25 + 0.001 * static_cast<double>(i);
    tree.update(leaves[i * (leaves.size() / touched)], d);
  }

  const auto stats = tree.persist();
  ASSERT_GT(stats.nodes_total, 0u);
  EXPECT_GT(stats.pruned_subtrees, 0u);
  EXPECT_LE(stats.visits * 100, stats.nodes_total * 10)
      << "incremental persist visited " << stats.visits << " of "
      << stats.nodes_total << " octants ("
      << (100.0 * static_cast<double>(stats.visits) /
          static_cast<double>(stats.nodes_total))
      << "%)";
}

}  // namespace
}  // namespace pmo
