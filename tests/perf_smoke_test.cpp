// perf_smoke gate (ctest label `perf_smoke`): deterministic, counter-based
// performance regressions — no wall-clock measurement, so the gate is
// stable on loaded CI machines. The tentpole check: the traversal-cursor +
// hot-node-cache read path must cut NVBM line reads on a small-scale
// droplet workload to at most 60% of the cache-off baseline (the
// acceptance bar is a 40% drop at full bench scale; this 5%-scale replica
// runs in seconds). The cache is read-path only, so everything modeled
// except read traffic must stay bit-identical — that is asserted too, so a
// "speedup" obtained by changing semantics fails the gate.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "common/simd.hpp"
#include "pmoctree/api.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo {
namespace {

struct Outcome {
  std::map<std::uint64_t, double> leaves;
  std::uint64_t lines_read = 0;      ///< real NVBM medium traffic
  std::uint64_t lines_written = 0;
  std::uint64_t nvbm_writes = 0;
  std::uint64_t cached_reads = 0;    ///< DRAM-latency hits (cache channel)
};

Outcome run_droplet(std::size_t node_cache_bytes) {
  nvbm::Device dev(std::size_t{128} << 20, {});
  pmoctree::PmConfig pm;
  // Small C0 budget so most octants live on NVBM — the regime the cache
  // targets (fig07/fig10 run the same shape at ~20x the leaf count).
  pm.dram_budget_bytes = 96 * sizeof(pmoctree::PNode);
  pm.node_cache_bytes = node_cache_bytes;
  amr::PmOctreeBackend mesh(dev, pm);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.05;
  amr::DropletWorkload wl(params);
  mesh.register_feature([&wl](const LocCode& c, const CellData& d) {
    return wl.hot_feature(c, d);
  });

  wl.initialize(mesh);
  for (int s = 0; s < 4; ++s) wl.step(mesh, s);

  Outcome out;
  mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
    out.leaves[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] =
        d.vof;
  });
  const auto& ctr = dev.counters();
  out.lines_read = ctr.lines_read;
  out.lines_written = ctr.lines_written;
  out.nvbm_writes = ctr.writes;
  out.cached_reads = ctr.cached_reads;
  return out;
}

TEST(PerfSmoke, NodeCacheCutsNvbmLineReadsByAtLeast40Percent) {
  const Outcome cached = run_droplet(std::size_t{4} << 20);
  const Outcome uncached = run_droplet(0);

  // The gate: cached medium traffic <= 60% of the baseline.
  ASSERT_GT(uncached.lines_read, 0u);
  EXPECT_LE(cached.lines_read * 100, uncached.lines_read * 60)
      << "cached lines_read " << cached.lines_read << " vs uncached "
      << uncached.lines_read << " (ratio "
      << (100.0 * static_cast<double>(cached.lines_read) /
          static_cast<double>(uncached.lines_read))
      << "%)";
  // The hits really went through the DRAM-latency channel.
  EXPECT_GT(cached.cached_reads, 0u);
  EXPECT_EQ(uncached.cached_reads, 0u);

  // Read-path only: identical mesh, identical writes.
  EXPECT_EQ(cached.leaves, uncached.leaves);
  EXPECT_EQ(cached.lines_written, uncached.lines_written);
  EXPECT_EQ(cached.nvbm_writes, uncached.nvbm_writes);
}

struct CompactOutcome {
  std::map<std::uint64_t, double> leaves;
  std::uint64_t sweep_lines_read = 0;  ///< medium traffic of the cold sweeps
  std::size_t nodes = 0;
  std::size_t linear_chains = 0;
  std::size_t linear_records = 0;
};

CompactOutcome run_droplet_compaction(bool compaction_on) {
  nvbm::Device dev(std::size_t{128} << 20, {});
  pmoctree::PmConfig pm;
  // All-NVBM with a small node cache: the regime where the cold bulk is
  // re-read from the medium every sweep — what the linear tier is for.
  // Both arms get identical cache budgets; the off arm simply has no
  // pages to put in the page cache.
  pm.dram_budget_bytes = 0;
  pm.node_cache_bytes = std::size_t{16} << 10;
  pm.page_cache_bytes = std::size_t{256} << 10;
  pm.linear_compaction = compaction_on;
  // The 5%-scale droplet's clean subtrees are a level smaller than the
  // production default threshold assumes; compact one level earlier.
  pm.compact_min_records = 8;
  amr::PmOctreeBackend mesh(dev, pm);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.05;
  amr::DropletWorkload wl(params);
  wl.initialize(mesh);
  for (int s = 0; s < 2; ++s) wl.step(mesh, s);

  // Quiesce: pinpoint updates, one per persist, spread over the mesh.
  // Each persist freshens one root-to-leaf path, exposing the path's old
  // clean siblings to the compactor; a few rounds flip the cold bulk of
  // the tree into packed chains (in the on arm).
  auto& tree = mesh.tree();
  std::vector<LocCode> codes;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { codes.push_back(c); });
  for (int r = 0; r < 8; ++r) {
    CellData d{};
    d.vof = 0.5 + 0.01 * r;
    tree.update(codes[(r * codes.size()) / 8], d);
    tree.persist();
  }

  // Cold sweeps: the analytics phase fig07 charges. Only this phase is
  // gated — the build/quiesce phases are identical in both arms.
  const std::uint64_t before = dev.counters().lines_read;
  CompactOutcome out;
  for (int k = 0; k < 4; ++k) {
    out.leaves.clear();
    mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
      out.leaves[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] =
          d.vof;
    });
  }
  out.sweep_lines_read = dev.counters().lines_read - before;
  const auto s = tree.stats();
  out.nodes = s.nodes;
  out.linear_chains = s.linear_chains;
  out.linear_records = s.linear_records;
  return out;
}

TEST(PerfSmoke, LinearCompactionCutsNvbmLineReadsByAtLeast40Percent) {
  // The flat-tier gate (fig07's compaction claim at 5% scale): reading
  // persisted-and-clean subtrees as packed pages — a ~62-line stream per
  // 64 octants where the pointer tier pays ~3 lines per octant, with
  // repeats served from the page cache — must cut the cold-sweep NVBM
  // line reads to at most 60% of the pointer-tier baseline. (In practice
  // the cut is far deeper; 60% is the acceptance bar.)
  const CompactOutcome on = run_droplet_compaction(true);
  const CompactOutcome off = run_droplet_compaction(false);

  ASSERT_GT(off.sweep_lines_read, 0u);
  EXPECT_LE(on.sweep_lines_read * 100, off.sweep_lines_read * 60)
      << "compaction-on sweep lines_read " << on.sweep_lines_read
      << " vs off " << off.sweep_lines_read << " (ratio "
      << (100.0 * static_cast<double>(on.sweep_lines_read) /
          static_cast<double>(off.sweep_lines_read))
      << "%)";
  // The gate must measure a mostly-compacted tree, not a token chain…
  EXPECT_GT(on.linear_chains, 0u);
  EXPECT_GE(on.linear_records * 2, on.nodes);
  // …and the A/B toggle changes layout only, never the mesh.
  EXPECT_EQ(off.linear_chains, 0u);
  EXPECT_EQ(on.leaves, off.leaves);
}

// ---------------------------------------------------------------------------
// Solve-kernel gates (the SIMD/neighbor-index PR): modeled neighbor-lookup
// work and the SIMD determinism contract on the fig07 droplet
// configuration (min_level=3, max_level=5, dt=0.12).
// ---------------------------------------------------------------------------

struct SolveOutcome {
  /// (key|level) -> (vof bits, tracer bits): bit-exact field comparison.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> leaves;
  std::uint64_t find_probes = 0;   ///< legacy per-face-find inspections
  std::uint64_t build_probes = 0;  ///< neighbor-index build inspections
  std::uint64_t builds = 0;
  std::uint64_t reuses = 0;
  std::uint64_t lines_read = 0;
  std::uint64_t lines_written = 0;
  std::uint64_t nvbm_writes = 0;
};

SolveOutcome run_fig07_droplet(bool neighbor_index, bool simd_on) {
  const bool saved_simd = simd::enabled();
  simd::set_enabled(simd_on);
  auto& reg = telemetry::Registry::global();
  const std::uint64_t find0 = reg.counter("amr.chunk.find_probes").value();
  const std::uint64_t build0 =
      reg.counter("amr.neighbor.build_probes").value();
  const std::uint64_t builds0 = reg.counter("amr.neighbor.builds").value();
  const std::uint64_t reuses0 = reg.counter("amr.neighbor.reuses").value();

  nvbm::Device dev(std::size_t{256} << 20, {});
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = std::size_t{16} << 20;
  amr::PmOctreeBackend mesh(dev, pm);

  amr::DropletParams params;
  params.min_level = 3;
  params.max_level = 5;
  params.dt = 0.12;
  params.neighbor_index = neighbor_index;
  amr::DropletWorkload wl(params);
  wl.initialize(mesh);
  for (int s = 0; s < 3; ++s) wl.step(mesh, s);

  SolveOutcome out;
  mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
    out.leaves[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] = {
        std::bit_cast<std::uint64_t>(d.vof),
        std::bit_cast<std::uint64_t>(d.tracer)};
  });
  out.find_probes = reg.counter("amr.chunk.find_probes").value() - find0;
  out.build_probes =
      reg.counter("amr.neighbor.build_probes").value() - build0;
  out.builds = reg.counter("amr.neighbor.builds").value() - builds0;
  out.reuses = reg.counter("amr.neighbor.reuses").value() - reuses0;
  const auto& ctr = dev.counters();
  out.lines_read = ctr.lines_read;
  out.lines_written = ctr.lines_written;
  out.nvbm_writes = ctr.writes;
  simd::set_enabled(saved_simd);
  return out;
}

TEST(PerfSmoke, NeighborIndexCutsSolveLookupWorkTo25Percent) {
  // The gate: with the face-neighbor index on, the solve phase's modeled
  // neighbor-lookup work (index-build candidate inspections) is at most
  // 25% of the per-face LeafChunk::find baseline's probe count — the
  // batched build amortizes one hinted pass across all solver sweeps.
  const SolveOutcome on = run_fig07_droplet(true, simd::avx2_compiled());
  const SolveOutcome off = run_fig07_droplet(false, simd::avx2_compiled());

  ASSERT_GT(off.find_probes, 0u);
  ASSERT_GT(on.builds, 0u);
  EXPECT_EQ(on.find_probes, 0u);  // the indexed arm never calls find
  EXPECT_LE(on.build_probes * 4, off.find_probes)
      << "build probes " << on.build_probes << " vs find baseline "
      << off.find_probes << " (ratio "
      << (100.0 * static_cast<double>(on.build_probes) /
          static_cast<double>(off.find_probes))
      << "%)";
  // The index is actually reused across Jacobi sweeps, not rebuilt.
  EXPECT_GT(on.reuses, 0u);
  // Fast path only — the fields are bit-identical either way.
  EXPECT_EQ(on.leaves, off.leaves);
  std::printf("[ info ] neighbor-index build probes %llu vs find baseline "
              "%llu (%.1f%%), builds %llu reuses %llu\n",
              static_cast<unsigned long long>(on.build_probes),
              static_cast<unsigned long long>(off.find_probes),
              100.0 * static_cast<double>(on.build_probes) /
                  static_cast<double>(off.find_probes),
              static_cast<unsigned long long>(on.builds),
              static_cast<unsigned long long>(on.reuses));
}

TEST(PerfSmoke, SimdToggleIsModeledStateTransparent) {
  // SIMD on vs off must be wall-clock-only: identical field bits and
  // identical modeled device traffic (the perf_smoke half of the bench
  // JSON bit-identity criterion; benchdiff gates the full document).
  const SolveOutcome simd_on = run_fig07_droplet(true, true);
  const SolveOutcome simd_off = run_fig07_droplet(true, false);

  EXPECT_EQ(simd_on.leaves, simd_off.leaves);
  EXPECT_EQ(simd_on.lines_read, simd_off.lines_read);
  EXPECT_EQ(simd_on.lines_written, simd_off.lines_written);
  EXPECT_EQ(simd_on.nvbm_writes, simd_off.nvbm_writes);
  EXPECT_EQ(simd_on.build_probes, simd_off.build_probes);
  EXPECT_EQ(simd_on.builds, simd_off.builds);
  EXPECT_EQ(simd_on.reuses, simd_off.reuses);
}

TEST(PerfSmoke, IncrementalPersistVisitsAtMost10PercentOfNodes) {
  // The dirty-subtree pruning gate: after a full persist, mutating at most
  // 1% of the leaves must let the next merge skip all the clean subtrees —
  // persist.visits (octants the merge actually touches) stays at or below
  // 10% of nodes_total. Counter-based, so the gate is exact and stable.
  nvbm::Device dev(std::size_t{256} << 20, {});
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = std::size_t{64} << 20;  // all of C0 stays in DRAM
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();

  std::vector<LocCode> leaves;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
  ASSERT_GE(leaves.size(), 1000u);  // level 4 uniform: 4096 leaves
  const std::size_t touched = leaves.size() / 100;  // exactly 1%
  ASSERT_GT(touched, 0u);
  for (std::size_t i = 0; i < touched; ++i) {
    CellData d;
    d.vof = 0.25 + 0.001 * static_cast<double>(i);
    tree.update(leaves[i * (leaves.size() / touched)], d);
  }

  const auto stats = tree.persist();
  ASSERT_GT(stats.nodes_total, 0u);
  EXPECT_GT(stats.pruned_subtrees, 0u);
  EXPECT_LE(stats.visits * 100, stats.nodes_total * 10)
      << "incremental persist visited " << stats.visits << " of "
      << stats.nodes_total << " octants ("
      << (100.0 * static_cast<double>(stats.visits) /
          static_cast<double>(stats.nodes_total))
      << "%)";
}

}  // namespace
}  // namespace pmo
