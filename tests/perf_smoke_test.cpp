// perf_smoke gate (ctest label `perf_smoke`): deterministic, counter-based
// performance regressions — no wall-clock measurement, so the gate is
// stable on loaded CI machines. The tentpole check: the traversal-cursor +
// hot-node-cache read path must cut NVBM line reads on a small-scale
// droplet workload to at most 60% of the cache-off baseline (the
// acceptance bar is a 40% drop at full bench scale; this 5%-scale replica
// runs in seconds). The cache is read-path only, so everything modeled
// except read traffic must stay bit-identical — that is asserted too, so a
// "speedup" obtained by changing semantics fails the gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/pm_backend.hpp"
#include "pmoctree/api.hpp"

namespace pmo {
namespace {

struct Outcome {
  std::map<std::uint64_t, double> leaves;
  std::uint64_t lines_read = 0;      ///< real NVBM medium traffic
  std::uint64_t lines_written = 0;
  std::uint64_t nvbm_writes = 0;
  std::uint64_t cached_reads = 0;    ///< DRAM-latency hits (cache channel)
};

Outcome run_droplet(std::size_t node_cache_bytes) {
  nvbm::Device dev(std::size_t{128} << 20, {});
  pmoctree::PmConfig pm;
  // Small C0 budget so most octants live on NVBM — the regime the cache
  // targets (fig07/fig10 run the same shape at ~20x the leaf count).
  pm.dram_budget_bytes = 96 * sizeof(pmoctree::PNode);
  pm.node_cache_bytes = node_cache_bytes;
  amr::PmOctreeBackend mesh(dev, pm);

  amr::DropletParams params;
  params.min_level = 2;
  params.max_level = 4;
  params.dt = 0.05;
  amr::DropletWorkload wl(params);
  mesh.register_feature([&wl](const LocCode& c, const CellData& d) {
    return wl.hot_feature(c, d);
  });

  wl.initialize(mesh);
  for (int s = 0; s < 4; ++s) wl.step(mesh, s);

  Outcome out;
  mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
    out.leaves[c.key() | (static_cast<std::uint64_t>(c.level()) << 60)] =
        d.vof;
  });
  const auto& ctr = dev.counters();
  out.lines_read = ctr.lines_read;
  out.lines_written = ctr.lines_written;
  out.nvbm_writes = ctr.writes;
  out.cached_reads = ctr.cached_reads;
  return out;
}

TEST(PerfSmoke, NodeCacheCutsNvbmLineReadsByAtLeast40Percent) {
  const Outcome cached = run_droplet(std::size_t{4} << 20);
  const Outcome uncached = run_droplet(0);

  // The gate: cached medium traffic <= 60% of the baseline.
  ASSERT_GT(uncached.lines_read, 0u);
  EXPECT_LE(cached.lines_read * 100, uncached.lines_read * 60)
      << "cached lines_read " << cached.lines_read << " vs uncached "
      << uncached.lines_read << " (ratio "
      << (100.0 * static_cast<double>(cached.lines_read) /
          static_cast<double>(uncached.lines_read))
      << "%)";
  // The hits really went through the DRAM-latency channel.
  EXPECT_GT(cached.cached_reads, 0u);
  EXPECT_EQ(uncached.cached_reads, 0u);

  // Read-path only: identical mesh, identical writes.
  EXPECT_EQ(cached.leaves, uncached.leaves);
  EXPECT_EQ(cached.lines_written, uncached.lines_written);
  EXPECT_EQ(cached.nvbm_writes, uncached.nvbm_writes);
}

TEST(PerfSmoke, IncrementalPersistVisitsAtMost10PercentOfNodes) {
  // The dirty-subtree pruning gate: after a full persist, mutating at most
  // 1% of the leaves must let the next merge skip all the clean subtrees —
  // persist.visits (octants the merge actually touches) stays at or below
  // 10% of nodes_total. Counter-based, so the gate is exact and stable.
  nvbm::Device dev(std::size_t{256} << 20, {});
  nvbm::Heap heap(dev);
  pmoctree::PmConfig pm;
  pm.dram_budget_bytes = std::size_t{64} << 20;  // all of C0 stays in DRAM
  auto tree = pmoctree::PmOctree::create(heap, pm);
  for (int l = 0; l < 4; ++l)
    tree.refine_where([](const LocCode&, const CellData&) { return true; });
  tree.persist();

  std::vector<LocCode> leaves;
  tree.for_each_leaf(
      [&](const LocCode& c, const CellData&) { leaves.push_back(c); });
  ASSERT_GE(leaves.size(), 1000u);  // level 4 uniform: 4096 leaves
  const std::size_t touched = leaves.size() / 100;  // exactly 1%
  ASSERT_GT(touched, 0u);
  for (std::size_t i = 0; i < touched; ++i) {
    CellData d;
    d.vof = 0.25 + 0.001 * static_cast<double>(i);
    tree.update(leaves[i * (leaves.size() / touched)], d);
  }

  const auto stats = tree.persist();
  ASSERT_GT(stats.nodes_total, 0u);
  EXPECT_GT(stats.pruned_subtrees, 0u);
  EXPECT_LE(stats.visits * 100, stats.nodes_total * 10)
      << "incremental persist visited " << stats.visits << " of "
      << stats.nodes_total << " octants ("
      << (100.0 * static_cast<double>(stats.visits) /
          static_cast<double>(stats.nodes_total))
      << "%)";
}

}  // namespace
}  // namespace pmo
