// Tests for the file layer over NVBM (snapshot / Etree substrate).
#include "nvfs/file_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

namespace pmo::nvfs {
namespace {

nvbm::Config dev_cfg() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kModeled;
  return c;
}

TEST(FileStore, CreateWriteRead) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("snap");
  const std::string msg = "hello octants";
  f.pwrite(0, msg.data(), msg.size());
  EXPECT_EQ(f.size(), msg.size());
  std::string back(msg.size(), '\0');
  EXPECT_EQ(f.pread(0, back.data(), back.size()), msg.size());
  EXPECT_EQ(back, msg);
}

TEST(FileStore, OpenFindsExistingCreateTruncates) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("a");
  f.append("xyz", 3);
  EXPECT_EQ(fs.open("a").size(), 3u);
  fs.create("a");
  EXPECT_EQ(fs.open("a").size(), 0u);
}

TEST(FileStore, OpenMissingThrows) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  EXPECT_THROW(fs.open("nope"), ContractError);
  EXPECT_FALSE(fs.exists("nope"));
}

TEST(FileStore, CrossBlockWriteAndRead) {
  nvbm::Device dev(1 << 22, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("big");
  std::vector<std::uint8_t> data(100 * 1000);
  std::iota(data.begin(), data.end(), 0);
  f.pwrite(0, data.data(), data.size());
  std::vector<std::uint8_t> back(data.size());
  EXPECT_EQ(f.pread(0, back.data(), back.size()), data.size());
  EXPECT_EQ(back, data);
}

TEST(FileStore, PositionalReadWriteInsideFile) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("p");
  std::vector<char> zeros(10000, 'z');
  f.pwrite(0, zeros.data(), zeros.size());
  f.pwrite(5000, "MARK", 4);
  char probe[4];
  f.pread(5000, probe, 4);
  EXPECT_EQ(std::memcmp(probe, "MARK", 4), 0);
}

TEST(FileStore, ShortReadAtEof) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("s");
  f.append("abcd", 4);
  char buf[16];
  EXPECT_EQ(f.pread(2, buf, 16), 2u);
  EXPECT_EQ(f.pread(4, buf, 16), 0u);
}

TEST(FileStore, AppendGrowsFile) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("log");
  for (int i = 0; i < 100; ++i) f.append("0123456789", 10);
  EXPECT_EQ(f.size(), 1000u);
}

TEST(FileStore, UnlinkReleasesBlocks) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("tmp");
  std::vector<char> data(8192, 'x');
  f.pwrite(0, data.data(), data.size());
  const auto used = fs.blocks_in_use();
  EXPECT_GE(used, 2u);
  fs.unlink("tmp");
  EXPECT_EQ(fs.blocks_in_use(), used - 2);
  EXPECT_FALSE(fs.exists("tmp"));
}

TEST(FileStore, BlocksReusedAfterUnlink) {
  nvbm::Device dev(64 << 10, dev_cfg());
  FileStore fs(dev);
  // Repeatedly writing and unlinking must not exhaust the device.
  for (int i = 0; i < 100; ++i) {
    auto& f = fs.create("cycle");
    std::vector<char> data(16 << 10, 'c');
    f.pwrite(0, data.data(), data.size());
    fs.unlink("cycle");
  }
  SUCCEED();
}

TEST(FileStore, ChargesPerOperationOverhead) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FsConfig cfg;
  cfg.op_overhead_ns = 2000;
  FileStore fs(dev, cfg);
  auto& f = fs.create("ops");
  f.append("x", 1);
  f.append("y", 1);
  char c;
  f.pread(0, &c, 1);
  EXPECT_EQ(fs.counters().modeled_overhead_ns, 3u * 2000u);
  EXPECT_EQ(fs.counters().writes, 2u);
  EXPECT_EQ(fs.counters().reads, 1u);
}

TEST(FileStore, IoGoesThroughDeviceLatencyModel) {
  nvbm::Device dev(1 << 20, dev_cfg());
  FileStore fs(dev);
  auto& f = fs.create("lat");
  std::vector<char> page(4096, 'p');
  f.pwrite(0, page.data(), page.size());
  // 4096 bytes = 64 cache lines at 150ns NVBM write latency each.
  EXPECT_GE(dev.counters().modeled_write_ns, 64u * 150u);
}

TEST(FileStore, FsyncFlushesDirtyLines) {
  nvbm::Config c = dev_cfg();
  c.crash_sim = true;
  nvbm::Device dev(1 << 20, c);
  FileStore fs(dev);
  auto& f = fs.create("durable");
  f.pwrite(0, "persist me", 10);
  EXPECT_GT(dev.dirty_lines(), 0u);
  f.fsync();
  EXPECT_EQ(dev.dirty_lines(), 0u);
}

}  // namespace
}  // namespace pmo::nvfs
