// Differential tests for the SIMD solve kernels (src/common/simd.cpp) and
// the face-neighbor index: the AVX2 paths must be bit-identical to the
// portable scalar loops for every input — including NaN, denormal and
// -0.0 field values — and the index's slot table must agree with the
// per-face LeafChunk::find baseline on arbitrary adaptive leaf sets.
// On hosts without the AVX2 build (avx2_compiled() == false) the
// differential cases degenerate to portable-vs-portable and still pass;
// tests/simd_portable_test.cpp covers the forced-portable build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "amr/mesh_backend.hpp"
#include "amr/neighbor_index.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "octree/cell_data.hpp"

namespace pmo {
namespace {

/// Saves/restores the global SIMD dispatch switch around a test.
class SimdGuard {
 public:
  SimdGuard() : saved_(simd::enabled()) {}
  ~SimdGuard() { simd::set_enabled(saved_); }

 private:
  bool saved_;
};

/// Random adaptive (non-uniform) leaf partition of the domain: refine
/// with probability p until max_level, DFS child order 0..7, then sort by
/// key — a valid Morton-sorted leaf set, not necessarily 2:1 balanced
/// (neighbor resolution must not require balance).
void subdivide(const LocCode& code, int max_level, double p, Rng& rng,
               std::vector<LocCode>& out) {
  if (code.level() < max_level && (code.level() == 0 || rng.chance(p))) {
    for (int i = 0; i < kChildrenPerNode; ++i)
      subdivide(code.child(i), max_level, p, rng, out);
  } else {
    out.push_back(code);
  }
}

std::vector<LocCode> random_leafset(std::uint64_t seed, int max_level,
                                    double p) {
  Rng rng(seed);
  std::vector<LocCode> out;
  subdivide(LocCode::root(), max_level, p, rng, out);
  std::sort(out.begin(), out.end(),
            [](const LocCode& a, const LocCode& b) {
              return a.key() < b.key();
            });
  return out;
}

/// Level-extremes set: a "corner path" refined all the way to kMaxLevel —
/// at every level, siblings 1..7 stay leaves and child 0 descends. Has
/// leaves at every level in [1, kMaxLevel], exercising the key-mask
/// containment math at both ends.
std::vector<LocCode> corner_path_leafset() {
  std::vector<LocCode> out;
  LocCode at = LocCode::root();
  for (int l = 0; l < kMaxLevel; ++l) {
    for (int i = 1; i < kChildrenPerNode; ++i) out.push_back(at.child(i));
    at = at.child(0);
  }
  out.push_back(at);
  std::sort(out.begin(), out.end(),
            [](const LocCode& a, const LocCode& b) {
              return a.key() < b.key();
            });
  return out;
}

struct Fields {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint8_t> levels;
  std::vector<double> vof;
  std::vector<double> tracer;
  std::vector<CellData> cells;  ///< AoS mirror for LeafChunk
};

/// Field arrays over a leaf set, seeded with uniform values plus a
/// sprinkling of the IEEE special values the determinism contract calls
/// out: NaN, +/-0.0, denormals, and exact-skip (0,0) cells.
Fields make_fields(const std::vector<LocCode>& codes, std::uint64_t seed) {
  Fields f;
  Rng rng(seed);
  const double specials[] = {
      std::numeric_limits<double>::quiet_NaN(),
      -0.0,
      0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      1e-9,  // the skip threshold itself
      std::numeric_limits<double>::infinity(),
  };
  for (const auto& c : codes) {
    CellData d;
    const std::uint64_t roll = rng.below(10);
    if (roll == 0) {
      d.vof = 0.0;  // gas cell: skip candidate
      d.tracer = rng.chance(0.5) ? 0.0 : 1e-9;
    } else if (roll == 1) {
      d.vof = rng.chance(0.5) ? 0.0 : rng.uniform();
      d.tracer = specials[rng.below(std::size(specials))];
    } else {
      d.vof = rng.uniform();
      d.tracer = rng.uniform(-1.0, 1.0);
    }
    f.keys.push_back(c.key());
    f.levels.push_back(static_cast<std::uint8_t>(c.level()));
    f.vof.push_back(d.vof);
    f.tracer.push_back(d.tracer);
    f.cells.push_back(d);
  }
  return f;
}

/// Runs gather_relax over [begin, end) with the given dispatch setting;
/// output arrays prefilled with a sentinel so untouched slots are
/// detectable bit-exactly.
void run_gather(const Fields& f, const std::int32_t* nbr, std::size_t begin,
                std::size_t end, bool simd_on, std::vector<double>& relaxed,
                std::vector<std::uint8_t>& touched) {
  SimdGuard guard;
  simd::set_enabled(simd_on);
  relaxed.assign(f.keys.size(), -12345.678);
  touched.assign(f.keys.size(), 0xab);
  simd::gather_relax(f.vof.data(), f.tracer.data(), nbr, begin, end,
                     relaxed.data(), touched.data());
}

/// Bitwise comparison of double arrays (== would equate -0.0/+0.0 and
/// reject NaN==NaN; the contract is bit-identity).
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

TEST(Simd, GatherBitIdenticalOnRandomAdaptiveSets) {
  for (std::uint64_t seed : {7ull, 21ull, 99ull, 1234ull}) {
    const auto codes = random_leafset(seed, 5, 0.55);
    const Fields f = make_fields(codes, seed * 31 + 1);
    amr::FaceNeighborIndex index;
    index.build(f.keys.data(), f.levels.data(), f.keys.size());

    std::vector<double> r_scalar, r_simd;
    std::vector<std::uint8_t> t_scalar, t_simd;
    run_gather(f, index.slots(), 0, f.keys.size(), false, r_scalar, t_scalar);
    run_gather(f, index.slots(), 0, f.keys.size(), true, r_simd, t_simd);
    expect_bits_equal(r_scalar, r_simd);
    EXPECT_EQ(t_scalar, t_simd) << "seed " << seed;
  }
}

TEST(Simd, GatherBitIdenticalAtLevelExtremes) {
  const auto codes = corner_path_leafset();
  // The corner leaf (anchor 0, level kMaxLevel) sorts first: its key is 0.
  ASSERT_EQ(static_cast<int>(codes.front().level()), kMaxLevel);
  const Fields f = make_fields(codes, 5);
  amr::FaceNeighborIndex index;
  index.build(f.keys.data(), f.levels.data(), f.keys.size());

  std::vector<double> r_scalar, r_simd;
  std::vector<std::uint8_t> t_scalar, t_simd;
  run_gather(f, index.slots(), 0, f.keys.size(), false, r_scalar, t_scalar);
  run_gather(f, index.slots(), 0, f.keys.size(), true, r_simd, t_simd);
  expect_bits_equal(r_scalar, r_simd);
  EXPECT_EQ(t_scalar, t_simd);
}

TEST(Simd, GatherRespectsSubrangeAndSkips) {
  const auto codes = random_leafset(3, 4, 0.6);
  Fields f = make_fields(codes, 11);
  ASSERT_GT(f.keys.size(), 16u);
  // Force some guaranteed skip cells inside the range.
  f.vof[5] = 0.0;
  f.tracer[5] = 0.0;
  f.vof[6] = -0.25;  // vof <= 0 and tiny tracer: skip
  f.tracer[6] = 1e-9;
  amr::FaceNeighborIndex index;
  index.build(f.keys.data(), f.levels.data(), f.keys.size());

  const std::size_t begin = 3, end = f.keys.size() - 5;
  for (bool simd_on : {false, true}) {
    std::vector<double> relaxed;
    std::vector<std::uint8_t> touched;
    run_gather(f, index.slots(), begin, end, simd_on, relaxed, touched);
    for (std::size_t i = 0; i < f.keys.size(); ++i) {
      const bool in_range = i >= begin && i < end;
      const bool skipped = simd::gather_skip_cell(f.vof[i], f.tracer[i]);
      if (!in_range || skipped) {
        EXPECT_EQ(relaxed[i], -12345.678) << "slot " << i;
        EXPECT_EQ(touched[i], 0xab) << "slot " << i;
      } else {
        EXPECT_EQ(touched[i], 1) << "slot " << i;
      }
    }
  }
}

TEST(Simd, GatherRootOnlyLeafHasNoNeighbors) {
  // Single root leaf: all 6 slots are -1, so r == tracer (n == 0 branch).
  Fields f;
  f.keys.push_back(LocCode::root().key());
  f.levels.push_back(0);
  f.vof.push_back(0.5);
  f.tracer.push_back(0.75);
  amr::FaceNeighborIndex index;
  index.build(f.keys.data(), f.levels.data(), 1);
  for (int face = 0; face < simd::kFaceCount; ++face)
    EXPECT_EQ(index.slots()[face], -1);

  for (bool simd_on : {false, true}) {
    std::vector<double> relaxed;
    std::vector<std::uint8_t> touched;
    run_gather(f, index.slots(), 0, 1, simd_on, relaxed, touched);
    EXPECT_EQ(relaxed[0], 0.75 + 0.1 * 0.5);
    EXPECT_EQ(touched[0], 1);
  }
}

TEST(Simd, GatherScalarSemanticsMatchSpec) {
  // Hand-check the kernel against the documented recurrence on a uniform
  // level-1 mesh (8 leaves, each with 3 in-domain neighbors).
  const auto codes = random_leafset(1, 1, 1.0);
  ASSERT_EQ(codes.size(), 8u);
  Fields f;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    f.keys.push_back(codes[i].key());
    f.levels.push_back(1);
    f.vof.push_back(0.5);
    f.tracer.push_back(static_cast<double>(i));
  }
  amr::FaceNeighborIndex index;
  index.build(f.keys.data(), f.levels.data(), f.keys.size());

  for (bool simd_on : {false, true}) {
    std::vector<double> relaxed;
    std::vector<std::uint8_t> touched;
    run_gather(f, index.slots(), 0, f.keys.size(), simd_on, relaxed,
               touched);
    for (std::size_t i = 0; i < f.keys.size(); ++i) {
      double acc = 0.0;
      int n = 0;
      for (int face = 0; face < simd::kFaceCount; ++face) {
        const std::int32_t s = index.slots()[6 * i + face];
        if (s >= 0) {
          acc += f.tracer[static_cast<std::size_t>(s)];
          ++n;
        }
      }
      ASSERT_EQ(n, 3) << "leaf " << i;
      const double expect = 0.5 * f.tracer[i] + 0.5 * (acc / n) + 0.1 * 0.5;
      EXPECT_EQ(relaxed[i], expect) << "leaf " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Face-neighbor index vs the per-face LeafChunk::find baseline
// ---------------------------------------------------------------------------

/// Brute-force reference: resolve each face through LeafChunk::find (the
/// legacy solve arm) and translate the CellData* back to a slot index.
std::vector<std::int32_t> reference_slots(const std::vector<LocCode>& codes,
                                          const Fields& f) {
  amr::LeafChunk ch;
  ch.begin = 0;
  ch.end = codes.size();
  ch.codes = codes.data();
  ch.cells = f.cells.data();
  ch.leaves = codes.size();
  std::vector<std::int32_t> slots(codes.size() * simd::kFaceCount, -1);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    for (int face = 0; face < simd::kFaceCount; ++face) {
      LocCode nb;
      if (!codes[i].neighbor(simd::kFaces[face][0], simd::kFaces[face][1],
                             simd::kFaces[face][2], nb)) {
        continue;
      }
      const CellData* d = ch.find(nb);
      if (d != nullptr) {
        slots[simd::kFaceCount * i + face] =
            static_cast<std::int32_t>(d - f.cells.data());
      }
    }
  }
  return slots;
}

TEST(NeighborIndex, MatchesPerFaceFindOnRandomAdaptiveSets) {
  for (std::uint64_t seed : {2ull, 13ull, 77ull}) {
    const auto codes = random_leafset(seed, 5, 0.5);
    const Fields f = make_fields(codes, seed);
    amr::FaceNeighborIndex index;
    index.build(f.keys.data(), f.levels.data(), f.keys.size());
    EXPECT_GT(index.last_build_probes(), 0u);

    const auto ref = reference_slots(codes, f);
    ASSERT_EQ(ref.size(), codes.size() * simd::kFaceCount);
    for (std::size_t s = 0; s < ref.size(); ++s) {
      ASSERT_EQ(index.slots()[s], ref[s])
          << "seed " << seed << " leaf " << s / simd::kFaceCount << " face "
          << s % simd::kFaceCount;
    }
  }
}

TEST(NeighborIndex, MatchesPerFaceFindAtLevelExtremes) {
  const auto codes = corner_path_leafset();
  const Fields f = make_fields(codes, 17);
  amr::FaceNeighborIndex index;
  index.build(f.keys.data(), f.levels.data(), f.keys.size());
  const auto ref = reference_slots(codes, f);
  for (std::size_t s = 0; s < ref.size(); ++s) {
    ASSERT_EQ(index.slots()[s], ref[s])
        << "leaf " << s / simd::kFaceCount << " face "
        << s % simd::kFaceCount;
  }
}

TEST(NeighborIndex, StampAndInvalidateGovernReuse) {
  const auto codes = random_leafset(4, 3, 0.5);
  const Fields f = make_fields(codes, 4);
  amr::FaceNeighborIndex index;
  EXPECT_FALSE(index.valid_for(7, f.keys.size()));
  index.build(f.keys.data(), f.levels.data(), f.keys.size());
  index.stamp(7, f.keys.size());
  EXPECT_TRUE(index.valid_for(7, f.keys.size()));
  EXPECT_FALSE(index.valid_for(8, f.keys.size()));       // version moved
  EXPECT_FALSE(index.valid_for(7, f.keys.size() + 1));   // leaf count moved
  index.invalidate();
  EXPECT_FALSE(index.valid_for(7, f.keys.size()));
}

// ---------------------------------------------------------------------------
// Interface-band mark kernel
// ---------------------------------------------------------------------------

TEST(Simd, MarkInterfaceBandMatchesScalarPredicate) {
  Rng rng(23);
  std::vector<double> vof;
  for (int i = 0; i < 1000; ++i) vof.push_back(rng.uniform());
  // Boundary and special values: the exact band edges must classify
  // identically in both paths (strict inequalities), NaN marks 0.
  const double band = 1e-3;
  vof.push_back(band);
  vof.push_back(1.0 - band);
  vof.push_back(std::nextafter(band, 1.0));
  vof.push_back(std::nextafter(1.0 - band, 0.0));
  vof.push_back(std::numeric_limits<double>::quiet_NaN());
  vof.push_back(-0.0);
  vof.push_back(1.0);
  vof.push_back(std::numeric_limits<double>::denorm_min());

  std::vector<std::uint8_t> scalar_marks(vof.size(), 0xcd);
  std::vector<std::uint8_t> simd_marks(vof.size(), 0xcd);
  {
    SimdGuard guard;
    simd::set_enabled(false);
    simd::mark_interface_band(vof.data(), vof.size(), band,
                              scalar_marks.data());
    simd::set_enabled(true);
    simd::mark_interface_band(vof.data(), vof.size(), band,
                              simd_marks.data());
  }
  EXPECT_EQ(scalar_marks, simd_marks);
  for (std::size_t i = 0; i < vof.size(); ++i) {
    CellData d;
    d.vof = vof[i];
    EXPECT_EQ(scalar_marks[i] != 0, is_interface_cell(d, band))
        << "vof " << vof[i];
  }
}

TEST(Simd, SetEnabledIsClampedToCompiledSupport) {
  SimdGuard guard;
  simd::set_enabled(true);
  EXPECT_EQ(simd::enabled(), simd::avx2_compiled());
  simd::set_enabled(false);
  EXPECT_FALSE(simd::enabled());
}

}  // namespace
}  // namespace pmo
