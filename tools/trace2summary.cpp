// Trace integrity checker / summarizer for the Chrome trace JSON written
// by telemetry::trace::TraceSession (and the trace_smoke ctest label).
//
//   trace2summary [flags] <trace.json>
//   trace2summary [flags] --run <bench-binary> <trace.json> [bench args...]
//
// The second form runs the bench with `--trace <trace.json>` first (same
// std::system harness as validate_bench_json), then validates the file it
// wrote. Validation is telemetry::trace::validate_chrome_trace: per-track
// begin/end pairing, X-slice containment, flow s/f integrity, and the
// recovery audit log's causal (audit_seq) order.
//
// Flags:
//   --require-audit      fail unless the trace holds >= 1 recovery audit
//                        event (sec56_recovery must produce the crash ->
//                        can_restore -> restore chain)
//   --require-tracks N   fail unless >= N distinct (pid, tid) tracks
//                        (fig03 must separate compute from persist)
//   --require-cat NAME   fail unless >= 1 event carries category NAME
//                        (serve smoke asserts "slo": the SLO tracker's
//                        tail-sampled slow-query slices made it out)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace {

int fail(const std::string& msg) {
  std::fprintf(stderr, "trace2summary: %s\n", msg.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool require_audit = false;
  std::size_t require_tracks = 0;
  std::string require_cat;
  std::string bench;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-audit") {
      require_audit = true;
    } else if (arg == "--require-tracks" && i + 1 < argc) {
      require_tracks = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--require-cat" && i + 1 < argc) {
      require_cat = argv[++i];
    } else if (arg == "--run" && i + 1 < argc) {
      bench = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    return fail(
        "usage: trace2summary [--require-audit] [--require-tracks N] "
        "[--run <bench>] <trace.json> [bench args...]");
  }
  const std::string path = positional.front();

  if (!bench.empty()) {
    std::string cmd = "\"" + bench + "\" --trace \"" + path + "\"";
    for (std::size_t i = 1; i < positional.size(); ++i) {
      cmd += " \"" + positional[i] + "\"";
    }
    std::printf("running: %s\n", cmd.c_str());
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      return fail("bench exited with status " + std::to_string(rc));
    }
  }

  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();

  std::string err;
  const auto doc = pmo::telemetry::json::Value::parse(buf.str(), &err);
  if (!doc) return fail("JSON parse error in " + path + ": " + err);

  const auto check = pmo::telemetry::trace::validate_chrome_trace(*doc);
  std::printf(
      "%s: %zu events on %zu tracks; %zu slices, %zu flows, %zu audit "
      "events; %llu dropped\n",
      path.c_str(), check.events, check.tracks, check.slices, check.flows,
      check.audit_events,
      static_cast<unsigned long long>(check.dropped));
  if (!check.ok) return fail("invalid trace: " + check.error);
  if (!bench.empty() && check.events == 0) {
    return fail("bench run produced an empty trace");
  }
  if (require_audit && check.audit_events == 0) {
    return fail("trace holds no recovery audit events");
  }
  if (check.tracks < require_tracks) {
    return fail("trace holds " + std::to_string(check.tracks) +
                " tracks, expected >= " + std::to_string(require_tracks));
  }
  if (!require_cat.empty()) {
    std::size_t n = 0;
    const auto* events = doc->find("traceEvents");
    if (events != nullptr && events->is_array()) {
      for (std::size_t i = 0; i < events->size(); ++i) {
        const auto* cat = events->at(i).find("cat");
        if (cat != nullptr && cat->is_string() &&
            cat->as_string() == require_cat) {
          ++n;
        }
      }
    }
    std::printf("category \"%s\": %zu events\n", require_cat.c_str(), n);
    if (n == 0) {
      return fail("trace holds no \"" + require_cat + "\" events");
    }
  }
  std::printf("ok\n");
  return 0;
}
