// benchdiff: noise-aware comparison of two BenchReport JSON documents
// (schema_version 2), the regression gate behind the perf_regress ctest
// label.
//
//   benchdiff [flags] <baseline.json> <current.json>
//   benchdiff [flags] --baseline <dir> <current.json>
//   benchdiff [flags] --baseline <dir> --run <bench> <current.json> [args...]
//
// With --baseline the baseline file is <dir>/<bench>.json, keyed by the
// current document's "bench" field (the layout of bench/baselines/).
// With --run the bench binary is executed first (`--json <current.json>`
// plus the trailing args, same std::system harness as
// validate_bench_json), so one ctest command runs bench + gate.
//
// Comparison rules — the whole point of the tool is that they are keyed
// by the documents' own determinism contract, not by wishful thresholds:
//
//  * EXACT (verdict-driving) — applied when BOTH documents carry
//    determinism.modeled_exact = 1: every metrics.counters entry except
//    the documented-nondeterministic pmoctree.cursor.* / serve.*
//    namespaces, every nvbm.* gauge, and every timeseries series flagged
//    modeled=1 (t and v arrays bit-for-bit). Modeled quantities are pure
//    functions of the workload; ANY drift is a real behavior change.
//  * EXACT always — the deterministic surfaces every bench promises
//    regardless of live-phase noise: serve.result_hash and each
//    serve.verify_charges field (bench_serve's fixed-stream verify
//    sweep).
//  * NOISE-THRESHOLDED (warn-only by default) — wall-clock headline
//    numbers (serve.qps, serve.latency.*) compared with a relative
//    threshold (--threshold, default 5%). Wall-clock on a shared CI box
//    is weather, so these only fail the gate under --strict-wallclock.
//
// Config identity: comparing different benches or scales is an error;
// differing thread counts are a note only (the determinism contract says
// threads change wall-clock, never modeled results).
//
// Output: a verdict line plus a markdown delta table (stdout; --md
// <path> writes it to a file for CI artifacts). --sparkline renders each
// current-run time series as an ASCII sparkline. --update-baseline
// copies the current document over the baseline file and exits 0 (the
// baseline-refresh workflow in EXPERIMENTS.md).
//
// Exit status: 0 pass, 1 regression, 2 usage/IO error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace {

using pmo::telemetry::json::Value;

int usage() {
  std::fprintf(
      stderr,
      "usage: benchdiff [--threshold F] [--strict-wallclock] [--sparkline]\n"
      "                 [--md <path>] [--update-baseline]\n"
      "                 (<baseline.json> | --baseline <dir>)\n"
      "                 [--run <bench>] <current.json> [bench args...]\n");
  return 2;
}

int ioerr(const std::string& msg) {
  std::fprintf(stderr, "benchdiff: %s\n", msg.c_str());
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

double num_or(const Value* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

const Value* dig(const Value& root, std::initializer_list<const char*> ks) {
  const Value* v = &root;
  for (const char* k : ks) {
    if (!v->is_object()) return nullptr;
    v = v->find(k);
    if (v == nullptr) return nullptr;
  }
  return v;
}

std::string fmt(double v) {
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

/// One comparison outcome, rendered as a markdown table row.
struct Delta {
  std::string metric;
  std::string rule;  ///< "exact" | "exact (modeled)" | "±N%"
  double a = 0.0, b = 0.0;
  bool fail = false;
  bool warn = false;
};

class Differ {
 public:
  Differ(double threshold, bool strict_wallclock)
      : threshold_(threshold), strict_wallclock_(strict_wallclock) {}

  void exact(const std::string& metric, const std::string& rule, double a,
             double b) {
    Delta d{metric, rule, a, b, a != b, false};
    push(std::move(d));
  }

  void exact_str(const std::string& metric, const std::string& a,
                 const std::string& b) {
    if (a == b) return;
    Delta d{metric + " (\"" + a + "\" vs \"" + b + "\")", "exact", 0, 0,
            true, false};
    push(std::move(d));
  }

  /// Relative comparison; `sign` +1 = higher current value is worse
  /// (latency), -1 = lower is worse (throughput).
  void noisy(const std::string& metric, double a, double b, int sign) {
    const double denom = std::max(std::abs(a), 1e-12);
    const double rel = sign * (b - a) / denom;
    Delta d{metric,
            "±" + fmt(threshold_ * 100) + "% wall-clock",
            a,
            b,
            false,
            false};
    if (rel > threshold_) {
      (strict_wallclock_ ? d.fail : d.warn) = true;
    }
    push(std::move(d));
  }

  void note(const std::string& msg) { notes_.push_back(msg); }

  bool failed() const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [](const Delta& d) { return d.fail; });
  }

  std::string markdown() const {
    std::ostringstream os;
    std::size_t fails = 0, warns = 0;
    for (const Delta& d : rows_) {
      fails += d.fail ? 1 : 0;
      warns += d.warn ? 1 : 0;
    }
    os << "| metric | rule | baseline | current | verdict |\n";
    os << "|---|---|---|---|---|\n";
    for (const Delta& d : rows_) {
      // Passing exact rows are elided (there are hundreds of counters);
      // noisy headline rows always print so the table shows the trend.
      if (!d.fail && !d.warn && d.rule.rfind("exact", 0) == 0) continue;
      os << "| " << d.metric << " | " << d.rule << " | " << fmt(d.a)
         << " | " << fmt(d.b) << " | "
         << (d.fail ? "**REGRESS**" : d.warn ? "warn" : "ok") << " |\n";
    }
    os << "\n" << rows_.size() << " comparisons, " << fails
       << " regressions, " << warns << " warnings\n";
    for (const std::string& n : notes_) os << "\nnote: " << n << "\n";
    return os.str();
  }

 private:
  void push(Delta d) { rows_.push_back(std::move(d)); }

  double threshold_;
  bool strict_wallclock_;
  std::vector<Delta> rows_;
  std::vector<std::string> notes_;
};

bool skipped_counter(const std::string& name) {
  // Documented-nondeterministic namespaces: traversal cursor reuse
  // depends on scheduling; serve.* live-phase counters are wall-clock
  // coupled (query classification, reclamation under reader pins).
  return name.rfind("pmoctree.cursor.", 0) == 0 ||
         name.rfind("serve.", 0) == 0;
}

/// Renders `v` as an 8-level ASCII sparkline (low ' _.-~=+*#' high).
std::string sparkline(const Value& v) {
  static const char kRamp[] = "_.-~=+*#";
  double lo = 0, hi = 0;
  bool first = true;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = v.at(i).as_double();
    lo = first ? x : std::min(lo, x);
    hi = first ? x : std::max(hi, x);
    first = false;
  }
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = v.at(i).as_double();
    const double t = hi > lo ? (x - lo) / (hi - lo) : 0.0;
    out += kRamp[std::min<std::size_t>(
        7, static_cast<std::size_t>(t * 8.0))];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.05;
  bool strict_wallclock = false;
  bool want_sparkline = false;
  bool update_baseline = false;
  std::string md_path;
  std::string baseline_dir;
  std::string run_bench;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (arg == "--strict-wallclock") {
      strict_wallclock = true;
    } else if (arg == "--sparkline") {
      want_sparkline = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--md" && i + 1 < argc) {
      md_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--run" && i + 1 < argc) {
      run_bench = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  const std::size_t need = baseline_dir.empty() ? 2 : 1;
  if (positional.size() < need) return usage();
  const std::string cur_path = positional[need - 1];

  if (!run_bench.empty()) {
    std::string cmd = "\"" + run_bench + "\" --json \"" + cur_path + "\"";
    for (std::size_t i = need; i < positional.size(); ++i) {
      cmd += " \"" + positional[i] + "\"";
    }
    std::printf("running: %s\n", cmd.c_str());
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      return ioerr("bench exited with status " + std::to_string(rc));
    }
  }

  std::string cur_text;
  if (!read_file(cur_path, &cur_text)) {
    return ioerr("cannot read " + cur_path);
  }
  std::string err;
  const auto cur = Value::parse(cur_text, &err);
  if (!cur || !cur->is_object()) {
    return ioerr("bad JSON in " + cur_path + ": " + err);
  }
  const Value* bench_name = cur->find("bench");
  if (bench_name == nullptr || !bench_name->is_string()) {
    return ioerr(cur_path + " has no \"bench\" field");
  }

  std::string base_path = baseline_dir.empty()
                              ? positional[0]
                              : baseline_dir + "/" +
                                    bench_name->as_string() + ".json";

  if (update_baseline) {
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(base_path).parent_path(), ec);
    std::ofstream out(base_path);
    if (!out) return ioerr("cannot write baseline " + base_path);
    out << cur_text;
    std::printf("benchdiff: baseline %s updated from %s\n",
                base_path.c_str(), cur_path.c_str());
    return 0;
  }

  std::string base_text;
  if (!read_file(base_path, &base_text)) {
    return ioerr("cannot read baseline " + base_path +
                 " (run with --update-baseline to create it)");
  }
  const auto base = Value::parse(base_text, &err);
  if (!base || !base->is_object()) {
    return ioerr("bad JSON in " + base_path + ": " + err);
  }

  // ---- config identity -----------------------------------------------------
  const Value* bb = base->find("bench");
  if (bb == nullptr || !bb->is_string() ||
      bb->as_string() != bench_name->as_string()) {
    return ioerr("bench mismatch: baseline is \"" +
                 (bb != nullptr && bb->is_string() ? bb->as_string()
                                                   : std::string("?")) +
                 "\", current is \"" + bench_name->as_string() + "\"");
  }
  if (num_or(base->find("scale"), -1) != num_or(cur->find("scale"), -2)) {
    return ioerr("scale mismatch: baseline " +
                 fmt(num_or(base->find("scale"), 0)) + " vs current " +
                 fmt(num_or(cur->find("scale"), 0)));
  }

  Differ diff(threshold, strict_wallclock);
  const double threads_a = num_or(dig(*base, {"config", "threads"}), 0);
  const double threads_b = num_or(dig(*cur, {"config", "threads"}), 0);
  if (threads_a != threads_b) {
    diff.note("thread counts differ (" + fmt(threads_a) + " vs " +
              fmt(threads_b) +
              "): modeled results must still match (determinism "
              "contract); wall-clock rows are not comparable");
  }

  const bool modeled_exact =
      num_or(dig(*base, {"determinism", "modeled_exact"}), 0) != 0 &&
      num_or(dig(*cur, {"determinism", "modeled_exact"}), 0) != 0;
  const bool telemetry_on =
      num_or(base->find("telemetry_enabled"), 1) != 0 &&
      num_or(cur->find("telemetry_enabled"), 1) != 0;

  // ---- exact rules: modeled counters / gauges / series ---------------------
  if (modeled_exact && telemetry_on) {
    const Value* ca = dig(*base, {"metrics", "counters"});
    const Value* cb = dig(*cur, {"metrics", "counters"});
    if (ca != nullptr && cb != nullptr) {
      for (const auto& [name, va] : ca->members()) {
        if (skipped_counter(name)) continue;
        const Value* vb = cb->find(name);
        diff.exact("counters." + name, "exact (modeled)", va.as_double(),
                   num_or(vb, -1));
      }
      for (const auto& [name, vb] : cb->members()) {
        if (!skipped_counter(name) && ca->find(name) == nullptr) {
          diff.exact("counters." + name + " (new)", "exact (modeled)", -1,
                     vb.as_double());
        }
      }
    }
    const Value* ga = dig(*base, {"metrics", "gauges"});
    const Value* gb = dig(*cur, {"metrics", "gauges"});
    if (ga != nullptr && gb != nullptr) {
      for (const auto& [name, va] : ga->members()) {
        if (name.rfind("nvbm.", 0) != 0) continue;
        diff.exact("gauges." + name, "exact (modeled)", va.as_double(),
                   num_or(gb->find(name), -1));
      }
    }
    const Value* sa = dig(*base, {"timeseries", "series"});
    const Value* sb = dig(*cur, {"timeseries", "series"});
    if (sa != nullptr && sb != nullptr) {
      for (const auto& [name, series_a] : sa->members()) {
        if (num_or(series_a.find("modeled"), 0) == 0) continue;
        const Value* series_b = sb->find(name);
        if (series_b == nullptr) {
          diff.exact("timeseries." + name + " (missing)",
                     "exact (modeled)", 1, 0);
          continue;
        }
        // Point-count first, then every (t, v) pair.
        const Value* ta = series_a.find("t");
        const Value* tb = series_b->find("t");
        const Value* va = series_a.find("v");
        const Value* vb = series_b->find("v");
        if (ta == nullptr || tb == nullptr || va == nullptr ||
            vb == nullptr || ta->size() != tb->size()) {
          diff.exact("timeseries." + name + ".points", "exact (modeled)",
                     ta != nullptr ? static_cast<double>(ta->size()) : -1,
                     tb != nullptr ? static_cast<double>(tb->size()) : -1);
          continue;
        }
        bool same = true;
        for (std::size_t i = 0; same && i < ta->size(); ++i) {
          same = ta->at(i).as_double() == tb->at(i).as_double() &&
                 va->at(i).as_double() == vb->at(i).as_double();
        }
        diff.exact("timeseries." + name, "exact (modeled)", 1,
                   same ? 1 : 0);
      }
    }
  } else if (!modeled_exact) {
    diff.note(
        "modeled_exact=0: exact counter/gauge/series rules skipped "
        "(live-phase bench)");
  }

  // ---- exact rules that hold regardless of live-phase noise ----------------
  const Value* srv_a = base->find("serve");
  const Value* srv_b = cur->find("serve");
  if (srv_a != nullptr && srv_b != nullptr) {
    const Value* ha = srv_a->find("result_hash");
    const Value* hb = srv_b->find("result_hash");
    if (ha != nullptr && hb != nullptr) {
      diff.exact_str("serve.result_hash", ha->as_string(),
                     hb->as_string());
    }
    for (const char* key :
         {"node_loads", "cached_loads", "lines_read", "modeled_ns"}) {
      diff.exact("serve.verify_charges." + std::string(key), "exact",
                 num_or(dig(*srv_a, {"verify_charges", key}), -1),
                 num_or(dig(*srv_b, {"verify_charges", key}), -2));
    }
    // Headline wall-clock trend rows (warn-only unless
    // --strict-wallclock).
    diff.noisy("serve.qps", num_or(srv_a->find("qps"), 0),
               num_or(srv_b->find("qps"), 0), /*lower is worse*/ -1);
    diff.noisy("serve.latency.p99_ns",
               num_or(dig(*srv_a, {"latency", "p99_ns"}), 0),
               num_or(dig(*srv_b, {"latency", "p99_ns"}), 0),
               /*higher is worse*/ 1);
    diff.noisy("serve.staleness.mean",
               num_or(dig(*srv_a, {"staleness", "mean"}), 0),
               num_or(dig(*srv_b, {"staleness", "mean"}), 0), 1);
  }

  std::string report = diff.markdown();
  if (want_sparkline) {
    const Value* sb = dig(*cur, {"timeseries", "series"});
    if (sb != nullptr) {
      report += "\ncurrent-run time series:\n```\n";
      std::size_t width = 0;
      for (const auto& [name, s] : sb->members()) {
        width = std::max(width, name.size());
      }
      for (const auto& [name, s] : sb->members()) {
        const Value* v = s.find("v");
        if (v == nullptr || v->size() == 0) continue;
        double last = v->at(v->size() - 1).as_double();
        report += "  " + name +
                  std::string(width - name.size() + 2, ' ') +
                  sparkline(*v) + "  (last " + fmt(last) + ")\n";
      }
      report += "```\n";
    }
  }

  std::printf("benchdiff: %s vs %s\n\n%s\n", base_path.c_str(),
              cur_path.c_str(), report.c_str());
  if (!md_path.empty()) {
    std::ofstream out(md_path);
    if (!out) return ioerr("cannot write " + md_path);
    out << "# benchdiff: " << bench_name->as_string() << "\n\nbaseline `"
        << base_path << "` vs current `" << cur_path << "`\n\n"
        << report;
  }
  if (diff.failed()) {
    std::printf("verdict: REGRESS\n");
    return 1;
  }
  std::printf("verdict: pass\n");
  return 0;
}
