// Remote replication of the persistent version (§3.4, second scenario).
//
// When a crashed node is not available for restart, recovery must happen
// on a different node. For that the paper keeps two copies of V_{i-1}: the
// host copy V^H (the local NVBM heap) and a peer copy V^P on another
// compute/staging node, kept consistent by shipping only the *differences*
// between consecutive persisted versions — cheap because adjacent time
// steps overlap heavily (Fig. 3).
//
// ReplicaManager extracts the delta after each persist; ReplicaStore is
// the peer-side mirror that applies deltas and can rebuild a full
// PM-octree into a fresh heap on the replacement node. Network cost is
// modeled by the caller (cluster::LinkModel) from Delta::bytes().
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pmoctree/pm_octree.hpp"

namespace pmo::pmoctree {

/// One persist's worth of changes to the persisted version. Linear-tier
/// chains travel as whole-blob upserts: a chain is one immutable heap
/// object (DESIGN.md §11), so it is shipped once when it appears and
/// dropped once when it becomes unreachable — never patched.
struct Delta {
  std::uint64_t root_offset = 0;
  std::vector<std::pair<std::uint64_t, PNode>> upserts;
  std::vector<std::uint64_t> removals;
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> chain_upserts;
  std::vector<std::uint64_t> chain_removals;

  std::uint64_t bytes() const noexcept {
    std::uint64_t chain_bytes = 0;
    for (const auto& [off, blob] : chain_upserts)
      chain_bytes += sizeof(off) + blob.size();
    return upserts.size() * (sizeof(PNode) + sizeof(std::uint64_t)) +
           removals.size() * sizeof(std::uint64_t) +
           chain_removals.size() * sizeof(std::uint64_t) + chain_bytes +
           sizeof(root_offset);
  }
};

/// Peer-side mirror of the persisted octree, keyed by host offsets.
class ReplicaStore {
 public:
  void apply(const Delta& delta);

  std::size_t node_count() const noexcept { return mirror_.size(); }
  std::uint64_t root_offset() const noexcept { return root_offset_; }
  bool empty() const noexcept { return mirror_.empty(); }

  /// Rebuilds the mirrored version into a fresh heap on the replacement
  /// node and installs it as the persisted root, so PmOctree::restore()
  /// works there. Returns the number of octants written.
  std::size_t restore_into(nvbm::Heap& heap) const;

 private:
  std::unordered_map<std::uint64_t, PNode> mirror_;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> chains_;
  std::uint64_t root_offset_ = 0;
};

/// Host-side delta extraction, tracking what the peer already has.
class ReplicaManager {
 public:
  /// Computes the delta between the tree's current persisted version and
  /// the last shipped one. Call right after PmOctree::persist().
  Delta extract(PmOctree& tree);

  /// Convenience: extract + apply to `peer`; returns shipped bytes.
  std::uint64_t ship(PmOctree& tree, ReplicaStore& peer);

 private:
  std::unordered_set<std::uint64_t> known_;
  std::unordered_set<std::uint64_t> known_chains_;
};

}  // namespace pmo::pmoctree
