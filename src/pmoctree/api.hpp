// The paper's program interface (Table 1), C++ flavoured.
//
//   | paper                                | here                          |
//   |--------------------------------------|-------------------------------|
//   | pmoctree* pm_create(octree* tree)    | pm_create(heap, tree, cfg)    |
//   | void pm_persistent(pmoctree* tree)   | pm_persistent(tree)           |
//   | pmoctree* pm_restore(void)           | pm_restore(heap, cfg)         |
//   | void pm_delete(pmoctree* tree)       | pm_delete(tree)               |
//
// The only deviation is that the NVBM pool (nvbm::Heap) is an explicit
// handle rather than process-global state; everything else — orthogonal
// persistence, no user-visible persistent-pointer management — matches.
// In Gerris these calls replace gfs_output_write()/gfs_output_read()
// (§3.4); src/gfs provides that integration layer.
#pragma once

#include <memory>

#include "pmoctree/pm_octree.hpp"

namespace pmo::pmoctree {

/// Creates a new PM-octree; when `tree` is non-null its octants are
/// adopted. Returns a pointer to the working version V_i.
std::unique_ptr<PmOctree> pm_create(nvbm::Heap& heap,
                                    const octree::Octree* tree = nullptr,
                                    PmConfig config = {});

/// Creates a persistent version of the octree (merge + atomic root swap).
PersistStats pm_persistent(PmOctree& tree);

/// Restores a PM-octree from the consistent persisted version; returns a
/// pointer to V_i (which aliases V_{i-1} until first mutation). O(1).
std::unique_ptr<PmOctree> pm_restore(nvbm::Heap& heap, PmConfig config = {});

/// Deletes all octants on NVBM and DRAM.
void pm_delete(PmOctree& tree);

}  // namespace pmo::pmoctree
