#include "pmoctree/api.hpp"

namespace pmo::pmoctree {

std::unique_ptr<PmOctree> pm_create(nvbm::Heap& heap,
                                    const octree::Octree* tree,
                                    PmConfig config) {
  if (tree == nullptr) {
    return std::make_unique<PmOctree>(PmOctree::create(heap, config));
  }
  return std::make_unique<PmOctree>(
      PmOctree::create_from(heap, *tree, config));
}

PersistStats pm_persistent(PmOctree& tree) { return tree.persist(); }

std::unique_ptr<PmOctree> pm_restore(nvbm::Heap& heap, PmConfig config) {
  return std::make_unique<PmOctree>(PmOctree::restore(heap, config));
}

void pm_delete(PmOctree& tree) { tree.destroy(); }

}  // namespace pmo::pmoctree
