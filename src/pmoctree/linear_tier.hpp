// Flat Morton-keyed cold tier: packed octant pages (ROADMAP item 1).
//
// The pointer-linked PNode costs 136 bytes per octant — 8 child refs plus
// a parent ref that a *cold* (persisted-and-clean) subtree never needs,
// because its topology is fully determined by the sorted key sequence.
// Following Cornerstone's pointer-free octrees built from sorted Morton
// ranges (arXiv 2307.06345) and the binarized per-node encoding of
// Hasbestan & Senocak (arXiv 1712.00408), a compacted subtree is stored as
// its DFS pre-order record sequence:
//
//   record = binarized key (8 B) + subtree skip count (4 B)
//          + child-presence mask (1 B) + CellData payload (48 B)
//
// grouped into fixed 3936-byte SoA pages of 64 records (one key array,
// one skip array, one mask array, one payload array per page — the batch
// descent kernels stream each array contiguously). 61 B of real data per
// octant against the pointer tier's 136 B. The ISSUE's ≤ 32 B/octant
// target is reachable only by quantizing CellData (6 doubles = 48 B);
// this tier stays lossless — the persisted payload must round-trip
// bit-identically through compaction — and takes the 2.2x instead of the
// 4x (see DESIGN.md §11 for the deviation note).
//
// A chain (= one compacted subtree) is ONE heap allocation of
// npages * kPageBytes bytes, so GC, replica shipping and tombstoning
// treat it as a unit, and NodeRef::linear(chain, index) addresses any
// record in O(1).
//
// Topology without pointers: records are in DFS pre-order, so the first
// child of record r is r + 1, and the next sibling of a child c is
// c + skip(c) (skip = subtree record count, Cornerstone's rank/offset
// array collapsed into one cumulative-count word). Descent is
// rank-select over the child mask; exact lookup is binary search over
// the (key, level)-sorted record sequence.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/morton.hpp"
#include "nvbm/device.hpp"
#include "octree/cell_data.hpp"

namespace pmo::pmoctree::linear {

inline constexpr std::uint32_t kPageMagic = 0x4f4d'504cu;  // "LPMO"
inline constexpr std::uint32_t kPageSlots = 64;
/// NodeRef's linear mode carries a 20-bit record index.
inline constexpr std::uint32_t kMaxChainRecords = 1u << 20;

// SoA layout inside one page. All offsets are from the page base.
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kKeysOff = kHeaderBytes;
inline constexpr std::size_t kSkipOff = kKeysOff + 8 * kPageSlots;
inline constexpr std::size_t kMaskOff = kSkipOff + 4 * kPageSlots;
inline constexpr std::size_t kDataOff = kMaskOff + kPageSlots;
inline constexpr std::size_t kPageBytes = kDataOff + sizeof(CellData) * kPageSlots;
static_assert(kPageBytes == 3936);

/// Per-page header. `count` is the number of live records in this page;
/// `total_records` and `npages` are chain-level and repeated in every
/// page so a page is self-validating after a crash.
struct PageHeader {
  std::uint32_t magic = kPageMagic;
  std::uint32_t count = 0;
  std::uint32_t epoch = 0;          ///< persist epoch that built the chain
  std::uint32_t npages = 0;
  std::uint32_t total_records = 0;
  std::uint32_t reserved[3] = {};
};
static_assert(sizeof(PageHeader) == kHeaderBytes);

// ---- binarized keys (Hasbestan & Senocak) --------------------------------
// B = (1 << 3L) | (key >> 3(kMaxLevel - L)): the level-L prefix of the
// Morton key with a sentinel bit above it, so one u64 word carries both
// key and level. NOTE: the natural integer order of B is NOT the SFC/DFS
// order (a deep descendant of child 0 binarizes above a shallow child 1),
// so every comparison decodes back to (key, level) first.

constexpr std::uint64_t binarize(const LocCode& c) noexcept {
  const int l = c.level();
  return (std::uint64_t{1} << (3 * l)) | (c.key() >> (3 * (kMaxLevel - l)));
}

constexpr int binarized_level(std::uint64_t b) noexcept {
  return (63 - std::countl_zero(b)) / 3;
}

constexpr LocCode debinarize(std::uint64_t b) noexcept {
  const int l = binarized_level(b);
  const std::uint64_t key = (b ^ (std::uint64_t{1} << (3 * l)))
                            << (3 * (kMaxLevel - l));
  return LocCode::from_key(key, l);
}

/// SFC (DFS pre-order) comparison of two binarized keys.
constexpr bool binarized_less(std::uint64_t a, std::uint64_t b) noexcept {
  const int la = binarized_level(a);
  const int lb = binarized_level(b);
  const std::uint64_t ka = (a ^ (std::uint64_t{1} << (3 * la)))
                           << (3 * (kMaxLevel - la));
  const std::uint64_t kb = (b ^ (std::uint64_t{1} << (3 * lb)))
                           << (3 * (kMaxLevel - lb));
  if (ka != kb) return ka < kb;
  return la < lb;
}

/// Number of pages needed for `records` records.
constexpr std::uint32_t pages_for(std::size_t records) noexcept {
  return static_cast<std::uint32_t>((records + kPageSlots - 1) / kPageSlots);
}

/// Absolute device offset of the page holding record `r`.
constexpr std::uint64_t page_offset(std::uint64_t chain,
                                    std::uint32_t r) noexcept {
  return chain + std::uint64_t{r / kPageSlots} * kPageBytes;
}

// ---- chain construction --------------------------------------------------

/// Accumulates records in DFS pre-order, then writes the finished chain
/// to the device as charged stores (so compaction traffic lands in the
/// modeled counters and the crash-sim write buffer like any other
/// pre-flush mutation).
class Builder {
 public:
  struct Record {
    std::uint64_t bkey = 0;
    std::uint32_t skip = 1;
    std::uint8_t mask = 0;
    CellData data;
  };

  /// Appends a record; returns its index. Call close(idx) after all of
  /// the subtree's records have been appended.
  std::size_t add(const LocCode& code, std::uint8_t mask,
                  const CellData& data) {
    Record r;
    r.bkey = binarize(code);
    r.mask = mask;
    r.data = data;
    recs_.push_back(r);
    return recs_.size() - 1;
  }

  /// Seals record `idx`'s subtree: skip = number of records emitted since
  /// (and including) idx. DFS emission order makes this the subtree size.
  void close(std::size_t idx) {
    PMO_DCHECK(idx < recs_.size());
    recs_[idx].skip = static_cast<std::uint32_t>(recs_.size() - idx);
  }

  std::size_t size() const noexcept { return recs_.size(); }
  const std::vector<Record>& records() const noexcept { return recs_; }

  std::size_t bytes() const noexcept {
    return std::size_t{pages_for(recs_.size())} * kPageBytes;
  }

  /// Serializes every page into the device at `chain` (a heap payload of
  /// at least bytes()). Charged, buffered by the crash simulator; the
  /// caller's flush_all() makes the chain durable.
  void write(nvbm::Device& dev, std::uint64_t chain,
             std::uint32_t epoch) const;

 private:
  std::vector<Record> recs_;
};

// ---- chain access --------------------------------------------------------

/// Zero-copy view over a chain's pages via Device::raw. Accessors carry
/// no latency accounting: the owning tree charges through its PageCache
/// and serve::Reader through its private reader model, each with its own
/// determinism surface.
class ChainView {
 public:
  ChainView(nvbm::Device& dev, std::uint64_t chain) : dev_(&dev), chain_(chain) {
    const PageHeader h = header(0);
    PMO_DCHECK(h.magic == kPageMagic);
    npages_ = h.npages;
    total_ = h.total_records;
    epoch_ = h.epoch;
  }

  std::uint64_t chain() const noexcept { return chain_; }
  std::uint32_t pages() const noexcept { return npages_; }
  std::uint32_t total_records() const noexcept { return total_; }
  std::uint32_t epoch() const noexcept { return epoch_; }
  std::uint64_t bytes() const noexcept {
    return std::uint64_t{npages_} * kPageBytes;
  }

  PageHeader header(std::uint32_t page) const {
    return load<PageHeader>(chain_ + std::uint64_t{page} * kPageBytes);
  }

  std::uint64_t bkey(std::uint32_t r) const {
    return load<std::uint64_t>(addr(r, kKeysOff, 8));
  }
  std::uint32_t skip(std::uint32_t r) const {
    return load<std::uint32_t>(addr(r, kSkipOff, 4));
  }
  std::uint8_t mask(std::uint32_t r) const {
    return load<std::uint8_t>(addr(r, kMaskOff, 1));
  }
  CellData data(std::uint32_t r) const {
    return load<CellData>(addr(r, kDataOff, sizeof(CellData)));
  }
  LocCode code(std::uint32_t r) const { return debinarize(bkey(r)); }

  /// Record indices of the present children of `r` (DFS: first child at
  /// r + 1, next sibling at prev + skip(prev)). out[j] is valid only for
  /// set mask bits. Returns the mask.
  std::uint8_t children(std::uint32_t r, std::uint32_t out[8]) const {
    const std::uint8_t m = mask(r);
    std::uint32_t c = r + 1;
    for (int j = 0; j < 8; ++j) {
      if ((m & (1u << j)) == 0) continue;
      out[j] = c;
      c += skip(c);
    }
    return m;
  }

  /// Deepest record whose octant contains `target`: the exact record if
  /// present, else the leaf / partial-group node covering it. Rank-select
  /// descent: one mask probe plus at most 7 skip probes per level.
  std::uint32_t locate(const LocCode& target) const;

  /// Exact (key, level) match via binary search over the DFS pre-order
  /// sequence (sorted by (key asc, level asc)). Returns -1 when absent.
  std::int64_t find(const LocCode& target) const;

  /// Structural validation of every page (magic, counts, skip ranges).
  /// Crash-recovery tests call this on the restored image to prove a
  /// chain is never torn: it is either absent or fully intact.
  bool validate() const;

 private:
  std::uint64_t addr(std::uint32_t r, std::size_t field_off,
                     std::size_t elem) const noexcept {
    return page_offset(chain_, r) + field_off + (r % kPageSlots) * elem;
  }
  template <typename T>
  T load(std::uint64_t off) const {
    T v;
    std::memcpy(&v, dev_->raw(off, sizeof(T)), sizeof(T));
    return v;
  }

  nvbm::Device* dev_;
  std::uint64_t chain_;
  std::uint32_t npages_ = 0;
  std::uint32_t total_ = 0;
  std::uint32_t epoch_ = 0;
};

/// Batched multi-point locate (the Jacobi-gather entry point): resolves
/// `n` targets against one chain, stepping all lanes one level per
/// round so the mask/skip probes of a round touch consecutive SoA arrays
/// — the memory-access pattern the SIMD gather wants, fed by the batched
/// BMI2 Morton kernels in common/morton.hpp. Results are identical to
/// calling locate() per target.
void batch_locate(const ChainView& view, const LocCode* targets,
                  std::uint32_t* out, std::size_t n);

// ---- page cache ----------------------------------------------------------

/// Clock cache of *page residency* for the charge model. Chains are
/// immutable after construction, so unlike NodeCache no bytes need to be
/// copied or re-validated — the cache only tracks which pages would be
/// DRAM-resident, deciding whether a record access charges a full-page
/// NVBM streaming read (miss: the whole page is admitted) or a DRAM-side
/// cached read (hit). Invalidation happens only when GC frees a chain.
class PageCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };

  explicit PageCache(std::size_t budget_bytes)
      : slots_(budget_bytes / kPageBytes) {
    index_.reserve(slots_.size());
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  const Stats& stats() const noexcept { return stats_; }

  /// True = page resident (hit). False = miss; the page is admitted,
  /// evicting the clock victim when full.
  bool touch(std::uint64_t page_off) {
    if (slots_.empty()) {
      ++stats_.misses;
      return false;
    }
    if (const auto it = index_.find(page_off); it != index_.end()) {
      slots_[it->second].referenced = true;
      ++stats_.hits;
      return true;
    }
    ++stats_.misses;
    const std::size_t slot = claim_slot();
    Entry& e = slots_[slot];
    if (e.live) {
      index_.erase(e.page_off);
      ++stats_.evictions;
    }
    e = Entry{page_off, /*referenced=*/true, /*live=*/true};
    index_.emplace(page_off, slot);
    return false;
  }

  /// Drops every cached page of the chain at `chain` (`npages` pages) —
  /// called from the GC sweep before the heap reuses the bytes.
  void invalidate_chain(std::uint64_t chain, std::uint32_t npages) {
    for (std::uint32_t p = 0; p < npages; ++p) {
      const auto it = index_.find(chain + std::uint64_t{p} * kPageBytes);
      if (it == index_.end()) continue;
      slots_[it->second].live = false;
      index_.erase(it);
      ++stats_.invalidations;
    }
  }

  void clear() {
    for (Entry& e : slots_) e = Entry{};
    index_.clear();
  }

 private:
  struct Entry {
    std::uint64_t page_off = 0;
    bool referenced = false;
    bool live = false;
  };

  std::size_t claim_slot() {
    for (;;) {
      Entry& e = slots_[hand_];
      const std::size_t slot = hand_;
      hand_ = (hand_ + 1) % slots_.size();
      if (!e.live || !e.referenced) return slot;
      e.referenced = false;
    }
  }

  std::vector<Entry> slots_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::size_t hand_ = 0;
  Stats stats_;
};

}  // namespace pmo::pmoctree::linear
