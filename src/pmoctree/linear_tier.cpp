#include "pmoctree/linear_tier.hpp"

#include <algorithm>

namespace pmo::pmoctree::linear {

void Builder::write(nvbm::Device& dev, std::uint64_t chain,
                    std::uint32_t epoch) const {
  PMO_CHECK_MSG(!recs_.empty(), "cannot write an empty chain");
  PMO_CHECK_MSG(recs_.size() <= kMaxChainRecords,
                "chain exceeds the NodeRef record-index width");
  const std::uint32_t npages = pages_for(recs_.size());
  std::vector<std::byte> page(kPageBytes);
  for (std::uint32_t p = 0; p < npages; ++p) {
    std::fill(page.begin(), page.end(), std::byte{0});
    const std::size_t first = std::size_t{p} * kPageSlots;
    const std::size_t count =
        std::min<std::size_t>(kPageSlots, recs_.size() - first);
    PageHeader h;
    h.count = static_cast<std::uint32_t>(count);
    h.epoch = epoch;
    h.npages = npages;
    h.total_records = static_cast<std::uint32_t>(recs_.size());
    std::memcpy(page.data(), &h, sizeof(h));
    for (std::size_t s = 0; s < count; ++s) {
      const Record& r = recs_[first + s];
      std::memcpy(page.data() + kKeysOff + s * 8, &r.bkey, 8);
      std::memcpy(page.data() + kSkipOff + s * 4, &r.skip, 4);
      std::memcpy(page.data() + kMaskOff + s, &r.mask, 1);
      std::memcpy(page.data() + kDataOff + s * sizeof(CellData), &r.data,
                  sizeof(CellData));
    }
    dev.write(chain + std::uint64_t{p} * kPageBytes, page.data(), kPageBytes);
  }
}

std::uint32_t ChainView::locate(const LocCode& target) const {
  std::uint32_t r = 0;
  for (;;) {
    const LocCode rc = code(r);
    PMO_DCHECK(rc.contains(target) || rc == target);
    if (rc.level() >= target.level()) return r;
    const std::uint8_t m = mask(r);
    if (m == 0) return r;  // leaf covering target
    const int j = target.ancestor_at(rc.level() + 1).child_index();
    if ((m & (1u << j)) == 0) return r;  // partial sibling group
    std::uint32_t c = r + 1;
    for (int s = 0; s < j; ++s)
      if ((m & (1u << s)) != 0) c += skip(c);
    r = c;
  }
}

std::int64_t ChainView::find(const LocCode& target) const {
  // Records are in DFS pre-order = sorted by decoded (key asc, level asc).
  const std::uint64_t want = binarize(target);
  std::uint32_t lo = 0;
  std::uint32_t hi = total_;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (binarized_less(bkey(mid), want))
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < total_ && bkey(lo) == want) return lo;
  return -1;
}

bool ChainView::validate() const {
  if (npages_ == 0 || total_ == 0) return false;
  if (pages_for(total_) != npages_) return false;
  std::uint32_t counted = 0;
  for (std::uint32_t p = 0; p < npages_; ++p) {
    const PageHeader h = header(p);
    if (h.magic != kPageMagic || h.npages != npages_ ||
        h.total_records != total_ || h.epoch != epoch_)
      return false;
    const std::uint32_t expect =
        std::min<std::uint32_t>(kPageSlots, total_ - p * kPageSlots);
    if (h.count != expect) return false;
    counted += h.count;
  }
  if (counted != total_) return false;
  // Root record must span the whole chain; every skip must stay in range.
  if (skip(0) != total_) return false;
  for (std::uint32_t r = 0; r < total_; ++r) {
    const std::uint32_t s = skip(r);
    if (s == 0 || r + s > total_) return false;
    if (bkey(r) == 0) return false;
    if (r > 0 && !binarized_less(bkey(r - 1), bkey(r))) return false;
  }
  return true;
}

void batch_locate(const ChainView& view, const LocCode* targets,
                  std::uint32_t* out, std::size_t n) {
  // Level-synchronous lane stepping: every live lane advances one level
  // per round, so a round's mask/skip probes walk the same SoA arrays.
  std::vector<std::uint8_t> done(n, 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = 0;
  for (std::size_t live = n; live != 0;) {
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const std::uint32_t r = out[i];
      const LocCode rc = view.code(r);
      if (rc.level() >= targets[i].level()) {
        done[i] = 1;
        --live;
        continue;
      }
      const std::uint8_t m = view.mask(r);
      const int j = targets[i].ancestor_at(rc.level() + 1).child_index();
      if (m == 0 || (m & (1u << j)) == 0) {
        done[i] = 1;
        --live;
        continue;
      }
      std::uint32_t c = r + 1;
      for (int s = 0; s < j; ++s)
        if ((m & (1u << s)) != 0) c += view.skip(c);
      out[i] = c;
    }
  }
}

}  // namespace pmo::pmoctree::linear
