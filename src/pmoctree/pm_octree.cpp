#include "pmoctree/pm_octree.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <functional>

#include "exec/pool.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace pmo::pmoctree {

namespace {
constexpr std::size_t kNodeSize = sizeof(PNode);

std::size_t lines_for(std::size_t bytes, std::size_t line) noexcept {
  return (bytes + line - 1) / line;
}
}  // namespace

// ---------------------------------------------------------------------------
// construction / restore
// ---------------------------------------------------------------------------

PmOctree::PmOctree(nvbm::Heap& heap, PmConfig config)
    : heap_(heap),
      config_(config),
      cache_(config.node_cache_bytes),
      page_cache_(config.page_cache_bytes) {
  // PNodes dominate heap traffic; give their size class the O(1)
  // fast-path free list.
  heap_.reserve_class(kNodeSize);
  auto& reg = telemetry::Registry::global();
  tm_.cow_copies = &reg.counter("pmoctree.cow_copies");
  tm_.twin_reuse = &reg.counter("pmoctree.merge.twin_reuse");
  tm_.merged_from_dram = &reg.counter("pmoctree.merge.merged_from_dram");
  tm_.tombstoned = &reg.counter("pmoctree.merge.tombstoned");
  tm_.evictions = &reg.counter("pmoctree.merge.evictions");
  tm_.persists = &reg.counter("pmoctree.persists");
  tm_.gc_sweeps = &reg.counter("pmoctree.gc.sweeps");
  tm_.gc_freed = &reg.counter("pmoctree.gc.freed");
  tm_.transform_runs = &reg.counter("pmoctree.transform.runs");
  tm_.transform_moved_to_dram =
      &reg.counter("pmoctree.transform.moved_to_dram");
  tm_.transform_evicted_to_nvbm =
      &reg.counter("pmoctree.transform.evicted_to_nvbm");
  tm_.cache_hits = &reg.counter("pmoctree.cache.hits");
  tm_.cache_misses = &reg.counter("pmoctree.cache.misses");
  tm_.cache_evictions = &reg.counter("pmoctree.cache.evictions");
  tm_.cache_invalidations = &reg.counter("pmoctree.cache.invalidations");
  tm_.cursor_lca_reuse = &reg.counter("pmoctree.cursor.lca_reuse");
  tm_.persist_visits = &reg.counter("pmoctree.persist.visits");
  tm_.persist_pruned = &reg.counter("pmoctree.persist.pruned_subtrees");
  tm_.linear_pages = &reg.counter("pmoctree.linear.pages");
  tm_.linear_promotions = &reg.counter("pmoctree.linear.promotions");
  tm_.linear_compactions = &reg.counter("pmoctree.linear.compactions");
  registry_ = std::make_shared<SnapshotRegistry>();
  registry_->set_counters(&reg.counter("pmoctree.snapshot.pins"),
                          &reg.counter("pmoctree.snapshot.unpins"));
}

PmOctree PmOctree::create(nvbm::Heap& heap, PmConfig config) {
  PmOctree tree(heap, config);
  // Clean slate: drop any roots and reclaim every object on the heap.
  heap.set_root(kPrevRootSlot, 0);
  heap.set_root(kEpochSlot, 0);
  heap.set_root(kNodeCountSlot, 0);
  heap.sweep([](std::uint64_t) { return false; });
  PNode root{};
  root.code = LocCode::root();
  root.epoch = tree.epoch_;
  tree.cur_root_ = tree.alloc_node(root, true);
  tree.logical_nodes_ = 1;
  return tree;
}

PmOctree PmOctree::create_from(nvbm::Heap& heap, const octree::Octree& src,
                               PmConfig config) {
  PmOctree tree = create(heap, config);
  // Mirror the volatile tree (the paper's pm_create(octree*) adoption).
  std::function<void(const octree::Node&)> copy =
      [&](const octree::Node& n) {
        tree.insert(n.code, n.data);
        for (const auto* c : n.children)
          if (c != nullptr) copy(*c);
      };
  copy(*src.root());
  return tree;
}

bool PmOctree::can_restore(nvbm::Heap& heap) {
  const bool ok = heap.root(kPrevRootSlot) != 0;
  telemetry::trace::audit("pmoctree.can_restore",
                          {{"ok", ok ? 1.0 : 0.0}});
  return ok;
}

PmOctree PmOctree::restore(nvbm::Heap& heap, PmConfig config) {
  telemetry::Span span("pmoctree.restore");
  telemetry::trace::audit(
      "pmoctree.restore",
      {{"epoch", static_cast<double>(heap.root(kEpochSlot))}});
  PmOctree tree(heap, config);
  const std::uint64_t root_off = heap.root(kPrevRootSlot);
  PMO_CHECK_MSG(root_off != 0, "pm_restore: no persisted version in heap");
  PMO_CHECK_MSG(heap.is_allocated(root_off),
                "pm_restore: persistent root does not address a live object");
  tree.prev_root_ = NodeRef::nvbm(root_off);
  // V_i starts as an alias of V_{i-1}: O(1) recovery — nothing is copied.
  tree.cur_root_ = tree.prev_root_;
  tree.epoch_ =
      static_cast<std::uint32_t>(heap.root(kEpochSlot)) + 1;
  // The persisted version's logical octant count, written just before the
  // root swap — keeps nodes_total available without a traversal.
  tree.logical_nodes_ =
      static_cast<std::size_t>(heap.root(kNodeCountSlot));
  // The restored version is durable by definition: publish it so readers
  // can pin it before the first post-recovery persist.
  tree.registry_->publish(root_off,
                          static_cast<std::uint32_t>(heap.root(kEpochSlot)),
                          tree.logical_nodes_);
  // Depth is re-learned lazily; seed it from the persisted root's subtree
  // on first stats() call. Keep 0 here to stay O(1).
  return tree;
}

// ---------------------------------------------------------------------------
// node access layer
// ---------------------------------------------------------------------------

void PmOctree::charge_dram_read() {
  ++dram_.reads;
  const auto lines = lines_for(kNodeSize, config_.cache_line);
  dram_.lines_read += lines;
  dram_.modeled_read_ns += lines * config_.dram_read_ns;
}

void PmOctree::charge_dram_write() {
  ++dram_.writes;
  const auto lines = lines_for(kNodeSize, config_.cache_line);
  dram_.lines_written += lines;
  dram_.modeled_write_ns += lines * config_.dram_write_ns;
}

void PmOctree::touch_heat(const LocCode& code, double amount) {
  heat_[subtree_id(code)] += amount;
}

PNode PmOctree::read_node(NodeRef ref) {
  PMO_DCHECK(!ref.null());
  if (ref.in_dram()) {
    charge_dram_read();
    const PNode node = *ref.dram_ptr();
    touch_heat(node.code, 1.0);
    return node;
  }
  if (ref.in_linear()) {
    const PNode node = synth_linear(ref);
    touch_heat(node.code, 1.0);
    return node;
  }
  const PNode node = nv_load(ref.nvbm_offset());
  touch_heat(node.code, 1.0);
  return node;
}

void PmOctree::note_chain(std::uint64_t chain, std::uint32_t npages) {
  chains_.emplace(chain, npages);
}

void PmOctree::charge_linear_page(std::uint64_t page_off) {
  if (page_cache_.touch(page_off)) {
    // Resident page: the record access is DRAM traffic, one line.
    device().charge_cached_read(config_.cache_line);
    return;
  }
  // Miss: stream the whole page in (and admit it). This is where the
  // compaction win comes from — one 62-line page read covers 64 octants
  // where the pointer tier pays ~3 lines per octant, and repeats are
  // cached reads that never touch nvbm.lines_read again.
  device().touch_read(page_off, linear::kPageBytes);
}

PNode PmOctree::synth_linear(NodeRef ref) {
  const std::uint64_t chain = ref.linear_chain();
  const std::uint32_t r = ref.linear_index();
  linear::ChainView view(device(), chain);
  note_chain(chain, view.pages());
  charge_linear_page(linear::page_offset(chain, r));
  PNode node{};
  node.code = view.code(r);
  node.data = view.data(r);
  node.parent = 0;  // synthesized views are parentless; paths carry links
  node.epoch = view.epoch();
  const std::uint8_t m = view.mask(r);
  std::uint32_t c = r + 1;
  std::uint64_t probed = linear::page_offset(chain, r);
  for (int j = 0; j < 8; ++j) {
    if ((m & (1u << j)) == 0) continue;
    node.set_child(j, NodeRef::linear(chain, c));
    // The skip probe locating the next sibling may land on a later page;
    // charge each newly touched page once.
    const std::uint64_t p = linear::page_offset(chain, c);
    if (p != probed) {
      charge_linear_page(p);
      probed = p;
    }
    c += view.skip(c);
  }
  return node;
}

PNode PmOctree::nv_load(std::uint64_t offset) {
  if (cache_.capacity() == 0) return device().load<PNode>(offset);
  if (const PNode* hit = cache_.lookup(offset, epoch_)) {
    tm_.cache_hits->add();
    device().charge_cached_read(kNodeSize);
    return *hit;
  }
  tm_.cache_misses->add();
  const PNode node = device().load<PNode>(offset);
  if (cache_.insert(offset, node, epoch_)) tm_.cache_evictions->add();
  return node;
}

void PmOctree::nv_store(std::uint64_t offset, const PNode& node) {
  ++structure_version_;
  // The dirty-subtree summary bit is DRAM-only bookkeeping: strip it from
  // every byte that reaches the device so the persisted image is a pure
  // function of tree content, independent of mutation history.
  PNode clean = node;
  clean.flags &= ~kNodeSubtreeDirty;
  device().store<PNode>(offset, clean);
  cache_.update(offset, clean, epoch_);
}

void PmOctree::nv_store_partial(std::uint64_t offset, std::size_t field_off,
                                std::size_t len, const PNode& full) {
  ++structure_version_;
  PNode clean = full;
  clean.flags &= ~kNodeSubtreeDirty;
  device().write(offset + field_off,
                 reinterpret_cast<const std::byte*>(&clean) + field_off, len);
  cache_.update(offset, clean, epoch_);
}

void PmOctree::nv_free(std::uint64_t offset) {
  ++structure_version_;
  if (cache_.invalidate(offset)) tm_.cache_invalidations->add();
  heap_.free(offset);
}

void PmOctree::write_node(NodeRef ref, const PNode& node) {
  PMO_DCHECK(!ref.null());
  touch_heat(node.code, 1.0);
  if (ref.in_dram()) {
    ++structure_version_;
    charge_dram_write();
    *ref.dram_ptr() = node;
    return;
  }
  nv_store(ref.nvbm_offset(), node);
}

void PmOctree::write_back_data(PathEntry& e) {
  touch_heat(e.node.code, 1.0);
  if (e.ref.in_dram()) {
    ++structure_version_;
    charge_dram_write();
    *e.ref.dram_ptr() = e.node;
    return;
  }
  // Only data/flags/epoch changed; the code/parent/children prefix on the
  // device is already identical (the node was either stored whole at its
  // CoW allocation or was private with the same links).
  nv_store_partial(e.ref.nvbm_offset(), offsetof(PNode, data),
                   sizeof(PNode) - offsetof(PNode, data), e.node);
}

void PmOctree::write_back_child(NodeRef ref, const PNode& node, int ci) {
  touch_heat(node.code, 1.0);
  if (ref.in_dram()) {
    ++structure_version_;
    charge_dram_write();
    *ref.dram_ptr() = node;
    return;
  }
  nv_store_partial(ref.nvbm_offset(),
                   offsetof(PNode, child) + static_cast<std::size_t>(ci) * 8,
                   8, node);
  // The child-presence mask lives in the flags word: store it too so the
  // durable mask tracks null<->non-null slot transitions.
  nv_store_partial(ref.nvbm_offset(), offsetof(PNode, flags),
                   sizeof(node.flags), node);
}

void PmOctree::write_back_children(NodeRef ref, const PNode& node) {
  touch_heat(node.code, 1.0);
  if (ref.in_dram()) {
    ++structure_version_;
    charge_dram_write();
    *ref.dram_ptr() = node;
    return;
  }
  nv_store_partial(ref.nvbm_offset(), offsetof(PNode, child),
                   sizeof(node.child), node);
  nv_store_partial(ref.nvbm_offset(), offsetof(PNode, flags),
                   sizeof(node.flags), node);
}

NodeRef PmOctree::alloc_node(const PNode& proto, bool prefer_dram) {
  note_depth(proto.code.level());
  ++structure_version_;
  // Hard cap at the overflow ceiling; the placement policies already
  // enforce the tighter budget/designation rules.
  const auto ceiling = static_cast<std::size_t>(
      static_cast<double>(config_.dram_budget_bytes) * config_.dram_overflow);
  if (prefer_dram && dram_bytes() < ceiling) {
    PNode* slot = nullptr;
    if (!dram_free_.empty()) {
      slot = dram_free_.back();
      dram_free_.pop_back();
    } else {
      dram_pool_.emplace_back();
      slot = &dram_pool_.back();
    }
    *slot = proto;
    ++dram_node_count_;
    charge_dram_write();
    c0_set_.insert(subtree_id(proto.code));
    return NodeRef::dram(slot);
  }
  const std::uint64_t off = heap_.alloc(kNodeSize);
  const NodeRef ref = NodeRef::nvbm(off);
  nv_store(off, proto);
  return ref;
}

void PmOctree::free_node(NodeRef ref) {
  PMO_DCHECK(!ref.null());
  ++structure_version_;
  if (ref.in_dram()) {
    twins_.erase(ref.dram_ptr());
    dram_free_.push_back(ref.dram_ptr());
    --dram_node_count_;
    return;
  }
  nv_free(ref.nvbm_offset());
}

// ---------------------------------------------------------------------------
// placement
// ---------------------------------------------------------------------------

int PmOctree::subtree_level() const noexcept {
  // Paper Eq. 1: L_sub = Depth_octree - floor(log_Fanout(Size_DRAM)).
  const double budget_nodes = std::max<double>(
      1.0, static_cast<double>(config_.dram_budget_bytes) / kNodeSize);
  const int span =
      static_cast<int>(std::floor(std::log(budget_nodes) / std::log(8.0)));
  return std::clamp(depth_ - span, 0, depth_);
}

LocCode PmOctree::subtree_id(const LocCode& code) const {
  const int level = std::min(code.level(), subtree_level());
  return code.ancestor_at(level);
}

bool PmOctree::place_new(const LocCode& code) const {
  if (config_.dram_budget_bytes == 0) return false;
  if (place_cow(code)) return true;
  // First-touch: any octant may claim free DRAM. Without the dynamic
  // transformation this is exactly the "locality-oblivious" behaviour of
  // Fig. 5a — DRAM fills with whatever was touched first and nothing
  // re-lays it out when the access pattern moves.
  return dram_bytes() <
         static_cast<std::size_t>(static_cast<double>(
             config_.dram_budget_bytes) * config_.threshold_dram);
}

bool PmOctree::place_cow(const LocCode& code) const {
  if (config_.dram_budget_bytes == 0) return false;
  // Subtrees the transformation designated hot may transiently overflow
  // the budget; enforce_dram_budget() trims back to it afterwards.
  if (c0_set_.count(subtree_id(code)) == 0) return false;
  return dram_bytes() <
         static_cast<std::size_t>(static_cast<double>(
             config_.dram_budget_bytes) * config_.dram_overflow);
}

// ---------------------------------------------------------------------------
// structural helpers
// ---------------------------------------------------------------------------

PmOctree::Cursor* PmOctree::cursor() {
  if (cache_.capacity() == 0) return nullptr;  // cursor layer rides the knob
  const auto ctx = static_cast<std::size_t>(exec::context_id());
  if (ctx >= cursors_.size()) cursors_.resize(ctx + 1);
  return &cursors_[ctx];
}

bool PmOctree::descend(const LocCode& code, Path& path) {
  path.clear();
  PMO_CHECK_MSG(!cur_root_.null(), "tree has been destroyed");

  Cursor* cur = cursor();
  std::size_t reused = 0;
  if (cur != nullptr && cur->stamp == epoch_ &&
      cur->version == structure_version_ && !cur->path.empty() &&
      cur->path[0].ref == cur_root_) {
    // Longest common ancestor of the cursor's code and the probe: the
    // deepest level at which both codes name the same octant, computed
    // from the codes alone — no tree reads.
    const LocCode& prev = cur->path.back().node.code;
    int lca = std::min(code.level(), prev.level());
    while (lca > 0 &&
           !(code.ancestor_at(lca).key() == prev.ancestor_at(lca).key()))
      --lca;
    const std::size_t take =
        std::min(cur->path.size(), static_cast<std::size_t>(lca) + 1);
    // Reuse the shared prefix. Which ops share a cursor depends on worker
    // scheduling, so reuse must be modeled-charge TRANSPARENT: each entry
    // performs exactly the accounting and cache side effects a fresh
    // read_node would. What it skips is the real work — the device/pool
    // memcpys and child-link chasing for the prefix.
    for (std::size_t i = 0; i < take; ++i) {
      const PathEntry& e = cur->path[i];
      if (e.ref.in_dram()) {
        charge_dram_read();
      } else if (cache_.lookup(e.ref.nvbm_offset(), epoch_) != nullptr) {
        tm_.cache_hits->add();
        device().charge_cached_read(kNodeSize);
      } else {
        tm_.cache_misses->add();
        device().touch_read(e.ref.nvbm_offset(), kNodeSize);
        if (cache_.insert(e.ref.nvbm_offset(), e.node, epoch_))
          tm_.cache_evictions->add();
      }
      touch_heat(e.node.code, 1.0);
      path.push_back(e);
    }
    reused = take;
  }

  if (path.empty()) path.push_back({cur_root_, read_node(cur_root_)});
  bool found = true;
  for (int level = static_cast<int>(path.size()); level <= code.level();
       ++level) {
    const int idx = code.ancestor_at(level).child_index();
    const NodeRef child = path.back().node.child_ref(idx);
    if (child.null()) {
      found = false;
      break;
    }
    path.push_back({child, read_node(child)});
  }

  if (reused > 0) {
    tm_.cursor_lca_reuse->add(reused);
    cursor_reuse_ += reused;
  }
  if (cur != nullptr) {
    // Save only the pointer-tier prefix: replaying a linear entry
    // charge-transparently would redo the whole skip-walk synthesis, so
    // there is nothing for reuse to save below the first chain record.
    std::size_t keep = path.size();
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i].ref.in_linear()) {
        keep = i;
        break;
      }
    }
    cur->path.assign(path.begin(),
                     path.begin() + static_cast<std::ptrdiff_t>(keep));
    cur->stamp = epoch_;
    cur->version = structure_version_;
  }
  return found;
}

void PmOctree::mark_dirty_path(Path& path, std::size_t i) {
  // Stamp the summary bit on every DRAM ancestor of the mutation (NVBM
  // entries are skipped: a shared NVBM ancestor is CoW-copied to the
  // current epoch before any descendant mutation lands, and epoch ==
  // current already forces a merge visit). Both the live node and the
  // path's cached copy are stamped so later write-backs of the cached
  // copy cannot clear the live bit.
  for (std::size_t k = 0; k <= i; ++k) {
    if (!path[k].ref.in_dram()) continue;
    path[k].ref.dram_ptr()->flags |= kNodeSubtreeDirty;
    path[k].node.flags |= kNodeSubtreeDirty;
  }
}

NodeRef PmOctree::make_mutable(Path& path, std::size_t i) {
  mark_dirty_path(path, i);
  NodeRef ref = path[i].ref;
  if (ref.in_dram()) {
    // DRAM nodes are never referenced by V_{i-1} directly (only their
    // NVBM twins are), so they mutate in place — but the first mutation
    // of an epoch must stamp the node dirty so the next persist writes a
    // fresh twin instead of reusing the shared one.
    if (path[i].node.epoch != epoch_) {
      path[i].node.epoch = epoch_;
      ref.dram_ptr()->epoch = epoch_;
    }
    return ref;
  }
  if (ref.in_nvbm() && path[i].node.epoch == epoch_)
    return ref;  // private NVBM node

  // Copy-on-write (Fig. 4): copy this shared octant, then recursively make
  // the parent mutable and relink. The shared original stays untouched for
  // V_{i-1}. A linear record takes exactly this branch too — its chain is
  // immutable and shared by construction — which is the promotion path:
  // the copy is an ordinary pointer-tier PNode whose untouched child slots
  // keep addressing the chain.
  if (ref.in_linear()) tm_.linear_promotions->add();
  tm_.cow_copies->add();
  telemetry::trace::instant("pmoctree.cow_copy", "pmoctree",
                            {{"depth", static_cast<double>(i)}});
  NodeRef parent_ref;
  if (i > 0) parent_ref = make_mutable(path, i - 1);

  PNode copy = path[i].node;
  copy.epoch = epoch_;
  copy.set_parent(parent_ref);
  const NodeRef nref = alloc_node(copy, place_new(copy.code));

  if (i == 0) {
    cur_root_ = nref;
  } else {
    auto& parent = path[i - 1];
    parent.node.set_child(copy.code.child_index(), nref);
    write_back_child(parent.ref, parent.node, copy.code.child_index());
  }
  path[i].ref = nref;
  path[i].node = copy;
  return nref;
}

// ---------------------------------------------------------------------------
// queries / traversal
// ---------------------------------------------------------------------------

std::optional<CellData> PmOctree::find(const LocCode& code) {
  Path path;
  if (!descend(code, path)) return std::nullopt;
  return path.back().node.data;
}

bool PmOctree::contains(const LocCode& code) {
  Path path;
  return descend(code, path);
}

bool PmOctree::is_leaf(const LocCode& code) {
  Path path;
  if (!descend(code, path)) return false;
  return path.back().node.is_leaf();
}

CellData PmOctree::sample(const LocCode& code) {
  Path path;
  descend(code, path);
  return path.back().node.data;
}

LocCode PmOctree::leaf_containing(const LocCode& code) {
  Path path;
  descend(code, path);
  return path.back().node.code;
}

void PmOctree::for_each_node(
    const std::function<void(const LocCode&, const CellData&, bool)>& fn) {
  if (cur_root_.null()) return;
  std::vector<NodeRef> stack{cur_root_};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    const PNode node = read_node(ref);
    fn(node.code, node.data, node.is_leaf());
    for (int i = kChildrenPerNode - 1; i >= 0; --i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
}

void PmOctree::for_each_node_ex(
    const std::function<void(const LocCode&, const CellData&, bool, bool)>&
        fn) {
  if (cur_root_.null()) return;
  std::vector<NodeRef> stack{cur_root_};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    const PNode node = read_node(ref);
    fn(node.code, node.data, node.is_leaf(), ref.in_dram());
    for (int i = kChildrenPerNode - 1; i >= 0; --i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
}

void PmOctree::for_each_leaf(
    const std::function<void(const LocCode&, const CellData&)>& fn) {
  for_each_node([&](const LocCode& code, const CellData& data, bool leaf) {
    if (leaf) fn(code, data);
  });
}

void PmOctree::extract_leaves_soa(std::vector<std::uint64_t>& keys,
                                  std::vector<std::uint8_t>& levels,
                                  std::vector<double>& vof,
                                  std::vector<double>& tracer) {
  if (cur_root_.null()) return;
  std::vector<NodeRef> stack{cur_root_};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    if (ref.in_linear()) {
      // Stream the whole packed subtree in one linear scan: records
      // [r0, r0 + skip(r0)) are its DFS pre-order, which IS the Morton
      // leaf order the snapshot needs (mask == 0 records are leaves).
      // Modeled cost: one page charge per touched 3936-byte page — the
      // sequential-scan price of the cold tier, instead of
      // per-record synth_linear. No heat touch (see the header comment).
      const std::uint64_t chain = ref.linear_chain();
      const std::uint32_t r0 = ref.linear_index();
      linear::ChainView view(device(), chain);
      note_chain(chain, view.pages());
      std::uint64_t probed = ~std::uint64_t{0};
      const auto touch_page = [&](std::uint32_t rec) {
        const std::uint64_t p = linear::page_offset(chain, rec);
        if (p != probed) {
          charge_linear_page(p);
          probed = p;
        }
      };
      touch_page(r0);
      const std::uint32_t rend = r0 + view.skip(r0);
      for (std::uint32_t r = r0; r < rend; ++r) {
        touch_page(r);
        if (view.mask(r) != 0) continue;
        const LocCode code = view.code(r);
        const CellData d = view.data(r);
        keys.push_back(code.key());
        levels.push_back(static_cast<std::uint8_t>(code.level()));
        vof.push_back(d.vof);
        tracer.push_back(d.tracer);
      }
      continue;
    }
    const PNode node = read_node(ref);
    if (node.is_leaf()) {
      keys.push_back(node.code.key());
      levels.push_back(static_cast<std::uint8_t>(node.code.level()));
      vof.push_back(node.data.vof);
      tracer.push_back(node.data.tracer);
      continue;
    }
    for (int i = kChildrenPerNode - 1; i >= 0; --i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
}

void PmOctree::for_each_leaf_from(
    NodeRef root,
    const std::function<void(const LocCode&, const CellData&)>& fn) {
  if (root.null()) return;
  std::vector<NodeRef> stack{root};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    const PNode node = read_node(ref);
    if (node.is_leaf()) fn(node.code, node.data);
    for (int i = kChildrenPerNode - 1; i >= 0; --i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
}

void PmOctree::for_each_leaf_prev(
    const std::function<void(const LocCode&, const CellData&)>& fn) {
  for_each_leaf_from(prev_root_, fn);
}

void PmOctree::for_each_leaf_snapshot(
    const SnapshotHandle& snap,
    const std::function<void(const LocCode&, const CellData&)>& fn) {
  PMO_CHECK_MSG(snap.valid(),
                "for_each_leaf_snapshot: released or empty handle");
  for_each_leaf_from(NodeRef::nvbm(snap.root_offset()), fn);
}

void PmOctree::for_each_leaf_mut(
    const std::function<bool(const LocCode&, CellData&)>& fn) {
  for_each_leaf_mut_pruned([](const LocCode&) { return true; }, fn);
}

void PmOctree::for_each_leaf_mut_pruned(
    const std::function<bool(const LocCode&)>& visit,
    const std::function<bool(const LocCode&, CellData&)>& fn) {
  // DFS carrying the full path so copy-on-write write-backs can relink
  // ancestors without a fresh descent per leaf.
  Path path;
  path.push_back({cur_root_, read_node(cur_root_)});
  // Per-depth next-child cursor.
  std::vector<int> cursor{0};
  while (!path.empty()) {
    const std::size_t i = path.size() - 1;
    if (path[i].node.is_leaf()) {
      CellData d = path[i].node.data;
      if (fn(path[i].node.code, d)) {
        make_mutable(path, i);
        path[i].node.data = d;
        write_back_data(path[i]);
      }
      path.pop_back();
      cursor.pop_back();
      continue;
    }
    int& c = cursor[i];
    // Re-read the child ref from the (possibly CoW-updated) cached node.
    // Subtrees pruned by `visit` are skipped before their root is even
    // read — the child's code is derivable from the parent's.
    NodeRef child;
    while (c < kChildrenPerNode) {
      const NodeRef candidate = path[i].node.child_ref(c);
      const int idx = c;
      ++c;
      if (candidate.null()) continue;
      if (!visit(path[i].node.code.child(idx))) continue;
      child = candidate;
      break;
    }
    if (child.null()) {
      path.pop_back();
      cursor.pop_back();
      continue;
    }
    path.push_back({child, read_node(child)});
    cursor.push_back(0);
  }
}

std::size_t PmOctree::node_count() {
  std::size_t n = 0;
  for_each_node([&](const LocCode&, const CellData&, bool) { ++n; });
  return n;
}

std::size_t PmOctree::leaf_count() {
  std::size_t n = 0;
  for_each_leaf([&](const LocCode&, const CellData&) { ++n; });
  return n;
}

// ---------------------------------------------------------------------------
// mutation
// ---------------------------------------------------------------------------

void PmOctree::insert(const LocCode& code, const CellData& data) {
  Path path;
  const bool exists = descend(code, path);
  if (exists) {
    make_mutable(path, path.size() - 1);
    path.back().node.data = data;
    write_back_data(path.back());
    return;
  }
  // Create full sibling groups level by level under the deepest ancestor
  // (octree invariant: a node has zero or eight children).
  ++topology_version_;  // new octants change the leaf set
  while (path.back().node.code.level() < code.level()) {
    const std::size_t pi = path.size() - 1;
    make_mutable(path, pi);
    PNode parent = path[pi].node;
    const int next_level = parent.code.level() + 1;
    const int take = code.ancestor_at(next_level).child_index();
    NodeRef take_ref;
    PNode take_node{};
    for (int ci = 0; ci < kChildrenPerNode; ++ci) {
      PNode child{};
      child.code = parent.code.child(ci);
      child.data = parent.data;  // inherit
      child.epoch = epoch_;
      child.set_parent(path[pi].ref);
      const NodeRef cref = alloc_node(child, place_new(child.code));
      parent.set_child(ci, cref);
      if (ci == take) {
        take_ref = cref;
        take_node = child;
      }
    }
    write_back_children(path[pi].ref, parent);
    path[pi].node = parent;
    logical_nodes_ += kChildrenPerNode;
    path.push_back({take_ref, take_node});
  }
  path.back().node.data = data;
  write_back_data(path.back());
  note_depth(code.level());
  enforce_dram_budget();
}

void PmOctree::update(const LocCode& code, const CellData& data) {
  Path path;
  PMO_CHECK_MSG(descend(code, path),
                "update of nonexistent octant " << code.to_string());
  make_mutable(path, path.size() - 1);
  path.back().node.data = data;
  write_back_data(path.back());
}

std::size_t PmOctree::free_subtree(NodeRef ref, bool tombstone_shared) {
  if (ref.null()) return 0;
  if (ref.in_linear()) {
    // A chain is freed as a unit by GC once nothing references it; an
    // individual record can be neither freed nor tombstoned. The skip
    // word IS the subtree's logical octant count — O(1), no recursion.
    const std::uint64_t chain = ref.linear_chain();
    const std::uint32_t r = ref.linear_index();
    linear::ChainView view(device(), chain);
    note_chain(chain, view.pages());
    charge_linear_page(linear::page_offset(chain, r));
    return view.skip(r);
  }
  if (ref.in_dram()) {
    const PNode node = *ref.dram_ptr();
    std::size_t n = 1;
    for (int i = 0; i < kChildrenPerNode; ++i)
      n += free_subtree(node.child_ref(i), tombstone_shared);
    free_node(ref);
    return n;
  }
  PNode node = nv_load(ref.nvbm_offset());
  if (node.epoch == epoch_) {
    std::size_t n = 1;
    for (int i = 0; i < kChildrenPerNode; ++i)
      n += free_subtree(node.child_ref(i), tombstone_shared);
    free_node(ref);
    return n;
  }
  // Shared with V_{i-1}: may not be freed or mutated structurally. Mark the
  // subtree root as deleted (tombstone); GC reclaims it once the version
  // that references it is superseded (§3.2, Deletion). The children are
  // recursed with tombstoning off purely to COUNT the logical octants
  // leaving V_i (a shared node's descendants are all shared, so nothing
  // below is freed either).
  std::size_t n = 1;
  for (int i = 0; i < kChildrenPerNode; ++i)
    n += free_subtree(node.child_ref(i), /*tombstone_shared=*/false);
  if (tombstone_shared && !node.deleted()) {
    touch_heat(node.code, 1.0);
    if (registry_->pin_count() != 0) {
      // Epoch-based reclamation: a pinned reader may be traversing this
      // shared node right now, so the kNodeDeleted flip must not be
      // written under it. Defer the mark; it is drained by the next
      // pin-free persist and subsumed entirely by gc().
      deferred_tombstones_.push_back(ref.nvbm_offset());
    } else {
      node.flags |= kNodeDeleted;
      nv_store_partial(ref.nvbm_offset(), offsetof(PNode, flags),
                       sizeof(node.flags), node);
    }
  }
  return n;
}

void PmOctree::remove(const LocCode& code) {
  PMO_CHECK_MSG(code.level() > 0, "cannot remove the root octant");
  Path path;
  PMO_CHECK_MSG(descend(code, path),
                "remove of nonexistent octant " << code.to_string());
  const NodeRef doomed = path.back().ref;
  const std::size_t pi = path.size() - 2;
  make_mutable(path, pi);
  path[pi].node.set_child(code.child_index(), NodeRef{});
  write_back_child(path[pi].ref, path[pi].node, code.child_index());
  logical_nodes_ -= free_subtree(doomed, /*tombstone_shared=*/true);
  ++topology_version_;
}

void PmOctree::refine(
    const LocCode& leaf,
    const std::function<void(const LocCode&, CellData&)>& init) {
  Path path;
  PMO_CHECK_MSG(descend(leaf, path),
                "refine of nonexistent octant " << leaf.to_string());
  PMO_CHECK_MSG(path.back().node.is_leaf(), "refine requires a leaf");
  PMO_CHECK_MSG(leaf.level() < kMaxLevel, "cannot refine beyond kMaxLevel");
  const std::size_t li = path.size() - 1;
  make_mutable(path, li);
  PNode parent = path[li].node;
  for (int ci = 0; ci < kChildrenPerNode; ++ci) {
    PNode child{};
    child.code = parent.code.child(ci);
    child.data = parent.data;
    child.epoch = epoch_;
    child.set_parent(path[li].ref);
    if (init) init(child.code, child.data);
    parent.set_child(ci, alloc_node(child, place_new(child.code)));
  }
  write_back_children(path[li].ref, parent);
  logical_nodes_ += kChildrenPerNode;
  note_depth(leaf.level() + 1);
  ++topology_version_;
}

void PmOctree::coarsen(const LocCode& parent_code) {
  Path path;
  PMO_CHECK_MSG(descend(parent_code, path),
                "coarsen of nonexistent octant " << parent_code.to_string());
  PMO_CHECK_MSG(!path.back().node.is_leaf(),
                "coarsen requires an internal octant");
  const std::size_t pi = path.size() - 1;
  make_mutable(path, pi);
  PNode parent = path[pi].node;
  CellData acc{};
  for (int ci = 0; ci < kChildrenPerNode; ++ci) {
    const NodeRef c = parent.child_ref(ci);
    PMO_CHECK_MSG(!c.null(), "coarsen: missing child octant");
    const PNode child = read_node(c);
    acc.vof += child.data.vof / kChildrenPerNode;
    acc.tracer += child.data.tracer / kChildrenPerNode;
    acc.u += child.data.u / kChildrenPerNode;
    acc.v += child.data.v / kChildrenPerNode;
    acc.w += child.data.w / kChildrenPerNode;
    acc.pressure += child.data.pressure / kChildrenPerNode;
  }
  for (int ci = 0; ci < kChildrenPerNode; ++ci) {
    logical_nodes_ -=
        free_subtree(parent.child_ref(ci), /*tombstone_shared=*/true);
    parent.set_child(ci, NodeRef{});
  }
  parent.data = acc;
  write_node(path[pi].ref, parent);
  ++topology_version_;
}

std::size_t PmOctree::refine_where(
    const std::function<bool(const LocCode&, const CellData&)>& pred,
    const std::function<void(const LocCode&, CellData&)>& init) {
  std::vector<LocCode> to_split;
  for_each_leaf([&](const LocCode& code, const CellData& data) {
    if (code.level() < kMaxLevel && pred(code, data))
      to_split.push_back(code);
  });
  for (const auto& code : to_split) refine(code, init);
  enforce_dram_budget();
  return to_split.size();
}

std::size_t PmOctree::coarsen_where(
    const std::function<bool(const LocCode&, const CellData&)>& pred) {
  // Find internal nodes whose children are all agreeing leaves.
  std::vector<LocCode> groups;
  std::vector<NodeRef> stack{cur_root_};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    const PNode node = read_node(ref);
    if (node.is_leaf()) continue;
    bool all_leaf = true;
    bool all_agree = true;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (c.null()) {
        all_leaf = false;
        continue;
      }
      const PNode child = read_node(c);
      if (!child.is_leaf()) {
        all_leaf = false;
        stack.push_back(c);  // keep scanning deeper groups
      } else {
        all_agree &= pred(child.code, child.data);
      }
    }
    if (all_leaf && all_agree) groups.push_back(node.code);
  }
  for (const auto& g : groups) coarsen(g);
  return groups.size();
}

namespace {
// Cover query over the Morton-sorted leaf array: a leaf at level l covers
// the contiguous key range [key, key + 8^(kMaxLevel-l)), so the covering
// leaf of any probe code is its predecessor by key. This is how
// production octree codes answer balance queries (one tree read builds
// the array, then pure in-cache binary searches) — re-descending from
// the root 26 times per leaf would dominate every other routine.
const LocCode& cover_in_sorted(const std::vector<LocCode>& leaves,
                               const LocCode& probe) {
  auto it = std::upper_bound(
      leaves.begin(), leaves.end(), probe,
      [](const LocCode& a, const LocCode& b) { return a.key() < b.key(); });
  PMO_DCHECK(it != leaves.begin());
  return *(it - 1);
}
}  // namespace

std::size_t PmOctree::balance() {
  std::size_t total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // One traversal (pre-order DFS yields Morton order already).
    std::vector<LocCode> leaves;
    for_each_leaf(
        [&](const LocCode& code, const CellData&) { leaves.push_back(code); });
    std::vector<LocCode> to_split;
    for (const auto& leaf : leaves) {
      for (const auto& d : LocCode::neighbor_directions()) {
        LocCode ncode;
        if (!leaf.neighbor(d[0], d[1], d[2], ncode)) continue;
        const LocCode& adj = cover_in_sorted(leaves, ncode);
        if (adj.level() < leaf.level() - 1) to_split.push_back(adj);
      }
    }
    std::sort(to_split.begin(), to_split.end());
    to_split.erase(std::unique(to_split.begin(), to_split.end()),
                   to_split.end());
    for (const auto& code : to_split) {
      Path path;
      if (descend(code, path) && path.back().node.is_leaf()) {
        refine(code);
        ++total;
        changed = true;
      }
    }
  }
  enforce_dram_budget();
  return total;
}

bool PmOctree::is_balanced() {
  std::vector<LocCode> leaves;
  for_each_leaf(
      [&](const LocCode& code, const CellData&) { leaves.push_back(code); });
  for (const auto& leaf : leaves) {
    for (const auto& d : LocCode::neighbor_directions()) {
      LocCode ncode;
      if (!leaf.neighbor(d[0], d[1], d[2], ncode)) continue;
      if (cover_in_sorted(leaves, ncode).level() < leaf.level() - 1) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// merging / persistence
// ---------------------------------------------------------------------------

NodeRef PmOctree::nvbmify(NodeRef ref, std::size_t* moved) {
  if (ref.null()) return ref;
  if (ref.in_linear()) return ref;  // already NVBM-resident, shared
  if (ref.in_nvbm()) {
    PNode node = nv_load(ref.nvbm_offset());
    if (node.epoch != epoch_) return ref;  // shared subtree: all NVBM already
    bool changed = false;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      const NodeRef nc = nvbmify(c, moved);
      if (!(nc == c)) {
        node.set_child(i, nc);
        changed = true;
      }
    }
    if (changed) write_back_children(ref, node);
    return ref;
  }
  // DRAM node: convert children first, then move the node itself out.
  charge_dram_read();
  PNode node = *ref.dram_ptr();
  const bool clean = node.epoch != epoch_;
  for (int i = 0; i < kChildrenPerNode; ++i)
    node.set_child(i, nvbmify(node.child_ref(i), moved));
  // A clean octant whose children land exactly on its durable twin's
  // recorded children can be evicted by *linking the twin* — no new NVBM
  // object, no write (the common case when a cold C0 subtree is merged
  // out unchanged).
  if (const auto it = twins_.find(ref.dram_ptr());
      clean && it != twins_.end()) {
    const std::uint64_t twin_off = it->second;
    const PNode twin = nv_load(twin_off);
    bool match = true;
    for (int i = 0; i < kChildrenPerNode; ++i)
      match &= twin.child[i] == node.child[i];
    if (match) {
      tm_.twin_reuse->add();
      free_node(ref);  // also drops the twins_ entry
      ++(*moved);
      return NodeRef::nvbm(twin_off);
    }
  }
  const std::uint64_t off = heap_.alloc(kNodeSize);
  const NodeRef nref = NodeRef::nvbm(off);
  nv_store(off, node);
  // Fix advisory parent pointers of private (current-epoch) children.
  for (int i = 0; i < kChildrenPerNode; ++i) {
    const NodeRef c = node.child_ref(i);
    if (!c.in_nvbm()) continue;  // null or linear: nothing to fix
    PNode child = nv_load(c.nvbm_offset());
    if (child.epoch == epoch_) {
      child.set_parent(nref);
      nv_store_partial(c.nvbm_offset(), offsetof(PNode, parent),
                       sizeof(child.parent), child);
    }
  }
  free_node(ref);
  ++(*moved);
  return nref;
}

void PmOctree::census_add(SampleCensus& census, const LocCode& code,
                          const CellData& data, bool in_dram) {
  const int lsub = subtree_level();
  if (code.level() < lsub) return;
  auto& b = census[code.ancestor_at(lsub)];
  ++b.size;
  if (in_dram) ++b.dram;
  if (b.sample.size() < config_.n_sample) {
    b.sample.emplace_back(code, data);
  } else {
    const auto j = rng_.below(b.size);
    if (j < config_.n_sample)
      b.sample[static_cast<std::size_t>(j)] = {code, data};
  }
}

// Per-task merge context. Workers share NO mutable tree/device state:
// node loads go straight to the device image (accounting accumulated
// locally), node stores and frees are logged, twin allocations come from
// a pre-carved arena, DRAM split slots from a pre-reserved list. The
// coordinator replays every logged side effect in deterministic task
// order (replay_task), which makes the modeled counters, the telemetry
// deltas, and the persisted image identical for any thread count.
struct PmOctree::MergeCtx {
  PmOctree* tree = nullptr;

  // Deferred device accounting.
  std::uint64_t read_ops = 0, read_bytes = 0, read_lines = 0;
  std::uint64_t write_ops = 0, write_bytes = 0, write_lines = 0;
  std::uint64_t dram_reads = 0, dram_writes = 0;

  // Deferred side effects, replayed by the coordinator.
  struct StoreRec {
    std::uint64_t obj;       ///< payload offset of the node object
    std::uint32_t off, len;  ///< stored byte range within the node
    PNode node;              ///< full (flag-stripped) content for the cache
  };
  std::vector<StoreRec> stores;
  std::vector<std::uint64_t> frees;
  std::vector<std::pair<const PNode*, std::uint64_t>> twin_inserts;

  // Deferred stats / telemetry.
  PersistStats stats;
  std::size_t twin_reuse = 0;
  std::size_t changed = 0;

  // Allocation sources: pre-carved for workers; `direct` (the crown /
  // coordinator context) allocates straight from the heap and DRAM pool.
  nvbm::Heap::Arena arena;
  bool has_arena = false;
  std::vector<PNode*> dram_slots;
  std::size_t next_dram_slot = 0;
  bool direct = false;
  /// Finished task results, consulted by the crown merge at task roots.
  const std::unordered_map<std::uint64_t, MergeResult>* results = nullptr;

  // Measure-pass output: exact allocation demand the carve satisfies.
  std::size_t need_twins = 0;
  std::size_t need_dram = 0;

  PNode load(std::uint64_t off) {
    PNode n;
    std::memcpy(&n, tree->device().raw(off, sizeof(PNode)), sizeof(PNode));
    ++read_ops;
    read_bytes += sizeof(PNode);
    read_lines += tree->device().lines_of(off, sizeof(PNode));
    return n;
  }
  void store_range(std::uint64_t obj, std::size_t off, std::size_t len,
                   const PNode& n) {
    PNode clean = n;
    clean.flags &= ~kNodeSubtreeDirty;
    std::memcpy(tree->device().raw(obj + off, len),
                reinterpret_cast<const std::byte*>(&clean) + off, len);
    ++write_ops;
    write_bytes += len;
    write_lines += tree->device().lines_of(obj + off, len);
    stores.push_back({obj, static_cast<std::uint32_t>(off),
                      static_cast<std::uint32_t>(len), clean});
  }
  void store(std::uint64_t obj, const PNode& n) {
    store_range(obj, 0, sizeof(PNode), n);
  }
  void store_children(std::uint64_t obj, const PNode& n) {
    store_range(obj, offsetof(PNode, child), sizeof(n.child), n);
    // Child-slot changes move the presence mask in flags with them.
    store_range(obj, offsetof(PNode, flags), sizeof(n.flags), n);
  }
  std::uint64_t alloc_twin() {
    if (direct) return tree->heap_.alloc(kNodeSize);
    return arena.alloc();
  }
  PNode* take_dram_slot() {
    if (direct) {
      PmOctree& t = *tree;
      PNode* slot = nullptr;
      if (!t.dram_free_.empty()) {
        slot = t.dram_free_.back();
        t.dram_free_.pop_back();
      } else {
        t.dram_pool_.emplace_back();
        slot = &t.dram_pool_.back();
      }
      ++t.dram_node_count_;
      return slot;
    }
    PMO_DCHECK(next_dram_slot < dram_slots.size());
    return dram_slots[next_dram_slot++];
  }

  struct MeasureR {
    bool wd = false;       ///< the merge's working ref will be DRAM
    bool changed = false;  ///< the merge will report this subtree changed
  };
  MeasureR measure(PmOctree& t, NodeRef ref);
};

struct PmOctree::MergeTask {
  NodeRef root;
  MergeCtx ctx;
  MergeResult result;
};

// Mirrors persist_subtree's decisions exactly, counting the twin
// allocations and DRAM split slots the merge will perform — so the carve
// is exact and Arena::alloc never falls back to shared heap state. Reads
// are charged here AND in the merge pass: the two-pass scheme honestly
// pays for its measurement.
PmOctree::MergeCtx::MeasureR PmOctree::MergeCtx::measure(PmOctree& t,
                                                         NodeRef ref) {
  if (ref.null()) return {};
  if (ref.in_linear()) return {false, false};  // shared cold tier: final
  if (ref.in_nvbm()) {
    const PNode node = load(ref.nvbm_offset());
    if (node.epoch != t.epoch_) return {false, false};
    bool wd = false;
    for (int i = 0; i < kChildrenPerNode; ++i)
      wd |= measure(t, node.child_ref(i)).wd;
    if (wd) {
      ++need_twins;  // split: an NVBM twin object ...
      ++need_dram;   // ... plus a DRAM working slot
    }
    return {wd, true};
  }
  ++dram_reads;
  const PNode* ptr = ref.dram_ptr();
  const bool clean =
      ptr->epoch != t.epoch_ && (ptr->flags & kNodeSubtreeDirty) == 0;
  if (t.config_.persist_pruning && clean &&
      t.twins_.find(ptr) != t.twins_.end())
    return {true, false};
  const bool dirty = ptr->epoch == t.epoch_;
  bool child_changed = false;
  for (int i = 0; i < kChildrenPerNode; ++i)
    child_changed |= measure(t, ptr->child_ref(i)).changed;
  if (!dirty && !child_changed && t.twins_.find(ptr) != t.twins_.end())
    return {true, false};
  ++need_twins;
  return {true, true};
}

void PmOctree::measure_subtree(NodeRef ref, MergeCtx& ctx) {
  ctx.measure(*this, ref);
}

bool PmOctree::merge_would_recurse(NodeRef ref) {
  if (ref.null()) return false;
  if (ref.in_linear()) return false;  // chains are durable and immutable
  if (ref.in_nvbm()) {
    const PNode node = device().load<PNode>(ref.nvbm_offset());
    return node.epoch == epoch_;  // shared subtrees are final already
  }
  charge_dram_read();
  const PNode* ptr = ref.dram_ptr();
  const bool clean =
      ptr->epoch != epoch_ && (ptr->flags & kNodeSubtreeDirty) == 0;
  return !(config_.persist_pruning && clean &&
           twins_.find(ptr) != twins_.end());
}

PmOctree::MergeResult PmOctree::persist_subtree(NodeRef ref, MergeCtx& ctx) {
  if (ref.null()) return {ref, ref, false};
  if (ctx.results != nullptr) {
    if (const auto it = ctx.results->find(ref.bits());
        it != ctx.results->end())
      return it->second;
  }
  // A linear record is part of V_{i-1}'s compacted image and is immutable:
  // it serves both versions as-is (mutations promote records out of the
  // chain before ever reaching the merge).
  if (ref.in_linear()) return {ref, ref, false};
  if (ref.in_nvbm()) {
    ++ctx.stats.visits;
    PNode node = ctx.load(ref.nvbm_offset());
    if (node.epoch != epoch_) {
      // Shared with V_{i-1}. Invariant: a shared NVBM node never has DRAM
      // descendants (established by the split below at the persist that
      // made it shared, and structural changes CoW it private).
      return {ref, ref, false};
    }
    // Private NVBM node: persist the children first.
    ++ctx.changed;
    MergeResult child_res[kChildrenPerNode];
    bool have_dram_child = false;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      child_res[i] = persist_subtree(node.child_ref(i), ctx);
      if (!child_res[i].wref.null() && child_res[i].wref.in_dram())
        have_dram_child = true;
    }
    if (!have_dram_child) {
      // Whole subtree NVBM: this node serves both versions in place.
      bool relink = false;
      for (int i = 0; i < kChildrenPerNode; ++i) {
        if (!(child_res[i].pref == node.child_ref(i))) {
          node.set_child(i, child_res[i].pref);
          relink = true;
        }
      }
      if (relink) ctx.store_children(ref.nvbm_offset(), node);
      return {ref, ref, true};  // created this epoch: new vs V_{i-1}
    }
    // This node sits above DRAM children: split it into a DRAM working
    // copy (joining C0, which keeps the no-NVBM-above-DRAM invariant)
    // plus an NVBM twin for the persistent version.
    PNode twin = node;
    PNode working = node;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      twin.set_child(i, child_res[i].pref);
      working.set_child(i, child_res[i].wref);
    }
    twin.set_parent(NodeRef{});
    const std::uint64_t twin_off = ctx.alloc_twin();
    ctx.store(twin_off, twin);
    PNode* slot = ctx.take_dram_slot();
    *slot = working;
    ++ctx.dram_writes;
    ctx.twin_inserts.emplace_back(slot, twin_off);
    ctx.frees.push_back(ref.nvbm_offset());
    ++ctx.stats.merged_from_dram;
    return {NodeRef::dram(slot), NodeRef::nvbm(twin_off), true};
  }

  // DRAM node.
  ++ctx.dram_reads;
  PNode* ptr = ref.dram_ptr();
  const bool clean =
      ptr->epoch != epoch_ && (ptr->flags & kNodeSubtreeDirty) == 0;
  if (config_.persist_pruning && clean) {
    // Entirely-clean subtree: nothing under it mutated since its durable
    // twin was recorded, so the twin already IS its persisted image —
    // skip the subtree in O(1). A skip is not a visit: `visits` counts
    // octants the merge processes, `pruned_subtrees` counts the skips.
    if (const auto it = twins_.find(ptr); it != twins_.end()) {
      ++ctx.stats.pruned_subtrees;
      return {ref, NodeRef::nvbm(it->second), false};
    }
  }
  ++ctx.stats.visits;
  // Persist the children first, then decide whether the twin from the
  // previous persist can be reused.
  const bool dirty = ptr->epoch == epoch_;
  PNode twin_content = *ptr;
  bool child_changed = false;
  bool working_relink = false;
  for (int i = 0; i < kChildrenPerNode; ++i) {
    const auto sub = persist_subtree(twin_content.child_ref(i), ctx);
    twin_content.set_child(i, sub.pref);
    child_changed |= sub.changed;
    if (!(sub.wref == ptr->child_ref(i))) {
      ptr->set_child(i, sub.wref);
      working_relink = true;
    }
  }
  if (working_relink) ++ctx.dram_writes;
  // Visited: the summary bit has served its purpose for this epoch.
  ptr->flags &= ~kNodeSubtreeDirty;
  const auto twin_it = twins_.find(ptr);
  if (!dirty && !child_changed && twin_it != twins_.end()) {
    ++ctx.twin_reuse;
    return {ref, NodeRef::nvbm(twin_it->second), false};  // reuse: shared
  }
  // Write a fresh durable twin; the old one (if any) still belongs to
  // V_{i-1} and is reclaimed by GC once that version is superseded.
  twin_content.epoch = epoch_;
  twin_content.set_parent(NodeRef{});  // advisory; fixed by the parent
  const std::uint64_t off = ctx.alloc_twin();
  ctx.store(off, twin_content);
  ctx.twin_inserts.emplace_back(ptr, off);
  ++ctx.stats.merged_from_dram;
  ++ctx.changed;
  return {ref, NodeRef::nvbm(off), true};
}

void PmOctree::replay_task(MergeTask& task, PersistStats& stats,
                           std::size_t& changed) {
  MergeCtx& c = task.ctx;
  device().account_reads(c.read_ops, c.read_bytes, c.read_lines);
  device().account_writes(c.write_ops, c.write_bytes, c.write_lines);
  for (const auto& s : c.stores) {
    device().mark_written(s.obj + s.off, s.len);
    cache_.update(s.obj, s.node, epoch_);
  }
  for (const auto off : c.frees) nv_free(off);
  for (const auto& [slot, off] : c.twin_inserts) twins_[slot] = off;
  // DRAM-side accounting (same per-node line math as charge_dram_*).
  const auto lines = lines_for(kNodeSize, config_.cache_line);
  dram_.reads += c.dram_reads;
  dram_.lines_read += c.dram_reads * lines;
  dram_.modeled_read_ns += c.dram_reads * lines * config_.dram_read_ns;
  dram_.writes += c.dram_writes;
  dram_.lines_written += c.dram_writes * lines;
  dram_.modeled_write_ns += c.dram_writes * lines * config_.dram_write_ns;
  stats.visits += c.stats.visits;
  stats.pruned_subtrees += c.stats.pruned_subtrees;
  stats.merged_from_dram += c.stats.merged_from_dram;
  tm_.twin_reuse->add(c.twin_reuse);
  changed += c.changed;
  if (c.has_arena) {
    PMO_DCHECK(c.arena.remaining() == 0);  // the measure pass is exact
    heap_.release_arena(c.arena);
    c.has_arena = false;
  }
}

PmOctree::MergeResult PmOctree::run_merge(PersistStats& stats,
                                          std::size_t& changed) {
  // Crown pre-walk (levels 0-1, sequential): the merge tasks are the
  // non-null level-2 subtrees the merge will actually reach. Partitioning
  // at the grandchildren yields up to 64 independent tasks over disjoint
  // SFC key ranges (the Cornerstone-style decomposition).
  std::vector<MergeTask> tasks;
  if (merge_would_recurse(cur_root_)) {
    auto peek = [&](NodeRef r) {
      if (r.in_dram()) {
        charge_dram_read();
        return *r.dram_ptr();
      }
      return device().load<PNode>(r.nvbm_offset());
    };
    const PNode root_node = peek(cur_root_);
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c1 = root_node.child_ref(i);
      if (c1.null() || !merge_would_recurse(c1)) continue;
      const PNode mid = peek(c1);
      for (int j = 0; j < kChildrenPerNode; ++j) {
        const NodeRef c2 = mid.child_ref(j);
        if (!c2.null()) {
          MergeTask t;
          t.root = c2;
          t.ctx.tree = this;
          tasks.push_back(std::move(t));
        }
      }
    }
  }

  // The same measure/carve/merge/replay pipeline runs at every thread
  // count (including 1) — only the executor differs — so the heap layout
  // and every counter are a pure function of the tree, never of
  // scheduling. persist() reached from inside a pool task (cluster
  // lanes) falls back to the inline executor instead of nesting.
  const int want = config_.persist_threads;
  const bool use_pool = pool_ != nullptr && pool_->size() > 1 &&
                        (want == 0 || want > 1) &&
                        !exec::in_parallel_task() && tasks.size() > 1;
  auto run_tasks = [&](const std::function<void(std::size_t)>& fn) {
    if (use_pool) {
      pool_->parallel_for(tasks.size(), fn);
    } else {
      for (std::size_t i = 0; i < tasks.size(); ++i) fn(i);
    }
  };

  // Measure (read-only, parallel): exact twin/split demand per task.
  run_tasks(
      [&](std::size_t i) { measure_subtree(tasks[i].root, tasks[i].ctx); });

  // Carve per-task allocation sources (sequential): the NVBM layout and
  // DRAM slot assignment become a pure function of task order.
  for (auto& t : tasks) {
    MergeCtx& c = t.ctx;
    if (c.need_twins > 0) {
      c.arena = heap_.carve_arena(kNodeSize, c.need_twins);
      c.has_arena = true;
    }
    c.dram_slots.reserve(c.need_dram);
    for (std::size_t k = 0; k < c.need_dram; ++k) {
      PNode* slot = nullptr;
      if (!dram_free_.empty()) {
        slot = dram_free_.back();
        dram_free_.pop_back();
      } else {
        dram_pool_.emplace_back();
        slot = &dram_pool_.back();
      }
      ++dram_node_count_;
      c.dram_slots.push_back(slot);
    }
  }

  // Merge (parallel): a worker touches only task-local state, its own
  // disjoint subtree's DRAM nodes, and fresh arena-owned NVBM objects.
  run_tasks([&](std::size_t i) {
    tasks[i].result = persist_subtree(tasks[i].root, tasks[i].ctx);
  });

  // Deterministic reduction: replay deferred side effects in task order.
  std::unordered_map<std::uint64_t, MergeResult> results;
  results.reserve(tasks.size());
  for (auto& t : tasks) {
    replay_task(t, stats, changed);
    results.emplace(t.root.bits(), t.result);
  }

  // Crown merge (sequential): levels 0-1 plus anything the pre-walk ruled
  // out of the task set; task roots resolve through the results map. The
  // root path-copy stays on this thread, so the crash-consistency
  // argument (V_{i-1} untouched until the root swap) is unchanged.
  MergeTask crown;
  crown.root = cur_root_;
  crown.ctx.tree = this;
  crown.ctx.direct = true;
  crown.ctx.results = &results;
  crown.result = persist_subtree(cur_root_, crown.ctx);
  replay_task(crown, stats, changed);
  return crown.result;
}

void PmOctree::collect_census(NodeRef root, SampleCensus& census) {
  // Advisory feature-sampling walk, run sequentially after the merge.
  // Decoupled from the merge — a pruned merge never sees clean subtrees,
  // and a census that varied with the pruning knob would steer the layout
  // transformation differently and break image bit-identity. Deliberately
  // charge-free: the paper folds sampling into the merge at zero marginal
  // cost, and the walk must not re-inflate the counters pruning saved.
  if (root.null()) return;
  std::vector<NodeRef> stack{root};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    if (ref.in_linear()) {
      // Stream the chain's record range (skip(r) = subtree size) through
      // the same charge-free raw path.
      linear::ChainView view(device(), ref.linear_chain());
      const std::uint32_t r0 = ref.linear_index();
      const std::uint32_t end = r0 + view.skip(r0);
      for (std::uint32_t r = r0; r < end; ++r)
        census_add(census, view.code(r), view.data(r), false);
      continue;
    }
    PNode node;
    if (ref.in_dram()) {
      node = *ref.dram_ptr();
    } else {
      std::memcpy(&node, device().raw(ref.nvbm_offset(), kNodeSize),
                  kNodeSize);
    }
    census_add(census, node.code, node.data, ref.in_dram());
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
}

// ---------------------------------------------------------------------------
// linear-tier compaction (DESIGN.md §11)
// ---------------------------------------------------------------------------

bool PmOctree::compactable_subtree(NodeRef ref, std::size_t& count) {
  // Purity walk: the whole subtree must be old pointer-tier NVBM. A fresh
  // node means the merge rewrote something below (not clean after all); a
  // linear child means a previous compaction already claimed part of it —
  // the pointer crown above an existing chain stays pointer-tier forever,
  // chains never nest. Loads go through nv_load and are charged like any
  // other read: compaction pays to inspect its candidates.
  std::vector<std::uint64_t> stack{ref.nvbm_offset()};
  count = 0;
  while (!stack.empty()) {
    const std::uint64_t off = stack.back();
    stack.pop_back();
    const PNode node = nv_load(off);
    if (node.deleted() || node.epoch == epoch_) return false;
    if (++count > linear::kMaxChainRecords) return false;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (c.null()) continue;
      if (!c.in_nvbm()) return false;
      stack.push_back(c.nvbm_offset());
    }
  }
  return true;
}

void PmOctree::build_chain_records(NodeRef ref, linear::Builder& b) {
  // DFS pre-order emission; close() turns emission counts into the skip
  // (subtree-size) words the rank-select descent walks. Recursion depth
  // is bounded by the octree depth (<= kMaxLevel), not the record count.
  const PNode node = nv_load(ref.nvbm_offset());
  std::uint8_t mask = 0;
  for (int i = 0; i < kChildrenPerNode; ++i)
    if (!node.child_ref(i).null()) mask |= static_cast<std::uint8_t>(1u << i);
  PMO_DCHECK(mask == node.child_mask());
  const std::size_t idx = b.add(node.code, mask, node.data);
  for (int i = 0; i < kChildrenPerNode; ++i) {
    const NodeRef c = node.child_ref(i);
    if (!c.null()) build_chain_records(c, b);
  }
  b.close(idx);
}

void PmOctree::compact_clean_subtrees(NodeRef new_prev, PersistStats& stats) {
  // Runs on the coordinator between the merge and flush_all: chain pages
  // and relinked parents land in the crash-sim write buffer ahead of the
  // root swap, and the *old* durable root never references a chain. A
  // crash mid-compaction therefore recovers to a fully pointer-tier
  // image, a crash after the swap to a fully compacted one — a torn
  // chain is unreachable either way.
  if (!new_prev.in_nvbm()) return;
  if (nv_load(new_prev.nvbm_offset()).epoch != epoch_)
    return;  // nothing changed this persist: no fresh fringe to walk

  // Reverse twin map: fresh durable offset -> its C0 working copy. A
  // relinked child slot must update both the sealed image and the
  // working tree, which stay byte-equal so the next persist can keep
  // sharing the node.
  std::unordered_map<std::uint64_t, PNode*> working_of;
  working_of.reserve(twins_.size());
  for (const auto& [slot, off] : twins_)
    working_of.emplace(off, const_cast<PNode*>(slot));

  std::vector<std::uint64_t> stack{new_prev.nvbm_offset()};
  while (!stack.empty()) {
    const std::uint64_t poff = stack.back();
    stack.pop_back();
    PNode node = nv_load(poff);
    PNode* wnode = nullptr;
    if (const auto it = working_of.find(poff); it != working_of.end())
      wnode = it->second;
    bool relinked = false;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (c.null() || !c.in_nvbm()) continue;  // chains are final
      if (nv_load(c.nvbm_offset()).epoch == epoch_) {
        stack.push_back(c.nvbm_offset());  // fresh fringe: keep walking
        continue;
      }
      // Old shared child = root of a persisted-and-clean subtree. Skip it
      // when the working tree holds a DRAM copy (the subtree is C0-hot;
      // compacting would orphan the working nodes and split the twins).
      if (wnode != nullptr && !(wnode->child_ref(i) == c)) continue;
      std::size_t records = 0;
      if (!compactable_subtree(c, records)) continue;
      if (records < config_.compact_min_records) continue;
      linear::Builder b;
      build_chain_records(c, b);
      const std::uint64_t chain = heap_.alloc(b.bytes());
      b.write(device(), chain, epoch_);
      const std::uint32_t npages = linear::pages_for(records);
      note_chain(chain, npages);
      node.set_child(i, NodeRef::linear(chain, 0));
      relinked = true;
      ++stats.compacted_subtrees;
      stats.compacted_records += records;
      tm_.linear_compactions->add();
      tm_.linear_pages->add(npages);
      telemetry::trace::instant(
          "pmoctree.compact", "pmoctree",
          {{"records", static_cast<double>(records)},
           {"pages", static_cast<double>(npages)}});
      // The superseded pointer nodes stay untouched: V_{i-1} and pinned
      // readers still descend them. Reachability GC (or the deferred
      // tombstone pass) reclaims them once no sealed version remains.
    }
    if (!relinked) continue;
    write_back_children(NodeRef::nvbm(poff), node);
    if (wnode != nullptr) {
      PNode w = *wnode;
      for (int i = 0; i < kChildrenPerNode; ++i)
        if (node.child_ref(i).in_linear()) w.set_child(i, node.child_ref(i));
      write_back_children(NodeRef::dram(wnode), w);
    }
  }
}

PersistStats PmOctree::persist() {
  telemetry::Span span("pmoctree.persist");
  PersistStats stats;

  // 1. Merge: give every octant of V_i an NVBM representative. Changed
  //    octants (and octants whose subtree changed) get fresh storage;
  //    everything else is shared with V_{i-1}. The DRAM working copies
  //    (C0) stay in place. With dirty-subtree pruning the merge touches
  //    only the dirty fringe, so the octant total comes from the
  //    incrementally maintained logical count, not from the walk.
  stats.nodes_total = logical_nodes_;
  std::size_t changed = 0;
  MergeResult res;
  {
    telemetry::Span merge_span("merge");  // pmoctree.persist.merge
    res = run_merge(stats, changed);
  }
  const NodeRef new_prev = res.pref;
  cur_root_ = res.wref;  // NVBM-above-DRAM nodes may have joined C0
  PMO_CHECK(new_prev.in_nvbm());
  stats.nodes_shared =
      stats.nodes_total - std::min(changed, stats.nodes_total);
  stats.overlap_ratio =
      stats.nodes_total == 0
          ? 0.0
          : static_cast<double>(stats.nodes_shared) /
                static_cast<double>(stats.nodes_total);
  stats.delta_bytes = changed * kNodeSize;

  // 1b. Compaction (DESIGN.md §11): rewrite maximal persisted-and-clean
  //     pointer subtrees hanging off the fresh fringe as packed linear
  //     chains. Still pre-flush — the chains become durable (and the
  //     relinks visible) only through the same root swap as the merge.
  if (config_.linear_compaction) {
    telemetry::Span compact_span("compact");  // pmoctree.persist.compact
    compact_clean_subtrees(new_prev, stats);
  }
  // Crash-injection hook: die here, with the merge's and compaction's
  // writes unflushed and the durable root still pointing at V_{i-1}.
  if (config_.crash_before_flush_for_test) return stats;

  // 2. Make everything durable, then atomically swing the persistent root.
  //    This 8-byte update is the only ordering-critical write (§1).
  device().flush_all();
  device().persist_barrier();
  const NodeRef old_prev = prev_root_;
  // The node-count slot is advisory (restore() only reads it for the
  // telemetry baseline), so it goes first: a crash between the slot
  // stores can misreport a statistic but never corrupt the tree.
  heap_.set_root(kNodeCountSlot, logical_nodes_);
  heap_.set_root(kPrevRootSlot, new_prev.nvbm_offset());
  heap_.set_root(kEpochSlot, epoch_);
  telemetry::trace::instant(
      "pmoctree.version_swap", "pmoctree",
      {{"epoch", static_cast<double>(epoch_)},
       {"delta_bytes", static_cast<double>(stats.delta_bytes)},
       {"nodes_shared", static_cast<double>(stats.nodes_shared)},
       {"visits", static_cast<double>(stats.visits)},
       {"pruned_subtrees", static_cast<double>(stats.pruned_subtrees)}});

  // 3. Tombstone octants that existed only in the superseded version.
  //    When GC runs right away it reclaims them directly, so the explicit
  //    marking pass is only needed for deferred collection. Epoch-based
  //    reclamation: while ANY snapshot pin is live the marking is
  //    deferred — flipping kNodeDeleted writes into bytes a pinned
  //    reader may be memcpy-ing concurrently. The superseded root is
  //    retired instead and the whole backlog drains at the next pin-free
  //    persist (gc() subsumes it by reachability).
  if (!config_.gc_on_persist) {
    if (!old_prev.null() && !(old_prev == new_prev)) {
      retired_roots_.emplace_back(epoch_, old_prev);
    }
    if (registry_->pin_count() == 0) {
      stats.tombstoned += process_deferred_tombstones(new_prev);
    }
  }

  prev_root_ = new_prev;
  ++epoch_;
  // The sealed version is durable: publish it to the pin registry so
  // readers can pin it from any thread.
  registry_->publish(new_prev.nvbm_offset(), epoch_ - 1, logical_nodes_);
  // Every cached node now belongs to the just-sealed epoch and is still
  // byte-correct (the cache is write-through and frees invalidate their
  // offsets eagerly), so carry the whole cache across the bump instead of
  // letting the epoch stamp expire it wholesale.
  cache_.restamp(epoch_ - 1, epoch_);

  // 4. Reclaim superseded octants (GC is never run *during* the merge).
  if (config_.gc_on_persist) {
    telemetry::Span gc_span("gc");  // pmoctree.persist.gc
    stats.gc_freed = gc();
  }

  // 5. Decay heat and re-layout hot subtrees (the paper triggers dynamic
  //    transformation only after merging completes).
  for (auto& [id, h] : heat_) h *= 0.5;
  const bool want_census = config_.enable_transform && !features_.empty();
  if (want_census) {
    telemetry::Span tr_span("transform");  // pmoctree.persist.transform
    SampleCensus census;
    collect_census(cur_root_, census);
    transform_with(census);
  }

  // 6. Automated C0 sizing (the paper's §6 future work): adapt the DRAM
  //    budget to keep the NVBM tier's share of memory accesses in band.
  if (config_.auto_budget) {
    // Node-cache hits are DRAM accesses: count them on the DRAM side so
    // the cache does not read as phantom NVBM pressure.
    const std::uint64_t dram_now =
        dram_.reads + dram_.writes + device().counters().cached_reads;
    const std::uint64_t nvbm_now = device().counters().total_accesses();
    const double d = static_cast<double>(dram_now - auto_last_dram_);
    const double n = static_cast<double>(nvbm_now - auto_last_nvbm_);
    auto_last_dram_ = dram_now;
    auto_last_nvbm_ = nvbm_now;
    if (d + n > 0) {
      const double nvbm_share = n / (d + n);
      double budget = static_cast<double>(config_.dram_budget_bytes);
      if (nvbm_share > config_.auto_budget_high) {
        budget *= config_.auto_budget_step;
      } else if (nvbm_share < config_.auto_budget_low) {
        budget /= config_.auto_budget_step;
      }
      config_.dram_budget_bytes = std::clamp(
          static_cast<std::size_t>(budget), config_.auto_budget_min_bytes,
          config_.auto_budget_max_bytes);
    }
  }

  tm_.persists->add();
  tm_.merged_from_dram->add(stats.merged_from_dram);
  tm_.tombstoned->add(stats.tombstoned);
  tm_.persist_visits->add(stats.visits);
  tm_.persist_pruned->add(stats.pruned_subtrees);
  telemetry::trace::instant(
      "pmoctree.cache", "pmoctree",
      {{"hits", static_cast<double>(cache_.stats().hits)},
       {"misses", static_cast<double>(cache_.stats().misses)},
       {"evictions", static_cast<double>(cache_.stats().evictions)},
       {"invalidations", static_cast<double>(cache_.stats().invalidations)},
       {"cursor_reuse", static_cast<double>(cursor_reuse_)}});
  // Library sampling point: a persist is the natural epoch boundary for
  // metric time-series (driver-thread gated; no-op without a sampler).
  telemetry::timeseries::tick_point();
  return stats;
}

void PmOctree::collect_reachable_nvbm(
    NodeRef root, std::unordered_set<std::uint64_t>& out) {
  if (root.null()) return;
  std::vector<NodeRef> stack{root};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    if (ref.in_linear()) {
      // A chain is one heap object: mark the whole allocation live and
      // stop — records reference only records of the same chain.
      const std::uint64_t chain = ref.linear_chain();
      if (out.insert(chain).second) {
        linear::ChainView view(device(), chain);
        note_chain(chain, view.pages());
      }
      continue;
    }
    if (ref.in_nvbm()) {
      if (!out.insert(ref.nvbm_offset()).second) continue;
    }
    const PNode node = ref.in_dram()
                           ? *ref.dram_ptr()
                           : nv_load(ref.nvbm_offset());
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
}

std::size_t PmOctree::process_deferred_tombstones(NodeRef new_prev) {
  if (retired_roots_.empty() && deferred_tombstones_.empty()) return 0;
  std::size_t marked = 0;
  std::unordered_set<std::uint64_t> in_new;
  collect_reachable_nvbm(new_prev, in_new);
  const auto mark = [&](std::uint64_t off, PNode& node) {
    if (node.deleted()) return;
    node.flags |= kNodeDeleted;
    nv_store_partial(off, offsetof(PNode, flags), sizeof(node.flags), node);
    ++marked;
  };
  for (const auto& [sealed_epoch, root] : retired_roots_) {
    (void)sealed_epoch;
    std::vector<NodeRef> stack{root};
    while (!stack.empty()) {
      const NodeRef ref = stack.back();
      stack.pop_back();
      if (in_new.count(ref.nvbm_offset()) != 0) continue;
      PNode node = nv_load(ref.nvbm_offset());
      mark(ref.nvbm_offset(), node);
      for (int i = 0; i < kChildrenPerNode; ++i) {
        const NodeRef c = node.child_ref(i);
        // Linear children carry no deleted flag — chains are reclaimed
        // whole by the reachability sweep, never tombstoned per record.
        if (c.null() || !c.in_nvbm()) continue;
        if (in_new.count(c.nvbm_offset()) == 0) stack.push_back(c);
      }
    }
  }
  retired_roots_.clear();
  // Individually deferred shared-subtree removals. The offsets are still
  // valid: only gc() frees shared nodes, and gc() clears this list.
  for (const std::uint64_t off : deferred_tombstones_) {
    if (in_new.count(off) != 0) continue;  // never mark a live octant
    PNode node = nv_load(off);
    mark(off, node);
  }
  deferred_tombstones_.clear();
  return marked;
}

std::size_t PmOctree::gc() {
  std::unordered_set<std::uint64_t> live;
  collect_reachable_nvbm(prev_root_, live);
  collect_reachable_nvbm(cur_root_, live);
  // Epoch-based reclamation: every version a reader still pins stays
  // fully live. Whatever survives *only* because of a pin is the
  // deferred-reclamation set (the serve bench's high-water metric).
  const auto pinned = registry_->pinned_roots();
  if (!pinned.empty()) {
    const std::size_t base = live.size();
    for (const auto& [epoch, root] : pinned) {
      (void)epoch;
      collect_reachable_nvbm(NodeRef::nvbm(root), live);
    }
    deferred_nodes_ = live.size() - base;
  } else {
    deferred_nodes_ = 0;
  }
  if (deferred_nodes_ > deferred_hwm_) deferred_hwm_ = deferred_nodes_;
  // Reachability subsumes tombstone marking: everything the deferred
  // lists point at is either reclaimed by this sweep or still reachable
  // from a root (and a later gc picks it up once it no longer is).
  retired_roots_.clear();
  deferred_tombstones_.clear();
  // The sweep frees offsets behind the node accessor's back and the heap
  // may hand them out again within this epoch — invalidate exactly the
  // swept offsets so the surviving working set keeps its hit rate across
  // the persist (the cache is restamped, not cleared, at epoch bumps).
  std::size_t invalidated = 0;
  const std::size_t freed = heap_.sweep([&](std::uint64_t off) {
    const bool is_live = live.count(off) != 0;
    if (!is_live) {
      if (cache_.invalidate(off)) ++invalidated;
      // Freed chains must leave the page-residency cache before the heap
      // reuses the bytes for something with different charge semantics.
      if (const auto it = chains_.find(off); it != chains_.end()) {
        page_cache_.invalidate_chain(off, it->second);
        chains_.erase(it);
      }
    }
    return is_live;
  });
  tm_.cache_invalidations->add(invalidated);
  ++structure_version_;
  tm_.gc_sweeps->add();
  tm_.gc_freed->add(freed);
  telemetry::trace::instant("pmoctree.gc", "pmoctree",
                            {{"freed", static_cast<double>(freed)}});
  return freed;
}

SnapshotHandle PmOctree::pin_snapshot() {
  SnapshotRegistry::Pinned pin;
  PMO_CHECK_MSG(registry_->pin_latest(pin),
                "pin_snapshot: no persisted version to pin (run persist() "
                "or restore() first)");
  return SnapshotHandle(registry_, &device(), pin);
}

void PmOctree::destroy() {
  PMO_CHECK_MSG(registry_->pin_count() == 0,
                "pm_delete with live snapshot pins — release every "
                "SnapshotHandle before destroying the tree");
  registry_->publish(0, 0, 0);
  retired_roots_.clear();
  deferred_tombstones_.clear();
  deferred_nodes_ = 0;
  tm_.cache_invalidations->add(cache_.clear());
  page_cache_.clear();
  chains_.clear();
  cursors_.clear();
  ++structure_version_;
  dram_pool_.clear();
  dram_free_.clear();
  twins_.clear();
  dram_node_count_ = 0;
  logical_nodes_ = 0;
  cur_root_ = NodeRef{};
  prev_root_ = NodeRef{};
  heap_.set_root(kPrevRootSlot, 0);
  heap_.set_root(kEpochSlot, 0);
  heap_.set_root(kNodeCountSlot, 0);
  heap_.sweep([](std::uint64_t) { return false; });
  c0_set_.clear();
  heat_.clear();
}

// ---------------------------------------------------------------------------
// dynamic layout transformation (§3.3)
// ---------------------------------------------------------------------------

NodeRef PmOctree::dramify(NodeRef ref, std::size_t* moved,
                          std::size_t node_limit) {
  if (ref.null()) return ref;
  if (*moved >= node_limit) return ref;
  // Chains stay cold: the transformation never unpacks a chain into C0.
  // A chain that heats up gets promoted record-by-record through the
  // ordinary CoW path on its first mutation instead.
  if (ref.in_linear()) return ref;
  if (ref.in_dram()) {
    charge_dram_read();
    PNode node = *ref.dram_ptr();
    bool changed = false;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      const NodeRef nc = dramify(c, moved, node_limit);
      if (!(nc == c)) {
        node.set_child(i, nc);
        changed = true;
      }
    }
    if (changed) write_node(ref, node);
    return ref;
  }
  PNode node = nv_load(ref.nvbm_offset());
  const bool shared = node.epoch != epoch_;
  PNode copy = node;
  for (int i = 0; i < kChildrenPerNode; ++i)
    copy.set_child(i, dramify(copy.child_ref(i), moved, node_limit));
  if (dram_bytes() >= config_.dram_budget_bytes) return ref;
  // Place the copy in DRAM (force: this is the transformation's purpose).
  PNode* slot = nullptr;
  if (!dram_free_.empty()) {
    slot = dram_free_.back();
    dram_free_.pop_back();
  } else {
    dram_pool_.emplace_back();
    slot = &dram_pool_.back();
  }
  if (shared) {
    // The original stays as V_{i-1}'s copy AND becomes the DRAM node's
    // durable twin: the octant is unchanged, only its residence moved, so
    // the next persist can keep sharing it.
    twins_[slot] = ref.nvbm_offset();
  } else {
    // Private original: the DRAM copy simply replaces it.
    copy.epoch = epoch_;
    nv_free(ref.nvbm_offset());
  }
  *slot = copy;
  ++dram_node_count_;
  charge_dram_write();
  const NodeRef nref = NodeRef::dram(slot);
  ++(*moved);
  return nref;
}

TransformStats PmOctree::maybe_transform() {
  TransformStats out;
  if (features_.empty() || config_.dram_budget_bytes == 0) return out;
  const int lsub = subtree_level();
  if (lsub <= 0) return out;  // whole tree fits in DRAM; nothing to do
  // Standalone invocation: collect the census with one traversal (the
  // persist path collects it during the merge instead).
  SampleCensus census;
  std::vector<NodeRef> stack{cur_root_};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    const PNode node = read_node(ref);
    census_add(census, node.code, node.data, ref.in_dram());
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
  return transform_with(census);
}

TransformStats PmOctree::transform_with(SampleCensus& buckets) {
  TransformStats out;
  if (features_.empty() || config_.dram_budget_bytes == 0) return out;
  if (subtree_level() <= 0) return out;
  out.subtrees_sampled = buckets.size();

  // Pre-execute the feature functions over each bucket's sample (§3.3
  // step 2-3): frequency = number of octants the application flags.
  auto frequency = [&](const SampleBucket& b) {
    std::size_t hits = 0;
    for (const auto& [code, data] : b.sample) {
      for (const auto& f : features_) {
        if (f(code, data)) {
          ++hits;
          break;
        }
      }
    }
    return hits;
  };

  // Rank every subtree by its sampled feature frequency.
  struct Ranked {
    LocCode id;
    std::size_t freq = 0;
    std::size_t size = 0;
    std::size_t dram = 0;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(buckets.size());
  for (auto& [id, b] : buckets) {
    out.octants_sampled += b.sample.size();
    ranked.push_back({id, frequency(b), b.size, b.dram});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.freq != b.freq) return a.freq > b.freq;
              return a.dram > b.dram;  // prefer already-resident on ties
            });

  // Plan the desired C0: the hottest subtrees that fit the DRAM budget.
  const std::size_t capacity = config_.dram_budget_bytes / kNodeSize;
  std::unordered_set<LocCode, LocCodeHash> desired;
  std::size_t planned = 0;
  std::size_t pull_freq = 0;  // strongest pending pull (Freq^NVBM)
  for (const auto& r : ranked) {
    if (r.freq == 0) break;
    if (planned + r.size > capacity) continue;  // try smaller hot buckets
    desired.insert(r.id);
    planned += r.size;
    if (r.dram < r.size) pull_freq = std::max(pull_freq, r.freq);
  }
  if (desired.empty()) return out;

  // Relink helper: replaces the subtree rooted at `id` with conv(subtree).
  auto replace_subtree = [&](const LocCode& id, bool to_dram,
                             std::size_t* moved) {
    Path path;
    if (!descend(id, path)) return;
    const std::size_t i = path.size() - 1;
    if (i > 0) make_mutable(path, i - 1);
    const NodeRef nref = to_dram ? dramify(path[i].ref, moved, capacity)
                                 : nvbmify(path[i].ref, moved);
    if (i == 0) {
      cur_root_ = nref;
    } else if (!(nref == path[i].ref)) {
      path[i - 1].node.set_child(id.child_index(), nref);
      write_node(path[i - 1].ref, path[i - 1].node);
    }
    if (to_dram) {
      c0_set_.insert(id);
    } else {
      c0_set_.erase(id);
    }
  };

  // Evict resident subtrees outside the plan when Ratio_access (hottest
  // pending pull vs the resident subtree) exceeds T_transform (§3.3).
  for (auto it = ranked.rbegin(); it != ranked.rend(); ++it) {  // asc freq
    if (it->dram == 0 || desired.count(it->id) != 0) continue;
    const double ratio = (static_cast<double>(pull_freq) + 1.0) /
                         (static_cast<double>(it->freq) + 1.0);
    out.best_ratio = std::max(out.best_ratio, ratio);
    if (ratio <= config_.t_transform) continue;
    replace_subtree(it->id, /*to_dram=*/false, &out.evicted_to_nvbm);
  }
  // Pull the planned hot subtrees into DRAM (hottest first) until the
  // budget is reached; dramify itself stops allocating at the budget, so
  // the last pull may be partial. Never overshoot: that would put every
  // subsequent mutation through the eviction machinery.
  for (const auto& r : ranked) {
    if (dram_bytes() >= config_.dram_budget_bytes) break;
    if (desired.count(r.id) == 0 || r.dram == r.size) continue;
    replace_subtree(r.id, /*to_dram=*/true, &out.moved_to_dram);
  }
  out.transformed = out.moved_to_dram > 0 || out.evicted_to_nvbm > 0;
  if (out.transformed) tm_.transform_runs->add();
  tm_.transform_moved_to_dram->add(out.moved_to_dram);
  tm_.transform_evicted_to_nvbm->add(out.evicted_to_nvbm);
  if (out.transformed) {
    telemetry::trace::instant(
        "pmoctree.transform", "pmoctree",
        {{"moved_to_dram", static_cast<double>(out.moved_to_dram)},
         {"evicted_to_nvbm", static_cast<double>(out.evicted_to_nvbm)}});
  }
  return out;
}

void PmOctree::enforce_dram_budget() {
  if (dram_bytes() <= config_.dram_budget_bytes) return;
  const int lsub = subtree_level();
  // Tally DRAM nodes per subtree id.
  std::unordered_map<LocCode, std::size_t, LocCodeHash> counts;
  std::vector<NodeRef> stack{cur_root_};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    const PNode node =
        ref.in_dram() ? *ref.dram_ptr()
                      : nv_load(ref.nvbm_offset());
    if (ref.in_dram() && node.code.level() >= lsub)
      ++counts[node.code.ancestor_at(lsub)];
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      // Linear subtrees hold no DRAM nodes — nothing there to evict.
      if (!c.null() && !c.in_linear()) stack.push_back(c);
    }
  }
  // Evict coldest first (the paper's least-frequently-accessed policy).
  std::vector<std::pair<double, LocCode>> order;
  order.reserve(counts.size());
  for (const auto& [id, n] : counts) {
    const auto it = heat_.find(id);
    order.emplace_back(it == heat_.end() ? 0.0 : it->second, id);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [h, id] : order) {
    if (dram_bytes() <= config_.dram_budget_bytes) break;
    Path path;
    if (!descend(id, path)) continue;
    const std::size_t i = path.size() - 1;
    if (i > 0) make_mutable(path, i - 1);
    std::size_t moved = 0;
    const NodeRef nref = nvbmify(path[i].ref, &moved);
    if (i == 0) {
      cur_root_ = nref;
    } else if (!(nref == path[i].ref)) {
      path[i - 1].node.set_child(id.child_index(), nref);
      write_node(path[i - 1].ref, path[i - 1].node);
    }
    c0_set_.erase(id);
    if (moved > 0) {
      ++eviction_merges_;
      tm_.evictions->add();
    }
  }
}

// ---------------------------------------------------------------------------
// accounting
// ---------------------------------------------------------------------------

PmStats PmOctree::stats() {
  PmStats s;
  std::unordered_set<std::uint64_t> nvbm_union;
  std::vector<NodeRef> stack{cur_root_};
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    if (ref.in_linear()) {
      // Stream the record range [r, r + skip(r)) instead of descending
      // node by node — the accounting walk stays charge-free.
      const std::uint64_t chain = ref.linear_chain();
      linear::ChainView view(device(), chain);
      note_chain(chain, view.pages());
      nvbm_union.insert(chain);
      const std::uint32_t r0 = ref.linear_index();
      const std::uint32_t end = r0 + view.skip(r0);
      for (std::uint32_t r = r0; r < end; ++r) {
        ++s.nodes;
        ++s.linear_records;
        if (view.mask(r) == 0) ++s.leaves;
        s.depth = std::max(s.depth, view.code(r).level());
      }
      continue;
    }
    const PNode node =
        ref.in_dram() ? *ref.dram_ptr()
                      : nv_load(ref.nvbm_offset());
    ++s.nodes;
    if (node.is_leaf()) ++s.leaves;
    if (ref.in_dram()) {
      ++s.dram_nodes;
    } else {
      ++s.nvbm_nodes_vi;
      nvbm_union.insert(ref.nvbm_offset());
    }
    s.depth = std::max(s.depth, node.code.level());
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c);
    }
  }
  collect_reachable_nvbm(prev_root_, nvbm_union);
  // The union mixes node offsets and chain offsets; chains_ (kept
  // complete by collect_reachable_nvbm's note_chain) splits them.
  std::size_t pointer_nodes = 0;
  for (const std::uint64_t off : nvbm_union) {
    const auto it = chains_.find(off);
    if (it == chains_.end()) {
      ++pointer_nodes;
      continue;
    }
    ++s.linear_chains;
    s.nvbm_live_bytes += std::uint64_t{it->second} * linear::kPageBytes;
  }
  s.unique_physical_nodes = s.dram_nodes + pointer_nodes;
  s.nvbm_live_bytes += pointer_nodes * kNodeSize;
  s.dram_bytes = dram_bytes();
  depth_ = std::max(depth_, s.depth);
  return s;
}

std::uint64_t PmOctree::modeled_ns() const {
  return dram_.modeled_ns() + heap_.device().counters().modeled_ns();
}

void PmOctree::reset_counters() {
  dram_ = DramCounters{};
  device().reset_counters();
}

}  // namespace pmo::pmoctree
