// PM-octree node representation.
//
// A PM-octree is a single logical octree whose octants live in two tiers:
// DRAM (the hot C0 subtrees) and NVBM (the C1 tree plus the whole previous
// version V_{i-1}). Links between octants therefore must address both
// tiers: NodeRef packs either a DRAM pointer or an NVBM heap offset into
// one tagged 64-bit word. This is the "special pointers linking persistent
// octants in NVBM and volatile octants in DRAM" the paper's library manages
// for the application (§1, challenge 3).
#pragma once

#include <cstdint>

#include "common/morton.hpp"
#include "octree/cell_data.hpp"

namespace pmo::pmoctree {

struct PNode;

/// Tagged reference to a PM-octree node.
///
/// Encoding: 0 is null; otherwise bit 0 distinguishes pointer-tier NVBM
/// (1 = heap offset shifted left by one) from the two low-tag-0 modes,
/// which bit 1 splits: 0b00 = DRAM pointer (PNode* are 8-byte aligned, so
/// the low 3 bits of a real pointer are 0), 0b10 = linear-tier record:
/// bits [21:2] hold the record index inside a compacted chain (up to 2^20
/// records per chain) and bits [63:22] hold the chain's heap payload
/// offset divided by 8. (Heap payloads sit one 8-byte object header past
/// a 16-byte-rounded block boundary, so they are 8-aligned, NOT
/// 16-aligned — the divisor must match the guaranteed alignment.)
class NodeRef {
 public:
  constexpr NodeRef() noexcept = default;

  static NodeRef dram(PNode* node) noexcept {
    return NodeRef(reinterpret_cast<std::uint64_t>(node));
  }
  static constexpr NodeRef nvbm(std::uint64_t offset) noexcept {
    return NodeRef((offset << 1) | 1u);
  }
  /// Record `index` of the linear chain whose pages start at heap payload
  /// offset `chain` (8-byte aligned by the heap allocator).
  static constexpr NodeRef linear(std::uint64_t chain,
                                  std::uint64_t index) noexcept {
    return NodeRef(((chain >> 3) << 22) | (index << 2) | 2u);
  }

  constexpr bool null() const noexcept { return bits_ == 0; }
  explicit constexpr operator bool() const noexcept { return bits_ != 0; }
  constexpr bool in_nvbm() const noexcept { return (bits_ & 1u) != 0; }
  constexpr bool in_linear() const noexcept { return (bits_ & 3u) == 2u; }
  constexpr bool in_dram() const noexcept {
    return bits_ != 0 && (bits_ & 3u) == 0;
  }

  PNode* dram_ptr() const noexcept {
    PMO_DCHECK(in_dram());
    return reinterpret_cast<PNode*>(bits_);
  }
  constexpr std::uint64_t nvbm_offset() const noexcept {
    PMO_DCHECK(in_nvbm());
    return bits_ >> 1;
  }
  constexpr std::uint64_t linear_chain() const noexcept {
    PMO_DCHECK(in_linear());
    return (bits_ >> 22) << 3;
  }
  constexpr std::uint32_t linear_index() const noexcept {
    PMO_DCHECK(in_linear());
    return static_cast<std::uint32_t>((bits_ >> 2) & 0xfffffu);
  }

  /// Raw tagged bits — this exact word is what gets stored inside
  /// persistent parent/child slots.
  constexpr std::uint64_t bits() const noexcept { return bits_; }
  static constexpr NodeRef from_bits(std::uint64_t bits) noexcept {
    return NodeRef(bits);
  }

  friend constexpr bool operator==(const NodeRef&, const NodeRef&) = default;

 private:
  explicit constexpr NodeRef(std::uint64_t bits) noexcept : bits_(bits) {}
  std::uint64_t bits_ = 0;
};

struct NodeRefHash {
  std::size_t operator()(const NodeRef& r) const noexcept {
    std::uint64_t h = r.bits();
    h ^= h >> 33;
    h *= 0xc2b2ae3d27d4eb4full;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

/// Node flags.
enum NodeFlags : std::uint32_t {
  kNodeDeleted = 1u << 0,  ///< tombstoned; reclaimed by the next GC sweep
  /// Dirty-subtree summary bit (DRAM-resident nodes only): some octant in
  /// this node's subtree mutated since the last persist, so the merge
  /// must recurse here. A clean DRAM node (bit unset, epoch < current,
  /// durable twin recorded) is skipped in O(1). The bit never reaches
  /// NVBM bytes — every node store to the device strips it, keeping the
  /// persisted image independent of mutation history.
  kNodeSubtreeDirty = 1u << 1,
  /// Child-presence bitmask: bit (8 + i) is set iff child[i] is non-null.
  /// Maintained by set_child, so is_leaf() and child iteration test one
  /// word instead of scanning all 8 NodeRef slots. Any store that writes
  /// a child slot back to the device must also write the flags word to
  /// keep the durable mask coherent.
  kNodeChildMaskShift = 8,
  kNodeChildMask = 0xffu << kNodeChildMaskShift,
};

/// The octant record, identical layout in DRAM and NVBM so merging is a
/// copy plus link fix-up. Trivially copyable by construction.
struct PNode {
  LocCode code;
  std::uint64_t parent = 0;                     ///< NodeRef bits
  std::uint64_t child[kChildrenPerNode] = {};   ///< NodeRef bits
  CellData data;
  std::uint32_t flags = 0;
  /// Epoch (persist generation) in which this physical node was created.
  /// A node with epoch < the tree's current epoch is (potentially) shared
  /// with V_{i-1} and must be updated via copy-on-write; a node created in
  /// the current epoch is private to V_i and may be updated in place
  /// (paper §3.2).
  std::uint32_t epoch = 0;

  NodeRef child_ref(int i) const noexcept {
    return NodeRef::from_bits(child[i]);
  }
  void set_child(int i, NodeRef r) noexcept {
    child[i] = r.bits();
    const std::uint32_t bit = 1u << (kNodeChildMaskShift + i);
    if (r.null())
      flags &= ~bit;
    else
      flags |= bit;
  }
  NodeRef parent_ref() const noexcept { return NodeRef::from_bits(parent); }
  void set_parent(NodeRef r) noexcept { parent = r.bits(); }

  std::uint8_t child_mask() const noexcept {
    return static_cast<std::uint8_t>(flags >> kNodeChildMaskShift);
  }
  bool has_child(int i) const noexcept {
    return (flags & (1u << (kNodeChildMaskShift + i))) != 0;
  }
  bool is_leaf() const noexcept { return (flags & kNodeChildMask) == 0; }
  bool deleted() const noexcept { return (flags & kNodeDeleted) != 0; }
};

static_assert(std::is_trivially_copyable_v<PNode>);

}  // namespace pmo::pmoctree
