// PM-octree node representation.
//
// A PM-octree is a single logical octree whose octants live in two tiers:
// DRAM (the hot C0 subtrees) and NVBM (the C1 tree plus the whole previous
// version V_{i-1}). Links between octants therefore must address both
// tiers: NodeRef packs either a DRAM pointer or an NVBM heap offset into
// one tagged 64-bit word. This is the "special pointers linking persistent
// octants in NVBM and volatile octants in DRAM" the paper's library manages
// for the application (§1, challenge 3).
#pragma once

#include <cstdint>

#include "common/morton.hpp"
#include "octree/cell_data.hpp"

namespace pmo::pmoctree {

struct PNode;

/// Tagged reference to a PM-octree node.
///
/// Encoding: 0 is null; otherwise bit 0 distinguishes the tiers
/// (0 = DRAM pointer, 1 = NVBM offset shifted left by one). Both DRAM
/// pointers and heap payload offsets are at least 8-byte aligned, so bit 0
/// is free, and offsets stay below 2^62.
class NodeRef {
 public:
  constexpr NodeRef() noexcept = default;

  static NodeRef dram(PNode* node) noexcept {
    return NodeRef(reinterpret_cast<std::uint64_t>(node));
  }
  static constexpr NodeRef nvbm(std::uint64_t offset) noexcept {
    return NodeRef((offset << 1) | 1u);
  }

  constexpr bool null() const noexcept { return bits_ == 0; }
  explicit constexpr operator bool() const noexcept { return bits_ != 0; }
  constexpr bool in_nvbm() const noexcept { return (bits_ & 1u) != 0; }
  constexpr bool in_dram() const noexcept {
    return bits_ != 0 && (bits_ & 1u) == 0;
  }

  PNode* dram_ptr() const noexcept {
    PMO_DCHECK(in_dram());
    return reinterpret_cast<PNode*>(bits_);
  }
  constexpr std::uint64_t nvbm_offset() const noexcept {
    PMO_DCHECK(in_nvbm());
    return bits_ >> 1;
  }

  /// Raw tagged bits — this exact word is what gets stored inside
  /// persistent parent/child slots.
  constexpr std::uint64_t bits() const noexcept { return bits_; }
  static constexpr NodeRef from_bits(std::uint64_t bits) noexcept {
    return NodeRef(bits);
  }

  friend constexpr bool operator==(const NodeRef&, const NodeRef&) = default;

 private:
  explicit constexpr NodeRef(std::uint64_t bits) noexcept : bits_(bits) {}
  std::uint64_t bits_ = 0;
};

struct NodeRefHash {
  std::size_t operator()(const NodeRef& r) const noexcept {
    std::uint64_t h = r.bits();
    h ^= h >> 33;
    h *= 0xc2b2ae3d27d4eb4full;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

/// Node flags.
enum NodeFlags : std::uint32_t {
  kNodeDeleted = 1u << 0,  ///< tombstoned; reclaimed by the next GC sweep
  /// Dirty-subtree summary bit (DRAM-resident nodes only): some octant in
  /// this node's subtree mutated since the last persist, so the merge
  /// must recurse here. A clean DRAM node (bit unset, epoch < current,
  /// durable twin recorded) is skipped in O(1). The bit never reaches
  /// NVBM bytes — every node store to the device strips it, keeping the
  /// persisted image independent of mutation history.
  kNodeSubtreeDirty = 1u << 1,
};

/// The octant record, identical layout in DRAM and NVBM so merging is a
/// copy plus link fix-up. Trivially copyable by construction.
struct PNode {
  LocCode code;
  std::uint64_t parent = 0;                     ///< NodeRef bits
  std::uint64_t child[kChildrenPerNode] = {};   ///< NodeRef bits
  CellData data;
  std::uint32_t flags = 0;
  /// Epoch (persist generation) in which this physical node was created.
  /// A node with epoch < the tree's current epoch is (potentially) shared
  /// with V_{i-1} and must be updated via copy-on-write; a node created in
  /// the current epoch is private to V_i and may be updated in place
  /// (paper §3.2).
  std::uint32_t epoch = 0;

  NodeRef child_ref(int i) const noexcept {
    return NodeRef::from_bits(child[i]);
  }
  void set_child(int i, NodeRef r) noexcept { child[i] = r.bits(); }
  NodeRef parent_ref() const noexcept { return NodeRef::from_bits(parent); }
  void set_parent(NodeRef r) noexcept { parent = r.bits(); }

  bool is_leaf() const noexcept {
    for (const auto c : child)
      if (c != 0) return false;
    return true;
  }
  bool deleted() const noexcept { return (flags & kNodeDeleted) != 0; }
};

static_assert(std::is_trivially_copyable_v<PNode>);

}  // namespace pmo::pmoctree
