// Epoch-validated DRAM cache of NVBM-resident PM-octree nodes.
//
// The descent path re-reads the same root-proximal octants for every
// operation; this cache keeps a fixed DRAM budget of those PNodes keyed
// by NVBM heap offset so repeat reads cost DRAM latency instead of NVBM
// latency. Coherence leans on the tree's CoW epoch rule (pm_octree.hpp):
//
//  * every entry is stamped with the tree epoch at insertion, and lookup
//    only returns entries whose stamp equals the CURRENT epoch. persist()
//    bumping the epoch therefore bulk-invalidates the whole cache in
//    O(1) — no scan, no per-entry work;
//  * within one epoch, NVBM nodes mutate only through the tree's nv_store
//    (write-through update here) and are freed only through nv_free /
//    GC (explicit invalidate / clear here) — so a same-epoch entry is
//    always byte-identical to the device's working image.
//
// Eviction is clock (second chance): one ref bit per slot, a hand that
// sweeps until it finds an unreferenced slot. Deterministic — cache state
// is a pure function of the per-tree access sequence, which the exec
// determinism contract already fixes across thread counts.
//
// SINGLE-WRITER DISCIPLINE: this cache MUTATES ON READ — lookup() sets
// the clock ref bit and bumps the stats counters — so it is not merely
// "not thread-safe for writes": two concurrent lookups already race. A
// NodeCache is confined to one logical owner at a time, like the Device
// it fronts. Sequential ownership hand-off (e.g. cluster lanes running
// one after another, or exec workers that never overlap on one tree) is
// fine; simultaneous entry from two threads is a bug. Concurrent serve
// readers therefore get PRIVATE per-context caches (src/serve), never a
// reference to the tree's. Debug builds enforce this with an entry flag:
// any overlapping access fails a PMO_CHECK instead of racing silently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "pmoctree/node.hpp"

#ifndef NDEBUG
#define PMO_NODE_CACHE_GUARD ConcurrencyGuard guard_(busy_)
#else
#define PMO_NODE_CACHE_GUARD \
  do {                       \
  } while (false)
#endif

namespace pmo::pmoctree {

class NodeCache {
 public:
  /// Lifetime event counts (also mirrored into pmoctree.cache.* telemetry
  /// by the owning tree).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };

  explicit NodeCache(std::size_t budget_bytes) {
    const std::size_t n = budget_bytes / sizeof(Entry);
    slots_.resize(n);
    index_.reserve(n);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t size() const noexcept { return index_.size(); }
  const Stats& stats() const noexcept { return stats_; }

  /// Returns the cached node for `offset` when present AND stamped with
  /// the current `epoch`; nullptr otherwise. A stale-stamp entry counts
  /// as a miss (it is dead weight awaiting overwrite, not an eviction).
  const PNode* lookup(std::uint64_t offset, std::uint32_t epoch) {
    PMO_NODE_CACHE_GUARD;
    const auto it = index_.find(offset);
    if (it == index_.end() || slots_[it->second].stamp != epoch) {
      ++stats_.misses;
      return nullptr;
    }
    Entry& e = slots_[it->second];
    e.referenced = true;
    ++stats_.hits;
    return &e.node;
  }

  /// Installs (or refreshes) the node for `offset`, stamped with `epoch`.
  /// Returns true when a live entry was evicted to make room.
  bool insert(std::uint64_t offset, const PNode& node, std::uint32_t epoch) {
    PMO_NODE_CACHE_GUARD;
    if (slots_.empty()) return false;
    if (const auto it = index_.find(offset); it != index_.end()) {
      Entry& e = slots_[it->second];
      e.node = node;
      e.stamp = epoch;
      e.referenced = true;
      return false;
    }
    const std::size_t slot = claim_slot();
    Entry& e = slots_[slot];
    bool evicted = false;
    if (e.live) {
      index_.erase(e.offset);
      ++stats_.evictions;
      evicted = true;
    }
    e.offset = offset;
    e.node = node;
    e.stamp = epoch;
    e.referenced = true;
    e.live = true;
    index_[offset] = slot;
    return evicted;
  }

  /// Write-through: refreshes the entry if (and only if) present. Writes
  /// do not admit nodes — the cache stays a read-path structure.
  void update(std::uint64_t offset, const PNode& node, std::uint32_t epoch) {
    PMO_NODE_CACHE_GUARD;
    const auto it = index_.find(offset);
    if (it == index_.end()) return;
    Entry& e = slots_[it->second];
    e.node = node;
    e.stamp = epoch;
  }

  /// Drops the entry for `offset` (the node was freed: its storage may be
  /// reallocated within the same epoch, so the stamp cannot protect it).
  /// Returns true when an entry was actually dropped.
  bool invalidate(std::uint64_t offset) {
    PMO_NODE_CACHE_GUARD;
    const auto it = index_.find(offset);
    if (it == index_.end()) return false;
    slots_[it->second].live = false;
    slots_[it->second].referenced = false;
    index_.erase(it);
    ++stats_.invalidations;
    return true;
  }

  /// Carries live entries across a persist's epoch bump: every entry
  /// stamped `from` is re-stamped `to`. Sound because persist explicitly
  /// updates (write-through) or invalidates (free) each offset it touches
  /// before the bump — whatever still carries the old stamp is an offset
  /// whose contents survived the persist unchanged (e.g. an entirely
  /// pruned subtree), so dropping it would only manufacture cold misses.
  /// Returns the number of entries carried over.
  std::size_t restamp(std::uint32_t from, std::uint32_t to) {
    PMO_NODE_CACHE_GUARD;
    std::size_t carried = 0;
    for (Entry& e : slots_) {
      if (e.live && e.stamp == from) {
        e.stamp = to;
        ++carried;
      }
    }
    return carried;
  }

  /// Drops everything (GC sweep / pm_delete: many offsets freed at once).
  /// Returns the number of entries dropped.
  std::size_t clear() {
    PMO_NODE_CACHE_GUARD;
    const std::size_t dropped = index_.size();
    stats_.invalidations += dropped;
    index_.clear();
    for (Entry& e : slots_) {
      e.live = false;
      e.referenced = false;
    }
    hand_ = 0;
    return dropped;
  }

 private:
  struct Entry {
    std::uint64_t offset = 0;
    PNode node{};
    std::uint32_t stamp = 0;
    bool referenced = false;
    bool live = false;
  };

#ifndef NDEBUG
  /// Debug detector for the single-writer discipline: counts threads
  /// currently inside a cache entry point and fails loudly on overlap.
  /// An atomic flag — not a thread-id check — because sequential
  /// ownership hand-off between threads is legal; only simultaneous
  /// entry is not. Wrapped so the (non-movable) atomic does not delete
  /// NodeCache's moves: a moved cache starts with a fresh, idle flag.
  struct BusyFlag {
    std::atomic<int> entries{0};
    BusyFlag() = default;
    BusyFlag(const BusyFlag&) noexcept {}
    BusyFlag& operator=(const BusyFlag&) noexcept { return *this; }
    BusyFlag(BusyFlag&&) noexcept {}
    BusyFlag& operator=(BusyFlag&&) noexcept { return *this; }
  };
  struct ConcurrencyGuard {
    explicit ConcurrencyGuard(BusyFlag& f) : f_(f) {
      PMO_CHECK_MSG(
          f_.entries.fetch_add(1, std::memory_order_acq_rel) == 0,
          "NodeCache accessed from two threads at once — the cache "
          "mutates on read (clock ref bits); give each concurrent "
          "reader its own cache (see src/serve) instead of sharing "
          "the tree's");
    }
    ~ConcurrencyGuard() {
      f_.entries.fetch_sub(1, std::memory_order_acq_rel);
    }
    BusyFlag& f_;
  };
  mutable BusyFlag busy_;
#endif

  std::size_t claim_slot() {
    // Clock sweep: clear ref bits until an unreferenced slot comes up.
    // Terminates within two laps (first lap clears every ref bit).
    for (;;) {
      Entry& e = slots_[hand_];
      const std::size_t slot = hand_;
      hand_ = (hand_ + 1) % slots_.size();
      if (!e.live || !e.referenced) return slot;
      e.referenced = false;
    }
  }

  std::vector<Entry> slots_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::size_t hand_ = 0;
  Stats stats_;
};

}  // namespace pmo::pmoctree
