// PM-octree tuning knobs. Defaults follow the paper's prototype.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pmo::pmoctree {

struct PmConfig {
  /// DRAM budget for the C0 tree in bytes (the experiments' "DRAM size
  /// configured for C0": 1–8 GB on Titan, scaled down here).
  std::size_t dram_budget_bytes = std::size_t{64} << 20;

  /// Evict the least-frequently-accessed C0 subtree when C0 usage exceeds
  /// this fraction of the budget (the paper's threshold_DRAM expressed as
  /// a fraction of available DRAM).
  double threshold_dram = 1.0;

  /// Run GC when the NVBM heap's available fraction drops below this
  /// (the paper's threshold_NVBM).
  double threshold_nvbm = 0.15;

  /// Layout transformation fires when the hottest NVBM subtree's sampled
  /// access frequency exceeds T_transform times the coldest C0 subtree's.
  double t_transform = 1.5;

  /// Octants sampled per subtree: min(n_sample, subtree size) (§3.3).
  std::size_t n_sample = 100;

  /// Hot (C0-designated) subtrees may transiently exceed the DRAM budget
  /// by this factor between merge points; enforce_dram_budget() then
  /// evicts the least-frequently-accessed subtrees back down to budget.
  double dram_overflow = 1.5;

  /// Master switch for dynamic layout transformation (Fig. 11 ablation).
  bool enable_transform = true;

  /// Run mark-and-sweep GC at the end of every pm_persistent().
  bool gc_on_persist = true;

  /// Persist-time dirty-subtree pruning: the merge skips an entirely
  /// clean DRAM subtree in O(1) by reusing its durable twin, guided by
  /// the kNodeSubtreeDirty summary bits stamped up the ancestor path on
  /// every mutation. Off = the merge re-verifies child refs recursively
  /// (the pre-pruning behaviour); the persisted image is bit-identical
  /// either way.
  bool persist_pruning = true;

  /// Total concurrency of the persist-time parallel merge when an exec
  /// pool is attached via set_exec(): level-2 subtree merge tasks fan out
  /// across min(persist_threads, pool size) workers. <= 1 runs the task
  /// pipeline inline (same machinery, same results — the determinism
  /// contract makes thread count a wall-clock knob only). 0 means "use
  /// the pool's full size".
  int persist_threads = 0;

  /// DRAM access latencies used for modeled-time accounting (Table 2).
  std::uint64_t dram_read_ns = 60;
  std::uint64_t dram_write_ns = 60;

  /// Cache-line size used to convert node accesses to latency units.
  std::size_t cache_line = 64;

  /// DRAM budget (bytes) of the epoch-validated hot-node cache on the
  /// descent read path: NVBM-resident octants read via the node accessor
  /// are kept in DRAM and served at DRAM latency until invalidated by the
  /// CoW epoch rule (see DESIGN.md §8). 0 disables the cache AND the
  /// traversal cursors — the pure re-descend-from-root baseline.
  std::size_t node_cache_bytes = std::size_t{4} << 20;

  /// Persist-time compaction of cold subtrees into the flat Morton-keyed
  /// linear tier (DESIGN.md §11): after the merge, maximal subtrees that
  /// survived a persist unchanged (every node's epoch predates the
  /// current persist) are rewritten as packed octant pages and the fresh
  /// parents relinked to NodeRef::linear records. First mutation promotes
  /// the touched path back to pointer-tier PNodes via the ordinary CoW
  /// branch. Off = pure pointer tier (the A/B baseline; the persisted
  /// *logical* content is identical, the physical layout is not).
  bool linear_compaction = true;

  /// Only compact candidate subtrees with at least this many octants —
  /// tiny chains fragment the heap without amortizing their page headers.
  std::size_t compact_min_records = 32;

  /// DRAM budget (bytes) of the linear tier's page-residency cache: a
  /// record access on a resident page charges a DRAM-side cached read, a
  /// miss streams the whole page from NVBM and admits it. 0 = every
  /// record access pays the NVBM streaming charge.
  std::size_t page_cache_bytes = std::size_t{1} << 20;

  /// TEST HOOK (crash injection): when true, persist() returns right
  /// after the compaction stage — before flush_all() and the root swap —
  /// emulating a process death mid-compaction with chain pages and parent
  /// relinks still sitting unflushed in the crash simulator's write
  /// buffer. The tree object is inconsistent afterwards and must be
  /// abandoned; only Device::simulate_crash + restore are meaningful.
  bool crash_before_flush_for_test = false;

  /// Keep a remote replica of V_{i-1} and ship deltas at each persist
  /// (§3.4 second scenario). Costs are modeled through cluster::LinkModel.
  bool enable_replica = false;

  // ---- automated C0 sizing (the paper's §6 future work) -------------------
  /// When true, the C0 DRAM budget adapts at each persist: it grows while
  /// the NVBM tier serves more than `auto_budget_high` of memory accesses
  /// and shrinks when it serves less than `auto_budget_low`, within
  /// [auto_budget_min_bytes, auto_budget_max_bytes].
  bool auto_budget = false;
  double auto_budget_high = 0.5;   ///< grow when NVBM share exceeds this
  double auto_budget_low = 0.10;   ///< shrink when NVBM share is below this
  double auto_budget_step = 1.25;  ///< multiplicative grow/shrink factor
  std::size_t auto_budget_min_bytes = std::size_t{64} << 10;
  std::size_t auto_budget_max_bytes = std::size_t{1} << 30;
};

/// Access/latency accounting for the DRAM side (the device tracks NVBM).
struct DramCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t lines_read = 0;
  std::uint64_t lines_written = 0;
  std::uint64_t modeled_read_ns = 0;
  std::uint64_t modeled_write_ns = 0;

  std::uint64_t modeled_ns() const noexcept {
    return modeled_read_ns + modeled_write_ns;
  }
};

}  // namespace pmo::pmoctree
