// Snapshot pinning: refcounted handles onto persisted epochs.
//
// Every persist() seals an immutable NVBM-resident version V_{i-1}. A
// SnapshotHandle pins one such version so concurrent readers (src/serve)
// can traverse it while the mutator keeps refining and persisting. The
// pin set feeds epoch-based reclamation inside PmOctree:
//
//  * gc() adds every pinned root's reachable set to the live set, so no
//    node a reader can still reach is ever freed or reused;
//  * tombstone marking (persist step 3 and shared-subtree removal) is
//    deferred while any pin is live, because flipping kNodeDeleted on a
//    shared node is a write into bytes a reader may be memcpy-ing.
//
// Concurrency model: the registry is the ONLY PmOctree state that reader
// threads touch. pin/unpin take a small mutex (never held while doing
// tree work); the mutator reads an atomic pin count on its hot gates and
// takes the mutex only once per persist/gc. Handles are shared_ptr-backed
// so they stay safe across PmOctree moves; they must not outlive the
// heap/device (the bytes they let readers address).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo::nvbm {
class Device;
}

namespace pmo::pmoctree {

/// Shared pin table between one PmOctree and all of its SnapshotHandles.
/// Internal to the snapshot layer; users only see SnapshotHandle.
class SnapshotRegistry {
 public:
  struct Pinned {
    std::uint64_t root = 0;      ///< NVBM offset of the version's root
    std::uint32_t epoch = 0;     ///< epoch sealed by the persist
    std::size_t nodes = 0;       ///< logical octants in the version
  };

  /// Wires the pmoctree.snapshot.{pins,unpins} telemetry mirrors (the
  /// owning tree resolves them once at construction).
  void set_counters(telemetry::Counter* pins,
                    telemetry::Counter* unpins) noexcept {
    pins_c_ = pins;
    unpins_c_ = unpins;
  }

  /// Called by persist()/restore() after the root swap: the version at
  /// `root` is durable and becomes the target of future pins.
  void publish(std::uint64_t root, std::uint32_t epoch, std::size_t nodes) {
    std::lock_guard lk(mu_);
    pub_ = Pinned{root, epoch, nodes};
  }

  /// Pins the latest published version (refcount +1). Returns false when
  /// nothing has been persisted yet.
  bool pin_latest(Pinned& out) {
    std::lock_guard lk(mu_);
    if (pub_.root == 0) return false;
    auto [it, fresh] = pins_.try_emplace(pub_.epoch, Entry{pub_.root, 0});
    (void)fresh;
    ++it->second.refs;
    pin_count_.store(pins_.size(), std::memory_order_relaxed);
    ++pins_taken_;
    if (pins_c_ != nullptr) pins_c_->add();
    out = pub_;
    return true;
  }

  /// Refcount +1 on an already-pinned epoch (handle copy).
  void ref(std::uint32_t epoch) {
    std::lock_guard lk(mu_);
    const auto it = pins_.find(epoch);
    PMO_CHECK_MSG(it != pins_.end(),
                  "snapshot ref of unpinned epoch " << epoch);
    ++it->second.refs;
  }

  /// Refcount -1; the epoch leaves the pin set at zero.
  void unpin(std::uint32_t epoch) {
    std::lock_guard lk(mu_);
    const auto it = pins_.find(epoch);
    PMO_CHECK_MSG(it != pins_.end(),
                  "snapshot unpin of unpinned epoch " << epoch);
    if (--it->second.refs == 0) pins_.erase(it);
    pin_count_.store(pins_.size(), std::memory_order_relaxed);
    ++pins_released_;
    if (unpins_c_ != nullptr) unpins_c_->add();
  }

  /// Distinct pinned epochs right now. Lock-free: the mutator's tombstone
  /// gates read this on every shared-subtree removal.
  std::size_t pin_count() const noexcept {
    return pin_count_.load(std::memory_order_relaxed);
  }

  /// (epoch, root) of every pinned version, ascending by epoch — the
  /// deterministic iteration order gc()'s live-set walk relies on.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> pinned_roots() const {
    std::lock_guard lk(mu_);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
    out.reserve(pins_.size());
    for (const auto& [epoch, e] : pins_) out.emplace_back(epoch, e.root);
    return out;
  }

  bool is_pinned(std::uint32_t epoch) const {
    std::lock_guard lk(mu_);
    return pins_.count(epoch) != 0;
  }

  /// Latest published (pinnable) version; root == 0 when none.
  Pinned published() const {
    std::lock_guard lk(mu_);
    return pub_;
  }

  /// Lifetime pin/unpin totals (telemetry mirrors).
  std::uint64_t pins_taken() const {
    std::lock_guard lk(mu_);
    return pins_taken_;
  }
  std::uint64_t pins_released() const {
    std::lock_guard lk(mu_);
    return pins_released_;
  }

 private:
  struct Entry {
    std::uint64_t root = 0;
    std::size_t refs = 0;
  };

  mutable std::mutex mu_;
  std::map<std::uint32_t, Entry> pins_;
  Pinned pub_{};
  std::uint64_t pins_taken_ = 0;
  std::uint64_t pins_released_ = 0;
  std::atomic<std::size_t> pin_count_{0};
  telemetry::Counter* pins_c_ = nullptr;
  telemetry::Counter* unpins_c_ = nullptr;
};

/// Refcounted pin on one persisted epoch. Obtained from
/// PmOctree::pin_snapshot(); copyable (shares the pin), movable. While
/// any handle on an epoch is alive, every node reachable from that
/// epoch's root keeps its bytes: GC will not free it and the mutator will
/// not tombstone it. Handles may be released from any thread; the
/// underlying device must outlive every handle.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;

  SnapshotHandle(const SnapshotHandle& o)
      : reg_(o.reg_), device_(o.device_), pin_(o.pin_) {
    if (reg_) reg_->ref(pin_.epoch);
  }
  SnapshotHandle& operator=(const SnapshotHandle& o) {
    if (this != &o) {
      SnapshotHandle copy(o);
      *this = std::move(copy);
    }
    return *this;
  }
  SnapshotHandle(SnapshotHandle&& o) noexcept { *this = std::move(o); }
  SnapshotHandle& operator=(SnapshotHandle&& o) noexcept {
    if (this != &o) {
      release();
      reg_ = std::move(o.reg_);
      device_ = o.device_;
      pin_ = o.pin_;
      o.reg_.reset();
      o.device_ = nullptr;
      o.pin_ = {};
    }
    return *this;
  }
  ~SnapshotHandle() { release(); }

  /// Drops this handle's pin (idempotent). The epoch becomes reclaimable
  /// once its last handle releases.
  void release() {
    if (reg_) {
      reg_->unpin(pin_.epoch);
      reg_.reset();
      device_ = nullptr;
      pin_ = {};
    }
  }

  bool valid() const noexcept { return reg_ != nullptr; }
  /// Epoch this handle pins (the value persist() sealed into kEpochSlot).
  std::uint32_t epoch() const noexcept { return pin_.epoch; }
  /// NVBM offset of the pinned version's root node.
  std::uint64_t root_offset() const noexcept { return pin_.root; }
  /// Logical octant count of the pinned version.
  std::size_t logical_nodes() const noexcept { return pin_.nodes; }
  /// Device holding the pinned bytes (for read-only serve traversals).
  nvbm::Device& device() const noexcept { return *device_; }

 private:
  friend class PmOctree;
  SnapshotHandle(std::shared_ptr<SnapshotRegistry> reg, nvbm::Device* dev,
                 SnapshotRegistry::Pinned pin)
      : reg_(std::move(reg)), device_(dev), pin_(pin) {}

  std::shared_ptr<SnapshotRegistry> reg_;
  nvbm::Device* device_ = nullptr;
  SnapshotRegistry::Pinned pin_{};
};

}  // namespace pmo::pmoctree
