#include "pmoctree/replica.hpp"

#include <cstring>

#include "telemetry/trace.hpp"

namespace pmo::pmoctree {

Delta ReplicaManager::extract(PmOctree& tree) {
  Delta delta;
  const NodeRef root = tree.previous_root();
  PMO_CHECK_MSG(!root.null(),
                "replica extraction requires a persisted version");
  delta.root_offset = root.nvbm_offset();

  // Reachable sets of the newly persisted version. Chains are leaves of
  // the walk: a record references only records of its own chain.
  std::unordered_set<std::uint64_t> now;
  std::unordered_set<std::uint64_t> now_chains;
  std::vector<std::uint64_t> stack{root.nvbm_offset()};
  auto& dev = tree.device();
  while (!stack.empty()) {
    const std::uint64_t off = stack.back();
    stack.pop_back();
    if (!now.insert(off).second) continue;
    const PNode node = dev.load<PNode>(off);
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (c.null()) continue;
      if (c.in_linear()) {
        now_chains.insert(c.linear_chain());
        continue;
      }
      stack.push_back(c.nvbm_offset());
    }
  }

  // Copy-on-write guarantees any changed octant has a fresh offset, so the
  // peer needs exactly (now - known) upserted and (known - now) dropped.
  for (const auto off : now) {
    if (known_.count(off) == 0)
      delta.upserts.emplace_back(off, dev.load<PNode>(off));
  }
  for (const auto off : known_) {
    if (now.count(off) == 0) delta.removals.push_back(off);
  }
  // Same diff for chains, as whole immutable blobs.
  for (const auto chain : now_chains) {
    if (known_chains_.count(chain) != 0) continue;
    const linear::ChainView view(dev, chain);
    const std::uint64_t len = view.bytes();
    std::vector<std::byte> blob(len);
    std::memcpy(blob.data(), dev.raw(chain, len), len);
    delta.chain_upserts.emplace_back(chain, std::move(blob));
  }
  for (const auto chain : known_chains_) {
    if (now_chains.count(chain) == 0) delta.chain_removals.push_back(chain);
  }
  known_ = std::move(now);
  known_chains_ = std::move(now_chains);
  return delta;
}

std::uint64_t ReplicaManager::ship(PmOctree& tree, ReplicaStore& peer) {
  const Delta delta = extract(tree);
  peer.apply(delta);
  return delta.bytes();
}

void ReplicaStore::apply(const Delta& delta) {
  for (const auto& [off, node] : delta.upserts) mirror_[off] = node;
  for (const auto off : delta.removals) mirror_.erase(off);
  for (const auto& [off, blob] : delta.chain_upserts) chains_[off] = blob;
  for (const auto off : delta.chain_removals) chains_.erase(off);
  root_offset_ = delta.root_offset;
}

std::size_t ReplicaStore::restore_into(nvbm::Heap& heap) const {
  PMO_CHECK_MSG(!empty(), "replica store holds no version");
  // Allocate every mirrored octant in the fresh heap, then relink child
  // references through the old-offset -> new-offset map.
  std::unordered_map<std::uint64_t, std::uint64_t> relocation;
  relocation.reserve(mirror_.size());
  for (const auto& [old_off, node] : mirror_) {
    relocation[old_off] = heap.alloc(sizeof(PNode));
  }
  // Chains relocate as whole blobs; linear child refs keep their record
  // index (the in-chain topology is position-based and unaffected by
  // where the chain lands in the new heap).
  std::unordered_map<std::uint64_t, std::uint64_t> chain_relocation;
  chain_relocation.reserve(chains_.size());
  auto& dev = heap.device();
  for (const auto& [old_off, blob] : chains_) {
    const std::uint64_t new_off = heap.alloc(blob.size());
    chain_relocation[old_off] = new_off;
    dev.write(new_off, blob.data(), blob.size());
    dev.flush(new_off, blob.size());
  }
  for (const auto& [old_off, node] : mirror_) {
    PNode moved = node;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = moved.child_ref(i);
      if (c.null()) continue;
      if (c.in_linear()) {
        const auto it = chain_relocation.find(c.linear_chain());
        PMO_CHECK_MSG(it != chain_relocation.end(),
                      "replica mirror misses a referenced chain");
        moved.set_child(i, NodeRef::linear(it->second, c.linear_index()));
        continue;
      }
      const auto it = relocation.find(c.nvbm_offset());
      PMO_CHECK_MSG(it != relocation.end(),
                    "replica mirror misses a referenced octant");
      moved.set_child(i, NodeRef::nvbm(it->second));
    }
    const NodeRef p = moved.parent_ref();
    if (!p.null()) {
      const auto it = relocation.find(p.in_nvbm() ? p.nvbm_offset() : 0);
      moved.set_parent(it != relocation.end() ? NodeRef::nvbm(it->second)
                                              : NodeRef{});
    }
    dev.store<PNode>(relocation[old_off], moved);
    dev.flush(relocation[old_off], sizeof(PNode));
  }
  dev.persist_barrier();
  const auto root_it = relocation.find(root_offset_);
  PMO_CHECK_MSG(root_it != relocation.end(), "replica root missing");
  heap.set_root(PmOctree::kPrevRootSlot, root_it->second);
  heap.set_root(PmOctree::kEpochSlot, 1);
  telemetry::trace::audit(
      "replica.restore_into",
      {{"octants", static_cast<double>(mirror_.size())}});
  return mirror_.size();
}

}  // namespace pmo::pmoctree
