#include "pmoctree/replica.hpp"

#include "telemetry/trace.hpp"

namespace pmo::pmoctree {

Delta ReplicaManager::extract(PmOctree& tree) {
  Delta delta;
  const NodeRef root = tree.previous_root();
  PMO_CHECK_MSG(!root.null(),
                "replica extraction requires a persisted version");
  delta.root_offset = root.nvbm_offset();

  // Reachable set of the newly persisted version.
  std::unordered_set<std::uint64_t> now;
  std::vector<std::uint64_t> stack{root.nvbm_offset()};
  auto& dev = tree.device();
  while (!stack.empty()) {
    const std::uint64_t off = stack.back();
    stack.pop_back();
    if (!now.insert(off).second) continue;
    const PNode node = dev.load<PNode>(off);
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = node.child_ref(i);
      if (!c.null()) stack.push_back(c.nvbm_offset());
    }
  }

  // Copy-on-write guarantees any changed octant has a fresh offset, so the
  // peer needs exactly (now - known) upserted and (known - now) dropped.
  for (const auto off : now) {
    if (known_.count(off) == 0)
      delta.upserts.emplace_back(off, dev.load<PNode>(off));
  }
  for (const auto off : known_) {
    if (now.count(off) == 0) delta.removals.push_back(off);
  }
  known_ = std::move(now);
  return delta;
}

std::uint64_t ReplicaManager::ship(PmOctree& tree, ReplicaStore& peer) {
  const Delta delta = extract(tree);
  peer.apply(delta);
  return delta.bytes();
}

void ReplicaStore::apply(const Delta& delta) {
  for (const auto& [off, node] : delta.upserts) mirror_[off] = node;
  for (const auto off : delta.removals) mirror_.erase(off);
  root_offset_ = delta.root_offset;
}

std::size_t ReplicaStore::restore_into(nvbm::Heap& heap) const {
  PMO_CHECK_MSG(!empty(), "replica store holds no version");
  // Allocate every mirrored octant in the fresh heap, then relink child
  // references through the old-offset -> new-offset map.
  std::unordered_map<std::uint64_t, std::uint64_t> relocation;
  relocation.reserve(mirror_.size());
  for (const auto& [old_off, node] : mirror_) {
    relocation[old_off] = heap.alloc(sizeof(PNode));
  }
  auto& dev = heap.device();
  for (const auto& [old_off, node] : mirror_) {
    PNode moved = node;
    for (int i = 0; i < kChildrenPerNode; ++i) {
      const NodeRef c = moved.child_ref(i);
      if (c.null()) continue;
      const auto it = relocation.find(c.nvbm_offset());
      PMO_CHECK_MSG(it != relocation.end(),
                    "replica mirror misses a referenced octant");
      moved.set_child(i, NodeRef::nvbm(it->second));
    }
    const NodeRef p = moved.parent_ref();
    if (!p.null()) {
      const auto it = relocation.find(p.in_nvbm() ? p.nvbm_offset() : 0);
      moved.set_parent(it != relocation.end() ? NodeRef::nvbm(it->second)
                                              : NodeRef{});
    }
    dev.store<PNode>(relocation[old_off], moved);
    dev.flush(relocation[old_off], sizeof(PNode));
  }
  dev.persist_barrier();
  const auto root_it = relocation.find(root_offset_);
  PMO_CHECK_MSG(root_it != relocation.end(), "replica root missing");
  heap.set_root(PmOctree::kPrevRootSlot, root_it->second);
  heap.set_root(PmOctree::kEpochSlot, 1);
  telemetry::trace::audit(
      "replica.restore_into",
      {{"octants", static_cast<double>(mirror_.size())}});
  return mirror_.size();
}

}  // namespace pmo::pmoctree
