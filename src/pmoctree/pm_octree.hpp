// PM-octree: persistent merged octree over DRAM + emulated NVBM.
//
// The data structure of the paper (§3). One logical octree, two versions:
//
//  * V_{i-1}: the last persisted version, entirely in NVBM, never mutated.
//    It is the recovery point; pm_restore() returns it in O(1).
//  * V_i: the working version. Hot subtrees (C0) live in DRAM, the rest
//    (C1) in NVBM. V_i shares every unmodified octant with V_{i-1}
//    (copy-on-write path copying, Fig. 4).
//
// Consistency argument (paper §1/§3): no per-write fence is needed because
// V_{i-1} is immutable while V_i is being built; the only update that must
// be atomic and durable is the 8-byte root-address swap at the end of
// persist(). The randomized crash-injection tests exercise precisely this.
//
// Epoch rule: every physical node records the persist epoch in which it
// was created. epoch < current  =>  node may be shared with V_{i-1}, so a
// mutation must copy it (and path-copy its ancestors). epoch == current
// =>  private to V_i, mutable in place. DRAM nodes are always private
// (V_{i-1} is NVBM-only by construction).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nvbm/heap.hpp"
#include "octree/octree.hpp"
#include "pmoctree/config.hpp"
#include "pmoctree/linear_tier.hpp"
#include "pmoctree/node.hpp"
#include "pmoctree/node_cache.hpp"
#include "pmoctree/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo::exec {
class ThreadPool;
}

namespace pmo::pmoctree {

/// Application feature function (§3.3): returns true when the octant's
/// subdomain is "of interest" — e.g. the refinement predicate or a solver
/// touch predicate. Used by feature-directed sampling, never for physics.
using FeatureFn = std::function<bool(const LocCode&, const CellData&)>;

/// Result of one persist() call (drives Fig. 3 and the replica model).
struct PersistStats {
  std::size_t nodes_total = 0;    ///< octants in V_i at persist time
  std::size_t nodes_shared = 0;   ///< octants shared with V_{i-1}
  std::size_t merged_from_dram = 0;  ///< C0 octants written out to C1
  std::size_t tombstoned = 0;     ///< old-version-only octants marked
  std::size_t gc_freed = 0;
  std::uint64_t delta_bytes = 0;  ///< replica delta size (new/changed nodes)
  double overlap_ratio = 0.0;     ///< shared / total (the paper's metric)
  /// Octants the merge actually processed (pruned-subtree roots are
  /// skipped in O(1) and count in pruned_subtrees instead). With
  /// dirty-subtree pruning this tracks the dirty frontier, not the tree
  /// size: after mutations to a small fraction of leaves,
  /// visits << nodes_total.
  std::size_t visits = 0;
  /// Clean subtrees skipped in O(1) via their durable twin.
  std::size_t pruned_subtrees = 0;
  /// Cold pointer subtrees rewritten into linear chains this persist.
  std::size_t compacted_subtrees = 0;
  /// Octant records packed into those chains.
  std::size_t compacted_records = 0;
};

/// Point-in-time structural statistics.
struct PmStats {
  std::size_t nodes = 0;          ///< nodes reachable from V_i
  std::size_t leaves = 0;
  std::size_t dram_nodes = 0;     ///< C0 size in nodes
  std::size_t nvbm_nodes_vi = 0;  ///< V_i nodes resident in NVBM
  std::size_t unique_physical_nodes = 0;  ///< union of V_{i-1} and V_i
  std::size_t dram_bytes = 0;
  std::size_t nvbm_live_bytes = 0;
  /// Octants of V_i resident as packed linear-tier records (a subset of
  /// `nodes`; nvbm_nodes_vi counts only pointer-tier PNodes).
  std::size_t linear_records = 0;
  /// Linear chains reachable from V_i.
  std::size_t linear_chains = 0;
  int depth = 0;
};

/// Outcome of a dynamic layout transformation check (§3.3).
struct TransformStats {
  bool transformed = false;
  std::size_t subtrees_sampled = 0;
  std::size_t octants_sampled = 0;
  std::size_t moved_to_dram = 0;
  std::size_t evicted_to_nvbm = 0;
  double best_ratio = 0.0;  ///< Ratio_access that triggered (or not)
};

class PmOctree {
 public:
  /// pm_create with an empty (root-only) octree.
  static PmOctree create(nvbm::Heap& heap, PmConfig config = {});
  /// pm_create(octree*): adopts an existing in-core octree (Table 1).
  static PmOctree create_from(nvbm::Heap& heap, const octree::Octree& tree,
                              PmConfig config = {});
  /// pm_restore: attach to a heap holding a persisted version; V_i starts
  /// as an alias of V_{i-1}. O(1) — no octant is copied or read.
  static PmOctree restore(nvbm::Heap& heap, PmConfig config = {});
  /// True when the heap contains a restorable persisted version.
  static bool can_restore(nvbm::Heap& heap);

  PmOctree(PmOctree&&) noexcept = default;
  PmOctree& operator=(PmOctree&&) noexcept = delete;
  PmOctree(const PmOctree&) = delete;
  PmOctree& operator=(const PmOctree&) = delete;

  // ---- queries on the working version V_i --------------------------------

  /// Exact-match lookup; nullopt when the octant does not exist in V_i.
  std::optional<CellData> find(const LocCode& code);
  bool contains(const LocCode& code);
  /// True when the octant exists and has no children.
  bool is_leaf(const LocCode& code);
  /// Data of the leaf whose volume contains `code`.
  CellData sample(const LocCode& code);
  /// Locational code of the leaf containing `code`.
  LocCode leaf_containing(const LocCode& code);

  void for_each_leaf(
      const std::function<void(const LocCode&, const CellData&)>& fn);
  /// Mutable leaf visit. `fn` returns true when it modified the data; the
  /// tree then performs the copy-on-write write-back along the current
  /// DFS path (no re-descent).
  void for_each_leaf_mut(
      const std::function<bool(const LocCode&, CellData&)>& fn);
  /// Like for_each_leaf_mut, but subtrees for which `visit` returns false
  /// are pruned from the traversal (region-restricted solver sweeps).
  void for_each_leaf_mut_pruned(
      const std::function<bool(const LocCode&)>& visit,
      const std::function<bool(const LocCode&, CellData&)>& fn);
  void for_each_node(const std::function<void(const LocCode&, const CellData&,
                                              bool leaf)>& fn);
  /// Extended node visit that also reports the residence tier (for tests
  /// and layout diagnostics).
  void for_each_node_ex(
      const std::function<void(const LocCode&, const CellData&, bool leaf,
                               bool in_dram)>& fn);
  /// Read-only traversal of the persisted version V_{i-1}. Sugar for the
  /// snapshot overload against the latest durable epoch.
  void for_each_leaf_prev(
      const std::function<void(const LocCode&, const CellData&)>& fn);
  /// Read-only traversal of an explicitly pinned persisted version —
  /// for_each_leaf_prev generalized beyond the implicit latest V_{i-1}.
  /// Owner-thread only (charged through the tree's nv_load path);
  /// concurrent readers use the src/serve engine instead.
  void for_each_leaf_snapshot(
      const SnapshotHandle& snap,
      const std::function<void(const LocCode&, const CellData&)>& fn);

  /// Charged SoA leaf extraction: appends every V_i leaf, in the same
  /// Morton (DFS pre-order) enumeration as for_each_leaf, into parallel
  /// key/level/vof/tracer arrays — the snapshot shape the SIMD solve
  /// kernels consume. DRAM and node-store leaves go through the normal
  /// read_node charging; linear-tier chains are streamed page-wise (one
  /// charge_linear_page per newly touched packed page, records decoded
  /// in place) instead of per-record synthesis — the modeled cost of
  /// scanning the packed cold tier sequentially. Cold-tier records are
  /// not heat-touched by this extraction (a whole-tier scan would
  /// saturate the access ratio and defeat §3.3's hot/cold separation);
  /// per-octant reads (sample, for_each_leaf) still are.
  void extract_leaves_soa(std::vector<std::uint64_t>& keys,
                          std::vector<std::uint8_t>& levels,
                          std::vector<double>& vof,
                          std::vector<double>& tracer);

  std::size_t node_count();
  std::size_t leaf_count();
  int depth() const noexcept { return depth_; }
  bool has_prev_version() const noexcept { return !prev_root_.null(); }

  // ---- mutation of V_i ----------------------------------------------------

  /// Ensures the octant exists (creating ancestors as needed) and sets its
  /// payload. Copy-on-write applies to any shared node on the path.
  void insert(const LocCode& code, const CellData& data);
  /// Updates an existing octant's payload (Fig. 4b).
  void update(const LocCode& code, const CellData& data);
  /// Removes the subtree rooted at `code` from V_i. NVBM octants still
  /// referenced by V_{i-1} are tombstoned, not freed (§3.2, Deletion).
  void remove(const LocCode& code);
  /// Splits a leaf into 8 children (children inherit data; `init` may
  /// override).
  void refine(const LocCode& leaf,
              const std::function<void(const LocCode&, CellData&)>& init =
                  nullptr);
  /// Drops all (leaf) children of `parent` in V_i, averaging their data
  /// into the parent.
  void coarsen(const LocCode& parent);

  std::size_t refine_where(
      const std::function<bool(const LocCode&, const CellData&)>& pred,
      const std::function<void(const LocCode&, CellData&)>& init = nullptr);
  std::size_t coarsen_where(
      const std::function<bool(const LocCode&, const CellData&)>& pred);
  /// 2:1 balance of V_i (ripple refinement).
  std::size_t balance();
  bool is_balanced();

  // ---- persistence & versioning -------------------------------------------

  /// pm_persistent: merge C0 into C1, make V_i durable, atomically swap the
  /// persistent root, tombstone the superseded version, optionally GC, and
  /// run the dynamic layout transformation.
  PersistStats persist();

  /// Mark-and-sweep garbage collection: frees every NVBM node unreachable
  /// from both roots AND from every pinned snapshot (epoch-based
  /// reclamation — see snapshot.hpp). Returns the number of octants
  /// reclaimed.
  std::size_t gc();

  // ---- snapshot pinning & epoch-based reclamation --------------------------

  /// Pins the latest durable version (the epoch sealed by the last
  /// persist()) and returns a refcounted handle onto it. While any handle
  /// on an epoch lives, every node reachable from that version keeps its
  /// bytes: gc() treats the pinned root as live, and tombstone marking
  /// (persist step 3, shared-subtree removal) is deferred so the mutator
  /// never writes into bytes a pinned reader may be reading. Pinning and
  /// releasing are safe from any thread; everything else on this class
  /// stays owner-thread-only. Requires has_prev_version().
  SnapshotHandle pin_snapshot();
  /// Distinct epochs currently pinned.
  std::size_t pinned_epochs() const noexcept {
    return registry_->pin_count();
  }
  /// Nodes the last gc() kept alive solely because a pinned snapshot
  /// could still reach them (0 when nothing is pinned).
  std::size_t deferred_reclaim_nodes() const noexcept {
    return deferred_nodes_;
  }
  /// Lifetime high-water mark of deferred_reclaim_nodes().
  std::size_t deferred_reclaim_high_water() const noexcept {
    return deferred_hwm_;
  }
  /// Lifetime pin / unpin totals (mirrored to pmoctree.snapshot.*).
  std::uint64_t snapshot_pins() const { return registry_->pins_taken(); }
  std::uint64_t snapshot_unpins() const {
    return registry_->pins_released();
  }
  /// Epoch of the latest durable (pinnable) version; 0 when nothing has
  /// been persisted yet. Unlike epoch(), safe from any thread — serve
  /// readers poll it to measure snapshot staleness.
  std::uint32_t snapshot_published_epoch() const {
    return registry_->published().epoch;
  }

  /// Attaches (or detaches, with nullptr) an exec pool for the persist
  /// merge. The pool is borrowed, never owned; thread count changes
  /// wall-clock only (see the determinism contract in exec/pool.hpp) —
  /// modeled counters and the persisted image are bit-identical with and
  /// without a pool. When persist() is reached from inside a pool task
  /// (cluster lanes), the merge falls back to inline execution.
  void set_exec(exec::ThreadPool* pool) noexcept { pool_ = pool; }

  /// pm_delete: frees all octants in both tiers and clears the roots.
  void destroy();

  // ---- feature-directed sampling / layout (§3.3) --------------------------

  void register_feature(FeatureFn fn) {
    features_.push_back(std::move(fn));
  }
  void clear_features() { features_.clear(); }

  /// Runs the transformation check and, when Ratio_access > T_transform,
  /// re-lays out the tree (hot NVBM subtree into DRAM, coldest C0 subtree
  /// out). Called automatically by persist(); exposed for tests/ablations.
  TransformStats maybe_transform();

  /// Feature-directed sampling census of one subtree bucket (§3.3). The
  /// persist-time merge collects these on the fly so the transformation
  /// needs no extra tree traversal.
  struct SampleBucket {
    std::vector<std::pair<LocCode, CellData>> sample;
    std::size_t size = 0;
    std::size_t dram = 0;
  };
  using SampleCensus =
      std::unordered_map<LocCode, SampleBucket, LocCodeHash>;

  /// The paper's Eq. 1 subtree level, from current depth and DRAM budget.
  int subtree_level() const noexcept;

  /// Current (possibly auto-adapted) C0 DRAM budget in bytes.
  std::size_t dram_budget() const noexcept {
    return config_.dram_budget_bytes;
  }

  // ---- accounting ----------------------------------------------------------

  PmStats stats();
  const DramCounters& dram_counters() const noexcept { return dram_; }
  const PmConfig& config() const noexcept { return config_; }
  /// Toggle for PmConfig::crash_before_flush_for_test on a live tree —
  /// crash tests persist normally first, then arm the hook for the
  /// persist they want to die inside.
  void set_crash_before_flush_for_test(bool on) noexcept {
    config_.crash_before_flush_for_test = on;
  }
  nvbm::Heap& heap() noexcept { return heap_; }
  nvbm::Device& device() noexcept { return heap_.device(); }
  std::uint32_t epoch() const noexcept { return epoch_; }
  /// Root of the working version V_i (ADDR(V_i) in the paper).
  NodeRef current_root() const noexcept { return cur_root_; }
  /// Root of the persisted version V_{i-1} (ADDR(V_{i-1})).
  NodeRef previous_root() const noexcept { return prev_root_; }
  /// Total modeled memory time (DRAM + NVBM) in nanoseconds.
  std::uint64_t modeled_ns() const;
  /// Number of C0->C1 subtree merges forced by DRAM pressure (the merge
  /// count the paper reports in the Fig. 10 DRAM-size study).
  std::size_t eviction_merges() const noexcept { return eviction_merges_; }
  /// Lifetime hit/miss/eviction/invalidation counts of the hot-node cache
  /// (all zero when config().node_cache_bytes == 0).
  const NodeCache::Stats& node_cache_stats() const noexcept {
    return cache_.stats();
  }
  /// Lifetime hit/miss counts of the linear tier's page-residency cache.
  const linear::PageCache::Stats& page_cache_stats() const noexcept {
    return page_cache_.stats();
  }
  /// Total path entries served from traversal cursors instead of fresh
  /// descends. Execution-layer telemetry: cursor reuse is modeled-charge
  /// transparent, so this moves with worker scheduling, never with the
  /// modeled counters.
  std::uint64_t cursor_reuse() const noexcept { return cursor_reuse_; }
  /// Version stamp of the leaf SET: bumped only by mutations that change
  /// which octants exist — insert-created nodes, refine, coarsen,
  /// remove. Data updates, CoW relocations, persist, GC and layout
  /// transformation leave it unchanged (they move bytes, not octants).
  /// Distinct from structure_version_, which invalidates traversal
  /// cursors and therefore must also bump on relocation. Equal stamps
  /// guarantee identical (key, level) leaf enumerations — the
  /// invalidation contract of the solve's face-neighbor index.
  std::uint64_t topology_version() const noexcept {
    return topology_version_;
  }
  void reset_counters();

  // Durable root-table slots (public for tests & crash tooling).
  static constexpr int kPrevRootSlot = 0;
  static constexpr int kEpochSlot = 1;
  /// Logical octant count of the persisted version, written (before the
  /// root swap) so restore() recovers nodes_total without a traversal.
  static constexpr int kNodeCountSlot = 2;

 private:
  PmOctree(nvbm::Heap& heap, PmConfig config);

  // node access layer ------------------------------------------------------
  PNode read_node(NodeRef ref);
  void write_node(NodeRef ref, const PNode& node);
  NodeRef alloc_node(const PNode& proto, bool prefer_dram);
  void free_node(NodeRef ref);
  void charge_dram_read();
  void charge_dram_write();
  void touch_heat(const LocCode& code, double amount);
  /// Cache-aware NVBM node read: serves hits from the hot-node cache at
  /// DRAM latency, admits misses. The descent path's only NVBM read.
  PNode nv_load(std::uint64_t offset);
  /// NVBM node store with cache write-through. Every PNode store to the
  /// device MUST go through here (or write_node) to keep the cache
  /// coherent within an epoch.
  void nv_store(std::uint64_t offset, const PNode& node);
  /// NVBM node free with cache invalidation: the offset may be handed out
  /// again by the heap within the same epoch, so the epoch stamp alone
  /// cannot protect a cached copy.
  void nv_free(std::uint64_t offset);
  /// Partial NVBM node store: writes only [field_off, field_off+len) of
  /// the node image (one child slot, the children array, the data..epoch
  /// tail), charging the device for the touched lines only. Full-node
  /// stores were the dominant write amplifier on the mutation path; every
  /// partial-store site guarantees the untouched device bytes already
  /// equal `full`'s, so the stored image is identical to a full store.
  /// The cache stays coherent via a full-node update.
  void nv_store_partial(std::uint64_t offset, std::size_t field_off,
                        std::size_t len, const PNode& full);

  // placement --------------------------------------------------------------
  LocCode subtree_id(const LocCode& code) const;
  /// Placement for brand-new octants (insert/refine children): DRAM while
  /// there is headroom, or while the octant's subtree is C0-designated
  /// (hot), matching "an octant inserted into C0 is eventually merged out
  /// to C1" (§3.2).
  bool place_new(const LocCode& code) const;
  /// True when the octant's subtree is C0-designated (hot) and the DRAM
  /// overflow ceiling is not yet hit. Used by place_new; hot subtrees may
  /// transiently exceed the plain budget.
  bool place_cow(const LocCode& code) const;
  std::size_t dram_bytes() const noexcept {
    return dram_node_count_ * sizeof(PNode);
  }
  void enforce_dram_budget();

  // structural helpers ------------------------------------------------------
  struct PathEntry {
    NodeRef ref;
    PNode node;
  };
  using Path = std::vector<PathEntry>;
  /// Traversal cursor: a copy of the last descend's root-to-node path,
  /// one per exec context (worker). A cursor is valid only while the tree
  /// is untouched (same epoch, same structure version, same root); a
  /// valid cursor lets the next descend reuse the path prefix down to the
  /// longest common ancestor of the two locational codes — computed from
  /// the codes alone — and re-read only the divergent suffix. Reuse is
  /// modeled-charge TRANSPARENT: each reused entry performs exactly the
  /// accounting (and node-cache side effects) a fresh read would, so the
  /// modeled counters stay a pure function of the per-tree op sequence no
  /// matter which worker ran which op (the exec determinism contract).
  /// What reuse saves is real work: the device/pool memcpys and child
  /// link chasing for the shared prefix.
  struct Cursor {
    Path path;
    std::uint32_t stamp = 0;     ///< epoch_ at fill time
    std::uint64_t version = 0;   ///< structure_version_ at fill time
  };
  /// This context's cursor; nullptr when the cache/cursor layer is off.
  Cursor* cursor();
  /// Descends from the V_i root to the deepest existing ancestor of
  /// `code`; fills `path` (path[0] = root). Returns true when the exact
  /// octant exists (path.back() is it). Seeds from this worker's cursor
  /// when valid.
  bool descend(const LocCode& code, Path& path);
  /// Makes path[i]'s node mutable in place (copy-on-write as needed),
  /// updating the path and parent links. Returns the (possibly new) ref.
  NodeRef make_mutable(Path& path, std::size_t i);
  /// Write-back of a leaf-data mutation along a traversal path: DRAM in
  /// place, NVBM via a data..epoch tail partial store (the code/parent/
  /// children prefix is unchanged by construction).
  void write_back_data(PathEntry& e);
  /// Write-back of a single-child-slot relink (CoW parent fix-up, remove,
  /// subtree replacement).
  void write_back_child(NodeRef ref, const PNode& node, int ci);
  /// Write-back of a children-array-only change (sibling-group creation,
  /// refine, merge/eviction relinks).
  void write_back_children(NodeRef ref, const PNode& node);
  /// Converts the whole subtree to NVBM residence (the eviction path of
  /// the merge routine: the DRAM copies are dropped).
  NodeRef nvbmify(NodeRef ref, std::size_t* moved);
  /// The persist-time merge: ensures every octant of V_i has an NVBM
  /// representative. DRAM octants get durable *twins* (reused when the
  /// octant and its subtree are unchanged since the last persist); the
  /// DRAM copies remain as the working C0. Returns the persistent ref and
  /// whether it differs from the previous version's.
  struct MergeResult {
    NodeRef wref;           ///< working-version ref (may change: NVBM
                            ///< nodes above DRAM children migrate to DRAM)
    NodeRef pref;           ///< persistent-version ref (always NVBM)
    bool changed = false;   ///< pref differs from the previous version's
  };
  /// Per-task merge context (defined in pm_octree.cpp): routes a merge
  /// task's node loads/stores, twin allocations, frees, DRAM bookkeeping
  /// and stats through task-local buffers so parallel workers share no
  /// mutable tree/device state; the coordinator replays every logged side
  /// effect in deterministic task order.
  struct MergeCtx;
  /// One level-2 merge task: its subtree root plus the pre-merge
  /// measurement (exact twin/split/alloc counts) and the deferred logs.
  struct MergeTask;
  MergeResult persist_subtree(NodeRef ref, MergeCtx& ctx);
  /// The whole merge pipeline: crown pre-walk -> parallel measure ->
  /// arena carve -> parallel merge -> deterministic replay -> sequential
  /// crown merge. Returns the root MergeResult.
  MergeResult run_merge(PersistStats& stats, std::size_t& changed);
  /// Read-only pre-merge measurement of one task subtree: exact counts of
  /// twin allocations and DRAM split slots the merge will need (mirrors
  /// persist_subtree's decisions), so arenas are carved exactly.
  void measure_subtree(NodeRef ref, MergeCtx& ctx);
  /// Mirrors persist_subtree's "will this visit recurse?" decision for
  /// the crown pre-walk (levels 0-1).
  bool merge_would_recurse(NodeRef ref);
  /// Applies one finished task's deferred side effects (coordinator).
  void replay_task(MergeTask& task, PersistStats& stats,
                   std::size_t& changed);
  /// Stamps kNodeSubtreeDirty on the DRAM prefix of path[0..i] (the
  /// mutation's ancestor chain). NVBM entries are skipped: a shared NVBM
  /// ancestor gets CoW-copied (fresh epoch) before any descendant
  /// mutation lands, and epoch == current already forces a merge visit.
  void mark_dirty_path(Path& path, std::size_t i);
  /// Standalone post-merge sampling census walk (read-only, sequential).
  /// Decoupled from the merge so pruning cannot starve the
  /// transformation's sample of clean subtrees.
  void collect_census(NodeRef ref, SampleCensus& census);
  /// Adds one octant to the sampling census (reservoir per subtree).
  void census_add(SampleCensus& census, const LocCode& code,
                  const CellData& data, bool in_dram);
  /// Transformation decision/relayout over a precollected census.
  TransformStats transform_with(SampleCensus& census);
  /// Copies/moves an NVBM subtree into DRAM (layout transformation).
  NodeRef dramify(NodeRef ref, std::size_t* moved, std::size_t node_limit);
  void collect_reachable_nvbm(NodeRef root,
                              std::unordered_set<std::uint64_t>& out);
  /// Shared DFS behind for_each_leaf_prev / for_each_leaf_snapshot.
  void for_each_leaf_from(
      NodeRef root,
      const std::function<void(const LocCode&, const CellData&)>& fn);
  /// Runs the deferred tombstone work (retired superseded roots plus
  /// individual shared-subtree removals) once the pin set is empty.
  /// Returns the number of octants marked. `new_prev` is the version the
  /// marking must never touch.
  std::size_t process_deferred_tombstones(NodeRef new_prev);
  /// Returns the number of logical octants removed from V_i (tombstoned
  /// shared subtrees are counted recursively without being freed).
  std::size_t free_subtree(NodeRef ref, bool tombstone_shared);

  // linear cold tier (DESIGN.md §11) ---------------------------------------
  /// Synthesizes a pointer-tier view of linear record `ref`: code/data
  /// from the record, children as linear refs into the same chain (via
  /// the skip walk), parent null, epoch = the chain's build epoch (always
  /// older than epoch_, so the ordinary CoW branch performs promotion).
  PNode synth_linear(NodeRef ref);
  /// Charge model for one record access on the page at `page_off`:
  /// page-cache hit = one DRAM-side cached line; miss = stream the whole
  /// page from NVBM and admit it.
  void charge_linear_page(std::uint64_t page_off);
  /// Registers a chain for page-cache invalidation + stats (idempotent).
  void note_chain(std::uint64_t chain, std::uint32_t npages);
  /// The persist-time compaction stage: walks the freshly merged durable
  /// tree (new_prev), finds maximal old pure-pointer subtrees, rewrites
  /// each as one linear chain and relinks both the durable parent and its
  /// working-tree counterpart. Runs before flush_all(), so a crash before
  /// the root swap recovers the fully pointer-tier previous version.
  void compact_clean_subtrees(NodeRef new_prev, PersistStats& stats);
  /// True when `ref`'s whole subtree is old pointer-tier NVBM (no linear
  /// refs, no DRAM, no tombstones) and small enough for one chain;
  /// accumulates the record count.
  bool compactable_subtree(NodeRef ref, std::size_t& count);
  /// DFS pre-order emission of the subtree into a chain builder.
  void build_chain_records(NodeRef ref, linear::Builder& b);
  void note_depth(int level) noexcept {
    if (level > depth_) depth_ = level;
  }

  /// Cached handles into the process-global telemetry registry, resolved
  /// once at construction so the increment paths are single relaxed
  /// atomics (no name lookup). All counters aggregate across PmOctree
  /// instances; benches delta around a run to isolate one tree.
  struct TelemetryCounters {
    telemetry::Counter* cow_copies;        ///< pmoctree.cow_copies
    telemetry::Counter* twin_reuse;        ///< pmoctree.merge.twin_reuse
    telemetry::Counter* merged_from_dram;  ///< pmoctree.merge.merged_from_dram
    telemetry::Counter* tombstoned;        ///< pmoctree.merge.tombstoned
    telemetry::Counter* evictions;         ///< pmoctree.merge.evictions
    telemetry::Counter* persists;          ///< pmoctree.persists
    telemetry::Counter* gc_sweeps;         ///< pmoctree.gc.sweeps
    telemetry::Counter* gc_freed;          ///< pmoctree.gc.freed
    telemetry::Counter* transform_runs;    ///< pmoctree.transform.runs
    telemetry::Counter* transform_moved_to_dram;
    telemetry::Counter* transform_evicted_to_nvbm;
    telemetry::Counter* cache_hits;          ///< pmoctree.cache.hits
    telemetry::Counter* cache_misses;        ///< pmoctree.cache.misses
    telemetry::Counter* cache_evictions;     ///< pmoctree.cache.evictions
    telemetry::Counter* cache_invalidations; ///< pmoctree.cache.invalidations
    telemetry::Counter* cursor_lca_reuse;    ///< pmoctree.cursor.lca_reuse
    telemetry::Counter* persist_visits;      ///< pmoctree.persist.visits
    telemetry::Counter* persist_pruned;  ///< pmoctree.persist.pruned_subtrees
    telemetry::Counter* linear_pages;        ///< pmoctree.linear.pages
    telemetry::Counter* linear_promotions;   ///< pmoctree.linear.promotions
    telemetry::Counter* linear_compactions;  ///< pmoctree.linear.compactions
  };

  // state --------------------------------------------------------------------
  nvbm::Heap& heap_;
  PmConfig config_;
  TelemetryCounters tm_;

  std::deque<PNode> dram_pool_;
  std::vector<PNode*> dram_free_;
  std::size_t dram_node_count_ = 0;
  /// Durable twin (NVBM offset) of each DRAM octant, recorded at the last
  /// persist. A DRAM node whose epoch is older than the current one and
  /// whose children's persistent refs are unchanged reuses its twin —
  /// that is how C0 octants participate in version sharing (Fig. 2).
  std::unordered_map<const PNode*, std::uint64_t> twins_;

  NodeRef cur_root_;
  NodeRef prev_root_;
  /// Pin table shared with every SnapshotHandle (shared_ptr so handles
  /// survive tree moves). The ONLY tree state reader threads may touch.
  std::shared_ptr<SnapshotRegistry> registry_;
  /// Superseded roots whose tombstone pass was deferred because snapshot
  /// pins were live at persist time: (epoch that sealed them, root).
  /// Drained by the next pin-free persist; cleared by gc() (reachability
  /// subsumes tombstone marking).
  std::vector<std::pair<std::uint32_t, NodeRef>> retired_roots_;
  /// Shared-node tombstones deferred by remove()/coarsen() while pins
  /// were live. Offsets stay valid until the next gc(), which clears the
  /// list — only gc() ever frees shared nodes.
  std::vector<std::uint64_t> deferred_tombstones_;
  std::size_t deferred_nodes_ = 0;  ///< kept alive only by pins, last gc
  std::size_t deferred_hwm_ = 0;
  std::uint32_t epoch_ = 1;
  int depth_ = 0;
  /// Logical octant count of V_i, maintained incrementally by every
  /// structural mutation (insert/refine add, remove/coarsen subtract).
  /// This is what PersistStats::nodes_total reports — the merge no longer
  /// traverses the whole tree, so it cannot count.
  std::size_t logical_nodes_ = 0;
  /// Borrowed exec pool for the persist merge; nullptr = inline.
  exec::ThreadPool* pool_ = nullptr;

  std::vector<FeatureFn> features_;
  /// Access heat per subtree id (decayed at each persist).
  std::unordered_map<LocCode, double, LocCodeHash> heat_;
  /// Subtree ids currently designated DRAM-resident (the C0 set).
  std::unordered_set<LocCode, LocCodeHash> c0_set_;

  /// Hot-node cache over NVBM-resident octants (empty when
  /// node_cache_bytes == 0); see node_cache.hpp for the coherence rules.
  NodeCache cache_;
  /// Page-residency cache of the linear cold tier (charge model only;
  /// chain bytes are immutable). Empty when page_cache_bytes == 0.
  linear::PageCache page_cache_;
  /// Every chain seen by this tree: payload offset -> page count. Feeds
  /// GC's page-cache invalidation and stats(); rebuilt lazily after
  /// restore() as chains are first touched.
  std::unordered_map<std::uint64_t, std::uint32_t> chains_;
  /// Per-exec-context traversal cursors, grown on demand. Safe without
  /// locks: a PmOctree is confined to one logical owner at a time (see
  /// the Device thread-compatibility note), so cursor slots are never
  /// touched concurrently.
  std::vector<Cursor> cursors_;
  /// Bumped by every mutation of tree storage (node writes, allocations,
  /// frees, merges, transforms); cursors snapshot it and self-invalidate
  /// when it moves.
  std::uint64_t structure_version_ = 0;
  /// Leaf-SET stamp (see topology_version()); a strict subset of
  /// structure_version_'s triggers.
  std::uint64_t topology_version_ = 0;
  std::uint64_t cursor_reuse_ = 0;

  DramCounters dram_;
  std::size_t eviction_merges_ = 0;
  /// Access totals at the last auto-budget adjustment.
  std::uint64_t auto_last_dram_ = 0;
  std::uint64_t auto_last_nvbm_ = 0;
  mutable Rng rng_{0xfeedc0de};
};

}  // namespace pmo::pmoctree
