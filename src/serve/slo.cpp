#include "serve/slo.hpp"

#include <algorithm>

#include "telemetry/trace.hpp"

namespace pmo::serve {

SloTracker::SloTracker(telemetry::Registry& reg, SloConfig cfg)
    : reg_(reg), cfg_(std::move(cfg)) {
  budget_ = cfg_.error_budget > 0.0 ? cfg_.error_budget
                                    : 1.0 - cfg_.objective_quantile;
  if (budget_ <= 0.0) budget_ = 0.01;
  slow_ns_ = cfg_.slow_query_ns != 0 ? cfg_.slow_query_ns
                                     : 4 * cfg_.latency_objective_ns;
  violations_counter_ = &reg_.counter(cfg_.metric_prefix + ".violations");
  budget_gauge_ = &reg_.gauge(cfg_.metric_prefix + ".budget_remaining");
  burn_gauge_ = &reg_.gauge(cfg_.metric_prefix + ".burn_rate");
  p_gauge_ = &reg_.gauge(cfg_.metric_prefix + ".p_ns");
  budget_gauge_->set(1.0);
}

void SloTracker::observe(std::uint32_t lane, std::string_view kind,
                         std::uint64_t begin_session_ns,
                         std::uint64_t dur_ns, const ReadCharges& charges,
                         std::uint64_t staleness) {
  total_.fetch_add(1, std::memory_order_relaxed);
  if (dur_ns > cfg_.latency_objective_ns) {
    violations_.fetch_add(1, std::memory_order_relaxed);
    violations_counter_->add(1);
  }
  if (dur_ns < slow_ns_) return;

  tail_sampled_.fetch_add(1, std::memory_order_relaxed);
  namespace trace = telemetry::trace;
  if (trace::active()) {
    // Retroactive tail sample: the slice pair lands on the READER
    // LANE's track with the timestamps captured around the query, so it
    // nests inside the lane's serve.batch span. Charge breakdown rides
    // as args on the begin event (Chrome merges B/E args per slice).
    const std::string name = "serve.slow." + std::string(kind);
    trace::TraceEvent b;
    b.type = trace::EventType::kBegin;
    b.pid = trace::kServeReaderPidBase + lane;
    b.tid = 0;
    b.ts_ns = begin_session_ns;
    b.name = name;
    b.cat = "slo";
    b.args = {{"dur_ns", static_cast<double>(dur_ns)},
              {"node_loads", static_cast<double>(charges.node_loads)},
              {"cached_loads", static_cast<double>(charges.cached_loads)},
              {"lines_read", static_cast<double>(charges.lines_read)},
              {"modeled_ns", static_cast<double>(charges.modeled_ns)},
              {"staleness", static_cast<double>(staleness)}};
    trace::emit(std::move(b));
    trace::TraceEvent e;
    e.type = trace::EventType::kEnd;
    e.pid = trace::kServeReaderPidBase + lane;
    e.tid = 0;
    e.ts_ns = begin_session_ns + dur_ns;
    e.name = name;
    e.cat = "slo";
    trace::emit(std::move(e));
  }

  if (cfg_.slow_log_capacity == 0) return;
  SlowQuery q;
  q.begin_ns = begin_session_ns;
  q.dur_ns = dur_ns;
  q.staleness = staleness;
  q.lane = lane;
  q.kind = std::string(kind);
  q.charges = charges;
  std::lock_guard lk(slow_mu_);
  // Keep-the-worst, ascending by duration: slow_[0] is the cheapest
  // retained entry and the eviction victim.
  const auto pos = std::lower_bound(
      slow_.begin(), slow_.end(), q.dur_ns,
      [](const SlowQuery& a, std::uint64_t d) { return a.dur_ns < d; });
  if (slow_.size() < cfg_.slow_log_capacity) {
    slow_.insert(pos, std::move(q));
  } else if (pos != slow_.begin()) {
    slow_.erase(slow_.begin());
    // pos may have shifted by the erase; recompute.
    const auto p2 = std::lower_bound(
        slow_.begin(), slow_.end(), q.dur_ns,
        [](const SlowQuery& a, std::uint64_t d) { return a.dur_ns < d; });
    slow_.insert(p2, std::move(q));
  }
}

double SloTracker::budget_remaining() const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 1.0;
  const double frac =
      static_cast<double>(violations()) / static_cast<double>(n);
  return 1.0 - frac / budget_;
}

void SloTracker::tick() {
  ++ticks_;
  const std::uint64_t n = total();
  const std::uint64_t v = violations();
  const std::uint64_t dn = n - prev_total_;
  const std::uint64_t dv = v - prev_violations_;
  prev_total_ = n;
  prev_violations_ = v;
  // Burn rate of this window: violating fraction relative to the
  // budget. 1.0 = spending exactly at the allowed rate.
  burn_rate_ = dn == 0 ? 0.0
                       : (static_cast<double>(dv) /
                          static_cast<double>(dn)) /
                             budget_;
  burn_gauge_->set(burn_rate_);
  budget_gauge_->set(budget_remaining());
  // Re-read the latency histogram and republish the interpolated
  // objective quantile — the number the objective is phrased against.
  last_p_ns_ = reg_.histogram(cfg_.latency_metric)
                   .percentile(cfg_.objective_quantile);
  p_gauge_->set(static_cast<double>(last_p_ns_));
}

std::vector<SlowQuery> SloTracker::slow_queries() const {
  std::lock_guard lk(slow_mu_);
  std::vector<SlowQuery> out(slow_.rbegin(), slow_.rend());  // worst first
  return out;
}

telemetry::json::Value SloTracker::to_json() const {
  namespace json = telemetry::json;
  auto root = json::Value::object();
  auto obj = json::Value::object();
  obj["quantile"] = cfg_.objective_quantile;
  obj["latency_ns"] = cfg_.latency_objective_ns;
  obj["error_budget"] = budget_;
  obj["slow_query_ns"] = slow_ns_;
  root["objective"] = std::move(obj);
  const std::uint64_t n = total();
  const std::uint64_t v = violations();
  root["total"] = n;
  root["violations"] = v;
  root["violation_fraction"] =
      n == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(n);
  root["budget_remaining"] = budget_remaining();
  root["burn_rate"] = burn_rate_;
  root["p_ns"] = last_p_ns_;
  root["ticks"] = ticks_;
  root["tail_sampled"] = tail_sampled();
  auto slow = json::Value::array();
  for (const SlowQuery& q : slow_queries()) {
    auto one = json::Value::object();
    one["lane"] = q.lane;
    one["kind"] = q.kind;
    one["begin_ns"] = q.begin_ns;
    one["dur_ns"] = q.dur_ns;
    one["staleness"] = q.staleness;
    auto ch = json::Value::object();
    ch["node_loads"] = q.charges.node_loads;
    ch["cached_loads"] = q.charges.cached_loads;
    ch["lines_read"] = q.charges.lines_read;
    ch["modeled_ns"] = q.charges.modeled_ns;
    one["charges"] = std::move(ch);
    slow.push_back(std::move(one));
  }
  root["slow_queries"] = std::move(slow);
  return root;
}

}  // namespace pmo::serve
