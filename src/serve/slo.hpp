// Serving SLO tracker: latency objectives, error-budget accounting, and
// tail-based slow-query trace sampling for the src/serve read path.
//
// The SLO formulation is the standard one: an objective "p99 <= N us"
// is equivalently "at most 1% of queries may exceed N us", and that
// allowed fraction is the ERROR BUDGET. observe() classifies every
// query against the latency objective; tick() (called from the pacing
// loop, once per mutator step in bench_serve) turns the running totals
// into a windowed burn rate — how fast the budget is being spent right
// now, 1.0 = exactly at budget — and publishes the
// serve.slo.{violations,budget_remaining,burn_rate} counter/gauge trio
// so the MetricSampler can record SLO trajectories like any other
// metric. tick() also reads the serve.query_ns log2 histogram back from
// the registry and republishes its *interpolated* objective quantile
// (serve.slo.p_ns) — the quantity the objective is written against.
//
// Tail-based sampling: most queries are cheap and tracing every one
// would swamp the ring buffers, but the outliers are exactly what a
// latency investigation needs. Queries over the slow-query threshold
// retroactively emit a begin/end slice pair on the READER LANE's trace
// track (trace::kServeReaderPidBase + lane) with the query's modeled
// charge breakdown as args — the timestamps were captured around the
// query, so the slice lands inside the lane's serve.batch span and the
// exported trace explains every outlier while staying small. A bounded
// keep-the-worst log of the same queries is exported in to_json() for
// JSON-only runs.
//
// Thread-safety: observe() is called concurrently from every reader
// lane (atomics + a mutex-guarded slow log); tick() has a single-caller
// contract (the pacing/mutator thread); to_json() is for after the
// lanes quiesce but locks defensively.
//
// Under PMO_TELEMETRY=OFF the registry publishes and trace emission
// compile to no-ops, but classification keeps working — durations come
// from the caller's clock, so the slo JSON block stays populated.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/reader.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo::serve {

struct SloConfig {
  /// The latency objective: at most `error_budget` of queries may take
  /// longer than this.
  std::uint64_t latency_objective_ns = 200'000;  // 200 us
  /// Quantile the objective is phrased against (reporting only).
  double objective_quantile = 0.99;
  /// Allowed violating fraction; 0 derives 1 - objective_quantile.
  double error_budget = 0.0;
  /// Tail-sampling threshold: queries at or over this duration emit
  /// trace events and enter the slow log. 0 derives 4x the objective.
  std::uint64_t slow_query_ns = 0;
  /// Keep-the-worst slow log size (0 disables the log, not the trace
  /// sampling).
  std::size_t slow_log_capacity = 32;
  /// Histogram the objective quantile is re-read from at tick().
  std::string latency_metric = "serve.query_ns";
  /// Prefix for the published counter/gauges.
  std::string metric_prefix = "serve.slo";
};

/// One tail-sampled query, as retained by the slow log.
struct SlowQuery {
  std::uint64_t begin_ns = 0;  ///< session-relative (trace::now_ns)
  std::uint64_t dur_ns = 0;
  std::uint64_t staleness = 0;  ///< epochs behind durable head at pin
  std::uint32_t lane = 0;
  std::string kind;  ///< point | box | neighbors | interface
  ReadCharges charges;  ///< this query's charge delta
};

class SloTracker {
 public:
  explicit SloTracker(telemetry::Registry& reg, SloConfig cfg = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Classifies one finished query. `begin_session_ns` is
  /// trace::now_ns() captured before the query (0 is fine when no trace
  /// session is active); `charges` is the query's own charge delta.
  /// Emits the retroactive trace slice on the lane's pid when the query
  /// is slow and a trace session is recording.
  void observe(std::uint32_t lane, std::string_view kind,
               std::uint64_t begin_session_ns, std::uint64_t dur_ns,
               const ReadCharges& charges, std::uint64_t staleness);

  /// Windowed roll-up: burn rate over the queries observed since the
  /// last tick, cumulative budget remaining, republished gauges, and
  /// the interpolated objective quantile re-read from the latency
  /// histogram. Single-caller contract (the pacing loop).
  void tick();

  // ---- accessors (tests / bench table) -------------------------------------
  std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }
  std::uint64_t tail_sampled() const noexcept {
    return tail_sampled_.load(std::memory_order_relaxed);
  }
  /// 1 - (violation fraction / budget); 1 = untouched budget, 0 =
  /// exhausted, negative = blown.
  double budget_remaining() const noexcept;
  /// Burn rate of the last tick() window (1.0 = spending exactly at
  /// budget).
  double burn_rate() const noexcept { return burn_rate_; }
  double error_budget() const noexcept { return budget_; }
  std::uint64_t slow_threshold_ns() const noexcept { return slow_ns_; }
  std::uint64_t ticks() const noexcept { return ticks_; }

  /// Retained slow queries, worst first.
  std::vector<SlowQuery> slow_queries() const;

  /// {objective: {...}, total, violations, violation_fraction,
  ///  budget_remaining, burn_rate, p_ns, ticks, tail_sampled,
  ///  slow_queries: [...]}.
  telemetry::json::Value to_json() const;

 private:
  telemetry::Registry& reg_;
  SloConfig cfg_;
  double budget_;          ///< resolved error budget (fraction)
  std::uint64_t slow_ns_;  ///< resolved tail-sampling threshold

  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> tail_sampled_{0};

  // tick()-only state (single caller).
  std::uint64_t ticks_ = 0;
  std::uint64_t prev_total_ = 0;
  std::uint64_t prev_violations_ = 0;
  double burn_rate_ = 0.0;
  std::uint64_t last_p_ns_ = 0;

  telemetry::Counter* violations_counter_;
  telemetry::Gauge* budget_gauge_;
  telemetry::Gauge* burn_gauge_;
  telemetry::Gauge* p_gauge_;

  mutable std::mutex slow_mu_;
  std::vector<SlowQuery> slow_;  ///< keep-the-worst, ascending by dur
};

}  // namespace pmo::serve
