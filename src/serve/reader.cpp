#include "serve/reader.hpp"

#include <cstring>
#include <utility>

#include "nvbm/device.hpp"

namespace pmo::serve {

namespace {
constexpr std::size_t kNodeSize = sizeof(pmoctree::PNode);

/// -x,+x,-y,+y,-z,+z — the face order every neighbor API here reports.
constexpr int kFaceDirs[6][3] = {{-1, 0, 0}, {1, 0, 0},  {0, -1, 0},
                                 {0, 1, 0},  {0, 0, -1}, {0, 0, 1}};

/// The 1-cell-thick (finest-grid) slab adjacent to face `f` of `code`:
/// the exact region every face neighbor — same size, coarser, or finer —
/// must intersect. False when the face lies on the domain boundary.
bool face_slab(const LocCode& code, int f, Box& out) noexcept {
  const Anchor a = code.anchor();
  const std::uint32_t e = code.extent();
  const std::uint32_t max = (std::uint32_t{1} << kMaxLevel) - 1;
  const std::uint32_t av[3] = {a.x, a.y, a.z};
  for (int ax = 0; ax < 3; ++ax) {
    const int d = kFaceDirs[f][ax];
    if (d == 0) {
      out.lo[ax] = av[ax];
      out.hi[ax] = av[ax] + e - 1;
    } else if (d < 0) {
      if (av[ax] == 0) return false;
      out.lo[ax] = out.hi[ax] = av[ax] - 1;
    } else {
      if (av[ax] + e > max) return false;
      out.lo[ax] = out.hi[ax] = av[ax] + e;
    }
  }
  return true;
}
}  // namespace

Reader::Reader(pmoctree::SnapshotHandle snap, ReaderConfig cfg)
    : snap_(std::move(snap)),
      cache_(cfg.cache_bytes),
      page_cache_(cfg.page_cache_bytes) {
  PMO_CHECK_MSG(snap_.valid(),
                "serve::Reader requires a valid (pinned) SnapshotHandle");
  const auto& dc = snap_.device().config();
  const bool timed = dc.latency_mode != nvbm::LatencyMode::kNone;
  read_ns_ = timed ? dc.read_ns : 0;
  dram_read_ns_ = timed ? dc.dram_read_ns : 0;
  lines_per_node_ = (kNodeSize + dc.cache_line - 1) / dc.cache_line;
  lines_per_page_ =
      (pmoctree::linear::kPageBytes + dc.cache_line - 1) / dc.cache_line;
  auto& reg = telemetry::Registry::global();
  q_point_ = &reg.counter("serve.queries.point");
  q_box_ = &reg.counter("serve.queries.box");
  q_neighbors_ = &reg.counter("serve.queries.neighbors");
  q_interface_ = &reg.counter("serve.queries.interface");
}

void Reader::rebind(pmoctree::SnapshotHandle snap) {
  PMO_CHECK_MSG(snap.valid(), "serve::Reader rebind to a released handle");
  // The private cache survives: entries are stamped with the epoch they
  // were read under, so anything from the previous snapshot misses and
  // gets re-read. Offsets reused by the heap after an unpin+gc can only
  // carry a NEWER epoch's node, never a stale stamp hit.
  snap_ = std::move(snap);
}

void Reader::count_query(telemetry::Counter* c) {
  ++queries_;
  if (c != nullptr) c->add();
}

pmoctree::PNode Reader::load(std::uint64_t offset) {
  const std::uint32_t stamp = snap_.epoch();
  if (cache_.capacity() != 0) {
    if (const pmoctree::PNode* hit = cache_.lookup(offset, stamp)) {
      ++charges_.cached_loads;
      charges_.modeled_ns += lines_per_node_ * dram_read_ns_;
      return *hit;
    }
  }
  pmoctree::PNode node;
  // Device::raw is a bounds check + pointer: no counter mutation, so the
  // concurrent-reader contract holds. The pin guarantees the mutator
  // never writes these bytes, making the memcpy race-free.
  std::memcpy(&node, snap_.device().raw(offset, kNodeSize), kNodeSize);
  ++charges_.node_loads;
  // Charged per-node, not per physical offset: lines_of(offset) depends
  // on the allocation's alignment, and heap layout legitimately diverges
  // between runs (GC timing vs live pins). The fixed ceil(node/line)
  // charge keeps reader accounting a pure function of the query stream —
  // the bench's bit-identity surface.
  charges_.lines_read += lines_per_node_;
  charges_.modeled_ns += lines_per_node_ * read_ns_;
  if (cache_.capacity() != 0) cache_.insert(offset, node, stamp);
  return node;
}

void Reader::charge_page(std::uint64_t page_off) {
  if (page_cache_.touch(page_off)) {
    // Resident page: one DRAM-side line, same as a node-cache hit.
    ++charges_.cached_loads;
    charges_.modeled_ns += dram_read_ns_;
    return;
  }
  ++charges_.page_loads;
  charges_.lines_read += lines_per_page_;
  charges_.modeled_ns += lines_per_page_ * read_ns_;
}

pmoctree::PNode Reader::load_linear(pmoctree::NodeRef ref) {
  namespace lin = pmoctree::linear;
  const std::uint64_t chain = ref.linear_chain();
  const std::uint32_t r = ref.linear_index();
  // ChainView reads through Device::raw only (no counter mutation), so
  // the concurrent-reader contract holds; the pin keeps the chain bytes
  // immutable for the memcpy, exactly as with pointer-tier nodes.
  lin::ChainView view(snap_.device(), chain);
  charge_page(lin::page_offset(chain, r));
  pmoctree::PNode node{};
  node.code = view.code(r);
  node.data = view.data(r);
  node.epoch = view.epoch();
  const std::uint8_t m = view.mask(r);
  std::uint32_t c = r + 1;
  std::uint64_t probed = lin::page_offset(chain, r);
  for (int j = 0; j < 8; ++j) {
    if ((m & (1u << j)) == 0) continue;
    node.set_child(j, pmoctree::NodeRef::linear(chain, c));
    // Skip probes that land on a later page charge each new page once.
    const std::uint64_t p = lin::page_offset(chain, c);
    if (p != probed) {
      charge_page(p);
      probed = p;
    }
    c += view.skip(c);
  }
  return node;
}

pmoctree::PNode Reader::load_ref(pmoctree::NodeRef ref) {
  PMO_DCHECK(!ref.null());
  if (ref.in_linear()) return load_linear(ref);
  return load(ref.nvbm_offset());
}

pmoctree::PNode Reader::root() { return load(snap_.root_offset()); }

Leaf Reader::locate(const LocCode& code) {
  count_query(q_point_);
  pmoctree::PNode node = root();
  while (!node.is_leaf() && node.code.level() < code.level()) {
    const LocCode next = code.ancestor_at(node.code.level() + 1);
    const pmoctree::NodeRef c = node.child_ref(next.child_index());
    if (c.null()) break;  // partial sibling group: this node covers code
    node = load_ref(c);
  }
  return {node.code, node.data};
}

std::optional<CellData> Reader::find(const LocCode& code) {
  count_query(q_point_);
  pmoctree::PNode node = root();
  while (node.code.level() < code.level()) {
    if (node.is_leaf()) return std::nullopt;
    const LocCode next = code.ancestor_at(node.code.level() + 1);
    const pmoctree::NodeRef c = node.child_ref(next.child_index());
    if (c.null()) return std::nullopt;
    node = load_ref(c);
  }
  if (node.code == code) return node.data;
  return std::nullopt;
}

std::size_t Reader::query_box(const Box& box,
                              const std::function<void(const Leaf&)>& fn) {
  count_query(q_box_);
  return box_walk(box, fn);
}

std::size_t Reader::box_walk(const Box& box,
                             const std::function<void(const Leaf&)>& fn) {
  std::size_t n = 0;
  if (!box.intersects(Anchor{}, std::uint32_t{1} << kMaxLevel)) return 0;
  std::vector<pmoctree::NodeRef> stack{
      pmoctree::NodeRef::nvbm(snap_.root_offset())};
  while (!stack.empty()) {
    const pmoctree::NodeRef ref = stack.back();
    stack.pop_back();
    const pmoctree::PNode node = load_ref(ref);
    if (node.is_leaf()) {
      fn(Leaf{node.code, node.data});
      ++n;
      continue;
    }
    // Children are pruned by their (computable) codes before loading, in
    // reverse so the pop order is Morton pre-order — deterministic. For
    // linear children the push is a skip jump: a pruned record range is
    // never touched (and never charged).
    for (int i = kChildrenPerNode - 1; i >= 0; --i) {
      const pmoctree::NodeRef c = node.child_ref(i);
      if (c.null()) continue;
      const LocCode cc = node.code.child(i);
      if (box.intersects(cc.anchor(), cc.extent())) stack.push_back(c);
    }
  }
  return n;
}

std::size_t Reader::face_neighbors(
    const LocCode& leaf, const std::function<void(const Leaf&)>& fn) {
  count_query(q_neighbors_);
  std::size_t n = 0;
  for (int f = 0; f < 6; ++f) {
    Box slab;
    if (!face_slab(leaf, f, slab)) continue;
    n += box_walk(slab, fn);
  }
  return n;
}

std::size_t Reader::interface_facets(
    const Box& box, const std::function<void(const InterfaceFacet&)>& fn) {
  count_query(q_interface_);
  std::vector<Leaf> leaves;
  box_walk(box, [&](const Leaf& l) { leaves.push_back(l); });
  std::size_t n = 0;
  for (const Leaf& l : leaves) {
    for (int f = 0; f < 6; ++f) {
      Box slab;
      if (!face_slab(l.code, f, slab)) continue;
      box_walk(slab, [&](const Leaf& nb) {
        // Reported from the fine side only, so each facet appears once.
        if (nb.code.level() < l.code.level()) {
          fn(InterfaceFacet{l, nb, f});
          ++n;
        }
      });
    }
  }
  return n;
}

}  // namespace pmo::serve
