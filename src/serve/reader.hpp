// Read-only query engine over pinned PM-octree snapshots (src/serve).
//
// Every persisted version V_{i-1} is an immutable NVBM-resident octree;
// a SnapshotHandle (pmoctree/snapshot.hpp) pins one so its bytes cannot
// be freed, tombstoned, or reused while readers traverse it. This layer
// is what runs ON those pinned bytes: point lookup, region/box query,
// face-neighbor find, and coarse/fine interface extraction — the
// post-hoc tree-extraction analysis pattern — executing concurrently
// with the droplet mutator on the exec::ThreadPool.
//
// Concurrency model. A Reader owns ALL of its traversal state:
//  * a PRIVATE NodeCache (the shared tree cache mutates on read — clock
//    ref bits — and is single-owner by contract; see node_cache.hpp);
//  * local ReadCharges instead of the Device counter struct. The Device's
//    read()/touch_read() paths mutate shared counters, so readers load
//    nodes via Device::raw() (a bounds-checked pointer, no mutation) and
//    model the charge locally, exactly like the persist merge's deferred
//    accounting. Pinned bytes are never written by the mutator, so the
//    concurrent memcpy is race-free by construction.
// One Reader is one logical lane: it is itself single-owner (sequential
// hand-off between threads is fine, concurrent entry is not — the debug
// cache guard fires). Run N concurrent readers as N Readers.
//
// Determinism. Results are pure functions of (snapshot, query): byte
// identical across thread counts and runs. Charges are a pure function
// of the reader's query SEQUENCE (the private cache carries state across
// queries), so fixed per-lane query streams — the bench's verification
// sweep — yield bit-identical charges for --threads 1 and 8.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/morton.hpp"
#include "octree/cell_data.hpp"
#include "pmoctree/linear_tier.hpp"
#include "pmoctree/node.hpp"
#include "pmoctree/node_cache.hpp"
#include "pmoctree/snapshot.hpp"

namespace pmo::serve {

/// Inclusive axis-aligned box on the finest (level kMaxLevel) grid.
struct Box {
  std::uint32_t lo[3] = {0, 0, 0};
  std::uint32_t hi[3] = {0, 0, 0};

  bool intersects(const Anchor& a, std::uint32_t extent) const noexcept {
    return a.x <= hi[0] && a.x + extent - 1 >= lo[0] &&  //
           a.y <= hi[1] && a.y + extent - 1 >= lo[1] &&  //
           a.z <= hi[2] && a.z + extent - 1 >= lo[2];
  }
};

/// One result cell: the leaf octant and its payload.
struct Leaf {
  LocCode code;
  CellData data;
};

/// A coarse/fine interface facet: a fine leaf and its coarser face
/// neighbor, plus the face of the fine leaf it sits on (0..5 encoding
/// -x,+x,-y,+y,-z,+z).
struct InterfaceFacet {
  Leaf fine;
  Leaf coarse;
  int face = 0;
};

/// Locally modeled NVBM read traffic of one reader (the serve analog of
/// the Device counter struct; merged by the bench in lane order).
struct ReadCharges {
  std::uint64_t node_loads = 0;    ///< NVBM PNode reads (cache misses)
  std::uint64_t cached_loads = 0;  ///< private-cache hits (DRAM latency)
  std::uint64_t page_loads = 0;    ///< linear-tier page streams (misses)
  std::uint64_t lines_read = 0;    ///< NVBM cache lines fetched
  std::uint64_t modeled_ns = 0;    ///< modeled read time, NVBM + cached

  void merge(const ReadCharges& o) noexcept {
    node_loads += o.node_loads;
    cached_loads += o.cached_loads;
    page_loads += o.page_loads;
    lines_read += o.lines_read;
    modeled_ns += o.modeled_ns;
  }
};

struct ReaderConfig {
  /// Private node-cache budget (0 disables caching for this reader).
  std::size_t cache_bytes = std::size_t{256} << 10;
  /// Private linear-tier page-residency budget (same single-owner model
  /// as the node cache: a record on a resident page is a DRAM-side hit,
  /// a miss streams the whole page). 0 = every record pays the stream.
  std::size_t page_cache_bytes = std::size_t{256} << 10;
};

class Reader {
 public:
  /// Binds to a pinned snapshot. The handle is copied (refcount +1), so
  /// the pin outlives the caller's handle while the Reader is alive.
  explicit Reader(pmoctree::SnapshotHandle snap, ReaderConfig cfg = {});

  /// Re-targets the reader at a newer (or any other) pinned snapshot,
  /// keeping the private cache: entries are epoch-stamped, so stale ones
  /// die naturally on lookup. Charges keep accumulating.
  void rebind(pmoctree::SnapshotHandle snap);

  const pmoctree::SnapshotHandle& snapshot() const noexcept { return snap_; }

  // ---- queries -------------------------------------------------------------

  /// Leaf whose volume contains `code` (point lookup by locational
  /// code). Descends at most code.level() levels.
  Leaf locate(const LocCode& code);
  /// Exact-octant lookup; nullopt when the octant does not exist in the
  /// snapshot.
  std::optional<CellData> find(const LocCode& code);
  /// Visits every leaf intersecting `box` in Morton (pre-)order; returns
  /// the leaf count.
  std::size_t query_box(const Box& box,
                        const std::function<void(const Leaf&)>& fn);
  /// Visits every leaf sharing a face with `leaf` (same size, coarser,
  /// or finer), faces in -x,+x,-y,+y,-z,+z order; returns the count.
  std::size_t face_neighbors(const LocCode& leaf,
                             const std::function<void(const Leaf&)>& fn);
  /// Extracts the coarse/fine interface inside `box`: every (fine leaf,
  /// coarser face neighbor) pair, each reported exactly once, from the
  /// fine side. Returns the facet count.
  std::size_t interface_facets(
      const Box& box, const std::function<void(const InterfaceFacet&)>& fn);

  // ---- accounting ----------------------------------------------------------

  const ReadCharges& charges() const noexcept { return charges_; }
  const pmoctree::NodeCache::Stats& cache_stats() const noexcept {
    return cache_.stats();
  }
  std::uint64_t queries() const noexcept { return queries_; }

 private:
  pmoctree::PNode load(std::uint64_t offset);
  /// Dispatch on the ref's tier: pointer-tier PNode load or linear-tier
  /// record synthesis (never called with a DRAM ref — snapshots are
  /// fully durable).
  pmoctree::PNode load_ref(pmoctree::NodeRef ref);
  /// Synthesizes a PNode view of linear record `ref` (children become
  /// linear refs into the same chain via the skip walk), charging the
  /// private page model per distinct page touched.
  pmoctree::PNode load_linear(pmoctree::NodeRef ref);
  void charge_page(std::uint64_t page_off);
  pmoctree::PNode root();
  void count_query(telemetry::Counter* c);
  /// Uncounted box DFS shared by query_box / neighbors / interface.
  std::size_t box_walk(const Box& box,
                       const std::function<void(const Leaf&)>& fn);

  pmoctree::SnapshotHandle snap_;
  pmoctree::NodeCache cache_;
  pmoctree::linear::PageCache page_cache_;
  ReadCharges charges_;
  std::uint64_t queries_ = 0;
  std::uint64_t read_ns_ = 0;       ///< device NVBM per-line read latency
  std::uint64_t dram_read_ns_ = 0;  ///< device DRAM per-line read latency
  std::size_t lines_per_node_ = 0;
  std::size_t lines_per_page_ = 0;
  /// serve.queries.{point,box,neighbors,interface} — process-global,
  /// thread-safe relaxed adds, resolved once per Reader.
  telemetry::Counter* q_point_ = nullptr;
  telemetry::Counter* q_box_ = nullptr;
  telemetry::Counter* q_neighbors_ = nullptr;
  telemetry::Counter* q_interface_ = nullptr;
};

}  // namespace pmo::serve
