// Gerris integration layer (§4).
//
// Gerris organizes its mesh as a fully-threaded tree (FTT) and reaches it
// through the ftt_cell_* functions; persistence goes through
// gfs_simulation_read()/gfs_output_write(). The paper integrates PM-octree
// by implementing these entry points on top of the PM-octree library so
// the flow solver's code is unchanged. This header reproduces that
// integration surface — C-flavoured handle types and free functions that
// Gerris-style solver code can call, delegating to pmoctree::PmOctree.
//
// The handles are value types addressing octants by locational code, so
// they stay valid across the copy-on-write relocations PM-octree performs
// internally — exactly the "users are freed from persistent pointer
// management" property the paper advertises.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "pmoctree/api.hpp"

namespace pmo::gfs {

/// Gerris face/neighbor directions.
enum FttDirection {
  FTT_RIGHT = 0,  // +x
  FTT_LEFT,       // -x
  FTT_TOP,        // +y
  FTT_BOTTOM,     // -y
  FTT_FRONT,      // +z
  FTT_BACK,       // -z
  FTT_NEIGHBORS
};

/// Traversal orders supported by ftt_cell_traverse.
enum FttTraverseType {
  FTT_PRE_ORDER,
  FTT_POST_ORDER,  // treated as pre-order over this shim
};

/// Traversal filters.
enum FttTraverseFlags {
  FTT_TRAVERSE_ALL = 0,
  FTT_TRAVERSE_LEAFS = 1,
  FTT_TRAVERSE_NON_LEAFS = 2,
};

class GfsSimulation;

/// A Gerris cell handle: tree + locational code. Trivially copyable.
struct FttCell {
  pmoctree::PmOctree* tree = nullptr;
  LocCode code;

  bool valid() const noexcept { return tree != nullptr; }
};

using FttCellTraverseFunc = std::function<void(FttCell&, CellData&)>;
using FttCellInitFunc = std::function<void(FttCell&, CellData&)>;
using FttCellRefineFunc = std::function<bool(const FttCell&,
                                             const CellData&)>;

// ---- cell geometry ---------------------------------------------------------

int ftt_cell_level(const FttCell& cell);
/// Cell size relative to the unit root domain (Gerris' ftt_cell_size).
double ftt_cell_size(const FttCell& cell);
/// Cell center position in the unit domain.
void ftt_cell_pos(const FttCell& cell, double* x, double* y, double* z);
bool ftt_cell_is_leaf(const FttCell& cell);
bool ftt_cell_is_root(const FttCell& cell);

// ---- cell data -------------------------------------------------------------

CellData ftt_cell_data(const FttCell& cell);
void ftt_cell_set_data(const FttCell& cell, const CellData& data);

// ---- structure -------------------------------------------------------------

/// Root cell of the simulation domain.
FttCell ftt_cell_root(pmoctree::PmOctree& tree);
FttCell ftt_cell_parent(const FttCell& cell);
FttCell ftt_cell_child(const FttCell& cell, int index);
/// Face neighbor (same or coarser). Invalid handle at the boundary.
FttCell ftt_cell_neighbor(const FttCell& cell, FttDirection d);

/// Splits a leaf; `init` initializes each child (§4: ftt_cell_refine).
void ftt_cell_refine(FttCell& cell, const FttCellInitFunc& init = nullptr);
/// Merges the children of `cell` back into it (ftt_cell_coarsen).
void ftt_cell_coarsen(FttCell& cell);

/// Depth-first traversal (§4: ftt_cell_traverse). `max_depth` < 0 means
/// unlimited. The callback may modify the cell data; modifications are
/// written back through the PM-octree copy-on-write machinery.
void ftt_cell_traverse(FttCell& root, FttTraverseType order, int flags,
                       int max_depth, const FttCellTraverseFunc& fn);

// ---- simulation persistence (§4 replacement of gfs_output_*) ---------------

/// Owns the NVBM pool and the PM-octree for one Gerris simulation.
class GfsSimulation {
 public:
  /// Creates a fresh simulation over `capacity` bytes of emulated NVBM.
  explicit GfsSimulation(std::size_t capacity,
                         pmoctree::PmConfig pm = {},
                         nvbm::Config dev = {});

  pmoctree::PmOctree& tree() { return *tree_; }
  FttCell root() { return ftt_cell_root(*tree_); }
  nvbm::Device& device() { return device_; }

  /// Replaces gfs_output_write(): makes the current state durable.
  pmoctree::PersistStats gfs_simulation_write();
  /// Replaces gfs_simulation_read(): reopens the last durable state.
  void gfs_simulation_read();
  /// True when a durable state exists to read.
  bool has_saved_state();

 private:
  nvbm::Device device_;
  nvbm::Heap heap_;
  pmoctree::PmConfig pm_;
  std::unique_ptr<pmoctree::PmOctree> tree_;
};

}  // namespace pmo::gfs
