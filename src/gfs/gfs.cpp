#include "gfs/gfs.hpp"

namespace pmo::gfs {

int ftt_cell_level(const FttCell& cell) { return cell.code.level(); }

double ftt_cell_size(const FttCell& cell) { return cell.code.size_unit(); }

void ftt_cell_pos(const FttCell& cell, double* x, double* y, double* z) {
  const auto c = cell.code.center_unit();
  if (x != nullptr) *x = c[0];
  if (y != nullptr) *y = c[1];
  if (z != nullptr) *z = c[2];
}

bool ftt_cell_is_leaf(const FttCell& cell) {
  PMO_CHECK(cell.valid());
  return cell.tree->is_leaf(cell.code);
}

bool ftt_cell_is_root(const FttCell& cell) { return cell.code.is_root(); }

CellData ftt_cell_data(const FttCell& cell) {
  PMO_CHECK(cell.valid());
  const auto d = cell.tree->find(cell.code);
  PMO_CHECK_MSG(d.has_value(),
                "stale cell handle: " << cell.code.to_string());
  return *d;
}

void ftt_cell_set_data(const FttCell& cell, const CellData& data) {
  PMO_CHECK(cell.valid());
  cell.tree->update(cell.code, data);
}

FttCell ftt_cell_root(pmoctree::PmOctree& tree) {
  return FttCell{&tree, LocCode::root()};
}

FttCell ftt_cell_parent(const FttCell& cell) {
  PMO_CHECK_MSG(!cell.code.is_root(), "root cell has no parent");
  return FttCell{cell.tree, cell.code.parent()};
}

FttCell ftt_cell_child(const FttCell& cell, int index) {
  const auto child = cell.code.child(index);
  PMO_CHECK_MSG(cell.tree->contains(child),
                "cell has no children: " << cell.code.to_string());
  return FttCell{cell.tree, child};
}

FttCell ftt_cell_neighbor(const FttCell& cell, FttDirection d) {
  static constexpr int kDirs[FTT_NEIGHBORS][3] = {
      {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  PMO_CHECK(d >= 0 && d < FTT_NEIGHBORS);
  LocCode ncode;
  if (!cell.code.neighbor(kDirs[d][0], kDirs[d][1], kDirs[d][2], ncode)) {
    return FttCell{};  // domain boundary
  }
  // Same-or-coarser neighbor, as in Gerris.
  return FttCell{cell.tree, cell.tree->leaf_containing(ncode)};
}

void ftt_cell_refine(FttCell& cell, const FttCellInitFunc& init) {
  PMO_CHECK(cell.valid());
  if (init) {
    cell.tree->refine(cell.code, [&](const LocCode& code, CellData& d) {
      FttCell child{cell.tree, code};
      init(child, d);
    });
  } else {
    cell.tree->refine(cell.code);
  }
}

void ftt_cell_coarsen(FttCell& cell) {
  PMO_CHECK(cell.valid());
  cell.tree->coarsen(cell.code);
}

void ftt_cell_traverse(FttCell& root, FttTraverseType /*order*/, int flags,
                       int max_depth, const FttCellTraverseFunc& fn) {
  PMO_CHECK(root.valid());
  auto* tree = root.tree;
  const bool leafs_only = (flags & FTT_TRAVERSE_LEAFS) != 0;
  const bool non_leafs_only = (flags & FTT_TRAVERSE_NON_LEAFS) != 0;
  // Collect first (handles are stable codes), then apply: the callback may
  // refine/coarsen, which would disturb a live traversal.
  std::vector<std::pair<LocCode, bool>> cells;
  tree->for_each_node(
      [&](const LocCode& code, const CellData&, bool leaf) {
        if (!root.code.contains(code)) return;
        if (max_depth >= 0 && code.level() > max_depth) return;
        if (leafs_only && !leaf) return;
        if (non_leafs_only && leaf) return;
        cells.emplace_back(code, leaf);
      });
  for (const auto& [code, leaf] : cells) {
    FttCell cell{tree, code};
    const auto cur = tree->find(code);
    if (!cur.has_value()) continue;  // removed by an earlier callback
    CellData data = *cur;
    fn(cell, data);
    if (!(data == *cur)) tree->update(code, data);
  }
}

GfsSimulation::GfsSimulation(std::size_t capacity, pmoctree::PmConfig pm,
                             nvbm::Config dev)
    : device_(capacity, dev), heap_(device_), pm_(pm) {
  if (pmoctree::PmOctree::can_restore(heap_)) {
    tree_ = pmoctree::pm_restore(heap_, pm_);
  } else {
    tree_ = pmoctree::pm_create(heap_, nullptr, pm_);
  }
}

pmoctree::PersistStats GfsSimulation::gfs_simulation_write() {
  return pmoctree::pm_persistent(*tree_);
}

void GfsSimulation::gfs_simulation_read() {
  tree_ = pmoctree::pm_restore(heap_, pm_);
}

bool GfsSimulation::has_saved_state() {
  return pmoctree::PmOctree::can_restore(heap_);
}

}  // namespace pmo::gfs
