#include "exec/pool.hpp"

#include <stdexcept>

namespace pmo::exec {

namespace {

thread_local int t_context_id = 0;
// True while the current thread is executing a parallel_for task (or the
// caller's inline share of one) — the nesting guard is process-wide on
// purpose: a task of pool A fanning out on pool B deadlocks just as
// easily as self-nesting, so both are rejected.
thread_local bool t_in_parallel_for = false;

struct NestGuard {
  NestGuard() { t_in_parallel_for = true; }
  ~NestGuard() { t_in_parallel_for = false; }
};

}  // namespace

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int context_id() noexcept { return t_context_id; }

bool in_parallel_task() noexcept { return t_in_parallel_for; }

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = hardware_threads();
  workers_.reserve(static_cast<std::size_t>(threads > 0 ? threads - 1 : 0));
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::drain(const IndexFn& fn, std::size_t end) {
  NestGuard guard;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Cancel: park the cursor past the end so no further index is
      // claimed. In-flight invocations on other threads finish normally.
      next_.store(end, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_main(int ctx_id) {
  t_context_id = ctx_id;
  std::uint64_t seen = 0;
  for (;;) {
    const IndexFn* fn = nullptr;
    std::size_t end = 0;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      end = end_;
    }
    drain(*fn, end);
    {
      std::lock_guard lk(mu_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run_tasks(const std::vector<Task>& tasks) {
  parallel_for(tasks.size(), [&tasks](std::size_t i) { tasks[i](); });
}

void ThreadPool::parallel_for(std::size_t n, const IndexFn& fn) {
  if (t_in_parallel_for) {
    throw std::logic_error(
        "exec::ThreadPool::parallel_for called from inside a task "
        "(nested parallelism is rejected; restructure into one loop)");
  }
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline: no dispatch, exceptions propagate directly.
    NestGuard guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lk(mu_);
    fn_ = &fn;
    end_ = n;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_work_.notify_all();
  drain(fn, n);  // the caller works too
  std::exception_ptr err;
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [&] { return active_ == 0; });
    fn_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace pmo::exec
