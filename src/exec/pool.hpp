// Minimal fixed-size thread pool for data-parallel index loops.
//
// The paper's §5.1 evaluation names a "multi-threaded octree"; this is the
// repo's execution layer for that: a fixed worker team created once, one
// `parallel_for` primitive over [0, n) index ranges, per-worker context
// ids, and first-exception propagation. Deliberately not a task graph —
// no futures, no work stealing, no nesting. Deterministic decomposition
// is the caller's contract: indices are handed out dynamically, so a
// correct caller writes results only to per-index (or per-chunk) slots
// and never lets the outcome depend on which worker ran an index or in
// what order. ClusterSim (concurrent rank replicas) and the droplet
// solver's chunked stencil gather (amr/mesh_backend.hpp) are the two
// in-tree users; both keep their results bit-identical across thread
// counts by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pmo::exec {

/// Usable hardware concurrency, always >= 1 (hardware_concurrency() is
/// allowed to report 0 when unknown).
int hardware_threads() noexcept;

/// Context id of the calling thread: 0 on the coordinating thread (and on
/// any thread outside a pool), 1..threads-1 on pool workers. Stable for a
/// worker's lifetime, so per-context scratch buffers can be indexed by it
/// without synchronization.
int context_id() noexcept;

/// True while the calling thread is executing a parallel_for task (or the
/// caller's inline share of one). Lets layered components that would fan
/// out on a pool (the PM-octree's parallel merge) detect that they are
/// already inside a task and fall back to inline execution instead of
/// tripping the nesting guard.
bool in_parallel_task() noexcept;

class ThreadPool {
 public:
  /// `threads` is the TOTAL concurrency of parallel_for — the calling
  /// thread participates in every loop, so a pool of `threads` spawns
  /// `threads - 1` workers. threads <= 1 spawns none and runs every loop
  /// inline; threads == 0 means hardware_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the participating caller).
  int size() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  using IndexFn = std::function<void(std::size_t)>;

  /// Runs fn(i) for every i in [0, n) and blocks until all of them
  /// finished. Indices are claimed atomically one at a time (dynamic
  /// scheduling; cheap relative to the coarse-grained chunks this repo
  /// feeds it). If any invocation throws, remaining indices are
  /// abandoned, every worker quiesces, and the FIRST captured exception
  /// is rethrown on the calling thread; the pool stays usable. Calling
  /// parallel_for from inside a task (any pool) throws std::logic_error —
  /// nesting is rejected, not silently serialized.
  void parallel_for(std::size_t n, const IndexFn& fn);

  using Task = std::function<void()>;

  /// Runs each task exactly once, concurrently across the pool, and
  /// blocks until all finished (parallel_for over the task list). This is
  /// the serve pattern: task 0 is the droplet mutator, tasks 1..N are
  /// reader lanes querying pinned snapshots. Tasks must not wait on each
  /// other — with one thread they run sequentially in index order, so any
  /// cross-task wait deadlocks. Layered code that would fan out again
  /// (persist's merge, the solver's chunked sweep) detects
  /// in_parallel_task() and runs inline instead.
  void run_tasks(const std::vector<Task>& tasks);

 private:
  void worker_main(int ctx_id);
  /// Claims and runs indices until the job is exhausted or cancelled.
  void drain(const IndexFn& fn, std::size_t end);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Job slot, all guarded by mu_ (workers copy what they need while
  // holding the lock; end_ is immutable for the job's duration).
  const IndexFn* fn_ = nullptr;
  std::size_t end_ = 0;
  std::uint64_t generation_ = 0;
  int active_ = 0;  ///< workers that have not finished the current job
  bool stop_ = false;
  std::exception_ptr first_error_;
  // The only cross-thread hot path: next index to claim.
  std::atomic<std::size_t> next_{0};
};

}  // namespace pmo::exec
