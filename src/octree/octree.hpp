// Core in-memory (DRAM) pointer-based octree.
//
// This is the "multi-threaded octree" of the paper's terminology: every
// octant stores parent and child pointers so general flow solvers (Gerris)
// can traverse up, down and sideways in O(1)-ish steps — unlike linear
// octrees (Etree/Sundar) that keep only a sorted key array. It provides
// the five classic meshing routines: Construct, Refine & Coarsen, Balance
// (2:1), Partition support (Morton-order leaf ranges) and Extract
// (serialization / flat mesh views).
//
// The PM-octree (src/pmoctree) reuses the same locational-code machinery
// but stores its nodes in DRAM+NVBM with copy-on-write versioning; the
// in-core baseline (src/baseline) wraps this class directly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/morton.hpp"
#include "octree/cell_data.hpp"

namespace pmo::octree {

class Octree;

/// One octant. Owned by its Octree; links are raw non-owning pointers
/// inside the owning tree (Core Guidelines R.3: they represent structure,
/// not ownership).
struct Node {
  LocCode code;
  Node* parent = nullptr;
  Node* children[kChildrenPerNode] = {};
  CellData data;

  bool is_leaf() const noexcept {
    for (const auto* c : children)
      if (c != nullptr) return false;
    return true;
  }
};

/// Statistics snapshot of a tree.
struct TreeStats {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  int depth = 0;
  std::size_t bytes = 0;  ///< approximate resident bytes
};

class Octree {
 public:
  /// Creates a tree holding only the root octant (Construct).
  Octree();
  ~Octree();

  /// Bottom-up construction from a Morton-sorted set of leaf codes
  /// (Sundar et al. [41,42], cited in the paper's §2: less time to build
  /// than top-down insertion because each internal node is created exactly
  /// once). The codes must form a valid linear octree: sorted, and no code
  /// contains another. Data defaults to zero.
  static Octree from_leaves(const std::vector<LocCode>& sorted_leaves);

  Octree(const Octree&) = delete;
  Octree& operator=(const Octree&) = delete;
  Octree(Octree&& other) noexcept;
  Octree& operator=(Octree&& other) noexcept;

  Node* root() noexcept { return root_; }
  const Node* root() const noexcept { return root_; }

  /// Exact-match lookup of an octant by locational code (internal or leaf).
  Node* find(const LocCode& code) noexcept;
  const Node* find(const LocCode& code) const noexcept;

  /// The leaf whose volume contains `code` (code may be deeper than the
  /// leaf). Never null for in-domain codes.
  Node* find_leaf_containing(const LocCode& code) noexcept;

  /// Splits a leaf into 8 children; children inherit the parent's data
  /// unless `init` is provided. Returns the first child.
  Node* refine(Node* leaf,
               const std::function<void(Node&)>& init = nullptr);

  /// Ensures an octant with this code exists (refining ancestors on the
  /// way); returns it.
  Node* insert(const LocCode& code);

  /// Collapses all children of `parent` back into it (they must all be
  /// leaves). Parent data is set by `merge` or left untouched.
  void coarsen(Node* parent,
               const std::function<void(Node&)>& merge = nullptr);

  /// Refines every leaf satisfying `pred` once. Returns how many leaves
  /// were split. `init` initializes each new child.
  std::size_t refine_where(
      const std::function<bool(const Node&)>& pred,
      const std::function<void(Node&)>& init = nullptr);

  /// Coarsens every sibling group whose eight leaves all satisfy `pred`.
  /// Returns how many groups were merged.
  std::size_t coarsen_where(const std::function<bool(const Node&)>& pred);

  /// Enforces the 2:1 constraint: any two face/edge/corner-adjacent leaves
  /// differ by at most one level. Implemented as ripple refinement.
  /// Returns the number of leaves refined to restore balance.
  std::size_t balance();

  /// True when the 2:1 constraint holds everywhere (test oracle).
  bool is_balanced() const;

  /// Same-or-coarser neighbor leaf of `leaf` in direction d (components in
  /// {-1,0,1}); nullptr at domain boundary.
  Node* neighbor(Node* leaf, int dx, int dy, int dz) noexcept;

  /// Depth-first (Morton-order) visit of all leaves.
  void for_each_leaf(const std::function<void(Node&)>& fn);
  void for_each_leaf(const std::function<void(const Node&)>& fn) const;
  /// Pre-order visit of every node (internal + leaf).
  void for_each_node(const std::function<void(Node&)>& fn);
  void for_each_node(const std::function<void(const Node&)>& fn) const;

  /// Leaves in Morton order (the Partition routine's SFC ordering).
  std::vector<Node*> leaves_in_morton_order();

  std::size_t node_count() const noexcept { return node_count_; }
  std::size_t leaf_count() const;
  TreeStats stats() const;
  int depth() const;

  /// Serializes the whole tree (structure + cell data) into a flat buffer;
  /// this is the snapshot payload of the in-core baseline.
  std::vector<std::byte> serialize() const;
  /// Rebuilds a tree from serialize() output.
  static Octree deserialize(const std::byte* data, std::size_t len);

  /// Structural + payload equality (test oracle).
  friend bool tree_equal(const Octree& a, const Octree& b);

 private:
  Node* allocate(const LocCode& code, Node* parent);
  void deallocate(Node* node) noexcept;
  void destroy_subtree(Node* node) noexcept;

  Node* root_ = nullptr;
  std::size_t node_count_ = 0;
};

bool tree_equal(const Octree& a, const Octree& b);

}  // namespace pmo::octree
