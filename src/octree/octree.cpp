#include "octree/octree.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

namespace pmo::octree {

Octree::Octree() { root_ = allocate(LocCode::root(), nullptr); }

Octree::~Octree() {
  if (root_ != nullptr) destroy_subtree(root_);
}

Octree::Octree(Octree&& other) noexcept
    : root_(other.root_), node_count_(other.node_count_) {
  other.root_ = nullptr;
  other.node_count_ = 0;
}

Octree& Octree::operator=(Octree&& other) noexcept {
  if (this != &other) {
    if (root_ != nullptr) destroy_subtree(root_);
    root_ = other.root_;
    node_count_ = other.node_count_;
    other.root_ = nullptr;
    other.node_count_ = 0;
  }
  return *this;
}

Octree Octree::from_leaves(const std::vector<LocCode>& sorted_leaves) {
  PMO_CHECK_MSG(!sorted_leaves.empty(), "cannot build from zero leaves");
  Octree tree;
  if (sorted_leaves.size() == 1) {
    PMO_CHECK_MSG(sorted_leaves[0] == LocCode::root(),
                  "single leaf must be the root octant");
    return tree;
  }
  const auto key_less = [](const LocCode& a, std::uint64_t key) {
    return a.key() < key;
  };
  // Recursive bottom-up assembly: each internal node is created exactly
  // once; its children's leaf ranges are located by binary search over
  // the Morton-sorted array (leaves of one octant form a contiguous key
  // interval).
  std::function<void(Node*, std::size_t, std::size_t)> build =
      [&](Node* parent, std::size_t lo, std::size_t hi) {
        for (int i = 0; i < kChildrenPerNode; ++i) {
          const LocCode cc = parent->code.child(i);
          const std::uint64_t key_begin = cc.key();
          const std::uint64_t span =
              std::uint64_t{1} << (3 * (kMaxLevel - cc.level()));
          const auto first = std::lower_bound(
              sorted_leaves.begin() + static_cast<std::ptrdiff_t>(lo),
              sorted_leaves.begin() + static_cast<std::ptrdiff_t>(hi),
              key_begin, key_less);
          const auto last = std::lower_bound(
              first,
              sorted_leaves.begin() + static_cast<std::ptrdiff_t>(hi),
              key_begin + span, key_less);
          PMO_CHECK_MSG(first != last,
                        "leaf set does not cover octant "
                            << cc.to_string());
          Node* child = tree.allocate(cc, parent);
          child->data = parent->data;
          parent->children[i] = child;
          const auto flo = static_cast<std::size_t>(
              first - sorted_leaves.begin());
          const auto fhi =
              static_cast<std::size_t>(last - sorted_leaves.begin());
          if (fhi - flo == 1 && *first == cc) continue;  // exact leaf
          PMO_CHECK_MSG(!(fhi - flo == 1 && first->level() <= cc.level()),
                        "leaf " << first->to_string()
                                << " straddles octant boundaries");
          build(child, flo, fhi);
        }
      };
  build(tree.root_, 0, sorted_leaves.size());
  PMO_CHECK_MSG(tree.leaf_count() == sorted_leaves.size(),
                "linear octree was not a valid partition");
  return tree;
}

Node* Octree::allocate(const LocCode& code, Node* parent) {
  auto* node = new Node;
  node->code = code;
  node->parent = parent;
  ++node_count_;
  return node;
}

void Octree::deallocate(Node* node) noexcept {
  --node_count_;
  delete node;
}

void Octree::destroy_subtree(Node* node) noexcept {
  for (auto*& child : node->children) {
    if (child != nullptr) destroy_subtree(child);
  }
  deallocate(node);
}

Node* Octree::find(const LocCode& code) noexcept {
  Node* at = root_;
  for (int level = 1; level <= code.level(); ++level) {
    const int idx = code.ancestor_at(level).child_index();
    at = at->children[idx];
    if (at == nullptr) return nullptr;
  }
  return at;
}

const Node* Octree::find(const LocCode& code) const noexcept {
  return const_cast<Octree*>(this)->find(code);
}

Node* Octree::find_leaf_containing(const LocCode& code) noexcept {
  Node* at = root_;
  for (int level = 1; level <= code.level(); ++level) {
    const int idx = code.ancestor_at(level).child_index();
    Node* next = at->children[idx];
    if (next == nullptr) return at;
    at = next;
  }
  return at;
}

Node* Octree::refine(Node* leaf, const std::function<void(Node&)>& init) {
  PMO_CHECK_MSG(leaf != nullptr && leaf->is_leaf(),
                "refine requires a leaf");
  for (int i = 0; i < kChildrenPerNode; ++i) {
    auto* child = allocate(leaf->code.child(i), leaf);
    child->data = leaf->data;  // inherit by default
    if (init) init(*child);
    leaf->children[i] = child;
  }
  return leaf->children[0];
}

Node* Octree::insert(const LocCode& code) {
  Node* at = root_;
  for (int level = 1; level <= code.level(); ++level) {
    if (at->is_leaf()) refine(at);
    const int idx = code.ancestor_at(level).child_index();
    at = at->children[idx];
  }
  return at;
}

void Octree::coarsen(Node* parent, const std::function<void(Node&)>& merge) {
  PMO_CHECK_MSG(parent != nullptr && !parent->is_leaf(),
                "coarsen requires an internal node");
  for (auto*& child : parent->children) {
    PMO_CHECK_MSG(child != nullptr && child->is_leaf(),
                  "coarsen requires all children to be leaves");
    deallocate(child);
    child = nullptr;
  }
  if (merge) merge(*parent);
}

std::size_t Octree::refine_where(
    const std::function<bool(const Node&)>& pred,
    const std::function<void(Node&)>& init) {
  // Collect first: refining while iterating would visit new children.
  std::vector<Node*> to_split;
  for_each_leaf([&](Node& n) {
    if (n.code.level() < kMaxLevel && pred(n)) to_split.push_back(&n);
  });
  for (auto* leaf : to_split) refine(leaf, init);
  return to_split.size();
}

std::size_t Octree::coarsen_where(
    const std::function<bool(const Node&)>& pred) {
  std::vector<Node*> groups;
  for_each_node([&](Node& n) {
    if (n.is_leaf()) return;
    bool all_leaf_children = true;
    for (const auto* c : n.children)
      all_leaf_children &= (c != nullptr && c->is_leaf());
    if (!all_leaf_children) return;
    bool all_agree = true;
    for (const auto* c : n.children) all_agree &= pred(*c);
    if (all_agree) groups.push_back(&n);
  });
  for (auto* g : groups) {
    // Average the children into the parent: the canonical restriction.
    CellData acc;
    for (const auto* c : g->children) {
      acc.vof += c->data.vof / kChildrenPerNode;
      acc.tracer += c->data.tracer / kChildrenPerNode;
      acc.u += c->data.u / kChildrenPerNode;
      acc.v += c->data.v / kChildrenPerNode;
      acc.w += c->data.w / kChildrenPerNode;
      acc.pressure += c->data.pressure / kChildrenPerNode;
    }
    coarsen(g, [&](Node& p) { p.data = acc; });
  }
  return groups.size();
}

Node* Octree::neighbor(Node* leaf, int dx, int dy, int dz) noexcept {
  LocCode ncode;
  if (!leaf->code.neighbor(dx, dy, dz, ncode)) return nullptr;
  // The neighbor octant of equal size may not exist; the containing leaf
  // is the correct same-or-coarser mesh neighbor.
  Node* n = find_leaf_containing(ncode);
  return n == leaf ? nullptr : n;
}

std::size_t Octree::balance() {
  // Ripple refinement driven from the fine side: for every leaf b, its
  // same-level neighbor code in each of the 26 directions is contained in
  // exactly the leaf adjacent to b there; if that leaf is more than one
  // level coarser it must be split. Repeat to a fixed point (splits can
  // create new violations one level up — the classic ripple).
  std::size_t total_refined = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Node*> to_split;
    for_each_leaf([&](Node& leaf) {
      for (const auto& d : LocCode::neighbor_directions()) {
        LocCode ncode;
        if (!leaf.code.neighbor(d[0], d[1], d[2], ncode)) continue;
        Node* adj = find_leaf_containing(ncode);
        if (adj->code.level() < leaf.code.level() - 1) to_split.push_back(adj);
      }
    });
    if (!to_split.empty()) {
      std::sort(to_split.begin(), to_split.end());
      to_split.erase(std::unique(to_split.begin(), to_split.end()),
                     to_split.end());
      for (auto* coarse : to_split) {
        if (coarse->is_leaf()) {
          refine(coarse);
          ++total_refined;
          changed = true;
        }
      }
    }
  }
  return total_refined;
}

bool Octree::is_balanced() const {
  bool ok = true;
  auto* self = const_cast<Octree*>(this);
  self->for_each_leaf([&](Node& leaf) {
    if (!ok) return;
    for (const auto& d : LocCode::neighbor_directions()) {
      LocCode ncode;
      if (!leaf.code.neighbor(d[0], d[1], d[2], ncode)) continue;
      const Node* adj = self->find_leaf_containing(ncode);
      if (adj->code.level() < leaf.code.level() - 1) {
        ok = false;
        return;
      }
    }
  });
  return ok;
}

void Octree::for_each_leaf(const std::function<void(Node&)>& fn) {
  for_each_node([&](Node& n) {
    if (n.is_leaf()) fn(n);
  });
}

void Octree::for_each_leaf(
    const std::function<void(const Node&)>& fn) const {
  for_each_node([&](const Node& n) {
    if (n.is_leaf()) fn(n);
  });
}

void Octree::for_each_node(const std::function<void(Node&)>& fn) {
  if (root_ == nullptr) return;
  std::vector<Node*> stack{root_};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    fn(*n);
    // Push children in reverse so Morton order (child 0 first) pops first.
    for (int i = kChildrenPerNode - 1; i >= 0; --i) {
      if (n->children[i] != nullptr) stack.push_back(n->children[i]);
    }
  }
}

void Octree::for_each_node(
    const std::function<void(const Node&)>& fn) const {
  const_cast<Octree*>(this)->for_each_node(
      [&](Node& n) { fn(static_cast<const Node&>(n)); });
}

std::vector<Node*> Octree::leaves_in_morton_order() {
  std::vector<Node*> out;
  out.reserve(node_count_);
  for_each_leaf([&](Node& n) { out.push_back(&n); });
  return out;  // pre-order DFS with child 0..7 IS Morton order
}

std::size_t Octree::leaf_count() const {
  std::size_t n = 0;
  for_each_leaf([&](const Node&) { ++n; });
  return n;
}

int Octree::depth() const {
  int d = 0;
  for_each_node([&](const Node& n) { d = std::max(d, n.code.level()); });
  return d;
}

TreeStats Octree::stats() const {
  TreeStats s;
  s.nodes = node_count_;
  s.leaves = leaf_count();
  s.depth = depth();
  s.bytes = node_count_ * sizeof(Node);
  return s;
}

namespace {
/// Serialized node record: level-order compatible pre-order stream.
struct NodeRecord {
  std::uint64_t key;
  std::uint8_t level;
  std::uint8_t child_mask;  // bit i set => child i present
  CellData data;
};
}  // namespace

std::vector<std::byte> Octree::serialize() const {
  std::vector<std::byte> out;
  out.reserve(node_count_ * sizeof(NodeRecord) + 16);
  const std::uint64_t count = node_count_;
  out.resize(sizeof(count));
  std::memcpy(out.data(), &count, sizeof(count));
  for_each_node([&](const Node& n) {
    NodeRecord rec{};
    rec.key = n.code.key();
    rec.level = static_cast<std::uint8_t>(n.code.level());
    rec.child_mask = 0;
    for (int i = 0; i < kChildrenPerNode; ++i)
      if (n.children[i] != nullptr)
        rec.child_mask = static_cast<std::uint8_t>(rec.child_mask | (1 << i));
    rec.data = n.data;
    const std::size_t at = out.size();
    out.resize(at + sizeof(rec));
    std::memcpy(out.data() + at, &rec, sizeof(rec));
  });
  return out;
}

Octree Octree::deserialize(const std::byte* data, std::size_t len) {
  PMO_CHECK_MSG(len >= sizeof(std::uint64_t), "snapshot truncated");
  std::uint64_t count = 0;
  std::memcpy(&count, data, sizeof(count));
  PMO_CHECK_MSG(len >= sizeof(count) + count * sizeof(NodeRecord),
                "snapshot truncated: " << len << " bytes for " << count
                                       << " nodes");
  Octree tree;
  std::size_t at = sizeof(count);
  // The stream is pre-order; reconstruct with an explicit stack of
  // (node, remaining-children-mask).
  struct Frame {
    Node* node;
    std::uint8_t mask;
    int next = 0;
  };
  std::vector<Frame> stack;
  for (std::uint64_t i = 0; i < count; ++i) {
    NodeRecord rec{};
    std::memcpy(&rec, data + at, sizeof(rec));
    at += sizeof(rec);
    Node* node = nullptr;
    if (i == 0) {
      node = tree.root_;
      PMO_CHECK_MSG(rec.level == 0, "snapshot does not start at root");
    } else {
      // Attach under the top frame's next present child slot.
      PMO_CHECK_MSG(!stack.empty(), "snapshot structure corrupt");
      auto& top = stack.back();
      while ((top.mask & (1 << top.next)) == 0) ++top.next;
      node = tree.allocate(top.node->code.child(top.next), top.node);
      top.node->children[top.next] = node;
      top.mask = static_cast<std::uint8_t>(top.mask & ~(1 << top.next));
      if (top.mask == 0) stack.pop_back();
    }
    node->data = rec.data;
    PMO_CHECK_MSG(node->code.key() == rec.key &&
                      node->code.level() == rec.level,
                  "snapshot node code mismatch");
    if (rec.child_mask != 0) stack.push_back({node, rec.child_mask, 0});
  }
  PMO_CHECK_MSG(stack.empty(), "snapshot ended with open nodes");
  return tree;
}

bool tree_equal(const Octree& a, const Octree& b) {
  if (a.node_count_ != b.node_count_) return false;
  bool equal = true;
  std::vector<std::pair<const Node*, const Node*>> stack{
      {a.root_, b.root_}};
  while (!stack.empty() && equal) {
    const auto [na, nb] = stack.back();
    stack.pop_back();
    if ((na == nullptr) != (nb == nullptr)) {
      equal = false;
      break;
    }
    if (na == nullptr) continue;
    if (na->code != nb->code || !(na->data == nb->data)) {
      equal = false;
      break;
    }
    for (int i = 0; i < kChildrenPerNode; ++i)
      stack.emplace_back(na->children[i], nb->children[i]);
  }
  return equal;
}

}  // namespace pmo::octree
