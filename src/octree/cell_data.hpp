// Per-cell simulation payload shared by every octree backend.
#pragma once

#include <cstdint>

namespace pmo {

/// Field values carried by one mesh cell (octant). Matches what the
/// droplet-ejection workload needs from a Gerris-style multiphase solver:
/// a volume-of-fluid interface fraction, an advected tracer, velocity and
/// pressure. Trivially copyable by design — octants are memcpy'd between
/// DRAM and NVBM and serialized into snapshots.
struct CellData {
  double vof = 0.0;      ///< liquid volume fraction in [0, 1]
  double tracer = 0.0;   ///< passive advected scalar
  double u = 0.0;        ///< velocity x
  double v = 0.0;        ///< velocity y
  double w = 0.0;        ///< velocity z
  double pressure = 0.0;

  friend bool operator==(const CellData&, const CellData&) = default;
};

static_assert(sizeof(CellData) == 48);

/// True when the cell straddles the liquid/gas interface — the canonical
/// refinement feature of the droplet workload (cells with a mixed VOF
/// fraction carry the interface and need micrometer resolution).
inline bool is_interface_cell(const CellData& d,
                              double band = 1e-3) noexcept {
  return d.vof > band && d.vof < 1.0 - band;
}

}  // namespace pmo
