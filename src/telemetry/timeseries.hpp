// Metric time-series: step-driven sampling of Registry metrics into
// fixed-budget ring-buffered series.
//
// The registry answers "what is the value now"; benches so far exported
// exactly one end-of-run snapshot, so every trajectory (lines written per
// step, cache hit rate warming up, reclamation high-water mark growing
// under reader pins) collapsed to a scalar. MetricSampler keeps the time
// dimension: each tick() snapshots the selected counters / gauges /
// histogram percentiles into per-series (t, v) arrays with a hard point
// budget — when a series fills its budget, every other retained point is
// dropped and the sampling stride doubles (classic decimating flight
// recorder: the whole run stays covered at decreasing resolution instead
// of truncating the tail).
//
// Sampling is STEP-driven, never timer-driven, for determinism: ticks
// happen at simulation-meaningful points (droplet step end, persist(),
// bench_serve's pacing loop), so a modeled series' (t, v) pairs are a
// pure function of the workload. Wall-clock-derived kinds (kRate) and
// series sampled while racing readers exist are flagged modeled=false so
// tools/benchdiff knows not to expect bit-identity.
//
// Two ways to drive a sampler:
//  * explicitly — sampler.tick() wherever the owner wants a sample (the
//    bench_serve mutator paces one tick per step);
//  * via the global hook — install_on_current_thread() registers the
//    sampler process-wide and makes the installing thread the *driver*;
//    library sampling points (timeseries::tick_point() in the droplet
//    solve loop and PmOctree::persist()) then tick it. tick_point() fires
//    only on the driver thread and never inside an exec parallel task, so
//    worker-lane replicas (cluster measurement, serve tasks) cannot make
//    the tick sequence depend on scheduling — that keeps modeled series
//    bit-identical across --threads by construction.
//
// Under PMO_TELEMETRY=OFF everything compiles to (nearly) nothing:
// tick_point() is an inline no-op, tick() returns immediately, and
// to_json() still emits every registered series with empty point arrays
// so bench JSON stays schema-valid with recording compiled out.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace pmo::telemetry::timeseries {

/// How a series derives its sample from the registry.
enum class Kind {
  kCounter,     ///< cumulative counter value
  kGauge,       ///< last-written gauge value
  kRatio,       ///< metric / (metric + metric2), both counters (hit rates)
  kPercentile,  ///< interpolated histogram percentile (Histogram::percentile)
  kRate,        ///< histogram count delta per wall-clock second (QPS);
                ///< wall-clock-derived, so never modeled
};

const char* kind_name(Kind k) noexcept;

struct SeriesSpec {
  std::string name;    ///< series key in the export ("serve.qps")
  Kind kind = Kind::kCounter;
  std::string metric;  ///< registry metric sampled
  std::string metric2; ///< kRatio only: the denominator's second term
  double percentile = 0.99;  ///< kPercentile only
  /// True when every sampled value is a modeled quantity at a
  /// deterministic tick: benchdiff exact-matches modeled series and
  /// only eyeballs the rest. kRate series are never modeled.
  bool modeled = false;
};

struct SamplerOptions {
  /// Hard per-series point budget; when full, retained points decimate
  /// 2:1 and the stride doubles. Minimum 8.
  std::size_t capacity = 256;
  /// Run Registry::refresh_sources() before sampling each tick so
  /// pull-mode gauges (nvbm.* device state) are current.
  bool refresh_sources = true;
};

class MetricSampler {
 public:
  using Options = SamplerOptions;

  explicit MetricSampler(Registry& reg, Options opts = {});
  ~MetricSampler();

  MetricSampler(const MetricSampler&) = delete;
  MetricSampler& operator=(const MetricSampler&) = delete;

  /// Registers a series. Resolves (find-or-creates) the metric eagerly so
  /// the first tick is as cheap as the rest. Not thread-safe against a
  /// concurrent tick(); register everything before sampling starts.
  void add(SeriesSpec spec);

  /// Samples every series now. Single-driver contract: all tick() calls
  /// must be externally ordered (one logical driver thread at a time);
  /// the registry reads themselves are thread-safe against concurrent
  /// metric writers.
  void tick();

  std::uint64_t ticks() const noexcept;
  std::size_t series_count() const noexcept;
  std::size_t capacity() const noexcept;

  /// {"ticks": N, "capacity": C, "series": {name: {kind, metric,
  ///  modeled, stride, t: [...], v: [...]}}} — series in registration
  /// order, t in tick indices.
  json::Value to_json() const;
  /// to_json() to a file; false (with a message on stderr) on failure.
  bool write_file(const std::string& path) const;

  /// Installs this sampler as the process-wide tick_point() target and
  /// makes the calling thread the driver. At most one sampler is
  /// installed at a time (a second install replaces the first);
  /// destruction uninstalls automatically.
  void install_on_current_thread();
  static void uninstall();
  /// The installed sampler, if any (test hook).
  static MetricSampler* installed() noexcept;

 private:
  friend void detail_tick_point();

  struct Series {
    SeriesSpec spec;
    // Resolved once at add(); Registry references are stable for the
    // registry's lifetime.
    const Counter* counter = nullptr;
    const Counter* counter2 = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* hist = nullptr;
    std::uint64_t stride = 1;
    std::uint64_t prev_count = 0;  ///< kRate: histogram count at last tick
    std::vector<double> t;
    std::vector<double> v;
  };

  double sample(Series& s, double dt_s);

  Registry& reg_;
  Options opts_;
  std::vector<Series> series_;
  std::uint64_t ticks_ = 0;
  std::uint64_t last_tick_wall_ns_ = 0;  ///< kRate dt source
  std::thread::id driver_;
};

namespace detail {
#if PMO_TELEMETRY_ENABLED
extern std::atomic<MetricSampler*> g_installed;
#endif
}  // namespace detail

/// Out-of-line slow path of tick_point(): re-checks the installed
/// sampler, the driver thread and exec::in_parallel_task().
void detail_tick_point();

/// Library sampling point — the droplet solve loop and persist() call
/// this unconditionally. One relaxed atomic load when no sampler is
/// installed; compiled out entirely under PMO_TELEMETRY=OFF.
inline void tick_point() noexcept {
#if PMO_TELEMETRY_ENABLED
  if (detail::g_installed.load(std::memory_order_acquire) != nullptr) {
    detail_tick_point();
  }
#endif
}

}  // namespace pmo::telemetry::timeseries
