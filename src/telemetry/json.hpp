// Minimal JSON document model, writer and parser.
//
// The bench reporting pipeline needs (a) a stable machine-readable output
// format for the BENCH_*.json perf trajectory and (b) a way for the smoke
// validator and tests to read those files back without external
// dependencies. This is a deliberately small subset of JSON: UTF-8 text is
// passed through verbatim (no \uXXXX synthesis beyond what the input
// contains), numbers are doubles with integer-ness preserved, and object
// key order is insertion order so that dump() output is deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace pmo::telemetry::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  /// Any arithmetic type; integer-ness is remembered for serialization.
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T v)
      : type_(Type::kNumber),
        num_(static_cast<double>(v)),
        is_int_(std::is_integral_v<T>) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_double() const noexcept { return num_; }
  const std::string& as_string() const noexcept { return str_; }

  // ---- object access ------------------------------------------------------
  /// Member lookup; inserts a null member when absent (object only).
  Value& operator[](const std::string& key);
  /// Member lookup without insertion; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  // ---- array access -------------------------------------------------------
  void push_back(Value v);
  std::size_t size() const noexcept;
  const Value& at(std::size_t i) const { return elems_[i]; }

  /// Serializes with deterministic formatting: 2-space indent, object keys
  /// in insertion order, scalar-only arrays on one line.
  std::string dump() const;

  /// Parses a JSON document; nullopt (with *error filled when given) on
  /// malformed input.
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Value> elems_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace pmo::telemetry::json
