#include "telemetry/timeseries.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "exec/pool.hpp"

namespace pmo::telemetry::timeseries {

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kRatio:
      return "ratio";
    case Kind::kPercentile:
      return "percentile";
    case Kind::kRate:
      return "rate";
  }
  return "unknown";
}

namespace detail {
#if PMO_TELEMETRY_ENABLED
std::atomic<MetricSampler*> g_installed{nullptr};
#endif
}  // namespace detail

MetricSampler::MetricSampler(Registry& reg, Options opts)
    : reg_(reg), opts_(opts), driver_(std::this_thread::get_id()) {
  if (opts_.capacity < 8) opts_.capacity = 8;
}

MetricSampler::~MetricSampler() {
#if PMO_TELEMETRY_ENABLED
  // Uninstall only if *this* sampler is the installed one.
  MetricSampler* self = this;
  detail::g_installed.compare_exchange_strong(self, nullptr,
                                              std::memory_order_acq_rel);
#endif
}

void MetricSampler::add(SeriesSpec spec) {
  // Rates divide by wall-clock time; they can never be modeled.
  if (spec.kind == Kind::kRate) spec.modeled = false;
  Series s;
  s.spec = std::move(spec);
  switch (s.spec.kind) {
    case Kind::kCounter:
      s.counter = &reg_.counter(s.spec.metric);
      break;
    case Kind::kGauge:
      s.gauge = &reg_.gauge(s.spec.metric);
      break;
    case Kind::kRatio:
      s.counter = &reg_.counter(s.spec.metric);
      s.counter2 = &reg_.counter(s.spec.metric2);
      break;
    case Kind::kPercentile:
    case Kind::kRate:
      s.hist = &reg_.histogram(s.spec.metric);
      break;
  }
  series_.push_back(std::move(s));
}

double MetricSampler::sample(Series& s, double dt_s) {
  switch (s.spec.kind) {
    case Kind::kCounter:
      return static_cast<double>(s.counter->value());
    case Kind::kGauge:
      return s.gauge->value();
    case Kind::kRatio: {
      const double a = static_cast<double>(s.counter->value());
      const double b = static_cast<double>(s.counter2->value());
      const double denom = a + b;
      return denom == 0.0 ? 0.0 : a / denom;
    }
    case Kind::kPercentile:
      return static_cast<double>(s.hist->percentile(s.spec.percentile));
    case Kind::kRate: {
      const std::uint64_t c = s.hist->count();
      const double delta = static_cast<double>(c - s.prev_count);
      s.prev_count = c;
      return dt_s <= 0.0 ? 0.0 : delta / dt_s;
    }
  }
  return 0.0;
}

void MetricSampler::tick() {
#if PMO_TELEMETRY_ENABLED
  if (opts_.refresh_sources) reg_.refresh_sources();
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  const double dt_s =
      ticks_ == 0 ? 0.0
                  : static_cast<double>(now_ns - last_tick_wall_ns_) / 1e9;
  last_tick_wall_ns_ = now_ns;
  const std::uint64_t t = ticks_++;
  for (Series& s : series_) {
    // Sample every tick even when the stride skips the point: kRate must
    // keep its count cursor current so a retained point's rate covers
    // one tick interval, not everything since the last retained point.
    const double v = sample(s, dt_s);
    if (t % s.stride != 0) continue;
    if (s.t.size() == opts_.capacity) {
      // Budget full: decimate 2:1 (keep points on the doubled stride),
      // then double the stride. The whole run stays represented at half
      // the resolution instead of losing its tail.
      const std::uint64_t keep = s.stride * 2;
      std::size_t w = 0;
      for (std::size_t i = 0; i < s.t.size(); ++i) {
        if (static_cast<std::uint64_t>(s.t[i]) % keep == 0) {
          s.t[w] = s.t[i];
          s.v[w] = s.v[i];
          ++w;
        }
      }
      s.t.resize(w);
      s.v.resize(w);
      s.stride = keep;
      if (t % s.stride != 0) continue;
    }
    s.t.push_back(static_cast<double>(t));
    s.v.push_back(v);
  }
#endif
}

std::uint64_t MetricSampler::ticks() const noexcept { return ticks_; }

std::size_t MetricSampler::series_count() const noexcept {
  return series_.size();
}

std::size_t MetricSampler::capacity() const noexcept {
  return opts_.capacity;
}

json::Value MetricSampler::to_json() const {
  auto root = json::Value::object();
  root["ticks"] = ticks_;
  root["capacity"] = static_cast<std::uint64_t>(opts_.capacity);
  auto series = json::Value::object();
  for (const Series& s : series_) {
    auto one = json::Value::object();
    one["kind"] = std::string(kind_name(s.spec.kind));
    one["metric"] = s.spec.metric;
    if (s.spec.kind == Kind::kRatio) one["metric2"] = s.spec.metric2;
    if (s.spec.kind == Kind::kPercentile) {
      one["percentile"] = s.spec.percentile;
    }
    one["modeled"] = s.spec.modeled ? 1 : 0;
    one["stride"] = s.stride;
    auto t = json::Value::array();
    for (const double x : s.t) t.push_back(x);
    auto v = json::Value::array();
    for (const double x : s.v) v.push_back(x);
    one["t"] = std::move(t);
    one["v"] = std::move(v);
    series[s.spec.name] = std::move(one);
  }
  root["series"] = std::move(series);
  return root;
}

bool MetricSampler::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << to_json().dump() << "\n";
  return static_cast<bool>(out);
}

void MetricSampler::install_on_current_thread() {
  driver_ = std::this_thread::get_id();
#if PMO_TELEMETRY_ENABLED
  detail::g_installed.store(this, std::memory_order_release);
#endif
}

void MetricSampler::uninstall() {
#if PMO_TELEMETRY_ENABLED
  detail::g_installed.store(nullptr, std::memory_order_release);
#endif
}

MetricSampler* MetricSampler::installed() noexcept {
#if PMO_TELEMETRY_ENABLED
  return detail::g_installed.load(std::memory_order_acquire);
#else
  return nullptr;
#endif
}

void detail_tick_point() {
#if PMO_TELEMETRY_ENABLED
  MetricSampler* s = detail::g_installed.load(std::memory_order_acquire);
  if (s == nullptr) return;
  // Driver-thread gate: only the thread that installed the sampler may
  // tick it, and never from inside a parallel task — which worker ran a
  // replica (cluster lanes, serve tasks) is scheduling, and scheduling
  // must not shape a modeled series.
  if (s->driver_ != std::this_thread::get_id()) return;
  if (exec::in_parallel_task()) return;
  s->tick();
#endif
}

}  // namespace pmo::telemetry::timeseries
