// Event-timeline tracing: Chrome-trace / Perfetto export on top of the
// metrics registry.
//
// Design goals, in order:
//  1. ~Zero cost when off. The whole layer compiles to no-ops under
//     PMO_TELEMETRY=OFF, and with telemetry on it is additionally gated
//     by a *runtime* flag (a TraceSession being alive): every emitter's
//     first instruction is one relaxed atomic load.
//  2. Timelines, not aggregates. telemetry::Span keeps recording its
//     histogram; while a session is active it *additionally* emits
//     begin/end events, so the same instrumentation yields both views.
//  3. One file a human can open. TraceSession::write() streams Chrome
//     trace-event JSON (the "JSON object format") that loads directly in
//     chrome://tracing or https://ui.perfetto.dev, with process/thread
//     names for the simulated-rank tracks and the recovery audit track,
//     plus repo-specific sections (NVBM wear heatmaps) that Perfetto
//     ignores and our tools read.
//
// Track model: (pid, tid) pairs. pid 0 is the real process (wall-clock
// spans); cluster::ClusterSim maps simulated rank r to pid
// kTraceRankPidBase + r with *modeled* timestamps; recovery audit events
// are pinned to kRecoveryAuditPid so crash -> can_restore -> restore ->
// restore_into reads as one causally-ordered track (each audit event
// carries a monotonically increasing "audit_seq" arg, checked by
// validate_chrome_trace / tools/trace2summary).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/events.hpp"
#include "telemetry/json.hpp"

#ifndef PMO_TELEMETRY_ENABLED
#define PMO_TELEMETRY_ENABLED 1
#endif

namespace pmo::telemetry::trace {

/// Simulated-rank tracks: rank r renders as process kTraceRankPidBase+r.
inline constexpr std::uint32_t kTraceRankPidBase = 1000;
/// One process-wide track for the recovery audit log.
inline constexpr std::uint32_t kRecoveryAuditPid = 900;
/// Serving tracks (bench_serve and the serve SLO tracker's tail-sampled
/// slow-query events): the mutator gets its own process row, reader lane
/// L renders as kServeReaderPidBase + L. Layout contract, checked by
/// trace_test: audit (900) < rank base (1000) <= ranks < mutator (1900)
/// < reader base (2000) <= lanes — serving and cluster tracks are never
/// recorded into the same trace, but the bases still keep practically
/// traced fleets (up to 900 ranks, any lane count) collision-free.
inline constexpr std::uint32_t kServeMutatorPid = 1900;
inline constexpr std::uint32_t kServeReaderPidBase = 2000;
/// Default per-thread ring capacity (events).
inline constexpr std::size_t kDefaultBufferCapacity = std::size_t{1} << 18;

namespace detail {
extern std::atomic<bool> g_active;
}

/// True while a TraceSession is recording (always false when compiled
/// with PMO_TELEMETRY=OFF). The one check every emitter makes first.
inline bool active() noexcept {
#if PMO_TELEMETRY_ENABLED
  return detail::g_active.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

struct TrackId {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

/// Session-relative wall-clock nanoseconds (0 when no session is active).
std::uint64_t now_ns() noexcept;

/// The track events from this thread currently land on. Defaults to
/// pid 0 / a per-thread tid; overridden by TrackGuard.
TrackId current_track() noexcept;

/// Scoped track override for the calling thread: everything emitted in
/// scope (including Span begin/end events) lands on (pid, tid). Used to
/// put persist work on its own track and to give bench scenarios and
/// simulated ranks distinct timelines. Cheap enough to construct
/// unconditionally (two thread-local stores).
class TrackGuard {
 public:
  TrackGuard(std::uint32_t pid, std::uint32_t tid) noexcept;
  ~TrackGuard();
  TrackGuard(const TrackGuard&) = delete;
  TrackGuard& operator=(const TrackGuard&) = delete;

 private:
  TrackId prev_{};
  bool prev_overridden_ = false;
};

using Args = std::initializer_list<std::pair<const char*, double>>;

/// Low-level emitter: appends `ev` (as given — caller supplies track and
/// timestamp) to the calling thread's ring buffer, stamping the global
/// sequence number. No-op when no session is active. This is what the
/// cluster simulator uses to lay out *modeled* timelines.
void emit(TraceEvent ev);

// Convenience emitters; all wall-clock, on the current track, and no-ops
// when inactive.
void begin(std::string_view name, std::string_view cat = "span");
void end(std::string_view name, std::string_view cat = "span");
void instant(std::string_view name, std::string_view cat = "app",
             Args args = {});
void counter(std::string_view name, double value);
void flow_begin(std::string_view name, std::uint64_t id);
void flow_end(std::string_view name, std::uint64_t id);
/// Fresh process-unique id for pairing flow_begin/flow_end.
std::uint64_t next_flow_id() noexcept;

/// Recovery audit log: an instant event on the dedicated audit track
/// (kRecoveryAuditPid), category "recovery", with an auto-attached
/// monotonically increasing "audit_seq" arg so causal order survives the
/// export sort and is machine-checkable.
void audit(std::string_view name, Args args = {});

/// Names a pid's track in the exported trace ("rank 3", "recovery
/// audit"). Idempotent; no-op when inactive.
void name_process(std::uint32_t pid, const std::string& name);
void name_thread(std::uint32_t pid, std::uint32_t tid,
                 const std::string& name);
/// Names the calling thread's current track.
void name_current_thread(const std::string& name);

// ---- sections (wear heatmaps & friends) -----------------------------------

/// RAII registration of a named JSON section provider. Sections are
/// pull-mode (evaluated at export), and a dying handle *freezes* its
/// provider's final value instead of dropping it — so a device destroyed
/// mid-bench (sec56_recovery's scoped bundles) still contributes its wear
/// heatmap to the trace/report written at the end.
class Section {
 public:
  Section() = default;
  Section(Section&& o) noexcept { *this = std::move(o); }
  Section& operator=(Section&& o) noexcept;
  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;
  ~Section() { reset(); }
  /// Freezes the provider's current value and unregisters it.
  void reset();

 private:
  friend Section register_section(std::string,
                                  std::function<json::Value()>);
  std::uint64_t id_ = 0;
};

Section register_section(std::string name, std::function<json::Value()> fn);
/// All sections as one JSON object: live providers evaluated now, plus
/// every frozen value. Works with or without an active session.
json::Value collect_sections();
/// Drops all live and frozen sections (test isolation).
void clear_sections();

// ---- session ---------------------------------------------------------------

/// One recording session (at most one active per process). Construction
/// arms the runtime gate; stop() (or destruction) disarms it and drains
/// every thread's ring buffer into a single timestamp-ordered event list.
class TraceSession {
 public:
  struct Options {
    std::size_t buffer_capacity = kDefaultBufferCapacity;  ///< per thread
  };

  TraceSession();
  explicit TraceSession(Options opts);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Stops recording and drains. Idempotent; write() calls it.
  void stop();

  std::size_t event_count() const noexcept { return events_.size(); }
  std::uint64_t dropped_events() const noexcept { return dropped_; }

  /// Streams the Chrome trace JSON document:
  ///   { "schema_version": 1, "displayTimeUnit": "ms",
  ///     "metadata": {event_count, dropped_events, buffers},
  ///     "wear_heatmaps": { <section name>: {...}, ... },
  ///     "traceEvents": [ M-events..., sorted events... ] }
  /// Deterministic for a given event set (stable sort by ts then emit
  /// order; fixed number formatting).
  void write(std::ostream& os);
  /// write() to a file; false (with a message on stderr) on I/O failure.
  bool write_file(const std::string& path);

 private:
  bool stopped_ = false;
  std::uint64_t dropped_ = 0;
  std::size_t buffers_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> process_names_;
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                        std::string>>
      thread_names_;
};

// ---- validation ------------------------------------------------------------

/// Result of structurally validating an exported trace document.
struct TraceCheck {
  bool ok = true;
  std::string error;          ///< first violation, empty when ok
  std::size_t events = 0;     ///< traceEvents entries (M-events excluded)
  std::size_t tracks = 0;     ///< distinct (pid, tid) pairs seen
  std::size_t slices = 0;     ///< matched B/E pairs + X events
  std::size_t flows = 0;      ///< matched s/f pairs
  std::size_t audit_events = 0;
  std::uint64_t dropped = 0;  ///< metadata.dropped_events
};

/// Checks a parsed Chrome trace document produced by TraceSession::write:
/// per-track B/E pairing (LIFO, names match), X-slice containment (no
/// partial overlap on a track), non-decreasing timestamps in file order,
/// every flow 's' resolved by a later 'f' with the same id, and recovery
/// audit events in increasing audit_seq order. Used by trace2summary and
/// the unit tests; deliberately independent of the recording machinery so
/// it also compiles (and passes on empty traces) under PMO_TELEMETRY=OFF.
TraceCheck validate_chrome_trace(const json::Value& doc);

}  // namespace pmo::telemetry::trace
