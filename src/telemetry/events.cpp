#include "telemetry/events.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace pmo::telemetry::trace {

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

namespace {

/// Microseconds with fixed 3-decimal (nanosecond) precision: integer
/// arithmetic only, so the formatting is deterministic across platforms.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

/// Mirrors json::Value number formatting: integers exactly, doubles %.10g.
void append_number(std::string& out, double v) {
  char buf[40];
  if (std::nearbyint(v) == v && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  out += buf;
}

}  // namespace

char phase_letter(EventType t) noexcept {
  switch (t) {
    case EventType::kBegin: return 'B';
    case EventType::kEnd: return 'E';
    case EventType::kComplete: return 'X';
    case EventType::kInstant: return 'i';
    case EventType::kCounter: return 'C';
    case EventType::kFlowBegin: return 's';
    case EventType::kFlowEnd: return 'f';
  }
  return '?';
}

void TraceEvent::dump_chrome(std::string& out) const {
  out += "{\"name\":";
  append_json_string(out, name);
  out += ",\"cat\":";
  append_json_string(out, cat.empty() ? "app" : cat);
  out += ",\"ph\":\"";
  out.push_back(phase_letter(type));
  out += "\",\"ts\":";
  append_us(out, ts_ns);
  out += ",\"pid\":";
  append_number(out, static_cast<double>(pid));
  out += ",\"tid\":";
  append_number(out, static_cast<double>(tid));
  if (type == EventType::kComplete) {
    out += ",\"dur\":";
    append_us(out, dur_ns);
  }
  if (type == EventType::kInstant) {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }
  if (type == EventType::kFlowBegin || type == EventType::kFlowEnd) {
    out += ",\"id\":";
    append_number(out, static_cast<double>(id));
  }
  const bool counter = type == EventType::kCounter;
  if (counter || !args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    if (counter) {
      out += "\"value\":";
      append_number(out, value);
      first = false;
    }
    for (const auto& [k, v] : args) {
      if (!first) out.push_back(',');
      append_json_string(out, k);
      out.push_back(':');
      append_number(out, v);
      first = false;
    }
    out.push_back('}');
  }
  out.push_back('}');
}

// ---------------------------------------------------------------------------
// EventBuffer
// ---------------------------------------------------------------------------

EventBuffer::EventBuffer(std::size_t capacity) : capacity_(capacity) {
  PMO_CHECK_MSG(capacity > 0, "trace buffer capacity must be positive");
  ring_.reserve(capacity);
}

void EventBuffer::push(TraceEvent ev) {
  std::lock_guard lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[pushed_ % capacity_] = std::move(ev);
  }
  ++pushed_;
}

std::uint64_t EventBuffer::pushed() const {
  std::lock_guard lk(mu_);
  return pushed_;
}

std::uint64_t EventBuffer::dropped() const {
  std::lock_guard lk(mu_);
  return pushed_ > capacity_ ? pushed_ - capacity_ : 0;
}

std::vector<TraceEvent> EventBuffer::drain() const {
  std::lock_guard lk(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (pushed_ <= capacity_) {
    out = ring_;
  } else {
    // The ring wrapped: the oldest retained event sits at pushed_ %
    // capacity_ (the next overwrite position).
    const std::size_t head = pushed_ % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

void EventBuffer::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
  pushed_ = 0;
}

}  // namespace pmo::telemetry::trace
