// Trace event model and per-thread ring buffers.
//
// The timeline layer (trace.hpp) records *events*, not aggregates: where a
// telemetry::Histogram collapses ten thousand persist() calls into one
// log2 distribution, a TraceEvent keeps each call's begin/end timestamps
// so the compute/persist overlap and per-routine timelines the paper
// argues about (Figs. 3 and 7) can actually be *seen* in
// chrome://tracing / Perfetto.
//
// Events are the Chrome trace-event vocabulary:
//  * kBegin/kEnd   — a duration slice on one track ('B'/'E')
//  * kComplete     — a slice with an explicit duration ('X'); used by the
//                    cluster simulator, whose timelines are modeled, not
//                    measured
//  * kInstant      — a point marker ('i'): version swap, CoW copy, GC
//  * kCounter      — a sampled value series ('C')
//  * kFlowBegin/kFlowEnd — a flow arrow between slices on different
//                    tracks ('s'/'f'): cross-rank handoffs
//
// EventBuffer is a fixed-capacity ring: when a session outlives its
// budget the *oldest* events are overwritten (the tail of a run is what
// you debug) and the drop count is surfaced in the export metadata, never
// silently lost.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pmo::telemetry::trace {

enum class EventType : std::uint8_t {
  kBegin,      ///< 'B' duration-slice open
  kEnd,        ///< 'E' duration-slice close
  kComplete,   ///< 'X' slice with explicit dur_ns
  kInstant,    ///< 'i' point event (thread-scoped)
  kCounter,    ///< 'C' counter sample (value)
  kFlowBegin,  ///< 's' flow-arrow start (id)
  kFlowEnd,    ///< 'f' flow-arrow end (id)
};

/// Chrome "ph" letter for an event type.
char phase_letter(EventType t) noexcept;

/// Appends `s` as a quoted JSON string, escaping like telemetry::json so
/// trace files and bench reports agree byte-for-byte on string handling.
void append_json_string(std::string& out, const std::string& s);

struct TraceEvent {
  EventType type = EventType::kInstant;
  std::uint32_t pid = 0;   ///< track process (simulated rank / scenario)
  std::uint32_t tid = 0;   ///< track thread within the pid
  std::uint64_t ts_ns = 0;   ///< session-relative nanoseconds
  std::uint64_t dur_ns = 0;  ///< kComplete only
  std::uint64_t id = 0;      ///< kFlowBegin/kFlowEnd pairing id
  double value = 0.0;        ///< kCounter sample
  std::uint64_t seq = 0;     ///< global emit order (drain tie-break)
  std::string name;
  std::string cat;
  /// Extra "args" members (numeric only — enough for epochs, counts,
  /// audit sequence numbers).
  std::vector<std::pair<std::string, double>> args;

  /// Appends this event as one compact Chrome trace-event JSON object
  /// (no trailing newline). Timestamps are exported in microseconds with
  /// fixed 3-decimal nanosecond precision, so output is deterministic.
  void dump_chrome(std::string& out) const;
};

/// Fixed-capacity ring of trace events. Single logical producer (the
/// owning thread) but push/drain are mutex-guarded so the session drain
/// and a straggling producer cannot race; the uncontended lock cost is
/// noise next to the string work of building an event.
class EventBuffer {
 public:
  explicit EventBuffer(std::size_t capacity);

  /// Appends; overwrites the oldest event when full.
  void push(TraceEvent ev);

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t pushed() const;
  /// Events lost to wraparound (pushed - retained).
  std::uint64_t dropped() const;
  /// Copies the retained events, oldest first.
  std::vector<TraceEvent> drain() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t pushed_ = 0;
};

}  // namespace pmo::telemetry::trace
