// Unified metrics and tracing substrate.
//
// Every layer of the repo publishes its accounting here instead of growing
// private counter structs: the NVBM device registers its access/wear
// counters, PM-octree counts CoW copies / twin reuse / merges / GC sweeps,
// the cluster simulator accumulates the per-routine breakdown of Figs. 7
// and 8b, and the bench harness snapshots the registry into BENCH_*.json.
// p4est-style AMR stacks ship the same kind of built-in per-algorithm
// statistics layer; this is ours.
//
// Three metric kinds, hierarchical dot-separated names:
//  * Counter   — monotonically increasing u64 ("nvbm.writes",
//                "pmoctree.cow_copies", "cluster.routine.balance_ns").
//  * Gauge     — last-written double ("nvbm.mean_wear").
//  * Histogram — log2-bucketed value distribution, used for span
//                durations ("pmoctree.persist" nanoseconds).
//
// Increment paths are relaxed atomics: thread-safe-enough for concurrent
// writers, no ordering guarantees between metrics (export may observe a
// torn *set* of metrics, never a torn value). Name lookup takes a mutex —
// call sites on hot paths cache the returned reference once (metrics are
// never deallocated while their registry lives; drop_gauges() retires a
// gauge from the namespace but keeps the object alive for stale cached
// references). The whole Registry API — lookup, snapshot(), source
// registration/reset, drop_gauges() — is safe to call concurrently from
// any thread; src/exec worker threads publish through it directly.
//
// Compile-time kill switch: building with -DPMO_TELEMETRY_ENABLED=0 (the
// PMO_TELEMETRY=OFF CMake option) turns every increment, record and span
// into a no-op while keeping the full API, so instrumented code needs no
// #ifdefs and the overhead of the enabled build can be measured against a
// true zero baseline (micro_ops acceptance bound: within 5%).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"

#ifndef PMO_TELEMETRY_ENABLED
#define PMO_TELEMETRY_ENABLED 1
#endif

namespace pmo::telemetry {

/// True when the library was compiled with telemetry recording enabled.
constexpr bool enabled() noexcept { return PMO_TELEMETRY_ENABLED != 0; }

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if PMO_TELEMETRY_ENABLED
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
#if PMO_TELEMETRY_ENABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log2-bucketed histogram: bucket b counts values whose bit width is b,
/// i.e. value v lands in bucket floor(log2(v))+1 (v=0 in bucket 0), so
/// bucket b spans [2^(b-1), 2^b). Tracks count/sum/min/max exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t min() const noexcept;  ///< 0 when empty
  std::uint64_t max() const noexcept;  ///< 0 when empty
  std::uint64_t bucket_count(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  double mean() const noexcept;
  /// Inclusive upper bound (2^b - 1) of the bucket holding the
  /// p-quantile, 0<=p<=1. Approximate by construction; exact min/max
  /// come from min()/max().
  std::uint64_t percentile_bound(double p) const noexcept;
  /// Interpolated p-quantile, 0<=p<=1: locates the bucket holding the
  /// rank like percentile_bound, then places the rank linearly inside
  /// the bucket's [2^(b-1), 2^b) value range, clamped to the recorded
  /// [min, max]. Exact for distributions that fill their buckets with
  /// consecutive integers (e.g. uniform); never quantizes the tail to a
  /// power of two the way percentile_bound does.
  std::uint64_t percentile(double p) const noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Immutable copy of a histogram's state at snapshot time.
struct HistogramView {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::pair<int, std::uint64_t>> buckets;  ///< nonzero only

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Same interpolated estimate as Histogram::percentile, over the
  /// snapshotted bucket list.
  std::uint64_t percentile(double p) const noexcept;
};

/// Point-in-time copy of every metric in a registry. Snapshots subtract
/// (delta) so benches can report per-step / per-phase numbers.
class Snapshot {
 public:
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramView> histograms;

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramView* histogram(const std::string& name) const;

  /// Metric-wise difference: counters and histogram counts/sums subtract
  /// (clamped at 0); gauges keep *this* snapshot's (newer) value;
  /// histogram min/max also keep the newer values (they cannot subtract).
  Snapshot delta(const Snapshot& since) const;
};

/// Named-metric registry. One process-wide instance (global()) serves the
/// library; tests may instantiate private registries.
class Registry {
 public:
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. The returned reference stays valid for the life of
  /// the registry; hot call sites cache it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// RAII registration of a pull-mode metric source. The callback runs at
  /// every snapshot()/refresh_sources() and typically writes gauges (e.g.
  /// the NVBM device republishing its counter struct). The source is
  /// unregistered when the returned handle dies, so objects with shorter
  /// lifetime than the registry can publish safely.
  class Source {
   public:
    Source() = default;
    Source(Source&& o) noexcept { *this = std::move(o); }
    Source& operator=(Source&& o) noexcept;
    ~Source() { reset(); }
    void reset();

   private:
    friend class Registry;
    Registry* reg_ = nullptr;
    std::uint64_t id_ = 0;
    /// Runs once when the handle dies (after unregistering, outside the
    /// registry lock). Stored in the handle — not the registry — so
    /// Registry::clear() cannot orphan it. Typical use: drop the gauges
    /// the source published, so a later snapshot doesn't keep reporting a
    /// dead object's last values (see bench_common::make_bundle).
    std::function<void()> cleanup_;
  };
  Source register_source(std::function<void(Registry&)> fill,
                         std::function<void()> cleanup = {});
  /// Runs every registered source callback (snapshot() does this itself).
  /// Fills run under the source lock, so a Source handle dying on another
  /// thread blocks until in-flight fills finish — a fill can never run
  /// against an already-destroyed publisher. Consequence: a fill must not
  /// call snapshot()/refresh_sources() or touch Source handles itself.
  void refresh_sources();

  /// Removes every gauge whose name starts with `prefix` from the
  /// namespace (a later snapshot no longer reports it). Counters and
  /// histograms are left alone (they are cumulative by contract); gauges
  /// are last-written values, so a gauge outliving its writer reports a
  /// ghost. Cached Gauge references stay VALID: the dropped objects are
  /// retired to a graveyard freed only by clear(), so a concurrent
  /// set() on a stale reference is harmless (it updates an unreachable
  /// object) instead of a use-after-free.
  void drop_gauges(std::string_view prefix);

  Snapshot snapshot();

  /// Drops every metric and source. Test isolation helper; never call
  /// while cached metric references are still in use.
  void clear();

 private:
  // Two independent locks: mu_ guards the metric maps, sources_mu_ guards
  // the source list and is HELD WHILE FILLS RUN (fills take mu_ through
  // counter()/gauge(), so sources_mu_ must never be acquired while
  // holding mu_).
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  /// Gauges removed by drop_gauges(): unreachable by name but kept alive
  /// for cached references. Freed by clear().
  std::vector<std::unique_ptr<Gauge>> retired_gauges_;
  mutable std::mutex sources_mu_;
  std::uint64_t next_source_ = 1;
  std::vector<std::pair<std::uint64_t, std::function<void(Registry&)>>>
      sources_;
};

/// RAII tracing span: records the scope's wall-clock nanoseconds into a
/// histogram named by the span path. Spans nest per thread — a Span
/// constructed while another is live on the same thread appends its name
/// to the parent's path ("pmoctree.persist" + "gc" ->
/// "pmoctree.persist.gc"), so phase structure is captured at source.
class Span {
 public:
  explicit Span(std::string_view name)
      : Span(Registry::global(), name) {}
  Span(Registry& reg, std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Dot-joined path of the innermost live span on this thread ("" when
  /// none). Exposed for tests and log correlation.
  static const std::string& current_path();

 private:
#if PMO_TELEMETRY_ENABLED
  Registry& reg_;
  std::string prev_path_;  ///< parent path to restore on exit
  std::uint64_t start_ns_;
  bool traced_ = false;  ///< emitted a trace begin (session was active)
#endif
};

// ---- exporters ------------------------------------------------------------

/// Pretty-prints a snapshot as fixed-width tables (counters & gauges, then
/// histograms), for humans.
void write_table(const Snapshot& snap, std::ostream& os);

/// Structured export: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, min, max, mean, buckets}}}. Key order
/// is sorted (std::map iteration), so output is stable across runs.
json::Value to_json(const Snapshot& snap);

/// to_json + dump to a stream.
void write_json(const Snapshot& snap, std::ostream& os);

}  // namespace pmo::telemetry
