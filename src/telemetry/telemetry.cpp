#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <ostream>

#include "common/stats.hpp"
#include "telemetry/trace.hpp"

namespace pmo::telemetry {

#if PMO_TELEMETRY_ENABLED
namespace {

std::uint64_t wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local std::string t_span_path;

}  // namespace
#endif

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::record(std::uint64_t v) noexcept {
#if PMO_TELEMETRY_ENABLED
  // bit_width(v) is 64 for v >= 2^63; fold those into the last bucket
  // instead of indexing past the array.
  const int b =
      v == 0 ? 0
             : std::min(static_cast<int>(std::bit_width(v)), kBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

std::uint64_t Histogram::min() const noexcept {
  const auto v = min_.load(std::memory_order_relaxed);
  return v == ~std::uint64_t{0} ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::percentile_bound(double p) const noexcept {
  const auto n = count();
  if (n == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      p * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank)
      return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
  }
  return max();
}

namespace {

/// Shared by Histogram::percentile and HistogramView::percentile. Walks
/// the (bucket, count) list to the bucket holding the p-rank, then
/// interpolates: log2 bucket b >= 1 holds `cnt` samples somewhere in
/// [2^(b-1), 2^b); assuming they are evenly spaced, the k-th (1-based)
/// of them sits at lo + (k-1) * width / cnt. That is exact when the
/// bucket is filled by consecutive integers (uniform distributions) and
/// within half a step otherwise; the clamp to [min, max] keeps the
/// estimate inside the observed range at both tails.
std::uint64_t interpolated_percentile(
    const std::vector<std::pair<int, std::uint64_t>>& buckets,
    std::uint64_t n, std::uint64_t mn, std::uint64_t mx, double p) noexcept {
  if (n == 0) return 0;
  p = std::min(1.0, std::max(0.0, p));
  const auto rank = static_cast<std::uint64_t>(
      p * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (const auto& [b, cnt] : buckets) {
    if (cnt == 0) continue;
    if (seen + cnt < rank) {
      seen += cnt;
      continue;
    }
    if (b == 0) return std::max<std::uint64_t>(mn, 0);
    const double lo = std::ldexp(1.0, b - 1);
    const double width = lo;  // bucket b spans [2^(b-1), 2^b)
    const std::uint64_t k = rank - seen;  // 1-based rank inside bucket
    double v = lo + static_cast<double>(k - 1) * width /
                        static_cast<double>(cnt);
    const double dmn = static_cast<double>(mn);
    const double dmx = static_cast<double>(mx);
    if (v < dmn) v = dmn;
    if (v > dmx) v = dmx;
    // Doubles stop resolving integers near 2^63; saturate to max()
    // instead of overflowing the cast.
    if (v >= 9.2e18) return mx;
    return static_cast<std::uint64_t>(std::llround(v));
  }
  return mx;
}

}  // namespace

std::uint64_t Histogram::percentile(double p) const noexcept {
  std::vector<std::pair<int, std::uint64_t>> buckets;
  for (int b = 0; b < kBuckets; ++b) {
    const auto n = bucket_count(b);
    if (n != 0) buckets.emplace_back(b, n);
  }
  return interpolated_percentile(buckets, count(), min(), max(), p);
}

std::uint64_t HistogramView::percentile(double p) const noexcept {
  return interpolated_percentile(buckets, count, min, max, p);
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

std::uint64_t Snapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double Snapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

const HistogramView* Snapshot::histogram(const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

Snapshot Snapshot::delta(const Snapshot& since) const {
  Snapshot out;
  for (const auto& [name, v] : counters) {
    const auto base = since.counter(name);
    out.counters[name] = v > base ? v - base : 0;
  }
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    HistogramView d = h;
    if (const auto* base = since.histogram(name)) {
      d.count = h.count > base->count ? h.count - base->count : 0;
      d.sum = h.sum > base->sum ? h.sum - base->sum : 0;
      std::map<int, std::uint64_t> buckets;
      for (const auto& [b, n] : h.buckets) buckets[b] = n;
      for (const auto& [b, n] : base->buckets) {
        auto it = buckets.find(b);
        if (it == buckets.end()) continue;
        it->second = it->second > n ? it->second - n : 0;
        if (it->second == 0) buckets.erase(it);
      }
      d.buckets.assign(buckets.begin(), buckets.end());
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

Registry::Source& Registry::Source::operator=(Source&& o) noexcept {
  if (this != &o) {
    reset();
    reg_ = o.reg_;
    id_ = o.id_;
    cleanup_ = std::move(o.cleanup_);
    o.reg_ = nullptr;
    o.id_ = 0;
    o.cleanup_ = nullptr;
  }
  return *this;
}

void Registry::Source::reset() {
  if (reg_ == nullptr) return;
  {
    // sources_mu_ is held by refresh_sources() for the whole fill pass,
    // so once this erase returns no fill can still be running against
    // the publisher that owns this handle (typically a device about to
    // be destroyed).
    std::lock_guard lk(reg_->sources_mu_);
    auto& sources = reg_->sources_;
    for (auto it = sources.begin(); it != sources.end(); ++it) {
      if (it->first == id_) {
        sources.erase(it);
        break;
      }
    }
  }
  reg_ = nullptr;
  id_ = 0;
  if (cleanup_) {
    // Outside the lock: the cleanup typically calls back into the
    // registry (drop_gauges).
    auto fn = std::move(cleanup_);
    cleanup_ = nullptr;
    fn();
  }
}

Registry::Source Registry::register_source(
    std::function<void(Registry&)> fill, std::function<void()> cleanup) {
  Source handle;
  handle.reg_ = this;
  handle.cleanup_ = std::move(cleanup);
  {
    std::lock_guard lk(sources_mu_);
    handle.id_ = next_source_++;
    sources_.emplace_back(handle.id_, std::move(fill));
  }
  return handle;
}

void Registry::drop_gauges(std::string_view prefix) {
  std::lock_guard lk(mu_);
  for (auto it = gauges_.begin(); it != gauges_.end();) {
    if (it->first.size() >= prefix.size() &&
        it->first.compare(0, prefix.size(), prefix) == 0) {
      // Retire, don't destroy: another thread may hold a cached
      // reference from before the drop (see the header contract).
      retired_gauges_.push_back(std::move(it->second));
      it = gauges_.erase(it);
    } else {
      ++it;
    }
  }
}

void Registry::refresh_sources() {
  // Fills run under sources_mu_ (not mu_ — they take mu_ themselves via
  // counter()/gauge()), so Source::reset() on another thread blocks
  // until the pass completes instead of destroying a publisher that a
  // copied-out callback is about to call.
  std::lock_guard lk(sources_mu_);
  for (const auto& [id, fn] : sources_) fn(*this);
}

Snapshot Registry::snapshot() {
  refresh_sources();
  Snapshot out;
  std::lock_guard lk(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramView v;
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const auto n = h->bucket_count(b);
      if (n != 0) v.buckets.emplace_back(b, n);
    }
    out.histograms[name] = std::move(v);
  }
  return out;
}

void Registry::clear() {
  {
    std::lock_guard lk(sources_mu_);
    sources_.clear();
  }
  std::lock_guard lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  retired_gauges_.clear();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

#if PMO_TELEMETRY_ENABLED

Span::Span(Registry& reg, std::string_view name)
    : reg_(reg), prev_path_(t_span_path), start_ns_(wall_ns()) {
  if (t_span_path.empty()) {
    t_span_path.assign(name);
  } else {
    t_span_path.append(1, '.').append(name);
  }
  if (trace::active()) {
    trace::begin(t_span_path);
    traced_ = true;
  }
}

Span::~Span() {
  const std::uint64_t elapsed = wall_ns() - start_ns_;
  reg_.histogram(t_span_path).record(elapsed);
  // Only close a slice we opened, and only into the *same* session — a
  // session started or stopped mid-span must not see half a pair.
  if (traced_ && trace::active()) trace::end(t_span_path);
  t_span_path = std::move(prev_path_);
}

const std::string& Span::current_path() { return t_span_path; }

#else

// Fully self-contained disabled-build stub: no thread-local path is kept
// (and none is compiled in), so a PMO_TELEMETRY=OFF TU needs nothing from
// the enabled implementation.
Span::Span(Registry&, std::string_view) {}
Span::~Span() = default;

const std::string& Span::current_path() {
  static const std::string empty;
  return empty;
}

#endif

// ---------------------------------------------------------------------------
// exporters
// ---------------------------------------------------------------------------

void write_table(const Snapshot& snap, std::ostream& os) {
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    TablePrinter t({"metric", "value"});
    for (const auto& [name, v] : snap.counters)
      t.row({name, std::to_string(v)});
    for (const auto& [name, v] : snap.gauges)
      t.row({name, TablePrinter::num(v, 3)});
    t.print(os);
  }
  if (!snap.histograms.empty()) {
    TablePrinter t({"histogram", "count", "sum", "min", "mean", "max"});
    for (const auto& [name, h] : snap.histograms) {
      t.row({name, std::to_string(h.count), std::to_string(h.sum),
             std::to_string(h.min), TablePrinter::num(h.mean(), 1),
             std::to_string(h.max)});
    }
    t.print(os);
  }
}

json::Value to_json(const Snapshot& snap) {
  auto root = json::Value::object();
  auto& counters = root["counters"] = json::Value::object();
  for (const auto& [name, v] : snap.counters) counters[name] = v;
  auto& gauges = root["gauges"] = json::Value::object();
  for (const auto& [name, v] : snap.gauges) gauges[name] = v;
  auto& hists = root["histograms"] = json::Value::object();
  for (const auto& [name, h] : snap.histograms) {
    auto hv = json::Value::object();
    hv["count"] = h.count;
    hv["sum"] = h.sum;
    hv["min"] = h.min;
    hv["max"] = h.max;
    hv["mean"] = h.mean();
    auto buckets = json::Value::array();
    for (const auto& [b, n] : h.buckets) {
      auto pair = json::Value::array();
      pair.push_back(b);
      pair.push_back(n);
      buckets.push_back(std::move(pair));
    }
    hv["buckets"] = std::move(buckets);
    hists[name] = std::move(hv);
  }
  return root;
}

void write_json(const Snapshot& snap, std::ostream& os) {
  os << to_json(snap).dump();
}

}  // namespace pmo::telemetry
