#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace pmo::telemetry::json {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v, bool is_int) {
  if (std::isnan(v) || std::isinf(v)) {  // JSON has no NaN/Inf
    out += "null";
    return;
  }
  const bool integral =
      is_int || (v == std::floor(v) && std::fabs(v) < 9.0e15);
  char buf[40];
  if (integral) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  out += buf;
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

Value& Value::operator[](const std::string& key) {
  PMO_CHECK_MSG(type_ == Type::kObject || type_ == Type::kNull,
                "json: operator[] on non-object");
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Value{});
  return members_.back().second;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::push_back(Value v) {
  PMO_CHECK_MSG(type_ == Type::kArray || type_ == Type::kNull,
                "json: push_back on non-array");
  type_ = Type::kArray;
  elems_.push_back(std::move(v));
}

std::size_t Value::size() const noexcept {
  return type_ == Type::kArray ? elems_.size() : members_.size();
}

void Value::dump_to(std::string& out, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, num_, is_int_); return;
    case Type::kString: append_escaped(out, str_); return;
    case Type::kArray: {
      if (elems_.empty()) {
        out += "[]";
        return;
      }
      bool scalar_only = true;
      for (const auto& e : elems_)
        scalar_only &= !e.is_array() && !e.is_object();
      if (scalar_only) {
        out.push_back('[');
        for (std::size_t i = 0; i < elems_.size(); ++i) {
          if (i != 0) out += ", ";
          elems_[i].dump_to(out, depth);
        }
        out.push_back(']');
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        indent(out, depth + 1);
        elems_[i].dump_to(out, depth + 1);
        if (i + 1 != elems_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent(out, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, depth + 1);
        if (i + 1 != members_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent(out, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0);
  out.push_back('\n');
  return out;
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return fail("bad literal");
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("bad escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            const std::string hex(text.substr(pos, 4));
            pos += 4;
            const auto cp =
                static_cast<unsigned>(std::strtoul(hex.c_str(), nullptr, 16));
            // Basic-multilingual-plane code points only; encode as UTF-8.
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Value::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        Value member;
        if (!parse_value(member)) return false;
        out[key] = std::move(member);
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          skip_ws();
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out = Value::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Value elem;
        if (!parse_value(elem)) return false;
        out.push_back(std::move(elem));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (c == 't') {
      out = Value(true);
      return literal("true");
    }
    if (c == 'f') {
      out = Value(false);
      return literal("false");
    }
    if (c == 'n') {
      out = Value();
      return literal("null");
    }
    // number
    const std::size_t start = pos;
    if (text[pos] == '-') ++pos;
    bool has_frac = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      has_frac |= text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E';
      ++pos;
    }
    if (pos == start) return fail("unexpected character");
    const std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("bad number");
    out = has_frac ? Value(v) : Value(static_cast<std::int64_t>(v));
    return true;
  }
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  Parser p{text};
  Value v;
  if (!p.parse_value(v)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing characters";
    return std::nullopt;
  }
  return v;
}

}  // namespace pmo::telemetry::json
