#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <set>

#include "common/assert.hpp"

namespace pmo::telemetry::trace {

namespace detail {
std::atomic<bool> g_active{false};
}

namespace {

// Track overrides exist in both build modes: TrackGuard must behave
// identically whether or not recording is compiled in.
thread_local bool t_track_overridden = false;
thread_local TrackId t_track{};

#if PMO_TELEMETRY_ENABLED
std::uint64_t wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

}  // namespace

TrackGuard::TrackGuard(std::uint32_t pid, std::uint32_t tid) noexcept
    : prev_(t_track), prev_overridden_(t_track_overridden) {
  t_track = TrackId{pid, tid};
  t_track_overridden = true;
}

TrackGuard::~TrackGuard() {
  t_track = prev_;
  t_track_overridden = prev_overridden_;
}

// ---------------------------------------------------------------------------
// sections (always compiled: wear heatmaps are counters, not tracing, so
// bench reports keep them even under PMO_TELEMETRY=OFF)
// ---------------------------------------------------------------------------

namespace {

struct SectionEntry {
  std::uint64_t id = 0;
  std::string name;
  std::function<json::Value()> fn;
};

struct Sections {
  std::mutex mu;
  std::uint64_t next_id = 1;
  std::vector<SectionEntry> live;
  std::vector<std::pair<std::string, json::Value>> frozen;
};

Sections& sections() {
  static auto* s = new Sections;  // leaked: usable during static teardown
  return *s;
}

}  // namespace

Section& Section::operator=(Section&& o) noexcept {
  if (this != &o) {
    reset();
    id_ = o.id_;
    o.id_ = 0;
  }
  return *this;
}

void Section::reset() {
  if (id_ == 0) return;
  auto& s = sections();
  SectionEntry taken;
  {
    std::lock_guard lk(s.mu);
    for (auto it = s.live.begin(); it != s.live.end(); ++it) {
      if (it->id == id_) {
        taken = std::move(*it);
        s.live.erase(it);
        break;
      }
    }
  }
  id_ = 0;
  if (!taken.fn) return;
  // Evaluate outside the lock (the provider may allocate, never should it
  // deadlock against another section call), then freeze the final value.
  json::Value v = taken.fn();
  std::lock_guard lk(s.mu);
  s.frozen.emplace_back(std::move(taken.name), std::move(v));
}

Section register_section(std::string name, std::function<json::Value()> fn) {
  auto& s = sections();
  Section handle;
  std::lock_guard lk(s.mu);
  handle.id_ = s.next_id++;
  s.live.push_back({handle.id_, std::move(name), std::move(fn)});
  return handle;
}

json::Value collect_sections() {
  auto& s = sections();
  std::vector<SectionEntry> live_copy;
  std::vector<std::pair<std::string, json::Value>> values;
  {
    std::lock_guard lk(s.mu);
    live_copy = s.live;
    values = s.frozen;
  }
  for (const auto& e : live_copy) values.emplace_back(e.name, e.fn());
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  json::Value out = json::Value::object();
  for (auto& [name, v] : values) out[name] = std::move(v);
  return out;
}

void clear_sections() {
  auto& s = sections();
  std::lock_guard lk(s.mu);
  s.live.clear();
  s.frozen.clear();
}

// ---------------------------------------------------------------------------
// recording machinery
// ---------------------------------------------------------------------------

#if PMO_TELEMETRY_ENABLED

namespace {

struct Collector {
  std::mutex mu;
  std::uint64_t generation = 0;  ///< bumped per session (guarded by mu)
  std::size_t capacity = kDefaultBufferCapacity;
  std::uint64_t t0_ns = 0;
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  std::map<std::uint32_t, std::string> process_names;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
      thread_names;
  std::atomic<std::uint64_t> generation_atomic{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> flow_ids{1};
  std::atomic<std::uint64_t> audit_seq{1};
};

Collector& collector() {
  static auto* c = new Collector;
  return *c;
}

struct ThreadState {
  std::shared_ptr<EventBuffer> buf;
  std::uint64_t generation = 0;
  std::uint32_t default_tid = 0;
};
thread_local ThreadState t_state;

/// The calling thread's buffer for the current session, registering (and
/// assigning the default tid) on first use. The shared_ptr keeps drained
/// data alive even if the thread exits before the session stops.
ThreadState& thread_state() {
  auto& c = collector();
  const auto gen =
      c.generation_atomic.load(std::memory_order_acquire);
  if (t_state.buf == nullptr || t_state.generation != gen) {
    std::lock_guard lk(c.mu);
    t_state.buf = std::make_shared<EventBuffer>(c.capacity);
    c.buffers.push_back(t_state.buf);
    t_state.default_tid = static_cast<std::uint32_t>(c.buffers.size());
    t_state.generation = c.generation;
  }
  return t_state;
}

TraceEvent make_event(EventType type, std::string_view name,
                      std::string_view cat) {
  TraceEvent ev;
  ev.type = type;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.ts_ns = now_ns();
  const TrackId tr = current_track();
  ev.pid = tr.pid;
  ev.tid = tr.tid;
  return ev;
}

}  // namespace

std::uint64_t now_ns() noexcept {
  if (!active()) return 0;
  const auto& c = collector();
  const std::uint64_t now = wall_ns();
  return now > c.t0_ns ? now - c.t0_ns : 0;
}

TrackId current_track() noexcept {
  if (t_track_overridden) return t_track;
  if (!active()) return TrackId{};
  return TrackId{0, thread_state().default_tid};
}

void emit(TraceEvent ev) {
  if (!active()) return;
  auto& c = collector();
  auto& ts = thread_state();
  ev.seq = c.seq.fetch_add(1, std::memory_order_relaxed);
  ts.buf->push(std::move(ev));
}

void begin(std::string_view name, std::string_view cat) {
  if (!active()) return;
  emit(make_event(EventType::kBegin, name, cat));
}

void end(std::string_view name, std::string_view cat) {
  if (!active()) return;
  emit(make_event(EventType::kEnd, name, cat));
}

void instant(std::string_view name, std::string_view cat, Args args) {
  if (!active()) return;
  TraceEvent ev = make_event(EventType::kInstant, name, cat);
  for (const auto& [k, v] : args) ev.args.emplace_back(k, v);
  emit(std::move(ev));
}

void counter(std::string_view name, double value) {
  if (!active()) return;
  TraceEvent ev = make_event(EventType::kCounter, name, "counter");
  ev.value = value;
  emit(std::move(ev));
}

void flow_begin(std::string_view name, std::uint64_t id) {
  if (!active()) return;
  TraceEvent ev = make_event(EventType::kFlowBegin, name, "flow");
  ev.id = id;
  emit(std::move(ev));
}

void flow_end(std::string_view name, std::uint64_t id) {
  if (!active()) return;
  TraceEvent ev = make_event(EventType::kFlowEnd, name, "flow");
  ev.id = id;
  emit(std::move(ev));
}

std::uint64_t next_flow_id() noexcept {
  return collector().flow_ids.fetch_add(1, std::memory_order_relaxed);
}

void audit(std::string_view name, Args args) {
  if (!active()) return;
  auto& c = collector();
  name_process(kRecoveryAuditPid, "recovery audit");
  TraceEvent ev;
  ev.type = EventType::kInstant;
  ev.name.assign(name);
  ev.cat = "recovery";
  ev.ts_ns = now_ns();
  ev.pid = kRecoveryAuditPid;
  ev.tid = 1;
  ev.args.emplace_back(
      "audit_seq",
      static_cast<double>(c.audit_seq.fetch_add(
          1, std::memory_order_relaxed)));
  for (const auto& [k, v] : args) ev.args.emplace_back(k, v);
  emit(std::move(ev));
}

void name_process(std::uint32_t pid, const std::string& name) {
  if (!active()) return;
  auto& c = collector();
  std::lock_guard lk(c.mu);
  c.process_names[pid] = name;
}

void name_thread(std::uint32_t pid, std::uint32_t tid,
                 const std::string& name) {
  if (!active()) return;
  auto& c = collector();
  std::lock_guard lk(c.mu);
  c.thread_names[{pid, tid}] = name;
}

void name_current_thread(const std::string& name) {
  if (!active()) return;
  const TrackId tr = current_track();
  name_thread(tr.pid, tr.tid, name);
}

TraceSession::TraceSession() : TraceSession(Options()) {}

TraceSession::TraceSession(Options opts) {
  PMO_CHECK_MSG(opts.buffer_capacity > 0,
                "trace buffer capacity must be positive");
  auto& c = collector();
  std::lock_guard lk(c.mu);
  PMO_CHECK_MSG(!detail::g_active.load(std::memory_order_relaxed),
                "a TraceSession is already active in this process");
  ++c.generation;
  c.generation_atomic.store(c.generation, std::memory_order_release);
  c.capacity = opts.buffer_capacity;
  c.buffers.clear();
  c.process_names.clear();
  c.thread_names.clear();
  c.seq.store(0, std::memory_order_relaxed);
  c.flow_ids.store(1, std::memory_order_relaxed);
  c.audit_seq.store(1, std::memory_order_relaxed);
  c.t0_ns = wall_ns();
  detail::g_active.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() { stop(); }

void TraceSession::stop() {
  if (stopped_) return;
  stopped_ = true;
  auto& c = collector();
  detail::g_active.store(false, std::memory_order_release);
  // Producers must be quiesced by now (benches stop before writing; tests
  // join their threads). The per-buffer mutex makes a straggler safe, at
  // worst its event lands after the drain and is not exported.
  std::lock_guard lk(c.mu);
  buffers_ = c.buffers.size();
  for (const auto& b : c.buffers) {
    dropped_ += b->dropped();
    auto evs = b->drain();
    events_.insert(events_.end(), std::make_move_iterator(evs.begin()),
                   std::make_move_iterator(evs.end()));
  }
  std::sort(events_.begin(), events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                        : a.seq < b.seq;
            });
  process_names_.assign(c.process_names.begin(), c.process_names.end());
  for (const auto& [key, name] : c.thread_names)
    thread_names_.emplace_back(key, name);
  c.buffers.clear();
}

#else  // !PMO_TELEMETRY_ENABLED

std::uint64_t now_ns() noexcept { return 0; }

TrackId current_track() noexcept {
  return t_track_overridden ? t_track : TrackId{};
}

void emit(TraceEvent) {}
void begin(std::string_view, std::string_view) {}
void end(std::string_view, std::string_view) {}
void instant(std::string_view, std::string_view, Args) {}
void counter(std::string_view, double) {}
void flow_begin(std::string_view, std::uint64_t) {}
void flow_end(std::string_view, std::uint64_t) {}
std::uint64_t next_flow_id() noexcept { return 0; }
void audit(std::string_view, Args) {}
void name_process(std::uint32_t, const std::string&) {}
void name_thread(std::uint32_t, std::uint32_t, const std::string&) {}
void name_current_thread(const std::string&) {}

TraceSession::TraceSession() : TraceSession(Options()) {}
TraceSession::TraceSession(Options) {}
TraceSession::~TraceSession() = default;
void TraceSession::stop() { stopped_ = true; }

#endif  // PMO_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// export (both modes: an OFF build still writes a valid, empty trace)
// ---------------------------------------------------------------------------

void TraceSession::write(std::ostream& os) {
  stop();
  json::Value meta = json::Value::object();
  meta["event_count"] = events_.size();
  meta["dropped_events"] = dropped_;
  meta["buffers"] = buffers_;
  os << "{\n\"schema_version\": 1,\n\"displayTimeUnit\": \"ms\",\n";
  os << "\"metadata\": " << meta.dump() << ",\n";
  os << "\"wear_heatmaps\": " << collect_sections().dump() << ",\n";
  os << "\"traceEvents\": [";
  bool first = true;
  std::string line;
  const auto put = [&](const std::string& text) {
    os << (first ? "\n" : ",\n") << text;
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    line = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
    append_json_string(line, name);
    line += "}}";
    put(line);
  }
  for (const auto& [key, name] : thread_names_) {
    line = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(key.first) +
           ",\"tid\":" + std::to_string(key.second) +
           ",\"args\":{\"name\":";
    append_json_string(line, name);
    line += "}}";
    put(line);
  }
  for (const auto& ev : events_) {
    line.clear();
    ev.dump_chrome(line);
    put(line);
  }
  os << "\n]\n}\n";
}

bool TraceSession::write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write trace %s\n", path.c_str());
    return false;
  }
  write(out);
  return out.good();
}

// ---------------------------------------------------------------------------
// validation
// ---------------------------------------------------------------------------

TraceCheck validate_chrome_trace(const json::Value& doc) {
  TraceCheck out;
  const auto fail = [&out](std::string msg) {
    out.ok = false;
    if (out.error.empty()) out.error = std::move(msg);
  };
  if (!doc.is_object()) {
    fail("trace document is not an object");
    return out;
  }
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail("missing traceEvents array");
    return out;
  }
  if (const json::Value* meta = doc.find("metadata");
      meta != nullptr && meta->is_object()) {
    if (const json::Value* d = meta->find("dropped_events");
        d != nullptr && d->is_number()) {
      out.dropped = static_cast<std::uint64_t>(d->as_double());
    }
  }

  // Per-track slice stacks: an entry is either an open B (no end yet) or
  // an X slice with a known end; X slices must nest by containment.
  struct Frame {
    std::string name;
    bool open = false;  ///< B frame awaiting its E
    double end_us = 0.0;
  };
  using Track = std::pair<std::uint64_t, std::uint64_t>;
  std::map<Track, std::vector<Frame>> stacks;
  std::map<Track, double> last_ts;
  std::map<std::uint64_t, double> open_flows;
  double last_audit_seq = 0.0;

  const auto num_field = [](const json::Value& e, const char* key,
                            double* v) {
    const json::Value* f = e.find(key);
    if (f == nullptr || !f->is_number()) return false;
    *v = f->as_double();
    return true;
  };

  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = events->at(i);
    const auto at = [&] { return "traceEvents[" + std::to_string(i) + "]"; };
    if (!e.is_object()) {
      fail(at() + " is not an object");
      continue;
    }
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string().empty()) {
      fail(at() + " missing ph");
      continue;
    }
    const char phase = ph->as_string()[0];
    if (phase == 'M') continue;  // metadata carries no timestamp
    ++out.events;
    double ts = 0, pid = 0, tid = 0;
    if (!num_field(e, "ts", &ts) || !num_field(e, "pid", &pid) ||
        !num_field(e, "tid", &tid)) {
      fail(at() + " missing ts/pid/tid");
      continue;
    }
    const json::Value* namev = e.find("name");
    const std::string name =
        namev != nullptr && namev->is_string() ? namev->as_string() : "";
    const Track track{static_cast<std::uint64_t>(pid),
                      static_cast<std::uint64_t>(tid)};
    const auto lt = last_ts.find(track);
    if (lt != last_ts.end() && ts < lt->second) {
      fail(at() + " timestamp regresses on its track");
    }
    last_ts[track] = ts;
    auto& st = stacks[track];
    // Retire X slices that ended at or before this timestamp. Exported
    // timestamps are quantized to 0.001us, so half a nanosecond absorbs
    // double-addition artifacts in ts + dur without hiding real overlap.
    constexpr double kSliceEps = 5e-4;
    while (!st.empty() && !st.back().open &&
           st.back().end_us <= ts + kSliceEps) {
      st.pop_back();
    }
    switch (phase) {
      case 'B':
        st.push_back(Frame{name, true, 0.0});
        break;
      case 'E':
        if (st.empty() || !st.back().open) {
          fail(at() + " E \"" + name + "\" without a matching open B");
        } else if (!name.empty() && st.back().name != name) {
          fail(at() + " E \"" + name + "\" closes B \"" + st.back().name +
               "\" (bad nesting)");
        } else {
          st.pop_back();
          ++out.slices;
        }
        break;
      case 'X': {
        double dur = 0;
        if (!num_field(e, "dur", &dur)) {
          fail(at() + " X slice missing dur");
          break;
        }
        if (!st.empty() && !st.back().open &&
            ts + dur > st.back().end_us + kSliceEps) {
          fail(at() + " X \"" + name + "\" partially overlaps \"" +
               st.back().name + "\"");
        }
        st.push_back(Frame{name, false, ts + dur});
        ++out.slices;
        break;
      }
      case 's': {
        double id = 0;
        if (!num_field(e, "id", &id)) {
          fail(at() + " flow begin missing id");
        } else {
          open_flows[static_cast<std::uint64_t>(id)] = ts;
        }
        break;
      }
      case 'f': {
        double id = 0;
        if (!num_field(e, "id", &id)) {
          fail(at() + " flow end missing id");
          break;
        }
        const auto it = open_flows.find(static_cast<std::uint64_t>(id));
        if (it == open_flows.end()) {
          fail(at() + " flow end without a begin");
        } else if (ts < it->second) {
          fail(at() + " flow ends before it begins");
        } else {
          open_flows.erase(it);
          ++out.flows;
        }
        break;
      }
      case 'i':
      case 'C':
        break;
      default:
        fail(at() + std::string(" unknown phase '") + phase + "'");
    }
    const json::Value* cat = e.find("cat");
    if (cat != nullptr && cat->is_string() &&
        cat->as_string() == "recovery") {
      ++out.audit_events;
      double seq = 0;
      const json::Value* args = e.find("args");
      if (args == nullptr || !args->is_object() ||
          !num_field(*args, "audit_seq", &seq)) {
        fail(at() + " recovery event missing audit_seq");
      } else if (seq <= last_audit_seq) {
        fail(at() + " recovery audit events out of causal order");
      } else {
        last_audit_seq = seq;
      }
    }
  }
  for (const auto& [track, st] : stacks) {
    for (const auto& f : st) {
      if (f.open) {
        fail("unclosed B slice \"" + f.name + "\" on pid " +
             std::to_string(track.first) + " tid " +
             std::to_string(track.second));
      }
    }
  }
  if (!open_flows.empty()) fail("flow begin without a matching end");
  out.tracks = last_ts.size();
  return out;
}

}  // namespace pmo::telemetry::trace
