// Emulated non-volatile byte-addressable memory (NVBM) device.
//
// Follows the paper's own evaluation methodology (§5.1): NVBM is modeled on
// DRAM, with extra read/write latency injected through calibrated spin
// loops (Table 2 defaults: DRAM 60/60 ns, NVBM 100/150 ns). On top of
// that, this emulator adds what a real NVDIMM has and DRAM emulation
// normally hides:
//
//  * a store-buffer/cache model — stores are *volatile* until explicitly
//    flushed (the clflush/mfence analog), so crash consistency of the data
//    structures above is actually testable;
//  * adversarial crash simulation — at a simulated power failure, each
//    dirty cache line independently either reached the durable medium
//    (spontaneous eviction) or did not;
//  * read/write accounting and per-line wear counters, used to reproduce
//    the paper's NVBM-write-reduction results (Fig. 11) and endurance
//    discussion.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo::nvbm {

/// How memory latency is realized.
enum class LatencyMode {
  kNone,      ///< count accesses only; no time cost (fast unit tests)
  kModeled,   ///< count accesses and accumulate modeled nanoseconds
  kInjected,  ///< count, accumulate, and really spin (paper's methodology)
};

/// Device timing/behaviour parameters. Defaults are the paper's Table 2.
struct Config {
  std::uint64_t read_ns = 100;        ///< NVBM read latency per cache line
  std::uint64_t write_ns = 150;       ///< NVBM write latency per cache line
  std::uint64_t dram_read_ns = 60;    ///< DRAM read latency (for reference)
  std::uint64_t dram_write_ns = 60;   ///< DRAM write latency (for reference)
  std::uint64_t endurance = 100'000'000;  ///< writes/bit: 1e6–1e8 per paper
  LatencyMode latency_mode = LatencyMode::kModeled;
  bool track_wear = false;       ///< per-line write counters
  bool crash_sim = false;        ///< keep a durable shadow image
  std::size_t cache_line = 64;   ///< flush granularity in bytes
};

/// Access counters, all cumulative since construction or reset_counters().
struct Counters {
  std::uint64_t reads = 0;          ///< read operations
  std::uint64_t writes = 0;         ///< write operations
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t lines_read = 0;     ///< cache-line touches (latency unit)
  std::uint64_t lines_written = 0;
  std::uint64_t flushes = 0;        ///< explicit persist (clflush) calls
  std::uint64_t barriers = 0;       ///< persist_barrier (sfence) calls
  /// Coalesced write-back extents issued by flush_all(): one per maximal
  /// run of contiguous dirty lines (the range-merging flush queue). The
  /// per-line modeled cost is unchanged — this counts how many flush
  /// *instructions* a range-flushing persist path would issue.
  std::uint64_t flush_spans = 0;
  std::uint64_t modeled_read_ns = 0;
  std::uint64_t modeled_write_ns = 0;
  /// Reads of NVBM-resident data absorbed by a DRAM-side cache above the
  /// device (the PM-octree node cache). Charged at DRAM read latency —
  /// they never touch the medium, so they do not count into reads /
  /// lines_read / total_accesses().
  std::uint64_t cached_reads = 0;
  std::uint64_t cached_lines = 0;
  std::uint64_t modeled_cached_ns = 0;

  std::uint64_t total_accesses() const noexcept { return reads + writes; }
  double write_fraction() const noexcept {
    const auto t = total_accesses();
    return t == 0 ? 0.0 : static_cast<double>(writes) / static_cast<double>(t);
  }
  std::uint64_t modeled_ns() const noexcept {
    return modeled_read_ns + modeled_write_ns + modeled_cached_ns;
  }
};

/// The emulated NVBM DIMM: a flat byte range addressed by offsets.
///
/// Thread-compatibility: a Device is confined to one logical owner
/// (matching the paper's per-process NVBM pool); the cluster simulator
/// gives each simulated rank its own Device.
class Device {
 public:
  /// Address-range granularity of the always-on wear heatmap: the device
  /// is split into this many equal byte ranges, each counting cache-line
  /// writes. Coarse enough to cost one add per written line, fine enough
  /// to show *where* the allocator/CoW layer hammers the medium.
  static constexpr std::size_t kWearBuckets = 64;

  Device(std::size_t capacity, Config config);

  std::size_t capacity() const noexcept { return capacity_; }
  const Config& config() const noexcept { return config_; }
  const Counters& counters() const noexcept { return counters_; }
  /// Zeroes the access counters (a measurement-session boundary). Wear
  /// state intentionally SURVIVES this call — both the per-line counters
  /// (track_wear) and the per-range wear buckets: they model the physical
  /// medium's endurance, which does not reset between experiments — the
  /// Fig. 11 / ablation_wear methodology depends on that. Tests that need
  /// a factory-fresh device use reset_all().
  void reset_counters() noexcept { counters_ = Counters{}; }
  /// reset_counters() plus a wipe of ALL wear state — per-line counters
  /// and per-range wear buckets — as if the DIMM were replaced.
  /// Test-only semantics; a real device cannot un-wear.
  void reset_all() noexcept {
    reset_counters();
    std::fill(wear_.begin(), wear_.end(), 0u);
    wear_buckets_.fill(0);
  }

  /// Reads `len` bytes at `offset` into `dst`, charging read latency.
  void read(std::uint64_t offset, void* dst, std::size_t len);

  /// Writes `len` bytes from `src` at `offset`, charging write latency.
  /// The bytes are NOT durable until flushed (see flush / persist_barrier)
  /// when crash simulation is enabled.
  void write(std::uint64_t offset, const void* src, std::size_t len);

  /// Typed convenience accessors.
  template <typename T>
  T load(std::uint64_t offset) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read(offset, &value, sizeof(T));
    return value;
  }
  template <typename T>
  void store(std::uint64_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(offset, &value, sizeof(T));
  }

  /// Direct pointer into the working image. Accesses through this pointer
  /// bypass latency accounting; callers must pair it with touch_read /
  /// touch_write to keep the model honest. Used by the node accessor layer
  /// to avoid double memcpy on hot paths.
  std::byte* raw(std::uint64_t offset, std::size_t len);

  /// Accounting-only variants used together with raw().
  void touch_read(std::uint64_t offset, std::size_t len);
  void touch_write(std::uint64_t offset, std::size_t len);

  /// Deferred-accounting replay, used by the PM-octree's parallel merge:
  /// workers touch the working image through raw() only (no counter or
  /// wear state is shared across threads) and log their traffic; the
  /// coordinating thread replays the totals here in deterministic task
  /// order. account_* charge the same modeled latency per line that
  /// touch_read / touch_write would have; mark_written replays the
  /// per-extent dirty/wear bookkeeping of one logged store.
  void account_reads(std::uint64_t ops, std::uint64_t bytes,
                     std::uint64_t lines);
  void account_writes(std::uint64_t ops, std::uint64_t bytes,
                      std::uint64_t lines);
  void mark_written(std::uint64_t offset, std::size_t len);

  /// Line span of [offset, offset+len) — the latency unit of one access.
  std::size_t lines_of(std::uint64_t offset, std::size_t len) const noexcept {
    return line_span(offset, len);
  }

  /// Accounting for a read of NVBM-resident data served by a DRAM-side
  /// cache layered above the device: charged at DRAM read latency into
  /// the cached_* counters so the modeled time reflects the hit without
  /// inflating the medium's read traffic.
  void charge_cached_read(std::size_t len);

  /// clflush analog: guarantees the given range is durable.
  void flush(std::uint64_t offset, std::size_t len);
  /// sfence analog. With our deterministic flush() this only counts, but
  /// call sites keep the real protocol visible.
  void persist_barrier();
  /// Flushes every dirty line (the whole-cache writeback at a persist
  /// point). No-op when crash simulation is off (everything is already
  /// "durable" then).
  void flush_all();
  /// Number of dirty (written, unflushed) cache lines.
  std::size_t dirty_lines() const noexcept { return dirty_count_; }
  /// Entries currently in the range-merging flush queue (pre-coalesce;
  /// adjacent stores already merge on append). Test/diagnostic hook.
  std::size_t pending_flush_spans() const noexcept {
    return span_queue_.size();
  }

  /// Simulated power failure + reboot: every dirty line independently
  /// either reached the medium or is lost (probability `survive_p` each);
  /// the working image is then reset to the durable image. Requires
  /// Config::crash_sim. Returns how many dirty lines were lost.
  std::size_t simulate_crash(Rng& rng, double survive_p = 0.5);

  /// Maximum per-line write count (0 if wear tracking disabled).
  std::uint64_t max_wear() const noexcept;
  /// Mean per-line write count over lines ever written.
  double mean_wear() const noexcept;

  /// Per-address-range line-write counts (the wear heatmap), always on.
  const std::array<std::uint64_t, kWearBuckets>& wear_buckets()
      const noexcept {
    return wear_buckets_;
  }
  /// The heatmap as JSON: {capacity, cache_line, bucket_bytes,
  /// total_line_writes, max_bucket, buckets: [u64 x kWearBuckets]}.
  /// Embedded in trace files ("wear_heatmaps" section) and bench reports.
  telemetry::json::Value wear_heatmap_json() const;

  /// Publishes the device's access/wear counters into `reg` as gauges
  /// under `prefix` ("nvbm" -> "nvbm.writes", "nvbm.max_wear", ...).
  /// Typically installed as a pull-mode registry source so every snapshot
  /// sees fresh values:
  ///   auto src = reg.register_source(
  ///       [&dev](telemetry::Registry& r) { dev.publish(r, "nvbm"); });
  void publish(telemetry::Registry& reg, const std::string& prefix) const;

 private:
  void charge_read(std::size_t lines);
  void charge_write(std::size_t lines);
  std::size_t line_span(std::uint64_t offset, std::size_t len) const noexcept;
  void mark_dirty(std::uint64_t offset, std::size_t len);
  /// Coalesces the queued write extents into maximal contiguous line
  /// runs, clears the queue, and returns the run count.
  std::size_t drain_spans();
  /// Copies line `line` of the working image to the durable image.
  void evict_line(std::uint64_t line);
  /// Invokes fn(line) for every dirty line in ascending order, then
  /// clears the bitmap. The hot loop of flush_all / simulate_crash.
  template <typename Fn>
  void drain_dirty(Fn&& fn) {
    for (std::size_t w = 0; w < dirty_words_.size(); ++w) {
      std::uint64_t word = dirty_words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        fn(static_cast<std::uint64_t>(w) * 64 + static_cast<unsigned>(bit));
      }
      dirty_words_[w] = 0;
    }
    dirty_count_ = 0;
  }

  std::size_t capacity_;
  Config config_;
  std::vector<std::byte> working_;
  std::vector<std::byte> durable_;  ///< only when crash_sim
  /// Line-granular dirty bitmap (one bit per cache line, only when
  /// crash_sim): mark_dirty is a test-and-set per line, far cheaper than
  /// the hash-set insert it replaces on the store-heavy write path.
  std::vector<std::uint64_t> dirty_words_;
  std::size_t dirty_count_ = 0;
  std::vector<std::uint32_t> wear_;          ///< only when track_wear
  std::array<std::uint64_t, kWearBuckets> wear_buckets_{};
  /// Range-merging flush queue: [first_line, last_line] extents appended
  /// by mark_dirty (a store contiguous with the previous one extends the
  /// tail entry in place). flush_all() coalesces and drains it.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> span_queue_;
  Counters counters_;
};

}  // namespace pmo::nvbm
