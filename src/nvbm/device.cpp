#include "nvbm/device.hpp"

#include <algorithm>

#include "common/timing.hpp"
#include "telemetry/trace.hpp"

namespace pmo::nvbm {

Device::Device(std::size_t capacity, Config config)
    : capacity_(capacity), config_(config) {
  PMO_CHECK_MSG(capacity > 0, "device capacity must be positive");
  PMO_CHECK_MSG((config_.cache_line & (config_.cache_line - 1)) == 0,
                "cache line size must be a power of two");
  working_.resize(capacity_);
  if (config_.crash_sim) {
    durable_.resize(capacity_);
    const std::size_t lines =
        (capacity_ + config_.cache_line - 1) / config_.cache_line;
    dirty_words_.resize((lines + 63) / 64, 0);
  }
  if (config_.track_wear)
    wear_.resize((capacity_ + config_.cache_line - 1) / config_.cache_line);
}

std::size_t Device::line_span(std::uint64_t offset,
                              std::size_t len) const noexcept {
  if (len == 0) return 0;
  const std::uint64_t first = offset / config_.cache_line;
  const std::uint64_t last = (offset + len - 1) / config_.cache_line;
  return static_cast<std::size_t>(last - first + 1);
}

void Device::charge_read(std::size_t lines) {
  counters_.lines_read += lines;
  switch (config_.latency_mode) {
    case LatencyMode::kNone:
      break;
    case LatencyMode::kModeled:
      counters_.modeled_read_ns += lines * config_.read_ns;
      break;
    case LatencyMode::kInjected:
      counters_.modeled_read_ns += lines * config_.read_ns;
      spin_ns(lines * config_.read_ns);
      break;
  }
}

void Device::charge_write(std::size_t lines) {
  counters_.lines_written += lines;
  switch (config_.latency_mode) {
    case LatencyMode::kNone:
      break;
    case LatencyMode::kModeled:
      counters_.modeled_write_ns += lines * config_.write_ns;
      break;
    case LatencyMode::kInjected:
      counters_.modeled_write_ns += lines * config_.write_ns;
      spin_ns(lines * config_.write_ns);
      break;
  }
}

void Device::mark_dirty(std::uint64_t offset, std::size_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / config_.cache_line;
  const std::uint64_t last = (offset + len - 1) / config_.cache_line;
  // Range-merging flush queue: a store contiguous with (or overlapping)
  // the previous one extends the tail entry instead of appending. The
  // allocator/CoW layer writes in rising-offset bursts, so most stores
  // collapse into the tail entry here and flush_all()'s sort/merge pass
  // sees a short queue.
  if (!span_queue_.empty() && first <= span_queue_.back().second + 1 &&
      last + 1 >= span_queue_.back().first) {
    span_queue_.back().first = std::min(span_queue_.back().first, first);
    span_queue_.back().second = std::max(span_queue_.back().second, last);
  } else {
    span_queue_.emplace_back(first, last);
  }
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::size_t b = std::min<std::size_t>(
        static_cast<std::size_t>(line * config_.cache_line * kWearBuckets /
                                 capacity_),
        kWearBuckets - 1);
    ++wear_buckets_[b];
  }
  if (config_.crash_sim) {
    for (std::uint64_t line = first; line <= last; ++line) {
      const std::uint64_t mask = std::uint64_t{1} << (line & 63);
      std::uint64_t& word = dirty_words_[line >> 6];
      if ((word & mask) == 0) {
        word |= mask;
        ++dirty_count_;
      }
    }
  }
  if (config_.track_wear) {
    for (std::uint64_t line = first; line <= last; ++line) ++wear_[line];
  }
}

void Device::read(std::uint64_t offset, void* dst, std::size_t len) {
  PMO_CHECK_MSG(offset + len <= capacity_,
                "NVBM read out of range: off=" << offset << " len=" << len);
  ++counters_.reads;
  counters_.bytes_read += len;
  charge_read(line_span(offset, len));
  std::memcpy(dst, working_.data() + offset, len);
}

void Device::write(std::uint64_t offset, const void* src, std::size_t len) {
  PMO_CHECK_MSG(offset + len <= capacity_,
                "NVBM write out of range: off=" << offset << " len=" << len);
  ++counters_.writes;
  counters_.bytes_written += len;
  charge_write(line_span(offset, len));
  mark_dirty(offset, len);
  std::memcpy(working_.data() + offset, src, len);
}

std::byte* Device::raw(std::uint64_t offset, std::size_t len) {
  PMO_CHECK_MSG(offset + len <= capacity_,
                "NVBM raw access out of range: off=" << offset
                                                     << " len=" << len);
  return working_.data() + offset;
}

void Device::touch_read(std::uint64_t offset, std::size_t len) {
  ++counters_.reads;
  counters_.bytes_read += len;
  charge_read(line_span(offset, len));
}

void Device::touch_write(std::uint64_t offset, std::size_t len) {
  ++counters_.writes;
  counters_.bytes_written += len;
  charge_write(line_span(offset, len));
  mark_dirty(offset, len);
}

void Device::account_reads(std::uint64_t ops, std::uint64_t bytes,
                           std::uint64_t lines) {
  counters_.reads += ops;
  counters_.bytes_read += bytes;
  charge_read(static_cast<std::size_t>(lines));
}

void Device::account_writes(std::uint64_t ops, std::uint64_t bytes,
                            std::uint64_t lines) {
  counters_.writes += ops;
  counters_.bytes_written += bytes;
  charge_write(static_cast<std::size_t>(lines));
}

void Device::mark_written(std::uint64_t offset, std::size_t len) {
  mark_dirty(offset, len);
}

void Device::charge_cached_read(std::size_t len) {
  ++counters_.cached_reads;
  const std::size_t lines =
      (len + config_.cache_line - 1) / config_.cache_line;
  counters_.cached_lines += lines;
  switch (config_.latency_mode) {
    case LatencyMode::kNone:
      break;
    case LatencyMode::kModeled:
      counters_.modeled_cached_ns += lines * config_.dram_read_ns;
      break;
    case LatencyMode::kInjected:
      counters_.modeled_cached_ns += lines * config_.dram_read_ns;
      spin_ns(lines * config_.dram_read_ns);
      break;
  }
}

void Device::evict_line(std::uint64_t line) {
  const std::uint64_t begin = line * config_.cache_line;
  const std::size_t n =
      std::min<std::size_t>(config_.cache_line, capacity_ - begin);
  std::memcpy(durable_.data() + begin, working_.data() + begin, n);
}

void Device::flush(std::uint64_t offset, std::size_t len) {
  ++counters_.flushes;
  if (!config_.crash_sim || len == 0) return;
  const std::uint64_t first = offset / config_.cache_line;
  const std::uint64_t last =
      std::min<std::uint64_t>((offset + len - 1) / config_.cache_line,
                              capacity_ / config_.cache_line);
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::uint64_t mask = std::uint64_t{1} << (line & 63);
    std::uint64_t& word = dirty_words_[line >> 6];
    if ((word & mask) == 0) continue;
    evict_line(line);
    word &= ~mask;
    --dirty_count_;
  }
}

void Device::persist_barrier() { ++counters_.barriers; }

std::size_t Device::drain_spans() {
  if (span_queue_.empty()) return 0;
  std::sort(span_queue_.begin(), span_queue_.end());
  std::size_t spans = 0;
  std::uint64_t cur_first = span_queue_.front().first;
  std::uint64_t cur_last = span_queue_.front().second;
  for (std::size_t i = 1; i < span_queue_.size(); ++i) {
    const auto [first, last] = span_queue_[i];
    if (first <= cur_last + 1) {
      cur_last = std::max(cur_last, last);
    } else {
      ++spans;
      cur_first = first;
      cur_last = last;
    }
  }
  ++spans;
  span_queue_.clear();
  return spans;
}

void Device::flush_all() {
  ++counters_.flushes;
  counters_.flush_spans += drain_spans();
  if (!config_.crash_sim) return;
  drain_dirty([this](std::uint64_t line) { evict_line(line); });
}

std::size_t Device::simulate_crash(Rng& rng, double survive_p) {
  PMO_CHECK_MSG(config_.crash_sim,
                "simulate_crash requires Config::crash_sim = true");
  const std::size_t dirty_at_crash = dirty_count_;
  std::size_t lost = 0;
  // Ascending line order: each dirty line independently either reached
  // the medium (spontaneous eviction) or is lost.
  drain_dirty([&](std::uint64_t line) {
    if (rng.chance(survive_p)) {
      evict_line(line);
    } else {
      ++lost;
    }
  });
  // Reboot: the CPU-visible image is whatever the medium holds, and any
  // queued (never-issued) flush extents died with the cache.
  span_queue_.clear();
  std::memcpy(working_.data(), durable_.data(), capacity_);
  telemetry::trace::audit(
      "nvbm.crash", {{"dirty_lines", static_cast<double>(dirty_at_crash)},
                     {"lost_lines", static_cast<double>(lost)}});
  return lost;
}

void Device::publish(telemetry::Registry& reg,
                     const std::string& prefix) const {
  const auto gauge = [&](const char* name, double v) {
    reg.gauge(prefix + "." + name).set(v);
  };
  gauge("reads", static_cast<double>(counters_.reads));
  gauge("writes", static_cast<double>(counters_.writes));
  gauge("bytes_read", static_cast<double>(counters_.bytes_read));
  gauge("bytes_written", static_cast<double>(counters_.bytes_written));
  gauge("lines_read", static_cast<double>(counters_.lines_read));
  gauge("lines_written", static_cast<double>(counters_.lines_written));
  gauge("flushes", static_cast<double>(counters_.flushes));
  gauge("barriers", static_cast<double>(counters_.barriers));
  gauge("flush_spans", static_cast<double>(counters_.flush_spans));
  gauge("modeled_read_ns",
        static_cast<double>(counters_.modeled_read_ns));
  gauge("modeled_write_ns",
        static_cast<double>(counters_.modeled_write_ns));
  gauge("cached_reads", static_cast<double>(counters_.cached_reads));
  gauge("cached_lines", static_cast<double>(counters_.cached_lines));
  gauge("modeled_cached_ns",
        static_cast<double>(counters_.modeled_cached_ns));
  gauge("write_fraction", counters_.write_fraction());
  gauge("dirty_lines", static_cast<double>(dirty_count_));
  if (config_.track_wear) {
    gauge("max_wear", static_cast<double>(max_wear()));
    gauge("mean_wear", mean_wear());
  }
}

telemetry::json::Value Device::wear_heatmap_json() const {
  auto out = telemetry::json::Value::object();
  out["capacity"] = capacity_;
  out["cache_line"] = config_.cache_line;
  out["bucket_bytes"] = (capacity_ + kWearBuckets - 1) / kWearBuckets;
  std::uint64_t total = 0;
  std::uint64_t max_bucket = 0;
  auto buckets = telemetry::json::Value::array();
  for (const auto w : wear_buckets_) {
    total += w;
    max_bucket = std::max(max_bucket, w);
    buckets.push_back(w);
  }
  out["total_line_writes"] = total;
  out["max_bucket"] = max_bucket;
  out["buckets"] = std::move(buckets);
  return out;
}

std::uint64_t Device::max_wear() const noexcept {
  if (wear_.empty()) return 0;
  return *std::max_element(wear_.begin(), wear_.end());
}

double Device::mean_wear() const noexcept {
  if (wear_.empty()) return 0.0;
  std::uint64_t sum = 0;
  std::uint64_t touched = 0;
  for (const auto w : wear_) {
    if (w > 0) {
      sum += w;
      ++touched;
    }
  }
  return touched == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(touched);
}

}  // namespace pmo::nvbm
