#include "nvbm/heap.hpp"

namespace pmo::nvbm {

namespace {
constexpr std::size_t kHeaderSize = 256;  // room for PersistentHeader
static_assert(kHeaderSize % 16 == 0);
}  // namespace

Heap::Heap(Device& device) : device_(device) {
  PMO_CHECK_MSG(device_.capacity() > kHeaderSize + 4096,
                "device too small to host a heap");
  const auto magic = device_.load<std::uint64_t>(0);
  if (magic == kMagic) {
    attach();
  } else {
    format();
  }
}

std::uint64_t Heap::heap_begin() const noexcept {
  return kHeaderSize + sizeof(ObjHeader);
}

void Heap::format() {
  PersistentHeader hdr;
  hdr.magic = kMagic;
  hdr.version = kVersion;
  hdr.capacity = device_.capacity();
  hdr.high_water = kHeaderSize;
  device_.store(0, hdr);
  device_.flush(0, sizeof(hdr));
  device_.persist_barrier();
  high_water_ = kHeaderSize;
}

void Heap::attach() {
  const auto hdr = device_.load<PersistentHeader>(0);
  PMO_CHECK_MSG(hdr.magic == kMagic, "corrupt heap header magic");
  PMO_CHECK_MSG(hdr.version == kVersion,
                "heap version mismatch: " << hdr.version);
  PMO_CHECK_MSG(hdr.capacity == device_.capacity(),
                "heap formatted for a different capacity");
  high_water_ = hdr.high_water;
  // Rebuild volatile free lists from durable object headers. Objects whose
  // header was torn by a crash before ever being linked into the tree will
  // read as neither-allocated-nor-free; treat them as free space.
  std::uint64_t at = kHeaderSize;
  while (at + sizeof(ObjHeader) <= high_water_) {
    auto oh = device_.load<ObjHeader>(at);
    const std::uint64_t payload = at + sizeof(ObjHeader);
    const std::uint64_t next = payload + rounded(oh.payload_size);
    if (oh.payload_size == 0 || next > high_water_) {
      // Torn tail allocation: everything from here up is garbage space.
      // Reset the high-water mark over it.
      write_high_water(at);
      break;
    }
    if (oh.flags != kAllocatedFlag) {
      if (oh.flags != kFreeFlag) {
        oh.flags = kFreeFlag;
        device_.store(at, oh);
        device_.flush(at, sizeof(oh));
      }
      free_lists_[rounded(oh.payload_size)].push_back(payload);
      free_bytes_ += oh.payload_size;
      ++free_objects_;
    }
    at = next;
  }
}

std::size_t Heap::rounded(std::size_t size) noexcept {
  const std::size_t min = kAlign;
  const std::size_t r = (size + kAlign - 1) & ~(kAlign - 1);
  return r < min ? min : r;
}

void Heap::write_high_water(std::uint64_t hw) {
  high_water_ = hw;
  const auto field = offsetof(PersistentHeader, high_water);
  device_.store(field, hw);
  device_.flush(field, sizeof(hw));
  device_.persist_barrier();
}

void Heap::reserve_class(std::size_t size) {
  const std::size_t klass = rounded(size);
  if (klass == fast_klass_) return;
  if (fast_klass_ != 0 && !fast_list_.empty()) {
    auto& old = free_lists_[fast_klass_];
    old.insert(old.end(), fast_list_.begin(), fast_list_.end());
    fast_list_.clear();
  }
  fast_klass_ = klass;
  if (const auto it = free_lists_.find(klass); it != free_lists_.end()) {
    fast_list_ = std::move(it->second);
    free_lists_.erase(it);
  }
}

std::uint64_t Heap::alloc(std::size_t size) {
  PMO_CHECK_MSG(size > 0 && size <= 0xffffffffu, "bad allocation size");
  const std::size_t klass = rounded(size);

  std::uint64_t reuse = 0;
  if (klass == fast_klass_ && !fast_list_.empty()) {
    reuse = fast_list_.back();
    fast_list_.pop_back();
  } else if (auto it = free_lists_.find(klass);
             it != free_lists_.end() && !it->second.empty()) {
    reuse = it->second.back();
    it->second.pop_back();
  }
  if (reuse != 0) {
    const std::uint64_t payload = reuse;
    const std::uint64_t hdr_off = payload - sizeof(ObjHeader);
    ObjHeader oh{static_cast<std::uint32_t>(size), kAllocatedFlag};
    device_.store(hdr_off, oh);
    device_.flush(hdr_off, sizeof(oh));
    free_bytes_ -= klass;  // approximation: stored rounded on free
    --free_objects_;
    return payload;
  }

  const std::uint64_t hdr_off = high_water_;
  const std::uint64_t payload = hdr_off + sizeof(ObjHeader);
  const std::uint64_t next = payload + klass;
  if (next > device_.capacity()) {
    throw OutOfSpaceError("NVBM heap exhausted: need " +
                          std::to_string(klass) + "B, high water " +
                          std::to_string(high_water_) + "/" +
                          std::to_string(device_.capacity()));
  }
  ObjHeader oh{static_cast<std::uint32_t>(size), kAllocatedFlag};
  device_.store(hdr_off, oh);
  device_.flush(hdr_off, sizeof(oh));
  write_high_water(next);
  return payload;
}

std::uint64_t Heap::Arena::alloc() {
  PMO_CHECK_MSG(next_ < slots_.size(),
                "arena exhausted: " << slots_.size()
                                    << " slots carved, all used");
  const std::uint64_t payload = slots_[next_++];
  const std::uint64_t hdr_off = payload - sizeof(ObjHeader);
  const ObjHeader oh{obj_size_, kAllocatedFlag};
  std::memcpy(device_->raw(hdr_off, sizeof(oh)), &oh, sizeof(oh));
  return payload;
}

Heap::Arena Heap::carve_arena(std::size_t size, std::size_t count) {
  PMO_CHECK_MSG(size > 0 && size <= 0xffffffffu, "bad allocation size");
  Arena arena;
  arena.device_ = &device_;
  arena.obj_size_ = static_cast<std::uint32_t>(size);
  if (count == 0) return arena;
  const std::size_t klass = rounded(size);

  std::vector<std::uint64_t> reused;
  const auto pop_from = [&](std::vector<std::uint64_t>& list) {
    while (reused.size() < count && !list.empty()) {
      reused.push_back(list.back());
      list.pop_back();
    }
  };
  if (klass == fast_klass_) pop_from(fast_list_);
  if (reused.size() < count) {
    if (const auto it = free_lists_.find(klass); it != free_lists_.end())
      pop_from(it->second);
  }
  free_bytes_ -= reused.size() * klass;
  free_objects_ -= reused.size();

  const std::size_t from_bump = count - reused.size();
  if (from_bump > 0) {
    std::uint64_t at = high_water_;
    const std::uint64_t need =
        static_cast<std::uint64_t>(from_bump) * (sizeof(ObjHeader) + klass);
    if (at + need > device_.capacity()) {
      throw OutOfSpaceError("NVBM heap exhausted: arena needs " +
                            std::to_string(need) + "B, high water " +
                            std::to_string(high_water_) + "/" +
                            std::to_string(device_.capacity()));
    }
    arena.slots_.reserve(count);
    for (std::size_t i = 0; i < from_bump; ++i) {
      arena.slots_.push_back(at + sizeof(ObjHeader));
      at += sizeof(ObjHeader) + klass;
    }
    // One durable high-water advance for the whole block — the per-alloc
    // write_high_water line traffic is the main bump-path cost and is
    // what the carve amortizes away.
    write_high_water(at);
  }
  arena.bump_count_ = arena.slots_.size();
  arena.slots_.insert(arena.slots_.end(), reused.begin(), reused.end());
  return arena;
}

void Heap::release_arena(Arena& arena) {
  // Replay the deferred header-write accounting in carve order: one
  // 8-byte store per consumed slot, charged exactly as touch_write would
  // have charged it.
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t lines = 0;
  for (std::size_t i = 0; i < arena.next_; ++i) {
    const std::uint64_t hdr_off = arena.slots_[i] - sizeof(ObjHeader);
    ++ops;
    bytes += sizeof(ObjHeader);
    lines += device_.lines_of(hdr_off, sizeof(ObjHeader));
    device_.mark_written(hdr_off, sizeof(ObjHeader));
  }
  if (ops != 0) device_.account_writes(ops, bytes, lines);

  const std::size_t klass = rounded(arena.obj_size_);
  for (std::size_t i = arena.next_; i < arena.slots_.size(); ++i) {
    const std::uint64_t payload = arena.slots_[i];
    if (i < arena.bump_count_) {
      // Unused bump slot: needs a durable free header — attach() would
      // treat a zero header as the torn tail and truncate everything
      // above it, including live objects from later carves.
      const ObjHeader oh{arena.obj_size_, kFreeFlag};
      const std::uint64_t hdr_off = payload - sizeof(ObjHeader);
      device_.store(hdr_off, oh);
      device_.flush(hdr_off, sizeof(oh));
    }
    if (klass == fast_klass_) {
      fast_list_.push_back(payload);
    } else {
      free_lists_[klass].push_back(payload);
    }
    free_bytes_ += klass;
    ++free_objects_;
  }
  arena.slots_.clear();
  arena.bump_count_ = 0;
  arena.next_ = 0;
  arena.device_ = nullptr;
}

void Heap::free(std::uint64_t payload_offset) {
  const std::uint64_t hdr_off = payload_offset - sizeof(ObjHeader);
  auto oh = device_.load<ObjHeader>(hdr_off);
  PMO_CHECK_MSG(oh.flags == kAllocatedFlag,
                "double free or bad offset " << payload_offset);
  oh.flags = kFreeFlag;
  device_.store(hdr_off, oh);
  device_.flush(hdr_off, sizeof(oh));
  const std::size_t klass = rounded(oh.payload_size);
  if (klass == fast_klass_) {
    fast_list_.push_back(payload_offset);
  } else {
    free_lists_[klass].push_back(payload_offset);
  }
  free_bytes_ += klass;
  ++free_objects_;
}

std::uint32_t Heap::payload_size(std::uint64_t payload_offset) {
  const auto oh =
      device_.load<ObjHeader>(payload_offset - sizeof(ObjHeader));
  return oh.payload_size;
}

bool Heap::is_allocated(std::uint64_t payload_offset) {
  if (payload_offset < kHeaderSize + sizeof(ObjHeader) ||
      payload_offset >= high_water_)
    return false;
  const auto oh =
      device_.load<ObjHeader>(payload_offset - sizeof(ObjHeader));
  return oh.flags == kAllocatedFlag;
}

void Heap::set_root(int slot, std::uint64_t offset) {
  PMO_CHECK_MSG(slot >= 0 && slot < kMaxRoots, "root slot out of range");
  const std::uint64_t field =
      offsetof(PersistentHeader, roots) + sizeof(std::uint64_t) * slot;
  device_.store(field, offset);
  device_.flush(field, sizeof(offset));
  device_.persist_barrier();
}

std::uint64_t Heap::root(int slot) {
  PMO_CHECK_MSG(slot >= 0 && slot < kMaxRoots, "root slot out of range");
  const std::uint64_t field =
      offsetof(PersistentHeader, roots) + sizeof(std::uint64_t) * slot;
  return device_.load<std::uint64_t>(field);
}

void Heap::for_each_object(
    const std::function<void(std::uint64_t, std::uint32_t, bool)>& fn) {
  std::uint64_t at = kHeaderSize;
  while (at + sizeof(ObjHeader) <= high_water_) {
    const auto oh = device_.load<ObjHeader>(at);
    const std::uint64_t payload = at + sizeof(ObjHeader);
    if (oh.payload_size == 0) break;
    fn(payload, oh.payload_size, oh.flags == kAllocatedFlag);
    at = payload + rounded(oh.payload_size);
  }
}

std::size_t Heap::sweep(const std::function<bool(std::uint64_t)>& live) {
  std::vector<std::uint64_t> dead;
  for_each_object([&](std::uint64_t payload, std::uint32_t, bool allocated) {
    if (allocated && !live(payload)) dead.push_back(payload);
  });
  for (const auto payload : dead) free(payload);
  return dead.size();
}

HeapStats Heap::stats() {
  HeapStats s;
  s.capacity = device_.capacity();
  s.high_water = high_water_;
  for_each_object([&](std::uint64_t, std::uint32_t size, bool allocated) {
    if (allocated) {
      s.live_bytes += size;
      ++s.live_objects;
    } else {
      s.free_bytes += size;
      ++s.free_objects;
    }
  });
  return s;
}

}  // namespace pmo::nvbm
