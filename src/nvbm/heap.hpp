// Persistent heap on top of an nvbm::Device.
//
// Layout:
//   [Header | object, object, ...]           (offsets grow upward)
// Every object is an 8-byte ObjHeader followed by its payload. The header
// holds a durable high-water mark and a small table of named durable roots
// (8-byte offsets). Free lists are *volatile* and rebuilt on attach: this
// is deliberate — the PM-octree recovery story (paper §3.4) reclaims
// unreachable objects by mark-and-sweep GC from the consistent root, so
// the allocator itself needs no write-ahead logging. The only operation
// that must be atomic and durable is the 8-byte root update (set_root),
// exactly as the paper argues.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "nvbm/device.hpp"

namespace pmo::nvbm {

/// Index of a named durable root slot.
inline constexpr int kMaxRoots = 16;

/// Statistics of heap occupancy (drives threshold_NVBM GC scheduling).
struct HeapStats {
  std::uint64_t capacity = 0;
  std::uint64_t high_water = 0;    ///< top of ever-allocated region
  std::uint64_t live_bytes = 0;    ///< payload bytes in allocated objects
  std::uint64_t free_bytes = 0;    ///< payload bytes in freed objects
  std::uint64_t live_objects = 0;
  std::uint64_t free_objects = 0;

  /// Fraction of device capacity not yet consumed by the heap nor free.
  double available_fraction() const noexcept {
    if (capacity == 0) return 0.0;
    const auto usable = capacity - high_water + free_bytes;
    return static_cast<double>(usable) / static_cast<double>(capacity);
  }
};

class Heap {
 public:
  /// Attaches to `device`. When the device carries no valid heap (fresh
  /// memory), formats it. The device reference must outlive the heap.
  explicit Heap(Device& device);

  Device& device() noexcept { return device_; }
  const Device& device() const noexcept { return device_; }

  /// Allocates `size` payload bytes; returns the payload offset.
  /// Throws OutOfSpaceError when the device is exhausted.
  std::uint64_t alloc(std::size_t size);

  /// Installs a dedicated fast-path free list for `size`'s class (the
  /// PM-octree registers sizeof(PNode), which dominates allocations):
  /// alloc/free of that class skip the unordered_map lookup entirely.
  /// Existing free entries of the class migrate to the fast list; calling
  /// again with a different size migrates them back first.
  void reserve_class(std::size_t size);

  /// A pre-carved block of same-class allocation slots handed to one
  /// parallel-merge worker. The carve (coordinator, sequential) claims
  /// every offset up front — free-list pops plus ONE durable high-water
  /// advance for the whole bump block — so alloc() itself touches no
  /// shared heap or device-counter state: it writes the object header
  /// through Device::raw and the coordinator replays the deferred
  /// accounting in deterministic task order at release_arena(). The
  /// resulting layout is a pure function of the carve sequence, so it is
  /// identical for threads=1 and threads=8.
  class Arena {
   public:
    Arena() = default;
    /// Next payload offset; writes the allocated object header through
    /// Device::raw (accounting deferred to release_arena). Bump-sourced
    /// slots are consumed before free-list-sourced ones so an unused
    /// tail preferentially lands on free-list offsets, which return to
    /// the heap with zero device writes.
    std::uint64_t alloc();
    std::size_t used() const noexcept { return next_; }
    std::size_t size() const noexcept { return slots_.size(); }
    std::size_t remaining() const noexcept { return slots_.size() - next_; }

   private:
    friend class Heap;
    Device* device_ = nullptr;
    std::uint32_t obj_size_ = 0;
    std::vector<std::uint64_t> slots_;  ///< payload offsets, bump first
    std::size_t bump_count_ = 0;  ///< leading slots_ entries from the bump
    std::size_t next_ = 0;
  };

  /// Carves `count` slots of `size`'s class: free-list entries first,
  /// then one contiguous bump block with a single durable high-water
  /// write. Crash-window note: the bump block's headers are unwritten
  /// (zero) until alloc()/release_arena() fills them, so a crash while
  /// arenas are live makes attach() truncate the heap at the first zero
  /// header — sound, because everything above it is an in-flight twin
  /// unreachable from the durable root (release + flush_all complete
  /// before the root swap). stats()/for_each_object() share attach()'s
  /// walk and must not be called while an arena is live.
  Arena carve_arena(std::size_t size, std::size_t count);

  /// Replays the arena's deferred header-write accounting against the
  /// device (coordinator, deterministic task order) and returns unused
  /// slots to the free lists. Unused *bump* slots get durable free
  /// headers — a zero-header gap below live objects would otherwise make
  /// a post-crash attach() discard live data.
  void release_arena(Arena& arena);

  /// Returns the object to the (volatile) free lists and durably marks the
  /// object header free so a post-crash attach sees it as free.
  void free(std::uint64_t payload_offset);

  /// Payload size recorded for an allocated object.
  std::uint32_t payload_size(std::uint64_t payload_offset);

  /// True if the offset currently addresses an allocated object payload.
  bool is_allocated(std::uint64_t payload_offset);

  /// Durable atomic 8-byte root update: write + flush + barrier.
  void set_root(int slot, std::uint64_t offset);
  std::uint64_t root(int slot);

  /// Invokes fn(payload_offset, payload_size, allocated) for every object
  /// between heap begin and the high-water mark.
  void for_each_object(
      const std::function<void(std::uint64_t, std::uint32_t, bool)>& fn);

  /// Frees every allocated object for which `live` returns false. Returns
  /// the number of objects reclaimed. This is the sweep half of the
  /// PM-octree mark-and-sweep collector.
  std::size_t sweep(const std::function<bool(std::uint64_t)>& live);

  HeapStats stats();

  /// First payload offset a legal object can have (for tests).
  std::uint64_t heap_begin() const noexcept;

 private:
  struct ObjHeader {
    std::uint32_t payload_size = 0;
    std::uint32_t flags = 0;  // kAllocatedFlag or kFreeFlag
  };
  static constexpr std::uint32_t kAllocatedFlag = 0xA110C;
  static constexpr std::uint32_t kFreeFlag = 0xF4EE;

  struct PersistentHeader {
    std::uint64_t magic = 0;
    std::uint64_t version = 0;
    std::uint64_t capacity = 0;
    std::uint64_t high_water = 0;
    std::uint64_t roots[kMaxRoots] = {};
  };
  static constexpr std::uint64_t kMagic = 0x504d4f435452454eull;  // "PMOCTREN"
  static constexpr std::uint64_t kVersion = 1;
  static constexpr std::size_t kAlign = 16;

  void format();
  void attach();
  static std::size_t rounded(std::size_t size) noexcept;
  void write_high_water(std::uint64_t hw);

  Device& device_;
  std::uint64_t high_water_ = 0;  // volatile mirror of header field
  // Exact-size free lists: octants dominate allocations and share a size,
  // so exact-size reuse recycles nearly everything (paper §3.2: freed NVBM
  // regions are reused for new octants before GC runs).
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> free_lists_;
  // Fast path for the one size class that dominates (see reserve_class).
  std::size_t fast_klass_ = 0;
  std::vector<std::uint64_t> fast_list_;
  std::uint64_t free_bytes_ = 0;
  std::uint64_t free_objects_ = 0;
};

/// Typed persistent pointer: a 64-bit offset into a Heap's device. Offset
/// 0 addresses the heap header and therefore doubles as the null value.
template <typename T>
class pptr {
 public:
  constexpr pptr() noexcept = default;
  explicit constexpr pptr(std::uint64_t offset) noexcept : offset_(offset) {}

  constexpr std::uint64_t offset() const noexcept { return offset_; }
  constexpr bool null() const noexcept { return offset_ == 0; }
  explicit constexpr operator bool() const noexcept { return offset_ != 0; }

  /// Loads the pointee (charging device read latency).
  T load(Device& dev) const {
    PMO_DCHECK(!null());
    return dev.load<T>(offset_);
  }
  /// Stores the pointee (charging device write latency).
  void store(Device& dev, const T& value) const {
    PMO_DCHECK(!null());
    dev.store<T>(offset_, value);
  }

  friend constexpr bool operator==(const pptr&, const pptr&) = default;

 private:
  std::uint64_t offset_ = 0;
};

}  // namespace pmo::nvbm
