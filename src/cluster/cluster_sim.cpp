#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iterator>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "telemetry/trace.hpp"

namespace pmo::cluster {

namespace {

namespace tr = telemetry::trace;

/// Simulated ranks beyond this many share no trace track (a 1024-rank
/// point would otherwise swamp the ring buffers); the traced prefix is
/// enough to *see* the step structure and imbalance.
constexpr int kMaxTracedRanks = 8;

/// Modeled rank timelines are laid out on a process-wide virtual clock
/// that only moves forward, so several run() calls in one session (a
/// bench sweeping procs) never overlap their slices on the reused rank
/// pids.
std::atomic<std::uint64_t> g_virtual_clock{0};

std::uint64_t advance_virtual_clock(std::uint64_t end_ns) {
  std::uint64_t cur = g_virtual_clock.load(std::memory_order_relaxed);
  while (cur < end_ns &&
         !g_virtual_clock.compare_exchange_weak(cur, end_ns,
                                                std::memory_order_relaxed)) {
  }
  return std::max(cur, end_ns);
}

/// One modeled slice ('X') on a simulated rank's track.
void emit_rank_slice(int rank, std::uint64_t ts_ns, std::uint64_t dur_ns,
                     std::string name) {
  tr::TraceEvent ev;
  ev.type = tr::EventType::kComplete;
  ev.pid = tr::kTraceRankPidBase + static_cast<std::uint32_t>(rank);
  ev.tid = 1;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.name = std::move(name);
  ev.cat = "cluster";
  tr::emit(std::move(ev));
}

void emit_rank_counter(std::uint64_t ts_ns, const char* name,
                       double value) {
  tr::TraceEvent ev;
  ev.type = tr::EventType::kCounter;
  ev.pid = tr::kTraceRankPidBase;
  ev.tid = 1;
  ev.ts_ns = ts_ns;
  ev.name = name;
  ev.cat = "counter";
  ev.value = value;
  tr::emit(std::move(ev));
}

void emit_rank_flow(bool begin, int rank, std::uint64_t ts_ns,
                    std::uint64_t id) {
  tr::TraceEvent ev;
  ev.type = begin ? tr::EventType::kFlowBegin : tr::EventType::kFlowEnd;
  ev.pid = tr::kTraceRankPidBase + static_cast<std::uint32_t>(rank);
  ev.tid = 1;
  ev.ts_ns = ts_ns;
  ev.id = id;
  ev.name = "step barrier";
  ev.cat = "cluster";
  tr::emit(std::move(ev));
}

std::uint64_t to_ns(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9);
}

/// Distributes a global routine time over ranks proportionally to the
/// per-rank weights, scaled to the target element count.
double rank_share_s(std::uint64_t global_ns, std::size_t weight,
                    std::size_t weight_total, double scale, int procs) {
  if (weight_total == 0) {
    return static_cast<double>(global_ns) * 1e-9 * scale /
           static_cast<double>(procs);
  }
  return static_cast<double>(global_ns) * 1e-9 *
         (static_cast<double>(weight) / static_cast<double>(weight_total)) *
         scale;
}

/// Morton-ordered leaf codes + hot (interface) flags of the canonical
/// lane's mesh after one step — everything the model phase needs from
/// the measurement phase.
struct StepCensus {
  std::vector<LocCode> codes;
  std::vector<bool> hot;
};

/// One lane's measured costs: construct plus per-step routine times.
struct LaneMeasurement {
  std::uint64_t construct_ns = 0;
  std::vector<amr::StepStats> steps;
};

/// Runs the workload on one lane's backend. Safe to call concurrently
/// for distinct lanes (each touches only its own mesh/workload; shared
/// telemetry counters are atomic). Only the canonical lane passes
/// `census` — the per-step interleave (step, then census traversal)
/// matches the original sequential run() exactly, so lane 0's mesh and
/// device evolve bit-identically to the seed's single-mesh path.
LaneMeasurement measure_lane(amr::MeshBackend& mesh,
                             amr::DropletWorkload& wl, int steps,
                             std::vector<StepCensus>* census) {
  LaneMeasurement m;
  m.construct_ns = wl.initialize(mesh);
  m.steps.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    const auto st = wl.step(mesh, s, /*persist=*/true);
    m.steps.push_back(st);
    if (census != nullptr) {
      StepCensus c;
      c.codes.reserve(st.leaves);
      c.hot.reserve(st.leaves);
      mesh.visit_leaves([&](const LocCode& code, const CellData& d) {
        c.codes.push_back(code);
        c.hot.push_back(is_interface_cell(d, 1e-3));
      });
      census->push_back(std::move(c));
    }
  }
  return m;
}

/// The communication-model phase: coordinating thread only. Simulated
/// rank r draws its measured costs from lane r % lanes.size(); partition
/// and hot-spot weighting come from the canonical lane's census.
ClusterResult model_cluster(const ClusterConfig& config,
                            const std::vector<LaneMeasurement>& lanes,
                            std::vector<StepCensus> census,
                            std::size_t real_leaves) {
  ClusterResult out;
  out.measured_lanes = static_cast<int>(lanes.size());
  // Per-routine accounting goes through the telemetry registry (the
  // kRoutineMetrics counters); `routine_s` stages this run's seconds so
  // the published delta and the returned breakdown agree exactly.
  auto& reg = telemetry::Registry::global();
  constexpr std::size_t kNRoutines = std::size(kRoutineMetrics);
  enum { kConstruct, kAdvect, kRefine, kBalance, kSolve, kPersist,
         kPartition };
  double routine_s[kNRoutines] = {};
  telemetry::Counter* steps_counter = &reg.counter("cluster.steps");
  telemetry::Counter* migrated_counter =
      &reg.counter("cluster.migrated_octants");
  const int procs = config.procs;
  const double scale = config.scale;
  const int nlanes = static_cast<int>(lanes.size());
  const auto lane_of = [&](int rank) -> const LaneMeasurement& {
    return lanes[static_cast<std::size_t>(rank % nlanes)];
  };
  // Boundary (ghost-layer) octant counts grow with the surface of a
  // rank's subdomain: scale^(2/3) of the measured count.
  const double boundary_scale = std::pow(scale, 2.0 / 3.0);

  // Modeled rank timelines: rank r renders as trace process
  // kTraceRankPidBase + r on a forward-only virtual clock.
  const bool tracing = tr::active();
  const int traced = tracing ? std::min(procs, kMaxTracedRanks) : 0;
  std::uint64_t base_ns = 0;
  std::uint64_t pending_flow = 0;
  if (tracing) {
    base_ns = std::max(tr::now_ns(),
                       g_virtual_clock.load(std::memory_order_relaxed));
    for (int r = 0; r < traced; ++r) {
      tr::name_process(tr::kTraceRankPidBase + static_cast<std::uint32_t>(r),
                       "rank " + std::to_string(r));
    }
  }

  // Construct: embarrassingly parallel; each rank builds its share, the
  // phase ends when the slowest lane's ranks finish.
  double construct_s = 0.0;
  for (int m = 0; m < nlanes; ++m) {
    const double lane_s =
        static_cast<double>(lanes[static_cast<std::size_t>(m)].construct_ns) *
        1e-9 * scale / static_cast<double>(procs);
    construct_s = std::max(construct_s, lane_s);
  }
  routine_s[kConstruct] += construct_s;
  out.total_s += construct_s;
  if (tracing) {
    for (int r = 0; r < traced; ++r) {
      const double share =
          static_cast<double>(lane_of(r).construct_ns) * 1e-9 * scale /
          static_cast<double>(procs);
      emit_rank_slice(r, base_ns, to_ns(share), "Construct");
    }
    base_ns += to_ns(construct_s);
  }

  std::unordered_map<LocCode, int, LocCodeHash> prev_owner;

  for (int step = 0; step < config.steps; ++step) {
    // Canonical lane's measurement anchors global quantities (mesh
    // census, tree-surgery unit cost).
    const auto& st0 = lanes[0].steps[static_cast<std::size_t>(step)];
    auto& cen = census[static_cast<std::size_t>(step)];

    const auto part = partition_leaves(std::move(cen.codes), procs);
    const auto stats = analyze_partition(part, prev_owner);
    prev_owner = owner_map(part);
    out.total_migrated += stats.migrated;
    out.max_imbalance = std::max(out.max_imbalance, stats.imbalance);

    // Per-rank hot counts.
    std::vector<std::size_t> hot_r(static_cast<std::size_t>(procs), 0);
    std::size_t hot_total = 0;
    for (std::size_t i = 0; i < cen.hot.size(); ++i) {
      if (cen.hot[i]) {
        ++hot_r[static_cast<std::size_t>(part.owner_of_index(i))];
        ++hot_total;
      }
    }

    // Derived tree-surgery cost (per created/destroyed octant) for the
    // Partition model: prefer the backend's own measured refine cost.
    const std::size_t churn = 8 * (st0.refined + st0.coarsened);
    double surgery_s = config.comm.default_surgery_s;
    if (churn > 0) {
      surgery_s = std::clamp(
          static_cast<double>(st0.refine_coarsen_ns) * 1e-9 /
              static_cast<double>(churn),
          1e-7, 1e-4);
    }

    const double migrated_per_rank =
        procs > 1 ? static_cast<double>(stats.migrated) * scale /
                        static_cast<double>(procs)
                  : 0.0;

    // Per-rank step time; the step completes when the slowest rank does.
    // Rank r's measured costs come from its lane (r % nlanes).
    double worst = 0.0;
    int worst_rank = 0;
    std::vector<double> advect(static_cast<std::size_t>(procs));
    std::vector<double> refine(static_cast<std::size_t>(procs));
    std::vector<double> bal(static_cast<std::size_t>(procs));
    std::vector<double> solve(static_cast<std::size_t>(procs));
    std::vector<double> persist(static_cast<std::size_t>(procs));
    std::vector<double> partit(static_cast<std::size_t>(procs));
    for (int r = 0; r < procs; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const auto& st = lane_of(r).steps[static_cast<std::size_t>(step)];
      const std::size_t cnt = stats.counts[ri];
      advect[ri] = rank_share_s(st.advect_ns, cnt, part.leaves.size(),
                                scale, procs);
      refine[ri] = rank_share_s(st.refine_coarsen_ns, hot_r[ri], hot_total,
                                scale, procs);
      solve[ri] =
          rank_share_s(st.solve_ns, cnt, part.leaves.size(), scale, procs);
      persist[ri] = rank_share_s(st.persist_ns, cnt, part.leaves.size(),
                                 scale, procs);
      const double bal_compute = rank_share_s(
          st.balance_ns, hot_r[ri], hot_total, scale, procs);
      const double bal_comm = balance_comm_time(
          config.comm, procs,
          static_cast<double>(stats.boundary[ri]) * boundary_scale,
          config.octant_bytes);
      bal[ri] = bal_compute + bal_comm;
      partit[ri] = partition_time(
          config.comm, procs, static_cast<double>(cnt) * scale,
          migrated_per_rank, surgery_s, config.octant_bytes);
      const double total = advect[ri] + refine[ri] + bal[ri] + solve[ri] +
                           persist[ri] + partit[ri];
      if (total > worst) {
        worst = total;
        worst_rank = r;
      }
    }
    const auto wr = static_cast<std::size_t>(worst_rank);
    routine_s[kAdvect] += advect[wr];
    routine_s[kRefine] += refine[wr];
    routine_s[kBalance] += bal[wr];
    routine_s[kSolve] += solve[wr];
    routine_s[kPersist] += persist[wr];
    routine_s[kPartition] += partit[wr];
    steps_counter->add();
    out.step_seconds.push_back(worst);
    out.total_s += worst;

    if (tracing) {
      // Critical rank within the traced prefix (the whole-step flow
      // arrows attach to it; worst_rank itself may not be traced).
      int crit = 0;
      double crit_total = -1.0;
      const auto rank_total = [&](int r) {
        const auto ri = static_cast<std::size_t>(r);
        return advect[ri] + refine[ri] + bal[ri] + solve[ri] +
               persist[ri] + partit[ri];
      };
      for (int r = 0; r < traced; ++r) {
        if (rank_total(r) > crit_total) {
          crit_total = rank_total(r);
          crit = r;
        }
      }
      if (pending_flow != 0) {
        emit_rank_flow(/*begin=*/false, crit, base_ns, pending_flow);
        pending_flow = 0;
      }
      emit_rank_counter(base_ns, "cluster.imbalance", stats.imbalance);
      emit_rank_counter(base_ns, "cluster.leaves",
                        static_cast<double>(part.leaves.size()));
      const std::string step_name = "step " + std::to_string(step);
      for (int r = 0; r < traced; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        // Step wrapper first (same ts, earlier seq), then the routine
        // slices laid end to end inside it. Durations truncate to whole
        // nanoseconds, so the children never outrun the wrapper.
        emit_rank_slice(r, base_ns, to_ns(rank_total(r)), step_name);
        std::uint64_t cursor = base_ns;
        const std::pair<const char*, double> parts[] = {
            {"Advect", advect[ri]},   {"Refine&Coarsen", refine[ri]},
            {"Balance", bal[ri]},     {"Solve", solve[ri]},
            {"Persist", persist[ri]}, {"Partition", partit[ri]}};
        for (const auto& [name, seconds] : parts) {
          const std::uint64_t dur = to_ns(seconds);
          emit_rank_slice(r, cursor, dur, name);
          cursor += dur;
        }
      }
      if (step < config.steps - 1) {
        pending_flow = tr::next_flow_id();
        emit_rank_flow(/*begin=*/true, crit,
                       base_ns + to_ns(rank_total(crit)), pending_flow);
      }
      base_ns += to_ns(worst);
    }
  }
  if (tracing) advance_virtual_clock(base_ns);

  for (std::size_t i = 0; i < kNRoutines; ++i) {
    reg.counter(kRoutineMetrics[i].metric)
        .add(static_cast<std::uint64_t>(routine_s[i] * 1e9));
    out.breakdown.add_seconds(kRoutineMetrics[i].display, routine_s[i]);
  }
  migrated_counter->add(out.total_migrated);

  out.real_leaves = real_leaves;
  out.global_elements = static_cast<double>(out.real_leaves) * scale;
  return out;
}

}  // namespace

TimeBreakdown breakdown_from_telemetry(const telemetry::Snapshot& snap) {
  TimeBreakdown out;
  for (const auto& r : kRoutineMetrics) {
    const auto ns = snap.counter(r.metric);
    if (ns != 0) out.add_seconds(r.display, static_cast<double>(ns) * 1e-9);
  }
  return out;
}

amr::DropletParams ClusterSim::rank_params(const amr::DropletParams& base,
                                           std::uint64_t seed, int rank) {
  if (rank == 0) return base;  // canonical lane: census + reported mesh
  Rng rng = Rng::for_rank(seed, static_cast<std::uint64_t>(rank));
  amr::DropletParams p = base;
  // Small perturbations of the instability parameters: enough to
  // decorrelate refinement history and per-routine costs across lanes,
  // small enough to stay the same workload.
  p.initial_amplitude *= rng.uniform(0.92, 1.08);
  p.wave_speed *= rng.uniform(0.96, 1.04);
  p.growth_rate *= rng.uniform(0.97, 1.03);
  return p;
}

ClusterResult ClusterSim::run(const RankFactory& factory,
                              const amr::DropletParams& params) {
  const int nlanes =
      std::clamp(config_.measure_ranks, 1, std::max(1, config_.procs));
  // Lanes are created sequentially on the coordinating thread, ascending
  // rank: telemetry source registration (gauge last-writer) and
  // wear-section naming must not depend on a pool schedule.
  std::vector<RankInstance> lanes;
  lanes.reserve(static_cast<std::size_t>(nlanes));
  for (int m = 0; m < nlanes; ++m) {
    lanes.push_back(factory(m, rank_params(params, config_.seed, m)));
    PMO_CHECK_MSG(lanes.back().backend != nullptr &&
                      lanes.back().workload != nullptr,
                  "RankFactory must supply both backend and workload");
  }
  exec::ThreadPool pool(std::max(1, config_.threads));
  std::vector<LaneMeasurement> meas(static_cast<std::size_t>(nlanes));
  std::vector<StepCensus> census;
  if (nlanes == 1) {
    // One lane: the pool's parallelism moves inside the lane (chunked
    // solve gather) instead of across lanes.
    lanes[0].workload->set_exec(&pool);
    meas[0] = measure_lane(*lanes[0].backend, *lanes[0].workload,
                           config_.steps, &census);
    lanes[0].workload->set_exec(nullptr);
  } else {
    // Lane-level parallelism; lanes keep their gathers sequential
    // (nested parallel_for is rejected by the pool).
    pool.parallel_for(static_cast<std::size_t>(nlanes), [&](std::size_t m) {
      meas[m] = measure_lane(*lanes[m].backend, *lanes[m].workload,
                             config_.steps, m == 0 ? &census : nullptr);
    });
  }
  const std::size_t real_leaves = lanes[0].backend->leaf_count();
  return model_cluster(config_, meas, std::move(census), real_leaves);
}

ClusterResult ClusterSim::run(amr::MeshBackend& mesh,
                              amr::DropletWorkload& wl) {
  exec::ThreadPool pool(std::max(1, config_.threads));
  std::vector<LaneMeasurement> meas(1);
  std::vector<StepCensus> census;
  wl.set_exec(&pool);
  meas[0] = measure_lane(mesh, wl, config_.steps, &census);
  wl.set_exec(nullptr);
  return model_cluster(config_, meas, std::move(census),
                       mesh.leaf_count());
}

}  // namespace pmo::cluster
