#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace pmo::cluster {

namespace {

/// Distributes a global routine time over ranks proportionally to the
/// per-rank weights, scaled to the target element count.
double rank_share_s(std::uint64_t global_ns, std::size_t weight,
                    std::size_t weight_total, double scale, int procs) {
  if (weight_total == 0) {
    return static_cast<double>(global_ns) * 1e-9 * scale /
           static_cast<double>(procs);
  }
  return static_cast<double>(global_ns) * 1e-9 *
         (static_cast<double>(weight) / static_cast<double>(weight_total)) *
         scale;
}

}  // namespace

TimeBreakdown breakdown_from_telemetry(const telemetry::Snapshot& snap) {
  TimeBreakdown out;
  for (const auto& r : kRoutineMetrics) {
    const auto ns = snap.counter(r.metric);
    if (ns != 0) out.add_seconds(r.display, static_cast<double>(ns) * 1e-9);
  }
  return out;
}

ClusterResult ClusterSim::run(amr::MeshBackend& mesh,
                              amr::DropletWorkload& wl) {
  ClusterResult out;
  // Per-routine accounting goes through the telemetry registry (the
  // kRoutineMetrics counters); `routine_s` stages this run's seconds so
  // the published delta and the returned breakdown agree exactly.
  auto& reg = telemetry::Registry::global();
  constexpr std::size_t kNRoutines = std::size(kRoutineMetrics);
  enum { kConstruct, kAdvect, kRefine, kBalance, kSolve, kPersist,
         kPartition };
  double routine_s[kNRoutines] = {};
  telemetry::Counter* steps_counter = &reg.counter("cluster.steps");
  telemetry::Counter* migrated_counter =
      &reg.counter("cluster.migrated_octants");
  const int procs = config_.procs;
  const double scale = config_.scale;
  // Boundary (ghost-layer) octant counts grow with the surface of a
  // rank's subdomain: scale^(2/3) of the measured count.
  const double boundary_scale = std::pow(scale, 2.0 / 3.0);

  // Construct: embarrassingly parallel; each rank builds its share.
  const std::uint64_t construct_ns = wl.initialize(mesh);
  const double construct_s =
      static_cast<double>(construct_ns) * 1e-9 * scale /
      static_cast<double>(procs);
  routine_s[kConstruct] += construct_s;
  out.total_s += construct_s;

  std::unordered_map<LocCode, int, LocCodeHash> prev_owner;

  for (int step = 0; step < config_.steps; ++step) {
    const auto st = wl.step(mesh, step, /*persist=*/true);

    // Global mesh census: leaf codes in Morton order + hot (interface)
    // flags for work-distribution weighting.
    std::vector<LocCode> codes;
    std::vector<bool> hot;
    codes.reserve(st.leaves);
    hot.reserve(st.leaves);
    mesh.visit_leaves([&](const LocCode& c, const CellData& d) {
      codes.push_back(c);
      hot.push_back(is_interface_cell(d, 1e-3));
    });

    const auto part = partition_leaves(std::move(codes), procs);
    const auto stats = analyze_partition(part, prev_owner);
    prev_owner = owner_map(part);
    out.total_migrated += stats.migrated;
    out.max_imbalance = std::max(out.max_imbalance, stats.imbalance);

    // Per-rank hot counts.
    std::vector<std::size_t> hot_r(static_cast<std::size_t>(procs), 0);
    std::size_t hot_total = 0;
    for (std::size_t i = 0; i < hot.size(); ++i) {
      if (hot[i]) {
        ++hot_r[static_cast<std::size_t>(part.owner_of_index(i))];
        ++hot_total;
      }
    }

    // Derived tree-surgery cost (per created/destroyed octant) for the
    // Partition model: prefer the backend's own measured refine cost.
    const std::size_t churn = 8 * (st.refined + st.coarsened);
    double surgery_s = config_.comm.default_surgery_s;
    if (churn > 0) {
      surgery_s = std::clamp(
          static_cast<double>(st.refine_coarsen_ns) * 1e-9 /
              static_cast<double>(churn),
          1e-7, 1e-4);
    }

    const double migrated_per_rank =
        procs > 1 ? static_cast<double>(stats.migrated) * scale /
                        static_cast<double>(procs)
                  : 0.0;

    // Per-rank step time; the step completes when the slowest rank does.
    double worst = 0.0;
    int worst_rank = 0;
    std::vector<double> advect(static_cast<std::size_t>(procs));
    std::vector<double> refine(static_cast<std::size_t>(procs));
    std::vector<double> bal(static_cast<std::size_t>(procs));
    std::vector<double> solve(static_cast<std::size_t>(procs));
    std::vector<double> persist(static_cast<std::size_t>(procs));
    std::vector<double> partit(static_cast<std::size_t>(procs));
    for (int r = 0; r < procs; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const std::size_t cnt = stats.counts[ri];
      advect[ri] = rank_share_s(st.advect_ns, cnt, part.leaves.size(),
                                scale, procs);
      refine[ri] = rank_share_s(st.refine_coarsen_ns, hot_r[ri], hot_total,
                                scale, procs);
      solve[ri] =
          rank_share_s(st.solve_ns, cnt, part.leaves.size(), scale, procs);
      persist[ri] = rank_share_s(st.persist_ns, cnt, part.leaves.size(),
                                 scale, procs);
      const double bal_compute = rank_share_s(
          st.balance_ns, hot_r[ri], hot_total, scale, procs);
      const double bal_comm = balance_comm_time(
          config_.comm, procs,
          static_cast<double>(stats.boundary[ri]) * boundary_scale,
          config_.octant_bytes);
      bal[ri] = bal_compute + bal_comm;
      partit[ri] = partition_time(
          config_.comm, procs, static_cast<double>(cnt) * scale,
          migrated_per_rank, surgery_s, config_.octant_bytes);
      const double total = advect[ri] + refine[ri] + bal[ri] + solve[ri] +
                           persist[ri] + partit[ri];
      if (total > worst) {
        worst = total;
        worst_rank = r;
      }
    }
    const auto wr = static_cast<std::size_t>(worst_rank);
    routine_s[kAdvect] += advect[wr];
    routine_s[kRefine] += refine[wr];
    routine_s[kBalance] += bal[wr];
    routine_s[kSolve] += solve[wr];
    routine_s[kPersist] += persist[wr];
    routine_s[kPartition] += partit[wr];
    steps_counter->add();
    out.step_seconds.push_back(worst);
    out.total_s += worst;
  }

  for (std::size_t i = 0; i < kNRoutines; ++i) {
    reg.counter(kRoutineMetrics[i].metric)
        .add(static_cast<std::uint64_t>(routine_s[i] * 1e9));
    out.breakdown.add_seconds(kRoutineMetrics[i].display, routine_s[i]);
  }
  migrated_counter->add(out.total_migrated);

  out.real_leaves = mesh.leaf_count();
  out.global_elements = static_cast<double>(out.real_leaves) * scale;
  return out;
}

}  // namespace pmo::cluster
