// Morton-order (space-filling-curve) domain partitioning — the Partition
// routine of parallel octree meshing (§2). Leaves sorted by locational
// code are split into contiguous equal-count ranges, one per rank; this
// is the standard SFC partitioning Gerris/p4est-style codes use.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/morton.hpp"

namespace pmo::cluster {

/// Per-step partition of the global leaf set.
struct Partition {
  int procs = 1;
  /// Morton-sorted leaf codes (the global mesh).
  std::vector<LocCode> leaves;
  /// leaves[i] belongs to rank owner_of_index(i).
  std::vector<std::size_t> range_begin;  ///< procs+1 split points

  int owner_of_index(std::size_t i) const;
  /// Owner of the leaf covering `code` (by SFC position).
  int owner_of(const LocCode& code) const;
  std::size_t rank_size(int rank) const {
    return range_begin[static_cast<std::size_t>(rank) + 1] -
           range_begin[static_cast<std::size_t>(rank)];
  }
};

/// Splits Morton-sorted leaves evenly among `procs` ranks.
Partition partition_leaves(std::vector<LocCode> sorted_leaves, int procs);

/// Statistics comparing consecutive partitions and measuring boundaries.
struct PartitionStats {
  /// Leaves present in both steps whose owner changed (migration volume).
  std::size_t migrated = 0;
  /// Per-rank count of leaves with at least one face neighbor on another
  /// rank (ghost layer size).
  std::vector<std::size_t> boundary;
  /// Per-rank leaf counts.
  std::vector<std::size_t> counts;
  /// max/mean leaf-count imbalance.
  double imbalance = 1.0;
};

/// Computes migration vs `prev` (may be empty) and the ghost boundary of
/// `cur`.
PartitionStats analyze_partition(
    const Partition& cur,
    const std::unordered_map<LocCode, int, LocCodeHash>& prev_owner);

/// Owner map for migration tracking.
std::unordered_map<LocCode, int, LocCodeHash> owner_map(const Partition& p);

}  // namespace pmo::cluster
