#include "cluster/partition.hpp"

#include <algorithm>

namespace pmo::cluster {

int Partition::owner_of_index(std::size_t i) const {
  // range_begin is small (procs+1): binary search.
  const auto it =
      std::upper_bound(range_begin.begin(), range_begin.end(), i);
  return static_cast<int>(it - range_begin.begin()) - 1;
}

int Partition::owner_of(const LocCode& code) const {
  // Position of the leaf covering `code` in SFC order: the last leaf with
  // key <= code's key (leaves partition the domain).
  const auto it = std::upper_bound(
      leaves.begin(), leaves.end(), code,
      [](const LocCode& a, const LocCode& b) { return a.key() < b.key(); });
  const std::size_t idx =
      it == leaves.begin() ? 0 : static_cast<std::size_t>(it - leaves.begin() - 1);
  return owner_of_index(idx);
}

Partition partition_leaves(std::vector<LocCode> sorted_leaves, int procs) {
  PMO_CHECK_MSG(procs >= 1, "need at least one rank");
  Partition p;
  p.procs = procs;
  p.leaves = std::move(sorted_leaves);
  const std::size_t n = p.leaves.size();
  p.range_begin.resize(static_cast<std::size_t>(procs) + 1);
  for (int r = 0; r <= procs; ++r) {
    p.range_begin[static_cast<std::size_t>(r)] =
        n * static_cast<std::size_t>(r) / static_cast<std::size_t>(procs);
  }
  return p;
}

std::unordered_map<LocCode, int, LocCodeHash> owner_map(const Partition& p) {
  std::unordered_map<LocCode, int, LocCodeHash> out;
  out.reserve(p.leaves.size());
  for (std::size_t i = 0; i < p.leaves.size(); ++i) {
    out.emplace(p.leaves[i], p.owner_of_index(i));
  }
  return out;
}

PartitionStats analyze_partition(
    const Partition& cur,
    const std::unordered_map<LocCode, int, LocCodeHash>& prev_owner) {
  PartitionStats s;
  s.boundary.assign(static_cast<std::size_t>(cur.procs), 0);
  s.counts.assign(static_cast<std::size_t>(cur.procs), 0);

  for (std::size_t i = 0; i < cur.leaves.size(); ++i) {
    const auto& code = cur.leaves[i];
    const int owner = cur.owner_of_index(i);
    ++s.counts[static_cast<std::size_t>(owner)];

    if (!prev_owner.empty()) {
      const auto it = prev_owner.find(code);
      if (it != prev_owner.end() && it->second != owner) ++s.migrated;
    }

    // Face-neighbor ghost test.
    static constexpr int kFaces[6][3] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                                         {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
    for (const auto& f : kFaces) {
      LocCode ncode;
      if (!code.neighbor(f[0], f[1], f[2], ncode)) continue;
      if (cur.owner_of(ncode) != owner) {
        ++s.boundary[static_cast<std::size_t>(owner)];
        break;
      }
    }
  }

  std::size_t max_count = 0;
  for (const auto c : s.counts) max_count = std::max(max_count, c);
  const double mean = cur.leaves.empty()
                          ? 0.0
                          : static_cast<double>(cur.leaves.size()) /
                                static_cast<double>(cur.procs);
  s.imbalance = mean > 0 ? static_cast<double>(max_count) / mean : 1.0;
  return s;
}

}  // namespace pmo::cluster
