// Communication cost model for the simulated cluster (§5.1 substitution).
//
// The paper ran on Titan (Gemini interconnect, MPI domain decomposition).
// We reproduce the *scaling shape* on a single host by combining real
// measured per-octant costs with an alpha-beta communication model plus a
// partitioner-synchronization term calibrated against the paper's own
// Fig. 6/7 data points (Partition: 0% at 1 proc, 19% at 6 procs, 56% at
// 1000 procs for ~1M elements/rank). DESIGN.md documents the calibration.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace pmo::cluster {

struct CommConfig {
  double alpha_s = 2e-6;     ///< per-message latency (Gemini-like)
  double bw_Bps = 4.0e9;     ///< point-to-point bandwidth
  /// Partitioner synchronization growth: cost factor 1 + log2(P)^sync_exp.
  /// sync_exp = 1.5 reproduces the paper's 6->1000 proc Partition growth.
  double sync_exp = 1.5;
  /// CPU cost of unpacking/inserting one migrated octant into the local
  /// tree during repartitioning (used when the harness cannot measure the
  /// backend's own surgery cost).
  double default_surgery_s = 3e-6;
  /// Splitter-computation scan cost per *local* octant during each
  /// repartition (the partitioner weighs and orders every local octant
  /// even when few migrate).
  double partition_scan_s = 2e-7;
  /// CPU cost of processing one received ghost octant during Balance.
  double ghost_process_s = 1.2e-6;
  /// Link used for shipping replica deltas to a peer node (56 Gb/s IB on
  /// the Kamiak recovery testbed).
  double replica_bw_Bps = 7.0e9;
  double replica_alpha_s = 3e-6;
};

/// Alpha-beta time of one point-to-point transfer.
inline double p2p_time(const CommConfig& c, double bytes) {
  return c.alpha_s + bytes / c.bw_Bps;
}

/// Time of a log-tree collective over `procs` ranks moving `bytes` per
/// rank (allreduce/alltoall approximation).
inline double collective_time(const CommConfig& c, int procs, double bytes) {
  if (procs <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(procs)));
  return rounds * (c.alpha_s + bytes / c.bw_Bps);
}

/// Partitioner cost for one rank in one step: splitter scan over the
/// rank's local octants plus tree surgery for migrated octants, both
/// inflated by the synchronization factor that grows with scale.
inline double partition_time(const CommConfig& c, int procs,
                             double local_octants, double migrated_octants,
                             double surgery_s, double octant_bytes) {
  if (procs <= 1) return 0.0;
  const double lg = std::log2(static_cast<double>(procs));
  const double sync_factor = 1.0 + std::pow(lg, c.sync_exp);
  const double cpu = (migrated_octants * surgery_s +
                      local_octants * c.partition_scan_s) *
                     sync_factor;
  const double wire = collective_time(c, procs, migrated_octants *
                                                    octant_bytes);
  return cpu + wire;
}

/// Balance ghost-exchange cost for one rank in one step.
inline double balance_comm_time(const CommConfig& c, int procs,
                                double boundary_octants,
                                double octant_bytes) {
  if (procs <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(procs)));
  const double wire =
      rounds * (c.alpha_s + boundary_octants * octant_bytes / c.bw_Bps);
  return wire + boundary_octants * c.ghost_process_s;
}

}  // namespace pmo::cluster
