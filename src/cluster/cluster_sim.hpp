// Rank-level cluster simulator (§5 substitution for Titan).
//
// Runs the droplet workload for real on laptop-scale backends, measures
// per-routine modeled time and structural dynamics (partition migration,
// ghost boundaries, work distribution), then layers the communication
// model on top to produce per-step wall-clock times for P simulated ranks
// at `scale`x the real element count. Weak/strong scaling *shapes* derive
// from measured costs; only the interconnect constants are modeled (see
// comm_model.hpp).
//
// Two-phase structure (the execution-layer refactor):
//  * MEASURE — min(procs, measure_ranks) lanes, each a private
//    backend+Device running the full workload, execute concurrently on a
//    `threads`-wide exec::ThreadPool. Lane 0 is canonical (un-jittered
//    params); it also records the per-step mesh census. With a single
//    lane the pool instead accelerates the lane's own solve gather
//    (chunked stencil).
//  * MODEL — the communication model, telemetry publication and
//    virtual-clock trace layout run on the coordinating thread only.
//    Simulated rank r draws its measured costs from lane r %
//    measure_ranks.
// Determinism contract (DESIGN.md §7): modeled results are bit-identical
// for every `threads` value — the thread count only changes wall-clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/mesh_backend.hpp"
#include "cluster/comm_model.hpp"
#include "cluster/partition.hpp"
#include "common/timing.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo::cluster {

/// The paper's simulation routines (Fig. 7/8b breakdown) with their
/// telemetry counter names. ClusterSim publishes each routine's modeled
/// worst-rank nanoseconds into these counters; benches delta the registry
/// around a run to get the per-point breakdown (fig07 derives its table
/// from exactly this, not from bench-local timers).
struct RoutineMetric {
  const char* display;  ///< paper's routine name ("Refine&Coarsen")
  const char* metric;   ///< counter name ("cluster.routine.refine_coarsen_ns")
};
inline constexpr RoutineMetric kRoutineMetrics[] = {
    {"Construct", "cluster.routine.construct_ns"},
    {"Advect", "cluster.routine.advect_ns"},
    {"Refine&Coarsen", "cluster.routine.refine_coarsen_ns"},
    {"Balance", "cluster.routine.balance_ns"},
    {"Solve", "cluster.routine.solve_ns"},
    {"Persist", "cluster.routine.persist_ns"},
    {"Partition", "cluster.routine.partition_ns"},
};

/// Rebuilds the Fig. 7-style per-routine breakdown (seconds keyed by
/// display name) from a telemetry snapshot (typically a delta spanning
/// one cluster run).
TimeBreakdown breakdown_from_telemetry(const telemetry::Snapshot& snap);

struct ClusterConfig {
  int procs = 1;
  int steps = 20;
  /// Target-to-real element multiplier: global target elements =
  /// (real leaves) * scale.
  double scale = 1.0;
  CommConfig comm;
  /// Octant wire/record size for communication volumes.
  double octant_bytes = 160.0;
  /// Total measurement-phase concurrency (pool workers + the
  /// coordinating thread). Changes wall-clock only: modeled results are
  /// bit-identical for every value (determinism contract).
  int threads = 1;
  /// Measurement lanes — independent backend+workload replicas run for
  /// real. Capped by procs. Simulated rank r draws its measured costs
  /// from lane r % measure_ranks; lane 0 is canonical and supplies the
  /// census and the reported mesh. More lanes decorrelate per-rank costs
  /// (and give the pool lane-level parallelism); 1 reproduces the
  /// original single-measurement behaviour exactly.
  int measure_ranks = 1;
  /// Base seed for per-lane workload jitter (Rng::for_rank derivation).
  std::uint64_t seed = 0x5eed5eed5eed5eedull;
};

struct ClusterResult {
  double total_s = 0.0;
  TimeBreakdown breakdown;  ///< modeled seconds per routine
  std::vector<double> step_seconds;
  std::size_t real_leaves = 0;      ///< final real mesh size (lane 0)
  double global_elements = 0.0;     ///< real_leaves * scale
  double max_imbalance = 1.0;
  std::size_t total_migrated = 0;   ///< real octants that changed owner
  int measured_lanes = 1;           ///< measurement replicas actually run
};

/// Keep-alive handle to a measurement backend. An aliasing shared_ptr is
/// the intended use: owner = whatever bundle (device + mesh + telemetry
/// hooks) the backend lives in, pointee = the MeshBackend.
using RankBackend = std::shared_ptr<amr::MeshBackend>;

/// One measurement lane: a private backend and the workload replica that
/// drives it. Lanes run concurrently, so each must own BOTH — devices
/// and workloads are single-logical-owner objects.
struct RankInstance {
  RankBackend backend;
  std::shared_ptr<amr::DropletWorkload> workload;
};

/// Builds lane `rank`'s instance from its (already jittered) parameters.
/// Invoked sequentially on the coordinating thread in ascending rank
/// order, so side effects with order-dependent results (telemetry source
/// registration, wear-section naming) stay deterministic.
using RankFactory =
    std::function<RankInstance(int rank, const amr::DropletParams& params)>;

class ClusterSim {
 public:
  explicit ClusterSim(ClusterConfig config) : config_(config) {}

  /// Multi-lane run: creates min(procs, measure_ranks) lanes via
  /// `factory`, measures them on a `config.threads`-wide pool, then runs
  /// the communication model on the coordinating thread.
  ClusterResult run(const RankFactory& factory,
                    const amr::DropletParams& params);

  /// Single-lane overload (the original signature): runs `config_.steps`
  /// steps of `wl` on `mesh` and synthesizes the cluster execution
  /// profile. With threads > 1 the lane's solve gather runs on the pool;
  /// modeled results are unchanged.
  ClusterResult run(amr::MeshBackend& mesh, amr::DropletWorkload& wl);

  /// Lane `rank`'s workload parameters: rank 0 returns `base` verbatim
  /// (the canonical lane), other lanes get small deterministic
  /// perturbations of the instability parameters drawn from
  /// Rng::for_rank(seed, rank) — decorrelating lane measurements the way
  /// distinct subdomains decorrelate real ranks' costs.
  static amr::DropletParams rank_params(const amr::DropletParams& base,
                                        std::uint64_t seed, int rank);

  const ClusterConfig& config() const noexcept { return config_; }

 private:
  ClusterConfig config_;
};

}  // namespace pmo::cluster
