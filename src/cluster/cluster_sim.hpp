// Rank-level cluster simulator (§5 substitution for Titan).
//
// Runs the droplet workload for real on one backend at laptop scale,
// measures per-routine modeled time and structural dynamics (partition
// migration, ghost boundaries, work distribution), then layers the
// communication model on top to produce per-step wall-clock times for P
// simulated ranks at `scale`x the real element count. Weak/strong scaling
// *shapes* derive from measured costs; only the interconnect constants
// are modeled (see comm_model.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "amr/droplet.hpp"
#include "amr/mesh_backend.hpp"
#include "cluster/comm_model.hpp"
#include "cluster/partition.hpp"
#include "common/timing.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo::cluster {

/// The paper's simulation routines (Fig. 7/8b breakdown) with their
/// telemetry counter names. ClusterSim publishes each routine's modeled
/// worst-rank nanoseconds into these counters; benches delta the registry
/// around a run to get the per-point breakdown (fig07 derives its table
/// from exactly this, not from bench-local timers).
struct RoutineMetric {
  const char* display;  ///< paper's routine name ("Refine&Coarsen")
  const char* metric;   ///< counter name ("cluster.routine.refine_coarsen_ns")
};
inline constexpr RoutineMetric kRoutineMetrics[] = {
    {"Construct", "cluster.routine.construct_ns"},
    {"Advect", "cluster.routine.advect_ns"},
    {"Refine&Coarsen", "cluster.routine.refine_coarsen_ns"},
    {"Balance", "cluster.routine.balance_ns"},
    {"Solve", "cluster.routine.solve_ns"},
    {"Persist", "cluster.routine.persist_ns"},
    {"Partition", "cluster.routine.partition_ns"},
};

/// Rebuilds the Fig. 7-style per-routine breakdown (seconds keyed by
/// display name) from a telemetry snapshot (typically a delta spanning
/// one cluster run).
TimeBreakdown breakdown_from_telemetry(const telemetry::Snapshot& snap);

struct ClusterConfig {
  int procs = 1;
  int steps = 20;
  /// Target-to-real element multiplier: global target elements =
  /// (real leaves) * scale.
  double scale = 1.0;
  CommConfig comm;
  /// Octant wire/record size for communication volumes.
  double octant_bytes = 160.0;
};

struct ClusterResult {
  double total_s = 0.0;
  TimeBreakdown breakdown;  ///< modeled seconds per routine
  std::vector<double> step_seconds;
  std::size_t real_leaves = 0;      ///< final real mesh size
  double global_elements = 0.0;     ///< real_leaves * scale
  double max_imbalance = 1.0;
  std::size_t total_migrated = 0;   ///< real octants that changed owner
};

class ClusterSim {
 public:
  explicit ClusterSim(ClusterConfig config) : config_(config) {}

  /// Runs `config_.steps` steps of `wl` on `mesh` and synthesizes the
  /// cluster execution profile.
  ClusterResult run(amr::MeshBackend& mesh, amr::DropletWorkload& wl);

  const ClusterConfig& config() const noexcept { return config_; }

 private:
  ClusterConfig config_;
};

}  // namespace pmo::cluster
