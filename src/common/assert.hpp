// Lightweight contract checking for the pmoctree libraries.
//
// PMO_CHECK     - always-on invariant check; throws pmo::ContractError.
// PMO_DCHECK    - debug-only check (compiled out in NDEBUG builds).
// PMO_UNREACHABLE - marks unreachable control flow.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pmo {

/// Thrown when a PMO_CHECK contract is violated. Deriving from
/// std::logic_error: a failed check is a programming error, not an
/// environmental condition, and should never be silently swallowed.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown by persistence machinery when a recovery/consistency problem is
/// detected at runtime (e.g. corrupt root table, torn structure).
class PersistenceError : public std::runtime_error {
 public:
  explicit PersistenceError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when an emulated device runs out of space.
class OutOfSpaceError : public std::runtime_error {
 public:
  explicit OutOfSpaceError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace pmo

#define PMO_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::pmo::detail::contract_fail(#expr, __FILE__, __LINE__, "");     \
    }                                                                  \
  } while (0)

#define PMO_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream pmo_os_;                                      \
      pmo_os_ << msg; /* NOLINT */                                     \
      ::pmo::detail::contract_fail(#expr, __FILE__, __LINE__,          \
                                   pmo_os_.str());                     \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define PMO_DCHECK(expr) ((void)0)
#else
#define PMO_DCHECK(expr) PMO_CHECK(expr)
#endif

#define PMO_UNREACHABLE()                                                  \
  ::pmo::detail::contract_fail("unreachable", __FILE__, __LINE__,          \
                               "control flow reached unreachable branch")
