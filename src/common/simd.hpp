// SIMD kernel layer for the solve hot loops (AVX2 with a portable scalar
// fallback).
//
// Same seam pattern as the Morton BMI2 fast path (morton.cpp): one
// translation unit, compiled with -mavx2 when the build host supports the
// instruction set, with the vector bodies guarded by __AVX2__ so every
// other toolchain gets the portable loops. On top of the compile-time
// probe there is a *runtime* dispatch switch (set_enabled) so benches and
// tests can A/B the two paths in a single binary.
//
// Determinism contract (DESIGN.md §12): the AVX2 kernels are bit-identical
// to the portable loops — per-lane reduction order is fixed (face order
// 0..5), absent terms are skipped by blending rather than adding a zero
// (an add of +0.0 would flip a -0.0 accumulator), no FMA contraction is
// possible (-mavx2 does not enable FMA and the kernels use explicit
// mul/add intrinsics), and NaN/denormal inputs flow through the same IEEE
// operations in both paths. Toggling SIMD changes wall-clock only; the
// differential suite in tests/simd_test.cpp holds both paths to that.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pmo::simd {

/// Number of face neighbors per octant (the Jacobi stencil width).
inline constexpr int kFaceCount = 6;

/// Canonical face-neighbor offset table of the solve stencil, hoisted out
/// of the gather loop so the scalar fallback, the AVX2 kernel and the
/// neighbor-index build all agree on one face order (the per-lane
/// reduction order that makes SIMD on/off bit-identical).
inline constexpr int kFaces[kFaceCount][3] = {
    {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};

/// Liquid-cell skip test of the Jacobi gather, hoisted so every gather
/// implementation (legacy per-face find, portable kernel, AVX2 kernel)
/// shares the one definition: gas cells with no tracer are left untouched.
inline bool gather_skip_cell(double vof, double tracer) noexcept {
  return vof <= 0.0 && tracer <= 1e-9;
}

/// True when the AVX2 kernels are compiled into this binary (the cmake
/// host probe passed and PMO_SIMD_FORCE_PORTABLE was not defined).
bool avx2_compiled() noexcept;

/// Runtime dispatch switch. Defaults to avx2_compiled(); set_enabled(true)
/// on a portable-only build is a no-op (enabled() stays false). Flip it
/// only between kernel phases — the kernels read it once per call.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Jacobi gather over an SoA leaf snapshot and a prebuilt face-neighbor
/// slot table. For each leaf i in [begin, end):
///
///   skip when gather_skip_cell(vof[i], tracer[i]);
///   acc/n  = sum/count of tracer[nbr[6i+f]] over faces f with nbr >= 0,
///            accumulated in face order 0..5;
///   r      = n > 0 ? 0.5*tracer[i] + 0.5*(acc/n) : tracer[i];
///   relaxed[i] = r + 0.1*vof[i];  touched[i] = 1.
///
/// Skipped leaves leave relaxed[i]/touched[i] untouched. `nbr` holds 6
/// int32 slot indices per leaf (leaf-major), -1 for "no covering leaf"
/// (domain boundary). Writes only slots in [begin, end), so disjoint
/// ranges may run concurrently. The AVX2 path processes 8 leaves per
/// iteration (two masked 4x64-bit lanes); results are bit-identical to
/// the portable loop for every input including NaN, denormal and -0.0
/// tracer values.
void gather_relax(const double* vof, const double* tracer,
                  const std::int32_t* nbr, std::size_t begin,
                  std::size_t end, double* relaxed,
                  std::uint8_t* touched) noexcept;

/// Interface-band mark kernel (the refine_feature predicate, vectorized):
/// marks[i] = 1 iff band < vof[i] < 1 - band, else 0 — exactly
/// is_interface_cell over an SoA vof array. NaN marks 0 in both paths.
void mark_interface_band(const double* vof, std::size_t n, double band,
                         std::uint8_t* marks) noexcept;

}  // namespace pmo::simd
