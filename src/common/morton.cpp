#include "common/morton.hpp"

#include <sstream>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace pmo {

// Bit masks selecting every 3rd bit: x lands at bits 3k, y at 3k+1,
// z at 3k+2 (matching morton_split3's final mask, shifted).
#if defined(__BMI2__)
namespace {
constexpr std::uint64_t kAxisMaskX = 0x1249249249249249ull;
constexpr std::uint64_t kAxisMaskY = kAxisMaskX << 1;
constexpr std::uint64_t kAxisMaskZ = kAxisMaskX << 2;
}  // namespace
#endif

std::uint64_t morton_encode3_fast(std::uint32_t x, std::uint32_t y,
                                  std::uint32_t z) noexcept {
#if defined(__BMI2__)
  // One parallel-bit-deposit per axis replaces five shift/mask rounds.
  return _pdep_u64(x, kAxisMaskX) | _pdep_u64(y, kAxisMaskY) |
         _pdep_u64(z, kAxisMaskZ);
#else
  return morton_encode3(x, y, z);
#endif
}

std::array<std::uint32_t, 3> morton_decode3_fast(std::uint64_t code) noexcept {
#if defined(__BMI2__)
  return {static_cast<std::uint32_t>(_pext_u64(code, kAxisMaskX)),
          static_cast<std::uint32_t>(_pext_u64(code, kAxisMaskY)),
          static_cast<std::uint32_t>(_pext_u64(code, kAxisMaskZ))};
#else
  return morton_decode3(code);
#endif
}

bool morton_bmi2_enabled() noexcept {
#if defined(__BMI2__)
  return true;
#else
  return false;
#endif
}

void morton_encode3_batch(const std::uint32_t* x, const std::uint32_t* y,
                          const std::uint32_t* z, std::uint64_t* out,
                          std::size_t n) noexcept {
#if defined(__BMI2__)
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = _pdep_u64(x[i], kAxisMaskX) | _pdep_u64(y[i], kAxisMaskY) |
             _pdep_u64(z[i], kAxisMaskZ);
  }
#else
  for (std::size_t i = 0; i < n; ++i) out[i] = morton_encode3(x[i], y[i], z[i]);
#endif
}

void morton_decode3_batch(const std::uint64_t* codes, std::uint32_t* x,
                          std::uint32_t* y, std::uint32_t* z,
                          std::size_t n) noexcept {
#if defined(__BMI2__)
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::uint32_t>(_pext_u64(codes[i], kAxisMaskX));
    y[i] = static_cast<std::uint32_t>(_pext_u64(codes[i], kAxisMaskY));
    z[i] = static_cast<std::uint32_t>(_pext_u64(codes[i], kAxisMaskZ));
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = morton_decode3(codes[i]);
    x[i] = c[0];
    y[i] = c[1];
    z[i] = c[2];
  }
#endif
}

const std::array<std::array<int, 3>, kNeighborCount>&
LocCode::neighbor_directions() noexcept {
  static const auto dirs = [] {
    std::array<std::array<int, 3>, kNeighborCount> out{};
    int n = 0;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          out[n++] = {dx, dy, dz};
        }
      }
    }
    return out;
  }();
  return dirs;
}

std::string LocCode::to_string() const {
  const auto g = grid_anchor();
  std::ostringstream os;
  os << "L" << level() << "(" << g.x << "," << g.y << "," << g.z << ")";
  return os.str();
}

}  // namespace pmo
