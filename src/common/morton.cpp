#include "common/morton.hpp"

#include <sstream>

namespace pmo {

const std::array<std::array<int, 3>, kNeighborCount>&
LocCode::neighbor_directions() noexcept {
  static const auto dirs = [] {
    std::array<std::array<int, 3>, kNeighborCount> out{};
    int n = 0;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          out[n++] = {dx, dy, dz};
        }
      }
    }
    return out;
  }();
  return dirs;
}

std::string LocCode::to_string() const {
  const auto g = grid_anchor();
  std::ostringstream os;
  os << "L" << level() << "(" << g.x << "," << g.y << "," << g.z << ")";
  return os.str();
}

}  // namespace pmo
