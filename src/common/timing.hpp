// Wall-clock timing, cycle counting, and calibrated spin delays.
//
// The NVBM emulator (src/nvbm) injects extra memory latency the same way the
// paper does (§5.1): a software spin loop that reads the processor timestamp
// counter and spins until the intended delay has elapsed. spin_ns() is that
// loop; SpinCalibration converts nanoseconds to timestamp ticks once at
// startup so the hot path is a tight rdtsc poll.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace pmo {

/// Reads the CPU timestamp counter. Falls back to steady_clock on
/// non-x86 targets; either way the unit is "ticks" calibrated below.
inline std::uint64_t tsc_now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// One-time calibration of timestamp ticks per nanosecond.
///
/// The value is a process-wide constant: it is measured eagerly during
/// static initialization (see kSpinCalibrationAtStartup in timing.cpp),
/// before main() and before any worker threads exist. Calibrating lazily
/// from inside a parallel region would both serialize first-callers
/// behind the ~1 ms measurement and — worse — time the calibration
/// window while sibling workers burn CPU, skewing ticks-per-ns. After
/// initialization ticks_per_ns() is an immutable read, safe from any
/// thread.
class SpinCalibration {
 public:
  /// Ticks per nanosecond, measured once per process at startup.
  static double ticks_per_ns();

 private:
  static double measure();
};

/// Busy-wait for approximately `ns` nanoseconds. This is the paper's
/// RDTSC(P) spin-loop NVBM latency model.
inline void spin_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const double tpn = SpinCalibration::ticks_per_ns();
  const auto target =
      tsc_now() + static_cast<std::uint64_t>(static_cast<double>(ns) * tpn);
  while (tsc_now() < target) {
    // spin
  }
}

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }
  std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Named accumulator of time buckets, used for the per-routine execution
/// breakdowns (Figures 7 and 8b). Times may be real (measured) or modeled
/// (accumulated from a cost model) — the accounting is unit-agnostic.
class TimeBreakdown {
 public:
  void add_seconds(const std::string& bucket, double s);
  double seconds(const std::string& bucket) const;
  double total_seconds() const;
  /// Percentage of total time spent in `bucket`; 0 when total is 0.
  double percent(const std::string& bucket) const;
  std::vector<std::string> buckets() const;
  void clear();
  void merge(const TimeBreakdown& other);

 private:
  std::unordered_map<std::string, double> buckets_;
};

/// RAII helper accumulating a scope's wall time into a TimeBreakdown bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimeBreakdown& sink, std::string bucket)
      : sink_(sink), bucket_(std::move(bucket)) {}
  ~ScopedTimer() { sink_.add_seconds(bucket_, timer_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBreakdown& sink_;
  std::string bucket_;
  WallTimer timer_;
};

}  // namespace pmo
