// Small statistics and table-formatting helpers used by tests and benches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pmo {

/// Welford online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  void clear() noexcept { *this = OnlineStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width console table used by the benchmark harnesses so every
/// figure reproduction prints the same style of rows the paper reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string human_bytes(std::uint64_t bytes);
  static std::string human_count(double count);

  /// Render the table (header + separator + rows) to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmo
