#include "common/simd.hpp"

#include <atomic>

#if defined(__AVX2__) && !defined(PMO_SIMD_FORCE_PORTABLE)
#define PMO_SIMD_AVX2 1
#include <immintrin.h>
#else
#define PMO_SIMD_AVX2 0
#endif

namespace pmo::simd {

namespace {

std::atomic<bool> g_enabled{PMO_SIMD_AVX2 != 0};

/// The canonical scalar gather body. The portable kernel is this loop;
/// the AVX2 kernel is held bit-identical to it (tails also come here).
inline void gather_one(const double* vof, const double* tracer,
                       const std::int32_t* nbr, std::size_t i,
                       double* relaxed, std::uint8_t* touched) noexcept {
  const double v = vof[i];
  const double t = tracer[i];
  if (gather_skip_cell(v, t)) return;
  double acc = 0.0;
  int n = 0;
  const std::int32_t* slots = nbr + static_cast<std::size_t>(kFaceCount) * i;
  for (int f = 0; f < kFaceCount; ++f) {
    const std::int32_t s = slots[f];
    if (s < 0) continue;
    acc += tracer[static_cast<std::size_t>(s)];
    ++n;
  }
  const double r = n > 0 ? 0.5 * t + 0.5 * (acc / n) : t;
  relaxed[i] = r + 0.1 * v;
  touched[i] = 1;
}

inline void gather_portable(const double* vof, const double* tracer,
                            const std::int32_t* nbr, std::size_t begin,
                            std::size_t end, double* relaxed,
                            std::uint8_t* touched) noexcept {
  for (std::size_t i = begin; i < end; ++i)
    gather_one(vof, tracer, nbr, i, relaxed, touched);
}

inline void mark_portable(const double* vof, std::size_t begin,
                          std::size_t end, double lo, double hi,
                          std::uint8_t* marks) noexcept {
  for (std::size_t i = begin; i < end; ++i) {
    marks[i] = (vof[i] > lo && vof[i] < hi) ? 1 : 0;
  }
}

#if PMO_SIMD_AVX2

/// One masked 4x64-bit lane group of the gather. Per-lane arithmetic
/// mirrors gather_one operation for operation: blend-instead-of-add for
/// absent faces (so a -0.0 accumulator survives), explicit mul/add (no
/// FMA), division only where n > 0 lanes are kept.
inline void gather_block4(const double* vof, const double* tracer,
                          const std::int32_t* nbr, std::size_t i,
                          double* relaxed, std::uint8_t* touched) noexcept {
  const __m256d v = _mm256_loadu_pd(vof + i);
  const __m256d t = _mm256_loadu_pd(tracer + i);
  // skip = (v <= 0.0) && (t <= 1e-9); ordered compares: NaN never skips,
  // exactly like the scalar test.
  const __m256d skip = _mm256_and_pd(
      _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_LE_OQ),
      _mm256_cmp_pd(t, _mm256_set1_pd(1e-9), _CMP_LE_OQ));
  const int skip_mask = _mm256_movemask_pd(skip);
  if (skip_mask == 0xf) return;
  const std::int32_t* base =
      nbr + static_cast<std::size_t>(kFaceCount) * i;
  // All 24 slot indices at once: a set sign bit anywhere means some face
  // of some lane is absent (-1). Interior leaves — the vast majority —
  // take the branch-free fast path below with no presence masks.
  const __m256i raw0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base));
  const __m256i raw1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 8));
  const __m256i raw2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 16));
  const bool all_present =
      _mm256_movemask_ps(_mm256_castsi256_ps(
          _mm256_or_si256(raw0, _mm256_or_si256(raw1, raw2)))) == 0;
  __m256d acc = _mm256_setzero_pd();
  __m256d cnt = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  if (all_present) {
    // Every face present: plain gathers and plain adds, still in fixed
    // face order 0..5 — value-for-value the same additions the masked
    // path would blend in, so the fast path cannot move a bit.
    for (int f = 0; f < kFaceCount; ++f) {
      const __m128i idx =
          _mm_set_epi32(base[3 * kFaceCount + f], base[2 * kFaceCount + f],
                        base[kFaceCount + f], base[f]);
      acc = _mm256_add_pd(acc, _mm256_i32gather_pd(tracer, idx, 8));
      cnt = _mm256_add_pd(cnt, one);
    }
  } else {
    // Phase 1: issue all 6 masked gathers up front — they are mutually
    // independent, so they overlap in flight instead of serializing on
    // the accumulator dependency chain below.
    __m256d present[kFaceCount];
    __m256d g[kFaceCount];
    for (int f = 0; f < kFaceCount; ++f) {
      // Slot indices of face f for lanes i..i+3 (stride 6 in the table).
      const __m128i idx =
          _mm_set_epi32(base[3 * kFaceCount + f], base[2 * kFaceCount + f],
                        base[kFaceCount + f], base[f]);
      const __m128i present32 = _mm_cmpgt_epi32(idx, _mm_set1_epi32(-1));
      present[f] = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(present32));
      // Masked gather: lanes with slot -1 read nothing and yield 0.0 —
      // but the 0.0 is never added; the blend keeps the old accumulator
      // bits.
      g[f] = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), tracer, idx,
                                      present[f], 8);
    }
    // Phase 2: the reduction, in fixed face order 0..5 (the bit-identity
    // contract) — blend keeps absent faces out without adding a zero.
    for (int f = 0; f < kFaceCount; ++f) {
      acc = _mm256_blendv_pd(acc, _mm256_add_pd(acc, g[f]), present[f]);
      cnt = _mm256_blendv_pd(cnt, _mm256_add_pd(cnt, one), present[f]);
    }
  }
  // r = n > 0 ? 0.5*t + 0.5*(acc/n) : t. cnt holds exact small integers,
  // so acc/cnt is the same IEEE division as the scalar acc/n; n == 0
  // lanes divide by zero but are blended away before use.
  const __m256d has_nb =
      _mm256_cmp_pd(cnt, _mm256_setzero_pd(), _CMP_GT_OQ);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d mean = _mm256_div_pd(acc, cnt);
  __m256d r = _mm256_add_pd(_mm256_mul_pd(half, t),
                            _mm256_mul_pd(half, mean));
  r = _mm256_blendv_pd(t, r, has_nb);
  const __m256d out =
      _mm256_add_pd(r, _mm256_mul_pd(_mm256_set1_pd(0.1), v));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, out);
  for (int l = 0; l < 4; ++l) {
    if (skip_mask & (1 << l)) continue;
    relaxed[i + static_cast<std::size_t>(l)] = lanes[l];
    touched[i + static_cast<std::size_t>(l)] = 1;
  }
}

inline void gather_avx2(const double* vof, const double* tracer,
                        const std::int32_t* nbr, std::size_t begin,
                        std::size_t end, double* relaxed,
                        std::uint8_t* touched) noexcept {
  std::size_t i = begin;
  // 8 leaves per iteration: two independent masked 4-lane groups.
  for (; i + 8 <= end; i += 8) {
    gather_block4(vof, tracer, nbr, i, relaxed, touched);
    gather_block4(vof, tracer, nbr, i + 4, relaxed, touched);
  }
  if (i + 4 <= end) {
    gather_block4(vof, tracer, nbr, i, relaxed, touched);
    i += 4;
  }
  for (; i < end; ++i) gather_one(vof, tracer, nbr, i, relaxed, touched);
}

inline void mark_avx2(const double* vof, std::size_t n, double lo,
                      double hi, std::uint8_t* marks) noexcept {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vof + i);
    // Ordered compares: NaN is never an interface cell, as in the scalar
    // predicate.
    const __m256d in = _mm256_and_pd(_mm256_cmp_pd(v, vlo, _CMP_GT_OQ),
                                     _mm256_cmp_pd(v, vhi, _CMP_LT_OQ));
    const int m = _mm256_movemask_pd(in);
    marks[i] = (m >> 0) & 1;
    marks[i + 1] = (m >> 1) & 1;
    marks[i + 2] = (m >> 2) & 1;
    marks[i + 3] = (m >> 3) & 1;
  }
  mark_portable(vof, i, n, lo, hi, marks);
}

#endif  // PMO_SIMD_AVX2

}  // namespace

bool avx2_compiled() noexcept { return PMO_SIMD_AVX2 != 0; }

bool enabled() noexcept {
  return avx2_compiled() && g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void gather_relax(const double* vof, const double* tracer,
                  const std::int32_t* nbr, std::size_t begin,
                  std::size_t end, double* relaxed,
                  std::uint8_t* touched) noexcept {
#if PMO_SIMD_AVX2
  if (enabled()) {
    gather_avx2(vof, tracer, nbr, begin, end, relaxed, touched);
    return;
  }
#endif
  gather_portable(vof, tracer, nbr, begin, end, relaxed, touched);
}

void mark_interface_band(const double* vof, std::size_t n, double band,
                         std::uint8_t* marks) noexcept {
  const double lo = band;
  const double hi = 1.0 - band;
#if PMO_SIMD_AVX2
  if (enabled()) {
    mark_avx2(vof, n, lo, hi, marks);
    return;
  }
#endif
  mark_portable(vof, 0, n, lo, hi, marks);
}

}  // namespace pmo::simd
