#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace pmo {

void OnlineStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PMO_CHECK(!headers_.empty());
}

TablePrinter& TablePrinter::row(std::vector<std::string> cells) {
  PMO_CHECK_MSG(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width "
                             << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  if (unit == 0) {
    os << static_cast<std::uint64_t>(v) << kUnits[unit];
  } else {
    os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v
       << kUnits[unit];
  }
  return os.str();
}

std::string TablePrinter::human_count(double count) {
  std::ostringstream os;
  if (count >= 1e9) {
    os << std::fixed << std::setprecision(2) << count / 1e9 << "G";
  } else if (count >= 1e6) {
    os << std::fixed << std::setprecision(2) << count / 1e6 << "M";
  } else if (count >= 1e3) {
    os << std::fixed << std::setprecision(1) << count / 1e3 << "K";
  } else {
    os << std::fixed << std::setprecision(0) << count;
  }
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
         << " | ";
    }
    os << "\n";
  };
  emit(headers_);
  os << "|";
  for (const auto w : widths) os << std::string(w + 2, '-') << "-|";
  os << "\n";
  for (const auto& r : rows_) emit(r);
}

}  // namespace pmo
