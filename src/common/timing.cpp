#include "common/timing.hpp"

#include <algorithm>

namespace pmo {

double SpinCalibration::measure() {
  using clock = std::chrono::steady_clock;
  // Warm up, then measure the tick rate over a short window. Take the
  // median of several samples to reject scheduler noise.
  double samples[5];
  for (double& sample : samples) {
    const auto t0 = clock::now();
    const auto c0 = tsc_now();
    // ~200us window: long enough to dominate clock-read overhead.
    while (std::chrono::duration<double>(clock::now() - t0).count() < 200e-6) {
    }
    const auto c1 = tsc_now();
    const auto t1 = clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    sample = static_cast<double>(c1 - c0) / ns;
  }
  std::sort(samples, samples + 5);
  return samples[2];
}

double SpinCalibration::ticks_per_ns() {
  // Function-local magic static: thread-safe, and covers the (unlikely)
  // case of a call during another TU's static initialization. The
  // namespace-scope constant below forces the measurement to happen at
  // startup, while the process is still single-threaded.
  static const double value = measure();
  return value;
}

namespace {
[[maybe_unused]] const double kSpinCalibrationAtStartup =
    SpinCalibration::ticks_per_ns();
}  // namespace

void TimeBreakdown::add_seconds(const std::string& bucket, double s) {
  buckets_[bucket] += s;
}

double TimeBreakdown::seconds(const std::string& bucket) const {
  const auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0.0 : it->second;
}

double TimeBreakdown::total_seconds() const {
  double total = 0.0;
  for (const auto& [name, s] : buckets_) total += s;
  return total;
}

double TimeBreakdown::percent(const std::string& bucket) const {
  const double total = total_seconds();
  if (total <= 0.0) return 0.0;
  return 100.0 * seconds(bucket) / total;
}

std::vector<std::string> TimeBreakdown::buckets() const {
  std::vector<std::string> names;
  names.reserve(buckets_.size());
  for (const auto& [name, s] : buckets_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void TimeBreakdown::clear() { buckets_.clear(); }

void TimeBreakdown::merge(const TimeBreakdown& other) {
  for (const auto& [name, s] : other.buckets_) buckets_[name] += s;
}

}  // namespace pmo
