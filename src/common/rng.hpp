// Deterministic, fast pseudo-random number generation.
//
// All stochastic behaviour in the library (sampling, crash injection,
// synthetic workloads) routes through Rng so that every test and benchmark
// is reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace pmo {

/// SplitMix64: used to expand a single user seed into the xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — small-state, high-quality, very fast generator.
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions, but the inline helpers below avoid libstdc++
/// distribution overhead on hot paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    PMO_DCHECK(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    PMO_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Fork a statistically-independent child stream (for per-rank RNGs).
  /// Stateful: advances *this*. When every rank must derive its stream
  /// from a shared base seed without threading a parent Rng through, use
  /// the stateless for_rank() below instead.
  Rng fork() noexcept { return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ull); }

  /// Stateless per-rank stream derivation (splitmix fork).
  ///
  /// The child seed is element `rank + 1` of the SplitMix64 sequence
  /// whose state starts at `base_seed + rank * golden_gamma`: jumping the
  /// SplitMix64 state by the golden gamma per rank and taking one mixed
  /// output. Because SplitMix64's output function is a bijection over a
  /// full-period counter sequence, distinct (base_seed, rank) pairs with
  /// rank < 2^32 cannot collide for a fixed base seed, and the derivation
  /// is order-free: any thread can reconstruct rank r's stream from
  /// (base_seed, r) alone. ClusterSim uses this to give each concurrently
  /// measured rank replica its own deterministic workload jitter.
  static Rng for_rank(std::uint64_t base_seed, std::uint64_t rank) noexcept {
    std::uint64_t state = base_seed + rank * 0x9e3779b97f4a7c15ull;
    return Rng(splitmix64(state));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace pmo
