// Morton (Z-order) encoding and octree locational codes.
//
// Every octree implementation in this repository (the PM-octree core, the
// Gerris-style in-core baseline, and the Etree-style out-of-core baseline)
// identifies octants by a locational code: the anchor coordinates of the
// octant interleaved into a Morton key, plus a refinement level. Keys are
// totally ordered; sorting leaves by key yields the space-filling-curve
// order used for domain partitioning (the paper's Partition routine) and
// for the Etree B+-tree index (Z-values).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/assert.hpp"

namespace pmo {

/// Maximum refinement depth. 3 bits per level * 20 levels = 60 bits of
/// Morton key, leaving headroom in a 64-bit word. Gerris production runs
/// (and the paper's droplet workload) stay well below this.
inline constexpr int kMaxLevel = 20;
inline constexpr int kDimensions = 3;
inline constexpr int kChildrenPerNode = 8;  // the paper's "Fanout"
/// Face + edge + corner neighbors of a cube: 6 + 12 + 8.
inline constexpr int kNeighborCount = 26;

/// Interleave the low 21 bits of x into every 3rd bit of the result.
constexpr std::uint64_t morton_split3(std::uint32_t x) noexcept {
  std::uint64_t v = x & 0x1fffff;  // 21 bits
  v = (v | v << 32) & 0x1f00000000ffffull;
  v = (v | v << 16) & 0x1f0000ff0000ffull;
  v = (v | v << 8) & 0x100f00f00f00f00full;
  v = (v | v << 4) & 0x10c30c30c30c30c3ull;
  v = (v | v << 2) & 0x1249249249249249ull;
  return v;
}

/// Inverse of morton_split3.
constexpr std::uint32_t morton_compact3(std::uint64_t v) noexcept {
  v &= 0x1249249249249249ull;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ull;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00full;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffull;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffull;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return static_cast<std::uint32_t>(v);
}

/// 3D Morton encode: bit k of x lands at bit 3k, y at 3k+1, z at 3k+2.
constexpr std::uint64_t morton_encode3(std::uint32_t x, std::uint32_t y,
                                       std::uint32_t z) noexcept {
  return morton_split3(x) | (morton_split3(y) << 1) |
         (morton_split3(z) << 2);
}

constexpr std::array<std::uint32_t, 3> morton_decode3(
    std::uint64_t code) noexcept {
  return {morton_compact3(code), morton_compact3(code >> 1),
          morton_compact3(code >> 2)};
}

/// Fast-path 3D Morton encode/decode. On builds targeting BMI2
/// (x86 `-mbmi2` / `-march=haswell` or newer) these dispatch to single
/// PDEP/PEXT instructions per axis; elsewhere they fall back to the
/// portable magic-bits routines above. Bit-identical to
/// morton_encode3/morton_decode3 by definition — the differential test
/// in morton_test.cpp holds both paths to that.
std::uint64_t morton_encode3_fast(std::uint32_t x, std::uint32_t y,
                                  std::uint32_t z) noexcept;
std::array<std::uint32_t, 3> morton_decode3_fast(std::uint64_t code) noexcept;
/// True when the BMI2 path is compiled in (for test/bench reporting).
bool morton_bmi2_enabled() noexcept;

/// Batched Morton kernels over parallel coordinate arrays. Same BMI2 /
/// portable seam as the scalar fast paths, written as straight-line loops
/// over SoA inputs so the compiler can keep the PDEP/PEXT (or magic-bits)
/// pipelines full — the multi-point locate and Jacobi-gather entry points
/// of the linear cold tier feed these. Bit-identical to calling the scalar
/// routines per element (held to that by morton_test.cpp).
void morton_encode3_batch(const std::uint32_t* x, const std::uint32_t* y,
                          const std::uint32_t* z, std::uint64_t* out,
                          std::size_t n) noexcept;
void morton_decode3_batch(const std::uint64_t* codes, std::uint32_t* x,
                          std::uint32_t* y, std::uint32_t* z,
                          std::size_t n) noexcept;

/// Anchor coordinates of an octant on the level-`kMaxLevel` integer grid.
struct Anchor {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;

  friend constexpr bool operator==(const Anchor&, const Anchor&) = default;
};

/// Locational code of an octant: level + Morton key of its anchor
/// expressed on the finest grid. The pair (key, level) uniquely identifies
/// an octant; ordering by (key, level) is the depth-first SFC order.
class LocCode {
 public:
  constexpr LocCode() noexcept = default;

  static constexpr LocCode root() noexcept { return LocCode(0, 0); }

  /// Construct from anchor coordinates expressed on the level-`level` grid
  /// (i.e. coordinates in [0, 2^level)).
  static LocCode from_grid(int level, std::uint32_t x, std::uint32_t y,
                           std::uint32_t z) {
    PMO_CHECK_MSG(level >= 0 && level <= kMaxLevel,
                  "level out of range: " << level);
    const std::uint32_t side = std::uint32_t{1} << level;
    PMO_CHECK_MSG(x < side && y < side && z < side,
                  "grid coordinate out of range at level " << level);
    const int shift = kMaxLevel - level;
    return LocCode(morton_encode3_fast(x << shift, y << shift, z << shift),
                   level);
  }

  /// Reconstruct from a finest-grid Morton key + level pair (the inverse
  /// of key()/level() — used by the packed linear tier, which stores
  /// octants as binarized key words instead of LocCode structs).
  static constexpr LocCode from_key(std::uint64_t key, int level) noexcept {
    PMO_DCHECK(level >= 0 && level <= kMaxLevel);
    return LocCode(key, level);
  }

  constexpr int level() const noexcept { return level_; }
  constexpr std::uint64_t key() const noexcept { return key_; }

  /// Anchor on the finest (level kMaxLevel) grid.
  Anchor anchor() const noexcept {
    const auto c = morton_decode3_fast(key_);
    return {c[0], c[1], c[2]};
  }

  /// Anchor on this octant's own level grid.
  Anchor grid_anchor() const noexcept {
    const auto a = anchor();
    const int shift = kMaxLevel - level_;
    return {a.x >> shift, a.y >> shift, a.z >> shift};
  }

  /// Side length measured in finest-grid units.
  constexpr std::uint32_t extent() const noexcept {
    return std::uint32_t{1} << (kMaxLevel - level_);
  }

  constexpr bool is_root() const noexcept { return level_ == 0; }

  /// Index (0..7) of this octant within its parent.
  int child_index() const noexcept {
    PMO_DCHECK(level_ > 0);
    const int shift = 3 * (kMaxLevel - level_);
    return static_cast<int>((key_ >> shift) & 0x7);
  }

  LocCode parent() const {
    PMO_CHECK_MSG(level_ > 0, "root has no parent");
    const int shift = 3 * (kMaxLevel - level_ + 1);
    const std::uint64_t mask = ~((std::uint64_t{1} << shift) - 1);
    return LocCode(key_ & mask, level_ - 1);
  }

  LocCode child(int index) const {
    PMO_CHECK_MSG(level_ < kMaxLevel, "cannot refine beyond kMaxLevel");
    PMO_CHECK_MSG(index >= 0 && index < kChildrenPerNode,
                  "child index out of range: " << index);
    const int shift = 3 * (kMaxLevel - level_ - 1);
    return LocCode(key_ | (static_cast<std::uint64_t>(index) << shift),
                   level_ + 1);
  }

  /// Ancestor at the given coarser (or equal) level.
  LocCode ancestor_at(int level) const {
    PMO_CHECK_MSG(level >= 0 && level <= level_,
                  "ancestor level must be <= own level");
    const int shift = 3 * (kMaxLevel - level);
    const std::uint64_t mask =
        shift >= 64 ? 0 : ~((std::uint64_t{1} << shift) - 1);
    return LocCode(key_ & mask, level);
  }

  /// True when `other` lies inside this octant's volume (or equals it).
  bool contains(const LocCode& other) const noexcept {
    if (other.level_ < level_) return false;
    return other.ancestor_at(level_).key_ == key_;
  }

  /// Neighbor of the same size in direction (dx, dy, dz), components in
  /// {-1, 0, 1}. Returns false when the neighbor would fall outside the
  /// root domain.
  bool neighbor(int dx, int dy, int dz, LocCode& out) const noexcept {
    const auto a = grid_anchor();
    const std::int64_t side = std::int64_t{1} << level_;
    const std::int64_t nx = static_cast<std::int64_t>(a.x) + dx;
    const std::int64_t ny = static_cast<std::int64_t>(a.y) + dy;
    const std::int64_t nz = static_cast<std::int64_t>(a.z) + dz;
    if (nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side)
      return false;
    out = from_grid(level_, static_cast<std::uint32_t>(nx),
                    static_cast<std::uint32_t>(ny),
                    static_cast<std::uint32_t>(nz));
    return true;
  }

  /// All 26 same-size neighbor directions of a cube.
  static const std::array<std::array<int, 3>, kNeighborCount>&
  neighbor_directions() noexcept;

  /// Normalized cell center in [0,1)^3 of the unit root domain.
  std::array<double, 3> center_unit() const noexcept {
    const auto a = anchor();
    const double inv = 1.0 / static_cast<double>(std::uint32_t{1}
                                                 << kMaxLevel);
    const double half = 0.5 * static_cast<double>(extent()) * inv;
    return {a.x * inv + half, a.y * inv + half, a.z * inv + half};
  }

  /// Normalized cell size in the unit root domain.
  double size_unit() const noexcept {
    return static_cast<double>(extent()) /
           static_cast<double>(std::uint32_t{1} << kMaxLevel);
  }

  std::string to_string() const;

  friend constexpr bool operator==(const LocCode&,
                                   const LocCode&) noexcept = default;
  /// SFC order: by Morton key, ancestors before descendants at equal key.
  friend constexpr std::strong_ordering operator<=>(
      const LocCode& a, const LocCode& b) noexcept {
    if (a.key_ != b.key_) return a.key_ <=> b.key_;
    return a.level_ <=> b.level_;
  }

 private:
  constexpr LocCode(std::uint64_t key, int level) noexcept
      : key_(key), level_(static_cast<std::uint8_t>(level)) {}

  std::uint64_t key_ = 0;
  std::uint8_t level_ = 0;
};

/// Hash functor so LocCode can key unordered containers.
struct LocCodeHash {
  std::size_t operator()(const LocCode& c) const noexcept {
    // Full avalanche over the key before mixing in the level: a plain xor
    // of level into the key's high bits aliases ancestors of deep codes.
    std::uint64_t h = c.key();
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h += static_cast<std::uint64_t>(c.level()) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace pmo
