// Out-of-core-octree baseline: an Etree-style *linear* octree (§5.1).
//
// Only leaves are stored, as fixed records in 4 KiB pages behind a B+-tree
// indexed by Z-value, accessed through the file-system layer on NVBM. No
// parent/child/neighbor pointers exist, so:
//   * neighbor lookup = index probes over every candidate ancestor level;
//   * Balance must search all 26 neighbors per octant through the index —
//     the paper's explanation for the baseline's poor balancing time.
#pragma once

#include <memory>

#include "amr/mesh_backend.hpp"
#include "baseline/bptree.hpp"

namespace pmo::baseline {

struct EtreeConfig {
  std::size_t cache_pages = 256;   ///< buffer-pool size
  nvfs::FsConfig fs;               ///< file-layer cost model
};

class EtreeBackend final : public amr::MeshBackend {
 public:
  /// Builds a fresh linear octree (root octant only) on `device`.
  EtreeBackend(nvbm::Device& device, EtreeConfig config = {});

  std::string name() const override { return "out-of-core-octree"; }

  void sweep_leaves(const amr::LeafMutFn& fn) override;
  void visit_leaves(const amr::LeafFn& fn) override;
  void sweep_leaves_chunked_soa(
      std::size_t chunks, const amr::SoaLeafChunkFn& fn,
      exec::ThreadPool* pool = nullptr,
      const amr::SoaPrepareFn& prepare = nullptr) override;
  /// Leaf-set stamp: bumped by every record-set mutation (refine_leaf,
  /// coarsen groups, recovery reload). B+-tree page churn and data
  /// updates do not move it.
  std::uint64_t structure_version() override { return topo_version_; }
  std::size_t refine_where(const amr::LeafPred& pred,
                           const amr::ChildInit& init) override;
  std::size_t coarsen_where(const amr::LeafPred& pred) override;
  std::size_t balance() override;
  CellData sample(const LocCode& code) override;
  std::size_t leaf_count() override { return tree_->size(); }
  void end_step(int step) override;
  bool recover() override;

  std::uint64_t modeled_ns() const override;
  std::uint64_t nvbm_writes() const override {
    return device_.counters().writes;
  }
  std::uint64_t memory_bytes() override;

  /// Refines one leaf (8 index deletions/insertions). Exposed for tests.
  void refine_leaf(const OctantRecord& rec, const amr::ChildInit& init);
  /// The covering leaf of `code`: exact match or nearest ancestor.
  std::optional<OctantRecord> cover(const LocCode& code);
  Bptree& index() { return *tree_; }

 private:
  nvbm::Device& device_;
  nvfs::FileStore store_;
  std::unique_ptr<Bptree> tree_;
  std::uint64_t retired_ns_ = 0;  ///< search time of replaced index objects
  std::uint64_t topo_version_ = 0;  ///< see structure_version()
};

}  // namespace pmo::baseline
