#include "baseline/incore_backend.hpp"

#include <cstring>
#include <vector>

namespace pmo::baseline {

namespace {

pmoctree::PmConfig dram_only_config() {
  pmoctree::PmConfig pm;
  // Effectively unlimited DRAM: octants never spill to NVBM.
  pm.dram_budget_bytes = std::size_t{1} << 50;
  pm.enable_transform = false;
  pm.gc_on_persist = false;
  // No NVBM-resident octants -> the hot-node cache would never hit; keep
  // it (and the traversal cursors) off so this baseline emits no
  // pmoctree.cache/cursor telemetry that could be mistaken for the
  // PM-octree under test.
  pm.node_cache_bytes = 0;
  return pm;
}

nvbm::Config header_only_device() {
  nvbm::Config c;
  c.latency_mode = nvbm::LatencyMode::kNone;  // never used for octants
  return c;
}

/// Snapshot record: one leaf octant.
struct SnapRecord {
  std::uint64_t key;
  std::uint32_t level;
  std::uint32_t pad = 0;
  CellData data;
};

}  // namespace

InCoreBackend::InCoreBackend(nvbm::Device& snapshot_device,
                             InCoreConfig config)
    : snapshot_device_(snapshot_device),
      config_(config),
      store_(snapshot_device, config.fs),
      tree_device_(1 << 20, header_only_device()),
      tree_heap_(tree_device_) {
  tree_ = std::make_unique<pmoctree::PmOctree>(
      pmoctree::PmOctree::create(tree_heap_, dram_only_config()));
}

void InCoreBackend::sweep_leaves(const amr::LeafMutFn& fn) {
  tree_->for_each_leaf_mut(fn);
}

void InCoreBackend::sweep_leaves_pruned(
    const std::function<bool(const LocCode&)>& visit_subtree,
    const amr::LeafMutFn& fn) {
  tree_->for_each_leaf_mut_pruned(visit_subtree, fn);
}

void InCoreBackend::visit_leaves(const amr::LeafFn& fn) {
  tree_->for_each_leaf(fn);
}

void InCoreBackend::sweep_leaves_chunked_soa(
    std::size_t chunks, const amr::SoaLeafChunkFn& fn,
    exec::ThreadPool* pool, const amr::SoaPrepareFn& prepare) {
  // DRAM-only tree, but the extraction still goes through the tree's
  // charged read path (60 ns DRAM model per octant) — same accounting as
  // the AoS sweep.
  amr::SoaLeaves soa;
  tree_->extract_leaves_soa(soa.keys, soa.levels, soa.vof, soa.tracer);
  dispatch_soa_chunks(soa, chunks, fn, pool, prepare);
}

std::uint64_t InCoreBackend::structure_version() {
  return recover_version_base_ + tree_->topology_version();
}

std::size_t InCoreBackend::refine_where(const amr::LeafPred& pred,
                                        const amr::ChildInit& init) {
  return tree_->refine_where(pred, init);
}

std::size_t InCoreBackend::coarsen_where(const amr::LeafPred& pred) {
  return tree_->coarsen_where(pred);
}

std::size_t InCoreBackend::balance() { return tree_->balance(); }

CellData InCoreBackend::sample(const LocCode& code) {
  return tree_->sample(code);
}

std::size_t InCoreBackend::leaf_count() { return tree_->leaf_count(); }

void InCoreBackend::snapshot() {
  // Serialize every leaf and write the whole thing through the NVBM file
  // system — the full-state dump Gerris performs with gfs_output_write().
  std::vector<std::byte> blob;
  std::uint64_t count = 0;
  blob.resize(sizeof(count));
  tree_->for_each_leaf([&](const LocCode& code, const CellData& data) {
    SnapRecord rec{};
    rec.key = code.key();
    rec.level = static_cast<std::uint32_t>(code.level());
    rec.data = data;
    const auto at = blob.size();
    blob.resize(at + sizeof(rec));
    std::memcpy(blob.data() + at, &rec, sizeof(rec));
    ++count;
  });
  std::memcpy(blob.data(), &count, sizeof(count));
  auto& file = store_.create(kSnapshotName);
  file.pwrite(0, blob.data(), blob.size());
  file.fsync();
}

void InCoreBackend::end_step(int step) {
  if (config_.snapshot_interval > 0 &&
      (step + 1) % config_.snapshot_interval == 0) {
    snapshot();
  }
}

bool InCoreBackend::recover() {
  if (!store_.exists(kSnapshotName)) return false;
  auto& file = store_.open(kSnapshotName);
  std::vector<std::byte> blob(file.size());
  file.pread(0, blob.data(), blob.size());
  std::uint64_t count = 0;
  PMO_CHECK_MSG(blob.size() >= sizeof(count), "snapshot truncated");
  std::memcpy(&count, blob.data(), sizeof(count));
  PMO_CHECK_MSG(blob.size() >= sizeof(count) + count * sizeof(SnapRecord),
                "snapshot truncated");
  // Rebuild the whole in-memory tree from scratch — the slow path the
  // paper measures at 42.9 s for 6.75M elements.
  retired_ns_ += tree_->modeled_ns();
  recover_version_base_ += tree_->topology_version() + 1;
  tree_ = std::make_unique<pmoctree::PmOctree>(
      pmoctree::PmOctree::create(tree_heap_, dram_only_config()));
  std::size_t at = sizeof(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SnapRecord rec{};
    std::memcpy(&rec, blob.data() + at, sizeof(rec));
    at += sizeof(rec);
    const auto a = morton_decode3(rec.key);
    const int shift = kMaxLevel - static_cast<int>(rec.level);
    const auto code =
        LocCode::from_grid(static_cast<int>(rec.level), a[0] >> shift,
                           a[1] >> shift, a[2] >> shift);
    tree_->insert(code, rec.data);
  }
  return true;
}

std::uint64_t InCoreBackend::modeled_ns() const {
  // DRAM octree time + snapshot-file NVBM time + file-layer overhead.
  return retired_ns_ + tree_->modeled_ns() +
         snapshot_device_.counters().modeled_ns() +
         store_.counters().modeled_overhead_ns;
}

std::uint64_t InCoreBackend::memory_bytes() {
  return tree_->stats().dram_bytes +
         store_.blocks_in_use() * store_.config().block_size;
}

}  // namespace pmo::baseline
