#include "baseline/bptree.hpp"

#include <algorithm>
#include <cstring>

namespace pmo::baseline {

Bptree::Bptree(nvfs::FileStore& store, const std::string& file_name,
               std::size_t cache_pages)
    : store_(store), cache_capacity_(std::max<std::size_t>(8, cache_pages)) {
  if (store_.exists(file_name)) {
    file_ = &store_.open(file_name);
    file_->pread(0, &meta_, sizeof(meta_));
    PMO_CHECK_MSG(meta_.magic == kMagic, "not a Bptree file: " << file_name);
    record_count_ = static_cast<std::size_t>(meta_.records);
  } else {
    file_ = &store_.create(file_name);
    meta_.magic = kMagic;
    meta_.root = alloc_page(/*leaf=*/true);
    meta_.height = 1;
    save_meta();
  }
}

Bptree::~Bptree() {
  try {
    flush();
  } catch (...) {
    // Destructor must not throw; an unflushable tree is already lost.
  }
}

// ---------------------------------------------------------------------------
// page accessors
// ---------------------------------------------------------------------------

Bptree::PageHeader& Bptree::header(Page& p) {
  return *reinterpret_cast<PageHeader*>(p.bytes.data());
}

std::uint64_t* Bptree::internal_keys(Page& p) {
  return reinterpret_cast<std::uint64_t*>(p.bytes.data() + kHeaderSize);
}

std::uint64_t* Bptree::internal_children(Page& p) {
  return reinterpret_cast<std::uint64_t*>(p.bytes.data() + kHeaderSize +
                                          kInternalCap * sizeof(std::uint64_t));
}

OctantRecord* Bptree::leaf_records(Page& p) {
  return reinterpret_cast<OctantRecord*>(p.bytes.data() + kHeaderSize);
}

// ---------------------------------------------------------------------------
// buffer pool
// ---------------------------------------------------------------------------

namespace {
// Per-page-access DRAM search cost: ~log2(fanout) key probes plus one
// record/child copy, each a cache line at DRAM latency (Table 2: 60 ns).
constexpr std::uint64_t kPageSearchDramNs = 6 * 60;
}  // namespace

Bptree::Page& Bptree::fetch(std::uint64_t page_id) {
  stats_.search_dram_ns += kPageSearchDramNs;
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    lru_.erase(lru_pos_[page_id]);
    lru_.push_front(page_id);
    lru_pos_[page_id] = lru_.begin();
    return it->second;
  }
  evict_if_needed();
  Page page;
  page.bytes.resize(kPageSize);
  file_->pread(page_id * kPageSize, page.bytes.data(), kPageSize);
  ++stats_.page_reads;
  auto [pos, inserted] = cache_.emplace(page_id, std::move(page));
  lru_.push_front(page_id);
  lru_pos_[page_id] = lru_.begin();
  return pos->second;
}

void Bptree::mark_dirty(std::uint64_t page_id) {
  const auto it = cache_.find(page_id);
  PMO_DCHECK(it != cache_.end());
  it->second.dirty = true;
}

void Bptree::write_back(std::uint64_t page_id, Page& page) {
  if (!page.dirty) return;
  file_->pwrite(page_id * kPageSize, page.bytes.data(), kPageSize);
  ++stats_.page_writes;
  page.dirty = false;
}

void Bptree::evict_if_needed() {
  while (cache_.size() >= cache_capacity_) {
    const auto victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    auto it = cache_.find(victim);
    write_back(victim, it->second);
    cache_.erase(it);
  }
}

std::uint64_t Bptree::alloc_page(bool leaf) {
  const std::uint64_t page_id = meta_.next_page++;
  evict_if_needed();
  Page page;
  page.bytes.resize(kPageSize);
  header(page).is_leaf = leaf ? 1 : 0;
  header(page).count = 0;
  header(page).next_leaf = 0;
  page.dirty = true;
  cache_.emplace(page_id, std::move(page));
  lru_.push_front(page_id);
  lru_pos_[page_id] = lru_.begin();
  ++stats_.pages;
  return page_id;
}

void Bptree::save_meta() {
  meta_.records = record_count_;
  file_->pwrite(0, &meta_, sizeof(meta_));
}

void Bptree::flush() {
  save_meta();
  for (auto& [id, page] : cache_) write_back(id, page);
  file_->fsync();
}

// ---------------------------------------------------------------------------
// tree operations
// ---------------------------------------------------------------------------

std::uint64_t Bptree::find_leaf(std::uint64_t key,
                                std::vector<std::uint64_t>* path) {
  std::uint64_t at = meta_.root;
  for (std::uint64_t h = 1; h < meta_.height; ++h) {
    if (path != nullptr) path->push_back(at);
    Page& page = fetch(at);
    const auto& hdr = header(page);
    PMO_DCHECK(hdr.is_leaf == 0);
    const auto* keys = internal_keys(page);
    const auto* children = internal_children(page);
    // children[i] covers keys < keys[i]; children[count] covers the rest.
    std::uint32_t i = 0;
    while (i < hdr.count && key >= keys[i]) ++i;
    at = children[i];
  }
  return at;
}

std::optional<OctantRecord> Bptree::find(std::uint64_t key) {
  Page& leaf = fetch(find_leaf(key));
  const auto& hdr = header(leaf);
  const auto* recs = leaf_records(leaf);
  const auto* end = recs + hdr.count;
  const auto* it = std::lower_bound(
      recs, end, key,
      [](const OctantRecord& r, std::uint64_t k) { return r.key < k; });
  if (it != end && it->key == key) return *it;
  return std::nullopt;
}

std::optional<OctantRecord> Bptree::lower_bound(std::uint64_t key) {
  std::uint64_t leaf_id = find_leaf(key);
  while (leaf_id != 0) {
    Page& leaf = fetch(leaf_id);
    const auto& hdr = header(leaf);
    const auto* recs = leaf_records(leaf);
    const auto* end = recs + hdr.count;
    const auto* it = std::lower_bound(
        recs, end, key,
        [](const OctantRecord& r, std::uint64_t k) { return r.key < k; });
    if (it != end) return *it;
    leaf_id = hdr.next_leaf == 0 ? 0 : hdr.next_leaf - 1;
    key = 0;
  }
  return std::nullopt;
}

void Bptree::scan(std::uint64_t from_key,
                  const std::function<bool(const OctantRecord&)>& fn) {
  std::uint64_t leaf_id = find_leaf(from_key);
  bool first = true;
  while (leaf_id != 0 || first) {
    Page& leaf = fetch(first ? leaf_id : leaf_id);
    first = false;
    const auto hdr = header(leaf);  // copy: fn may mutate the tree? no —
                                    // scan is read-only by contract.
    const auto* recs = leaf_records(leaf);
    for (std::uint32_t i = 0; i < hdr.count; ++i) {
      if (recs[i].key < from_key) continue;
      if (!fn(recs[i])) return;
    }
    if (hdr.next_leaf == 0) return;
    leaf_id = hdr.next_leaf - 1;
    from_key = 0;
  }
}

void Bptree::insert(const OctantRecord& rec) {
  std::vector<std::uint64_t> path;
  const std::uint64_t leaf_id = find_leaf(rec.key, &path);
  Page& leaf = fetch(leaf_id);
  auto& hdr = header(leaf);
  auto* recs = leaf_records(leaf);
  auto* end = recs + hdr.count;
  auto* it = std::lower_bound(
      recs, end, rec.key,
      [](const OctantRecord& r, std::uint64_t k) { return r.key < k; });
  if (it != end && it->key == rec.key) {
    *it = rec;  // replace
    mark_dirty(leaf_id);
    return;
  }
  // Shift right and insert.
  const auto pos = static_cast<std::size_t>(it - recs);
  std::memmove(recs + pos + 1, recs + pos,
               (hdr.count - pos) * sizeof(OctantRecord));
  recs[pos] = rec;
  ++hdr.count;
  ++record_count_;
  mark_dirty(leaf_id);

  if (hdr.count < kLeafCap) return;

  // Split the leaf.
  ++stats_.splits;
  const std::uint64_t right_id = alloc_page(/*leaf=*/true);
  // alloc_page may evict; refetch the left page.
  Page& left = fetch(leaf_id);
  Page& right = fetch(right_id);
  auto& lh = header(left);
  auto& rh = header(right);
  auto* lrecs = leaf_records(left);
  auto* rrecs = leaf_records(right);
  const std::uint32_t half = lh.count / 2;
  rh.count = lh.count - half;
  std::memcpy(rrecs, lrecs + half, rh.count * sizeof(OctantRecord));
  lh.count = half;
  rh.next_leaf = lh.next_leaf;
  lh.next_leaf = right_id + 1;
  mark_dirty(leaf_id);
  mark_dirty(right_id);
  insert_into_parent(path, leaf_id, rrecs[0].key, right_id);
}

void Bptree::insert_into_parent(std::vector<std::uint64_t>& path,
                                std::uint64_t left, std::uint64_t sep,
                                std::uint64_t right) {
  if (path.empty()) {
    // New root.
    const std::uint64_t root_id = alloc_page(/*leaf=*/false);
    Page& root = fetch(root_id);
    auto& hdr = header(root);
    hdr.count = 1;
    internal_keys(root)[0] = sep;
    internal_children(root)[0] = left;
    internal_children(root)[1] = right;
    mark_dirty(root_id);
    meta_.root = root_id;
    ++meta_.height;
    save_meta();
    return;
  }
  const std::uint64_t parent_id = path.back();
  path.pop_back();
  Page& parent = fetch(parent_id);
  auto& hdr = header(parent);
  auto* keys = internal_keys(parent);
  auto* children = internal_children(parent);
  std::uint32_t pos = 0;
  while (pos < hdr.count && sep >= keys[pos]) ++pos;
  std::memmove(keys + pos + 1, keys + pos,
               (hdr.count - pos) * sizeof(std::uint64_t));
  std::memmove(children + pos + 2, children + pos + 1,
               (hdr.count - pos) * sizeof(std::uint64_t));
  keys[pos] = sep;
  children[pos + 1] = right;
  ++hdr.count;
  mark_dirty(parent_id);
  (void)left;

  if (hdr.count < kInternalCap) return;

  // Split the internal page.
  ++stats_.splits;
  const std::uint64_t right_id = alloc_page(/*leaf=*/false);
  Page& lpage = fetch(parent_id);
  Page& rpage = fetch(right_id);
  auto& lh = header(lpage);
  auto& rh = header(rpage);
  auto* lkeys = internal_keys(lpage);
  auto* lchildren = internal_children(lpage);
  auto* rkeys = internal_keys(rpage);
  auto* rchildren = internal_children(rpage);
  const std::uint32_t mid = lh.count / 2;
  const std::uint64_t up_key = lkeys[mid];
  rh.count = lh.count - mid - 1;
  std::memcpy(rkeys, lkeys + mid + 1, rh.count * sizeof(std::uint64_t));
  std::memcpy(rchildren, lchildren + mid + 1,
              (rh.count + 1) * sizeof(std::uint64_t));
  lh.count = mid;
  mark_dirty(parent_id);
  mark_dirty(right_id);
  insert_into_parent(path, parent_id, up_key, right_id);
}

bool Bptree::erase(std::uint64_t key) {
  const std::uint64_t leaf_id = find_leaf(key);
  Page& leaf = fetch(leaf_id);
  auto& hdr = header(leaf);
  auto* recs = leaf_records(leaf);
  auto* end = recs + hdr.count;
  auto* it = std::lower_bound(
      recs, end, key,
      [](const OctantRecord& r, std::uint64_t k) { return r.key < k; });
  if (it == end || it->key != key) return false;
  const auto pos = static_cast<std::size_t>(it - recs);
  std::memmove(recs + pos, recs + pos + 1,
               (hdr.count - pos - 1) * sizeof(OctantRecord));
  --hdr.count;
  --record_count_;
  mark_dirty(leaf_id);
  return true;
}

void Bptree::update(const OctantRecord& rec) {
  const std::uint64_t leaf_id = find_leaf(rec.key);
  Page& leaf = fetch(leaf_id);
  auto& hdr = header(leaf);
  auto* recs = leaf_records(leaf);
  auto* end = recs + hdr.count;
  auto* it = std::lower_bound(
      recs, end, rec.key,
      [](const OctantRecord& r, std::uint64_t k) { return r.key < k; });
  PMO_CHECK_MSG(it != end && it->key == rec.key,
                "Bptree::update of missing key");
  *it = rec;
  mark_dirty(leaf_id);
}

BptreeStats Bptree::stats() {
  stats_.records = record_count_;
  stats_.height = static_cast<int>(meta_.height);
  return stats_;
}

}  // namespace pmo::baseline
