// In-core-octree baseline: the stock Gerris model (§5.1).
//
// All octants live in DRAM in a pointer-based octree; durability comes
// from writing the *entire* tree as a snapshot file through the
// file-system interface onto NVBM every `snapshot_interval` steps, and
// recovery reads the whole file back. This is the I/O bottleneck the
// paper's introduction targets.
//
// Implementation note: the octree itself is a PmOctree configured with an
// effectively unlimited DRAM budget and no persistence — that gives us the
// same pointer-based multi-threaded octree with identical per-access
// accounting (60 ns DRAM model), so cross-backend time comparisons are
// apples-to-apples. The NVBM heap behind it is never used for octants.
#pragma once

#include <memory>

#include "amr/mesh_backend.hpp"
#include "nvfs/file_store.hpp"
#include "pmoctree/pm_octree.hpp"

namespace pmo::baseline {

struct InCoreConfig {
  int snapshot_interval = 10;  ///< paper: snapshot every 10 time steps
  nvfs::FsConfig fs;
};

class InCoreBackend final : public amr::MeshBackend {
 public:
  /// `snapshot_device` hosts the NVBM file system that receives snapshots.
  explicit InCoreBackend(nvbm::Device& snapshot_device,
                         InCoreConfig config = {});

  std::string name() const override { return "in-core-octree"; }

  void sweep_leaves(const amr::LeafMutFn& fn) override;
  void sweep_leaves_pruned(
      const std::function<bool(const LocCode&)>& visit_subtree,
      const amr::LeafMutFn& fn) override;
  void visit_leaves(const amr::LeafFn& fn) override;
  void sweep_leaves_chunked_soa(
      std::size_t chunks, const amr::SoaLeafChunkFn& fn,
      exec::ThreadPool* pool = nullptr,
      const amr::SoaPrepareFn& prepare = nullptr) override;
  std::uint64_t structure_version() override;
  std::size_t refine_where(const amr::LeafPred& pred,
                           const amr::ChildInit& init) override;
  std::size_t coarsen_where(const amr::LeafPred& pred) override;
  std::size_t balance() override;
  CellData sample(const LocCode& code) override;
  std::size_t leaf_count() override;
  void end_step(int step) override;
  bool recover() override;

  std::uint64_t modeled_ns() const override;
  std::uint64_t nvbm_writes() const override {
    return snapshot_device_.counters().writes;
  }
  std::uint64_t memory_bytes() override;

  /// Forces a snapshot now (exposed for the recovery experiments).
  void snapshot();
  bool has_snapshot() const { return store_.exists(kSnapshotName); }

 private:
  static constexpr const char* kSnapshotName = "gerris.snapshot";

  nvbm::Device& snapshot_device_;
  InCoreConfig config_;
  nvfs::FileStore store_;
  /// Private DRAM-only tree state (octants never touch NVBM).
  nvbm::Device tree_device_;  ///< tiny; holds only the unused heap header
  nvbm::Heap tree_heap_;
  std::unique_ptr<pmoctree::PmOctree> tree_;
  std::uint64_t retired_ns_ = 0;  ///< time accrued by replaced trees
  /// structure_version() base across recover()'s tree replacement.
  std::uint64_t recover_version_base_ = 0;
};

}  // namespace pmo::baseline
