#include "baseline/etree_backend.hpp"

#include <algorithm>
#include <vector>

namespace pmo::baseline {

EtreeBackend::EtreeBackend(nvbm::Device& device, EtreeConfig config)
    : device_(device), store_(device, config.fs) {
  tree_ = std::make_unique<Bptree>(store_, "etree.db", config.cache_pages);
  if (tree_->size() == 0) {
    tree_->insert(OctantRecord::from(LocCode::root(), CellData{}));
  }
}

std::optional<OctantRecord> EtreeBackend::cover(const LocCode& code) {
  // Linear octree cover probe: try the exact code, then every ancestor.
  // Each probe is an index lookup — page I/O through the B-tree. This
  // level-by-level probing is exactly the extra memory latency the paper
  // attributes to index-based out-of-core designs on NVBM (§1).
  // Keys are unique in a linear octree, and the containing leaf's key is
  // one of code's ancestor keys, so the first hit is the cover (or, when
  // the probed region is itself refined, its deepest all-zero descendant —
  // which callers treat as "neighbor is finer", correctly).
  for (int level = code.level(); level >= 0; --level) {
    if (auto rec = tree_->find(code.ancestor_at(level).key())) return rec;
  }
  return std::nullopt;
}

void EtreeBackend::visit_leaves(const amr::LeafFn& fn) {
  // Collect first: the visitor may reenter the index (e.g. solver
  // stencils calling sample()), which would disturb an open scan's page.
  std::vector<OctantRecord> all;
  all.reserve(tree_->size());
  tree_->scan_all([&](const OctantRecord& rec) {
    all.push_back(rec);
    return true;
  });
  for (const auto& rec : all) fn(rec.code(), rec.data);
}

void EtreeBackend::sweep_leaves_chunked_soa(
    std::size_t chunks, const amr::SoaLeafChunkFn& fn,
    exec::ThreadPool* pool, const amr::SoaPrepareFn& prepare) {
  // One charged index scan straight into the parallel arrays: records
  // come out of scan_all in Morton key order, which is the leaf
  // enumeration every other backend produces.
  amr::SoaLeaves soa;
  soa.keys.reserve(tree_->size());
  tree_->scan_all([&](const OctantRecord& rec) {
    soa.push_back(rec.code(), rec.data);
    return true;
  });
  dispatch_soa_chunks(soa, chunks, fn, pool, prepare);
}

void EtreeBackend::sweep_leaves(const amr::LeafMutFn& fn) {
  // Same collect-then-apply discipline; modified records are written back
  // through the index afterwards (read-modify-write via the buffer pool,
  // as in the original Etree).
  std::vector<OctantRecord> all;
  all.reserve(tree_->size());
  tree_->scan_all([&](const OctantRecord& rec) {
    all.push_back(rec);
    return true;
  });
  for (auto& rec : all) {
    if (fn(rec.code(), rec.data)) tree_->update(rec);
  }
}

void EtreeBackend::refine_leaf(const OctantRecord& rec,
                               const amr::ChildInit& init) {
  const LocCode code = rec.code();
  PMO_CHECK_MSG(code.level() < kMaxLevel, "cannot refine beyond kMaxLevel");
  ++topo_version_;
  tree_->erase(rec.key);
  for (int i = 0; i < kChildrenPerNode; ++i) {
    const auto child = code.child(i);
    CellData d = rec.data;  // inherit
    if (init) init(child, d);
    tree_->insert(OctantRecord::from(child, d));
  }
}

std::size_t EtreeBackend::refine_where(const amr::LeafPred& pred,
                                       const amr::ChildInit& init) {
  std::vector<OctantRecord> to_split;
  tree_->scan_all([&](const OctantRecord& rec) {
    if (rec.level < kMaxLevel && pred(rec.code(), rec.data))
      to_split.push_back(rec);
    return true;
  });
  for (const auto& rec : to_split) refine_leaf(rec, init);
  return to_split.size();
}

std::size_t EtreeBackend::coarsen_where(const amr::LeafPred& pred) {
  // Scan in Morton order; 8 consecutive records that are siblings and all
  // match the predicate form a mergeable group (Morton order guarantees
  // siblings are contiguous when all are leaves).
  std::vector<std::array<OctantRecord, kChildrenPerNode>> groups;
  std::vector<OctantRecord> window;
  tree_->scan_all([&](const OctantRecord& rec) {
    window.push_back(rec);
    if (window.size() > kChildrenPerNode) window.erase(window.begin());
    if (window.size() == kChildrenPerNode) {
      const auto& first = window.front();
      if (first.level > 0) {
        const auto parent = window.front().code().parent();
        bool siblings = true;
        bool agree = true;
        for (int i = 0; i < kChildrenPerNode; ++i) {
          const auto& w = window[static_cast<std::size_t>(i)];
          siblings &= (w.level == first.level) &&
                      (w.code() == parent.child(i));
          agree &= pred(w.code(), w.data);
        }
        if (siblings && agree) {
          std::array<OctantRecord, kChildrenPerNode> g;
          std::copy(window.begin(), window.end(), g.begin());
          groups.push_back(g);
          window.clear();
        }
      }
    }
    return true;
  });
  if (!groups.empty()) ++topo_version_;
  for (const auto& g : groups) {
    CellData acc{};
    for (const auto& rec : g) {
      acc.vof += rec.data.vof / kChildrenPerNode;
      acc.tracer += rec.data.tracer / kChildrenPerNode;
      acc.u += rec.data.u / kChildrenPerNode;
      acc.v += rec.data.v / kChildrenPerNode;
      acc.w += rec.data.w / kChildrenPerNode;
      acc.pressure += rec.data.pressure / kChildrenPerNode;
    }
    for (const auto& rec : g) tree_->erase(rec.key);
    tree_->insert(OctantRecord::from(g[0].code().parent(), acc));
  }
  return groups.size();
}

std::size_t EtreeBackend::balance() {
  // Fine-side violation detection, but every neighbor check is a chain of
  // index probes (no pointers!). This is the expensive path the paper
  // describes: 26 neighbors x up-to-depth probes per octant.
  std::size_t total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<OctantRecord> leaves;
    leaves.reserve(tree_->size());
    tree_->scan_all([&](const OctantRecord& rec) {
      leaves.push_back(rec);
      return true;
    });
    std::vector<OctantRecord> to_split;
    for (const auto& leaf : leaves) {
      const LocCode code = leaf.code();
      for (const auto& d : LocCode::neighbor_directions()) {
        LocCode ncode;
        if (!code.neighbor(d[0], d[1], d[2], ncode)) continue;
        const auto adj = cover(ncode);
        if (adj && static_cast<int>(adj->level) < code.level() - 1)
          to_split.push_back(*adj);
      }
    }
    std::sort(to_split.begin(), to_split.end(),
              [](const OctantRecord& a, const OctantRecord& b) {
                return a.key < b.key || (a.key == b.key && a.level < b.level);
              });
    to_split.erase(std::unique(to_split.begin(), to_split.end(),
                               [](const OctantRecord& a,
                                  const OctantRecord& b) {
                                 return a.key == b.key && a.level == b.level;
                               }),
                   to_split.end());
    for (const auto& rec : to_split) {
      // Confirm it is still a leaf (an earlier split may have replaced it).
      const auto still = tree_->find(rec.key);
      if (still && still->level == rec.level) {
        refine_leaf(*still, nullptr);
        ++total;
        changed = true;
      }
    }
  }
  return total;
}

CellData EtreeBackend::sample(const LocCode& code) {
  const auto rec = cover(code);
  PMO_CHECK_MSG(rec.has_value(), "no leaf covers " << code.to_string());
  return rec->data;
}

void EtreeBackend::end_step(int) {
  // The octant database is the persistent medium; a flush makes the step
  // durable (Etree "can guarantee data consistency after failures", §5.6).
  tree_->flush();
}

bool EtreeBackend::recover() {
  // Same-node restart: reopen the database; it is already consistent.
  retired_ns_ += tree_->search_dram_ns();
  tree_ = std::make_unique<Bptree>(store_, "etree.db", 256);
  ++topo_version_;  // conservatively treat the reopened index as new
  return true;
}

std::uint64_t EtreeBackend::modeled_ns() const {
  return retired_ns_ + device_.counters().modeled_ns() +
         store_.counters().modeled_overhead_ns + tree_->search_dram_ns();
}

std::uint64_t EtreeBackend::memory_bytes() {
  return store_.blocks_in_use() * store_.config().block_size;
}

}  // namespace pmo::baseline
